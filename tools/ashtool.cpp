// ashtool — command-line inspection of VCODE handler images (.ashv).
//
//   ashtool gen <handler> <file>          write a library handler image
//       handlers: remote-increment | remote-write-specific |
//                 remote-write-generic | active-messages | dsm-lock
//   ashtool dis <file>                    disassemble + verify an image
//   ashtool sandbox <file> <out> [base size]
//                                         SFI-rewrite an image (defaults:
//                                         base 0x100000, size 0x100000)
//   ashtool run <file> [a0 a1 a2 a3]      execute in a 1 MB flat memory
//   ashtool dump-translated <file>        print both download-time
//                                         translated forms: the pre-decoded
//                                         threaded form (blocks, hoisted
//                                         budget checks, fused pairs) and
//                                         the superblock JIT lowering
//                                         (superblock CFG, folded guards,
//                                         fused loops, emitted listing)
//   ashtool status <file> [msgs]          download into a supervised
//                                         one-node kernel, offer `msgs`
//                                         messages (default 10), and print
//                                         the supervisor status table:
//                                         health state, abort taxonomy,
//                                         last-fault forensics, quarantine
//                                         backoff
//   ashtool trace <file> [msgs] [--json|--chrome]
//                                         same supervised scenario with the
//                                         ashtrace tracer on; print the
//                                         kernel-path event stream as text,
//                                         JSON, or Chrome trace_event JSON
//                                         (load the latter in Perfetto /
//                                         chrome://tracing)
//   ashtool metrics <file> [msgs] [--json]
//                                         same scenario; print the per-
//                                         handler / per-channel / per-
//                                         engine aggregates
//   ashtool queues <file> [msgs] [--json]
//                                         download into a two-node AN2
//                                         kernel with a 2-queue receive
//                                         set (adaptive coalescing) and a
//                                         deterministic bursty sender;
//                                         print the per-queue depth /
//                                         batch-size / fire-reason tables
//                                         and the batched-dispatch
//                                         aggregates
//   ashtool offload <file> [msgs] [--json]
//                                         the `queues` scenario with a
//                                         smart-NIC processor in front of
//                                         the receive set, its memory
//                                         window sized so exactly two of
//                                         the four VC attachments are
//                                         NIC-resident; print the queue
//                                         tables with their offload
//                                         columns plus the device summary
//                                         (per-queue exec / punt taxonomy
//                                         / reply counts)
//   ashtool rules <scenario> [--json]     print one of the canned
//                                         declarative rule-set scenarios
//                                         (lb | kv | sampler | firewall):
//                                         the rule listing, the compiled
//                                         VCODE program with its bounds-
//                                         verification verdict, and the
//                                         reference interpreter's decision
//                                         for each of the scenario's demo
//                                         frames. --json prints the rule
//                                         set as JSON instead.
//   ashtool tenants <file> [msgs] [--json]
//                                         download the image for three
//                                         tenants (DRR weights 1/2/4)
//                                         under a tight cycle quota and a
//                                         one-handler install cap, offer
//                                         each tenant `msgs` messages,
//                                         and print the per-tenant
//                                         scheduler table: weight, runs,
//                                         cycles charged, and the typed
//                                         denial taxonomy
//
// The serialized format is exactly what AshSystem::download consumes —
// these files are "what the kernel sees".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/eval.hpp"
#include "ashc/rule.hpp"
#include "ashc/scenarios.hpp"
#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "core/tenant.hpp"
#include "sandbox/sfi.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/format.hpp"
#include "trace/trace.hpp"
#include "vcode/codecache.hpp"
#include "vcode/jit/jit.hpp"
#include "vcode/env_util.hpp"
#include "vcode/interp.hpp"
#include "vcode/verifier.hpp"

namespace {

using ash::vcode::Program;

int usage() {
  std::fprintf(stderr,
               "usage: ashtool gen <handler> <file>\n"
               "       ashtool dis <file>\n"
               "       ashtool sandbox <file> <out> [base size]\n"
               "       ashtool run <file> [a0 a1 a2 a3]\n"
               "       ashtool dump-translated <file>\n"
               "       ashtool status <file> [msgs]\n"
               "       ashtool trace <file> [msgs] [--json|--chrome]\n"
               "       ashtool metrics <file> [msgs] [--json]\n"
               "       ashtool queues <file> [msgs] [--json]\n"
               "       ashtool offload <file> [msgs] [--json]\n"
               "       ashtool rules <lb|kv|sampler|firewall> [--json]\n"
               "       ashtool tenants <file> [msgs] [--json]\n");
  return 2;
}

/// ashtrace renders outcome codes as numbers (it links below vcode); give
/// it the real names.
const char* name_outcome(std::uint32_t code) {
  if (code >= ash::vcode::kOutcomeCount) return "OutOfRange";
  return ash::vcode::to_string(static_cast<ash::vcode::Outcome>(code));
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  return static_cast<bool>(out);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

int cmd_gen(const std::string& name, const std::string& file) {
  Program prog;
  if (name == "remote-increment") {
    prog = ash::ashlib::make_remote_increment();
  } else if (name == "remote-write-specific") {
    prog = ash::ashlib::make_remote_write_specific();
  } else if (name == "remote-write-generic") {
    prog = ash::ashlib::make_remote_write_generic();
  } else if (name == "active-messages") {
    prog = ash::ashlib::make_active_message_dispatcher(4);
  } else if (name == "dsm-lock") {
    prog = ash::ashlib::make_dsm_lock_handler(8);
  } else {
    std::fprintf(stderr, "unknown handler '%s'\n", name.c_str());
    return 1;
  }
  if (!write_file(file, prog.serialize())) {
    std::fprintf(stderr, "cannot write %s\n", file.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu instructions\n", file.c_str(),
              prog.insns.size());
  return 0;
}

int cmd_dis(const std::string& file) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  std::printf("%s: %zu instructions, %zu indirect targets, %zu translated, "
              "%s\n\n",
              file.c_str(), prog->insns.size(),
              prog->indirect_targets.size(), prog->indirect_map.size(),
              prog->sandboxed ? "SANDBOXED" : "not sandboxed");
  std::fputs(ash::vcode::disassemble(*prog).c_str(), stdout);

  ash::vcode::VerifyPolicy policy;
  const auto verdict = ash::vcode::verify(*prog, policy);
  if (verdict.ok()) {
    std::printf("\nverification: OK (ASH download policy)\n");
  } else {
    std::printf("\nverification issues:\n%s", verdict.to_string().c_str());
  }
  return 0;
}

int cmd_sandbox(const std::string& file, const std::string& out,
                std::uint32_t base, std::uint32_t size) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  ash::sandbox::Options opts;
  opts.segment = {base, size};
  std::string error;
  const auto boxed = ash::sandbox::sandbox(*prog, opts, &error);
  if (!boxed.has_value()) {
    std::fprintf(stderr, "sandboxing rejected: %s\n", error.c_str());
    return 1;
  }
  if (!write_file(out, boxed->program.serialize())) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  const auto& r = boxed->report;
  std::printf("%s -> %s: %u -> %u instructions (+%u)\n", file.c_str(),
              out.c_str(), r.original_insns, r.final_insns, r.added());
  std::printf("  memory checks %u, budget checks %u, epilogue %u, "
              "signed converted %u\n",
              r.mem_check_insns, r.budget_check_insns, r.epilogue_insns,
              r.converted_signed);
  return 0;
}

int cmd_run(const std::string& file, std::uint32_t a0, std::uint32_t a1,
            std::uint32_t a2, std::uint32_t a3) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  ash::vcode::FlatMemoryEnv env(1u << 20);
  const auto r = ash::vcode::execute(*prog, env, {}, a0, a1, a2, a3);
  std::printf("outcome: %s\n", ash::vcode::to_string(r.outcome));
  std::printf("  %llu instructions, %llu cycles (%.2f us at 40 MHz)\n",
              static_cast<unsigned long long>(r.insns),
              static_cast<unsigned long long>(r.cycles), r.cycles / 40.0);
  std::printf("  result (r1) = %u, abort code = %u, final pc = %u\n",
              r.result, r.abort_code, r.fault_pc);
  return r.outcome == ash::vcode::Outcome::Halted ? 0 : 1;
}

struct ScenarioOut {
  int id = -1;
  std::string error;
  std::uint64_t sends = 0;
  std::string status_table;
};

// The shared inspection scenario behind `status`, `trace`, and `metrics`:
// a one-node supervised kernel downloads the image and offers it `msgs`
// messages a millisecond apart under the default containment policy. A
// handler that faults on every message walks visibly through
// Probation/Quarantined/Revoked.
int run_supervised_scenario(const std::string& file, int msgs,
                            ScenarioOut* out) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  ash::sim::Simulator sim;
  ash::sim::Node& node = sim.add_node("n");
  ash::core::AshSystem ashsys(node);
  ash::core::SupervisorConfig sup;
  sup.enabled = true;
  sup.quarantine_base = ash::sim::us(2000.0);  // visible at ms pacing
  ashsys.set_supervisor(sup);

  node.kernel().spawn(
      "owner", [&](ash::sim::Process& self) -> ash::sim::Task {
        out->id = ashsys.download(self, *prog, {}, &out->error);
        if (out->id < 0) co_return;
        // Standard calling convention: 64 message bytes, and the
        // attach-time user argument pointing at owner scratch space.
        const std::uint32_t msg_addr = self.segment().base + 0x8000;
        const std::uint32_t scratch = self.segment().base + 0x100;
        for (std::uint32_t k = 0; k < 64; ++k) {
          *node.mem(msg_addr + k, 1) = static_cast<std::uint8_t>(k);
        }
        for (int i = 0; i < msgs; ++i) {
          ash::core::MsgContext m;
          m.addr = msg_addr;
          m.len = 64;
          m.channel = 0;
          m.user_arg = scratch;
          ashsys.invoke(
              out->id, m,
              [out](int, std::span<const std::uint8_t>) {
                ++out->sends;
                return true;
              },
              0);
          co_await self.sleep_for(ash::sim::us(1000.0));
        }
      });
  sim.run();
  if (out->id < 0) {
    std::fprintf(stderr, "download rejected: %s\n", out->error.c_str());
    return 1;
  }
  out->status_table = ashsys.format_status();
  return 0;
}

int cmd_status(const std::string& file, int msgs) {
  ScenarioOut out;
  const int rc = run_supervised_scenario(file, msgs, &out);
  if (rc != 0) return rc;
  std::printf("%s: %d message(s) offered, %llu reply send(s) released\n\n",
              file.c_str(), msgs, static_cast<unsigned long long>(out.sends));
  std::fputs(out.status_table.c_str(), stdout);
  return 0;
}

int cmd_trace(const std::string& file, int msgs, const std::string& mode) {
  ash::trace::set_outcome_namer(&name_outcome);
  ash::trace::Session session;
  ScenarioOut out;
  const int rc = run_supervised_scenario(file, msgs, &out);
  if (rc != 0) return rc;
  if (mode == "--json") {
    std::printf("%s\n", ash::trace::trace_json(ash::trace::global()).c_str());
  } else if (mode == "--chrome") {
    std::printf("%s\n",
                ash::trace::chrome_trace_json(ash::trace::global()).c_str());
  } else {
    std::fputs(ash::trace::format_trace(ash::trace::global()).c_str(),
               stdout);
  }
  return 0;
}

int cmd_metrics(const std::string& file, int msgs, const std::string& mode) {
  ash::trace::set_outcome_namer(&name_outcome);
  ash::trace::Session session;
  ScenarioOut out;
  const int rc = run_supervised_scenario(file, msgs, &out);
  if (rc != 0) return rc;
  if (mode == "--json") {
    std::printf("%s\n",
                ash::trace::metrics_json(ash::trace::global()).c_str());
  } else {
    std::fputs(ash::trace::format_metrics(ash::trace::global()).c_str(),
               stdout);
  }
  return 0;
}

// The multi-queue inspection scenario behind `queues`: a two-node AN2
// kernel downloads the image on the server, attaches it to 4 VCs steered
// through a 2-queue receive set (channel hash, adaptive coalescing,
// max_frames 4 / max_delay 50 us), and a client sends `msgs` messages in
// alternating long (16) and short (6) bursts. The long bursts trip the
// max-frames (Full) fire and flip the coalescer into polling mode, the
// short bursts leave partial batches for the max-delay (Timer) fire —
// so every fire reason and the batched-dispatch path are all visible in
// one deterministic run.
int cmd_queues(const std::string& file, int msgs, const std::string& mode,
               bool offload) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  ash::trace::set_outcome_namer(&name_outcome);
  ash::trace::TracerConfig tcfg;
  // The queue set adds auxiliary rx CPUs; the NIC processor adds one
  // virtual CPU per device execution unit on top.
  tcfg.max_cpus = offload ? 16 : 8;
  ash::trace::Session session(tcfg);

  ash::sim::Simulator sim;
  ash::sim::Node& client = sim.add_node("client");
  ash::sim::Node& server = sim.add_node("server");
  ash::net::An2Device dev_c(client);
  ash::net::An2Device dev_s(server);
  dev_c.connect(dev_s);
  ash::core::AshSystem ashsys(server);

  ash::net::RxQueueSet::Config qc;
  qc.queues = 2;
  qc.steering.mode = ash::net::SteerMode::ChannelHash;
  qc.coalesce.enabled = true;
  qc.coalesce.max_frames = 4;
  qc.coalesce.max_delay = ash::sim::us(50.0);
  qc.coalesce.adaptive = true;
  ash::net::RxQueueSet queues(server, qc);
  dev_s.set_rx_queues(&queues);

  // Offload variant: a window holding exactly two installed copies of
  // this image (the post-download, sandboxed form — only the kernel
  // knows its real footprint), so attachments 0 and 1 become
  // NIC-resident while 2 and 3 stay host-resident — both the on-device
  // execution columns and the counted NotResident punt path show up in
  // one run. The processor is built at time zero, well before the
  // sender's first frame at 100 us.
  std::unique_ptr<ash::net::NicProcessor> nic;

  constexpr int kVcs = 4;
  int id = -1;
  std::string error;
  server.kernel().spawn(
      "owner", [&](ash::sim::Process& self) -> ash::sim::Task {
        id = ashsys.download(self, *prog, {}, &error);
        if (id < 0) co_return;
        if (offload) {
          ash::net::NicConfig nc;
          nc.mem_window_bytes = 2 * ashsys.nic_footprint(id);
          nic = std::make_unique<ash::net::NicProcessor>(server, queues, nc);
          dev_s.set_nic(nic.get());
        }
        const std::uint32_t scratch = self.segment().base + 0x100;
        for (int v = 0; v < kVcs; ++v) {
          const int vc = dev_s.bind_vc(self);
          for (int i = 0; i < 32; ++i) {
            dev_s.supply_buffer(
                vc,
                self.segment().base + 0x1000 +
                    64u * static_cast<std::uint32_t>(v * 32 + i),
                64);
          }
          if (offload) {
            ashsys.offload_an2(dev_s, vc, id, scratch);
          } else {
            ashsys.attach_an2(dev_s, vc, id, scratch);
          }
        }
        co_await self.sleep_for(ash::sim::us(1e6));
      });

  client.kernel().spawn(
      "sender", [&](ash::sim::Process& self) -> ash::sim::Task {
        for (int v = 0; v < kVcs; ++v) dev_c.bind_vc(self);
        co_await self.sleep_for(ash::sim::us(100.0));
        const std::uint8_t ping[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int in_burst = 0;
        int burst_len = 16;
        for (int m = 0; m < msgs; ++m) {
          co_await self.compute(dev_c.config().tx_kernel_work);
          // Four consecutive frames per VC before rotating: a queue then
          // sees same-channel runs, so the batched dispatch path gets
          // multi-message batches rather than singletons.
          dev_c.send((m / 4) % kVcs, ping);
          if (++in_burst == burst_len) {
            in_burst = 0;
            burst_len = burst_len == 16 ? 6 : 16;
            co_await self.sleep_for(ash::sim::us(200.0));
          }
        }
      });

  sim.run(ash::sim::us(50000.0));
  if (id < 0) {
    std::fprintf(stderr, "download rejected: %s\n", error.c_str());
    return 1;
  }
  if (mode == "--json") {
    if (nic != nullptr) {
      std::printf("{\"queues\":%s,\"nic\":%s}\n",
                  ash::trace::queues_json(ash::trace::global()).c_str(),
                  nic->summary_json().c_str());
    } else {
      std::printf("%s\n",
                  ash::trace::queues_json(ash::trace::global()).c_str());
    }
  } else {
    std::fputs(ash::trace::format_queues(ash::trace::global()).c_str(),
               stdout);
    if (nic != nullptr) {
      std::printf("\n%s", nic->format_summary().c_str());
    }
  }
  return 0;
}

// The multi-tenant inspection scenario behind `tenants`: three tenant
// processes (DRR weights 1, 2, 4) download the same image under a tight
// cycle quota (150 cycles/weight per 1 ms round, burst 1) and a
// one-handler install cap, then each offers `msgs` messages at 100 us
// pacing — ten admission attempts per round against a budget worth a
// weight-proportional few, so the weighted shares and the cycle-quota
// denials are both visible. Tenant 1 also attempts a
// second install, which the admission control rejects with a typed
// download-quota denial.
int cmd_tenants(const std::string& file, int msgs, const std::string& mode) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  ash::sim::Simulator sim;
  ash::sim::Node& node = sim.add_node("n");
  ash::core::AshSystem ashsys(node);
  ash::core::TenantSchedulerConfig tcfg;
  tcfg.replenish_period = ash::sim::us(1000.0);
  tcfg.quantum_per_weight = 150;
  tcfg.burst_rounds = 1;
  tcfg.max_handlers = 1;
  ash::core::TenantScheduler tenants(node, tcfg);
  ashsys.set_tenants(&tenants);

  constexpr std::uint32_t kWeights[3] = {1, 2, 4};
  int first_error = 0;
  for (int t = 0; t < 3; ++t) {
    node.kernel().spawn(
        "tenant" + std::to_string(t + 1),
        [&, t](ash::sim::Process& self) -> ash::sim::Task {
          tenants.set_weight(self, kWeights[t]);
          std::string error;
          const int id = ashsys.download(self, *prog, {}, &error);
          if (id < 0) {
            std::fprintf(stderr, "tenant%d download rejected: %s\n", t + 1,
                         error.c_str());
            first_error = 1;
            co_return;
          }
          if (t == 0) {
            // One over the install cap: a graceful, typed denial.
            ashsys.download(self, *prog, {}, &error);
          }
          const std::uint32_t msg_addr = self.segment().base + 0x8000;
          const std::uint32_t scratch = self.segment().base + 0x100;
          for (std::uint32_t k = 0; k < 64; ++k) {
            *node.mem(msg_addr + k, 1) = static_cast<std::uint8_t>(k);
          }
          for (int i = 0; i < msgs; ++i) {
            ash::core::MsgContext m;
            m.addr = msg_addr;
            m.len = 64;
            m.channel = t;
            m.user_arg = scratch;
            ashsys.invoke(
                id, m,
                [](int, std::span<const std::uint8_t>) { return true; }, 0);
            co_await self.sleep_for(ash::sim::us(100.0));
          }
        });
  }
  sim.run();
  if (first_error != 0) return first_error;
  if (mode == "--json") {
    std::printf("%s\n", tenants.tenants_json().c_str());
  } else {
    std::printf("%s: %d message(s) offered per tenant\n\n", file.c_str(),
                msgs);
    std::fputs(tenants.format_table().c_str(), stdout);
  }
  return 0;
}

// The whole rule-compiler pipeline over one canned scenario, in one
// deterministic dump (no cycle values — the goldens pin every byte):
// rule listing -> compiled program + bounds verdict -> disassembly ->
// the reference interpreter's decision per demo frame.
int cmd_rules(const std::string& name, const std::string& mode) {
  const ash::ashc::RuleSet rs = ash::ashc::scenario(name);
  if (rs.rules.empty()) {
    std::fprintf(stderr, "unknown scenario '%s' (want lb|kv|sampler|"
                 "firewall)\n",
                 name.c_str());
    return 1;
  }
  if (mode == "--json") {
    std::printf("%s\n", ash::ashc::to_json(rs).c_str());
    return 0;
  }
  std::fputs(ash::ashc::format(rs).c_str(), stdout);

  const ash::ashc::Compiled c = ash::ashc::compile(rs);
  if (!c.ok) {
    std::fprintf(stderr, "compile failed: %s\n", c.error.c_str());
    return 1;
  }
  const auto verdict =
      ash::vcode::verify(c.program, ash::ashc::verify_policy(rs));
  std::printf("\ncompiled: %zu instructions, bounds verification %s\n\n",
              c.program.insns.size(), verdict.ok() ? "OK" : "FAILED");
  if (!verdict.ok()) {
    std::fputs(verdict.to_string().c_str(), stdout);
    return 1;
  }
  std::fputs(ash::vcode::disassemble(c.program).c_str(), stdout);

  std::printf("\ndemo frames (reference interpreter, arrival channel 4):\n");
  std::vector<std::uint8_t> state = ash::ashc::init_state(rs);
  const auto frames = ash::ashc::demo_frames(name);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto r = ash::ashc::eval(rs, frames[i], state, 4);
    std::printf("  frame %zu (%zu bytes): %s", i, frames[i].size(),
                r.consumed ? "accept" : "deliver");
    for (const auto& s : r.sends) {
      std::printf(", send %zuB -> ch %u", s.bytes.size(), s.channel);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_dump_translated(const std::string& file) {
  const auto bytes = read_file(file);
  const auto prog = Program::deserialize(bytes);
  if (!prog.has_value()) {
    std::fprintf(stderr, "%s: not a valid .ashv image\n", file.c_str());
    return 1;
  }
  const ash::vcode::CodeCache cache(*prog);
  std::fputs("== codecache (pre-decoded threaded form) ==\n", stdout);
  std::fputs(cache.dump().c_str(), stdout);
  const ash::vcode::JitBackend jit(*prog);
  std::fputs("\n== jit (superblock lowering) ==\n", stdout);
  std::fputs(jit.dump().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "gen" && argc == 4) return cmd_gen(argv[2], argv[3]);
  if (cmd == "dis" && argc == 3) return cmd_dis(argv[2]);
  if (cmd == "sandbox" && (argc == 4 || argc == 6)) {
    std::uint32_t base = 0x100000, size = 0x100000;
    if (argc == 6) {
      base = static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 0));
      size = static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 0));
    }
    return cmd_sandbox(argv[2], argv[3], base, size);
  }
  if ((cmd == "dump-translated" || cmd == "--dump-translated") && argc == 3) {
    return cmd_dump_translated(argv[2]);
  }
  if (cmd == "status" && (argc == 3 || argc == 4)) {
    int msgs = 10;
    if (argc == 4) msgs = std::atoi(argv[3]);
    if (msgs <= 0) return usage();
    return cmd_status(argv[2], msgs);
  }
  if ((cmd == "queues" || cmd == "offload") && argc >= 3 && argc <= 5) {
    int msgs = 44;  // two long+short burst cycles (see cmd_queues)
    std::string mode;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        mode = arg;
      } else {
        msgs = std::atoi(argv[i]);
      }
    }
    if (msgs <= 0 || !(mode.empty() || mode == "--json")) return usage();
    return cmd_queues(argv[2], msgs, mode, /*offload=*/cmd == "offload");
  }
  if (cmd == "rules" && (argc == 3 || argc == 4)) {
    const std::string mode = argc == 4 ? argv[3] : "";
    if (!(mode.empty() || mode == "--json")) return usage();
    return cmd_rules(argv[2], mode);
  }
  if (cmd == "tenants" && argc >= 3 && argc <= 5) {
    int msgs = 40;  // four 1 ms quota rounds at 100 us pacing
    std::string mode;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        mode = arg;
      } else {
        msgs = std::atoi(argv[i]);
      }
    }
    if (msgs <= 0 || !(mode.empty() || mode == "--json")) return usage();
    return cmd_tenants(argv[2], msgs, mode);
  }
  if ((cmd == "trace" || cmd == "metrics") && argc >= 3 && argc <= 5) {
    int msgs = 10;
    std::string mode;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        mode = arg;
      } else {
        msgs = std::atoi(argv[i]);
      }
    }
    if (msgs <= 0) return usage();
    const bool mode_ok =
        mode.empty() || mode == "--json" || (cmd == "trace" && mode == "--chrome");
    if (!mode_ok) return usage();
    return cmd == "trace" ? cmd_trace(argv[2], msgs, mode)
                          : cmd_metrics(argv[2], msgs, mode);
  }
  if (cmd == "run" && argc >= 3 && argc <= 7) {
    std::uint32_t a[4] = {0, 0, 0, 0};
    for (int i = 3; i < argc; ++i) {
      a[i - 3] = static_cast<std::uint32_t>(std::strtoul(argv[i], nullptr, 0));
    }
    return cmd_run(argv[2], a[0], a[1], a[2], a[3]);
  }
  return usage();
}
