// packetfuzz — deterministic, structure-aware packet fuzzer for the
// user-level protocol stack and the kernel demux paths.
//
//   packetfuzz --target headers|dpf|reassembler|tcp|all
//              [--iters N] [--seed S]
//
// Each target starts from structurally valid frames (built with the real
// encoders), applies seeded mutations (bit flips, byte stomps,
// truncation, extension, length-field lies, byte swaps), and feeds the
// result into a parser or receive path. The invariants are:
//
//   * no crash / no sanitizer finding (run under ASan+UBSan in CI);
//   * the two DPF engines agree on every mutated frame;
//   * the Ethernet device leaks no kernel receive buffer, whatever the
//     frame contents;
//   * IpReassembler buffering stays inside its configured bounds;
//   * the TCP receive path survives arbitrary segments without wedging
//     its TCB into an inconsistent state.
//
// Exit status 0 = corpus clean; 1 = an invariant failed (details on
// stderr); 2 = usage error. Same seed -> same corpus, so any failure
// reproduces exactly.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ashc/compile.hpp"
#include "ashc/eval.hpp"
#include "ashc/gen.hpp"
#include "ashc/rule.hpp"
#include "core/ash.hpp"
#include "dpf/dpf.hpp"
#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "proto/an2_link.hpp"
#include "proto/headers.hpp"
#include "proto/ip_frag.hpp"
#include "proto/tcp.hpp"
#include "proto/wire.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vcode/backend.hpp"
#include "vcode/verifier.hpp"

namespace {

using ash::util::Rng;
namespace proto = ash::proto;
namespace net = ash::net;
namespace dpf = ash::dpf;
namespace ashc = ash::ashc;

int g_failures = 0;

#define FUZZ_CHECK(cond, ...)                         \
  do {                                                \
    if (!(cond)) {                                    \
      std::fprintf(stderr, "packetfuzz: " __VA_ARGS__); \
      std::fprintf(stderr, "\n");                     \
      ++g_failures;                                   \
    }                                                 \
  } while (0)

// ------------------------------------------------------------ mutation

/// Apply 1..4 structure-aware mutations in place. Deterministic in rng.
void mutate(std::vector<std::uint8_t>& f, Rng& rng) {
  const std::uint64_t n = 1 + rng.below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (f.empty()) {
      f.push_back(static_cast<std::uint8_t>(rng.next()));
      continue;
    }
    switch (rng.below(6)) {
      case 0:  // flip one bit
        f[rng.below(f.size())] ^= static_cast<std::uint8_t>(1 << rng.below(8));
        break;
      case 1:  // stomp one byte
        f[rng.below(f.size())] = static_cast<std::uint8_t>(rng.next());
        break;
      case 2:  // truncate (possibly to zero)
        f.resize(rng.below(f.size() + 1));
        break;
      case 3: {  // extend with noise
        const std::uint64_t extra = 1 + rng.below(32);
        for (std::uint64_t k = 0; k < extra; ++k) {
          f.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        break;
      }
      case 4: {  // lie in a 16-bit field (length/offset/port-shaped)
        if (f.size() >= 2) {
          const std::size_t at = rng.below(f.size() - 1);
          const std::uint16_t v = static_cast<std::uint16_t>(rng.next());
          f[at] = static_cast<std::uint8_t>(v >> 8);
          f[at + 1] = static_cast<std::uint8_t>(v);
        }
        break;
      }
      default: {  // swap two bytes
        const std::size_t a = rng.below(f.size());
        const std::size_t b = rng.below(f.size());
        std::swap(f[a], f[b]);
        break;
      }
    }
  }
}

const proto::Ipv4Addr kSrc = proto::Ipv4Addr::of(10, 0, 0, 1);
const proto::Ipv4Addr kDst = proto::Ipv4Addr::of(10, 0, 0, 2);

/// A structurally valid IP datagram (optionally a fragment) with payload.
std::vector<std::uint8_t> build_ip(Rng& rng, std::uint8_t protocol,
                                   std::uint32_t payload_len,
                                   std::uint16_t ident, bool more,
                                   std::uint16_t frag_off_blocks) {
  std::vector<std::uint8_t> d(proto::kIpHeaderLen + payload_len);
  proto::IpHeader h;
  h.protocol = protocol;
  h.src = kSrc;
  h.dst = kDst;
  h.total_len = static_cast<std::uint16_t>(d.size());
  h.ident = ident;
  h.more_fragments = more;
  h.frag_offset = frag_off_blocks;
  proto::encode_ip({d.data(), proto::kIpHeaderLen}, h);
  for (std::uint32_t i = 0; i < payload_len; ++i) {
    d[proto::kIpHeaderLen + i] = static_cast<std::uint8_t>(rng.next());
  }
  return d;
}

/// A structurally valid TCP segment inside an IP datagram; checksummed
/// correctly half the time so mutations reach the post-checksum paths.
std::vector<std::uint8_t> build_tcp_segment(Rng& rng) {
  const std::uint32_t plen = static_cast<std::uint32_t>(rng.below(256));
  const std::uint32_t seg = static_cast<std::uint32_t>(proto::kTcpHeaderLen) + plen;
  std::vector<std::uint8_t> d(proto::kIpHeaderLen + seg);

  proto::TcpHeader t;
  t.src_port = static_cast<std::uint16_t>(rng.chance(1, 2) ? 5000 : rng.next());
  t.dst_port = static_cast<std::uint16_t>(rng.chance(1, 2) ? 4000 : rng.next());
  t.seq = static_cast<std::uint32_t>(rng.next());
  t.ack = static_cast<std::uint32_t>(rng.next());
  t.flags.syn = rng.chance(1, 3);
  t.flags.ack = rng.chance(2, 3);
  t.flags.fin = rng.chance(1, 5);
  t.flags.rst = rng.chance(1, 8);
  t.flags.psh = rng.chance(1, 3);
  t.window = static_cast<std::uint16_t>(rng.next());
  t.checksum = 0;
  proto::encode_tcp({d.data() + proto::kIpHeaderLen, proto::kTcpHeaderLen}, t);
  for (std::uint32_t i = 0; i < plen; ++i) {
    d[proto::kIpHeaderLen + proto::kTcpHeaderLen + i] =
        static_cast<std::uint8_t>(rng.next());
  }
  if (rng.chance(1, 2)) {
    t.checksum = proto::transport_checksum(
        kSrc, kDst, proto::kIpProtoTcp,
        {d.data() + proto::kIpHeaderLen, seg});
    proto::encode_tcp({d.data() + proto::kIpHeaderLen, proto::kTcpHeaderLen},
                      t);
  }

  proto::IpHeader ip;
  ip.protocol = proto::kIpProtoTcp;
  ip.src = kSrc;
  ip.dst = kDst;
  ip.total_len = static_cast<std::uint16_t>(d.size());
  ip.ident = static_cast<std::uint16_t>(rng.next());
  proto::encode_ip({d.data(), proto::kIpHeaderLen}, ip);
  return d;
}

// ------------------------------------------------------------- targets

/// Every decoder over mutated (and pure-noise) buffers: must never read
/// out of bounds or crash, whatever the bytes say.
void fuzz_headers(std::uint64_t iters, std::uint64_t seed) {
  Rng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> buf;
    switch (rng.below(5)) {
      case 0: {  // Ethernet frame
        buf.assign(proto::kEthHeaderLen + rng.below(64), 0);
        proto::EthHeader e;
        e.ethertype = static_cast<std::uint16_t>(rng.next());
        proto::encode_eth({buf.data(), proto::kEthHeaderLen}, e);
        break;
      }
      case 1: {  // ARP packet
        buf.assign(proto::kArpPacketLen, 0);
        proto::ArpPacket a;
        a.opcode = static_cast<std::uint16_t>(rng.below(5));
        a.sender_ip = kSrc;
        a.target_ip = kDst;
        proto::encode_arp({buf.data(), proto::kArpPacketLen}, a);
        break;
      }
      case 2:
        buf = build_ip(rng, proto::kIpProtoUdp,
                       static_cast<std::uint32_t>(rng.below(128)),
                       static_cast<std::uint16_t>(i), rng.chance(1, 3),
                       static_cast<std::uint16_t>(rng.below(32)));
        break;
      case 3:
        buf = build_tcp_segment(rng);
        break;
      default:  // pure noise
        buf.resize(rng.below(96));
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
        break;
    }
    mutate(buf, rng);

    (void)proto::decode_eth(buf);
    (void)proto::decode_arp(buf);
    (void)proto::decode_udp(buf);
    (void)proto::decode_tcp(buf);
    const auto ip = proto::decode_ip(buf);
    if (ip.has_value()) {
      // decode_ip promised total_len <= buf.size(); hold it to that.
      FUZZ_CHECK(ip->total_len <= buf.size(),
                 "headers: decode_ip accepted total_len %u > frame %zu "
                 "(iter %llu)",
                 ip->total_len, buf.size(), (unsigned long long)i);
      const std::uint32_t seg = ip->total_len -
                                static_cast<std::uint32_t>(proto::kIpHeaderLen);
      (void)proto::decode_udp({buf.data() + proto::kIpHeaderLen, seg});
      (void)proto::decode_tcp({buf.data() + proto::kIpHeaderLen, seg});
    }
  }
}

/// Both DPF engines over mutated frames: agreement + bounds safety; then
/// the same corpus through a real EthernetDevice so the interrupt-path
/// demux and kernel-buffer recycling face it too.
void fuzz_dpf(std::uint64_t iters, std::uint64_t seed) {
  Rng rng(seed);
  dpf::InterpretedEngine interp;
  dpf::CompiledEngine compiled;
  for (int i = 0; i < 48; ++i) {
    dpf::Filter f;
    const std::uint64_t n_atoms = 1 + rng.below(3);
    for (std::uint64_t a = 0; a < n_atoms; ++a) {
      dpf::Atom atom;
      atom.offset = static_cast<std::uint16_t>(rng.below(80));
      const std::uint8_t widths[] = {1, 2, 4};
      atom.width = widths[rng.below(3)];
      atom.mask = atom.width == 1 ? 0xffu : atom.width == 2 ? 0xffffu
                                                            : 0xffffffffu;
      if (rng.chance(1, 3)) atom.mask &= 0x33333333u;
      atom.value = static_cast<std::uint32_t>(rng.next()) & atom.mask;
      f.atoms.push_back(atom);
    }
    interp.insert(f, i);
    compiled.insert(f, i);
  }

  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> frame(proto::kEthHeaderLen + rng.below(100), 0);
    proto::EthHeader e;
    e.ethertype = rng.chance(1, 2) ? 0x0800
                                   : static_cast<std::uint16_t>(rng.next());
    proto::encode_eth({frame.data(), proto::kEthHeaderLen}, e);
    for (std::size_t k = proto::kEthHeaderLen; k < frame.size(); ++k) {
      frame[k] = static_cast<std::uint8_t>(rng.below(8));
    }
    mutate(frame, rng);
    FUZZ_CHECK(interp.match(frame) == compiled.match(frame),
               "dpf: engines disagree on iter %llu (len %zu)",
               (unsigned long long)i, frame.size());
  }

  // Device pass: batches of mutated frames through the LANCE model. The
  // receiver never polls, so every frame exercises allocate -> demux ->
  // copy-out/drop -> recycle; afterwards no kernel buffer may be in use.
  const std::uint64_t batches = iters / 100 + 1;
  for (std::uint64_t b = 0; b < batches; ++b) {
    ash::sim::Simulator sim;
    ash::sim::Node& na = sim.add_node("tx");
    ash::sim::Node& nb = sim.add_node("rx");
    net::EthernetDevice dev_a(na);
    net::EthernetDevice dev_b(nb);
    dev_a.connect(dev_b);

    nb.kernel().spawn("rx", [&](ash::sim::Process& self) -> ash::sim::Task {
      dpf::Filter f;
      f.atoms = {dpf::atom_be16(12, 0x0800)};
      const int ep = dev_b.attach(self, f);
      dev_b.supply_buffer(ep, self.segment().base, 4096);
      dev_b.supply_buffer(ep, self.segment().base + 4096, 4096);
      co_await self.sleep_for(ash::sim::us(200000.0));
      while (dev_b.poll(ep).has_value()) {
      }
    });
    sim.queue().schedule_at(10, [&] {
      Rng frng(seed ^ (b * 0x9e3779b97f4a7c15ull));
      for (int k = 0; k < 64; ++k) {
        std::vector<std::uint8_t> frame(proto::kEthHeaderLen + frng.below(100),
                                        0);
        proto::EthHeader e;
        e.ethertype = frng.chance(1, 2)
                          ? 0x0800
                          : static_cast<std::uint16_t>(frng.next());
        proto::encode_eth({frame.data(), proto::kEthHeaderLen}, e);
        mutate(frame, frng);
        if (frame.size() > 1518) frame.resize(1518);
        dev_a.send(frame);  // undersize/oversize rejection is part of it
      }
    });
    sim.run(ash::sim::us(1e6));
    FUZZ_CHECK(dev_b.kernel_bufs_in_use() == 0,
               "dpf: %zu kernel rx buffers leaked after batch %llu",
               dev_b.kernel_bufs_in_use(), (unsigned long long)b);
  }
}

/// Mutated fragment streams through a tightly-bounded reassembler.
void fuzz_reassembler(std::uint64_t iters, std::uint64_t seed) {
  Rng rng(seed);
  proto::IpReassembler::Limits lim;
  lim.max_datagrams = 8;
  lim.max_buffered_bytes = 16 * 1024;
  lim.max_age_feeds = 128;
  proto::IpReassembler reass(lim);

  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> d =
        build_ip(rng, proto::kIpProtoUdp,
                 8 * (1 + static_cast<std::uint32_t>(rng.below(64))),
                 static_cast<std::uint16_t>(rng.below(64)),
                 /*more=*/rng.chance(2, 3),
                 static_cast<std::uint16_t>(rng.below(512)));
    if (rng.chance(1, 2)) mutate(d, rng);
    const auto out = reass.feed(d);
    if (out.has_value()) {
      FUZZ_CHECK(out->payload.size() <= 64 * 1024,
                 "reassembler: oversized completion (%zu bytes, iter %llu)",
                 out->payload.size(), (unsigned long long)i);
    }
    FUZZ_CHECK(reass.pending() <= lim.max_datagrams,
               "reassembler: pending %zu > cap %zu (iter %llu)",
               reass.pending(), lim.max_datagrams, (unsigned long long)i);
    FUZZ_CHECK(reass.buffered_bytes() <= lim.max_buffered_bytes,
               "reassembler: buffered %zu > cap %zu (iter %llu)",
               reass.buffered_bytes(), lim.max_buffered_bytes,
               (unsigned long long)i);
  }
}

/// A fully valid, checksummed TCP segment (no payload) for scripting the
/// attacker's handshake around the garbage stream.
std::vector<std::uint8_t> crafted_segment(proto::TcpFlags flags,
                                          std::uint32_t seq,
                                          std::uint32_t ack) {
  std::vector<std::uint8_t> d(proto::kIpHeaderLen + proto::kTcpHeaderLen);
  proto::TcpHeader t;
  t.src_port = 5000;
  t.dst_port = 4000;
  t.seq = seq;
  t.ack = ack;
  t.flags = flags;
  t.window = 8192;
  proto::encode_tcp({d.data() + proto::kIpHeaderLen, proto::kTcpHeaderLen}, t);
  t.checksum = proto::transport_checksum(
      kSrc, kDst, proto::kIpProtoTcp,
      {d.data() + proto::kIpHeaderLen, proto::kTcpHeaderLen});
  proto::encode_tcp({d.data() + proto::kIpHeaderLen, proto::kTcpHeaderLen}, t);

  proto::IpHeader ip;
  ip.protocol = proto::kIpProtoTcp;
  ip.src = kSrc;
  ip.dst = kDst;
  ip.total_len = static_cast<std::uint16_t>(d.size());
  ip.ident = 1;
  proto::encode_ip({d.data(), proto::kIpHeaderLen}, ip);
  return d;
}

/// Raw mutated segments against a live TcpConnection: an attacker node
/// establishes a real connection by scripted handshake, streams mutated
/// frames into the victim's VC while it reads, then sends a valid FIN so
/// the victim can drain and close. The TCB must end self-consistent and
/// the victim must not wedge.
void fuzz_tcp(std::uint64_t iters, std::uint64_t seed) {
  // Batches keep each simulation bounded.
  const std::uint64_t per_batch = 250;
  const std::uint64_t batches = (iters + per_batch - 1) / per_batch;
  for (std::uint64_t b = 0; b < batches; ++b) {
    ash::sim::Simulator sim;
    ash::sim::Node& attacker = sim.add_node("attacker");
    ash::sim::Node& victim = sim.add_node("victim");
    net::An2Device dev_a(attacker);
    net::An2Device dev_v(victim);
    dev_a.connect(dev_v);

    bool victim_done = false;
    victim.kernel().spawn("victim", [&](ash::sim::Process& self)
                                        -> ash::sim::Task {
      proto::An2Link link(self, dev_v, {});
      proto::TcpConfig c;
      c.local_ip = kDst;
      c.remote_ip = kSrc;
      c.local_port = 4000;
      c.remote_port = 5000;
      c.rto = ash::sim::us(2000.0);
      c.max_retries = 2;
      proto::TcpConnection conn(link, c);
      const bool est = co_await conn.accept();
      if (est) {
        // Read whatever the hostile stream produces until it dries up.
        for (int r = 0; r < 64; ++r) {
          const std::uint32_t n =
              co_await conn.read_into(self.segment().base, 2048);
          if (n == 0) break;
        }
        co_await conn.close();
      }
      // Whatever happened, the TCB must be self-consistent:
      const auto st = static_cast<proto::TcpState>(
          conn.shm().get(proto::tcb::kState));
      FUZZ_CHECK(st == conn.state(),
                 "tcp: shared TCB state %u != library state %u (batch %llu)",
                 static_cast<unsigned>(st),
                 static_cast<unsigned>(conn.state()),
                 (unsigned long long)b);
      if (conn.state() == proto::TcpState::Closed) {
        FUZZ_CHECK(conn.retx_depth() == 0,
                   "tcp: closed TCB still holds %zu retx segments "
                   "(batch %llu)",
                   conn.retx_depth(), (unsigned long long)b);
      }
      victim_done = true;
    });

    attacker.kernel().spawn("attacker", [&](ash::sim::Process& self)
                                            -> ash::sim::Task {
      dev_a.bind_vc(self);  // give the victim's replies somewhere to land
      Rng rng(seed ^ (b * 0xbf58476d1ce4e5b9ull));
      const std::uint32_t iss = 7000;  // attacker's initial sequence
      proto::TcpFlags syn;
      syn.syn = true;
      dev_a.send(0, crafted_segment(syn, iss, 0));
      co_await self.sleep_for(ash::sim::us(500.0));
      proto::TcpFlags ack;
      ack.ack = true;
      // Victim's iss defaults to 1000; its SYN consumed one sequence.
      dev_a.send(0, crafted_segment(ack, iss + 1, 1001));
      co_await self.sleep_for(ash::sim::us(500.0));

      for (std::uint64_t i = 0; i < per_batch; ++i) {
        std::vector<std::uint8_t> seg = build_tcp_segment(rng);
        if (rng.chance(2, 3)) mutate(seg, rng);
        dev_a.send(0, seg);
        co_await self.sleep_for(ash::sim::us(50.0));
      }

      // Valid FIN at the victim's expected sequence: random garbage
      // essentially never lands exactly on rcv_nxt, so it is still
      // iss + 1. This unblocks the victim's read (EOF) so it can close.
      proto::TcpFlags fin;
      fin.fin = true;
      fin.ack = true;
      dev_a.send(0, crafted_segment(fin, iss + 1, 1001));
    });
    sim.run(ash::sim::us(5e6));
    FUZZ_CHECK(victim_done,
               "tcp: victim wedged (never finished) in batch %llu",
               (unsigned long long)b);
  }
}

// --------------------------------------------------- declarative rules

/// One rule-set leg: download the compiled rules on `backend` and run the
/// frame sequence through the real kernel invoke path.
struct RuleLeg {
  bool download_ok = false;
  std::string error;
  std::vector<char> consumed;
  std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>> sends;
  std::vector<std::uint8_t> state;
};

constexpr int kRuleArrival = 7;

RuleLeg run_rule_leg(const ashc::RuleSet& rs,
                     const std::vector<std::vector<std::uint8_t>>& frames,
                     ash::vcode::Backend backend) {
  ash::sim::Simulator sim;
  ash::sim::Node& n = sim.add_node("n");
  ash::core::AshSystem ashsys(n);

  RuleLeg out;
  out.consumed.assign(frames.size(), 0);
  out.sends.resize(frames.size());

  std::uint32_t state_addr = 0;
  std::uint32_t frame_addr = 0;
  int id = -1;
  n.kernel().spawn("owner", [&](ash::sim::Process& self) -> ash::sim::Task {
    state_addr = self.segment().base + 0x1000;
    frame_addr = self.segment().base + 0x4000;
    ash::core::AshOptions opts;
    opts.backend = backend;
    id = ashsys.download_rules(self, rs, state_addr, opts, &out.error);
    out.download_ok = id >= 0;
    co_await self.sleep_for(ash::sim::us(1e6));
  });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    sim.queue().schedule_at(
        ash::sim::us(100.0 + 50.0 * static_cast<double>(i)), [&, i] {
          if (id < 0) return;
          const auto& f = frames[i];
          if (!f.empty()) {
            std::memcpy(
                n.mem(frame_addr, static_cast<std::uint32_t>(f.size())),
                f.data(), f.size());
          }
          ash::core::MsgContext m;
          m.addr = frame_addr;
          m.len = static_cast<std::uint32_t>(f.size());
          m.channel = kRuleArrival;
          m.user_arg = state_addr;
          out.consumed[i] =
              ashsys.invoke(id, m,
                            [&out, i](int ch,
                                      std::span<const std::uint8_t> b) {
                              out.sends[i].emplace_back(
                                  ch, std::vector<std::uint8_t>(b.begin(),
                                                                b.end()));
                              return true;
                            },
                            0)
                  ? 1
                  : 0;
        });
  }
  sim.run(ash::sim::us(2e6));
  if (id >= 0) {
    const std::uint8_t* p = n.mem(state_addr, rs.limits.state_bytes);
    out.state.assign(p, p + rs.limits.state_bytes);
  }
  return out;
}

/// Random rule sets over fuzz frame corpora (including mutated
/// adversarial frames): the compiled program must verify, and every
/// backend must agree with the reference interpreter on decisions, send
/// bytes, and final state.
void fuzz_rules(std::uint64_t iters, std::uint64_t seed) {
  for (std::uint64_t it = 0; it < iters; ++it) {
    Rng rng(seed ^ (it * 0x9e3779b97f4a7c15ull) ^ 0xa54ull);
    const ashc::RuleSet rs = ashc::random_rule_set(rng);
    const ashc::Compiled c = ashc::compile(rs);
    FUZZ_CHECK(c.ok, "rules: generated rule set failed to compile "
               "(iter %llu): %s",
               (unsigned long long)it, c.error.c_str());
    if (!c.ok) continue;
    const auto verdict =
        ash::vcode::verify(c.program, ashc::verify_policy(rs));
    FUZZ_CHECK(verdict.ok(),
               "rules: generated rule set failed verification (iter %llu):"
               "\n%s",
               (unsigned long long)it, verdict.to_string().c_str());
    if (!verdict.ok()) continue;

    auto frames = ashc::gen_frames(rng, rs, 6);
    // Two extra adversarial frames: structure-aware mutations of planted
    // frames, so predicates half-fire on torn headers.
    for (int k = 0; k < 2 && !frames.empty(); ++k) {
      std::vector<std::uint8_t> f = frames[rng.below(frames.size())];
      mutate(f, rng);
      if (f.size() > 160) f.resize(160);
      frames.push_back(std::move(f));
    }

    // Ground truth.
    std::vector<std::uint8_t> state = ashc::init_state(rs);
    std::vector<char> want_consumed;
    std::vector<std::vector<std::pair<int, std::vector<std::uint8_t>>>>
        want_sends;
    for (const auto& f : frames) {
      const ashc::EvalResult r = ashc::eval(rs, f, state, kRuleArrival);
      want_consumed.push_back(r.consumed ? 1 : 0);
      std::vector<std::pair<int, std::vector<std::uint8_t>>> s;
      for (const auto& snd : r.sends) {
        s.emplace_back(static_cast<int>(snd.channel), snd.bytes);
      }
      want_sends.push_back(std::move(s));
    }

    const ash::vcode::Backend backends[] = {ash::vcode::Backend::Interp,
                                            ash::vcode::Backend::CodeCache,
                                            ash::vcode::Backend::Jit};
    for (const auto be : backends) {
      const RuleLeg leg = run_rule_leg(rs, frames, be);
      FUZZ_CHECK(leg.download_ok, "rules: download failed (iter %llu): %s",
                 (unsigned long long)it, leg.error.c_str());
      if (!leg.download_ok) continue;
      FUZZ_CHECK(leg.consumed == want_consumed,
                 "rules: backend %d decision mismatch (iter %llu)",
                 static_cast<int>(be), (unsigned long long)it);
      FUZZ_CHECK(leg.sends == want_sends,
                 "rules: backend %d send mismatch (iter %llu)",
                 static_cast<int>(be), (unsigned long long)it);
      FUZZ_CHECK(leg.state == state,
                 "rules: backend %d state mismatch (iter %llu)",
                 static_cast<int>(be), (unsigned long long)it);
    }
  }
}

/// Hostile rule sets: hostilize() breaks one property and names the stage
/// that must reject the result — compile() returns ok=false, or the
/// verifier's bounds pass fails with typed issues. Never a crash, never
/// a clean verification.
void fuzz_rulesverify(std::uint64_t iters, std::uint64_t seed) {
  for (std::uint64_t it = 0; it < iters; ++it) {
    Rng rng(seed ^ (it * 0xbf58476d1ce4e5b9ull) ^ 0xbadull);
    ashc::RuleSet rs = ashc::random_rule_set(rng);
    const ashc::Hostile h = ashc::hostilize(rng, rs);
    const ashc::Compiled c = ashc::compile(rs);
    if (h.stage == ashc::HostileStage::Compile) {
      FUZZ_CHECK(!c.ok,
                 "rulesverify: '%s' mutation compiled clean (iter %llu)",
                 h.what, (unsigned long long)it);
      continue;
    }
    FUZZ_CHECK(c.ok,
               "rulesverify: '%s' mutation failed to compile (iter %llu): "
               "%s",
               h.what, (unsigned long long)it, c.error.c_str());
    if (!c.ok) continue;
    const auto verdict =
        ash::vcode::verify(c.program, ashc::verify_policy(rs));
    FUZZ_CHECK(!verdict.ok(),
               "rulesverify: '%s' mutation verified clean (iter %llu)",
               h.what, (unsigned long long)it);
    for (const auto& issue : verdict.issues) {
      FUZZ_CHECK(issue.code != ash::vcode::VerifyCode::Structural,
                 "rulesverify: '%s' produced an untyped structural issue "
                 "at pc %u (iter %llu): %s",
                 h.what, issue.pc, (unsigned long long)it,
                 issue.message.c_str());
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: packetfuzz --target headers|dpf|reassembler|tcp|"
               "rules|rulesverify|all [--iters N] [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::uint64_t iters = 1000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) {
      target = argv[++i];
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }
  if (target.empty()) return usage();

  const bool all = target == "all";
  bool ran = false;
  if (all || target == "headers") fuzz_headers(iters, seed), ran = true;
  if (all || target == "dpf") fuzz_dpf(iters, seed), ran = true;
  if (all || target == "reassembler") fuzz_reassembler(iters, seed), ran = true;
  if (all || target == "tcp") fuzz_tcp(iters, seed), ran = true;
  // The rule legs iterate whole rule-set x corpus x backend bundles, not
  // single frames; scale the shared --iters down so `all` stays bounded.
  if (all || target == "rules") fuzz_rules(iters / 10 + 1, seed), ran = true;
  if (all || target == "rulesverify") {
    fuzz_rulesverify(iters, seed);
    ran = true;
  }
  if (!ran) return usage();

  if (g_failures != 0) {
    std::fprintf(stderr, "packetfuzz: %d invariant failure(s)\n", g_failures);
    return 1;
  }
  std::printf("packetfuzz: %s clean (%llu iters, seed %llu)\n",
              target.c_str(), (unsigned long long)iters,
              (unsigned long long)seed);
  return 0;
}
