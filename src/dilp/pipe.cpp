#include "dilp/pipe.hpp"

#include <stdexcept>

#include "vcode/verifier.hpp"

namespace ash::dilp {
namespace {

bool gauge_matches(vcode::Op op, Gauge g, bool is_input) {
  using vcode::Op;
  switch (g) {
    case Gauge::G8:
      return op == (is_input ? Op::Pin8 : Op::Pout8);
    case Gauge::G16:
      return op == (is_input ? Op::Pin16 : Op::Pout16);
    case Gauge::G32:
      return op == (is_input ? Op::Pin32 : Op::Pout32);
  }
  return false;
}

bool is_pin(vcode::Op op) {
  return op == vcode::Op::Pin8 || op == vcode::Op::Pin16 ||
         op == vcode::Op::Pin32;
}

bool is_pout(vcode::Op op) {
  return op == vcode::Op::Pout8 || op == vcode::Op::Pout16 ||
         op == vcode::Op::Pout32;
}

}  // namespace

std::string validate_pipe(const Pipe& pipe) {
  vcode::VerifyPolicy policy;
  policy.allow_fp = false;
  policy.allow_signed_trap = false;
  policy.allow_trusted = false;
  policy.allow_pipe_io = true;
  policy.allow_indirect = false;
  const auto verdict = vcode::verify(pipe.body, policy);
  if (!verdict.ok()) return "body verification failed:\n" + verdict.to_string();

  int pins = 0;
  int pouts = 0;
  for (const auto& insn : pipe.body.insns) {
    if (op_info(insn.op).is_mem) {
      return "pipes may not access memory directly";
    }
    if (is_pin(insn.op)) {
      if (!gauge_matches(insn.op, pipe.in_gauge, /*is_input=*/true)) {
        return "pipe input width does not match declared in-gauge";
      }
      ++pins;
    }
    if (is_pout(insn.op)) {
      if (!gauge_matches(insn.op, pipe.out_gauge, /*is_input=*/false)) {
        return "pipe output width does not match declared out-gauge";
      }
      ++pouts;
    }
  }
  if (pins != 1) return "pipe must consume exactly one input per invocation";
  if (pipe.no_mod()) {
    if (pouts > 1) return "no-mod pipe may have at most one (ignored) output";
  } else {
    if (pouts != 1) {
      return "transforming pipe must produce exactly one output";
    }
    if (pipe.in_gauge != pipe.out_gauge) {
      // Gauge *conversion between pipes* is the compiler's job; a single
      // pipe transforms in place at one width in this implementation.
      return "transforming pipe must have matching in/out gauges";
    }
  }
  return {};
}

int PipeList::add(Pipe pipe) {
  const std::string problem = validate_pipe(pipe);
  if (!problem.empty()) {
    throw std::invalid_argument("invalid pipe '" + pipe.name +
                                "': " + problem);
  }
  pipes_.push_back(std::move(pipe));
  return static_cast<int>(pipes_.size() - 1);
}

Pipe PipeBuilder::finish() {
  builder_.halt();
  pipe_.body = builder_.take();
  const std::string problem = validate_pipe(pipe_);
  if (!problem.empty()) {
    throw std::invalid_argument("invalid pipe '" + name_ + "': " + problem);
  }
  return std::move(pipe_);
}

}  // namespace ash::dilp
