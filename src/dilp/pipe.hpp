// Pipes: the unit of dynamic integrated layer processing (Section II-B).
//
// A pipe is a tiny streaming computation — it consumes `in_gauge` bytes of
// message data per invocation, may transform them, and produces `out_gauge`
// bytes for the next pipe. Pipes are written in VCODE against the
// Pin*/Pout* pseudo-instructions; the DILP compiler (compiler.hpp) fuses a
// list of pipes into one integrated data-transfer loop so the message is
// traversed exactly once.
//
// Pipes carry the paper's attributes: P_COMMUTATIVE (the pipe may be
// applied to message words out of order) and P_NO_MOD (the pipe does not
// alter the data stream — e.g. a checksum), plus a gauge (P_GAUGE8/16/32).
// Persistent registers are preserved across invocations and can be
// exported/imported by the surrounding ASH (e.g. a checksum accumulator).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vcode/builder.hpp"
#include "vcode/program.hpp"

namespace ash::dilp {

enum class Gauge : std::uint8_t {
  G8 = 1,
  G16 = 2,
  G32 = 4,
};

/// Pipe attribute flags (the paper's P_COMMUTATIVE / P_NO_MOD).
inline constexpr std::uint32_t kCommutative = 1u << 0;
inline constexpr std::uint32_t kNoMod = 1u << 1;

struct Pipe {
  std::string name;
  Gauge in_gauge = Gauge::G32;
  Gauge out_gauge = Gauge::G32;
  std::uint32_t attrs = 0;

  /// The streaming body: must contain exactly one Pin of `in_gauge` and —
  /// unless kNoMod — exactly one Pout of `out_gauge`; ends with Halt.
  vcode::Program body;

  /// Registers preserved across invocations (accumulators). Values can be
  /// seeded before a transfer and read back afterwards.
  std::vector<vcode::Reg> persistent;

  bool commutative() const noexcept { return attrs & kCommutative; }
  bool no_mod() const noexcept { return attrs & kNoMod; }
};

/// Validate a pipe's structure. Returns an empty string when valid, else a
/// description of the problem. Pipes may not touch memory, make trusted
/// calls, or jump indirectly; they must consume exactly one input per
/// invocation and produce exactly one output (none for kNoMod pipes).
std::string validate_pipe(const Pipe& pipe);

/// An ordered list of pipes to be fused (the paper's `pipel`).
class PipeList {
 public:
  /// Append a pipe; returns its pipe id within this list. Throws
  /// std::invalid_argument if the pipe fails validation.
  int add(Pipe pipe);

  const Pipe& at(int id) const { return pipes_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const noexcept { return pipes_.size(); }
  const std::vector<Pipe>& pipes() const noexcept { return pipes_; }

 private:
  std::vector<Pipe> pipes_;
};

/// Helper for writing pipe bodies in the style of Fig. 2: wraps a
/// vcode::Builder, tracks persistent-register declarations, and finishes
/// the body with Halt + validation.
class PipeBuilder {
 public:
  PipeBuilder(std::string name, Gauge in, Gauge out, std::uint32_t attrs)
      : name_(std::move(name)) {
    pipe_.name = name_;
    pipe_.in_gauge = in;
    pipe_.out_gauge = out;
    pipe_.attrs = attrs;
  }

  /// The underlying code builder (the paper's p_* instruction stream).
  vcode::Builder& code() noexcept { return builder_; }

  /// Allocate a persistent register (the paper's p_getreg(..., P_VAR)).
  vcode::Reg persistent_reg() {
    const vcode::Reg r = builder_.reg();
    pipe_.persistent.push_back(r);
    return r;
  }

  /// Allocate a temporary register (not preserved across invocations).
  vcode::Reg temp_reg() { return builder_.reg(); }

  /// Finish the body (the paper's pipe_end()). Throws
  /// std::invalid_argument if the pipe is structurally invalid.
  Pipe finish();

 private:
  std::string name_;
  vcode::Builder builder_;
  Pipe pipe_;
};

}  // namespace ash::dilp
