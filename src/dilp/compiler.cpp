#include "dilp/compiler.hpp"

#include <algorithm>
#include <map>

namespace ash::dilp {

using vcode::Insn;
using vcode::Op;
using vcode::op_info;
using vcode::Program;
using vcode::Reg;

namespace {

/// Simple register allocator for the fused loop. Leaves the top three
/// registers free as sandbox scratch so a fused loop can itself be
/// sandboxed if desired.
class RegAlloc {
 public:
  bool alloc(Reg* out) {
    if (next_ >= vcode::kNumRegs - 3) return false;
    *out = next_++;
    return true;
  }

 private:
  Reg next_ = vcode::kRegArg3 + 1;  // r5; r1..r4 are the loop's arguments
};

std::uint32_t applications_per_word(Gauge g) {
  return 4u / static_cast<std::uint32_t>(g);
}

bool is_pin(Op op) {
  return op == Op::Pin8 || op == Op::Pin16 || op == Op::Pin32;
}
bool is_pout(Op op) {
  return op == Op::Pout8 || op == Op::Pout16 || op == Op::Pout32;
}

}  // namespace

std::optional<CompiledIlp> compile_pipes(const PipeList& pl, Direction dir,
                                         std::string* error,
                                         const LoopLayout& layout) {
  auto fail = [&](const std::string& msg) -> std::optional<CompiledIlp> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (layout.src_stripe_chunk != 0 &&
      (layout.src_stripe_chunk % 4 != 0 || layout.src_stripe_chunk < 4)) {
    return fail("stripe chunk must be a nonzero multiple of 4");
  }

  // Order of composition: Write = list order, Read = reverse.
  std::vector<int> order(pl.size());
  for (std::size_t i = 0; i < pl.size(); ++i) order[i] = static_cast<int>(i);
  if (dir == Direction::Read) std::reverse(order.begin(), order.end());

  CompiledIlp out;
  RegAlloc regs;
  Reg r_stride, r_word, r_out_acc, r_tmp;
  if (!regs.alloc(&r_stride) || !regs.alloc(&r_word) ||
      !regs.alloc(&r_out_acc) || !regs.alloc(&r_tmp)) {
    return fail("register exhaustion in loop skeleton");
  }

  // Per-pipe register renaming (stable across applications so persistent
  // registers really persist).
  std::vector<std::map<Reg, Reg>> pipe_regs(pl.size());
  auto map_reg = [&](int pipe_id, Reg r, Reg* out_reg) -> bool {
    if (r == vcode::kRegZero) {
      *out_reg = vcode::kRegZero;
      return true;
    }
    auto& m = pipe_regs[static_cast<std::size_t>(pipe_id)];
    auto it = m.find(r);
    if (it == m.end()) {
      Reg fresh;
      if (!regs.alloc(&fresh)) return false;
      it = m.emplace(r, fresh).first;
    }
    *out_reg = it->second;
    return true;
  };

  std::vector<Insn>& code = out.loop.insns;
  const Reg r_src = vcode::kRegArg0;   // r1
  const Reg r_dst = vcode::kRegArg1;   // r2
  const Reg r_len = vcode::kRegArg2;   // r3, counts down to 0

  const std::uint32_t chunk = layout.src_stripe_chunk;
  if (chunk != 0) {
    // Stripe countdown: bytes of data left in the current source chunk.
    code.push_back({Op::Movi, r_stride, 0, 0, chunk});
  }

  std::vector<std::uint32_t> done_fixups;  // branches to the loop exit

  // Pre-test once so a zero-length transfer never enters the loop; the
  // loop itself tests at the bottom (one branch per word, like the hand
  // loops the cost model describes).
  done_fixups.push_back(static_cast<std::uint32_t>(code.size()));
  code.push_back({Op::Beq, r_len, vcode::kRegZero, 0, 0});

  const std::uint32_t loop_top = static_cast<std::uint32_t>(code.size());
  // word = *(u32*)src  (unaligned-capable: device buffers may be odd)
  code.push_back({Op::Lwu_u, r_word, r_src, 0, 0});

  // Gauge-32 stream-register aliasing: a 32-bit pipe's Pin register is
  // mapped onto the loop's word register itself, eliminating the Pin/Pout
  // moves — the pipe transforms the stream value in place, which is
  // exactly the streaming semantics. Persistent registers are excluded
  // (they must survive across words).
  for (int pipe_id : order) {
    const Pipe& pipe = pl.at(pipe_id);
    if (pipe.in_gauge != Gauge::G32) continue;
    vcode::Reg pin_target = vcode::kRegZero;
    for (const Insn& insn : pipe.body.insns) {
      if (insn.op == Op::Pin32) pin_target = insn.a;
    }
    if (pin_target == vcode::kRegZero) continue;
    bool persistent = false;
    for (vcode::Reg pr : pipe.persistent) persistent |= pr == pin_target;
    if (persistent) continue;
    pipe_regs[static_cast<std::size_t>(pipe_id)].emplace(pin_target, r_word);
  }

  // Inline every pipe.
  for (int pipe_id : order) {
    const Pipe& pipe = pl.at(pipe_id);
    const std::uint32_t apps = applications_per_word(pipe.in_gauge);
    const std::uint32_t gauge_bits =
        8u * static_cast<std::uint32_t>(pipe.in_gauge);
    const std::uint32_t gauge_mask =
        gauge_bits >= 32 ? 0xffffffffu : (1u << gauge_bits) - 1;

    for (std::uint32_t k = 0; k < apps; ++k) {
      const std::size_t body_n = pipe.body.insns.size();
      std::vector<std::uint32_t> new_index(body_n, 0);
      struct BodyFixup {
        std::uint32_t out_pos;
        std::uint32_t body_target;
      };
      std::vector<BodyFixup> body_fixups;
      std::vector<std::uint32_t> end_jumps;  // Halts lowered to Jmp app-end

      for (std::size_t bi = 0; bi < body_n; ++bi) {
        new_index[bi] = static_cast<std::uint32_t>(code.size());
        Insn insn = pipe.body.insns[bi];
        const auto& info = op_info(insn.op);

        if (is_pin(insn.op)) {
          Reg rd;
          if (!map_reg(pipe_id, insn.a, &rd)) {
            return fail("register exhaustion inlining pipe " + pipe.name);
          }
          const std::uint32_t shift = k * gauge_bits;
          if (gauge_bits == 32) {
            if (rd != r_word) code.push_back({Op::Mov, rd, r_word, 0, 0});
          } else if (shift == 0) {
            code.push_back({Op::Andi, rd, r_word, 0, gauge_mask});
          } else {
            code.push_back({Op::Srli, rd, r_word, 0, shift});
            if (shift + gauge_bits < 32) {
              code.push_back({Op::Andi, rd, rd, 0, gauge_mask});
            }
          }
          continue;
        }
        if (is_pout(insn.op)) {
          if (pipe.no_mod()) continue;  // checksum-style: data unchanged
          Reg rs;
          if (!map_reg(pipe_id, insn.a, &rs)) {
            return fail("register exhaustion inlining pipe " + pipe.name);
          }
          const std::uint32_t shift = k * gauge_bits;
          if (gauge_bits == 32) {
            if (rs != r_word) code.push_back({Op::Mov, r_word, rs, 0, 0});
          } else if (k == 0) {
            // Start aggregating the output word.
            code.push_back({Op::Andi, r_out_acc, rs, 0, gauge_mask});
          } else {
            if (shift + gauge_bits < 32) {
              code.push_back({Op::Andi, r_tmp, rs, 0, gauge_mask});
              code.push_back({Op::Slli, r_tmp, r_tmp, 0, shift});
            } else {
              code.push_back({Op::Slli, r_tmp, rs, 0, shift});
            }
            code.push_back({Op::Or, r_out_acc, r_out_acc, r_tmp, 0});
            if (k + 1 == apps) {
              code.push_back({Op::Mov, r_word, r_out_acc, 0, 0});
            }
          }
          continue;
        }
        if (insn.op == Op::Halt) {
          if (bi + 1 != body_n) {
            end_jumps.push_back(static_cast<std::uint32_t>(code.size()));
            code.push_back({Op::Jmp, 0, 0, 0, 0});
          }
          continue;  // terminal Halt: fall through to the next stage
        }

        // Rename registers.
        if (info.reads_a || info.writes_a) {
          if (!map_reg(pipe_id, insn.a, &insn.a)) {
            return fail("register exhaustion inlining pipe " + pipe.name);
          }
        }
        if (info.reads_b) {
          if (!map_reg(pipe_id, insn.b, &insn.b)) {
            return fail("register exhaustion inlining pipe " + pipe.name);
          }
        }
        if (info.reads_c) {
          if (!map_reg(pipe_id, insn.c, &insn.c)) {
            return fail("register exhaustion inlining pipe " + pipe.name);
          }
        }
        if (info.is_branch) {
          body_fixups.push_back(
              {static_cast<std::uint32_t>(code.size()), insn.imm});
        }
        code.push_back(insn);
      }

      const std::uint32_t app_end = static_cast<std::uint32_t>(code.size());
      for (const BodyFixup& f : body_fixups) {
        code[f.out_pos].imm = new_index[f.body_target];
      }
      for (std::uint32_t pos : end_jumps) code[pos].imm = app_end;
    }
  }

  // Store the (possibly transformed) word and advance.
  code.push_back({Op::Sw_u, r_word, r_dst, 0, 0});
  code.push_back({Op::Addiu, r_src, r_src, 0, 4});
  code.push_back({Op::Addiu, r_dst, r_dst, 0, 4});
  code.push_back({Op::Addiu, r_len, r_len, 0,
                  static_cast<std::uint32_t>(-4)});
  if (chunk != 0) {
    // End of a data chunk? Skip the equal-sized pad region.
    code.push_back({Op::Addiu, r_stride, r_stride, 0,
                    static_cast<std::uint32_t>(-4)});
    const std::uint32_t cont = static_cast<std::uint32_t>(code.size()) + 3;
    code.push_back({Op::Bne, r_stride, vcode::kRegZero, 0, cont});
    code.push_back({Op::Addiu, r_src, r_src, 0, chunk});
    code.push_back({Op::Movi, r_stride, 0, 0, chunk});
  }
  code.push_back({Op::Bne, r_len, vcode::kRegZero, 0, loop_top});

  const std::uint32_t done = static_cast<std::uint32_t>(code.size());
  for (std::uint32_t pos : done_fixups) code[pos].imm = done;
  code.push_back({Op::Movi, vcode::kRegArg0, 0, 0, 0});
  code.push_back({Op::Halt, 0, 0, 0, 0});

  out.insns_per_word = done - loop_top;

  // Persistent register bindings, in pipe-list order (not composition
  // order), so callers can bind without caring about direction.
  for (std::size_t pid = 0; pid < pl.size(); ++pid) {
    for (Reg pr : pl.at(static_cast<int>(pid)).persistent) {
      Reg loop_reg;
      if (!map_reg(static_cast<int>(pid), pr, &loop_reg)) {
        return fail("register exhaustion binding persistents");
      }
      out.persistents.push_back({static_cast<int>(pid), pr, loop_reg});
    }
  }

  for (std::size_t i = 0; i < pl.size(); ++i) {
    if (i) out.summary += '|';
    out.summary += pl.at(static_cast<int>(i)).name;
  }
  if (out.summary.empty()) out.summary = "copy";
  out.summary += dir == Direction::Write ? " (write)" : " (read)";
  if (chunk != 0) out.summary += " [striped src]";
  return out;
}

}  // namespace ash::dilp
