// Native-host data-manipulation kernels.
//
// Two purposes:
//  1. Reference implementations to cross-check the fused VCODE loops
//     (property tests assert byte-identical results).
//  2. The native halves of bench_table3/bench_table4: the paper's memory
//     experiments (copy costs, integrated vs separate layer processing)
//     rerun on the host CPU with google-benchmark, demonstrating that the
//     single-traversal effect is real on modern hardware too.
//
// Mirrors the simulated pipeline structure: `separate_*` functions traverse
// once per operation (non-ILP), `integrated_*` are the hand-fused "C
// integrated" loops of Table IV, and `compose()` is the native analogue of
// the DILP compiler — it composes stage functions at runtime, dispatching
// to a pre-fused kernel when the composition is registered and falling
// back to a per-word indirect-call loop otherwise (the cost of that
// fallback is itself measured in the bench).
//
// All kernels operate on whole 32-bit words; lengths must be multiples
// of 4 (same contract as the fused VCODE loops, per Fig. 2's comment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace ash::dilp::native {

// --- separate (non-integrated) passes: one traversal each ---

void copy_pass(const std::uint8_t* src, std::uint8_t* dst, std::size_t len);

/// Ones'-complement accumulate over little-endian words (matches the
/// checksum pipe); returns the updated accumulator.
std::uint32_t cksum_pass(const std::uint8_t* data, std::size_t len,
                         std::uint32_t acc);

/// In-place 32-bit byteswap of every word.
void bswap_pass(std::uint8_t* data, std::size_t len);

/// In-place XOR of every word with `key`.
void xor_pass(std::uint8_t* data, std::size_t len, std::uint32_t key);

// --- hand-integrated loops (the "C integrated" rows of Table IV) ---

std::uint32_t integrated_copy_cksum(const std::uint8_t* src,
                                    std::uint8_t* dst, std::size_t len,
                                    std::uint32_t acc);

std::uint32_t integrated_copy_cksum_bswap(const std::uint8_t* src,
                                          std::uint8_t* dst, std::size_t len,
                                          std::uint32_t acc);

// --- runtime-composed kernels (native analogue of the DILP compiler) ---

enum class StageKind : std::uint8_t { Cksum, Bswap, Xor };

/// A composed transfer kernel: copies src -> dst applying the stages in
/// order. `state` has one word per stage (checksum accumulator seed / XOR
/// key / ignored), updated in place.
using Kernel = std::function<void(const std::uint8_t* src, std::uint8_t* dst,
                                  std::size_t len, std::uint32_t* state)>;

struct Composed {
  Kernel kernel;
  bool fused;  // true: pre-fused template kernel; false: generic fallback
};

/// Compose stages at runtime. Compositions of up to two stages dispatch to
/// statically fused kernels; longer ones use the generic per-word loop.
Composed compose(std::span<const StageKind> stages);

}  // namespace ash::dilp::native
