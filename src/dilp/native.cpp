#include "dilp/native.hpp"

#include <cstring>

#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::dilp::native {
namespace {

std::uint32_t load_word(const std::uint8_t* p) { return util::load_u32(p); }
void store_word(std::uint8_t* p, std::uint32_t w) { util::store_u32(p, w); }

/// One stage applied to one word. Kept trivially inlinable so the fused
/// template kernels compile to tight single loops.
template <StageKind K>
inline std::uint32_t apply_stage(std::uint32_t w, std::uint32_t& state) {
  if constexpr (K == StageKind::Cksum) {
    state = util::cksum32_accumulate(state, w);
    return w;
  } else if constexpr (K == StageKind::Bswap) {
    return util::bswap32(w);
  } else {
    return w ^ state;  // Xor
  }
}

template <StageKind... Ks>
void fused(const std::uint8_t* src, std::uint8_t* dst, std::size_t len,
           std::uint32_t* state) {
  for (std::size_t i = 0; i < len; i += 4) {
    std::uint32_t w = load_word(src + i);
    std::size_t s = 0;
    ((w = apply_stage<Ks>(w, state[s++])), ...);
    (void)s;
    store_word(dst + i, w);
  }
}

std::uint32_t run_one(StageKind k, std::uint32_t w, std::uint32_t& state) {
  switch (k) {
    case StageKind::Cksum: return apply_stage<StageKind::Cksum>(w, state);
    case StageKind::Bswap: return apply_stage<StageKind::Bswap>(w, state);
    case StageKind::Xor: return apply_stage<StageKind::Xor>(w, state);
  }
  return w;
}

/// Generic fallback: per-word dispatch over the stage vector.
void generic(std::vector<StageKind> stages, const std::uint8_t* src,
             std::uint8_t* dst, std::size_t len, std::uint32_t* state) {
  for (std::size_t i = 0; i < len; i += 4) {
    std::uint32_t w = load_word(src + i);
    for (std::size_t s = 0; s < stages.size(); ++s) {
      w = run_one(stages[s], w, state[s]);
    }
    store_word(dst + i, w);
  }
}

}  // namespace

void copy_pass(const std::uint8_t* src, std::uint8_t* dst, std::size_t len) {
  std::memcpy(dst, src, len);
}

std::uint32_t cksum_pass(const std::uint8_t* data, std::size_t len,
                         std::uint32_t acc) {
  for (std::size_t i = 0; i < len; i += 4) {
    acc = util::cksum32_accumulate(acc, load_word(data + i));
  }
  return acc;
}

void bswap_pass(std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; i += 4) {
    store_word(data + i, util::bswap32(load_word(data + i)));
  }
}

void xor_pass(std::uint8_t* data, std::size_t len, std::uint32_t key) {
  for (std::size_t i = 0; i < len; i += 4) {
    store_word(data + i, load_word(data + i) ^ key);
  }
}

std::uint32_t integrated_copy_cksum(const std::uint8_t* src,
                                    std::uint8_t* dst, std::size_t len,
                                    std::uint32_t acc) {
  for (std::size_t i = 0; i < len; i += 4) {
    const std::uint32_t w = load_word(src + i);
    acc = util::cksum32_accumulate(acc, w);
    store_word(dst + i, w);
  }
  return acc;
}

std::uint32_t integrated_copy_cksum_bswap(const std::uint8_t* src,
                                          std::uint8_t* dst, std::size_t len,
                                          std::uint32_t acc) {
  for (std::size_t i = 0; i < len; i += 4) {
    const std::uint32_t w = load_word(src + i);
    acc = util::cksum32_accumulate(acc, w);
    store_word(dst + i, util::bswap32(w));
  }
  return acc;
}

Composed compose(std::span<const StageKind> stages) {
  using K = StageKind;
  if (stages.empty()) {
    return {Kernel(&fused<>), true};
  }
  if (stages.size() == 1) {
    switch (stages[0]) {
      case K::Cksum: return {Kernel(&fused<K::Cksum>), true};
      case K::Bswap: return {Kernel(&fused<K::Bswap>), true};
      case K::Xor: return {Kernel(&fused<K::Xor>), true};
    }
  }
  if (stages.size() == 2) {
    // Nested dispatch over the 9 two-stage compositions.
    auto second = [&](auto first_tag) -> Kernel {
      constexpr K F = decltype(first_tag)::value;
      switch (stages[1]) {
        case K::Cksum: return Kernel(&fused<F, K::Cksum>);
        case K::Bswap: return Kernel(&fused<F, K::Bswap>);
        case K::Xor: return Kernel(&fused<F, K::Xor>);
      }
      return {};
    };
    switch (stages[0]) {
      case K::Cksum:
        return {second(std::integral_constant<K, K::Cksum>{}), true};
      case K::Bswap:
        return {second(std::integral_constant<K, K::Bswap>{}), true};
      case K::Xor:
        return {second(std::integral_constant<K, K::Xor>{}), true};
    }
  }
  // Longer compositions: generic per-word dispatch.
  std::vector<StageKind> copy(stages.begin(), stages.end());
  return {[copy = std::move(copy)](const std::uint8_t* src, std::uint8_t* dst,
                                   std::size_t len, std::uint32_t* state) {
            generic(copy, src, dst, len, state);
          },
          false};
}

}  // namespace ash::dilp::native
