// The standard pipe library: the pipes used throughout the paper's
// evaluation — Internet checksum (Fig. 2), byteswap (Fig. 1), XOR "crypt",
// and identity. Applications can of course write their own with
// PipeBuilder; these mirror the paper's mk_*_pipe helpers.
#pragma once

#include "dilp/pipe.hpp"

namespace ash::dilp {

/// The checksum pipe of Fig. 2: 32-bit gauge, commutative, no-mod.
/// Accumulates message words into a persistent ones'-complement
/// accumulator using the p_cksum32 VCODE extension. `acc_reg_out`
/// receives the persistent register to seed/read (the paper's cksum_reg).
///
/// The accumulator sums little-endian words (the simulated machine's
/// byte order); fold with util::fold16_le_word_sum to obtain the
/// big-endian Internet checksum.
Pipe make_cksum_pipe(vcode::Reg* acc_reg_out);

/// 32-bit byteswap pipe (big<->little endian words), as composed in Fig. 1.
Pipe make_byteswap_pipe();

/// 16-bit-gauge byteswap pipe: swaps bytes within each halfword. Exists
/// chiefly to exercise the compiler's gauge-conversion machinery.
Pipe make_byteswap16_pipe();

/// XOR "encryption" pipe: XORs each word with a persistent key register
/// (seeded via export, like the checksum accumulator).
Pipe make_xor_pipe(vcode::Reg* key_reg_out);

/// Identity pipe at a given gauge (useful for tests and for forcing
/// gauge conversions inside a pipeline).
Pipe make_identity_pipe(Gauge gauge);

}  // namespace ash::dilp
