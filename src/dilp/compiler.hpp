// The dynamic-ILP pipe compiler (Section II-B, Fig. 1's compile_pl).
//
// Fuses an ordered list of pipes into one integrated VCODE data-transfer
// loop: per 32-bit message word, the loop loads once, streams the word
// through every pipe body (inlined, with registers renamed and pipe I/O
// lowered to register moves / gauge extraction), and stores once. The
// message is therefore traversed exactly once regardless of how many
// layers' manipulations are composed — the whole point of ILP — and the
// composition is decided at runtime, which is what distinguishes this
// from the static ILP of Abbott & Peterson.
//
// Gauge coupling: a 16-bit-gauge pipe inlined into the 32-bit loop is
// applied twice per word (low, high halfword), an 8-bit-gauge pipe four
// times; outputs are re-aggregated into the word register. This implements
// the paper's "the ASH system performs conversions between the required
// sizes ... aggregated into a single register".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dilp/pipe.hpp"
#include "vcode/program.hpp"

namespace ash::dilp {

/// Transfer direction (the paper's PIPE_READ / PIPE_WRITE): Write composes
/// the pipes in list order (memory -> network), Read composes them in
/// reverse (network -> memory), so one pipe list can serve both sides of
/// a symmetric transformation.
enum class Direction : std::uint8_t { Read, Write };

/// Network-interface-specific loop shape (Section III-C: "Different loops
/// may be generated for different network interfaces"). A nonzero
/// src_stripe_chunk generates the Ethernet variant that reads a source
/// striped as chunk bytes of data alternating with chunk bytes of padding.
struct LoopLayout {
  std::uint32_t src_stripe_chunk = 0;  // 0 = contiguous source

  friend bool operator==(const LoopLayout&, const LoopLayout&) = default;
};

/// Where one pipe's persistent register landed in the fused loop, so the
/// caller can export (seed) and import (read back) accumulators.
struct PersistentBinding {
  int pipe_id;            // index in the source PipeList
  vcode::Reg pipe_reg;    // register within the pipe body
  vcode::Reg loop_reg;    // register in the fused program
};

struct CompiledIlp {
  /// The fused transfer loop. Calling convention: r1 = src address,
  /// r2 = dst address, r3 = length in bytes (must be a multiple of 4).
  /// Halts with r1 = 0 on success. src == dst performs an in-place
  /// transform; a no-mod-only pipeline with src != dst is a plain copy.
  vcode::Program loop;

  std::vector<PersistentBinding> persistents;

  /// Static instruction count of one loop iteration (one 32-bit word) —
  /// used by cost accounting and reported by the benches.
  std::uint32_t insns_per_word = 0;

  /// Human-readable composition summary, e.g. "cksum|byteswap32 (write)".
  std::string summary;
};

/// Fuse `pl` into a single transfer loop. Returns nullopt and sets `error`
/// if the pipes cannot be composed (register pressure, invalid pipe,
/// unusable stripe chunk). An empty pipe list compiles to a bare copy loop.
std::optional<CompiledIlp> compile_pipes(const PipeList& pl, Direction dir,
                                         std::string* error,
                                         const LoopLayout& layout = {});

}  // namespace ash::dilp
