#include "dilp/engine.hpp"

#include <array>

namespace ash::dilp {

Engine::Engine() {
  const int env_override = vcode::code_cache_env_override();
  if (env_override >= 0) {
    backend_ = env_override != 0 ? vcode::Backend::CodeCache
                                 : vcode::Backend::Interp;
  }
  vcode::backend_env_override(&backend_);
}

int Engine::register_ilp(const PipeList& pl, Direction dir,
                         std::string* error, const LoopLayout& layout) {
  auto compiled = compile_pipes(pl, dir, error, layout);
  if (!compiled) return -1;
  ilps_.push_back(std::move(*compiled));
  // Translate stage: the fused loop goes through the same download-time
  // translation ASHs get, once, at registration. Both forms are built so
  // the backend knob stays a pure execution-path selector.
  caches_.push_back(std::make_unique<vcode::CodeCache>(ilps_.back().loop));
  jits_.push_back(std::make_unique<vcode::JitBackend>(ilps_.back().loop));
  return static_cast<int>(ilps_.size() - 1);
}

const CompiledIlp* Engine::get(int id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= ilps_.size()) return nullptr;
  return &ilps_[static_cast<std::size_t>(id)];
}

const vcode::CodeCache* Engine::code_cache(int id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= caches_.size()) return nullptr;
  return caches_[static_cast<std::size_t>(id)].get();
}

const vcode::JitBackend* Engine::jit_backend(int id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= jits_.size()) return nullptr;
  return jits_[static_cast<std::size_t>(id)].get();
}

Engine::RunResult Engine::run(int id, vcode::Env& env, std::uint32_t src,
                              std::uint32_t dst, std::uint32_t len,
                              std::span<const std::uint32_t> persistent_in,
                              std::vector<std::uint32_t>* persistent_out) const {
  RunResult result;
  const CompiledIlp* ilp = get(id);
  if (ilp == nullptr || (len & 3u) != 0) {
    result.invalid_args = true;
    return result;
  }

  vcode::ExecLimits limits;
  // Generous static bound: the loop's own length per word plus slack.
  limits.max_insns =
      64 + static_cast<std::uint64_t>(len / 4 + 1) *
               (ilp->insns_per_word + 8);

  if (backend_ != vcode::Backend::Interp) {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = src;
    regs[vcode::kRegArg1] = dst;
    regs[vcode::kRegArg2] = len;
    for (std::size_t i = 0; i < ilp->persistents.size(); ++i) {
      const vcode::Reg r = ilp->persistents[i].loop_reg;
      if (r != vcode::kRegZero && r < vcode::kNumRegs) {
        regs[r] = i < persistent_in.size() ? persistent_in[i] : 0;
      }
    }
    if (backend_ == vcode::Backend::Jit) {
      result.exec =
          jits_[static_cast<std::size_t>(id)]->run(env, regs, limits);
    } else {
      result.exec =
          caches_[static_cast<std::size_t>(id)]->run(env, regs, limits);
    }
    if (persistent_out != nullptr) {
      persistent_out->clear();
      persistent_out->reserve(ilp->persistents.size());
      for (const PersistentBinding& b : ilp->persistents) {
        persistent_out->push_back(regs[b.loop_reg]);
      }
    }
    return result;
  }

  vcode::Interpreter interp(ilp->loop, env);
  interp.set_args(src, dst, len);
  for (std::size_t i = 0; i < ilp->persistents.size(); ++i) {
    const std::uint32_t seed = i < persistent_in.size() ? persistent_in[i] : 0;
    interp.set_reg(ilp->persistents[i].loop_reg, seed);
  }
  result.exec = interp.run(limits);

  if (persistent_out != nullptr) {
    persistent_out->clear();
    persistent_out->reserve(ilp->persistents.size());
    for (const PersistentBinding& b : ilp->persistents) {
      persistent_out->push_back(interp.reg(b.loop_reg));
    }
  }
  return result;
}

}  // namespace ash::dilp
