// The DILP engine: owns compiled integrated-transfer loops and runs them.
//
// This is the component behind the paper's `compile_pl` handle: an
// application (or the TCP library's fast-path handler) registers a pipe
// list once, receives an integer ilp id, and later asks the engine to move
// `len` bytes from `src` to `dst` through the fused loop. The engine
// executes the loop on the VCODE machine against whatever execution
// environment the caller provides — in the full system that environment is
// the simulated kernel's, so every load/store passes through the node's
// cache model and the single-traversal benefit is visible in measured
// cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dilp/compiler.hpp"
#include "vcode/backend.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"
#include "vcode/jit/jit.hpp"

namespace ash::dilp {

class Engine {
 public:
  /// By default the engine translates each registered loop at registration
  /// time (the same download-time translate stage ASHs get) and runs
  /// through the pre-decoded threaded form; ASH_USE_CODE_CACHE and then
  /// ASH_BACKEND override the initial setting. Simulated results are
  /// identical across all backends. With Backend::Jit, the superblock
  /// lowering additionally fuses the whole loop (checksum + byteswap +
  /// copy) into one emitted host pass over the message.
  Engine();
  /// Compile and register a pipe composition. Returns the ilp id, or -1
  /// on failure (with `error` filled in). `layout` selects the network-
  /// interface-specific loop variant (e.g. Ethernet striped source).
  int register_ilp(const PipeList& pl, Direction dir, std::string* error,
                   const LoopLayout& layout = {});

  /// Registered compilation, or nullptr for an unknown id.
  const CompiledIlp* get(int id) const noexcept;

  std::size_t size() const noexcept { return ilps_.size(); }

  struct RunResult {
    bool invalid_args = false;      // bad id or length not a multiple of 4
    vcode::ExecResult exec;         // outcome/cycles/insns of the fused loop
    bool ok() const noexcept { return !invalid_args && exec.ok(); }
  };

  /// Transfer `len` bytes from `src` to `dst` (user virtual addresses in
  /// `env`) through ilp `id`. `persistent_in` seeds the persistent
  /// registers (in CompiledIlp::persistents order; missing entries default
  /// to 0); `persistent_out`, when non-null, receives their final values.
  RunResult run(int id, vcode::Env& env, std::uint32_t src, std::uint32_t dst,
                std::uint32_t len,
                std::span<const std::uint32_t> persistent_in = {},
                std::vector<std::uint32_t>* persistent_out = nullptr) const;

  /// Ablation knob: which engine executes the loops. Translation always
  /// happens at registration; this only selects the execution path for
  /// future run() calls.
  void set_backend(vcode::Backend be) noexcept { backend_ = be; }
  vcode::Backend backend() const noexcept { return backend_; }

  /// Legacy two-way form of set_backend, kept for the existing ablation
  /// surface: true = CodeCache, false = Interp.
  void set_use_code_cache(bool on) noexcept {
    backend_ = on ? vcode::Backend::CodeCache : vcode::Backend::Interp;
  }
  bool use_code_cache() const noexcept {
    return backend_ == vcode::Backend::CodeCache;
  }

  /// The translated forms of a registered loop (always built; cheap, and
  /// they keep the knob a pure execution-path selector).
  const vcode::CodeCache* code_cache(int id) const noexcept;
  const vcode::JitBackend* jit_backend(int id) const noexcept;

 private:
  std::vector<CompiledIlp> ilps_;
  // Parallel to ilps_: the translated loop bodies.
  std::vector<std::unique_ptr<vcode::CodeCache>> caches_;
  std::vector<std::unique_ptr<vcode::JitBackend>> jits_;
  vcode::Backend backend_ = vcode::Backend::CodeCache;
};

}  // namespace ash::dilp
