// The DILP engine: owns compiled integrated-transfer loops and runs them.
//
// This is the component behind the paper's `compile_pl` handle: an
// application (or the TCP library's fast-path handler) registers a pipe
// list once, receives an integer ilp id, and later asks the engine to move
// `len` bytes from `src` to `dst` through the fused loop. The engine
// executes the loop on the VCODE machine against whatever execution
// environment the caller provides — in the full system that environment is
// the simulated kernel's, so every load/store passes through the node's
// cache model and the single-traversal benefit is visible in measured
// cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dilp/compiler.hpp"
#include "vcode/codecache.hpp"
#include "vcode/interp.hpp"

namespace ash::dilp {

class Engine {
 public:
  /// By default the engine translates each registered loop into the
  /// pre-decoded threaded form at registration time (the same download-time
  /// translate stage ASHs get) and runs through it; ASH_USE_CODE_CACHE
  /// overrides the initial setting. Simulated results are identical either
  /// way.
  Engine();
  /// Compile and register a pipe composition. Returns the ilp id, or -1
  /// on failure (with `error` filled in). `layout` selects the network-
  /// interface-specific loop variant (e.g. Ethernet striped source).
  int register_ilp(const PipeList& pl, Direction dir, std::string* error,
                   const LoopLayout& layout = {});

  /// Registered compilation, or nullptr for an unknown id.
  const CompiledIlp* get(int id) const noexcept;

  std::size_t size() const noexcept { return ilps_.size(); }

  struct RunResult {
    bool invalid_args = false;      // bad id or length not a multiple of 4
    vcode::ExecResult exec;         // outcome/cycles/insns of the fused loop
    bool ok() const noexcept { return !invalid_args && exec.ok(); }
  };

  /// Transfer `len` bytes from `src` to `dst` (user virtual addresses in
  /// `env`) through ilp `id`. `persistent_in` seeds the persistent
  /// registers (in CompiledIlp::persistents order; missing entries default
  /// to 0); `persistent_out`, when non-null, receives their final values.
  RunResult run(int id, vcode::Env& env, std::uint32_t src, std::uint32_t dst,
                std::uint32_t len,
                std::span<const std::uint32_t> persistent_in = {},
                std::vector<std::uint32_t>* persistent_out = nullptr) const;

  /// Ablation knob: execute loops through the translated form (true) or
  /// the interpreter (false). Translation always happens at registration;
  /// this only selects the execution path for future run() calls.
  void set_use_code_cache(bool on) noexcept { use_cache_ = on; }
  bool use_code_cache() const noexcept { return use_cache_; }

 private:
  std::vector<CompiledIlp> ilps_;
  // Parallel to ilps_: the translated loop bodies (always built; cheap,
  // and keeps the knob a pure execution-path selector).
  std::vector<std::unique_ptr<vcode::CodeCache>> caches_;
  bool use_cache_ = true;
};

}  // namespace ash::dilp
