#include "dilp/stdpipes.hpp"

namespace ash::dilp {

Pipe make_cksum_pipe(vcode::Reg* acc_reg_out) {
  // Fig. 2: pipe_lambda(pl, &pipe_id, P_GAUGE32, P_COMMUTATIVE | P_NO_MOD)
  PipeBuilder pb("cksum", Gauge::G32, Gauge::G32, kCommutative | kNoMod);
  const vcode::Reg acc = pb.persistent_reg();  // p_getreg(..., P_VAR)
  const vcode::Reg in = pb.temp_reg();
  pb.code().pin32(in);        // p_input32(p_inputr)
  pb.code().cksum32(acc, in); // p_cksum32(reg, p_inputr)
  pb.code().pout32(in);       // p_output32(p_inputr) — unchanged data
  if (acc_reg_out) *acc_reg_out = acc;
  return pb.finish();
}

Pipe make_byteswap_pipe() {
  PipeBuilder pb("byteswap32", Gauge::G32, Gauge::G32, kCommutative);
  const vcode::Reg in = pb.temp_reg();
  pb.code().pin32(in);
  pb.code().bswap32(in, in);
  pb.code().pout32(in);
  return pb.finish();
}

Pipe make_byteswap16_pipe() {
  PipeBuilder pb("byteswap16", Gauge::G16, Gauge::G16, kCommutative);
  const vcode::Reg in = pb.temp_reg();
  pb.code().pin16(in);
  pb.code().bswap16(in, in);
  pb.code().pout16(in);
  return pb.finish();
}

Pipe make_xor_pipe(vcode::Reg* key_reg_out) {
  PipeBuilder pb("xorcrypt", Gauge::G32, Gauge::G32, kCommutative);
  const vcode::Reg key = pb.persistent_reg();
  const vcode::Reg in = pb.temp_reg();
  pb.code().pin32(in);
  pb.code().xor_(in, in, key);
  pb.code().pout32(in);
  if (key_reg_out) *key_reg_out = key;
  return pb.finish();
}

Pipe make_identity_pipe(Gauge gauge) {
  PipeBuilder pb("identity", gauge, gauge, kCommutative);
  const vcode::Reg in = pb.temp_reg();
  switch (gauge) {
    case Gauge::G8:
      pb.code().pin8(in);
      pb.code().pout8(in);
      break;
    case Gauge::G16:
      pb.code().pin16(in);
      pb.code().pout16(in);
      break;
    case Gauge::G32:
      pb.code().pin32(in);
      pb.code().pout32(in);
      break;
  }
  return pb.finish();
}

}  // namespace ash::dilp
