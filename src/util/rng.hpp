// Deterministic xorshift-based PRNG for tests, workload generators, and the
// simulator's loss models. Deterministic seeding keeps every experiment and
// property test reproducible run-to-run.
#pragma once

#include <cstdint>

namespace ash::util {

/// xoshiro256** — small, fast, high-quality PRNG. Not cryptographic.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    // SplitMix64 to spread the seed across state words.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace ash::util
