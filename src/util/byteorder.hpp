// Byte-order helpers for on-the-wire protocol encoding.
//
// All wire formats in this library (Ethernet, ARP, IP, UDP, TCP) are
// big-endian; these helpers read/write network byte order from byte
// buffers without alignment requirements.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace ash::util {

/// Swap the byte order of a 16-bit value.
constexpr std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

/// Swap the byte order of a 32-bit value.
constexpr std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

/// Host-to-network (big-endian) conversion for 16-bit values.
constexpr std::uint16_t hton16(std::uint16_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) return bswap16(v);
  return v;
}

/// Host-to-network (big-endian) conversion for 32-bit values.
constexpr std::uint32_t hton32(std::uint32_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) return bswap32(v);
  return v;
}

constexpr std::uint16_t ntoh16(std::uint16_t v) noexcept { return hton16(v); }
constexpr std::uint32_t ntoh32(std::uint32_t v) noexcept { return hton32(v); }

/// Read a big-endian 16-bit value from an unaligned buffer.
inline std::uint16_t load_be16(const void* p) noexcept {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return ntoh16(v);
}

/// Read a big-endian 32-bit value from an unaligned buffer.
inline std::uint32_t load_be32(const void* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return ntoh32(v);
}

/// Write a big-endian 16-bit value to an unaligned buffer.
inline void store_be16(void* p, std::uint16_t v) noexcept {
  v = hton16(v);
  std::memcpy(p, &v, sizeof v);
}

/// Write a big-endian 32-bit value to an unaligned buffer.
inline void store_be32(void* p, std::uint32_t v) noexcept {
  v = hton32(v);
  std::memcpy(p, &v, sizeof v);
}

/// Read a native-endian 32-bit value from an unaligned buffer.
inline std::uint32_t load_u32(const void* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Write a native-endian 32-bit value to an unaligned buffer.
inline void store_u32(void* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}

}  // namespace ash::util
