// Internet checksum (RFC 1071) — the ones'-complement sum used by IP, UDP,
// and TCP, and by the paper's checksum pipe (Fig. 2).
//
// The 32-bit accumulation form (`cksum32_accumulate`) mirrors the paper's
// `p_cksum32` VCODE primitive: fold a 32-bit word into a 32-bit running
// accumulator with end-around carry; `fold16` reduces to the final 16-bit
// checksum field value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ash::util {

/// Add one 32-bit word into a 32-bit ones'-complement accumulator with
/// end-around carry (the paper's p_cksum32 primitive).
constexpr std::uint32_t cksum32_accumulate(std::uint32_t acc,
                                           std::uint32_t word) noexcept {
  std::uint64_t sum = static_cast<std::uint64_t>(acc) + word;
  // End-around carry: fold bit 32 back into bit 0.
  sum = (sum & 0xffffffffu) + (sum >> 32);
  return static_cast<std::uint32_t>((sum & 0xffffffffu) + (sum >> 32));
}

/// Fold a 32-bit ones'-complement accumulator to 16 bits.
constexpr std::uint16_t fold16(std::uint32_t acc) noexcept {
  acc = (acc & 0xffffu) + (acc >> 16);
  acc = (acc & 0xffffu) + (acc >> 16);
  return static_cast<std::uint16_t>(acc);
}

/// Fold an accumulator built by summing *little-endian* 32-bit words
/// (the checksum pipe's word-at-a-time algorithm on the little-endian
/// simulated machine) into the big-endian Internet checksum sum.
/// Ones'-complement addition commutes with byte swapping, so summing
/// byte-swapped words and swapping the folded result is equivalent to
/// summing big-endian 16-bit words directly.
constexpr std::uint16_t fold16_le_word_sum(std::uint32_t acc) noexcept {
  const std::uint16_t folded = fold16(acc);
  return static_cast<std::uint16_t>((folded << 8) | (folded >> 8));
}

/// Ones'-complement sum of a byte range, returned as an unfolded 32-bit
/// accumulator. `acc` allows incremental computation over multiple ranges;
/// ranges after the first must start at an even offset within the
/// conceptual message, which all protocol uses here satisfy.
std::uint32_t cksum_partial(std::span<const std::uint8_t> data,
                            std::uint32_t acc = 0) noexcept;

/// Full Internet checksum of a byte range: the ones' complement of the
/// ones'-complement sum, as stored in IP/UDP/TCP header fields.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Verify data whose checksum field is already in place: the ones'-
/// complement sum over the whole range must be 0xffff (or 0x0000 treated
/// as equivalent after folding a complemented field).
bool checksum_ok(std::span<const std::uint8_t> data) noexcept;

}  // namespace ash::util
