#include "util/checksum.hpp"

#include "util/byteorder.hpp"

namespace ash::util {

std::uint32_t cksum_partial(std::span<const std::uint8_t> data,
                            std::uint32_t acc) noexcept {
  // Sum 16-bit big-endian words. Work in a 64-bit accumulator and fold
  // carries at the end; a 64-bit accumulator cannot overflow for any
  // realistic packet size (would need > 2^48 bytes).
  std::uint64_t sum = acc;
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 1 < n; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < n) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;  // pad odd byte with 0
  }
  while (sum >> 32) sum = (sum & 0xffffffffu) + (sum >> 32);
  return static_cast<std::uint32_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(~fold16(cksum_partial(data)));
}

bool checksum_ok(std::span<const std::uint8_t> data) noexcept {
  return fold16(cksum_partial(data)) == 0xffff;
}

}  // namespace ash::util
