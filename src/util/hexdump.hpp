// Debug helper: format a byte range as a classic offset/hex/ASCII dump.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ash::util {

/// Render `data` as a human-readable hex dump (16 bytes per line).
std::string hexdump(std::span<const std::uint8_t> data);

}  // namespace ash::util
