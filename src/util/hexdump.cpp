#include "util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace ash::util {

std::string hexdump(std::span<const std::uint8_t> data) {
  std::string out;
  char line[128];
  for (std::size_t off = 0; off < data.size(); off += 16) {
    int n = std::snprintf(line, sizeof line, "%08zx  ", off);
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < 16; ++i) {
      if (off + i < data.size()) {
        n = std::snprintf(line, sizeof line, "%02x ", data[off + i]);
        out.append(line, static_cast<std::size_t>(n));
      } else {
        out.append("   ");
      }
      if (i == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t i = 0; i < 16 && off + i < data.size(); ++i) {
      const unsigned char c = data[off + i];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  return out;
}

}  // namespace ash::util
