// The TCP common-case fast path as a downloadable handler (Section V-B).
//
// "Our TCP implementation lowers the cost of data transfer by placing the
// common-case fast path in a handler which can be run either as an ASH or
// an upcall. This handler employs dynamic ILP to combine the checksum and
// copy of message data."
//
// The handler runs at message arrival, before any scheduling decision:
//  1. aborts (voluntarily) unless the packet is "expected" — header
//     prediction: established connection, plain ACK(+data), seq == rcv_nxt
//     — and the library is not mid-TCB (`lib_busy`), and the staging ring
//     has contiguous room;
//  2. verifies the TCP checksum while copying the payload into the shared
//     staging ring with one fused DILP traversal (checksum pipe + copy);
//  3. commits: advances rcv_nxt and the staging ring, records the
//     cumulative ACK and the peer window for the library's writer;
//  4. patches the connection's pre-built ACK template (seq/ack/window +
//     TCP checksum) and transmits it — all without waking the application.
//
// Any deviation aborts and the packet falls back to the user-level
// library, which re-runs full protocol processing on it.
#pragma once

#include <optional>
#include <string>

#include "core/ash.hpp"
#include "core/upcall.hpp"
#include "proto/tcp.hpp"

namespace ash::ashlib {

/// Build the fast-path VCODE program against DILP kernel `ilp_id` (a
/// cksum|copy composition registered in the node's engine; see
/// register_fastpath_ilp). The TCB base arrives as the handler's user
/// argument (r3). `hdr_off` is the link framing size before the IP header
/// (0 for the AN2, proto::kEthHeaderLen for Ethernet) — message bytes are
/// accessed through TMsgLoad/TDilp, so one handler body serves both NICs.
vcode::Program make_tcp_fastpath_program(int ilp_id,
                                         std::uint32_t hdr_off = 0);

/// Register the checksum+copy DILP composition the fast path invokes.
/// Returns the ilp id, or -1 with `error` set.
int register_fastpath_ilp(core::AshSystem& ash, std::string* error);

struct TcpFastPath {
  int ash_id = -1;
  int ilp_id = -1;
  sandbox::Report report;
};

/// One-call installation: register the DILP kernel, build + download the
/// handler (per `opts`), attach it to `vc` on `dev`, and flip the
/// connection into handler mode. Returns nullopt with `error` set on
/// failure.
std::optional<TcpFastPath> install_tcp_fastpath(core::AshSystem& ash,
                                                net::An2Device& dev, int vc,
                                                proto::TcpConnection& conn,
                                                const core::AshOptions& opts,
                                                std::string* error);

/// Install the fast path on an Ethernet/DPF endpoint: the handler reads
/// the (striped) frame through trusted calls, moves the payload with a
/// single fused traversal, and replies with an Ethernet-framed ACK built
/// from the connection's template. `local_mac`/`peer_mac` frame the ACK.
std::optional<TcpFastPath> install_tcp_fastpath_eth(
    core::AshSystem& ash, net::EthernetDevice& dev, int endpoint,
    proto::TcpConnection& conn, const proto::MacAddr& local_mac,
    const proto::MacAddr& peer_mac, const core::AshOptions& opts,
    std::string* error);

/// The same fast path as a *fast asynchronous upcall* (the paper's
/// comparison point): native code at user level, same TCB discipline,
/// integrated checksum+copy via the charged memops, deferred ACK send.
void install_tcp_fastpath_upcall(core::UpcallManager& upcalls,
                                 net::An2Device& dev, int vc,
                                 proto::TcpConnection& conn);

}  // namespace ash::ashlib
