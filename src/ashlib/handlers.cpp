#include "ashlib/handlers.hpp"

#include "vcode/builder.hpp"

namespace ash::ashlib {

using vcode::Builder;
using vcode::kRegArg0;  // r1: message address
using vcode::kRegArg1;  // r2: message length
using vcode::kRegArg2;  // r3: user argument
using vcode::kRegArg3;  // r4: reply channel
using vcode::kRegZero;
using vcode::Label;
using vcode::Reg;

vcode::Program make_remote_increment() {
  Builder b;
  const Reg v = b.reg();
  // Protocol sanity: the message must carry at least 4 bytes.
  const Reg four = b.reg();
  Label bad = b.label();
  b.movi(four, 4);
  b.bltu(kRegArg1, four, bad);
  // Increment the counter the application bound at attach time.
  b.lw(v, kRegArg2, 0);
  b.addiu(v, v, 1);
  b.sw(v, kRegArg2, 0);
  // Message initiation: echo the message as the reply.
  b.t_send(kRegArg3, kRegArg0, kRegArg1);
  b.movi(kRegArg0, 1);
  b.halt();
  b.bind(bad);
  b.abort(1);
  return b.take();
}

vcode::Program make_remote_write_specific() {
  Builder b;
  const Reg dst = b.reg();
  const Reg len = b.reg();
  const Reg hdr = b.reg();
  Label bad = b.label();
  // Need at least the 4-byte pointer header.
  b.movi(hdr, 4);
  b.bltu(kRegArg1, hdr, bad);
  // Trusted-peer protocol: the destination pointer rides in the message.
  b.lw_u(dst, kRegArg0, 0);
  b.subu(len, kRegArg1, hdr);       // payload length
  const Reg src = b.reg();
  b.addiu(src, kRegArg0, 4);
  b.t_usercopy(dst, src, len);      // kernel-checked bulk transfer
  b.bne(kRegArg0, kRegZero, bad);   // nonzero status = copy rejected
  b.movi(kRegArg0, 1);
  b.halt();
  b.bind(bad);
  b.abort(2);
  return b.take();
}

vcode::Program make_remote_write_generic() {
  Builder b;
  const Reg seg = b.reg();
  const Reg off = b.reg();
  const Reg size = b.reg();
  const Reg hdr = b.reg();
  const Reg n = b.reg();
  const Reg t = b.reg();
  const Reg base = b.reg();
  const Reg limit = b.reg();
  const Reg dst = b.reg();
  const Reg src = b.reg();
  const Reg end = b.reg();
  Label bad = b.label();

  // Message must carry the 12-byte descriptor.
  b.movi(hdr, 12);
  b.bltu(kRegArg1, hdr, bad);
  b.lw_u(seg, kRegArg0, 0);
  b.lw_u(off, kRegArg0, 4);
  b.lw_u(size, kRegArg0, 8);

  // size must fit in the message.
  b.subu(t, kRegArg1, hdr);         // available payload
  b.bltu(t, size, bad);

  // Translation table: r3 -> [n | {base, limit}...].
  b.lw(n, kRegArg2, 0);
  b.bgeu(seg, n, bad);              // segment number out of range

  // entry address = r3 + 4 + 8*seg
  b.slli(t, seg, 3);
  b.addu(t, t, kRegArg2);
  b.lw(base, t, 4);
  b.lw(limit, t, 8);

  // offset + size <= limit (also rejects wraparound: end >= off).
  b.addu(end, off, size);
  b.bltu(end, off, bad);
  b.bltu(limit, end, bad);

  b.addu(dst, base, off);
  b.addiu(src, kRegArg0, 12);
  b.t_usercopy(dst, src, size);
  b.bne(kRegArg0, kRegZero, bad);
  b.movi(kRegArg0, 1);
  b.halt();

  b.bind(bad);
  b.abort(3);
  return b.take();
}

vcode::Program make_active_message_dispatcher(std::uint32_t n_handlers) {
  Builder b;
  const Reg idx = b.reg();
  const Reg n = b.reg();
  const Reg target = b.reg();
  const Reg acc = b.reg();
  const Reg four = b.reg();
  Label bad = b.label();
  Label done = b.label();

  b.movi(four, 4);
  b.bltu(kRegArg1, four, bad);
  b.lw_u(idx, kRegArg0, 0);
  b.movi(n, n_handlers);
  b.bgeu(idx, n, bad);

  // Dispatch through a jump table of label addresses: the sandbox rewrites
  // this Jr into a translated, checked JrChk (Section III-B2).
  std::vector<Label> table;
  table.reserve(n_handlers);
  for (std::uint32_t i = 0; i < n_handlers; ++i) table.push_back(b.label());

  // target = table_base[idx] — emit an if-chain loading the label address
  // (the VCODE machine has no data-section jump tables; a chain of
  // compares selecting a movi_label is the moral equivalent).
  for (std::uint32_t i = 0; i < n_handlers; ++i) {
    Label next = b.label();
    const Reg want = b.reg();
    b.movi(want, i);
    b.bne(idx, want, next);
    b.movi_label(target, table[i]);
    b.jr(target);
    b.bind(next);
  }
  b.jmp(bad);  // unreachable (idx already bounded), defensive

  for (std::uint32_t i = 0; i < n_handlers; ++i) {
    b.bind(table[i]);
    b.mark_indirect(table[i]);
    // Handler body i: acc += i + 1 into the cell at r3.
    b.lw(acc, kRegArg2, 0);
    b.addiu(acc, acc, i + 1);
    b.sw(acc, kRegArg2, 0);
    b.jmp(done);
  }

  b.bind(done);
  b.t_send(kRegArg3, kRegArg0, kRegArg1);  // active-message style reply
  b.movi(kRegArg0, 1);
  b.halt();
  b.bind(bad);
  b.abort(4);
  return b.take();
}

vcode::Program make_dsm_lock_handler(std::uint32_t n_locks) {
  Builder b;
  const Reg op = b.reg();
  const Reg id = b.reg();
  const Reg who = b.reg();
  const Reg n = b.reg();
  const Reg addr = b.reg();
  const Reg cur = b.reg();
  const Reg t = b.reg();
  Label bad = b.label();
  Label release = b.label();
  Label busy = b.label();
  Label reply = b.label();

  // Message: [op | lock_id | requester], 12 bytes minimum.
  b.movi(t, 12);
  b.bltu(kRegArg1, t, bad);
  b.lw_u(op, kRegArg0, 0);
  b.lw_u(id, kRegArg0, 4);
  b.lw_u(who, kRegArg0, 8);
  b.movi(n, n_locks);
  b.bgeu(id, n, bad);

  // addr = locks_base + 4*id
  b.slli(addr, id, 2);
  b.addu(addr, addr, kRegArg2);

  // Reply scratch lives right after the lock array (owner memory — the
  // message itself may be a read-only kernel buffer on some devices).
  const Reg scratch = b.reg();
  b.movi(scratch, 4 * n_locks);
  b.addu(scratch, scratch, kRegArg2);
  b.sw(id, scratch, 4);
  b.sw(who, scratch, 8);

  const Reg two = b.reg();
  b.movi(two, 2);
  b.beq(op, two, release);
  const Reg one = b.reg();
  b.movi(one, 1);
  b.bne(op, one, bad);

  // acquire: grant iff free.
  b.lw(cur, addr, 0);
  b.bne(cur, kRegZero, busy);
  b.sw(who, addr, 0);
  b.movi(t, 1);  // granted
  b.sw(t, scratch, 0);
  b.jmp(reply);

  b.bind(busy);
  b.sw(kRegZero, scratch, 0);  // busy
  b.jmp(reply);

  b.bind(release);
  b.lw(cur, addr, 0);
  b.bne(cur, who, bad);  // releasing a lock you do not hold: fall back
  b.sw(kRegZero, addr, 0);
  b.movi(t, 2);  // released
  b.sw(t, scratch, 0);

  b.bind(reply);
  const Reg twelve = b.reg();
  b.movi(twelve, 12);
  b.t_send(kRegArg3, scratch, twelve);
  b.movi(kRegArg0, 1);
  b.halt();
  b.bind(bad);
  b.abort(5);
  return b.take();
}

}  // namespace ash::ashlib
