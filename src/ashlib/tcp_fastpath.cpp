#include "ashlib/tcp_fastpath.hpp"

#include <cstring>

#include "dilp/stdpipes.hpp"
#include "proto/headers.hpp"
#include "proto/tcb_shm.hpp"
#include "sim/memops.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "vcode/builder.hpp"

namespace ash::ashlib {

using proto::tcb::kAckPseudoSum;
using proto::tcb::kAckScratch;
using proto::tcb::kAshCommits;
using proto::tcb::kAshFallbacks;
using proto::tcb::kChecksumOn;
using proto::tcb::kLibBusy;
using proto::tcb::kLocalPort;
using proto::tcb::kRcvNxt;
using proto::tcb::kRemotePort;
using proto::tcb::kSndNxt;
using proto::tcb::kSndUna;
using proto::tcb::kSndWnd;
using proto::tcb::kStageBase;
using proto::tcb::kStageCap;
using proto::tcb::kStageRd;
using proto::tcb::kStageUsed;
using proto::tcb::kStageWr;
using proto::tcb::kState;
using vcode::Builder;
using vcode::kRegArg0;
using vcode::kRegArg1;
using vcode::kRegArg2;
using vcode::kRegArg3;
using vcode::kRegZero;
using vcode::Label;
using vcode::Reg;

namespace {
constexpr std::int32_t off_of(std::uint32_t word) {
  return static_cast<std::int32_t>(4 * word);
}
}  // namespace

int register_fastpath_ilp(core::AshSystem& ash, std::string* error) {
  dilp::PipeList pl;
  pl.add(dilp::make_cksum_pipe(nullptr));
  return ash.dilp().register_ilp(pl, dilp::Direction::Read, error);
}

vcode::Program make_tcp_fastpath_program(int ilp_id,
                                         std::uint32_t hdr_off) {
  Builder b;
  // Entry: r1 = msg, r2 = len, r3 = tcb, r4 = reply channel. All message
  // reads go through TMsgLoad — the "specialized trusted function calls"
  // of Section III-B2 — so the same handler runs over the AN2 (message in
  // owner memory) and the Ethernet (striped kernel buffer): the kernel
  // presents a logical byte view either way. `hdr_off` is the link-layer
  // framing size in front of the IP header (0 for AN2, 14 for Ethernet).
  const Reg msg = b.reg();
  const Reg tcb = b.reg();
  const Reg chan = b.reg();
  const Reg mlen = b.reg();
  const Reg t = b.reg();
  const Reg v = b.reg();
  const Reg w = b.reg();     // scratch for loaded message words
  const Reg tl = b.reg();    // IP total_len
  const Reg plen = b.reg();  // payload length
  const Reg acc = b.reg();   // checksum accumulator
  const Reg wr = b.reg();
  const Reg used = b.reg();
  const Reg cap = b.reg();
  const Reg dst = b.reg();
  const Reg seq = b.reg();
  const Reg ckon = b.reg();

  Label fallback = b.label();
  Label no_reset = b.label();
  Label skip_cksum_pre = b.label();
  Label skip_fold = b.label();
  Label no_ack_adv = b.label();
  Label no_reply = b.label();

  const auto off = [hdr_off](std::uint32_t x) {
    return static_cast<std::int32_t>(hdr_off + x);
  };

  b.mov(msg, kRegArg0);
  b.mov(mlen, kRegArg1);
  b.mov(tcb, kRegArg2);
  b.mov(chan, kRegArg3);

  // --- constraint checks (Section V-B's three conditions) ---
  b.lw(t, tcb, off_of(kLibBusy));
  b.bne(t, kRegZero, fallback);             // library owns the TCB
  b.lw(t, tcb, off_of(kState));
  b.movi(v, static_cast<std::uint32_t>(proto::TcpState::Established));
  b.bne(t, v, fallback);                    // not established

  b.movi(v, hdr_off + 40);
  b.bltu(mlen, v, fallback);                // runt packet

  b.t_msgload(w, kRegZero, off(0));         // IP word 0
  b.andi(t, w, 0xff);
  b.movi(v, 0x45);
  b.bne(t, v, fallback);                    // not plain IPv4
  // total_len: big-endian 16 at +2 == bswap16 of the word's high half.
  b.srli(tl, w, 16);
  b.bswap16(tl, tl);
  b.t_msgload(w, kRegZero, off(8));         // IP word 2 (ttl/proto/cksum)
  b.srli(t, w, 8);
  b.andi(t, t, 0xff);
  b.movi(v, 6);
  b.bne(t, v, fallback);                    // not TCP

  b.subu(t, mlen, kRegZero);                // t = mlen
  b.movi(v, hdr_off);
  b.subu(t, t, v);                          // bytes after link framing
  b.bltu(t, tl, fallback);                  // truncated
  b.movi(v, 40);
  b.bltu(tl, v, fallback);
  b.subu(plen, tl, v);                      // payload bytes
  b.andi(t, plen, 3);
  b.bne(t, kRegZero, fallback);             // DILP wants whole words

  // Ports (one word at +20: src in the low half, dst in the high half).
  b.t_msgload(w, kRegZero, off(20));
  b.andi(t, w, 0xffff);
  b.bswap16(t, t);
  b.lw(v, tcb, off_of(kRemotePort));
  b.bne(t, v, fallback);
  b.srli(t, w, 16);
  b.bswap16(t, t);
  b.lw(v, tcb, off_of(kLocalPort));
  b.bne(t, v, fallback);

  // Flags at +33 (word at +32, byte 1): ACK required, FIN/SYN/RST not.
  b.t_msgload(w, kRegZero, off(32));
  b.srli(t, w, 8);
  b.andi(v, t, 0x07);
  b.bne(v, kRegZero, fallback);
  b.andi(v, t, 0x10);
  b.beq(v, kRegZero, fallback);

  // seq (big-endian 32 at +24) must be exactly rcv_nxt.
  b.t_msgload(seq, kRegZero, off(24));
  b.bswap32(seq, seq);
  b.lw(t, tcb, off_of(kRcvNxt));
  b.bne(seq, t, fallback);

  // --- staging-ring room (contiguous; reset offsets when drained) ---
  b.lw(used, tcb, off_of(kStageUsed));
  b.lw(cap, tcb, off_of(kStageCap));
  b.lw(wr, tcb, off_of(kStageWr));
  b.bne(used, kRegZero, no_reset);
  b.movi(wr, 0);
  b.sw(wr, tcb, off_of(kStageWr));
  b.sw(kRegZero, tcb, off_of(kStageRd));
  b.bind(no_reset);
  b.addu(t, wr, plen);
  b.bltu(cap, t, fallback);                 // would not fit contiguously

  // --- checksum pre-accumulation: pseudo-header + TCP header ---
  b.movi(acc, 0);
  b.lw(ckon, tcb, off_of(kChecksumOn));
  b.beq(ckon, kRegZero, skip_cksum_pre);
  b.t_msgload(t, kRegZero, off(12));        // src IP (little-endian word)
  b.cksum32(acc, t);
  b.t_msgload(t, kRegZero, off(16));        // dst IP
  b.cksum32(acc, t);
  b.movi(v, 20);
  b.subu(t, tl, v);                         // TCP length
  b.bswap16(t, t);
  b.slli(t, t, 16);
  b.ori(t, t, 0x0600);                      // pseudo proto/len word
  b.cksum32(acc, t);
  for (int i = 0; i < 5; ++i) {             // 20-byte TCP header
    b.t_msgload(t, kRegZero, off(20 + 4 * static_cast<std::uint32_t>(i)));
    b.cksum32(acc, t);
  }
  b.bind(skip_cksum_pre);

  // --- integrated checksum+copy of the payload (dynamic ILP) ---
  b.lw(t, tcb, off_of(kStageBase));
  b.addu(dst, t, wr);
  const Reg src = b.reg();
  b.movi(src, hdr_off + 40);
  b.addu(src, src, msg);                    // logical payload address
  const Reg ilp = b.reg();
  b.movi(ilp, static_cast<std::uint32_t>(ilp_id));
  b.mov(core::kDilpPersistentBase, acc);    // seed the accumulator (r48)
  b.t_dilp(ilp, src, dst, plen);
  b.bne(kRegArg0, kRegZero, fallback);      // transfer rejected
  b.mov(acc, core::kDilpPersistentBase);    // accumulator back

  // --- fold and verify (sum over pseudo+segment must be 0xffff) ---
  b.beq(ckon, kRegZero, skip_fold);
  b.srli(t, acc, 16);
  b.andi(acc, acc, 0xffff);
  b.addu(acc, acc, t);
  b.srli(t, acc, 16);
  b.andi(acc, acc, 0xffff);
  b.addu(acc, acc, t);
  b.movi(v, 0xffff);
  b.bne(acc, v, fallback);
  b.bind(skip_fold);

  // --- commit: rcv_nxt, staging ring ---
  b.lw(t, tcb, off_of(kRcvNxt));
  b.addu(t, t, plen);
  b.sw(t, tcb, off_of(kRcvNxt));
  const Reg rcv_new = b.reg();
  b.mov(rcv_new, t);
  b.addu(wr, wr, plen);
  b.sw(wr, tcb, off_of(kStageWr));
  b.addu(used, used, plen);
  b.sw(used, tcb, off_of(kStageUsed));

  // --- record the cumulative ACK and peer window for the writer ---
  const Reg ackv = b.reg();
  b.t_msgload(ackv, kRegZero, off(28));
  b.bswap32(ackv, ackv);
  b.lw(t, tcb, off_of(kSndUna));
  b.subu(v, ackv, t);                       // ack - snd_una
  b.beq(v, kRegZero, no_ack_adv);
  b.srli(v, v, 31);
  b.bne(v, kRegZero, no_ack_adv);           // negative: old ack
  b.lw(t, tcb, off_of(kSndNxt));
  b.subu(v, t, ackv);                       // snd_nxt - ack
  b.srli(v, v, 31);
  b.bne(v, kRegZero, no_ack_adv);           // beyond what we sent
  b.sw(ackv, tcb, off_of(kSndUna));
  b.bind(no_ack_adv);
  b.t_msgload(w, kRegZero, off(32));        // window: bytes 34/35
  b.srli(t, w, 16);
  b.bswap16(t, t);
  b.sw(t, tcb, off_of(kSndWnd));

  b.lw(t, tcb, off_of(kAshCommits));
  b.addiu(t, t, 1);
  b.sw(t, tcb, off_of(kAshCommits));

  // --- build and send the ACK (data segments only) ---
  b.beq(plen, kRegZero, no_reply);
  const Reg scr = b.reg();
  b.lw(scr, tcb, off_of(proto::tcb::kAckScratch));
  const Reg foff = b.reg();
  b.lw(foff, tcb, off_of(proto::tcb::kAckFrameOff));
  b.addu(scr, scr, foff);                   // scr -> IP header of template
  b.lw(t, tcb, off_of(kSndNxt));
  b.bswap32(t, t);
  b.sw_u(t, scr, 24);                       // seq = snd_nxt
  b.bswap32(t, rcv_new);
  b.sw_u(t, scr, 28);                       // ack = new rcv_nxt

  // Advertised window = (cap/2) - used, clamped at 0, stored big-endian.
  Label wnd_ok = b.label();
  const Reg adv = b.reg();
  b.srli(adv, cap, 1);
  b.subu(adv, adv, used);
  b.srli(v, adv, 31);
  b.beq(v, kRegZero, wnd_ok);
  b.movi(adv, 0);
  b.bind(wnd_ok);
  b.bswap16(t, adv);
  b.sh(t, scr, 34);

  // TCP checksum over the patched header + precomputed pseudo partial.
  b.sh(kRegZero, scr, 36);
  const Reg acc2 = b.reg();
  b.lw(acc2, tcb, off_of(kAckPseudoSum));
  for (int i = 0; i < 5; ++i) {
    b.lw_u(t, scr, 20 + 4 * i);
    b.cksum32(acc2, t);
  }
  b.srli(t, acc2, 16);
  b.andi(acc2, acc2, 0xffff);
  b.addu(acc2, acc2, t);
  b.srli(t, acc2, 16);
  b.andi(acc2, acc2, 0xffff);
  b.addu(acc2, acc2, t);
  b.xori(acc2, acc2, 0xffff);
  b.sh(acc2, scr, 36);

  // Transmit from the start of the template (framing included).
  const Reg acklen = b.reg();
  b.movi(acklen, 40);
  b.addu(acklen, acklen, foff);
  b.subu(scr, scr, foff);
  b.t_send(chan, scr, acklen);
  b.bind(no_reply);
  b.movi(kRegArg0, 1);
  b.halt();

  b.bind(fallback);
  b.lw(t, tcb, off_of(kAshFallbacks));
  b.addiu(t, t, 1);
  b.sw(t, tcb, off_of(kAshFallbacks));
  b.abort(7);
  return b.take();
}

std::optional<TcpFastPath> install_tcp_fastpath(core::AshSystem& ash,
                                                net::An2Device& dev, int vc,
                                                proto::TcpConnection& conn,
                                                const core::AshOptions& opts,
                                                std::string* error) {
  TcpFastPath out;
  out.ilp_id = register_fastpath_ilp(ash, error);
  if (out.ilp_id < 0) return std::nullopt;
  const vcode::Program prog = make_tcp_fastpath_program(out.ilp_id, 0);
  out.ash_id = ash.download(conn.link().self(), prog, opts, error,
                            &out.report);
  if (out.ash_id < 0) return std::nullopt;
  ash.attach_an2(dev, vc, out.ash_id, conn.shm().base());
  conn.set_handler_attached(true);
  return out;
}

std::optional<TcpFastPath> install_tcp_fastpath_eth(
    core::AshSystem& ash, net::EthernetDevice& dev, int endpoint,
    proto::TcpConnection& conn, const proto::MacAddr& local_mac,
    const proto::MacAddr& peer_mac, const core::AshOptions& opts,
    std::string* error) {
  TcpFastPath out;
  out.ilp_id = register_fastpath_ilp(ash, error);
  if (out.ilp_id < 0) return std::nullopt;
  const vcode::Program prog = make_tcp_fastpath_program(
      out.ilp_id, static_cast<std::uint32_t>(proto::kEthHeaderLen));
  out.ash_id = ash.download(conn.link().self(), prog, opts, error,
                            &out.report);
  if (out.ash_id < 0) return std::nullopt;

  // Re-frame the connection's ACK template for Ethernet: shift the IP/TCP
  // template behind an Ethernet header and record the framing offset so
  // the handler patches the right bytes and transmits the whole frame.
  sim::Node& node = *(&conn.link().self().node());
  proto::TcbShm shm = conn.shm();
  const std::uint32_t scr = shm.get(proto::tcb::kAckScratch);
  std::uint8_t* buf = node.mem(scr, proto::tcb::kAckBufLen);
  std::memmove(buf + proto::kEthHeaderLen, buf, proto::tcb::kAckPacketLen);
  proto::EthHeader eh;
  eh.dst = peer_mac;
  eh.src = local_mac;
  eh.ethertype = proto::kEtherTypeIp;
  proto::encode_eth({buf, proto::kEthHeaderLen}, eh);
  shm.set(proto::tcb::kAckFrameOff,
          static_cast<std::uint32_t>(proto::kEthHeaderLen));

  ash.attach_eth(dev, endpoint, out.ash_id, conn.shm().base());
  conn.set_handler_attached(true);
  return out;
}

void install_tcp_fastpath_upcall(core::UpcallManager& upcalls,
                                 net::An2Device& dev, int vc,
                                 proto::TcpConnection& conn) {
  sim::Node* node = &dev.node();
  proto::TcbShm shm = conn.shm();
  conn.set_handler_attached(true);

  upcalls.attach_an2(dev, vc, [node, shm](const core::UpcallManager::Ctx&
                                              ctx) mutable {
    using core::UpcallManager;
    // Cost of running the prediction checks and deciding to decline.
    const UpcallManager::Result declined{sim::us(4.0), false};

    const std::uint8_t* p = node->mem(ctx.msg_addr, ctx.msg_len);
    if (p == nullptr || ctx.msg_len < 40) return declined;
    if (shm.get(kLibBusy) != 0 ||
        shm.get(kState) !=
            static_cast<std::uint32_t>(proto::TcpState::Established)) {
      return declined;
    }
    const auto ip = proto::decode_ip({p, ctx.msg_len});
    if (!ip || ip->protocol != proto::kIpProtoTcp) return declined;
    const std::uint32_t seg_len = ip->total_len - 20u;
    const auto tcp = proto::decode_tcp({p + 20, seg_len});
    if (!tcp || tcp->dst_port != shm.get(kLocalPort) ||
        tcp->src_port != shm.get(kRemotePort)) {
      return declined;
    }
    if (tcp->flags.syn || tcp->flags.fin || tcp->flags.rst ||
        !tcp->flags.ack || tcp->seq != shm.get(kRcvNxt)) {
      return declined;
    }
    const std::uint32_t plen = ip->total_len - 40u;
    if ((plen & 3u) != 0) return declined;

    std::uint32_t used = shm.get(kStageUsed);
    const std::uint32_t cap = shm.get(kStageCap);
    std::uint32_t wr = shm.get(kStageWr);
    if (used == 0) {
      wr = 0;
      shm.set(kStageWr, 0);
      shm.set(kStageRd, 0);
    }
    if (wr + plen > cap) return declined;

    sim::Cycles cycles = sim::us(5.0);  // prediction + TCB bookkeeping

    const bool ckon = shm.get(kChecksumOn) != 0;
    if (ckon) {
      std::uint32_t acc = proto::pseudo_header_sum(
          ip->src, ip->dst, proto::kIpProtoTcp,
          static_cast<std::uint16_t>(seg_len));
      acc = util::cksum_partial({p + 20, seg_len}, acc);
      if (util::fold16(acc) != 0xffff) return declined;  // library re-drops
    }
    // The integrated checksum+copy traversal (upcalls benefit from DILP
    // too, per the paper); verification above was computed natively, the
    // charged cost is this single pass.
    const std::uint32_t stage_dst = shm.get(kStageBase) + wr;
    std::uint32_t dummy = 0;
    if (plen > 0) {
      if (ckon) {
        cycles += sim::memops::copy_cksum(*node, stage_dst,
                                          ctx.msg_addr + 40, plen, &dummy);
      } else {
        cycles += sim::memops::copy(*node, stage_dst, ctx.msg_addr + 40,
                                    plen);
      }
    }

    // Commit.
    const std::uint32_t rcv_new = shm.get(kRcvNxt) + plen;
    shm.set(kRcvNxt, rcv_new);
    shm.set(kStageWr, wr + plen);
    shm.set(kStageUsed, used + plen);

    // Record cumulative ACK + peer window.
    const std::uint32_t una = shm.get(kSndUna);
    const std::uint32_t snd_nxt = shm.get(kSndNxt);
    if (proto::seq_lt(una, tcp->ack) && proto::seq_le(tcp->ack, snd_nxt)) {
      shm.set(kSndUna, tcp->ack);
    }
    shm.set(kSndWnd, tcp->window);
    shm.set(kAshCommits, shm.get(kAshCommits) + 1);

    // Reply with a patched template ACK.
    if (plen > 0) {
      const std::uint32_t scr = shm.get(kAckScratch);
      std::uint8_t ack[proto::tcb::kAckPacketLen];
      std::memcpy(ack, node->mem(scr, sizeof ack), sizeof ack);
      util::store_be32(ack + 24, snd_nxt);
      util::store_be32(ack + 28, rcv_new);
      const std::uint32_t w = cap / 2;
      const std::uint32_t adv = used + plen >= w ? 0 : w - (used + plen);
      util::store_be16(ack + 34, static_cast<std::uint16_t>(adv));
      util::store_be16(ack + 36, 0);
      const std::uint16_t ck = proto::transport_checksum(
          proto::Ipv4Addr{shm.get(proto::tcb::kLocalIp)},
          proto::Ipv4Addr{shm.get(proto::tcb::kRemoteIp)},
          proto::kIpProtoTcp, {ack + 20, 20});
      util::store_be16(ack + 36, ck);
      ctx.send(ctx.channel, ack);
      cycles += sim::us(4.0);  // header patch + checksum + send setup
    }
    return UpcallManager::Result{cycles, true};
  });
}

}  // namespace ash::ashlib
