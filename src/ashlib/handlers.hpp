// Pre-built application-specific handlers — the workloads of the paper's
// evaluation (Sections V-B through V-D) plus the control-initiation
// examples its introduction motivates.
//
// Each builder returns a VCODE Program ready to download with
// core::AshSystem::download (sandboxed or kernel-trusted). Invocation
// convention (set by the ASH system): r1 = message address, r2 = message
// length, r3 = the user argument bound at attach, r4 = reply channel.
#pragma once

#include <cstdint>

#include "vcode/program.hpp"

namespace ash::ashlib {

/// Table V's workload: remote increment. r3 points at a 32-bit counter in
/// the owner's memory; the handler increments it and echoes the message
/// back on the reply channel.
vcode::Program make_remote_increment();

/// Section V-D's *application-specific* remote write: the message is
/// [dst_pointer(4) | payload...] from a trusted peer — the handler writes
/// payload at dst_pointer with no translation machinery (the paper's
/// "uses a different protocol ... assumes it is given a pointer to
/// memory"). The sandbox still confines the write to the owner segment.
vcode::Program make_remote_write_specific();

/// Section V-D's *generic* remote write, modeled after Thekkath et al.:
/// message = [segment#(4) | offset(4) | size(4) | payload...]; r3 points
/// at a translation table in owner memory: [n_entries | {base, limit}...].
/// The handler validates segment number, bounds-checks offset+size against
/// the segment limit and size against the message, translates, and copies.
vcode::Program make_remote_write_generic();

/// Active-message dispatcher (Section V-C): message = [handler_index(4) |
/// args...]. A jump table of `n_handlers` small routines dispatches via an
/// indirect jump — each routine here adds its index+1 into the 32-bit cell
/// at r3 and replies with the message. Exists chiefly to exercise
/// control initiation and sandboxed indirect-jump translation.
vcode::Program make_active_message_dispatcher(std::uint32_t n_handlers);

/// Distributed-shared-memory lock service (the CRL-style use from the
/// paper's conclusion). r3 points at an array of `n_locks` 32-bit lock
/// words FOLLOWED by a 12-byte reply scratch area (allocate n_locks + 3
/// words). Message = [op(4): 1=acquire 2=release | lock_id(4) |
/// requester(4)]. Acquire: if the lock word is 0, set it to requester and
/// reply [1 (granted) | lock_id | requester]; else reply [0 (busy) | ...].
/// Release: clear the word if held by requester; reply [2 | ...].
/// Malformed ops abort voluntarily (fall back to user level).
vcode::Program make_dsm_lock_handler(std::uint32_t n_locks);

}  // namespace ash::ashlib
