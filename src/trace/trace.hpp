// ashtrace — zero-allocation, per-CPU ring-buffer tracing and metrics for
// the kernel receive path.
//
// The paper's argument is quantitative (per-message cycle budgets for
// demux, sandbox overhead, DILP traversals, ASH aborts), but until now the
// repo could only observe those numbers through one-off bench binaries.
// This layer gives the hot path first-class, typed trace events:
//
//   FrameArrival -> DemuxDecision -> AshDispatch -> VcodeExec ->
//   AshOutcome (plus TSendInitiated / DilpRun / TUserCopy from inside the
//   handler, AshDenied / SupervisorAction around it, and UpcallFallback
//   when the message takes the normal delivery path instead).
//
// Design constraints, in order:
//
//  1. *Disabled is free.* Every instrumentation site is guarded by
//     `trace::enabled()`, an inline relaxed load of one global atomic
//     bool — a single predicted-not-taken branch when tracing is off.
//     The tracer is an observer only: it NEVER charges simulated cycles,
//     so all bench outputs are byte-identical with tracing on or off;
//     enabling it costs host wall-clock only (measured by
//     `bench_ablations --trace`).
//
//  2. *Zero allocation on the emit path.* Rings and metric slots are
//     allocated once at enable(); emit() writes one fixed-size Event into
//     a preallocated per-CPU ring and bumps plain counters. A full ring
//     either overwrites the oldest event (flight-recorder mode, default)
//     or drops the newest; either way the loss is counted, never silent:
//     emitted(cpu) == events(cpu).size() + dropped(cpu) always holds.
//
//  3. *Single writer per ring.* The simulation is single-threaded; each
//     CPU's ring is written only by the thread driving that simulator.
//     Cross-thread observers may read the atomic emitted/dropped counters
//     and the enabled flag at any time; reading ring contents or metric
//     aggregates requires the writer to be quiescent (test harnesses join
//     the writer first). This is the same single-writer discipline
//     AshStats and FaultCounters follow.
//
// "Per CPU" maps to per sim::Node (the simulator gives every node a small
// dense cpu id). Code with no node in scope — the VCODE engines, which are
// simulation-agnostic — emits through a thread-local Context that the
// dispatch path (AshSystem::invoke) fills in, so engine events are
// attributed to the right CPU, simulated time, and handler id.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "trace/metrics.hpp"

namespace ash::trace {

enum class EventType : std::uint8_t {
  FrameArrival,     // id=channel, arg0=len, arg1=NicKind
  DemuxDecision,    // id=winning channel (-1 unmatched), arg0=nodes/atoms
                    //   visited, arg1=NicKind, cycles=demux cost
  AshDispatch,      // id=ash, arg0=msg len, arg1=channel
  AshDenied,        // id=ash, arg0=DenyReason
  VcodeExec,        // id=Context::id at emit, arg0=vcode outcome,
                    //   engine-tagged, cycles/insns of the run
  AshOutcome,       // id=ash, arg0=vcode outcome, arg1=consumed,
                    //   cycles=dispatch+exec+timer total, insns of run
  DilpRun,          // id=Context::id (-1 standalone), arg0=len,
                    //   arg1=ilp id, cycles of the fused loop
  TSendInitiated,   // id=Context::id, arg0=len, arg1=channel, cycles=tx
  TUserCopy,        // id=Context::id, arg0=len, cycles of the copy
  UpcallFallback,   // id=channel, arg0=NicKind
  SupervisorAction, // id=ash, arg0=SupAction
  // Multi-queue receive path (appended so older numeric ids stay stable):
  RxEnqueue,        // id=rx queue, arg0=channel, arg1=depth after enqueue
  CoalesceFire,     // id=rx queue, arg0=frames in batch, arg1=FireReason,
                    //   cycles=entry+driver charge for the batch
  BatchDispatch,    // id=ash, arg0=msgs offered, arg1=msgs executed,
                    //   cycles=batch total charge, insns=batch total
  // Multi-tenant isolation (appended; older numeric ids stay stable):
  RxDrop,           // id=rx queue, arg0=owner pid (0 unowned),
                    //   arg1=net::RxDropReason, insns=channel
  // Smart-NIC offload (appended; older numeric ids stay stable):
  NicExec,          // id=rx queue, arg0=channel, arg1=unit index,
                    //   cycles=device cycles charged for the run
  OffloadPunt,      // id=rx queue, arg0=net::PuntReason, arg1=channel
};
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::OffloadPunt) + 1;
const char* to_string(EventType t) noexcept;

/// Which engine produced a VcodeExec event.
enum class Engine : std::uint8_t { None, Interp, CodeCache, Jit };
inline constexpr std::size_t kEngineCount = 4;
const char* to_string(Engine e) noexcept;

/// FrameArrival / DemuxDecision / UpcallFallback source device.
enum class NicKind : std::uint8_t { An2, Ethernet };

/// Why AshDenied fired (arg0). The tenant reasons are appended so the
/// original four keep their numeric ids (metric arrays index by value).
enum class DenyReason : std::uint8_t {
  Quarantined,
  Revoked,
  LivelockQuota,
  BadId,
  // Multi-tenant admission (core::TenantScheduler):
  CycleQuota,     // weighted-fair cycle account exhausted
  BufferQuota,    // kernel buffer-pool share exhausted at download
  DownloadQuota,  // per-tenant handler-count cap hit at download
};
inline constexpr std::size_t kDenyReasonCount =
    static_cast<std::size_t>(DenyReason::DownloadQuota) + 1;
const char* to_string(DenyReason r) noexcept;

/// SupervisorAction payload (arg0).
enum class SupAction : std::uint8_t { Quarantine, Revoke };
const char* to_string(SupAction a) noexcept;

/// One fixed-size trace record (48 bytes). `time` is simulated cycles at
/// emit; `seq` is the per-CPU emission index (monotonic from 0, assigned
/// by the ring — gaps never occur, so seq also proves ordering).
struct Event {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::int32_t id = -1;
  std::uint32_t arg0 = 0;
  std::uint32_t arg1 = 0;
  EventType type = EventType::FrameArrival;
  Engine engine = Engine::None;
  std::uint16_t cpu = 0;
};

struct TracerConfig {
  /// Events retained per CPU; rounded up to a power of two.
  std::uint32_t ring_capacity = 1u << 14;
  /// Per-CPU rings allocated at enable(); higher cpu ids clamp to the
  /// last ring (counted in `clamped_cpus`).
  std::uint16_t max_cpus = 4;
  /// Per-ASH / per-channel metric slots; ids beyond the range share one
  /// overflow slot (again: counted, never silent).
  std::uint32_t max_ash_ids = 64;
  std::uint32_t max_channels = 64;
  /// Per-rx-queue metric slots (RxEnqueue / CoalesceFire aggregation).
  std::uint32_t max_queues = 16;
  /// true: overwrite the oldest event when full (flight recorder).
  /// false: drop the newest. Both maintain the occupancy invariant.
  bool overwrite = true;
};

/// Thread-local emission context. The dispatch path sets it (cheaply,
/// only when tracing is on) so that sim-agnostic code — the VCODE
/// engines, AshEnv trusted calls — emits events attributed to the right
/// CPU / simulated time / handler.
struct Context {
  std::uint16_t cpu = 0;
  std::uint64_t time = 0;
  std::int32_t id = -1;  // ash id being dispatched, or -1
};
Context& context() noexcept;

/// RAII context save/restore around one handler dispatch (nested engine
/// runs — a DILP loop inside an ASH — restore the outer context).
class ScopedContext {
 public:
  ScopedContext(std::uint16_t cpu, std::uint64_t time, std::int32_t id)
      : saved_(context()) {
    context() = Context{cpu, time, id};
  }
  ~ScopedContext() { context() = saved_; }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context saved_;
};

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The one hot-path check: a relaxed atomic load, inlined everywhere.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  /// Allocate rings and metric slots, then open the gate. Re-enabling
  /// resets everything.
  void enable(const TracerConfig& cfg = {});
  /// Close the gate. Rings and metrics stay readable until enable().
  void disable();

  const TracerConfig& config() const noexcept { return cfg_; }

  /// Append one event (fills time/cpu from the thread-local Context when
  /// the caller left them zero-default via emit_ctx). Single writer per
  /// cpu; see the header comment.
  void emit(Event ev);

  /// Emit with cpu/time taken from the thread-local Context — the form
  /// used by sim-agnostic code (VCODE engines, AshEnv).
  void emit_ctx(EventType type, Engine engine, std::uint32_t arg0,
                std::uint32_t arg1, std::uint64_t cycles,
                std::uint64_t insns);

  /// Drop all recorded events and aggregates, keep the configuration and
  /// the enabled state (differential tests isolate runs with this).
  void clear();

  // ---- readers (writer must be quiescent, except the counters) ----

  std::uint16_t cpus() const noexcept {
    return static_cast<std::uint16_t>(rings_.size());
  }
  /// Events ever offered to cpu's ring (atomic; readable any time).
  std::uint64_t emitted(std::uint16_t cpu) const noexcept;
  /// Events lost to overwrite/drop (atomic; readable any time).
  std::uint64_t dropped(std::uint16_t cpu) const noexcept;
  /// Emissions whose cpu id exceeded max_cpus (clamped to last ring).
  std::uint64_t clamped_cpus() const noexcept {
    return clamped_cpus_.load(std::memory_order_relaxed);
  }

  /// Retained events of one cpu, oldest first (copy).
  std::vector<Event> events(std::uint16_t cpu) const;
  /// All retained events merged across cpus, (time, cpu, seq)-ordered.
  std::vector<Event> all_events() const;

  /// Per-handler aggregates; id out of range returns the overflow slot.
  const AshMetrics& ash_metrics(std::int32_t id) const noexcept;
  /// Per-demux-channel aggregates (VC / Ethernet endpoint).
  const ChannelMetrics& channel_metrics(std::int32_t id) const noexcept;
  /// Per-rx-queue aggregates (multi-queue receive path).
  const QueueMetrics& queue_metrics(std::int32_t id) const noexcept;
  /// Highest slot index that saw traffic, or -1 (for report iteration).
  std::int32_t max_ash_slot() const noexcept { return max_ash_slot_; }
  std::int32_t max_channel_slot() const noexcept { return max_chan_slot_; }
  std::int32_t max_queue_slot() const noexcept { return max_queue_slot_; }
  /// Per-engine execution totals (interp vs code cache).
  const EngineMetrics& engine_metrics(Engine e) const noexcept {
    return engine_m_[static_cast<std::size_t>(e)];
  }
  /// Events seen per type (conservation checks).
  std::uint64_t type_count(EventType t) const noexcept {
    return type_counts_[static_cast<std::size_t>(t)];
  }

 private:
  struct Ring {
    std::vector<Event> slots;     // capacity, power of two
    std::uint32_t mask = 0;
    std::atomic<std::uint64_t> emitted{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  void aggregate(const Event& ev);
  AshMetrics& ash_slot(std::int32_t id) noexcept;
  ChannelMetrics& chan_slot(std::int32_t id) noexcept;
  QueueMetrics& queue_slot(std::int32_t id) noexcept;

  TracerConfig cfg_;
  std::vector<Ring> rings_;
  std::vector<AshMetrics> ash_m_;     // size max_ash_ids + 1 (overflow)
  std::vector<ChannelMetrics> chan_m_;
  std::vector<QueueMetrics> queue_m_;  // size max_queues + 1 (overflow)
  std::array<EngineMetrics, kEngineCount> engine_m_{};
  std::array<std::uint64_t, kEventTypeCount> type_counts_{};
  std::int32_t max_ash_slot_ = -1;
  std::int32_t max_chan_slot_ = -1;
  std::int32_t max_queue_slot_ = -1;
  std::atomic<std::uint64_t> clamped_cpus_{0};
};

/// The process-wide tracer every instrumentation site feeds.
Tracer& global();

/// Convenience builder for sim-aware instrumentation sites (the caller
/// knows its Node, hence cpu and simulated time).
inline Event make_event(EventType type, std::uint16_t cpu,
                        std::uint64_t time, std::int32_t id,
                        std::uint32_t arg0 = 0, std::uint32_t arg1 = 0,
                        std::uint64_t cycles = 0,
                        std::uint64_t insns = 0) noexcept {
  Event ev;
  ev.type = type;
  ev.cpu = cpu;
  ev.time = time;
  ev.id = id;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.cycles = cycles;
  ev.insns = insns;
  return ev;
}

/// RAII enable/disable for tests and benches.
class Session {
 public:
  explicit Session(const TracerConfig& cfg = {}) { global().enable(cfg); }
  ~Session() { global().disable(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Tracer* operator->() const noexcept { return &global(); }
};

}  // namespace ash::trace
