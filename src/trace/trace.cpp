#include "trace/trace.hpp"

#include <algorithm>

namespace ash::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::FrameArrival: return "FrameArrival";
    case EventType::DemuxDecision: return "DemuxDecision";
    case EventType::AshDispatch: return "AshDispatch";
    case EventType::AshDenied: return "AshDenied";
    case EventType::VcodeExec: return "VcodeExec";
    case EventType::AshOutcome: return "AshOutcome";
    case EventType::DilpRun: return "DilpRun";
    case EventType::TSendInitiated: return "TSendInitiated";
    case EventType::TUserCopy: return "TUserCopy";
    case EventType::UpcallFallback: return "UpcallFallback";
    case EventType::SupervisorAction: return "SupervisorAction";
    case EventType::RxEnqueue: return "RxEnqueue";
    case EventType::CoalesceFire: return "CoalesceFire";
    case EventType::BatchDispatch: return "BatchDispatch";
    case EventType::RxDrop: return "RxDrop";
    case EventType::NicExec: return "NicExec";
    case EventType::OffloadPunt: return "OffloadPunt";
  }
  return "?";
}

const char* to_string(Engine e) noexcept {
  switch (e) {
    case Engine::None: return "-";
    case Engine::Interp: return "interp";
    case Engine::CodeCache: return "codecache";
    case Engine::Jit: return "jit";
  }
  return "?";
}

const char* to_string(DenyReason r) noexcept {
  switch (r) {
    case DenyReason::Quarantined: return "quarantined";
    case DenyReason::Revoked: return "revoked";
    case DenyReason::LivelockQuota: return "livelock-quota";
    case DenyReason::BadId: return "bad-id";
    case DenyReason::CycleQuota: return "cycle-quota";
    case DenyReason::BufferQuota: return "buffer-quota";
    case DenyReason::DownloadQuota: return "download-quota";
  }
  return "?";
}

const char* to_string(SupAction a) noexcept {
  switch (a) {
    case SupAction::Quarantine: return "quarantine";
    case SupAction::Revoke: return "revoke";
  }
  return "?";
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target observation, 1-based, deterministic rounding up.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             (p / 100.0) * static_cast<double>(count_) + 0.9999999));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_hi(i);
  }
  return max_;
}

Context& context() noexcept {
  thread_local Context ctx;
  return ctx;
}

Tracer& global() {
  static Tracer tracer;
  return tracer;
}

namespace {
std::uint32_t round_pow2(std::uint32_t v) {
  if (v < 2) return 2;
  std::uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}
}  // namespace

void Tracer::enable(const TracerConfig& cfg) {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  cfg_ = cfg;
  cfg_.ring_capacity = round_pow2(cfg.ring_capacity);
  if (cfg_.max_cpus == 0) cfg_.max_cpus = 1;
  rings_.clear();
  rings_ = std::vector<Ring>(cfg_.max_cpus);
  for (Ring& r : rings_) {
    r.slots.assign(cfg_.ring_capacity, Event{});
    r.mask = cfg_.ring_capacity - 1;
  }
  ash_m_.assign(cfg_.max_ash_ids + 1, AshMetrics{});
  chan_m_.assign(cfg_.max_channels + 1, ChannelMetrics{});
  queue_m_.assign(cfg_.max_queues + 1, QueueMetrics{});
  engine_m_ = {};
  type_counts_ = {};
  max_ash_slot_ = -1;
  max_chan_slot_ = -1;
  max_queue_slot_ = -1;
  clamped_cpus_.store(0, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  for (Ring& r : rings_) {
    r.emitted.store(0, std::memory_order_relaxed);
    r.dropped.store(0, std::memory_order_relaxed);
  }
  for (AshMetrics& m : ash_m_) m = AshMetrics{};
  for (ChannelMetrics& m : chan_m_) m = ChannelMetrics{};
  for (QueueMetrics& m : queue_m_) m = QueueMetrics{};
  engine_m_ = {};
  type_counts_ = {};
  max_ash_slot_ = -1;
  max_chan_slot_ = -1;
  max_queue_slot_ = -1;
  clamped_cpus_.store(0, std::memory_order_relaxed);
}

AshMetrics& Tracer::ash_slot(std::int32_t id) noexcept {
  // Negative or out-of-range ids share the overflow slot (the last one).
  std::size_t idx = ash_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < ash_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  if (static_cast<std::int32_t>(idx) > max_ash_slot_) {
    max_ash_slot_ = static_cast<std::int32_t>(idx);
  }
  return ash_m_[idx];
}

ChannelMetrics& Tracer::chan_slot(std::int32_t id) noexcept {
  std::size_t idx = chan_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < chan_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  if (static_cast<std::int32_t>(idx) > max_chan_slot_) {
    max_chan_slot_ = static_cast<std::int32_t>(idx);
  }
  return chan_m_[idx];
}

QueueMetrics& Tracer::queue_slot(std::int32_t id) noexcept {
  std::size_t idx = queue_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < queue_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  if (static_cast<std::int32_t>(idx) > max_queue_slot_) {
    max_queue_slot_ = static_cast<std::int32_t>(idx);
  }
  return queue_m_[idx];
}

const AshMetrics& Tracer::ash_metrics(std::int32_t id) const noexcept {
  std::size_t idx = ash_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < ash_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  return ash_m_[idx];
}

const ChannelMetrics& Tracer::channel_metrics(std::int32_t id) const noexcept {
  std::size_t idx = chan_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < chan_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  return chan_m_[idx];
}

const QueueMetrics& Tracer::queue_metrics(std::int32_t id) const noexcept {
  std::size_t idx = queue_m_.size() - 1;
  if (id >= 0 && static_cast<std::size_t>(id) < queue_m_.size() - 1) {
    idx = static_cast<std::size_t>(id);
  }
  return queue_m_[idx];
}

void Tracer::aggregate(const Event& ev) {
  ++type_counts_[static_cast<std::size_t>(ev.type)];
  switch (ev.type) {
    case EventType::FrameArrival: {
      ChannelMetrics& c = chan_slot(ev.id);
      ++c.frames;
      c.bytes += ev.arg0;
      c.frame_bytes.observe(ev.arg0);
      break;
    }
    case EventType::DemuxDecision: {
      ChannelMetrics& c = chan_slot(ev.id);
      ++c.demux_decisions;
      c.demux_cycles += ev.cycles;
      break;
    }
    case EventType::AshDispatch:
      ++ash_slot(ev.id).dispatches;
      break;
    case EventType::AshDenied: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.denials;
      if (ev.arg0 < m.denial_reasons.size()) ++m.denial_reasons[ev.arg0];
      break;
    }
    case EventType::VcodeExec: {
      EngineMetrics& e = engine_m_[static_cast<std::size_t>(ev.engine)];
      ++e.runs;
      e.insns += ev.insns;
      e.cycles += ev.cycles;
      break;
    }
    case EventType::AshOutcome: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.outcomes;
      m.consumed += ev.arg1 != 0 ? 1 : 0;
      if (ev.arg0 < kMaxOutcomes) ++m.by_outcome[ev.arg0];
      m.latency.observe(ev.cycles);
      m.cycles += ev.cycles;
      m.insns += ev.insns;
      break;
    }
    case EventType::DilpRun: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.dilp_runs;
      m.bytes_vectored += ev.arg0;
      m.vector_bytes.observe(ev.arg0);
      m.exec_cycles.observe(ev.cycles);
      break;
    }
    case EventType::TSendInitiated: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.sends;
      m.bytes_vectored += ev.arg0;
      m.vector_bytes.observe(ev.arg0);
      break;
    }
    case EventType::TUserCopy: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.usercopies;
      m.bytes_vectored += ev.arg0;
      m.vector_bytes.observe(ev.arg0);
      break;
    }
    case EventType::UpcallFallback:
      ++chan_slot(ev.id).fallbacks;
      break;
    case EventType::SupervisorAction: {
      AshMetrics& m = ash_slot(ev.id);
      if (ev.arg0 == static_cast<std::uint32_t>(SupAction::Revoke)) {
        ++m.supervisor_revokes;
      } else {
        ++m.supervisor_quarantines;
      }
      break;
    }
    case EventType::RxEnqueue: {
      QueueMetrics& q = queue_slot(ev.id);
      ++q.frames;
      q.depth.observe(ev.arg1);
      break;
    }
    case EventType::CoalesceFire: {
      QueueMetrics& q = queue_slot(ev.id);
      ++q.batches;
      if (ev.arg1 < q.by_reason.size()) ++q.by_reason[ev.arg1];
      q.batch_frames.observe(ev.arg0);
      q.charged_cycles += ev.cycles;
      break;
    }
    case EventType::BatchDispatch: {
      AshMetrics& m = ash_slot(ev.id);
      ++m.batches;
      m.batch_msgs.observe(ev.arg1);
      break;
    }
    case EventType::RxDrop: {
      QueueMetrics& q = queue_slot(ev.id);
      ++q.drops;
      if (ev.arg1 < q.by_drop_reason.size()) ++q.by_drop_reason[ev.arg1];
      break;
    }
    case EventType::NicExec: {
      QueueMetrics& q = queue_slot(ev.id);
      ++q.nic_executed;
      q.nic_cycles += ev.cycles;
      break;
    }
    case EventType::OffloadPunt: {
      QueueMetrics& q = queue_slot(ev.id);
      ++q.punts;
      if (ev.arg0 < q.by_punt_reason.size()) ++q.by_punt_reason[ev.arg0];
      break;
    }
  }
  // Exec-cycle distribution rides the per-run outcome record.
  if (ev.type == EventType::VcodeExec && ev.id >= 0) {
    ash_slot(ev.id).exec_cycles.observe(ev.cycles);
  }
}

void Tracer::emit(Event ev) {
  if (rings_.empty()) return;
  std::uint16_t cpu = ev.cpu;
  if (cpu >= rings_.size()) {
    clamped_cpus_.fetch_add(1, std::memory_order_relaxed);
    cpu = static_cast<std::uint16_t>(rings_.size() - 1);
    ev.cpu = cpu;
  }
  Ring& r = rings_[cpu];
  const std::uint64_t n = r.emitted.load(std::memory_order_relaxed);
  ev.seq = n;
  aggregate(ev);
  if (n >= r.slots.size()) {
    if (!cfg_.overwrite) {
      // Drop-newest: the ring is full and frozen; count the loss.
      r.dropped.fetch_add(1, std::memory_order_relaxed);
      r.emitted.store(n + 1, std::memory_order_relaxed);
      return;
    }
    // Overwrite-oldest: the slot we claim held event n - capacity.
    r.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  r.slots[static_cast<std::size_t>(n) & r.mask] = ev;
  r.emitted.store(n + 1, std::memory_order_relaxed);
}

void Tracer::emit_ctx(EventType type, Engine engine, std::uint32_t arg0,
                      std::uint32_t arg1, std::uint64_t cycles,
                      std::uint64_t insns) {
  const Context& ctx = context();
  Event ev;
  ev.time = ctx.time;
  ev.cpu = ctx.cpu;
  ev.id = ctx.id;
  ev.type = type;
  ev.engine = engine;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.cycles = cycles;
  ev.insns = insns;
  emit(ev);
}

std::uint64_t Tracer::emitted(std::uint16_t cpu) const noexcept {
  if (cpu >= rings_.size()) return 0;
  return rings_[cpu].emitted.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped(std::uint16_t cpu) const noexcept {
  if (cpu >= rings_.size()) return 0;
  return rings_[cpu].dropped.load(std::memory_order_relaxed);
}

std::vector<Event> Tracer::events(std::uint16_t cpu) const {
  std::vector<Event> out;
  if (cpu >= rings_.size()) return out;
  const Ring& r = rings_[cpu];
  const std::uint64_t n = r.emitted.load(std::memory_order_relaxed);
  const std::uint64_t cap = r.slots.size();
  std::uint64_t first = 0;
  std::uint64_t retained = n;
  if (n > cap) {
    if (cfg_.overwrite) {
      first = n - cap;
      retained = cap;
    } else {
      retained = cap;  // drop-newest froze the first `cap` events
    }
  }
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = 0; i < retained; ++i) {
    out.push_back(r.slots[static_cast<std::size_t>(first + i) & r.mask]);
  }
  return out;
}

std::vector<Event> Tracer::all_events() const {
  std::vector<Event> out;
  for (std::uint16_t cpu = 0; cpu < rings_.size(); ++cpu) {
    const std::vector<Event> e = events(cpu);
    out.insert(out.end(), e.begin(), e.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.cpu != b.cpu) return a.cpu < b.cpu;
                     return a.seq < b.seq;
                   });
  return out;
}

}  // namespace ash::trace
