// Aggregated receive-path metrics, fed by the tracer's event stream.
//
// Aggregation happens at emit time, before ring insertion, from the same
// Event record that lands in the ring — so per-handler totals stay exact
// even after the flight-recorder ring has wrapped. A conservation test
// (tests/trace_conservation_test.cpp) pins the other direction: with a
// ring big enough not to wrap, re-aggregating the retained events
// reproduces these aggregates exactly.
//
// The value distributions use power-of-two (log2) histogram buckets:
// bucket 0 counts zeros, bucket i counts values in [2^(i-1), 2^i). That
// keeps observation O(1), allocation-free, and mergeable, at ~2x value
// resolution — the right trade for cycle/byte distributions whose
// interesting structure spans orders of magnitude.
//
// Thread model: plain counters, single writer (the simulation thread),
// same discipline as AshStats — see trace.hpp.
#pragma once

#include <array>
#include <cstdint>

namespace ash::trace {

class Histogram {
 public:
  /// Bucket 0 = {0}; bucket i (1..64) = [2^(i-1), 2^i).
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 64 - static_cast<std::size_t>(__builtin_clzll(v));
  }
  /// Inclusive upper bound of bucket `i` (0 for bucket 0).
  static std::uint64_t bucket_hi(std::size_t i) noexcept {
    return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t i) const noexcept { return buckets_[i]; }

  /// Upper bound of the bucket holding the p-th percentile observation
  /// (p in [0,100]); 0 when empty. Bucket-resolution, deterministic.
  std::uint64_t percentile(double p) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Room for every vcode::Outcome value without depending on the vcode
/// library (trace sits below it in the link order).
inline constexpr std::size_t kMaxOutcomes = 16;

/// Room for every trace::DenyReason value (the tenant-admission reasons
/// were appended in the multi-tenant PR; headroom for a few more).
inline constexpr std::size_t kMaxDenyReasons = 8;

/// Per-handler receive-path accounting, keyed by ash id.
struct AshMetrics {
  std::uint64_t dispatches = 0;   // AshDispatch events
  std::uint64_t outcomes = 0;     // AshOutcome events (completed runs)
  std::uint64_t consumed = 0;     // outcomes that committed the message
  std::uint64_t denials = 0;      // AshDenied events
  std::array<std::uint64_t, kMaxDenyReasons> denial_reasons{};  // by DenyReason
  std::array<std::uint64_t, kMaxOutcomes> by_outcome{};
  Histogram latency;              // dispatch+exec+timer cycles per run
  Histogram exec_cycles;          // handler execution cycles per run
  std::uint64_t insns = 0;        // dynamic instructions, all runs
  std::uint64_t cycles = 0;       // latency sum (= latency.sum())
  std::uint64_t bytes_vectored = 0;  // TSend + TDilp + TUserCopy bytes
  Histogram vector_bytes;         // distribution of those transfer sizes
  std::uint64_t sends = 0;        // TSendInitiated events
  std::uint64_t dilp_runs = 0;    // DilpRun events
  std::uint64_t usercopies = 0;   // TUserCopy events
  std::uint64_t supervisor_quarantines = 0;
  std::uint64_t supervisor_revokes = 0;
  std::uint64_t batches = 0;      // BatchDispatch events
  Histogram batch_msgs;           // executed msgs per batch (arg1)
};

/// Per-demux-channel accounting (AN2 VC or Ethernet endpoint id).
struct ChannelMetrics {
  std::uint64_t frames = 0;       // FrameArrival events
  std::uint64_t bytes = 0;
  Histogram frame_bytes;
  std::uint64_t demux_decisions = 0;
  std::uint64_t demux_cycles = 0;  // summed demux cost
  std::uint64_t fallbacks = 0;     // UpcallFallback events
};

/// Receive-queue accounting for the multi-queue scaling path, keyed by
/// rx queue index (RxEnqueue / CoalesceFire events).
struct QueueMetrics {
  std::uint64_t frames = 0;       // RxEnqueue events
  std::uint64_t batches = 0;      // CoalesceFire events
  std::array<std::uint64_t, 4> by_reason{};  // by net::FireReason
  Histogram batch_frames;         // frames per fired batch
  Histogram depth;                // queue depth after each enqueue
  std::uint64_t charged_cycles = 0;  // summed entry+driver batch charges
  std::uint64_t drops = 0;        // RxDrop events
  std::array<std::uint64_t, 2> by_drop_reason{};  // by net::RxDropReason
  // Smart-NIC offload (zero when the queue has no NicProcessor in front,
  // which keeps pre-offload report output byte-identical):
  std::uint64_t nic_executed = 0;  // NicExec events (committed on-device)
  std::uint64_t nic_cycles = 0;    // summed device cycles of those runs
  std::uint64_t punts = 0;         // OffloadPunt events
  std::array<std::uint64_t, 4> by_punt_reason{};  // by net::PuntReason
};

/// Per-engine execution totals (interp vs translated form) — the
/// engine-attribution the differential suite checks for equivalence.
struct EngineMetrics {
  std::uint64_t runs = 0;
  std::uint64_t insns = 0;
  std::uint64_t cycles = 0;
};

}  // namespace ash::trace
