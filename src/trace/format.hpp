// Render a Tracer's rings and aggregates for humans and tools:
//
//   format_trace     — per-event text lines ("ashtool trace")
//   format_metrics   — per-handler / per-channel / per-engine tables
//                      ("ashtool metrics")
//   metrics_json     — the same aggregates as one JSON object
//   trace_json       — the retained events as a JSON array
//   chrome_trace_json— Chrome trace_event format (chrome://tracing /
//                      Perfetto): AshOutcome / VcodeExec / DilpRun become
//                      duration ("X") slices on a per-CPU track, the rest
//                      instants — flamegraph-style receive-path inspection.
//
// Cycle and simulated-time values are always rendered with a `cyc`
// suffix (text) or a `*_cyc` key (JSON), so golden tests can normalize
// exactly the cycle-dependent fields and pin everything else.
//
// The trace library sits below vcode in the link order, so outcome codes
// are numbers here; callers that know vcode (ashtool, benches, tests)
// install a namer to print "MemFault" instead of "outcome=2".
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace ash::trace {

/// Optional pretty-printer for vcode outcome codes in formatted output.
/// Non-capturing function pointer; nullptr reverts to numeric codes.
using OutcomeNamer = const char* (*)(std::uint32_t);
void set_outcome_namer(OutcomeNamer fn) noexcept;
OutcomeNamer outcome_namer() noexcept;

struct FormatOptions {
  /// Print at most this many events (0 = all retained).
  std::size_t max_events = 0;
  /// 40 MHz CPU: cycles / 40 = microseconds, used by the Chrome export.
  double cpu_mhz = 40.0;
};

std::string format_trace(const Tracer& t, const FormatOptions& opts = {});
std::string format_metrics(const Tracer& t);
/// Per-rx-queue tables (multi-queue receive path): frames/batches/fire
/// reasons plus batch-size and depth histograms ("ashtool queues").
/// Separate from format_metrics so pre-queue golden outputs stay stable.
std::string format_queues(const Tracer& t);
std::string metrics_json(const Tracer& t);
std::string queues_json(const Tracer& t);
std::string trace_json(const Tracer& t, const FormatOptions& opts = {});
std::string chrome_trace_json(const Tracer& t,
                              const FormatOptions& opts = {});

}  // namespace ash::trace
