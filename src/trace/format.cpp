#include "trace/format.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ash::trace {

namespace {

OutcomeNamer g_namer = nullptr;

/// Append printf-formatted text to `out` (all formatting funnels here).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

std::string outcome_name(std::uint32_t code) {
  if (g_namer != nullptr) return g_namer(code);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u", code);
  return buf;
}

/// Mirrors net::FireReason (trace sits below net in the link order).
const char* fire_reason_name(std::uint32_t r) {
  static const char* kNames[] = {"immediate", "full", "timer", "poll"};
  return r < 4 ? kNames[r] : "?";
}

/// Mirrors net::PuntReason (same layering constraint).
const char* punt_reason_name(std::uint32_t r) {
  static const char* kNames[] = {"not-resident", "host-service", "fault"};
  return r < 3 ? kNames[r] : "?";
}

void append_event_body(std::string& out, const Event& ev) {
  switch (ev.type) {
    case EventType::FrameArrival:
      appendf(out, "ch=%d len=%u nic=%s", ev.id, ev.arg0,
              ev.arg1 == 0 ? "an2" : "eth");
      break;
    case EventType::DemuxDecision:
      appendf(out, "ch=%d visited=%u nic=%s cost=%" PRIu64 " cyc", ev.id,
              ev.arg0, ev.arg1 == 0 ? "an2" : "eth", ev.cycles);
      break;
    case EventType::AshDispatch:
      appendf(out, "ash=%d len=%u ch=%u", ev.id, ev.arg0, ev.arg1);
      break;
    case EventType::AshDenied:
      appendf(out, "ash=%d reason=%s", ev.id,
              to_string(static_cast<DenyReason>(ev.arg0)));
      break;
    case EventType::VcodeExec:
      appendf(out, "id=%d outcome=%s insns=%" PRIu64 " cycles=%" PRIu64
              " cyc", ev.id, outcome_name(ev.arg0).c_str(), ev.insns,
              ev.cycles);
      break;
    case EventType::AshOutcome:
      appendf(out, "ash=%d outcome=%s consumed=%u insns=%" PRIu64
              " total=%" PRIu64 " cyc", ev.id,
              outcome_name(ev.arg0).c_str(), ev.arg1, ev.insns, ev.cycles);
      break;
    case EventType::DilpRun:
      appendf(out, "ash=%d ilp=%u len=%u cycles=%" PRIu64 " cyc", ev.id,
              ev.arg1, ev.arg0, ev.cycles);
      break;
    case EventType::TSendInitiated:
      appendf(out, "ash=%d ch=%u len=%u tx=%" PRIu64 " cyc", ev.id,
              ev.arg1, ev.arg0, ev.cycles);
      break;
    case EventType::TUserCopy:
      appendf(out, "ash=%d len=%u cycles=%" PRIu64 " cyc", ev.id, ev.arg0,
              ev.cycles);
      break;
    case EventType::UpcallFallback:
      appendf(out, "ch=%d nic=%s", ev.id, ev.arg0 == 0 ? "an2" : "eth");
      break;
    case EventType::SupervisorAction:
      appendf(out, "ash=%d action=%s", ev.id,
              to_string(static_cast<SupAction>(ev.arg0)));
      break;
    case EventType::RxEnqueue:
      appendf(out, "queue=%d ch=%u depth=%u", ev.id, ev.arg0, ev.arg1);
      break;
    case EventType::CoalesceFire:
      appendf(out, "queue=%d frames=%u reason=%s charge=%" PRIu64 " cyc",
              ev.id, ev.arg0, fire_reason_name(ev.arg1), ev.cycles);
      break;
    case EventType::BatchDispatch:
      appendf(out, "ash=%d offered=%u executed=%u insns=%" PRIu64
              " total=%" PRIu64 " cyc", ev.id, ev.arg0, ev.arg1, ev.insns,
              ev.cycles);
      break;
    case EventType::RxDrop:
      appendf(out, "queue=%d owner=%u ch=%" PRIu64 " reason=%s", ev.id,
              ev.arg0, ev.insns, ev.arg1 == 0 ? "overflow" : "tenant-quota");
      break;
    case EventType::NicExec:
      appendf(out, "queue=%d ch=%u unit=%u charge=%" PRIu64 " cyc", ev.id,
              ev.arg0, ev.arg1, ev.cycles);
      break;
    case EventType::OffloadPunt:
      appendf(out, "queue=%d ch=%u reason=%s", ev.id, ev.arg1,
              punt_reason_name(ev.arg0));
      break;
  }
}

/// A histogram of counts (batch sizes, queue depths) — no cyc suffix, the
/// values are frame counts and stay pinned in golden output.
void append_count_histogram(std::string& out, const char* label,
                            const Histogram& h) {
  appendf(out,
          "    %s: n=%" PRIu64 " mean=%.1f p50<=%" PRIu64 " p99<=%" PRIu64
          " max=%" PRIu64 "\n",
          label, h.count(), h.mean(), h.percentile(50.0),
          h.percentile(99.0), h.max());
}

void append_histogram(std::string& out, const char* label,
                      const Histogram& h) {
  appendf(out,
          "    %s: n=%" PRIu64 " mean=%.1f cyc p50<=%" PRIu64
          " cyc p99<=%" PRIu64 " cyc max=%" PRIu64 " cyc sum=%" PRIu64
          " cyc\n",
          label, h.count(), h.mean(), h.percentile(50.0),
          h.percentile(99.0), h.max(), h.sum());
}

void append_json_histogram(std::string& out, const char* key,
                           const Histogram& h) {
  appendf(out,
          "\"%s\":{\"count\":%" PRIu64 ",\"sum_cyc\":%" PRIu64
          ",\"min_cyc\":%" PRIu64 ",\"max_cyc\":%" PRIu64
          ",\"p50_cyc\":%" PRIu64 ",\"p99_cyc\":%" PRIu64 "}",
          key, h.count(), h.sum(), h.min(), h.max(), h.percentile(50.0),
          h.percentile(99.0));
}

bool ash_slot_active(const AshMetrics& m) {
  return m.dispatches || m.outcomes || m.denials || m.sends ||
         m.dilp_runs || m.usercopies || m.supervisor_quarantines ||
         m.supervisor_revokes || m.exec_cycles.count();
}

bool chan_slot_active(const ChannelMetrics& c) {
  return c.frames || c.demux_decisions || c.fallbacks;
}

bool queue_slot_active(const QueueMetrics& q) {
  return q.frames || q.batches || q.drops || q.nic_executed || q.punts;
}

}  // namespace

void set_outcome_namer(OutcomeNamer fn) noexcept { g_namer = fn; }
OutcomeNamer outcome_namer() noexcept { return g_namer; }

std::string format_trace(const Tracer& t, const FormatOptions& opts) {
  std::string out;
  std::uint64_t total_emitted = 0, total_dropped = 0;
  for (std::uint16_t cpu = 0; cpu < t.cpus(); ++cpu) {
    total_emitted += t.emitted(cpu);
    total_dropped += t.dropped(cpu);
  }
  const std::vector<Event> events = t.all_events();
  appendf(out,
          "trace: %u cpu(s), %zu event(s) retained, %" PRIu64
          " emitted, %" PRIu64 " dropped, %" PRIu64 " cpu-clamped\n",
          t.cpus(), events.size(), total_emitted, total_dropped,
          t.clamped_cpus());
  std::size_t n = events.size();
  if (opts.max_events != 0 && opts.max_events < n) n = opts.max_events;
  for (std::size_t i = 0; i < n; ++i) {
    const Event& ev = events[i];
    appendf(out, "[cpu%u] seq=%-4" PRIu64 " t=%" PRIu64 " cyc  %-16s",
            ev.cpu, ev.seq, ev.time, to_string(ev.type));
    if (ev.type == EventType::VcodeExec) {
      appendf(out, "[%s] ", to_string(ev.engine));
    } else {
      out += ' ';
    }
    append_event_body(out, ev);
    out += '\n';
  }
  if (n < events.size()) {
    appendf(out, "... %zu more event(s) not shown\n", events.size() - n);
  }
  return out;
}

std::string format_metrics(const Tracer& t) {
  std::string out;
  out += "== engines ==\n";
  static const Engine kEngines[] = {Engine::Interp, Engine::CodeCache,
                                    Engine::Jit};
  for (const Engine e : kEngines) {
    const EngineMetrics& m = t.engine_metrics(e);
    appendf(out, "%-10s runs=%-8" PRIu64 " insns=%-10" PRIu64
            " cycles=%" PRIu64 " cyc\n", to_string(e), m.runs, m.insns,
            m.cycles);
  }

  out += "== handlers ==\n";
  for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
    const AshMetrics& m = t.ash_metrics(id);
    if (!ash_slot_active(m)) continue;
    const bool overflow =
        static_cast<std::uint32_t>(id) >= t.config().max_ash_ids;
    appendf(out,
            "ash %d%s: dispatches=%" PRIu64 " outcomes=%" PRIu64
            " consumed=%" PRIu64 " denials=%" PRIu64 "\n",
            id, overflow ? " (overflow slot)" : "", m.dispatches,
            m.outcomes, m.consumed, m.denials);
    bool any = false;
    for (std::size_t o = 0; o < kMaxOutcomes; ++o) {
      if (m.by_outcome[o] == 0) continue;
      appendf(out, "%s%s=%" PRIu64,
              any ? " " : "    outcomes: ",
              outcome_name(static_cast<std::uint32_t>(o)).c_str(),
              m.by_outcome[o]);
      any = true;
    }
    if (any) out += '\n';
    if (m.denials != 0) {
      appendf(out,
              "    denials: quarantined=%" PRIu64 " revoked=%" PRIu64
              " livelock=%" PRIu64 " bad-id=%" PRIu64 "\n",
              m.denial_reasons[0], m.denial_reasons[1],
              m.denial_reasons[2], m.denial_reasons[3]);
      // The tenant-admission reasons were appended later; only printed
      // when seen, so pre-tenant golden output is unchanged.
      if (m.denial_reasons[4] != 0 || m.denial_reasons[5] != 0 ||
          m.denial_reasons[6] != 0) {
        appendf(out,
                "    tenant-denials: cycle-quota=%" PRIu64
                " buffer-quota=%" PRIu64 " download-quota=%" PRIu64 "\n",
                m.denial_reasons[4], m.denial_reasons[5],
                m.denial_reasons[6]);
      }
    }
    if (m.latency.count() != 0) {
      append_histogram(out, "latency", m.latency);
    }
    if (m.exec_cycles.count() != 0) {
      append_histogram(out, "exec", m.exec_cycles);
    }
    appendf(out,
            "    vectored: sends=%" PRIu64 " dilp=%" PRIu64
            " usercopy=%" PRIu64 " bytes=%" PRIu64 "\n",
            m.sends, m.dilp_runs, m.usercopies, m.bytes_vectored);
    if (m.supervisor_quarantines != 0 || m.supervisor_revokes != 0) {
      appendf(out, "    supervisor: quarantines=%" PRIu64
              " revokes=%" PRIu64 "\n", m.supervisor_quarantines,
              m.supervisor_revokes);
    }
  }

  out += "== channels ==\n";
  for (std::int32_t id = 0; id <= t.max_channel_slot(); ++id) {
    const ChannelMetrics& c = t.channel_metrics(id);
    if (!chan_slot_active(c)) continue;
    const bool overflow =
        static_cast<std::uint32_t>(id) >= t.config().max_channels;
    appendf(out,
            "ch %d%s: frames=%" PRIu64 " bytes=%" PRIu64
            " demux=%" PRIu64 " demux_cost=%" PRIu64
            " cyc fallbacks=%" PRIu64 "\n",
            id, overflow ? " (overflow slot)" : "", c.frames, c.bytes,
            c.demux_decisions, c.demux_cycles, c.fallbacks);
  }
  return out;
}

std::string metrics_json(const Tracer& t) {
  std::string out = "{";
  out += "\"engines\":{";
  static const Engine kEngines[] = {Engine::Interp, Engine::CodeCache,
                                    Engine::Jit};
  for (std::size_t i = 0; i < std::size(kEngines); ++i) {
    const EngineMetrics& m = t.engine_metrics(kEngines[i]);
    appendf(out,
            "%s\"%s\":{\"runs\":%" PRIu64 ",\"insns\":%" PRIu64
            ",\"cycles_cyc\":%" PRIu64 "}",
            i == 0 ? "" : ",", to_string(kEngines[i]), m.runs, m.insns,
            m.cycles);
  }
  out += "},\"handlers\":[";
  bool first = true;
  for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
    const AshMetrics& m = t.ash_metrics(id);
    if (!ash_slot_active(m)) continue;
    appendf(out,
            "%s{\"ash\":%d,\"dispatches\":%" PRIu64 ",\"outcomes\":%" PRIu64
            ",\"consumed\":%" PRIu64 ",\"denials\":%" PRIu64
            ",\"insns\":%" PRIu64 ",\"cycles_cyc\":%" PRIu64
            ",\"bytes_vectored\":%" PRIu64 ",\"sends\":%" PRIu64
            ",\"dilp_runs\":%" PRIu64 ",\"usercopies\":%" PRIu64 ",",
            first ? "" : ",", id, m.dispatches, m.outcomes, m.consumed,
            m.denials, m.insns, m.cycles, m.bytes_vectored, m.sends,
            m.dilp_runs, m.usercopies);
    out += "\"by_outcome\":{";
    bool fo = true;
    for (std::size_t o = 0; o < kMaxOutcomes; ++o) {
      if (m.by_outcome[o] == 0) continue;
      appendf(out, "%s\"%s\":%" PRIu64, fo ? "" : ",",
              outcome_name(static_cast<std::uint32_t>(o)).c_str(),
              m.by_outcome[o]);
      fo = false;
    }
    out += "},";
    append_json_histogram(out, "latency", m.latency);
    out += ",";
    append_json_histogram(out, "exec", m.exec_cycles);
    out += "}";
    first = false;
  }
  out += "],\"channels\":[";
  first = true;
  for (std::int32_t id = 0; id <= t.max_channel_slot(); ++id) {
    const ChannelMetrics& c = t.channel_metrics(id);
    if (!chan_slot_active(c)) continue;
    appendf(out,
            "%s{\"ch\":%d,\"frames\":%" PRIu64 ",\"bytes\":%" PRIu64
            ",\"demux_decisions\":%" PRIu64 ",\"demux_cost_cyc\":%" PRIu64
            ",\"fallbacks\":%" PRIu64 "}",
            first ? "" : ",", id, c.frames, c.bytes, c.demux_decisions,
            c.demux_cycles, c.fallbacks);
    first = false;
  }
  out += "]}";
  return out;
}

std::string format_queues(const Tracer& t) {
  std::string out;
  out += "== rx queues ==\n";
  for (std::int32_t id = 0; id <= t.max_queue_slot(); ++id) {
    const QueueMetrics& q = t.queue_metrics(id);
    if (!queue_slot_active(q)) continue;
    const bool overflow =
        static_cast<std::uint32_t>(id) >= t.config().max_queues;
    appendf(out,
            "queue %d%s: frames=%" PRIu64 " batches=%" PRIu64
            " charged=%" PRIu64 " cyc\n",
            id, overflow ? " (overflow slot)" : "", q.frames, q.batches,
            q.charged_cycles);
    appendf(out,
            "    reasons: immediate=%" PRIu64 " full=%" PRIu64
            " timer=%" PRIu64 " poll=%" PRIu64 "\n",
            q.by_reason[0], q.by_reason[1], q.by_reason[2],
            q.by_reason[3]);
    if (q.drops != 0) {
      appendf(out,
              "    drops: total=%" PRIu64 " overflow=%" PRIu64
              " tenant-quota=%" PRIu64 "\n",
              q.drops, q.by_drop_reason[0], q.by_drop_reason[1]);
    }
    // Appended for the smart-NIC offload PR; omitted when zero so
    // pre-offload golden output is byte-identical.
    if (q.nic_executed != 0 || q.punts != 0) {
      appendf(out,
              "    offload: nic-exec=%" PRIu64 " nic=%" PRIu64
              " cyc punts=%" PRIu64 " (not-resident=%" PRIu64
              " host-service=%" PRIu64 " fault=%" PRIu64 ")\n",
              q.nic_executed, q.nic_cycles, q.punts, q.by_punt_reason[0],
              q.by_punt_reason[1], q.by_punt_reason[2]);
    }
    if (q.batch_frames.count() != 0) {
      append_count_histogram(out, "batch", q.batch_frames);
    }
    if (q.depth.count() != 0) {
      append_count_histogram(out, "depth", q.depth);
    }
  }
  // Batched dispatch per handler rides alongside the queue tables: how
  // well the coalescer fed AshSystem::invoke_batch.
  out += "== batched handlers ==\n";
  for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
    const AshMetrics& m = t.ash_metrics(id);
    if (m.batches == 0) continue;
    appendf(out, "ash %d: batches=%" PRIu64 "\n", id, m.batches);
    append_count_histogram(out, "msgs", m.batch_msgs);
  }
  return out;
}

std::string queues_json(const Tracer& t) {
  std::string out = "{\"queues\":[";
  bool first = true;
  for (std::int32_t id = 0; id <= t.max_queue_slot(); ++id) {
    const QueueMetrics& q = t.queue_metrics(id);
    if (!queue_slot_active(q)) continue;
    appendf(out,
            "%s{\"queue\":%d,\"frames\":%" PRIu64 ",\"batches\":%" PRIu64
            ",\"charged_cyc\":%" PRIu64
            ",\"reasons\":{\"immediate\":%" PRIu64 ",\"full\":%" PRIu64
            ",\"timer\":%" PRIu64 ",\"poll\":%" PRIu64 "}"
            ",\"batch_frames\":{\"count\":%" PRIu64 ",\"mean\":%.1f"
            ",\"p50\":%" PRIu64 ",\"max\":%" PRIu64 "}"
            ",\"depth\":{\"count\":%" PRIu64 ",\"mean\":%.1f"
            ",\"p50\":%" PRIu64 ",\"max\":%" PRIu64 "}",
            first ? "" : ",", id, q.frames, q.batches, q.charged_cycles,
            q.by_reason[0], q.by_reason[1], q.by_reason[2], q.by_reason[3],
            q.batch_frames.count(), q.batch_frames.mean(),
            q.batch_frames.percentile(50.0), q.batch_frames.max(),
            q.depth.count(), q.depth.mean(), q.depth.percentile(50.0),
            q.depth.max());
    // Appended for the multi-tenant PR; omitted when zero so pre-tenant
    // golden output is byte-identical.
    if (q.drops != 0) {
      appendf(out,
              ",\"drops\":{\"total\":%" PRIu64 ",\"overflow\":%" PRIu64
              ",\"tenant_quota\":%" PRIu64 "}",
              q.drops, q.by_drop_reason[0], q.by_drop_reason[1]);
    }
    // Appended for the smart-NIC offload PR; omitted when zero so
    // pre-offload golden output is byte-identical.
    if (q.nic_executed != 0 || q.punts != 0) {
      appendf(out,
              ",\"offload\":{\"nic_executed\":%" PRIu64
              ",\"nic_cyc\":%" PRIu64 ",\"punts\":%" PRIu64
              ",\"not_resident\":%" PRIu64 ",\"host_service\":%" PRIu64
              ",\"fault\":%" PRIu64 "}",
              q.nic_executed, q.nic_cycles, q.punts, q.by_punt_reason[0],
              q.by_punt_reason[1], q.by_punt_reason[2]);
    }
    out += "}";
    first = false;
  }
  out += "],\"batched_handlers\":[";
  first = true;
  for (std::int32_t id = 0; id <= t.max_ash_slot(); ++id) {
    const AshMetrics& m = t.ash_metrics(id);
    if (m.batches == 0) continue;
    appendf(out,
            "%s{\"ash\":%d,\"batches\":%" PRIu64
            ",\"msgs\":{\"count\":%" PRIu64 ",\"mean\":%.1f"
            ",\"p50\":%" PRIu64 ",\"max\":%" PRIu64 "}}",
            first ? "" : ",", id, m.batches, m.batch_msgs.count(),
            m.batch_msgs.mean(), m.batch_msgs.percentile(50.0),
            m.batch_msgs.max());
    first = false;
  }
  out += "]}";
  return out;
}

std::string trace_json(const Tracer& t, const FormatOptions& opts) {
  const std::vector<Event> events = t.all_events();
  std::size_t n = events.size();
  if (opts.max_events != 0 && opts.max_events < n) n = opts.max_events;
  std::string out = "[";
  for (std::size_t i = 0; i < n; ++i) {
    const Event& ev = events[i];
    appendf(out,
            "%s{\"cpu\":%u,\"seq\":%" PRIu64 ",\"t_cyc\":%" PRIu64
            ",\"type\":\"%s\",\"engine\":\"%s\",\"id\":%d,\"arg0\":%u"
            ",\"arg1\":%u,\"cycles_cyc\":%" PRIu64 ",\"insns\":%" PRIu64
            "}",
            i == 0 ? "" : ",", ev.cpu, ev.seq, ev.time,
            to_string(ev.type), to_string(ev.engine), ev.id, ev.arg0,
            ev.arg1, ev.cycles, ev.insns);
  }
  out += "]";
  return out;
}

std::string chrome_trace_json(const Tracer& t, const FormatOptions& opts) {
  const std::vector<Event> events = t.all_events();
  std::size_t n = events.size();
  if (opts.max_events != 0 && opts.max_events < n) n = opts.max_events;
  const double us_per_cyc = opts.cpu_mhz > 0 ? 1.0 / opts.cpu_mhz : 0.025;
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (std::uint16_t cpu = 0; cpu < t.cpus(); ++cpu) {
    appendf(out,
            "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            "\"tid\":%u,\"args\":{\"name\":\"cpu%u\"}}",
            first ? "" : ",", cpu, cpu);
    first = false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Event& ev = events[i];
    const double ts = static_cast<double>(ev.time) * us_per_cyc;
    const bool slice = ev.type == EventType::AshOutcome ||
                       ev.type == EventType::VcodeExec ||
                       ev.type == EventType::DilpRun;
    char name[96];
    if (ev.type == EventType::VcodeExec) {
      std::snprintf(name, sizeof name, "VcodeExec(%s)",
                    to_string(ev.engine));
    } else {
      std::snprintf(name, sizeof name, "%s", to_string(ev.type));
    }
    if (slice) {
      const double dur = static_cast<double>(ev.cycles) * us_per_cyc;
      appendf(out,
              "%s{\"name\":\"%s\",\"cat\":\"ash\",\"ph\":\"X\","
              "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u,"
              "\"args\":{\"id\":%d,\"outcome\":\"%s\",\"insns\":%" PRIu64
              ",\"cycles\":%" PRIu64 "}}",
              first ? "" : ",", name, ts, dur, ev.cpu, ev.id,
              outcome_name(ev.arg0).c_str(), ev.insns, ev.cycles);
    } else {
      appendf(out,
              "%s{\"name\":\"%s\",\"cat\":\"ash\",\"ph\":\"i\","
              "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
              "\"args\":{\"id\":%d,\"arg0\":%u,\"arg1\":%u}}",
              first ? "" : ",", name, ts, ev.cpu, ev.id, ev.arg0,
              ev.arg1);
    }
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace ash::trace
