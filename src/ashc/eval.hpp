// Reference interpreter for rule sets: the ground truth the compiled
// VCODE is differentially tested against (tests/ashc_diff_test.cpp).
//
// eval() executes a RuleSet directly over a frame, mirroring the kernel's
// semantics instruction-for-instruction:
//   * header fields follow t_msgload's whole-word contract — a field
//     whose 32-bit word extends past the frame reads as zero;
//   * state words are little-endian, written in place immediately (the
//     kernel never rolls back memory writes, even on Abort);
//   * sends are staged and RELEASED ONLY on an Accept verdict — a
//     Deliver verdict discards them, exactly like the kernel discards a
//     non-Halted invocation's sends;
//   * reply splices physically overwrite the template bytes in state
//     before the send snapshots them, so the mutation persists.
//
// Keep this file boring: it is deliberately a second, independent
// implementation of rule semantics — when it and the compiler disagree,
// the differential suite fails and one of them is wrong.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ashc/rule.hpp"

namespace ash::ashc {

/// One staged send: resolved channel id + snapshotted bytes.
struct EvalSend {
  std::uint32_t channel = 0;
  std::vector<std::uint8_t> bytes;
};

struct EvalResult {
  /// True when the matching rule's verdict was Accept (message consumed).
  bool consumed = false;
  /// Sends released by the verdict. Empty unless consumed.
  std::vector<EvalSend> sends;
};

/// Run `rs` over `frame`, mutating `state` in place (it must be the
/// rule set's state blob, at least Limits::state_bytes long).
/// `arrival_channel` resolves kChannelArrival.
EvalResult eval(const RuleSet& rs, std::span<const std::uint8_t> frame,
                std::vector<std::uint8_t>& state,
                std::uint32_t arrival_channel);

/// The host-order value of `f` in `frame` under the whole-word contract
/// (exposed for tests).
std::uint32_t field_value(std::span<const std::uint8_t> frame,
                          const Field& f);

}  // namespace ash::ashc
