#include "ashc/gen.hpp"

#include <algorithm>
#include <cstdio>

#include "ashc/compile.hpp"
#include "util/byteorder.hpp"

namespace ash::ashc {
namespace {

using util::Rng;

// The generator's fixed declared limits; everything it draws stays
// inside these windows so its output always verifies.
constexpr std::uint32_t kFrameWindow = 96;
constexpr std::uint32_t kStateBytes = 64;
constexpr std::uint32_t kSendCap = 64;

std::uint32_t width_max(std::uint8_t w) {
  return w == 1 ? 0xffu : w == 2 ? 0xffffu : 0xffffffffu;
}

std::uint8_t rand_width(Rng& rng) {
  const std::uint8_t widths[3] = {1, 2, 4};
  return widths[rng.below(3)];
}

Match rand_atom(Rng& rng, const std::vector<std::uint32_t>& pool) {
  if (rng.chance(1, 5)) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(rng.below(kFrameWindow + 16));
    return rng.chance(1, 2) ? m_len_ge(n) : m_len_lt(n);
  }
  const std::uint32_t off =
      pool[static_cast<std::size_t>(rng.below(pool.size()))];
  const std::uint8_t w = rand_width(rng);
  const std::uint32_t maxv = width_max(w);
  switch (rng.below(5)) {
    case 0:
      return m_eq(off, w, static_cast<std::uint32_t>(rng.next()) & maxv);
    case 1:
      return m_ne(off, w, static_cast<std::uint32_t>(rng.next()) & maxv);
    case 2: {
      // Masked equality, constructed satisfiable: value is a subset of
      // the mask.
      std::uint32_t mask = static_cast<std::uint32_t>(rng.next()) & maxv;
      if (mask == 0) mask = maxv;
      const std::uint32_t value =
          static_cast<std::uint32_t>(rng.next()) & mask;
      return m_mask(off, w, mask, value);
    }
    case 3: {
      Match m = m_eq(off, w, 0);
      if (rng.chance(1, 2)) {
        m.cmp = Cmp::Lt;
        m.value = 1 + static_cast<std::uint32_t>(rng.below(maxv));
      } else {
        m.cmp = Cmp::Gt;
        m.value = static_cast<std::uint32_t>(rng.below(maxv));
      }
      return m;
    }
    default: {
      // Ranges stay unmasked so planting a satisfying value is trivial.
      const std::uint32_t lo = static_cast<std::uint32_t>(rng.next()) & maxv;
      const std::uint32_t hi =
          lo + static_cast<std::uint32_t>(rng.below(maxv - lo + 1));
      return m_range(off, w, lo, hi);
    }
  }
}

Pred rand_pred(Rng& rng, const std::vector<std::uint32_t>& pool) {
  const std::uint64_t n_atoms = 1 + rng.below(3);
  std::vector<Pred> kids;
  for (std::uint64_t i = 0; i < n_atoms; ++i) {
    kids.push_back(p_atom(rand_atom(rng, pool)));
  }
  if (kids.size() == 1) return kids[0];
  // Occasionally nest one level: wrap a pair in the opposite connective.
  const bool top_and = rng.chance(1, 2);
  if (kids.size() == 3 && rng.chance(1, 3)) {
    std::vector<Pred> inner{kids[1], kids[2]};
    kids.resize(1);
    kids.push_back(top_and ? p_or(std::move(inner))
                           : p_and(std::move(inner)));
  }
  return top_and ? p_and(std::move(kids)) : p_or(std::move(kids));
}

std::uint32_t rand_word_state_off(Rng& rng) {
  return 4 * static_cast<std::uint32_t>(rng.below(kStateBytes / 4));
}

int rand_channel(Rng& rng) {
  return rng.chance(1, 3) ? kChannelArrival
                          : static_cast<int>(rng.below(4));
}

Action rand_action(Rng& rng, const std::vector<std::uint32_t>& pool,
                   RuleSet& rs) {
  switch (rng.below(7)) {
    case 0:
      return a_count(rand_word_state_off(rng));
    case 1:
      return a_sample(1 + static_cast<std::uint32_t>(rng.below(8)),
                      rand_word_state_off(rng));
    case 2: {
      Field f;
      f.offset = pool[static_cast<std::size_t>(rng.below(pool.size()))];
      f.width = rand_width(rng);
      return a_store_field(rand_word_state_off(rng), f);
    }
    case 3:
      // Checksums confined to the first 16 bytes so the distinct-word
      // budget stays well under the compiler's ceiling.
      return a_store_cksum(rand_word_state_off(rng), 0,
                           4 * (1 + static_cast<std::uint32_t>(rng.below(4))));
    case 4: {
      const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.below(16));
      const std::uint32_t state_off =
          static_cast<std::uint32_t>(rng.below(kStateBytes - len + 1));
      const std::uint32_t msg_off =
          static_cast<std::uint32_t>(rng.below(kFrameWindow - len + 1));
      return a_copy(state_off, msg_off, len);
    }
    case 5: {
      const std::uint32_t state_off =
          4 * static_cast<std::uint32_t>(rng.below(8));  // 0..28
      const std::uint32_t len =
          4 * (1 + static_cast<std::uint32_t>(rng.below(8)));  // 4..32
      std::vector<Splice> splices;
      const std::uint64_t n_splices = rng.below(3);
      for (std::uint64_t i = 0; i < n_splices; ++i) {
        Splice s;
        if (rng.chance(1, 3)) {
          s.from_state = true;
          s.dst_off = static_cast<std::uint32_t>(rng.below(len - 4 + 1));
          s.state_src =
              static_cast<std::uint32_t>(rng.below(kStateBytes - 4 + 1));
        } else {
          s.src.offset =
              pool[static_cast<std::size_t>(rng.below(pool.size()))];
          s.src.width = rand_width(rng);
          s.dst_off =
              static_cast<std::uint32_t>(rng.below(len - s.src.width + 1));
        }
        splices.push_back(s);
      }
      if (rng.chance(1, 2)) {
        Template t;
        t.state_off = state_off;
        for (std::uint32_t i = 0; i < len; ++i) {
          t.bytes.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        rs.templates.push_back(std::move(t));
      }
      return a_reply(state_off, len, rand_channel(rng), std::move(splices));
    }
    default:
      return a_steer(rand_channel(rng));
  }
}

void collect_pred_offsets(const Pred& p, std::vector<std::uint32_t>& out) {
  if (p.op == Pred::Op::Atom) {
    if (p.atom.kind == Match::Kind::Field) out.push_back(p.atom.field.offset);
    return;
  }
  for (const Pred& k : p.kids) collect_pred_offsets(k, out);
}

std::vector<std::uint32_t> all_field_offsets(const RuleSet& rs) {
  std::vector<std::uint32_t> out;
  for (const Rule& r : rs.rules) {
    collect_pred_offsets(r.pred, out);
    for (const Action& a : r.actions) {
      if (a.kind == Action::Kind::StoreField) out.push_back(a.field.offset);
      for (const Splice& s : a.splices) {
        if (!s.from_state) out.push_back(s.src.offset);
      }
    }
  }
  if (out.empty()) out.push_back(0);
  return out;
}

void collect_pred_atoms(const Pred& p, std::vector<const Match*>& out) {
  if (p.op == Pred::Op::Atom) {
    if (p.atom.kind == Match::Kind::Field) out.push_back(&p.atom);
    return;
  }
  for (const Pred& k : p.kids) collect_pred_atoms(k, out);
}

/// A field value satisfying `m` where one exists (best effort — dead
/// atoms just get a plausible value).
std::uint32_t sat_value(Rng& rng, const Match& m) {
  const std::uint32_t maxv = width_max(m.field.width);
  const std::uint32_t mask = m.effective_mask() & maxv;
  switch (m.cmp) {
    case Cmp::Eq:
      return (m.value & mask) |
             (static_cast<std::uint32_t>(rng.next()) & ~mask & maxv);
    case Cmp::Ne: {
      std::uint32_t v = static_cast<std::uint32_t>(rng.next()) & maxv;
      // Flip the lowest mask bit if we accidentally drew the == value.
      if ((v & mask) == m.value && mask != 0) v ^= mask & (0u - mask);
      return v;
    }
    case Cmp::Lt:
      return m.value == 0
                 ? 0
                 : static_cast<std::uint32_t>(
                       rng.below(std::min<std::uint64_t>(m.value,
                                                         maxv + 1ull)));
    case Cmp::Gt:
      return mask > m.value ? mask : maxv;
    case Cmp::Range:
      return m.value +
             static_cast<std::uint32_t>(rng.below(
                 std::min<std::uint64_t>(m.value2, maxv) - m.value + 1));
  }
  return 0;
}

void plant(std::vector<std::uint8_t>& frame, const Match& m,
           std::uint32_t v) {
  const std::uint32_t off = m.field.offset;
  if (static_cast<std::uint64_t>(off) + 4 > frame.size()) return;
  switch (m.field.width) {
    case 4:
      util::store_be32(frame.data() + off, v);
      break;
    case 2:
      util::store_be16(frame.data() + off, static_cast<std::uint16_t>(v));
      break;
    default:
      frame[off] = static_cast<std::uint8_t>(v);
      break;
  }
}

}  // namespace

RuleSet random_rule_set(Rng& rng) {
  RuleSet rs;
  rs.name = "generated";
  rs.limits.max_frame_bytes = kFrameWindow;
  rs.limits.state_bytes = kStateBytes;
  rs.limits.send_cap = kSendCap;
  rs.default_verdict = rng.chance(1, 2) ? Verdict::Accept : Verdict::Deliver;

  // A small pool of header offsets, shared across rules so the compiler's
  // preload coalescing actually triggers.
  std::vector<std::uint32_t> pool;
  const std::uint64_t pool_size = 2 + rng.below(4);
  for (std::uint64_t i = 0; i < pool_size; ++i) {
    pool.push_back(static_cast<std::uint32_t>(rng.below(kFrameWindow - 3)));
  }

  const std::uint64_t n_rules = 1 + rng.below(4);
  for (std::uint64_t i = 0; i < n_rules; ++i) {
    Rule r;
    char nm[16];
    std::snprintf(nm, sizeof nm, "r%u", static_cast<unsigned>(i));
    r.name = nm;
    r.pred = rand_pred(rng, pool);
    const std::uint64_t n_actions = rng.below(4);
    for (std::uint64_t k = 0; k < n_actions; ++k) {
      r.actions.push_back(rand_action(rng, pool, rs));
    }
    r.verdict = rng.chance(1, 2) ? Verdict::Accept : Verdict::Deliver;
    rs.rules.push_back(std::move(r));
  }
  return rs;
}

Hostile hostilize(Rng& rng, RuleSet& rs) {
  if (rs.rules.empty()) {
    Rule r;
    r.name = "always";
    r.pred = p_and({});
    rs.rules.push_back(std::move(r));
  }
  Rule& r0 = rs.rules[0];
  switch (rng.below(8)) {
    case 0:
      // Match word starting at the window edge: off + 4 > msg_window.
      rs.rules.insert(
          rs.rules.begin(),
          Rule{"oob-match",
               p_atom(m_eq(rs.limits.max_frame_bytes - 1, 4, 0)),
               {},
               Verdict::Accept});
      return {HostileStage::Verify, "match offset past message window"};
    case 1:
      r0.actions.push_back(
          a_reply(0, rs.limits.send_cap + 4, kChannelArrival));
      return {HostileStage::Verify, "reply longer than the send cap"};
    case 2:
      r0.actions.push_back(a_reply(rs.limits.state_bytes - 4, 8, 0));
      return {HostileStage::Verify, "reply overruns the state window"};
    case 3:
      r0.actions.push_back(a_copy(rs.limits.state_bytes - 2, 0, 8));
      return {HostileStage::Verify, "copy overruns the state window"};
    case 4:
      r0.actions.push_back(a_count(rs.limits.state_bytes));
      return {HostileStage::Verify, "counter word past the state window"};
    case 5:
      r0.actions.push_back(a_count(2));
      return {HostileStage::Compile, "misaligned counter word"};
    case 6:
      r0.actions.push_back(a_sample(0, 0));
      return {HostileStage::Compile, "zero sample modulus"};
    default:
      r0.actions.push_back(a_store_cksum(0, 0, kMaxCksumBytes + 4));
      return {HostileStage::Compile, "checksum unroll past the ceiling"};
  }
}

std::vector<std::vector<std::uint8_t>> gen_frames(Rng& rng,
                                                  const RuleSet& rs,
                                                  std::size_t count) {
  const std::vector<std::uint32_t> offsets = all_field_offsets(rs);
  const std::uint32_t window = rs.limits.max_frame_bytes;

  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> f;
    switch (rng.below(4)) {
      case 0: {  // uniform random
        f.resize(rng.below(window + 16));
        break;
      }
      case 1: {  // planted: satisfy every field atom of one rule's pred
        if (rs.rules.empty()) {
          f.resize(rng.below(window + 16));
          break;
        }
        const Rule& r = rs.rules[static_cast<std::size_t>(
            rng.below(rs.rules.size()))];
        std::vector<const Match*> atoms;
        collect_pred_atoms(r.pred, atoms);
        std::uint32_t need = 8;
        for (const Match* m : atoms) {
          need = std::max(need, m->field.offset + 4);
        }
        f.resize(need + rng.below(window - std::min(need, window) + 1));
        for (auto& byte : f) byte = static_cast<std::uint8_t>(rng.next());
        for (const Match* m : atoms) plant(f, *m, sat_value(rng, *m));
        frames.push_back(std::move(f));
        continue;
      }
      case 2: {  // boundary lengths around a referenced field
        const std::uint32_t off = offsets[static_cast<std::size_t>(
            rng.below(offsets.size()))];
        const std::uint32_t deltas[5] = {0, 1, 3, 4, 5};
        f.resize(off + deltas[rng.below(5)]);
        break;
      }
      default: {  // extremes
        const std::uint32_t lens[7] = {0,      1,          2,
                                       3,      4,          window,
                                       window + 8};
        f.resize(lens[rng.below(7)]);
        break;
      }
    }
    for (auto& byte : f) byte = static_cast<std::uint8_t>(rng.next());
    frames.push_back(std::move(f));
  }
  return frames;
}

}  // namespace ash::ashc
