#include "ashc/compile.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "vcode/builder.hpp"

namespace ash::ashc {
namespace {

using vcode::Builder;
using vcode::Label;
using vcode::Reg;

/// A hoisted normalized header field: the host-order (byte-swapped /
/// masked-to-width) value of a `(offset, width)` field, computed once in
/// the entry block when two or more sites consume it.
struct Norm {
  std::uint32_t offset = 0;
  std::uint8_t width = 0;
  int uses = 0;
  Reg reg = 0;
};

struct Ctx {
  const RuleSet& rs;
  Builder b;
  std::string error;

  // The argument registers as seen by rule bodies. len/state/chan are the
  // live r2..r4 (nothing compiled here ever writes them); msg is r1
  // itself unless some rule reads the message after a TSend/TUserCopy
  // clobbered r1, in which case it is an entry snapshot.
  Reg msg = 0, len = 0, state = 0, chan = 0;
  // Scratch registers, reused across every atom/action.
  Reg rv = 0, rt = 0, rw = 0, rw2 = 0;
  // Preloaded raw header words: message byte offset -> register.
  std::vector<std::pair<std::uint32_t, Reg>> words;
  // Normalized field values hoisted into the entry block.
  std::vector<Norm> norms;

  explicit Ctx(const RuleSet& r) : rs(r) {}

  bool fail(const std::string& msg_text) {
    if (error.empty()) error = msg_text;
    return false;
  }

  Reg word_reg(std::uint32_t offset) const {
    for (const auto& [off, reg] : words) {
      if (off == offset) return reg;
    }
    return 0;  // collect_offsets guarantees this cannot happen
  }

  Reg norm_reg(const Field& f) const {
    for (const Norm& n : norms) {
      if (n.offset == f.offset && n.width == f.width && n.reg != 0) {
        return n.reg;
      }
    }
    return 0;
  }

  void note_norm(const Field& f) {
    for (Norm& n : norms) {
      if (n.offset == f.offset && n.width == f.width) {
        ++n.uses;
        return;
      }
    }
    norms.push_back({f.offset, f.width, 1, Reg{0}});
  }
};

bool valid_width(std::uint8_t w) { return w == 1 || w == 2 || w == 4; }

bool note_offset(Ctx& cx, std::uint32_t offset) {
  for (const auto& [off, reg] : cx.words) {
    (void)reg;
    if (off == offset) return true;
  }
  if (cx.words.size() >= kMaxDistinctFields) {
    return cx.fail("rule set reads more than " +
                   std::to_string(kMaxDistinctFields) +
                   " distinct header words");
  }
  cx.words.emplace_back(offset, Reg{0});
  return true;
}

bool collect_pred(Ctx& cx, const Pred& p) {
  switch (p.op) {
    case Pred::Op::Atom:
      if (p.atom.kind != Match::Kind::Field) return true;
      if (!valid_width(p.atom.field.width)) {
        return cx.fail("match field width must be 1, 2, or 4");
      }
      cx.note_norm(p.atom.field);
      return note_offset(cx, p.atom.field.offset);
    case Pred::Op::And:
    case Pred::Op::Or:
      for (const Pred& k : p.kids) {
        if (!collect_pred(cx, k)) return false;
      }
      return true;
  }
  return true;
}

bool collect_offsets(Ctx& cx) {
  for (const Rule& r : cx.rs.rules) {
    if (!collect_pred(cx, r.pred)) return false;
    for (const Action& a : r.actions) {
      switch (a.kind) {
        case Action::Kind::Count:
        case Action::Kind::Sample:
        case Action::Kind::StoreField:
        case Action::Kind::StoreCksum:
          if (a.state_off % 4 != 0) {
            return cx.fail("word-valued state offset " +
                           std::to_string(a.state_off) +
                           " is not 4-byte aligned");
          }
          break;
        default:
          break;
      }
      switch (a.kind) {
        case Action::Kind::Sample:
          if (a.n == 0) return cx.fail("Sample modulus must be > 0");
          break;
        case Action::Kind::StoreField:
          if (!valid_width(a.field.width)) {
            return cx.fail("stored field width must be 1, 2, or 4");
          }
          cx.note_norm(a.field);
          if (!note_offset(cx, a.field.offset)) return false;
          break;
        case Action::Kind::StoreCksum:
          if (a.len % 4 != 0) {
            return cx.fail("checksum length must be a multiple of 4");
          }
          if (a.len > kMaxCksumBytes) {
            return cx.fail("checksum length exceeds the unroll ceiling");
          }
          for (std::uint32_t w = 0; w < a.len; w += 4) {
            if (!note_offset(cx, a.msg_off + w)) return false;
          }
          break;
        case Action::Kind::Reply:
          if (a.channel < kChannelArrival) {
            return cx.fail("reply channel out of range");
          }
          for (const Splice& s : a.splices) {
            if (s.from_state) continue;
            if (!valid_width(s.src.width)) {
              return cx.fail("spliced field width must be 1, 2, or 4");
            }
            if (!note_offset(cx, s.src.offset)) return false;
          }
          break;
        case Action::Kind::Steer:
          if (a.channel < kChannelArrival) {
            return cx.fail("steer channel out of range");
          }
          break;
        default:
          break;
      }
    }
  }
  return true;
}

/// Normalize the field's raw preload word into `dst`: host byte order,
/// masked to the field width.
void emit_normalize(Ctx& cx, const Field& f, Reg dst) {
  const Reg word = cx.word_reg(f.offset);
  switch (f.width) {
    case 4:
      cx.b.bswap32(dst, word);
      break;
    case 2:
      cx.b.bswap16(dst, word);  // also zeroes the high half
      break;
    default:
      cx.b.andi(dst, word, 0xffu);
      break;
  }
}

/// The register holding the atom's (unmasked) host-order field value:
/// the entry-hoisted normalization when one exists, else cx.rv after
/// normalizing in place.
Reg emit_field_value(Ctx& cx, const Field& f) {
  const Reg hoisted = cx.norm_reg(f);
  if (hoisted != 0) return hoisted;
  emit_normalize(cx, f, cx.rv);
  return cx.rv;
}

/// Fall through when the atom holds; jump to `on_false` otherwise.
void emit_atom(Ctx& cx, const Match& m, Label on_false) {
  Builder& b = cx.b;
  switch (m.kind) {
    case Match::Kind::LenGe:
      b.movi(cx.rw, m.value);
      b.bltu(cx.len, cx.rw, on_false);
      return;
    case Match::Kind::LenLt:
      b.movi(cx.rw, m.value);
      b.bgeu(cx.len, cx.rw, on_false);
      return;
    case Match::Kind::Field:
      break;
  }
  Reg val = emit_field_value(cx, m.field);
  const std::uint32_t full =
      m.field.width == 1 ? 0xffu : m.field.width == 2 ? 0xffffu : 0xffffffffu;
  if (m.effective_mask() != full) {
    b.andi(cx.rv, val, m.effective_mask());
    val = cx.rv;
  }
  switch (m.cmp) {
    case Cmp::Eq:
      b.movi(cx.rw, m.value);
      b.bne(val, cx.rw, on_false);
      return;
    case Cmp::Ne:
      b.movi(cx.rw, m.value);
      b.beq(val, cx.rw, on_false);
      return;
    case Cmp::Lt:
      b.movi(cx.rw, m.value);
      b.bgeu(val, cx.rw, on_false);
      return;
    case Cmp::Gt:
      b.movi(cx.rw, m.value);
      b.bgeu(cx.rw, val, on_false);
      return;
    case Cmp::Range:
      b.movi(cx.rw, m.value);
      b.bltu(val, cx.rw, on_false);
      b.movi(cx.rw2, m.value2);
      b.bltu(cx.rw2, val, on_false);
      return;
  }
}

/// Fall through when `p` holds; jump to `on_false` otherwise.
void emit_pred(Ctx& cx, const Pred& p, Label on_false) {
  Builder& b = cx.b;
  switch (p.op) {
    case Pred::Op::Atom:
      emit_atom(cx, p.atom, on_false);
      return;
    case Pred::Op::And:
      for (const Pred& k : p.kids) emit_pred(cx, k, on_false);
      return;
    case Pred::Op::Or: {
      if (p.kids.empty()) {
        b.jmp(on_false);  // empty Or is false
        return;
      }
      const Label is_true = b.label();
      for (std::size_t i = 0; i + 1 < p.kids.size(); ++i) {
        const Label next = b.label();
        emit_pred(cx, p.kids[i], next);
        b.jmp(is_true);
        b.bind(next);
      }
      emit_pred(cx, p.kids.back(), on_false);
      b.bind(is_true);
      return;
    }
  }
}

/// Leave the resolved send channel in cx.rw2.
void emit_channel(Ctx& cx, int channel) {
  if (channel == kChannelArrival) {
    cx.b.mov(cx.rw2, cx.chan);
  } else {
    cx.b.movi(cx.rw2, static_cast<std::uint32_t>(channel));
  }
}

/// `r1_clobbered` tracks whether a trusted call earlier in this rule's
/// body has overwritten r1 (TSend/TUserCopy write their status there); it
/// picks between the live argument registers and the entry snapshot.
void emit_action(Ctx& cx, const Action& a, Label to_verdict,
                 bool& r1_clobbered) {
  Builder& b = cx.b;
  switch (a.kind) {
    case Action::Kind::Count:
      b.lw(cx.rt, cx.state, static_cast<std::int32_t>(a.state_off));
      b.addiu(cx.rt, cx.rt, 1);
      b.sw(cx.rt, cx.state, static_cast<std::int32_t>(a.state_off));
      return;

    case Action::Kind::Sample:
      b.lw(cx.rt, cx.state, static_cast<std::int32_t>(a.state_off));
      b.addiu(cx.rt, cx.rt, 1);
      b.sw(cx.rt, cx.state, static_cast<std::int32_t>(a.state_off));
      b.movi(cx.rw, a.n);
      b.remu(cx.rt, cx.rt, cx.rw);
      // Skip this rule's remaining actions unless the count hit 0 mod n;
      // the verdict still applies.
      b.bne(cx.rt, vcode::kRegZero, to_verdict);
      return;

    case Action::Kind::StoreField:
      b.sw(emit_field_value(cx, a.field), cx.state,
           static_cast<std::int32_t>(a.state_off));
      return;

    case Action::Kind::StoreCksum:
      b.movi(cx.rv, 0);
      for (std::uint32_t w = 0; w < a.len; w += 4) {
        b.cksum32(cx.rv, cx.word_reg(a.msg_off + w));
      }
      b.sw(cx.rv, cx.state, static_cast<std::int32_t>(a.state_off));
      return;

    case Action::Kind::CopyToState: {
      // Skipped entirely when the source range overruns the frame; the
      // reference interpreter applies the identical guard.
      const Label skip = b.label();
      b.movi(cx.rw, a.msg_off + a.len);
      b.bltu(cx.len, cx.rw, skip);
      b.addiu(cx.rv, cx.state, a.state_off);
      b.addiu(cx.rt, r1_clobbered ? cx.msg : vcode::kRegArg0, a.msg_off);
      b.movi(cx.rw, a.len);
      b.t_usercopy(cx.rv, cx.rt, cx.rw);
      r1_clobbered = true;
      b.bind(skip);
      return;
    }

    case Action::Kind::Reply: {
      for (const Splice& s : a.splices) {
        const std::int32_t dst =
            static_cast<std::int32_t>(a.state_off + s.dst_off);
        if (s.from_state) {
          for (std::uint32_t i = 0; i < 4; ++i) {
            b.lbu(cx.rt, cx.state,
                  static_cast<std::int32_t>(s.state_src + i));
            b.sb(cx.rt, cx.state, dst + static_cast<std::int32_t>(i));
          }
        } else {
          // The little-endian header word's bytes are the message bytes
          // in memory order, so storing them byte-by-byte reproduces the
          // field verbatim — i.e. in network byte order.
          const Reg word = cx.word_reg(s.src.offset);
          b.mov(cx.rt, word);
          b.sb(cx.rt, cx.state, dst);
          for (std::uint32_t i = 1; i < s.src.width; ++i) {
            b.srli(cx.rt, word, 8 * i);
            b.sb(cx.rt, cx.state, dst + static_cast<std::int32_t>(i));
          }
        }
      }
      emit_channel(cx, a.channel);
      b.addiu(cx.rv, cx.state, a.state_off);
      b.movi(cx.rw, a.len);
      b.t_send(cx.rw2, cx.rv, cx.rw);
      r1_clobbered = true;
      return;
    }

    case Action::Kind::Steer:
      // TSend of (message base, message length) — the verifier's
      // always-admitted whole-message forward form. Use r1 itself while
      // it still holds the message address; the snapshot otherwise.
      emit_channel(cx, a.channel);
      b.t_send(cx.rw2, r1_clobbered ? cx.msg : vcode::kRegArg0, cx.len);
      r1_clobbered = true;
      return;
  }
}

void emit_verdict(Ctx& cx, Verdict v) {
  if (v == Verdict::Accept) {
    cx.b.movi(vcode::kRegArg0, 1);
    cx.b.halt();
  } else {
    cx.b.abort(0);
  }
}

/// Actions and verdict of one rule (its predicate already passed).
void emit_rule_tail(Ctx& cx, const Rule& r) {
  const Label verdict = cx.b.label();
  bool r1_clobbered = false;
  for (const Action& a : r.actions) {
    emit_action(cx, a, verdict, r1_clobbered);
  }
  cx.b.bind(verdict);
  emit_verdict(cx, r.verdict);
}

bool same_atom(const Match& a, const Match& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Match::Kind::LenGe:
    case Match::Kind::LenLt:
      return a.value == b.value;
    case Match::Kind::Field:
      return a.field.offset == b.field.offset &&
             a.field.width == b.field.width && a.cmp == b.cmp &&
             a.value == b.value && a.value2 == b.value2 &&
             a.effective_mask() == b.effective_mask();
  }
  return false;
}

/// The rule's first atom when its predicate is that atom or an And
/// starting with it — the shape the group-guard pass can factor out.
const Match* leading_atom(const Pred& p) {
  if (p.op == Pred::Op::Atom) return &p.atom;
  if (p.op == Pred::Op::And && !p.kids.empty() &&
      p.kids[0].op == Pred::Op::Atom) {
    return &p.kids[0].atom;
  }
  return nullptr;
}

/// Emit `p` minus its leading atom (already checked by a group guard).
void emit_pred_rest(Ctx& cx, const Pred& p, Label on_false) {
  if (p.op == Pred::Op::Atom) return;  // the atom WAS the whole predicate
  for (std::size_t i = 1; i < p.kids.size(); ++i) {
    emit_pred(cx, p.kids[i], on_false);
  }
}

/// True when some rule reads the message address after a trusted call in
/// the same body clobbered r1 — the only case the entry snapshot exists
/// for. Atoms never need it: header bytes come from the preload block.
bool needs_msg_snapshot(const RuleSet& rs) {
  for (const Rule& r : rs.rules) {
    bool clobbered = false;
    for (const Action& a : r.actions) {
      const bool uses_msg = a.kind == Action::Kind::CopyToState ||
                            a.kind == Action::Kind::Steer;
      if (uses_msg && clobbered) return true;
      if (a.kind == Action::Kind::CopyToState ||
          a.kind == Action::Kind::Steer ||
          a.kind == Action::Kind::Reply) {
        clobbered = true;
      }
    }
  }
  return false;
}

}  // namespace

Compiled compile(const RuleSet& rs) {
  Compiled out;
  Ctx cx(rs);
  if (!collect_offsets(cx)) {
    out.error = cx.error;
    return out;
  }

  Builder& b = cx.b;
  // r2..r4 are never written by compiled code, so rule bodies read them
  // live; only r1 (clobbered by trusted-call statuses) may need an entry
  // snapshot, and only when a rule reads the message after such a call.
  const bool snapshot_msg = needs_msg_snapshot(rs);
  cx.msg = snapshot_msg ? b.reg() : vcode::kRegArg0;
  cx.len = vcode::kRegArg1;
  cx.state = vcode::kRegArg2;
  cx.chan = vcode::kRegArg3;
  for (auto& [off, reg] : cx.words) {
    (void)off;
    reg = b.reg();
  }
  // Hoist normalized field values consumed by two or more sites into the
  // entry block (capped so the scratch registers always fit).
  int hoisted = 0;
  for (Norm& n : cx.norms) {
    if (n.uses >= 2 && hoisted < 24) {
      n.reg = b.reg();
      ++hoisted;
    }
  }
  cx.rv = b.reg();
  cx.rt = b.reg();
  cx.rw = b.reg();
  cx.rw2 = b.reg();

  // Entry: coalesce all header loads into one preload block (DPF-style),
  // then normalize the shared field values once.
  if (snapshot_msg) b.mov(cx.msg, vcode::kRegArg0);
  for (const auto& [off, reg] : cx.words) {
    b.t_msgload(reg, vcode::kRegZero, static_cast<std::int32_t>(off));
  }
  for (const Norm& n : cx.norms) {
    if (n.reg != 0) emit_normalize(cx, Field{n.offset, n.width}, n.reg);
  }

  // Rule chain. Consecutive rules sharing the same leading atom (e.g. a
  // common `len >= N` guard) are grouped: the shared atom is checked once
  // and its failure skips the whole group — sound because atoms are pure
  // and a failed shared atom fails every rule in the group.
  const auto& rules = rs.rules;
  std::size_t i = 0;
  while (i < rules.size()) {
    const Match* lead = leading_atom(rules[i].pred);
    std::size_t j = i + 1;
    if (lead != nullptr) {
      while (j < rules.size()) {
        const Match* next = leading_atom(rules[j].pred);
        if (next == nullptr || !same_atom(*lead, *next)) break;
        ++j;
      }
    }
    if (lead != nullptr && j - i >= 2) {
      const Label group_end = b.label();
      emit_atom(cx, *lead, group_end);
      for (std::size_t k = i; k < j; ++k) {
        const Label no_match = b.label();
        emit_pred_rest(cx, rules[k].pred, no_match);
        emit_rule_tail(cx, rules[k]);
        b.bind(no_match);
      }
      b.bind(group_end);
    } else {
      const Label no_match = b.label();
      emit_pred(cx, rules[i].pred, no_match);
      emit_rule_tail(cx, rules[i]);
      b.bind(no_match);
      j = i + 1;
    }
    i = j;
  }
  emit_verdict(cx, rs.default_verdict);

  out.program = b.take();
  out.ok = true;
  return out;
}

vcode::VerifyPolicy verify_policy(const RuleSet& rs) {
  vcode::VerifyPolicy policy;
  policy.allow_indirect = false;  // compiled rules never emit Jr
  policy.bounds.enabled = true;
  policy.bounds.msg_window = rs.limits.max_frame_bytes;
  policy.bounds.state_window = rs.limits.state_bytes;
  policy.bounds.send_cap = rs.limits.send_cap;
  return policy;
}

}  // namespace ash::ashc
