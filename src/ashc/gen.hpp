// Structure-aware random rule-set and frame generation — the shared
// engine behind tests/ashc_diff_test.cpp and packetfuzz's rules /
// rulesverify targets.
//
// random_rule_set() draws from the verifiable subset of the language:
// everything it produces compiles and passes verify_policy() bounds
// checking, so a compile or verify failure on its output is a real bug.
// hostilize() then breaks exactly one property of a valid rule set and
// names the expected failure stage, giving the fuzzer a rejection oracle.
//
// gen_frames() is frame generation biased at the rule set under test:
// random frames, frames with planted field values satisfying a randomly
// chosen atom (so predicates actually fire), and adversarial boundary
// lengths around each referenced field (offset+3 / offset+4 — the edge
// of t_msgload's whole-word-zero contract).
#pragma once

#include <cstdint>
#include <vector>

#include "ashc/rule.hpp"
#include "util/rng.hpp"

namespace ash::ashc {

/// A random rule set from the verifiable subset. Deterministic in `rng`.
RuleSet random_rule_set(util::Rng& rng);

/// Which stage must reject a hostilized rule set.
enum class HostileStage : std::uint8_t {
  Compile,  // ashc::compile() itself returns ok=false
  Verify,   // compiles, but vcode::verify must reject under verify_policy
};

struct Hostile {
  HostileStage stage = HostileStage::Verify;
  const char* what = "";  // human-readable mutation name
};

/// Break one property of `rs` (out-of-window offset, oversized reply,
/// misaligned state word, ...). Returns what was broken and which stage
/// must reject the result. Deterministic in `rng`.
Hostile hostilize(util::Rng& rng, RuleSet& rs);

/// `count` test frames biased at `rs` (see file comment). Frame lengths
/// range from 0 to a little beyond the declared message window.
std::vector<std::vector<std::uint8_t>> gen_frames(util::Rng& rng,
                                                  const RuleSet& rs,
                                                  std::size_t count);

}  // namespace ash::ashc
