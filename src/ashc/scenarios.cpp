#include "ashc/scenarios.hpp"

#include "util/byteorder.hpp"

namespace ash::ashc {
namespace {

/// A frame of `len` zero bytes with a big-endian 16-bit value planted.
std::vector<std::uint8_t> frame_be16(std::size_t len, std::uint32_t off,
                                     std::uint16_t v) {
  std::vector<std::uint8_t> f(len, 0);
  util::store_be16(f.data() + off, v);
  return f;
}

std::vector<std::uint8_t> kv_frame(std::uint32_t op, std::uint32_t key,
                                   std::uint32_t value) {
  std::vector<std::uint8_t> f(12, 0);
  util::store_be32(f.data() + 0, op);
  util::store_be32(f.data() + 4, key);
  util::store_be32(f.data() + 8, value);
  return f;
}

}  // namespace

RuleSet lb_rules() {
  RuleSet rs;
  rs.name = "lb";
  const auto backend = [](const char* name, std::uint32_t lo,
                          std::uint32_t hi, int chan) {
    Rule r;
    r.name = name;
    r.pred = p_and({p_atom(m_len_ge(40)), p_atom(m_range(36, 2, lo, hi))});
    r.actions = {a_steer(chan)};
    r.verdict = Verdict::Accept;
    return r;
  };
  rs.rules.push_back(backend("pool-a", 8000, 8099, 1));
  rs.rules.push_back(backend("pool-b", 8100, 8199, 2));
  rs.rules.push_back(backend("pool-c", 8200, 8299, 3));
  rs.default_verdict = Verdict::Deliver;
  return rs;
}

RuleSet kv_rules() {
  // State layout: [0] GET counter, [4] PUT counter, [8..12) cached value
  // bytes, [16..28) the 12-byte GET reply template (magic "KVRP", then
  // the spliced key, then the spliced cached value).
  RuleSet rs;
  rs.name = "kv";
  rs.templates.push_back({16, {'K', 'V', 'R', 'P', 0, 0, 0, 0, 0, 0, 0, 0}});

  Rule get;
  get.name = "get";
  get.pred = p_and({p_atom(m_eq(0, 4, 1)), p_atom(m_len_ge(12))});
  Splice key;
  key.dst_off = 4;
  key.src = {4, 4};
  Splice value;
  value.dst_off = 8;
  value.from_state = true;
  value.state_src = 8;
  get.actions = {a_count(0), a_reply(16, 12, kChannelArrival, {key, value})};
  get.verdict = Verdict::Accept;
  rs.rules.push_back(std::move(get));

  Rule put;
  put.name = "put";
  put.pred = p_and({p_atom(m_eq(0, 4, 2)), p_atom(m_len_ge(12))});
  put.actions = {a_count(4), a_copy(8, 8, 4)};
  put.verdict = Verdict::Accept;
  rs.rules.push_back(std::move(put));

  rs.default_verdict = Verdict::Deliver;
  return rs;
}

RuleSet sampler_rules() {
  // State layout: [0] frame counter, [4] last digest, [8] sample counter,
  // [16..24) the 8-byte digest reply template ("TD" tag + spliced digest).
  RuleSet rs;
  rs.name = "sampler";
  rs.templates.push_back({16, {'T', 'D', 0, 0, 0, 0, 0, 0}});

  Rule telemetry;
  telemetry.name = "telemetry";
  telemetry.pred = p_atom(m_eq(0, 2, 0x5454));
  Splice digest;
  digest.dst_off = 4;
  digest.from_state = true;
  digest.state_src = 4;
  telemetry.actions = {a_count(0), a_store_cksum(4, 0, 16), a_sample(8, 8),
                       a_reply(16, 8, kChannelArrival, {digest})};
  telemetry.verdict = Verdict::Accept;
  rs.rules.push_back(std::move(telemetry));

  rs.default_verdict = Verdict::Deliver;
  return rs;
}

RuleSet firewall_rules() {
  // State layout: [0] short-frame drops, [4] policy drops.
  RuleSet rs;
  rs.name = "firewall";

  const auto allow = [](const char* name, Pred pred) {
    Rule r;
    r.name = name;
    r.pred = std::move(pred);
    r.verdict = Verdict::Deliver;
    return r;
  };
  rs.rules.push_back(allow(
      "tcp-http", p_and({p_atom(m_eq(23, 1, 6)),
                         p_or({p_atom(m_eq(36, 2, 80)),
                               p_atom(m_eq(36, 2, 443))})})));
  rs.rules.push_back(allow(
      "udp-media", p_and({p_atom(m_eq(23, 1, 17)),
                          p_atom(m_range(36, 2, 5000, 5100))})));

  Rule runt;
  runt.name = "drop-runt";
  runt.pred = p_atom(m_len_lt(20));
  runt.actions = {a_count(0)};
  runt.verdict = Verdict::Accept;  // consume: silent drop
  rs.rules.push_back(std::move(runt));

  Rule deny;
  deny.name = "drop-rest";
  deny.pred = p_and({});  // always true
  deny.actions = {a_count(4)};
  deny.verdict = Verdict::Accept;
  rs.rules.push_back(std::move(deny));

  rs.default_verdict = Verdict::Deliver;  // unreachable behind drop-rest
  return rs;
}

std::vector<std::string> scenario_names() {
  return {"lb", "kv", "sampler", "firewall"};
}

RuleSet scenario(const std::string& name) {
  if (name == "lb") return lb_rules();
  if (name == "kv") return kv_rules();
  if (name == "sampler") return sampler_rules();
  if (name == "firewall") return firewall_rules();
  return {};
}

std::vector<std::vector<std::uint8_t>> demo_frames(const std::string& name) {
  std::vector<std::vector<std::uint8_t>> out;
  if (name == "lb") {
    out.push_back(frame_be16(64, 36, 8042));   // pool-a
    out.push_back(frame_be16(64, 36, 8150));   // pool-b
    out.push_back(frame_be16(64, 36, 9000));   // no pool: deliver
    out.push_back(frame_be16(38, 36, 8042));   // too short: deliver
  } else if (name == "kv") {
    out.push_back(kv_frame(2, 0xabcd0001, 0x11223344));  // PUT
    out.push_back(kv_frame(1, 0xabcd0001, 0));           // GET -> reply
    out.push_back(kv_frame(7, 0, 0));                    // unknown op
  } else if (name == "sampler") {
    for (int i = 0; i < 9; ++i) {
      auto f = frame_be16(32, 0, 0x5454);
      f[4] = static_cast<std::uint8_t>(i);  // vary the digest input
      out.push_back(std::move(f));
    }
    out.push_back(frame_be16(32, 0, 0x1111));  // untagged: deliver
  } else if (name == "firewall") {
    auto tcp80 = frame_be16(64, 36, 80);
    tcp80[23] = 6;
    out.push_back(std::move(tcp80));
    auto udp5050 = frame_be16(64, 36, 5050);
    udp5050[23] = 17;
    out.push_back(std::move(udp5050));
    auto tcp22 = frame_be16(64, 36, 22);
    tcp22[23] = 6;
    out.push_back(std::move(tcp22));           // policy drop
    out.push_back(std::vector<std::uint8_t>(8, 0));  // runt drop
  }
  return out;
}

}  // namespace ash::ashc
