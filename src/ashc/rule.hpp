// Declarative handler rules (ROADMAP item 5).
//
// A RuleSet is a first-match-wins list of rules over one in-flight
// message: each rule is a predicate tree of header matches (field at
// offset/width, masked, compared against a constant or range, composed
// with and/or) bound to a list of actions (count, 1-in-N sample gating,
// field/checksum transforms into handler state, copy-to-state, reply
// from a template with spliced fields, steer the whole message to a
// channel) and an exit verdict. This is the paper's DPF atom/compose
// design extended from pure demultiplexing to whole message-processing
// rules, in the spirit of Demaq (PAPERS.md): a ~20-line rule set replaces
// a hand-written VCODE handler, and `ashc::compile()` (compile.hpp)
// lowers it onto the unchanged verifier/backend/supervisor machinery.
//
// Two independent executions exist for every rule set:
//   * ashc::compile()  -> a VCODE program run by the real kernel path;
//   * ashc::eval()     -> a direct reference interpreter (eval.hpp).
// The differential test layer (tests/ashc_diff_test.cpp) holds them
// byte-equal on every backend; the semantics documented here are the
// contract both sides implement.
//
// Message field semantics (must mirror AshEnv::t_msgload exactly): a
// field of width w at offset o is extracted from the 32-bit
// little-endian message word at logical offset o; when o + 4 exceeds
// the frame length the WHOLE word reads as zero (even if the first
// bytes exist), so the field value is 0. Fields are interpreted in
// network byte order and converted to host order (the "byteswap
// transform" — bswap16/bswap32 in the compiled code).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ash::ashc {

/// A message header field: `width` in {1, 2, 4} bytes at byte `offset`,
/// interpreted in network byte order.
struct Field {
  std::uint32_t offset = 0;
  std::uint8_t width = 4;
};

enum class Cmp : std::uint8_t {
  Eq,     // field == value
  Ne,     // field != value
  Lt,     // field <  value   (unsigned)
  Gt,     // field >  value   (unsigned)
  Range,  // value <= field <= value2 (unsigned, inclusive)
};

/// One predicate atom.
struct Match {
  enum class Kind : std::uint8_t {
    Field,  // compare a masked header field
    LenGe,  // frame length >= value
    LenLt,  // frame length <  value
  };
  Kind kind = Kind::Field;
  Field field{};
  std::uint32_t mask = 0;  // 0 = full mask for the field width
  Cmp cmp = Cmp::Eq;
  std::uint32_t value = 0;
  std::uint32_t value2 = 0;  // Range upper bound (inclusive)

  /// The effective mask: `mask`, or the width's full mask when 0.
  std::uint32_t effective_mask() const noexcept {
    if (mask != 0) return mask;
    return field.width == 1 ? 0xffu : field.width == 2 ? 0xffffu
                                                       : 0xffffffffu;
  }
};

/// Predicate tree: an atom, or an and/or over child predicates. An empty
/// And is true; an empty Or is false.
struct Pred {
  enum class Op : std::uint8_t { Atom, And, Or };
  Op op = Op::Atom;
  Match atom{};
  std::vector<Pred> kids;
};

Pred p_atom(const Match& m);
Pred p_and(std::vector<Pred> kids);
Pred p_or(std::vector<Pred> kids);

// Convenience atom builders.
Match m_eq(std::uint32_t offset, std::uint8_t width, std::uint32_t value);
Match m_ne(std::uint32_t offset, std::uint8_t width, std::uint32_t value);
Match m_mask(std::uint32_t offset, std::uint8_t width, std::uint32_t mask,
             std::uint32_t value);
Match m_range(std::uint32_t offset, std::uint8_t width, std::uint32_t lo,
              std::uint32_t hi);
Match m_len_ge(std::uint32_t n);
Match m_len_lt(std::uint32_t n);

/// Steer/Reply channel value meaning "the message's arrival/reply
/// channel" (the handler's r4 argument) instead of a fixed channel.
inline constexpr int kChannelArrival = -1;

/// A spliced field inside a reply template: `width` bytes written at
/// `dst_off` (relative to the template's state offset), sourced either
/// from a message field (written in network byte order) or copied
/// verbatim from 4 state bytes at `state_src`.
struct Splice {
  std::uint32_t dst_off = 0;
  bool from_state = false;
  Field src{};                  // message field (when !from_state)
  std::uint32_t state_src = 0;  // state byte offset (when from_state)
};

/// One action. All state offsets are byte offsets into the rule set's
/// state blob (RuleSet::Limits::state_bytes bytes at the attach-time
/// user argument). Word-valued state (Count/Sample/StoreField/StoreCksum)
/// must be 4-byte aligned — compile() rejects misaligned offsets.
struct Action {
  enum class Kind : std::uint8_t {
    Count,        // u32 state[state_off] += 1
    Sample,       // ++state[state_off]; continue this rule's remaining
                  // actions only when the new count % n == 0
    StoreField,   // state[state_off] = host-order field value (u32)
    StoreCksum,   // state[state_off] = ones'-complement accumulation of
                  // the message words at msg_off .. msg_off+len (len % 4
                  // == 0; out-of-frame words read as zero)
    CopyToState,  // state[state_off..+len) = message[msg_off..+len);
                  // skipped entirely when msg_off+len exceeds the frame
    Reply,        // splice fields into the template at state[state_off
                  // ..+len), then send those state bytes on `channel`
    Steer,        // send the whole message on `channel`
  };
  Kind kind = Kind::Count;
  std::uint32_t state_off = 0;
  Field field{};                // StoreField source
  std::uint32_t n = 0;          // Sample modulus (must be > 0)
  std::uint32_t msg_off = 0;    // StoreCksum / CopyToState source
  std::uint32_t len = 0;        // StoreCksum / CopyToState / Reply length
  int channel = kChannelArrival;  // Reply / Steer
  std::vector<Splice> splices;  // Reply
};

Action a_count(std::uint32_t state_off);
Action a_sample(std::uint32_t n, std::uint32_t state_off);
Action a_store_field(std::uint32_t state_off, Field field);
Action a_store_cksum(std::uint32_t state_off, std::uint32_t msg_off,
                     std::uint32_t len);
Action a_copy(std::uint32_t state_off, std::uint32_t msg_off,
              std::uint32_t len);
Action a_reply(std::uint32_t state_off, std::uint32_t len, int channel,
               std::vector<Splice> splices = {});
Action a_steer(int channel);

/// Exit verdict: Accept commits (Halt — the message is consumed, and the
/// rule's collected sends are released); Deliver aborts voluntarily
/// (Abort — the message falls back to the normal delivery path and any
/// collected sends are DISCARDED, mirroring the kernel's send-release
/// contract).
enum class Verdict : std::uint8_t { Accept, Deliver };

struct Rule {
  std::string name;
  Pred pred;
  std::vector<Action> actions;
  Verdict verdict = Verdict::Accept;
};

/// A reply template's initial bytes, placed into the state blob by
/// init_state(). Splices overwrite parts of it at run time.
struct Template {
  std::uint32_t state_off = 0;
  std::vector<std::uint8_t> bytes;
};

/// Declared resource bounds. These become the verifier's BoundsPolicy
/// windows (vcode::VerifyPolicy::bounds): every compiled message load
/// must start within `max_frame_bytes`, every state access must stay
/// inside `state_bytes`, and no reply may exceed `send_cap` bytes.
struct Limits {
  std::uint32_t max_frame_bytes = 256;
  std::uint32_t state_bytes = 64;
  std::uint32_t send_cap = 128;
};

/// An ordered, first-match-wins rule list. When no rule matches, the
/// default verdict applies with no actions.
struct RuleSet {
  std::string name;
  std::vector<Rule> rules;
  Verdict default_verdict = Verdict::Deliver;
  Limits limits{};
  std::vector<Template> templates;
};

/// The initial state image (Limits::state_bytes zero bytes with the
/// templates placed). Template bytes falling outside the declared state
/// region are silently dropped — the verifier rejects any rule that
/// would touch them.
std::vector<std::uint8_t> init_state(const RuleSet& rs);

/// Human-readable dump of a rule set (what `ashtool rules` prints).
std::string format(const RuleSet& rs);

/// JSON dump of a rule set.
std::string to_json(const RuleSet& rs);

}  // namespace ash::ashc
