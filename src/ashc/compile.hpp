// Rule-set -> VCODE compiler (the "lowering" half of ROADMAP item 5).
//
// compile() turns a RuleSet into a straight-line VCODE program (forward
// branches only, no loops, no indirect jumps) in which every message
// offset, state offset, and send length is a materialized constant. That
// shape is exactly what the verifier's BoundsPolicy dataflow pass can
// track, so a compiled program either proves its own safety under
// verify_policy() or is rejected with a typed error — hostile rule sets
// (out-of-window offsets, oversized replies) compile fine and then fail
// verification, which is the contract tests/ashc_verify_test.cpp pins.
//
// Lowering outline:
//   * entry: snapshot r1..r4 (TSend reports status in r1, clobbering the
//     message pointer) and preload each distinct header word the rule set
//     reads with one TMsgLoad — the DPF-style atom coalescing that keeps
//     compiled rules within the hand-written ASH throughput envelope;
//   * predicates: short-circuit forward branches (And falls through,
//     Or jumps to a local true-label);
//   * actions: straight-line state arithmetic (lw/addiu/sw), unrolled
//     checksum accumulation, guarded TUserCopy, byte-spliced reply
//     templates sent with TSend, whole-message steering as the verifier's
//     always-admitted (r1, r2) forward form;
//   * verdicts: Accept -> Halt (commit: message consumed, sends released),
//     Deliver -> Abort (fall back to normal delivery, sends discarded).
//
// compile() itself only rejects rule sets it cannot express at all
// (misaligned word state, zero Sample modulus, oversized checksum
// unrolls); everything about windows and caps is the verifier's job.
#pragma once

#include <string>

#include "ashc/rule.hpp"
#include "vcode/program.hpp"
#include "vcode/verifier.hpp"

namespace ash::ashc {

/// Result of compiling a rule set. When !ok, `error` names the first
/// structural problem and `program` is empty.
struct Compiled {
  bool ok = false;
  std::string error;
  vcode::Program program;
};

/// Lower `rs` to VCODE. Never throws on hostile input; structural
/// impossibilities come back as ok=false.
Compiled compile(const RuleSet& rs);

/// The verifier policy a compiled rule set must pass before download:
/// the standard ASH policy (no FP, no signed traps, trusted calls
/// allowed) tightened with no-indirect-jumps and the rule set's declared
/// bounds windows (message window, state window, send cap).
vcode::VerifyPolicy verify_policy(const RuleSet& rs);

/// Hard ceiling on one StoreCksum action's length (the accumulation is
/// unrolled at compile time).
inline constexpr std::uint32_t kMaxCksumBytes = 1024;

/// Hard ceiling on distinct header-word offsets one rule set may read
/// (each costs a pinned preload register).
inline constexpr std::uint32_t kMaxDistinctFields = 16;

}  // namespace ash::ashc
