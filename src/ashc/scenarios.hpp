// The four rule-built reference scenarios (ISSUE/ROADMAP item 5): an L4
// load-balancer, a single-slot KV cache, a 1-in-N telemetry sampler, and
// a stateless default-deny firewall. Each is a ~20-line rule set where
// the pre-rule-compiler repo needed a hand-written VCODE handler.
//
// They are shared by bench_rules (compiled vs hand-written twins),
// `ashtool rules` (dump + demo evaluation), the examples, and the golden
// tests — one definition, many consumers, so the goldens pin exactly
// what the bench runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ashc/rule.hpp"

namespace ash::ashc {

/// L4 load balancer: frames with a big-endian destination port at byte
/// 36 are steered to backend channels 1..3 by port range; everything
/// else falls through to normal delivery.
RuleSet lb_rules();

/// Single-slot KV cache: op word at 0 (1 = GET, 2 = PUT), key at 4,
/// value at 8. GET replies from a 12-byte template with the key and the
/// cached value spliced in; PUT caches the value bytes.
RuleSet kv_rules();

/// Telemetry sampler: counts every 0x5454-tagged frame, checksums its
/// first 16 bytes, and forwards a digest reply for 1 in 8.
RuleSet sampler_rules();

/// Stateless default-deny firewall: allow TCP:80, TCP:443 and
/// UDP:5000-5100 through to normal delivery; count and silently consume
/// everything else (short frames on their own counter).
RuleSet firewall_rules();

/// The scenario registry: stable keys, in display order.
std::vector<std::string> scenario_names();

/// Scenario by key ("lb", "kv", "sampler", "firewall"). Returns an empty
/// rule set (no rules, empty name) for an unknown key.
RuleSet scenario(const std::string& name);

/// Deterministic demo frames for a scenario — what `ashtool rules` runs
/// through eval() to show the rule set deciding.
std::vector<std::vector<std::uint8_t>> demo_frames(const std::string& name);

}  // namespace ash::ashc
