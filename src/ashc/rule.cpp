#include "ashc/rule.hpp"

#include <cstdarg>
#include <cstdio>

namespace ash::ashc {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

const char* cmp_name(Cmp c) {
  switch (c) {
    case Cmp::Eq: return "==";
    case Cmp::Ne: return "!=";
    case Cmp::Lt: return "<";
    case Cmp::Gt: return ">";
    case Cmp::Range: return "in";
  }
  return "?";
}

void format_match(std::string& out, const Match& m) {
  switch (m.kind) {
    case Match::Kind::LenGe:
      appendf(out, "len>=%u", m.value);
      return;
    case Match::Kind::LenLt:
      appendf(out, "len<%u", m.value);
      return;
    case Match::Kind::Field:
      break;
  }
  appendf(out, "msg[%u:w%u]", m.field.offset, m.field.width);
  if (m.mask != 0) appendf(out, "&0x%x", m.mask);
  if (m.cmp == Cmp::Range) {
    appendf(out, " in [%u,%u]", m.value, m.value2);
  } else {
    appendf(out, " %s %u", cmp_name(m.cmp), m.value);
  }
}

void format_pred(std::string& out, const Pred& p) {
  switch (p.op) {
    case Pred::Op::Atom:
      format_match(out, p.atom);
      return;
    case Pred::Op::And:
    case Pred::Op::Or: {
      const char* sep = p.op == Pred::Op::And ? " && " : " || ";
      if (p.kids.empty()) {
        out += p.op == Pred::Op::And ? "true" : "false";
        return;
      }
      out += '(';
      for (std::size_t i = 0; i < p.kids.size(); ++i) {
        if (i != 0) out += sep;
        format_pred(out, p.kids[i]);
      }
      out += ')';
      return;
    }
  }
}

void format_action(std::string& out, const Action& a) {
  switch (a.kind) {
    case Action::Kind::Count:
      appendf(out, "count@%u", a.state_off);
      return;
    case Action::Kind::Sample:
      appendf(out, "sample 1-in-%u @%u", a.n, a.state_off);
      return;
    case Action::Kind::StoreField:
      appendf(out, "state[%u] = msg[%u:w%u]", a.state_off, a.field.offset,
              a.field.width);
      return;
    case Action::Kind::StoreCksum:
      appendf(out, "state[%u] = cksum(msg[%u..+%u])", a.state_off, a.msg_off,
              a.len);
      return;
    case Action::Kind::CopyToState:
      appendf(out, "state[%u..+%u] = msg[%u..]", a.state_off, a.len,
              a.msg_off);
      return;
    case Action::Kind::Reply:
      appendf(out, "reply state[%u..+%u]", a.state_off, a.len);
      if (a.channel == kChannelArrival) {
        out += " -> arrival";
      } else {
        appendf(out, " -> ch%d", a.channel);
      }
      for (const Splice& s : a.splices) {
        if (s.from_state) {
          appendf(out, ", splice@%u <- state[%u]", s.dst_off, s.state_src);
        } else {
          appendf(out, ", splice@%u <- msg[%u:w%u]", s.dst_off, s.src.offset,
                  s.src.width);
        }
      }
      return;
    case Action::Kind::Steer:
      if (a.channel == kChannelArrival) {
        out += "steer -> arrival";
      } else {
        appendf(out, "steer -> ch%d", a.channel);
      }
      return;
  }
}

void json_escape(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

Pred p_atom(const Match& m) {
  Pred p;
  p.op = Pred::Op::Atom;
  p.atom = m;
  return p;
}

Pred p_and(std::vector<Pred> kids) {
  Pred p;
  p.op = Pred::Op::And;
  p.kids = std::move(kids);
  return p;
}

Pred p_or(std::vector<Pred> kids) {
  Pred p;
  p.op = Pred::Op::Or;
  p.kids = std::move(kids);
  return p;
}

Match m_eq(std::uint32_t offset, std::uint8_t width, std::uint32_t value) {
  Match m;
  m.field = {offset, width};
  m.cmp = Cmp::Eq;
  m.value = value;
  return m;
}

Match m_ne(std::uint32_t offset, std::uint8_t width, std::uint32_t value) {
  Match m = m_eq(offset, width, value);
  m.cmp = Cmp::Ne;
  return m;
}

Match m_mask(std::uint32_t offset, std::uint8_t width, std::uint32_t mask,
             std::uint32_t value) {
  Match m = m_eq(offset, width, value);
  m.mask = mask;
  return m;
}

Match m_range(std::uint32_t offset, std::uint8_t width, std::uint32_t lo,
              std::uint32_t hi) {
  Match m;
  m.field = {offset, width};
  m.cmp = Cmp::Range;
  m.value = lo;
  m.value2 = hi;
  return m;
}

Match m_len_ge(std::uint32_t n) {
  Match m;
  m.kind = Match::Kind::LenGe;
  m.value = n;
  return m;
}

Match m_len_lt(std::uint32_t n) {
  Match m;
  m.kind = Match::Kind::LenLt;
  m.value = n;
  return m;
}

Action a_count(std::uint32_t state_off) {
  Action a;
  a.kind = Action::Kind::Count;
  a.state_off = state_off;
  return a;
}

Action a_sample(std::uint32_t n, std::uint32_t state_off) {
  Action a;
  a.kind = Action::Kind::Sample;
  a.n = n;
  a.state_off = state_off;
  return a;
}

Action a_store_field(std::uint32_t state_off, Field field) {
  Action a;
  a.kind = Action::Kind::StoreField;
  a.state_off = state_off;
  a.field = field;
  return a;
}

Action a_store_cksum(std::uint32_t state_off, std::uint32_t msg_off,
                     std::uint32_t len) {
  Action a;
  a.kind = Action::Kind::StoreCksum;
  a.state_off = state_off;
  a.msg_off = msg_off;
  a.len = len;
  return a;
}

Action a_copy(std::uint32_t state_off, std::uint32_t msg_off,
              std::uint32_t len) {
  Action a;
  a.kind = Action::Kind::CopyToState;
  a.state_off = state_off;
  a.msg_off = msg_off;
  a.len = len;
  return a;
}

Action a_reply(std::uint32_t state_off, std::uint32_t len, int channel,
               std::vector<Splice> splices) {
  Action a;
  a.kind = Action::Kind::Reply;
  a.state_off = state_off;
  a.len = len;
  a.channel = channel;
  a.splices = std::move(splices);
  return a;
}

Action a_steer(int channel) {
  Action a;
  a.kind = Action::Kind::Steer;
  a.channel = channel;
  return a;
}

std::vector<std::uint8_t> init_state(const RuleSet& rs) {
  std::vector<std::uint8_t> state(rs.limits.state_bytes, 0);
  for (const Template& t : rs.templates) {
    for (std::size_t i = 0; i < t.bytes.size(); ++i) {
      const std::uint64_t at = static_cast<std::uint64_t>(t.state_off) + i;
      if (at >= state.size()) break;
      state[at] = t.bytes[i];
    }
  }
  return state;
}

std::string format(const RuleSet& rs) {
  std::string out;
  appendf(out, "ruleset %s: %zu rule(s), frame<=%u state=%u send<=%u, "
               "default=%s\n",
          rs.name.c_str(), rs.rules.size(), rs.limits.max_frame_bytes,
          rs.limits.state_bytes, rs.limits.send_cap,
          rs.default_verdict == Verdict::Accept ? "accept" : "deliver");
  for (std::size_t i = 0; i < rs.rules.size(); ++i) {
    const Rule& r = rs.rules[i];
    appendf(out, "  [%zu] %s: ", i, r.name.c_str());
    format_pred(out, r.pred);
    out += "\n";
    for (const Action& a : r.actions) {
      out += "        -> ";
      format_action(out, a);
      out += "\n";
    }
    appendf(out, "        => %s\n",
            r.verdict == Verdict::Accept ? "accept" : "deliver");
  }
  return out;
}

std::string to_json(const RuleSet& rs) {
  std::string out = "{";
  out += "\"name\":";
  json_escape(out, rs.name);
  appendf(out, ",\"max_frame_bytes\":%u,\"state_bytes\":%u,\"send_cap\":%u",
          rs.limits.max_frame_bytes, rs.limits.state_bytes,
          rs.limits.send_cap);
  appendf(out, ",\"default\":\"%s\",\"rules\":[",
          rs.default_verdict == Verdict::Accept ? "accept" : "deliver");
  for (std::size_t i = 0; i < rs.rules.size(); ++i) {
    const Rule& r = rs.rules[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    json_escape(out, r.name);
    out += ",\"pred\":";
    std::string pred;
    format_pred(pred, r.pred);
    json_escape(out, pred);
    out += ",\"actions\":[";
    for (std::size_t k = 0; k < r.actions.size(); ++k) {
      if (k != 0) out += ',';
      std::string act;
      format_action(act, r.actions[k]);
      json_escape(out, act);
    }
    appendf(out, "],\"verdict\":\"%s\"}",
            r.verdict == Verdict::Accept ? "accept" : "deliver");
  }
  out += "]}";
  return out;
}

}  // namespace ash::ashc
