#include "ashc/eval.hpp"

#include <cstring>

#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::ashc {
namespace {

/// The 32-bit header word at logical offset `off` under t_msgload's
/// contract: little-endian, and zero when any of the 4 bytes is past the
/// end of the frame.
std::uint32_t word_at(std::span<const std::uint8_t> frame,
                      std::uint32_t off) {
  if (static_cast<std::uint64_t>(off) + 4 > frame.size()) return 0;
  return util::load_u32(frame.data() + off);
}

std::uint32_t state_word(const std::vector<std::uint8_t>& state,
                         std::uint32_t off) {
  if (static_cast<std::uint64_t>(off) + 4 > state.size()) return 0;
  return util::load_u32(state.data() + off);
}

void set_state_word(std::vector<std::uint8_t>& state, std::uint32_t off,
                    std::uint32_t v) {
  if (static_cast<std::uint64_t>(off) + 4 > state.size()) return;
  util::store_u32(state.data() + off, v);
}

void set_state_byte(std::vector<std::uint8_t>& state, std::uint32_t off,
                    std::uint8_t v) {
  if (off >= state.size()) return;
  state[off] = v;
}

std::uint8_t get_state_byte(const std::vector<std::uint8_t>& state,
                            std::uint32_t off) {
  return off < state.size() ? state[off] : 0;
}

bool eval_match(const Match& m, std::span<const std::uint8_t> frame) {
  std::uint32_t v;
  switch (m.kind) {
    case Match::Kind::LenGe:
      return frame.size() >= m.value;
    case Match::Kind::LenLt:
      return frame.size() < m.value;
    case Match::Kind::Field:
      v = field_value(frame, m.field) & m.effective_mask();
      break;
    default:
      return false;
  }
  switch (m.cmp) {
    case Cmp::Eq: return v == m.value;
    case Cmp::Ne: return v != m.value;
    case Cmp::Lt: return v < m.value;
    case Cmp::Gt: return v > m.value;
    case Cmp::Range: return m.value <= v && v <= m.value2;
  }
  return false;
}

bool eval_pred(const Pred& p, std::span<const std::uint8_t> frame) {
  switch (p.op) {
    case Pred::Op::Atom:
      return eval_match(p.atom, frame);
    case Pred::Op::And:
      for (const Pred& k : p.kids) {
        if (!eval_pred(k, frame)) return false;
      }
      return true;
    case Pred::Op::Or:
      for (const Pred& k : p.kids) {
        if (eval_pred(k, frame)) return true;
      }
      return false;
  }
  return false;
}

std::uint32_t resolve_channel(int channel, std::uint32_t arrival) {
  return channel == kChannelArrival ? arrival
                                    : static_cast<std::uint32_t>(channel);
}

/// Run one rule's actions. Returns false when a Sample gate stops the
/// remaining actions (the verdict still applies either way).
void run_actions(const Rule& rule, std::span<const std::uint8_t> frame,
                 std::vector<std::uint8_t>& state, std::uint32_t arrival,
                 std::vector<EvalSend>& staged) {
  for (const Action& a : rule.actions) {
    switch (a.kind) {
      case Action::Kind::Count:
        set_state_word(state, a.state_off, state_word(state, a.state_off) + 1);
        break;

      case Action::Kind::Sample: {
        const std::uint32_t cnt = state_word(state, a.state_off) + 1;
        set_state_word(state, a.state_off, cnt);
        if (a.n == 0 || cnt % a.n != 0) return;  // gate: skip the rest
        break;
      }

      case Action::Kind::StoreField:
        set_state_word(state, a.state_off, field_value(frame, a.field));
        break;

      case Action::Kind::StoreCksum: {
        std::uint32_t acc = 0;
        for (std::uint32_t w = 0; w < a.len; w += 4) {
          acc = util::cksum32_accumulate(acc, word_at(frame, a.msg_off + w));
        }
        set_state_word(state, a.state_off, acc);
        break;
      }

      case Action::Kind::CopyToState: {
        if (static_cast<std::uint64_t>(a.msg_off) + a.len > frame.size()) {
          break;  // whole copy skipped, same guard as the compiled code
        }
        for (std::uint32_t i = 0; i < a.len; ++i) {
          set_state_byte(state, a.state_off + i, frame[a.msg_off + i]);
        }
        break;
      }

      case Action::Kind::Reply: {
        for (const Splice& s : a.splices) {
          const std::uint32_t dst = a.state_off + s.dst_off;
          if (s.from_state) {
            for (std::uint32_t i = 0; i < 4; ++i) {
              set_state_byte(state, dst + i,
                             get_state_byte(state, s.state_src + i));
            }
          } else {
            // The compiled code stores the raw little-endian header
            // word's bytes in memory order: the field verbatim, zeros
            // when the word is out of frame.
            const std::uint32_t word = word_at(frame, s.src.offset);
            for (std::uint32_t i = 0; i < s.src.width; ++i) {
              set_state_byte(state, dst + i,
                             static_cast<std::uint8_t>(word >> (8 * i)));
            }
          }
        }
        EvalSend send;
        send.channel = resolve_channel(a.channel, arrival);
        for (std::uint32_t i = 0; i < a.len; ++i) {
          send.bytes.push_back(get_state_byte(state, a.state_off + i));
        }
        staged.push_back(std::move(send));
        break;
      }

      case Action::Kind::Steer: {
        EvalSend send;
        send.channel = resolve_channel(a.channel, arrival);
        send.bytes.assign(frame.begin(), frame.end());
        staged.push_back(std::move(send));
        break;
      }
    }
  }
}

}  // namespace

std::uint32_t field_value(std::span<const std::uint8_t> frame,
                          const Field& f) {
  const std::uint32_t word = word_at(frame, f.offset);
  switch (f.width) {
    case 4:
      return util::bswap32(word);
    case 2:
      return util::bswap16(static_cast<std::uint16_t>(word & 0xffffu));
    default:
      return word & 0xffu;
  }
}

EvalResult eval(const RuleSet& rs, std::span<const std::uint8_t> frame,
                std::vector<std::uint8_t>& state,
                std::uint32_t arrival_channel) {
  EvalResult out;
  std::vector<EvalSend> staged;

  const Rule* matched = nullptr;
  for (const Rule& r : rs.rules) {
    if (eval_pred(r.pred, frame)) {
      matched = &r;
      break;
    }
  }

  Verdict verdict = rs.default_verdict;
  if (matched != nullptr) {
    run_actions(*matched, frame, state, arrival_channel, staged);
    verdict = matched->verdict;
  }

  out.consumed = verdict == Verdict::Accept;
  if (out.consumed) {
    out.sends = std::move(staged);  // Deliver discards staged sends
  }
  return out;
}

}  // namespace ash::ashc
