// Software fault isolation (SFI) for VCODE programs.
//
// This is the paper's MIPS sandboxing pass (Section III-B), applying the
// code-modification techniques of Wahbe et al. to our IR:
//
//  * every load/store has its effective address masked into the process's
//    memory segment (and force-aligned to the access width — the paper's
//    footnote 2, implemented here);
//  * indirect jumps become checked, translated jumps (JrChk), restricted
//    to the pre-sandbox program's registered labels;
//  * floating point is rejected at download time; signed overflow-trapping
//    arithmetic is converted to the unsigned forms (or rejected);
//  * divide-by-zero remains a runtime check (performed by the machine);
//  * in software-budget mode, every backward branch is preceded by a
//    Budget instruction charging the loop body's length, bounding
//    execution without hardware timer support (Section III-B3);
//  * a deliberately general epilogue is appended and all exits are routed
//    through it — the paper notes its sandboxer's "overly general exit
//    code" accounts for a large fraction of added instructions, and we
//    reproduce that structure (it can be disabled to model the "improved
//    sandboxer" the authors anticipate).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "vcode/program.hpp"

namespace ash::sandbox {

/// The user segment an ASH may touch. `base` must be aligned to `size`,
/// and `size` must be a power of two (SFI masking requires it).
struct Segment {
  std::uint32_t base = 0;
  std::uint32_t size = 0;

  bool valid() const noexcept {
    return size >= 8 && (size & (size - 1)) == 0 && (base & (size - 1)) == 0;
  }
};

enum class Mode : std::uint8_t {
  /// Full software checks (the MIPS implementation of Section III-B).
  Mips,
  /// Hardware segmentation stands in for software checks (the x86
  /// implementation mentioned in Section III-B: "almost no software
  /// checks are needed"). Only indirect jumps are rewritten; memory is
  /// bounded by the execution environment's segment registers.
  X86Segments,
};

struct Options {
  Segment segment;
  Mode mode = Mode::Mips;
  /// Insert Budget checks at backward branches instead of relying on the
  /// hardware timer (Section III-B3's software alternative).
  bool software_budget_checks = false;
  /// Convert Add/Sub to Addu/Subu instead of rejecting them.
  bool convert_signed = true;
  /// Route all exits through a generic epilogue (see header comment).
  bool general_epilogue = true;
};

struct Report {
  std::uint32_t original_insns = 0;
  std::uint32_t final_insns = 0;
  std::uint32_t mem_check_insns = 0;     // inserted for loads/stores
  std::uint32_t budget_check_insns = 0;  // inserted Budget ops
  std::uint32_t epilogue_insns = 0;      // generic exit code
  std::uint32_t converted_signed = 0;    // Add/Sub converted
  /// Translation-stage metadata for the rewritten program: how many basic
  /// blocks the download-time code cache will form, and how many entries
  /// the O(1) indirect-jump table carries.
  std::uint32_t basic_blocks = 0;
  std::uint32_t jump_map_entries = 0;

  std::uint32_t added() const noexcept { return final_insns - original_insns; }
};

struct SandboxResult {
  vcode::Program program;  // the rewritten, now-sandboxed program
  Report report;
};

/// Sandbox `prog` for execution over `opts.segment`. Returns nullopt and
/// fills `error` when the program is rejected (floating point; signed
/// arithmetic with convert_signed off; structural verification failure;
/// registers colliding with the sandbox's reserved scratch registers;
/// invalid segment).
std::optional<SandboxResult> sandbox(const vcode::Program& prog,
                                     const Options& opts, std::string* error);

/// Registers reserved for sandbox-inserted code. User programs built with
/// vcode::Builder can never allocate them; hand-built programs using them
/// are rejected.
inline constexpr vcode::Reg kScratch0 = vcode::kNumRegs - 1;  // r63
inline constexpr vcode::Reg kScratch1 = vcode::kNumRegs - 2;  // r62
inline constexpr vcode::Reg kScratch2 = vcode::kNumRegs - 3;  // r61

}  // namespace ash::sandbox
