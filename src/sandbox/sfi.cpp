#include "sandbox/sfi.hpp"

#include <vector>

#include "vcode/codecache.hpp"
#include "vcode/verifier.hpp"

namespace ash::sandbox {

using vcode::Insn;
using vcode::Op;
using vcode::op_info;
using vcode::Program;

namespace {

/// Access width of a memory opcode (for alignment forcing).
std::uint32_t access_width(Op op) {
  switch (op) {
    case Op::Lw:
    case Op::Sw:
    case Op::Lwu_u:
    case Op::Sw_u:
      return 4;
    case Op::Lhu:
    case Op::Lh:
    case Op::Sh:
      return 2;
    default:
      return 1;
  }
}

bool aligned_op(Op op) { return op != Op::Lwu_u && op != Op::Sw_u; }

/// Highest register index read or written anywhere in the program.
vcode::Reg max_register(const Program& prog) {
  vcode::Reg hi = 0;
  for (const Insn& insn : prog.insns) {
    const auto& info = op_info(insn.op);
    if (info.reads_a || info.writes_a) hi = std::max(hi, insn.a);
    if (info.reads_b) hi = std::max(hi, insn.b);
    if (info.reads_c) hi = std::max(hi, insn.c);
    if (insn.op == Op::TDilp) {
      hi = std::max(hi, static_cast<vcode::Reg>(insn.imm));
    }
  }
  return hi;
}

}  // namespace

std::optional<SandboxResult> sandbox(const Program& prog, const Options& opts,
                                     std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<SandboxResult> {
    if (error) *error = msg;
    return std::nullopt;
  };

  if (prog.sandboxed) return fail("program is already sandboxed");
  if (opts.mode == Mode::Mips && !opts.segment.valid()) {
    return fail("invalid segment: base must be size-aligned, size a power "
                "of two >= 8");
  }

  // Download-time checks (Section III-B1). Signed arithmetic is admitted
  // here only so that we can convert it below.
  vcode::VerifyPolicy policy;
  policy.allow_fp = false;
  policy.allow_signed_trap = true;
  policy.allow_trusted = true;
  policy.allow_pipe_io = false;
  policy.allow_indirect = true;
  const auto verdict = vcode::verify(prog, policy);
  if (!verdict.ok()) {
    if (error) *error = "verification failed:\n" + verdict.to_string();
    return std::nullopt;
  }
  if (max_register(prog) >= kScratch2) {
    return fail("program uses registers reserved for sandbox scratch");
  }

  SandboxResult result;
  Report& report = result.report;
  report.original_insns = static_cast<std::uint32_t>(prog.insns.size());

  const std::uint32_t n = static_cast<std::uint32_t>(prog.insns.size());
  std::vector<Insn> out;
  out.reserve(prog.insns.size() * 2);
  std::vector<std::uint32_t> new_index(n, 0);

  struct Fixup {
    std::uint32_t out_pos;
    std::uint32_t old_target;
  };
  std::vector<Fixup> fixups;          // branches needing old->new remap
  std::vector<std::uint32_t> exits;   // Jmp positions targeting epilogue

  const std::uint32_t seg_mask = opts.segment.size - 1;
  const bool full_checks = opts.mode == Mode::Mips;

  for (std::uint32_t i = 0; i < n; ++i) {
    new_index[i] = static_cast<std::uint32_t>(out.size());
    Insn insn = prog.insns[i];
    const auto& info = op_info(insn.op);

    // Software budget checks precede every backward control transfer; the
    // charge is the (pessimistic) length of the loop body (Section III-B3).
    if (opts.software_budget_checks && info.is_branch && insn.imm <= i) {
      out.push_back({Op::Budget, 0, 0, 0, i - insn.imm + 1});
      ++report.budget_check_insns;
    }

    if (info.is_branch) {
      fixups.push_back({static_cast<std::uint32_t>(out.size()), insn.imm});
      out.push_back(insn);
      continue;
    }

    switch (insn.op) {
      case Op::Add:
      case Op::Sub:
        if (!opts.convert_signed) {
          return fail("signed overflow-trapping arithmetic rejected");
        }
        insn.op = insn.op == Op::Add ? Op::Addu : Op::Subu;
        ++report.converted_signed;
        out.push_back(insn);
        break;

      case Op::Jr:
        insn.op = Op::JrChk;
        out.push_back(insn);
        break;

      case Op::Halt:
        if (opts.general_epilogue) {
          exits.push_back(static_cast<std::uint32_t>(out.size()));
          out.push_back({Op::Jmp, 0, 0, 0, 0});  // patched to epilogue
        } else {
          out.push_back(insn);
        }
        break;

      default:
        if (info.is_mem && full_checks) {
          // Effective address -> scratch0, masked into the segment and
          // force-aligned to the access width (footnote 2 of the paper).
          const std::uint32_t width = access_width(insn.op);
          std::uint32_t mask = seg_mask;
          if (aligned_op(insn.op)) mask &= ~(width - 1);

          vcode::Reg addr_src = insn.b;
          std::uint32_t inserted = 0;
          if (insn.imm != 0) {
            out.push_back({Op::Addiu, kScratch0, insn.b, 0, insn.imm});
            addr_src = kScratch0;
            ++inserted;
          }
          out.push_back({Op::Andi, kScratch0, addr_src, 0, mask});
          ++inserted;
          if (opts.segment.base != 0) {
            out.push_back({Op::Ori, kScratch0, kScratch0, 0,
                           opts.segment.base});
            ++inserted;
          }
          report.mem_check_insns += inserted;
          insn.b = kScratch0;
          insn.imm = 0;
          out.push_back(insn);
        } else {
          out.push_back(insn);
        }
        break;
    }
  }

  // Generic epilogue: preserve the result register, scrub every register
  // the handler could have tainted, re-run the budget accounting, and
  // halt. Deliberately general — the paper observes that "a large
  // fraction of the added instructions are due to overly general exit
  // code, which could relatively easily be removed"; disabling it models
  // the leaner exit code the authors expected to write.
  const std::uint32_t epilogue = static_cast<std::uint32_t>(out.size());
  if (opts.general_epilogue) {
    const std::uint32_t before = static_cast<std::uint32_t>(out.size());
    out.push_back({Op::Mov, kScratch1, vcode::kRegArg0, 0, 0});
    // Scrub the working registers (r5..r16) so nothing leaks into the
    // kernel's post-handler context.
    for (vcode::Reg r = vcode::kRegArg3 + 1; r <= 16; ++r) {
      out.push_back({Op::Movi, r, 0, 0, 0});
    }
    out.push_back({Op::Movi, kScratch0, 0, 0, 0});
    out.push_back({Op::Movi, kScratch2, 0, 0, 0});
    out.push_back({Op::Budget, 0, 0, 0, 0});
    out.push_back({Op::Mov, vcode::kRegArg0, kScratch1, 0, 0});
    out.push_back({Op::Movi, kScratch1, 0, 0, 0});
    out.push_back({Op::Budget, 0, 0, 0, 0});
    out.push_back({Op::Halt, 0, 0, 0, 0});
    report.epilogue_insns = static_cast<std::uint32_t>(out.size()) - before;
  }

  for (const Fixup& f : fixups) out[f.out_pos].imm = new_index[f.old_target];
  for (std::uint32_t pos : exits) out[pos].imm = epilogue;

  Program& rewritten = result.program;
  rewritten.insns = std::move(out);
  rewritten.indirect_targets = prog.indirect_targets;  // pre-sandbox values
  rewritten.indirect_map.reserve(prog.indirect_targets.size());
  for (std::uint32_t t : prog.indirect_targets) {
    rewritten.indirect_map.emplace_back(t, new_index[t]);
  }
  rewritten.sandboxed = true;
  report.final_insns = static_cast<std::uint32_t>(rewritten.insns.size());
  report.basic_blocks = vcode::count_basic_blocks(rewritten);
  report.jump_map_entries =
      static_cast<std::uint32_t>(rewritten.indirect_map.size());
  return result;
}

}  // namespace ash::sandbox
