#include "dpf/dpf.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ash::dpf {

bool atom_matches(const Atom& atom, std::span<const std::uint8_t> packet) {
  if (packet.size() < static_cast<std::size_t>(atom.offset) + atom.width) {
    return false;
  }
  std::uint32_t v = 0;
  for (std::uint8_t i = 0; i < atom.width; ++i) {
    v = (v << 8) | packet[atom.offset + i];
  }
  return (v & atom.mask) == atom.value;
}

std::string validate_filter(const Filter& filter) {
  for (const Atom& a : filter.atoms) {
    if (a.width != 1 && a.width != 2 && a.width != 4) {
      return "atom width must be 1, 2, or 4";
    }
    if ((a.value & ~a.mask) != 0) {
      return "atom value has bits outside its mask (can never match)";
    }
  }
  return {};
}

Atom atom_be16(std::uint16_t offset, std::uint16_t value) {
  return Atom{offset, 2, 0xffffu, value};
}

Atom atom_be32(std::uint16_t offset, std::uint32_t value) {
  return Atom{offset, 4, 0xffffffffu, value};
}

Atom atom_u8(std::uint16_t offset, std::uint8_t value) {
  return Atom{offset, 1, 0xffu, value};
}

// ---------------------------------------------------------------- interp

int InterpretedEngine::insert(Filter filter, int owner) {
  const std::string problem = validate_filter(filter);
  if (!problem.empty()) throw std::invalid_argument(problem);
  entries_.push_back({std::move(filter), owner, true});
  ++live_count_;
  return static_cast<int>(entries_.size() - 1);
}

void InterpretedEngine::remove(int filter_id) {
  if (filter_id < 0 ||
      static_cast<std::size_t>(filter_id) >= entries_.size()) {
    return;
  }
  if (entries_[static_cast<std::size_t>(filter_id)].live) {
    entries_[static_cast<std::size_t>(filter_id)].live = false;
    --live_count_;
  }
}

int InterpretedEngine::match(std::span<const std::uint8_t> packet,
                             MatchStats* stats) const {
  for (const Entry& e : entries_) {
    if (!e.live) continue;
    bool ok = true;
    for (const Atom& a : e.filter.atoms) {
      if (stats) ++stats->atoms_evaluated;
      if (!atom_matches(a, packet)) {
        ok = false;
        break;
      }
    }
    if (ok) return e.owner;
  }
  return -1;
}

// ---------------------------------------------------------------- compiled

int CompiledEngine::insert(Filter filter, int owner) {
  const std::string problem = validate_filter(filter);
  if (!problem.empty()) throw std::invalid_argument(problem);
  // Canonical atom order lets filters share decision-tree prefixes.
  std::sort(filter.atoms.begin(), filter.atoms.end(),
            [](const Atom& a, const Atom& b) {
              return std::tie(a.offset, a.width, a.mask, a.value) <
                     std::tie(b.offset, b.width, b.mask, b.value);
            });
  entries_.push_back({std::move(filter), owner, true});
  ++live_count_;
  rebuild();
  return static_cast<int>(entries_.size() - 1);
}

void CompiledEngine::remove(int filter_id) {
  if (filter_id < 0 ||
      static_cast<std::size_t>(filter_id) >= entries_.size()) {
    return;
  }
  if (entries_[static_cast<std::size_t>(filter_id)].live) {
    entries_[static_cast<std::size_t>(filter_id)].live = false;
    --live_count_;
    rebuild();
  }
}

void CompiledEngine::rebuild() {
  node_count_ = 0;
  std::vector<std::pair<int, std::size_t>> work;  // (filter index, cursor)
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live) work.emplace_back(static_cast<int>(i), 0);
  }
  root_ = work.empty() ? nullptr : build(std::move(work));
}

std::unique_ptr<CompiledEngine::Node> CompiledEngine::build(
    std::vector<std::pair<int, std::size_t>> work) {
  auto node = std::make_unique<Node>();
  ++node_count_;

  // Filters with no atoms left accept here; highest priority (lowest
  // index) wins, and — since a fully matched filter at this depth beats
  // anything deeper only by priority — we keep just the best one.
  int accept = -1;
  std::vector<std::pair<int, std::size_t>> remaining;
  for (auto& [idx, cursor] : work) {
    if (cursor >= entries_[static_cast<std::size_t>(idx)].filter.atoms.size()) {
      if (accept == -1 || idx < accept) accept = idx;
    } else {
      remaining.emplace_back(idx, cursor);
    }
  }
  node->accept = accept;
  if (remaining.empty()) {
    node->leaf = true;
    return node;
  }

  // Pick the most common next-atom key among remaining filters: that key
  // becomes this node's test, so all filters sharing it are discriminated
  // with one masked load + one hash probe.
  std::vector<std::pair<Key, int>> counts;
  for (const auto& [idx, cursor] : remaining) {
    const Atom& a = entries_[static_cast<std::size_t>(idx)].filter.atoms[cursor];
    const Key k{a.offset, a.width, a.mask};
    auto it = std::find_if(counts.begin(), counts.end(),
                           [&](const auto& p) { return p.first == k; });
    if (it == counts.end()) {
      counts.emplace_back(k, 1);
    } else {
      ++it->second;
    }
  }
  const Key best =
      std::max_element(counts.begin(), counts.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->first;
  node->key = best;

  // Partition: filters testing `best` advance one atom along the matching
  // value edge; the rest go to the `others` subtree.
  std::unordered_map<std::uint32_t, std::vector<std::pair<int, std::size_t>>>
      by_value;
  std::vector<std::pair<int, std::size_t>> others;
  for (const auto& [idx, cursor] : remaining) {
    const Atom& a = entries_[static_cast<std::size_t>(idx)].filter.atoms[cursor];
    if (Key{a.offset, a.width, a.mask} == best) {
      by_value[a.value].emplace_back(idx, cursor + 1);
    } else {
      others.emplace_back(idx, cursor);
    }
  }
  for (auto& [value, sub] : by_value) {
    node->edges.emplace(value, build(std::move(sub)));
  }
  if (!others.empty()) node->others = build(std::move(others));
  return node;
}

int CompiledEngine::walk(const Node* node,
                         std::span<const std::uint8_t> packet,
                         MatchStats* stats) const {
  int best = -1;
  while (node != nullptr) {
    if (stats) ++stats->nodes_visited;
    if (node->accept != -1 && (best == -1 || node->accept < best)) {
      best = node->accept;
    }
    if (node->leaf) break;

    // One masked load, one hash probe — shared by every filter that tests
    // this key, which is where the compiled engine wins.
    const Node* next = nullptr;
    const Key& k = node->key;
    if (packet.size() >= static_cast<std::size_t>(k.offset) + k.width) {
      std::uint32_t v = 0;
      for (std::uint8_t i = 0; i < k.width; ++i) {
        v = (v << 8) | packet[k.offset + i];
      }
      const auto it = node->edges.find(v & k.mask);
      if (it != node->edges.end()) next = it->second.get();
    }

    if (next != nullptr && node->others != nullptr) {
      // Both subtrees may contain matches; recurse on the edge branch and
      // continue iteratively on `others`, keeping the best priority.
      const int sub = walk(next, packet, stats);
      if (sub != -1 && (best == -1 || sub < best)) best = sub;
      node = node->others.get();
      continue;
    }
    node = next != nullptr ? next : node->others.get();
  }
  if (best == -1) return -1;
  return best;
}

int CompiledEngine::match(std::span<const std::uint8_t> packet,
                          MatchStats* stats) const {
  if (!root_) return -1;
  const int idx = walk(root_.get(), packet, stats);
  return idx == -1 ? -1 : entries_[static_cast<std::size_t>(idx)].owner;
}

}  // namespace ash::dpf
