// DPF-style packet demultiplexing (Section IV-A).
//
// The paper's Aegis testbed exports the Ethernet through DPF, a packet
// filter engine that uses dynamic code generation to (1) eliminate
// interpretation overhead by compiling filters when they are installed and
// (2) specialize the compiled code on filter constants, making it an order
// of magnitude faster than interpreted engines.
//
// This module reproduces that design point with two engines over the same
// declarative filter language:
//
//  * InterpretedEngine — the baseline every classic packet filter paper
//    measures against: for each installed filter, evaluate its atoms one
//    by one against the packet.
//  * CompiledEngine — the DPF analogue: at install time all filters are
//    "compiled" into a single decision tree whose nodes switch on masked
//    packet fields via constant-specialized hash edges, so shared
//    prefixes are evaluated once no matter how many filters share them.
//
// bench_dpf_demux measures both and reproduces the order-of-magnitude gap.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace ash::dpf {

/// One predicate: load `width` bytes (big-endian) at `offset`, AND with
/// `mask`, compare with `value`. A packet shorter than offset+width fails.
struct Atom {
  std::uint16_t offset = 0;
  std::uint8_t width = 1;  // 1, 2, or 4
  std::uint32_t mask = 0xffffffffu;
  std::uint32_t value = 0;

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// A filter accepts a packet iff every atom matches (conjunction).
struct Filter {
  std::vector<Atom> atoms;
};

/// Statistics from one match operation, used by the simulator's cost
/// model to charge demultiplexing cycles.
struct MatchStats {
  std::uint32_t atoms_evaluated = 0;  // interpreted engine work
  std::uint32_t nodes_visited = 0;    // compiled engine work
};

/// Result of demultiplexing: the owning endpoint (filter owner), or -1.
/// When several filters match, the one with the highest priority wins;
/// priority is the insertion order (earlier = higher), matching a
/// first-match packet-filter discipline.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Install a filter for `owner`; returns a filter id. Throws
  /// std::invalid_argument for malformed atoms (bad width, zero mask).
  virtual int insert(Filter filter, int owner) = 0;

  /// Remove a previously installed filter. Unknown ids are ignored.
  virtual void remove(int filter_id) = 0;

  /// Demultiplex: returns the owner of the best matching filter, or -1.
  virtual int match(std::span<const std::uint8_t> packet,
                    MatchStats* stats = nullptr) const = 0;

  virtual std::size_t size() const = 0;
};

/// Baseline: linear scan of filters, atom by atom.
class InterpretedEngine final : public Engine {
 public:
  int insert(Filter filter, int owner) override;
  void remove(int filter_id) override;
  int match(std::span<const std::uint8_t> packet,
            MatchStats* stats = nullptr) const override;
  std::size_t size() const override { return live_count_; }

 private:
  struct Entry {
    Filter filter;
    int owner;
    bool live;
  };
  std::vector<Entry> entries_;
  std::size_t live_count_ = 0;
};

/// DPF analogue: decision tree with constant-specialized edges, rebuilt
/// at install/remove time (compilation happens at download time, matching
/// is the hot path — same trade as the paper's dynamic code generation).
class CompiledEngine final : public Engine {
 public:
  int insert(Filter filter, int owner) override;
  void remove(int filter_id) override;
  int match(std::span<const std::uint8_t> packet,
            MatchStats* stats = nullptr) const override;
  std::size_t size() const override { return live_count_; }

  /// Number of decision nodes in the compiled tree (for tests/benches).
  std::size_t node_count() const noexcept { return node_count_; }

 private:
  struct Key {
    std::uint16_t offset;
    std::uint8_t width;
    std::uint32_t mask;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct Node {
    Key key{};
    std::unordered_map<std::uint32_t, std::unique_ptr<Node>> edges;
    std::unique_ptr<Node> others;  // filters that do not test `key`
    int accept = -1;               // filter index accepted at this node
    bool leaf = false;             // no key (all remaining filters end)
  };

  struct Entry {
    Filter filter;  // atoms sorted by (offset,width,mask)
    int owner;
    bool live;
  };

  void rebuild();
  std::unique_ptr<Node> build(std::vector<std::pair<int, std::size_t>> work);
  int walk(const Node* node, std::span<const std::uint8_t> packet,
           MatchStats* stats) const;

  std::vector<Entry> entries_;
  std::unique_ptr<Node> root_;
  std::size_t live_count_ = 0;
  std::size_t node_count_ = 0;
};

/// Shared helper: evaluate one atom against a packet.
bool atom_matches(const Atom& atom, std::span<const std::uint8_t> packet);

/// Validate a filter (widths in {1,2,4}). Returns empty string when ok.
std::string validate_filter(const Filter& filter);

// --- convenience constructors for common protocol filters ---

/// Atom comparing a big-endian 16-bit field.
Atom atom_be16(std::uint16_t offset, std::uint16_t value);
/// Atom comparing a big-endian 32-bit field.
Atom atom_be32(std::uint16_t offset, std::uint32_t value);
/// Atom comparing one byte.
Atom atom_u8(std::uint16_t offset, std::uint8_t value);

}  // namespace ash::dpf
