#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace ash::sim {

EventId EventQueue::schedule_at(Cycles at, EventFn fn) {
  const EventId id = next_id_++;
  if (at < now_) at = now_;
  heap_.push_back(Ev{at, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  if (live_.erase(id) == 0) return;  // fired, cancelled, or never issued
  cancelled_.insert(id);
  // Keep tombstones bounded by the live population: once they outnumber
  // live events, one O(n) sweep rebuilds the heap without them.
  if (cancelled_.size() > live_.size()) compact();
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Ev& e) {
    return cancelled_.find(e.id) != cancelled_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

Cycles EventQueue::next_time() {
  while (!heap_.empty()) {
    if (cancelled_.erase(heap_.front().id) == 0) return heap_.front().at;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  return ~Cycles{0};
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Ev ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(ev.id) > 0) continue;
    live_.erase(ev.id);
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until_idle(Cycles limit) {
  std::size_t executed = 0;
  // next_time() prunes cancelled heads, so the limit check sees live events.
  while (next_time() <= limit && step()) ++executed;
  if (now_ < limit && limit != ~Cycles{0}) now_ = limit;
  return executed;
}

}  // namespace ash::sim
