#include "sim/event_queue.hpp"

#include <utility>

namespace ash::sim {

EventId EventQueue::schedule_at(Cycles at, EventFn fn) {
  const EventId id = next_id_++;
  if (at < now_) at = now_;
  heap_.push(Ev{at, id, std::move(fn)});
  ++pending_;
  return id;
}

void EventQueue::cancel(EventId id) {
  // Lazily discarded when popped; track so pending() stays meaningful.
  if (id == 0 || id >= next_id_) return;
  if (cancelled_.insert(id).second && pending_ > 0) --pending_;
}

Cycles EventQueue::next_time() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
  return heap_.empty() ? ~Cycles{0} : heap_.top().at;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Ev ev = std::move(const_cast<Ev&>(heap_.top()));
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    --pending_;
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until_idle(Cycles limit) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek for the limit check without executing past it.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > limit) break;
    if (step()) ++executed;
  }
  if (now_ < limit && limit != ~Cycles{0}) now_ = limit;
  return executed;
}

}  // namespace ash::sim
