#include "sim/kernel.hpp"

#include "sim/node.hpp"

namespace ash::sim {

Kernel::Kernel(Node& node, SchedPolicy policy)
    : node_(node), sched_(node, policy) {}

Kernel::~Kernel() = default;

Process& Kernel::spawn(std::string name, ProcessMain main) {
  const std::uint32_t base = next_seg_base_;
  if (static_cast<std::size_t>(base) + kSegmentSize > node_.memory_size()) {
    throw std::length_error("Kernel::spawn: node memory exhausted");
  }
  next_seg_base_ += kSegmentSize;

  const auto pid = static_cast<std::uint32_t>(procs_.size() + 1);
  procs_.push_back(std::make_unique<Process>(
      node_, pid, std::move(name), MemSegment{base, kSegmentSize}));
  Process& proc = *procs_.back();
  proc.start(std::move(main));
  sched_.add_new(&proc);
  return proc;
}

Process* Kernel::find(std::uint32_t pid) noexcept {
  for (const auto& p : procs_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

std::size_t Kernel::live_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& p : procs_) {
    if (!p->exited()) ++n;
  }
  return n;
}

void Kernel::record_failure(std::exception_ptr e) {
  if (!failure_) failure_ = std::move(e);
}

std::exception_ptr Kernel::take_failure() noexcept {
  return std::exchange(failure_, nullptr);
}

}  // namespace ash::sim
