// Charged memory operations over node memory.
//
// The protocol library's data touching (copies, checksums, byteswaps, and
// the hand-integrated combinations of Table IV) goes through these
// helpers: each performs the real byte operation on the node's memory AND
// returns the simulated cycle cost, computed from the cost model's
// per-word loop instruction counts plus the node's cache model. The
// separate-vs-integrated throughput shapes of Tables III/IV emerge from
// exactly this accounting.
//
// Lengths are handled per 32-bit word with a byte-serial tail, matching
// the hand loops the costs describe.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace ash::sim {
class Node;
}

namespace ash::sim::memops {

/// Plain copy (one traversal). Returns simulated cycles; performs the copy.
Cycles copy(Node& node, std::uint32_t dst, std::uint32_t src,
            std::uint32_t len);

/// Checksum pass (no copy): accumulate little-endian words into *acc.
Cycles cksum(Node& node, std::uint32_t addr, std::uint32_t len,
             std::uint32_t* acc);

/// In-place 32-bit byteswap pass.
Cycles bswap(Node& node, std::uint32_t addr, std::uint32_t len);

/// Hand-integrated copy+checksum (the "C integrated" loop of Table IV).
Cycles copy_cksum(Node& node, std::uint32_t dst, std::uint32_t src,
                  std::uint32_t len, std::uint32_t* acc);

/// Hand-integrated copy+checksum+byteswap.
Cycles copy_cksum_bswap(Node& node, std::uint32_t dst, std::uint32_t src,
                        std::uint32_t len, std::uint32_t* acc);

/// Zero-fill (used for buffer initialization; charged like a copy's store
/// half).
Cycles fill(Node& node, std::uint32_t addr, std::uint32_t len,
            std::uint8_t value);

/// De-striping copy for the Ethernet DMA quirk (Section III-C): the
/// device stripes an N-byte packet into a 2N-byte buffer, alternating
/// `chunk` bytes of data and `chunk` bytes of padding. Reads therefore
/// touch a 2N cache footprint; cost accounting reflects that.
Cycles copy_destripe(Node& node, std::uint32_t dst, std::uint32_t src_striped,
                     std::uint32_t len, std::uint32_t chunk = 16);

/// De-striping copy + checksum in one traversal (used by the Ethernet
/// receive path when end-to-end checksumming is on).
Cycles copy_destripe_cksum(Node& node, std::uint32_t dst,
                           std::uint32_t src_striped, std::uint32_t len,
                           std::uint32_t* acc, std::uint32_t chunk = 16);

/// Striping store: write `len` bytes from `src` into a 2*len striped
/// region at `dst_striped` (models the device's view; used by tests).
Cycles copy_stripe(Node& node, std::uint32_t dst_striped, std::uint32_t src,
                   std::uint32_t len, std::uint32_t chunk = 16);

}  // namespace ash::sim::memops
