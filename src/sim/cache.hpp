// Direct-mapped data-cache model of the DECstation 5000/240 (64 KB,
// write-through, no write-allocate).
//
// The paper's throughput experiments (Tables III and IV) are memory-system
// experiments: the win from eliminating copies and from integrated layer
// processing is precisely the cache/memory traffic avoided. This model
// charges a line-fill penalty on read misses and tracks tags so those
// effects emerge from the simulation rather than being hard-coded.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace ash::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;  // 64 KB D-cache (5000/240)
  std::uint32_t line_bytes = 16;
  /// Cycles to fill a line from memory on a read miss (calibrated so the
  /// canonical 4 KB copy runs at the paper's 20 MB/s on the 40 MHz CPU).
  Cycles read_miss_penalty = 12;
  /// Extra cycles on a write when the write buffer backs up; the 240's
  /// write-through buffer mostly hides stores, so this is small.
  Cycles write_cost = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config = {});

  /// Account one access of `len` bytes at `addr`; returns the extra cycles
  /// beyond the instruction's base cost. Reads fill lines; writes are
  /// write-through/no-allocate (they update an already-present line but
  /// do not fetch absent ones).
  Cycles access(std::uint32_t addr, std::uint32_t len, bool is_write);

  /// True if the line containing `addr` is resident.
  bool contains(std::uint32_t addr) const;

  /// Drop every line (the experiments' "cache flush at every iteration").
  void flush_all();

  /// Drop lines overlapping [addr, addr+len) — e.g. after device DMA, the
  /// driver's "software cache flush of the message location".
  void invalidate_range(std::uint32_t addr, std::uint32_t len);

  /// Preload lines for [addr, addr+len) as if read (test setup helper).
  void touch_range(std::uint32_t addr, std::uint32_t len);

  const CacheConfig& config() const noexcept { return config_; }

  // Statistics (cumulative).
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Raw view of the model's state for engines that inline the access
  /// accounting (vcode::Env::FastMem). Any inlined copy must reproduce
  /// access() exactly: read miss = penalty + tag fill; write = write_cost,
  /// hit or miss, never a fill; counters bumped per line touched.
  struct Raw {
    std::uint32_t* tags;
    std::uint32_t n_lines;
    std::uint32_t line_bytes;
    Cycles read_miss_penalty;
    Cycles write_cost;
    std::uint64_t* hits;
    std::uint64_t* misses;
  };
  Raw raw() noexcept {
    return {tags_.data(),          n_lines_, config_.line_bytes,
            config_.read_miss_penalty, config_.write_cost,
            &hits_,                &misses_};
  }

 private:
  std::uint32_t line_index(std::uint32_t addr) const noexcept {
    return (addr / config_.line_bytes) % n_lines_;
  }
  std::uint32_t line_tag(std::uint32_t addr) const noexcept {
    return addr / config_.line_bytes;
  }

  CacheConfig config_;
  std::uint32_t n_lines_;
  std::vector<std::uint32_t> tags_;  // tag+1; 0 = invalid
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ash::sim
