#include "sim/cpu.hpp"

#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {

Cycles Cpu::kernel_work(Cycles cycles, EventFn done) {
  const Cycles t = node_.now();
  const Cycles start = t > busy_until_ ? t : busy_until_;
  busy_until_ = start + cycles;
  kernel_cycles_ += cycles;
  if (done) node_.queue().schedule_at(busy_until_, std::move(done));
  return busy_until_;
}

std::uint16_t KernelCpu::cpu_id() const {
  return aux_ != nullptr ? aux_->cpu_id() : node_->cpu_id();
}

Cycles KernelCpu::kernel_work(Cycles cycles, EventFn done) const {
  return aux_ != nullptr ? aux_->kernel_work(cycles, std::move(done))
                         : node_->kernel_work(cycles, std::move(done));
}

Cycles KernelCpu::kernel_cycles_total() const {
  return aux_ != nullptr ? aux_->kernel_cycles_total()
                         : node_->kernel_cycles_total();
}

}  // namespace ash::sim
