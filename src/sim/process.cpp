#include "sim/process.hpp"

#include <cassert>

#include "sim/kernel.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {

namespace {
/// Preemption granularity: long computes are split into chunks of this
/// size so quantum expiry and priority boosts take effect promptly.
constexpr Cycles kComputeChunk = 2000;  // 50 us at 40 MHz
}  // namespace

void Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  if (Process* p = h.promise().process) p->on_coroutine_done();
}

Process::Process(Node& node, std::uint32_t pid, std::string name,
                 MemSegment seg)
    : node_(node), pid_(pid), name_(std::move(name)), seg_(seg) {}

Process::~Process() {
  if (main_) main_.destroy();
}

Scheduler& Process::sched() { return node_.kernel().scheduler(); }
EventQueue& Process::queue() { return node_.queue(); }

void Process::start(ProcessMain fn) {
  assert(!main_);
  main_fn_ = std::move(fn);
  Task task = main_fn_(*this);
  main_ = task.release();
  main_.promise().process = this;
  cont_ = main_;
}

void Process::wake(bool boost) {
  if (state_ != ProcState::Blocked) return;
  sched().make_ready(this, boost);
}

void Process::resume_execution() {
  assert(state_ == ProcState::Running);
  if (compute_remaining_ > 0) {
    schedule_next_chunk();
  } else {
    run_coroutine();
  }
}

void Process::block_on_external(std::coroutine_handle<> h) {
  assert(state_ == ProcState::Running);
  cont_ = h;
  sched().on_running_blocked();
}

void Process::start_compute(Cycles cycles, std::coroutine_handle<> h) {
  assert(state_ == ProcState::Running);
  cont_ = h;
  compute_remaining_ = cycles;
  schedule_next_chunk();
}

void Process::schedule_next_chunk() {
  Scheduler& s = sched();
  if (s.should_preempt()) {
    s.preempt_running();  // residual compute continues on re-dispatch
    return;
  }
  const Cycles chunk =
      compute_remaining_ < kComputeChunk ? compute_remaining_ : kComputeChunk;
  const Cycles start =
      node_.now() > node_.cpu_free_at() ? node_.now() : node_.cpu_free_at();
  const Cycles end = start + chunk;
  node_.set_chunk_end(end);
  queue().schedule_at(end, [this, chunk] {
    if (state_ != ProcState::Running) {
      // Preempted/killed between scheduling and firing cannot happen in
      // the current design (chunk events are not cancelled), but stay
      // defensive: drop the stale completion.
      return;
    }
    compute_remaining_ -= chunk;
    if (compute_remaining_ == 0) {
      run_coroutine();
    } else {
      schedule_next_chunk();
    }
  });
}

void Process::do_yield(std::coroutine_handle<> h) {
  assert(state_ == ProcState::Running);
  cont_ = h;
  sched().on_running_yielded();
}

void Process::do_sleep(Cycles cycles, std::coroutine_handle<> h) {
  assert(state_ == ProcState::Running);
  cont_ = h;
  sched().on_running_blocked();
  queue().schedule_in(cycles, [this] { wake(false); });
}

void Process::run_coroutine() {
  assert(state_ == ProcState::Running);
  cont_.resume();
  // Control returns here once some coroutine in the stack suspends again
  // (an awaitable has taken over scheduling) or the main coroutine has
  // finished (on_coroutine_done already ran from the final awaiter).
}

void Process::on_coroutine_done() {
  exception_ = main_.promise().exception;
  if (exception_) node_.kernel().record_failure(exception_);
  sched().on_running_exited();
}

Cycles Process::syscall_cost(Cycles work) const {
  const CostModel& c = node_.cost();
  return 2 * c.kernel_crossing + c.syscall_overhead + work;
}

void WaitChannel::notify(bool boost) {
  if (waiters_.empty()) {
    ++tokens_;
    return;
  }
  Process* p = waiters_.front();
  waiters_.pop_front();
  p->wake(boost);
}

bool WaitChannel::remove_waiter(Process* p) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (*it == p) {
      waiters_.erase(it);
      return true;
    }
  }
  return false;
}

void WaitChannel::TimedAwaiter::await_suspend(std::coroutine_handle<> h) {
  ch.waiters_.push_back(&p);
  ev = p.queue().schedule_in(timeout, [this] {
    if (ch.remove_waiter(&p)) {
      timed_out = true;
      p.wake(false);
    }
  });
  p.block_on_external(h);
}

bool WaitChannel::TimedAwaiter::await_resume() {
  // Cancel the timeout event (no-op if it already fired); the awaiter is
  // about to be destroyed and the event captures `this`.
  if (ev != 0) p.queue().cancel(ev);
  return !timed_out;
}

}  // namespace ash::sim
