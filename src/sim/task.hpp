// Coroutine plumbing for simulated processes.
//
// Application code in experiments is written as C++20 coroutines: each
// simulated process's main function returns sim::Task and advances
// simulated time by `co_await`-ing awaitables provided by sim::Process
// (compute, syscall, channel waits...). The scheduler owns resumption, so
// a coroutine only ever runs while its process holds the simulated CPU.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace ash::sim {

class Process;

class Task {
 public:
  struct promise_type {
    Process* process = nullptr;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Transfer ownership of the raw handle (Process takes over).
  Handle release() noexcept { return std::exchange(handle_, {}); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  Handle handle_;
};

/// Awaitable subroutine: a coroutine that a process coroutine (or another
/// Sub) can `co_await`, returning a value. Protocol operations
/// (`co_await sock.recv(self)`) are written as Subs. Lazily started via
/// symmetric transfer; exceptions propagate to the awaiter.
///
/// The simulated-time awaitables (Process::compute etc.) record the
/// *innermost* suspended coroutine, so a Sub suspended on compute resumes
/// exactly where it left off.
///
/// TOOLCHAIN WARNING: GCC 12 miscompiles `co_await` of a Sub temporary
/// inside a compound *condition* (e.g. `if (!co_await f()) ...`,
/// `a && co_await f()`, or inside EXPECT_* macros) — the enclosing
/// coroutine's frame is corrupted and the program dies with a wild jump
/// or heap-corruption abort. ALWAYS hoist the await into a declaration:
///     const bool ok = co_await f();
///     if (!ok) ...
/// A `co_await` as a full statement or as a declaration initializer is
/// safe. (Verified empirically against g++ 12.2; see DESIGN.md.)
template <typename T>
class [[nodiscard]] Sub {
  struct PromiseBase {
    std::exception_ptr eptr;
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }
    struct Final {
      bool await_ready() noexcept { return false; }
      template <typename P>
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<P> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    Final final_suspend() noexcept { return {}; }
    void unhandled_exception() noexcept {
      eptr = std::current_exception();
    }
  };

 public:
  struct promise_type : PromiseBase {
    std::optional<T> value;
    Sub get_return_object() {
      return Sub{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  explicit Sub(std::coroutine_handle<promise_type> h) : h_(h) {}
  Sub(Sub&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Sub(const Sub&) = delete;
  Sub& operator=(const Sub&) = delete;
  Sub& operator=(Sub&&) = delete;
  ~Sub() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;  // start the subroutine
  }
  T await_resume() {
    if (h_.promise().eptr) std::rethrow_exception(h_.promise().eptr);
    return std::move(*h_.promise().value);
  }

 private:
  std::coroutine_handle<promise_type> h_;
};

/// Sub<void>: subroutine with no result.
template <>
class [[nodiscard]] Sub<void> {
  struct PromiseBase {
    std::exception_ptr eptr;
    std::coroutine_handle<> continuation;
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct Final {
      bool await_ready() noexcept { return false; }
      template <typename P>
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<P> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    Final final_suspend() noexcept { return {}; }
    void unhandled_exception() noexcept {
      eptr = std::current_exception();
    }
  };

 public:
  struct promise_type : PromiseBase {
    Sub get_return_object() {
      return Sub{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  explicit Sub(std::coroutine_handle<promise_type> h) : h_(h) {}
  Sub(Sub&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Sub(const Sub&) = delete;
  Sub& operator=(const Sub&) = delete;
  Sub& operator=(Sub&&) = delete;
  ~Sub() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    if (h_.promise().eptr) std::rethrow_exception(h_.promise().eptr);
  }

 private:
  std::coroutine_handle<promise_type> h_;
};

}  // namespace ash::sim
