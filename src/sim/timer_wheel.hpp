// Hashed timer wheel (Varghese & Lauck style) for protocol timers.
//
// The TCP library used to busy-wait in fixed `pump(rto)` rounds: every
// blocking call slept a full constant RTO and then asked "did anything
// time out?". With adaptive per-segment timers (RFC 6298) and thousands
// of connections per engine that shape collapses — timers must be armed
// at arbitrary deadlines, cancelled and re-armed on every ACK, and
// serviced in deadline order. The wheel gives O(1) arm/cancel and
// amortized O(1) expiry: deadlines hash into `buckets` ticks of
// `granularity` cycles each; deadlines beyond one wheel revolution park
// in an overflow list and migrate inward as the cursor advances.
//
// Cancellation is tombstone-based (an id is struck from the live map;
// the bucket entry is skipped and reclaimed when its tick is next
// scanned), so cancel/re-arm churn — one per ACK on a busy connection —
// never moves bucket entries around.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"

namespace ash::sim {

class TimerWheel {
 public:
  /// Timer handle; 0 is never issued and safely cancels to a no-op.
  using Id = std::uint64_t;

  struct Expired {
    Cycles deadline;
    std::uint64_t cookie;
  };

  explicit TimerWheel(Cycles granularity = us(1000.0),
                      std::size_t buckets = 64);

  /// Arm a timer at absolute time `deadline` carrying `cookie`.
  Id arm(Cycles deadline, std::uint64_t cookie);

  /// Cancel a live timer. Returns false (no-op) if it already fired, was
  /// already cancelled, or was never issued (id 0).
  bool cancel(Id id);

  bool pending(Id id) const { return live_.count(id) != 0; }
  std::size_t size() const noexcept { return live_.size(); }

  /// Earliest live deadline, or nullopt when nothing is armed. Compacts
  /// tombstones out of the buckets it scans.
  std::optional<Cycles> next_deadline();

  /// Expire every live timer with deadline <= now into `out` (ascending
  /// deadline order) and advance the cursor.
  void advance(Cycles now, std::vector<Expired>& out);

 private:
  struct Entry {
    Cycles deadline;
    Id id;
    std::uint64_t cookie;
  };

  std::uint64_t tick_of(Cycles deadline) const { return deadline / gran_; }
  bool in_horizon(std::uint64_t tick) const {
    return tick < cursor_tick_ + buckets_.size();
  }
  void place(Entry e);

  Cycles gran_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;  // deadlines beyond one revolution
  std::unordered_map<Id, Cycles> live_;
  Id next_id_ = 1;
  std::uint64_t cursor_tick_ = 0;  // ticks below this are fully drained
};

}  // namespace ash::sim
