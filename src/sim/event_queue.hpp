// Discrete-event core: a cancellable time-ordered event queue.
//
// All simulated time in this library is measured in CPU cycles of the
// 40 MHz DECstation 5000/240 the paper measured on; helpers convert to
// microseconds for reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ash::sim {

/// Simulated time in CPU cycles (40 MHz unless reconfigured).
using Cycles = std::uint64_t;

inline constexpr double kCpuMhz = 40.0;

/// Convert cycles to microseconds at the simulated clock rate.
constexpr double to_us(Cycles c) noexcept {
  return static_cast<double>(c) / kCpuMhz;
}

/// Convert microseconds to cycles.
constexpr Cycles us(double microseconds) noexcept {
  return static_cast<Cycles>(microseconds * kCpuMhz);
}

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  Cycles now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now). Events at equal
  /// times run in scheduling order. Returns an id usable with cancel().
  EventId schedule_at(Cycles at, EventFn fn);

  /// Schedule `fn` after `delay` cycles.
  EventId schedule_in(Cycles delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Ignored if already fired or unknown.
  void cancel(EventId id);

  /// Run the earliest pending event, advancing the clock. Returns false
  /// when no events remain.
  bool step();

  /// Run until the queue drains or the clock passes `limit`.
  /// Returns the number of events executed.
  std::size_t run_until_idle(Cycles limit = ~Cycles{0});

  bool empty() const noexcept { return pending_ == 0; }
  std::size_t pending() const noexcept { return pending_; }

  /// Time of the next live event, or ~0 when the queue is empty. Discards
  /// cancelled entries encountered at the head.
  Cycles next_time();

 private:
  struct Ev {
    Cycles at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::size_t pending_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ash::sim
