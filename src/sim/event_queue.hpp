// Discrete-event core: a cancellable time-ordered event queue.
//
// All simulated time in this library is measured in CPU cycles of the
// 40 MHz DECstation 5000/240 the paper measured on; helpers convert to
// microseconds for reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace ash::sim {

/// Simulated time in CPU cycles (40 MHz unless reconfigured).
using Cycles = std::uint64_t;

inline constexpr double kCpuMhz = 40.0;

/// Convert cycles to microseconds at the simulated clock rate.
constexpr double to_us(Cycles c) noexcept {
  return static_cast<double>(c) / kCpuMhz;
}

/// Convert microseconds to cycles.
constexpr Cycles us(double microseconds) noexcept {
  return static_cast<Cycles>(microseconds * kCpuMhz);
}

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// Cancellation is tombstone-based but bounded: cancelling an id that is
/// not live (already fired, already cancelled, never issued) is a true
/// no-op, and whenever parked tombstones outnumber live events the heap is
/// compacted in one pass. Workloads that re-arm and cancel timers
/// indefinitely (TCP retransmit timers) therefore hold memory proportional
/// to the live event count, not to history.
class EventQueue {
 public:
  Cycles now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now). Events at equal
  /// times run in scheduling order. Returns an id usable with cancel().
  EventId schedule_at(Cycles at, EventFn fn);

  /// Schedule `fn` after `delay` cycles.
  EventId schedule_in(Cycles delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Ignored if already fired or unknown.
  void cancel(EventId id);

  /// Run the earliest pending event, advancing the clock. Returns false
  /// when no events remain.
  bool step();

  /// Run until the queue drains or the clock passes `limit`.
  /// Returns the number of events executed.
  std::size_t run_until_idle(Cycles limit = ~Cycles{0});

  bool empty() const noexcept { return live_.empty(); }
  std::size_t pending() const noexcept { return live_.size(); }

  /// Cancelled entries still parked in the heap. Bounded by pending() via
  /// compaction; exposed so tests can pin the no-leak invariant.
  std::size_t cancelled_backlog() const noexcept { return cancelled_.size(); }

  /// Time of the next live event, or ~0 when the queue is empty. Discards
  /// cancelled entries encountered at the head.
  Cycles next_time();

 private:
  struct Ev {
    Cycles at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  /// Drop every tombstoned entry from the heap in one O(n) pass.
  void compact();

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::vector<Ev> heap_;                   // binary heap ordered by Later
  std::unordered_set<EventId> live_;       // scheduled, not fired/cancelled
  std::unordered_set<EventId> cancelled_;  // tombstones still in heap_
};

}  // namespace ash::sim
