#include "sim/memops.hpp"

#include <cstring>
#include <stdexcept>

#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "sim/node.hpp"

namespace ash::sim::memops {
namespace {

/// Charge `insns_per_word` base cycles per 32-bit word plus the cache
/// costs of the described accesses, while running `word_fn` over the
/// buffers. One generic walker keeps the cost accounting and the byte
/// operations in lock step.
template <typename WordFn>
Cycles walk(Node& node, std::uint32_t src, std::uint32_t dst,
            std::uint32_t len, std::uint32_t insns_per_word, bool reads_src,
            bool writes_dst, WordFn word_fn) {
  if (len == 0) return 0;
  if (reads_src && node.mem(src, len) == nullptr) {
    throw std::out_of_range("memops: source out of bounds");
  }
  if (writes_dst && node.mem(dst, len) == nullptr) {
    throw std::out_of_range("memops: destination out of bounds");
  }
  Cycles cycles = 0;
  Cache& cache = node.dcache();
  std::uint32_t off = 0;
  for (; off + 4 <= len; off += 4) {
    cycles += insns_per_word;
    if (reads_src) cycles += cache.access(src + off, 4, /*is_write=*/false);
    if (writes_dst) cycles += cache.access(dst + off, 4, /*is_write=*/true);
    word_fn(off, 4u);
  }
  if (off < len) {
    const std::uint32_t tail = len - off;
    cycles += insns_per_word;  // byte-serial tail, charged as one word
    if (reads_src) cycles += cache.access(src + off, tail, false);
    if (writes_dst) cycles += cache.access(dst + off, tail, true);
    word_fn(off, tail);
  }
  return cycles;
}

}  // namespace

Cycles copy(Node& node, std::uint32_t dst, std::uint32_t src,
            std::uint32_t len) {
  std::uint8_t* d = node.mem(dst, len);
  const std::uint8_t* s = node.mem(src, len);
  return walk(node, src, dst, len, node.cost().copy_loop_insns_per_word,
              true, true, [&](std::uint32_t off, std::uint32_t n) {
                std::memmove(d + off, s + off, n);
              });
}

Cycles cksum(Node& node, std::uint32_t addr, std::uint32_t len,
             std::uint32_t* acc) {
  const std::uint8_t* p = node.mem(addr, len);
  return walk(node, addr, 0, len, node.cost().cksum_loop_insns_per_word,
              true, false, [&](std::uint32_t off, std::uint32_t n) {
                std::uint32_t w = 0;
                std::memcpy(&w, p + off, n);  // tail zero-padded
                *acc = util::cksum32_accumulate(*acc, w);
              });
}

Cycles bswap(Node& node, std::uint32_t addr, std::uint32_t len) {
  std::uint8_t* p = node.mem(addr, len);
  return walk(node, addr, addr, len, node.cost().bswap_loop_insns_per_word,
              true, true, [&](std::uint32_t off, std::uint32_t n) {
                if (n == 4) {
                  util::store_u32(p + off,
                                  util::bswap32(util::load_u32(p + off)));
                }
              });
}

Cycles copy_cksum(Node& node, std::uint32_t dst, std::uint32_t src,
                  std::uint32_t len, std::uint32_t* acc) {
  std::uint8_t* d = node.mem(dst, len);
  const std::uint8_t* s = node.mem(src, len);
  const std::uint32_t per_word = node.cost().copy_loop_insns_per_word +
                                 node.cost().integrated_cksum_extra;
  return walk(node, src, dst, len, per_word, true, true,
              [&](std::uint32_t off, std::uint32_t n) {
                std::uint32_t w = 0;
                std::memcpy(&w, s + off, n);
                *acc = util::cksum32_accumulate(*acc, w);
                std::memcpy(d + off, s + off, n);
              });
}

Cycles copy_cksum_bswap(Node& node, std::uint32_t dst, std::uint32_t src,
                        std::uint32_t len, std::uint32_t* acc) {
  std::uint8_t* d = node.mem(dst, len);
  const std::uint8_t* s = node.mem(src, len);
  const std::uint32_t per_word = node.cost().copy_loop_insns_per_word +
                                 node.cost().integrated_cksum_extra +
                                 node.cost().integrated_bswap_extra;
  return walk(node, src, dst, len, per_word, true, true,
              [&](std::uint32_t off, std::uint32_t n) {
                std::uint32_t w = 0;
                std::memcpy(&w, s + off, n);
                *acc = util::cksum32_accumulate(*acc, w);
                if (n == 4) {
                  util::store_u32(d + off, util::bswap32(w));
                } else {
                  std::memcpy(d + off, s + off, n);
                }
              });
}

Cycles fill(Node& node, std::uint32_t addr, std::uint32_t len,
            std::uint8_t value) {
  std::uint8_t* p = node.mem(addr, len);
  return walk(node, 0, addr, len, node.cost().copy_loop_insns_per_word - 1,
              false, true, [&](std::uint32_t off, std::uint32_t n) {
                std::memset(p + off, value, n);
              });
}

namespace {

/// Offset of byte `i` of the logical packet within a striped buffer:
/// data chunks alternate with equal-sized pad chunks.
constexpr std::uint32_t striped_off(std::uint32_t i, std::uint32_t chunk) {
  return (i / chunk) * 2 * chunk + (i % chunk);
}

template <typename WordFn>
Cycles walk_destripe(Node& node, std::uint32_t dst, std::uint32_t src,
                     std::uint32_t len, std::uint32_t chunk,
                     std::uint32_t insns_per_word, WordFn word_fn) {
  if (len == 0) return 0;
  if (node.mem(src, 2 * len) == nullptr || node.mem(dst, len) == nullptr) {
    throw std::out_of_range("memops: destripe range out of bounds");
  }
  Cycles cycles = 0;
  Cache& cache = node.dcache();
  for (std::uint32_t off = 0; off < len; off += 4) {
    const std::uint32_t n = len - off < 4 ? len - off : 4;
    cycles += insns_per_word;
    cycles += cache.access(src + striped_off(off, chunk), n, false);
    cycles += cache.access(dst + off, n, true);
    word_fn(off, n);
  }
  return cycles;
}

}  // namespace

Cycles copy_destripe(Node& node, std::uint32_t dst, std::uint32_t src_striped,
                     std::uint32_t len, std::uint32_t chunk) {
  std::uint8_t* d = node.mem(dst, len);
  const std::uint8_t* s = node.mem(src_striped, len ? 2 * len : 0);
  // +1 insn per word for the stride bookkeeping.
  return walk_destripe(node, dst, src_striped, len, chunk,
                       node.cost().copy_loop_insns_per_word + 1,
                       [&](std::uint32_t off, std::uint32_t n) {
                         for (std::uint32_t i = 0; i < n; ++i) {
                           d[off + i] = s[striped_off(off + i, chunk)];
                         }
                       });
}

Cycles copy_destripe_cksum(Node& node, std::uint32_t dst,
                           std::uint32_t src_striped, std::uint32_t len,
                           std::uint32_t* acc, std::uint32_t chunk) {
  std::uint8_t* d = node.mem(dst, len);
  const std::uint8_t* s = node.mem(src_striped, len ? 2 * len : 0);
  const std::uint32_t per_word = node.cost().copy_loop_insns_per_word + 1 +
                                 node.cost().integrated_cksum_extra;
  return walk_destripe(node, dst, src_striped, len, chunk, per_word,
                       [&](std::uint32_t off, std::uint32_t n) {
                         std::uint32_t w = 0;
                         for (std::uint32_t i = 0; i < n; ++i) {
                           d[off + i] = s[striped_off(off + i, chunk)];
                         }
                         std::memcpy(&w, d + off, n);
                         *acc = util::cksum32_accumulate(*acc, w);
                       });
}

Cycles copy_stripe(Node& node, std::uint32_t dst_striped, std::uint32_t src,
                   std::uint32_t len, std::uint32_t chunk) {
  const std::uint8_t* s = node.mem(src, len);
  std::uint8_t* d = node.mem(dst_striped, len ? 2 * len : 0);
  if (s == nullptr || (len != 0 && d == nullptr)) {
    throw std::out_of_range("memops: stripe range out of bounds");
  }
  Cycles cycles = 0;
  Cache& cache = node.dcache();
  for (std::uint32_t off = 0; off < len; off += 4) {
    const std::uint32_t n = len - off < 4 ? len - off : 4;
    cycles += node.cost().copy_loop_insns_per_word + 1;
    cycles += cache.access(src + off, n, false);
    cycles += cache.access(dst_striped + striped_off(off, chunk), n, true);
    for (std::uint32_t i = 0; i < n; ++i) {
      d[striped_off(off + i, chunk)] = s[off + i];
    }
  }
  return cycles;
}

}  // namespace ash::sim::memops
