// Auxiliary kernel-context CPUs for the multi-queue receive path.
//
// A Node models one serialized CPU (the paper's machine). Receive-side
// scaling adds extra CPUs that run *kernel* work only — demux upcalls and
// batched ASH dispatch steered off the interrupt path — while sharing the
// node's memory, D-cache model, cost model, and event queue. They do not
// run user processes, so they carry their own busy_until accounting but no
// scheduler chunk accounting.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace ash::sim {

class Node;

/// One auxiliary kernel CPU belonging to a Node. Created via
/// Node::add_rx_cpu(); identified by a simulator-wide dense cpu id (the
/// tracer's per-CPU ring index).
class Cpu {
 public:
  Cpu(Node& node, std::uint16_t cpu_id) : node_(node), cpu_id_(cpu_id) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  Node& node() noexcept { return node_; }
  std::uint16_t cpu_id() const noexcept { return cpu_id_; }

  Cycles busy_until() const noexcept { return busy_until_; }

  /// Occupy this CPU with kernel-context work for `cycles`, starting no
  /// earlier than now; `done` (optional) runs at completion. Returns the
  /// completion time. Mirrors Node::kernel_work but serializes only
  /// against this CPU's own backlog.
  Cycles kernel_work(Cycles cycles, EventFn done = {});

  /// Total cycles of kernel-context work performed (statistics).
  Cycles kernel_cycles_total() const noexcept { return kernel_cycles_; }

 private:
  Node& node_;
  std::uint16_t cpu_id_;
  Cycles busy_until_ = 0;
  Cycles kernel_cycles_ = 0;
};

/// Copyable handle to "the CPU a receive queue runs on": either the
/// node's main CPU (aux == nullptr — full main-CPU semantics, including
/// contention with the running process's compute chunks) or an auxiliary
/// rx Cpu. Queue 0 of an RxQueueSet uses the main CPU so the single-queue
/// configuration charges exactly like the paper's inline path.
class KernelCpu {
 public:
  KernelCpu() = default;  // invalid until assigned
  explicit KernelCpu(Node& node, Cpu* aux = nullptr)
      : node_(&node), aux_(aux) {}

  bool valid() const noexcept { return node_ != nullptr; }
  bool main() const noexcept { return aux_ == nullptr; }
  Node& node() const noexcept { return *node_; }

  std::uint16_t cpu_id() const;
  Cycles kernel_work(Cycles cycles, EventFn done = {}) const;
  Cycles kernel_cycles_total() const;

 private:
  Node* node_ = nullptr;
  Cpu* aux_ = nullptr;
};

}  // namespace ash::sim
