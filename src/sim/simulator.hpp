// Top-level simulation: a shared clock/event queue plus the nodes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/node.hpp"

namespace ash::sim {

class Simulator {
 public:
  EventQueue& queue() noexcept { return queue_; }
  Cycles now() const noexcept { return queue_.now(); }

  Node& add_node(std::string name, const NodeConfig& config = {}) {
    nodes_.push_back(std::make_unique<Node>(*this, std::move(name), config));
    return *nodes_.back();
  }

  const std::vector<std::unique_ptr<Node>>& nodes() const noexcept {
    return nodes_;
  }

  /// Run until the event queue drains or the clock passes `limit`.
  /// Rethrows the first exception that escaped any process coroutine.
  /// Returns the number of events executed.
  std::size_t run(Cycles limit = ~Cycles{0});

 private:
  void check_failures();

  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ash::sim
