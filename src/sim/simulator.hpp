// Top-level simulation: a shared clock/event queue plus the nodes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/node.hpp"

namespace ash::sim {

class Simulator {
 public:
  EventQueue& queue() noexcept { return queue_; }
  Cycles now() const noexcept { return queue_.now(); }

  Node& add_node(std::string name, const NodeConfig& config = {}) {
    nodes_.push_back(std::make_unique<Node>(*this, std::move(name), config));
    return *nodes_.back();
  }

  const std::vector<std::unique_ptr<Node>>& nodes() const noexcept {
    return nodes_;
  }

  /// Allocate the next dense simulator-wide CPU id. Node constructors and
  /// auxiliary rx CPUs (Node::add_rx_cpu) draw from the same counter, so
  /// every CPU gets a distinct tracer ring id; nodes created before any
  /// rx CPU keep ids equal to their creation index.
  std::uint16_t alloc_cpu_id() noexcept { return next_cpu_id_++; }
  /// Total CPUs allocated so far (nodes + auxiliary rx CPUs).
  std::uint16_t cpu_count() const noexcept { return next_cpu_id_; }

  /// Run until the event queue drains or the clock passes `limit`.
  /// Rethrows the first exception that escaped any process coroutine.
  /// Returns the number of events executed.
  std::size_t run(Cycles limit = ~Cycles{0});

 private:
  void check_failures();

  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint16_t next_cpu_id_ = 0;
};

}  // namespace ash::sim
