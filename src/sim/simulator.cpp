#include "sim/simulator.hpp"

#include "sim/kernel.hpp"

namespace ash::sim {

void Simulator::check_failures() {
  for (const auto& node : nodes_) {
    if (auto e = node->kernel().take_failure()) std::rethrow_exception(e);
  }
}

std::size_t Simulator::run(Cycles limit) {
  std::size_t executed = 0;
  while (queue_.next_time() <= limit) {
    if (!queue_.step()) break;
    ++executed;
    check_failures();
  }
  return executed;
}

}  // namespace ash::sim
