// Simulated processes.
//
// A Process hosts one coroutine (its "main") plus the bookkeeping the
// scheduler needs: run state, the pending-compute residue used for quantum
// preemption, and its address-space segment within the node's memory.
// Simulated work is expressed by awaiting the members below; the process
// only advances while it holds the simulated CPU.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"

namespace ash::sim {

class Node;
class Scheduler;

class Process;

/// Main function of a simulated process. NOTE: a coroutine lambda's
/// captures live in the lambda object, not the coroutine frame, so the
/// kernel stores this callable inside the Process for the coroutine's
/// whole lifetime (see Process::start).
using ProcessMain = std::function<Task(Process&)>;

/// A process's address-space segment within node memory. Power-of-two
/// sized and aligned, so it can serve directly as an SFI segment.
struct MemSegment {
  std::uint32_t base = 0;
  std::uint32_t size = 0;
};

enum class ProcState : std::uint8_t { Ready, Running, Blocked, Exited };

class Process {
 public:
  Process(Node& node, std::uint32_t pid, std::string name, MemSegment seg);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  std::uint32_t pid() const noexcept { return pid_; }
  const std::string& name() const noexcept { return name_; }
  Node& node() noexcept { return node_; }
  const MemSegment& segment() const noexcept { return seg_; }
  ProcState state() const noexcept { return state_; }
  bool exited() const noexcept { return state_ == ProcState::Exited; }

  // ---- awaitables (only valid inside this process's coroutine) ----

  /// Consume `cycles` of CPU time (preemptible at chunk granularity).
  [[nodiscard]] auto compute(Cycles cycles) {
    struct Awaiter {
      Process& p;
      Cycles cycles;
      bool await_ready() const noexcept { return cycles == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        p.start_compute(cycles, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, cycles};
  }

  /// A full system call: two protected crossings + dispatch + `work`.
  [[nodiscard]] auto syscall(Cycles work = 0) {
    return compute(syscall_cost(work));
  }

  /// Cycles a system call performing `work` consumes in total.
  Cycles syscall_cost(Cycles work) const;

  /// Give up the CPU voluntarily (ready-queue tail).
  [[nodiscard]] auto yield_now() {
    struct Awaiter {
      Process& p;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { p.do_yield(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Block for a fixed amount of simulated time.
  [[nodiscard]] auto sleep_for(Cycles cycles) {
    struct Awaiter {
      Process& p;
      Cycles cycles;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { p.do_sleep(cycles, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, cycles};
  }

  // ---- kernel-side interface ----

  /// Pin `fn` inside this process and start its coroutine. The callable
  /// must outlive the coroutine (lambda captures live in it), which is
  /// exactly why it is stored here and never moved again.
  void start(ProcessMain fn);

  /// Make a Blocked process runnable. `boost` hints schedulers that honor
  /// message-arrival priority (the Ultrix-style policy). No-op for
  /// Ready/Running processes (wakeups are not queued — use WaitChannel
  /// for token semantics).
  void wake(bool boost = false);

  /// Continue execution after being dispatched: either finish residual
  /// compute or resume the (innermost suspended) coroutine.
  void resume_execution();

  /// Block the process on an external condition; `resume_execution` will
  /// resume `h` when the process is next dispatched after wake().
  void block_on_external(std::coroutine_handle<> h);

  std::exception_ptr take_exception() noexcept {
    return std::exchange(exception_, nullptr);
  }

  /// The shared simulation event queue (convenience accessor).
  EventQueue& queue();

 private:
  friend class Scheduler;
  friend struct Task::promise_type::FinalAwaiter;

  void start_compute(Cycles cycles, std::coroutine_handle<> h);
  void schedule_next_chunk();
  void do_yield(std::coroutine_handle<> h);
  void do_sleep(Cycles cycles, std::coroutine_handle<> h);
  void run_coroutine();
  void on_coroutine_done();

  Scheduler& sched();

  Node& node_;
  std::uint32_t pid_;
  std::string name_;
  MemSegment seg_;
  ProcState state_ = ProcState::Ready;
  ProcessMain main_fn_;  // owns the coroutine's lambda captures
  Task::Handle main_{};
  std::coroutine_handle<> cont_{};  // innermost suspended coroutine
  Cycles compute_remaining_ = 0;
  std::exception_ptr exception_;
};

/// Condition-variable-with-memory: notify() on an empty waiter list is
/// remembered as a token, so a process that checks state and then waits
/// cannot lose a wakeup that slipped in between.
class WaitChannel {
 public:
  /// Awaitable: consume a token or block until notify().
  [[nodiscard]] auto wait(Process& self) {
    struct Awaiter {
      WaitChannel& ch;
      Process& p;
      bool await_ready() noexcept {
        if (ch.tokens_ > 0) {
          --ch.tokens_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch.waiters_.push_back(&p);
        p.block_on_external(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, self};
  }

  /// Timed wait: like wait(), but gives up after `timeout` cycles.
  /// Resumes with true if a token was consumed, false on timeout.
  struct TimedAwaiter {
    WaitChannel& ch;
    Process& p;
    Cycles timeout;
    bool timed_out = false;
    EventId ev = 0;

    bool await_ready() noexcept {
      if (ch.tokens_ > 0) {
        --ch.tokens_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume();
  };
  [[nodiscard]] TimedAwaiter wait_for(Process& self, Cycles timeout) {
    return TimedAwaiter{*this, self, timeout};
  }

  /// Post one token / wake the first waiter. `boost` is passed through to
  /// Process::wake for priority-boosting schedulers.
  void notify(bool boost = false);

  std::uint64_t tokens() const noexcept { return tokens_; }
  bool has_waiters() const noexcept { return !waiters_.empty(); }

 private:
  /// Remove `p` from the waiter list; true if it was present.
  bool remove_waiter(Process* p);

  std::uint64_t tokens_ = 0;
  std::deque<Process*> waiters_;
};

}  // namespace ash::sim
