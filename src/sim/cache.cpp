#include "sim/cache.hpp"

namespace ash::sim {

Cache::Cache(const CacheConfig& config)
    : config_(config),
      n_lines_(config.size_bytes / config.line_bytes),
      tags_(n_lines_, 0) {}

Cycles Cache::access(std::uint32_t addr, std::uint32_t len, bool is_write) {
  Cycles extra = 0;
  const std::uint32_t first = addr / config_.line_bytes;
  const std::uint32_t last = (addr + (len ? len - 1 : 0)) / config_.line_bytes;
  for (std::uint32_t line = first; line <= last; ++line) {
    const std::uint32_t idx = line % n_lines_;
    const std::uint32_t tag = line + 1;
    if (tags_[idx] == tag) {
      ++hits_;
      if (is_write) extra += config_.write_cost;
      continue;
    }
    if (is_write) {
      // Write-through, no write-allocate: the store goes to memory without
      // fetching the line.
      ++misses_;
      extra += config_.write_cost;
      continue;
    }
    ++misses_;
    extra += config_.read_miss_penalty;
    tags_[idx] = tag;
  }
  return extra;
}

bool Cache::contains(std::uint32_t addr) const {
  const std::uint32_t line = addr / config_.line_bytes;
  return tags_[line % n_lines_] == line + 1;
}

void Cache::flush_all() { tags_.assign(n_lines_, 0); }

void Cache::invalidate_range(std::uint32_t addr, std::uint32_t len) {
  if (len == 0) return;
  const std::uint32_t first = addr / config_.line_bytes;
  const std::uint32_t last = (addr + len - 1) / config_.line_bytes;
  if (last - first + 1 >= n_lines_) {
    flush_all();
    return;
  }
  for (std::uint32_t line = first; line <= last; ++line) {
    const std::uint32_t idx = line % n_lines_;
    if (tags_[idx] == line + 1) tags_[idx] = 0;
  }
}

void Cache::touch_range(std::uint32_t addr, std::uint32_t len) {
  if (len == 0) return;
  const std::uint32_t first = addr / config_.line_bytes;
  const std::uint32_t last = (addr + len - 1) / config_.line_bytes;
  for (std::uint32_t line = first; line <= last; ++line) {
    tags_[line % n_lines_] = line + 1;
  }
}

}  // namespace ash::sim
