#include "sim/scheduler.hpp"

#include <cassert>

#include "sim/kernel.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {

void Scheduler::add_new(Process* p) {
  assert(p->state() == ProcState::Ready);
  ready_.push_back(p);
  maybe_dispatch();
}

void Scheduler::make_ready(Process* p, bool boost) {
  assert(p->state() == ProcState::Blocked);
  p->state_ = ProcState::Ready;
  if (policy_ == SchedPolicy::PriorityBoost && boost) {
    ready_.push_front(p);
    if (running_ != nullptr) boost_preempt_ = true;
  } else {
    ready_.push_back(p);
  }
  maybe_dispatch();
}

void Scheduler::on_running_blocked() {
  assert(running_ != nullptr);
  running_->state_ = ProcState::Blocked;
  running_ = nullptr;
  maybe_dispatch();
}

void Scheduler::on_running_yielded() {
  assert(running_ != nullptr);
  running_->state_ = ProcState::Ready;
  ready_.push_back(running_);
  running_ = nullptr;
  maybe_dispatch();
}

void Scheduler::preempt_running() { on_running_yielded(); }

void Scheduler::on_running_exited() {
  assert(running_ != nullptr);
  running_->state_ = ProcState::Exited;
  running_ = nullptr;
  maybe_dispatch();
}

bool Scheduler::should_preempt() const {
  if (running_ == nullptr || ready_.empty()) return false;
  if (boost_preempt_) return true;
  return node_.now() - dispatch_time_ >= node_.cost().quantum;
}

void Scheduler::maybe_dispatch() {
  if (running_ != nullptr || dispatch_pending_ || ready_.empty()) return;
  dispatch_pending_ = true;
  node_.kernel_work(node_.cost().context_switch, [this] {
    dispatch_pending_ = false;
    if (running_ != nullptr || ready_.empty()) return;
    running_ = ready_.front();
    ready_.pop_front();
    running_->state_ = ProcState::Running;
    dispatch_time_ = node_.now();
    boost_preempt_ = false;
    running_->resume_execution();
  });
}

}  // namespace ash::sim
