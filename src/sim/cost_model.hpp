// The calibrated cost model of the simulated testbed.
//
// Every constant here is derived from a number the paper states or implies
// for the 40 MHz DECstation 5000/240 running Aegis (see DESIGN.md §4 and
// EXPERIMENTS.md for the calibration narrative). Keeping them all in one
// struct makes each experiment's arithmetic auditable and lets benches run
// ablations (e.g. Ultrix-cost crossings, software budget checks).
#pragma once

#include "sim/event_queue.hpp"

namespace ash::sim {

struct CostModel {
  // --- CPU / kernel (Aegis: "kernel crossing times are five times better
  // than the best reported in the literature") ---

  /// One protected user->kernel->user crossing (trap + return).
  Cycles kernel_crossing = us(1.5);
  /// Fixed overhead of a full system call beyond the crossing
  /// (argument validation, dispatch).
  Cycles syscall_overhead = us(2.0);
  /// Full context switch between processes (save/restore, address space,
  /// scheduler pass; what an upcall avoids — Section V's ~35 us
  /// ASH-vs-upcall advantage comes largely from here).
  Cycles context_switch = us(35.0);
  /// Interrupt entry/exit (device interrupt to handler and back).
  Cycles interrupt_entry = us(2.5);
  /// Round-robin scheduling quantum (Aegis timeslice).
  Cycles quantum = us(15625.0);  // 15.625 ms
  /// Cost of one poll-loop iteration at user level (read notification
  /// ring, test, branch).
  Cycles poll_iteration = us(0.5);
  /// Making a blocked process runnable from kernel context (scheduler
  /// queue manipulation + priority recomputation).
  Cycles wakeup = us(10.0);

  // --- ASH invocation (Section V: timer setup/teardown "approximately
  /// one microsecond each", plus installing the address-space context) ---
  Cycles ash_timer_setup = us(1.0);
  Cycles ash_timer_clear = us(1.0);
  Cycles ash_context_install = us(1.0);
  /// Runtime ceiling: "aborting any ASH that attempts to use two clock
  /// ticks worth of time or more" (3.9 ms ticks on the DECstation).
  Cycles ash_max_runtime = us(7800.0);

  // --- upcalls (Section V: ASH saves ~35us over an upcall in Aegis) ---
  /// Dispatching a fast asynchronous upcall: address-space switch and
  /// user-level handler entry/exit, without a full context switch.
  Cycles upcall_dispatch = us(25.0);
  /// Batching/unbatching overhead of the upcall mechanism (the paper's
  /// explanation for upcalls trailing even polling user level).
  Cycles upcall_batching = us(21.0);

  // --- Ultrix-style costs (Section V: exception + syscall there is ~95us
  /// where Aegis spends ~35us less than an upcall) ---
  Cycles ultrix_crossing_extra = us(60.0);

  // --- memory loops: per-32-bit-word instruction counts of the hand
  /// loops the protocol library uses (calibrated to Table III/IV) ---
  std::uint32_t copy_loop_insns_per_word = 5;   // lw sw addiu addiu bne
  std::uint32_t cksum_loop_insns_per_word = 5;  // lw cksum(2c) addiu bne
  std::uint32_t bswap_loop_insns_per_word = 11;  // lw 6-op-swap sw + loop
  std::uint32_t integrated_cksum_extra = 2;      // cksum32 folded into copy
  std::uint32_t integrated_bswap_extra = 9;      // shift/mask swap folded in

  // --- user-level raw network access (Table I: the user-level path adds
  /// ~70us/RTT over the in-kernel path: scheduling, multiple boundary
  /// crossings, "the full system call interface") ---
  /// Receive-side user work per message: notification-ring processing,
  /// buffer bookkeeping, boundary crossings.
  Cycles an2_user_recv_overhead = us(25.0);
  /// Send-side user work beyond the driver's transmit work (argument
  /// validation, buffer pinning checks).
  Cycles an2_user_send_overhead = us(8.0);

  // --- protocol library (per message, beyond data touching) ---
  /// Fixed cost of invoking the checksum routine (call, fold, compare) —
  /// charged per checksummed packet in addition to the per-byte pass.
  Cycles udp_cksum_setup = us(6.0);
  /// Allocate a send buffer + fill IP/UDP headers (the "43us higher than
  /// raw" UDP observation, split across send and receive).
  Cycles udp_send_overhead = us(12.0);
  Cycles udp_recv_overhead = us(6.0);
  /// TCP segment processing around the header-prediction fast path.
  Cycles tcp_fastpath_overhead = us(18.0);
  /// TCP slow path (full protocol processing).
  Cycles tcp_slowpath_overhead = us(45.0);
  /// TCP sender-side per-write bookkeeping (buffering for retransmit).
  Cycles tcp_send_overhead = us(20.0);
  /// Building and issuing a pure ACK segment.
  Cycles tcp_ack_overhead = us(8.0);
  /// Per-segment bookkeeping the *transparent* library still performs at
  /// user level when a downloaded handler consumed the segment (Section
  /// V-B: "this version of the TCP library implements ASHs completely
  /// transparently to applications" — reads revalidate the TCB, account
  /// buffers, and unbatch, limiting what the handler can save).
  Cycles tcp_handler_read_overhead = us(20.0);

  // --- multi-queue receive path (receive scaling, DESIGN §"Receive
  /// scaling model") ---
  /// One pickup pass of an rx queue already in polling mode (NAPI-style):
  /// the coalescer stays on the CPU, so a batch costs a ring check + batch
  /// pop instead of a full interrupt entry.
  Cycles rxq_poll_pass = us(0.5);
  /// Re-arming the runtime budget timer for the next message of an
  /// already-entered ASH batch (the sandbox context and timer machinery
  /// are hot; only the deadline is rewritten). Replaces the per-message
  /// ash_timer_setup + ash_context_install for messages 2..N of a batch.
  Cycles ash_batch_rearm = us(0.25);

  // --- demultiplexing ---
  /// AN2: virtual-circuit index lookup in the driver.
  Cycles demux_an2 = us(1.0);
  /// Ethernet: per-DPF-node visit cost (compiled engine).
  Cycles dpf_node_cost = us(0.4);
  /// Ethernet: per-atom cost for the interpreted filter baseline.
  Cycles dpf_interp_atom_cost = us(1.2);
};

}  // namespace ash::sim
