// A simulated machine: memory, data cache, cost model, CPU accounting,
// and a kernel. Two of these connected by a Wire reproduce the paper's
// pair of DECstation 5000/240s.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

namespace ash::sim {

class Cpu;
class Kernel;
class Simulator;

struct NodeConfig {
  std::size_t memory_bytes = 16u << 20;  // 16 MB
  CacheConfig cache;
  CostModel cost;
  SchedPolicy policy = SchedPolicy::RoundRobinOblivious;
};

class Node {
 public:
  Node(Simulator& sim, std::string name, const NodeConfig& config);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const noexcept { return name_; }
  /// Dense per-simulator CPU index (allocation order across nodes and
  /// auxiliary rx CPUs) — the tracer's per-CPU ring id.
  std::uint16_t cpu_id() const noexcept { return cpu_id_; }
  Simulator& simulator() noexcept { return sim_; }
  EventQueue& queue() noexcept;
  Cycles now() const noexcept;

  CostModel& cost() noexcept { return cost_; }
  const CostModel& cost() const noexcept { return cost_; }
  Cache& dcache() noexcept { return dcache_; }
  Kernel& kernel() noexcept { return *kernel_; }

  // ---- physical memory ----

  std::size_t memory_size() const noexcept { return memory_.size(); }

  /// Bounds-checked pointer to `len` bytes at `addr`; nullptr when the
  /// range is out of bounds.
  std::uint8_t* mem(std::uint32_t addr, std::uint32_t len) noexcept;
  const std::uint8_t* mem(std::uint32_t addr, std::uint32_t len) const noexcept;

  // ---- CPU accounting ----
  //
  // The CPU is a single serialized resource. Kernel work (interrupt
  // handlers, ASHs, context switches) advances `busy_until`; the running
  // process's compute chunks advance `chunk_end`. Anything new starts no
  // earlier than cpu_free_at().

  Cycles cpu_free_at() const noexcept {
    return busy_until_ > chunk_end_ ? busy_until_ : chunk_end_;
  }

  void set_chunk_end(Cycles at) noexcept { chunk_end_ = at; }

  /// Occupy the CPU with kernel-context work for `cycles`, starting no
  /// earlier than now; `done` (optional) runs at completion. Returns the
  /// completion time.
  Cycles kernel_work(Cycles cycles, EventFn done = {});

  /// Total cycles of kernel-context work performed (statistics).
  Cycles kernel_cycles_total() const noexcept { return kernel_cycles_; }

  // ---- auxiliary receive CPUs ----
  //
  // Extra kernel-only CPUs for the multi-queue receive path (sim/cpu.hpp).
  // They share this node's memory/cost model/event queue but carry their
  // own busy_until accounting. Created on demand by net::RxQueueSet.

  /// Add one auxiliary rx CPU; its cpu id is allocated from the same
  /// simulator-wide counter as node ids.
  Cpu& add_rx_cpu();
  std::size_t rx_cpu_count() const noexcept { return rx_cpus_.size(); }
  Cpu& rx_cpu(std::size_t i) noexcept { return *rx_cpus_[i]; }

  // ---- NIC handler execution units ----
  //
  // Smart-NIC offload (net::NicProcessor) runs ASHs on device-resident
  // execution units. They reuse the auxiliary-Cpu machinery — own
  // busy_until accounting on the shared event queue, a simulator-wide
  // dense cpu id for trace attribution — but are tracked separately so
  // host-CPU statistics never mix with device cycles.

  Cpu& add_nic_unit();
  std::size_t nic_unit_count() const noexcept { return nic_units_.size(); }
  Cpu& nic_unit(std::size_t i) noexcept { return *nic_units_[i]; }

 private:
  Simulator& sim_;
  std::string name_;
  std::uint16_t cpu_id_ = 0;
  CostModel cost_;
  Cache dcache_;
  std::vector<std::uint8_t> memory_;
  std::unique_ptr<Kernel> kernel_;
  std::vector<std::unique_ptr<Cpu>> rx_cpus_;
  std::vector<std::unique_ptr<Cpu>> nic_units_;
  Cycles busy_until_ = 0;
  Cycles chunk_end_ = 0;
  Cycles kernel_cycles_ = 0;
};

}  // namespace ash::sim
