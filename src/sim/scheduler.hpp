// CPU scheduler for one simulated node.
//
// Two policies reproduce Fig. 4's comparison:
//  * RoundRobinOblivious — Aegis' round-robin scheduler, "oblivious to
//    message arrival": a woken process joins the tail of the ready queue
//    and waits its turn.
//  * PriorityBoost — the Ultrix-style scheduler "that raises the priority
//    of a process immediately after a network interrupt": a boosted wake
//    joins the head of the queue and preempts the running process at the
//    next preemption point.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/event_queue.hpp"

namespace ash::sim {

class Node;
class Process;

enum class SchedPolicy : std::uint8_t { RoundRobinOblivious, PriorityBoost };

class Scheduler {
 public:
  Scheduler(Node& node, SchedPolicy policy)
      : node_(node), policy_(policy) {}

  SchedPolicy policy() const noexcept { return policy_; }
  void set_policy(SchedPolicy p) noexcept { policy_ = p; }

  /// Enqueue a newly spawned process and dispatch if the CPU is idle.
  void add_new(Process* p);

  /// Transition a Blocked process to Ready (wake path).
  void make_ready(Process* p, bool boost);

  /// The running process gave up the CPU (blocked).
  void on_running_blocked();

  /// The running process yielded (ready-queue tail).
  void on_running_yielded();

  /// Preempt the running process at a preemption point (quantum expiry or
  /// boost request); it keeps its residual compute.
  void preempt_running();

  /// The running process's coroutine finished.
  void on_running_exited();

  /// True when the running process should be preempted at the next
  /// preemption point.
  bool should_preempt() const;

  /// Dispatch the next ready process if the CPU is free. Safe to call
  /// redundantly.
  void maybe_dispatch();

  Process* running() const noexcept { return running_; }
  std::size_t ready_count() const noexcept { return ready_.size(); }

  /// Cycles the current process has been running (for quantum checks).
  Cycles running_since() const noexcept { return dispatch_time_; }

 private:
  void detach_running();

  Node& node_;
  SchedPolicy policy_;
  std::deque<Process*> ready_;
  Process* running_ = nullptr;
  Cycles dispatch_time_ = 0;
  bool dispatch_pending_ = false;
  bool boost_preempt_ = false;
};

}  // namespace ash::sim
