// The simulated exokernel.
//
// Owns the node's processes and scheduler, allocates address-space
// segments, records process failures, and is the attachment point for the
// ASH system (src/core installs its invocation engine here so network
// drivers can hand messages to handlers in kernel context).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace ash::sim {

class Node;

class Kernel {
 public:
  Kernel(Node& node, SchedPolicy policy);
  ~Kernel();

  Node& node() noexcept { return node_; }
  Scheduler& scheduler() noexcept { return sched_; }

  /// Create a process with a power-of-two address-space segment and start
  /// it (ready queue). Throws std::length_error when memory is exhausted.
  Process& spawn(std::string name, ProcessMain main);

  /// Segment size given to every process (1 MB: SFI-compatible).
  static constexpr std::uint32_t kSegmentSize = 1u << 20;

  Process* find(std::uint32_t pid) noexcept;
  const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return procs_;
  }

  /// Number of processes that have not exited.
  std::size_t live_processes() const noexcept;

  /// Record a failure escaping a process coroutine; Simulator::run
  /// rethrows it.
  void record_failure(std::exception_ptr e);
  std::exception_ptr take_failure() noexcept;

 private:
  Node& node_;
  Scheduler sched_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::uint32_t next_seg_base_ = kSegmentSize;  // segment 0 = kernel area
  std::exception_ptr failure_;
};

}  // namespace ash::sim
