#include "sim/timer_wheel.hpp"

#include <algorithm>

namespace ash::sim {

TimerWheel::TimerWheel(Cycles granularity, std::size_t buckets)
    : gran_(granularity == 0 ? 1 : granularity),
      buckets_(buckets == 0 ? 1 : buckets) {}

void TimerWheel::place(Entry e) {
  std::uint64_t tick = tick_of(e.deadline);
  if (tick < cursor_tick_) tick = cursor_tick_;  // past-due: next advance fires it
  if (!in_horizon(tick)) {
    overflow_.push_back(e);
    return;
  }
  buckets_[tick % buckets_.size()].push_back(e);
}

TimerWheel::Id TimerWheel::arm(Cycles deadline, std::uint64_t cookie) {
  const Id id = next_id_++;
  live_.emplace(id, deadline);
  place(Entry{deadline, id, cookie});
  return id;
}

bool TimerWheel::cancel(Id id) {
  return live_.erase(id) != 0;  // bucket entry becomes a tombstone
}

std::optional<Cycles> TimerWheel::next_deadline() {
  if (live_.empty()) {
    // Nothing armed: reclaim all tombstones in one sweep.
    for (auto& b : buckets_) b.clear();
    overflow_.clear();
    return std::nullopt;
  }
  const std::size_t n = buckets_.size();
  // Bucket at offset i holds only tick cursor+i of the current revolution,
  // so the first bucket with a live entry holds the minimum.
  for (std::size_t i = 0; i < n; ++i) {
    auto& b = buckets_[(cursor_tick_ + i) % n];
    std::optional<Cycles> best;
    std::size_t w = 0;
    for (const Entry& e : b) {
      if (live_.count(e.id) == 0) continue;  // tombstone: drop
      if (!best || e.deadline < *best) best = e.deadline;
      b[w++] = e;
    }
    b.resize(w);
    if (best) return best;
  }
  std::optional<Cycles> best;
  std::size_t w = 0;
  for (const Entry& e : overflow_) {
    if (live_.count(e.id) == 0) continue;
    if (!best || e.deadline < *best) best = e.deadline;
    overflow_[w++] = e;
  }
  overflow_.resize(w);
  return best;
}

void TimerWheel::advance(Cycles now, std::vector<Expired>& out) {
  const std::size_t first = out.size();
  const std::size_t n = buckets_.size();
  const std::uint64_t new_cursor = tick_of(now);
  if (new_cursor >= cursor_tick_) {
    // Scan each tick from the cursor through `now`'s tick — at most one
    // full revolution, since a bucket holds a single tick's entries.
    const std::uint64_t span = new_cursor - cursor_tick_ + 1;
    const std::uint64_t scan = std::min<std::uint64_t>(span, n);
    for (std::uint64_t i = 0; i < scan; ++i) {
      auto& b = buckets_[(cursor_tick_ + i) % n];
      std::size_t w = 0;
      for (const Entry& e : b) {
        auto it = live_.find(e.id);
        if (it == live_.end()) continue;
        if (e.deadline <= now) {
          out.push_back({e.deadline, e.cookie});
          live_.erase(it);
        } else {
          b[w++] = e;  // later in the current tick, or a later revolution
        }
      }
      b.resize(w);
    }
    cursor_tick_ = new_cursor;
  }
  // Overflow entries expire directly (huge jumps) or migrate inward once
  // their tick enters the horizon.
  std::size_t w = 0;
  for (const Entry& e : overflow_) {
    auto it = live_.find(e.id);
    if (it == live_.end()) continue;
    if (e.deadline <= now) {
      out.push_back({e.deadline, e.cookie});
      live_.erase(it);
    } else if (in_horizon(tick_of(e.deadline))) {
      buckets_[tick_of(e.deadline) % n].push_back(e);
    } else {
      overflow_[w++] = e;
    }
  }
  overflow_.resize(w);
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const Expired& a, const Expired& b) {
              return a.deadline < b.deadline;
            });
}

}  // namespace ash::sim
