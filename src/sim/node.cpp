#include "sim/node.hpp"

#include "sim/cpu.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"

namespace ash::sim {

Node::Node(Simulator& sim, std::string name, const NodeConfig& config)
    : sim_(sim),
      name_(std::move(name)),
      cpu_id_(sim.alloc_cpu_id()),
      cost_(config.cost),
      dcache_(config.cache),
      memory_(config.memory_bytes, 0),
      kernel_(std::make_unique<Kernel>(*this, config.policy)) {}

Node::~Node() = default;

EventQueue& Node::queue() noexcept { return sim_.queue(); }
Cycles Node::now() const noexcept { return sim_.now(); }

std::uint8_t* Node::mem(std::uint32_t addr, std::uint32_t len) noexcept {
  if (static_cast<std::uint64_t>(addr) + len > memory_.size()) return nullptr;
  return memory_.data() + addr;
}

const std::uint8_t* Node::mem(std::uint32_t addr,
                              std::uint32_t len) const noexcept {
  if (static_cast<std::uint64_t>(addr) + len > memory_.size()) return nullptr;
  return memory_.data() + addr;
}

Cpu& Node::add_rx_cpu() {
  rx_cpus_.push_back(std::make_unique<Cpu>(*this, sim_.alloc_cpu_id()));
  return *rx_cpus_.back();
}

Cpu& Node::add_nic_unit() {
  nic_units_.push_back(std::make_unique<Cpu>(*this, sim_.alloc_cpu_id()));
  return *nic_units_.back();
}

Cycles Node::kernel_work(Cycles cycles, EventFn done) {
  const Cycles start = now() > cpu_free_at() ? now() : cpu_free_at();
  busy_until_ = start + cycles;
  kernel_cycles_ += cycles;
  if (done) queue().schedule_at(busy_until_, std::move(done));
  return busy_until_;
}

}  // namespace ash::sim
