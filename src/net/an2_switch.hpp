// The AN2 switch: multi-node virtual-circuit switching.
//
// The testbed connects its DECstations through an AN2 switch; the paper
// only ever uses two nodes, but circuits are the device's real addressing
// model ("before communicating, processes bind to a virtual circuit").
// This switch forwards cells between attached devices according to a
// circuit table: an incoming (port, vc) is rewritten to an outgoing
// (port, vc). Point-to-point `An2Device::connect` remains available for
// the two-node experiments; a device attaches to either one peer or one
// switch.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/an2.hpp"
#include "sim/simulator.hpp"

namespace ash::net {

/// Switch configuration (namespace scope so it can serve as a defaulted
/// constructor argument).
struct An2SwitchConfig {
  /// Extra latency per switched hop (cell routing/queueing), on top of
  /// the devices' own board latencies.
  sim::Cycles hop_latency = sim::us(3.0);
};

class An2Switch {
 public:
  using Config = An2SwitchConfig;

  explicit An2Switch(sim::Simulator& sim, const Config& config = {})
      : sim_(sim), config_(config) {}

  /// Attach a device; returns its port number. The device must not be
  /// connected point-to-point.
  int attach(An2Device& dev);

  /// Program a unidirectional circuit: cells arriving from `in_port`
  /// addressed to `in_vc` are delivered to `out_port` as `out_vc`.
  void add_circuit(int in_port, int in_vc, int out_port, int out_vc);

  /// Program both directions of one connection: side A names it `vc_a`
  /// locally, side B names it `vc_b`; each sender addresses its own name.
  void add_duplex(int port_a, int vc_a, int port_b, int vc_b) {
    add_circuit(port_a, vc_a, port_b, vc_b);
    add_circuit(port_b, vc_b, port_a, vc_a);
  }

  std::uint64_t unrouted() const noexcept { return unrouted_; }

 private:
  friend class An2Device;

  /// Called by an attached device when its transmit completes: route and
  /// deliver. `dst_vc` is the VC the sender addressed.
  void forward(int in_port, int dst_vc, std::vector<std::uint8_t> bytes);

  sim::Simulator& sim_;
  Config config_;
  std::vector<An2Device*> ports_;
  std::map<std::pair<int, int>, std::pair<int, int>> circuits_;
  std::uint64_t unrouted_ = 0;
};

}  // namespace ash::net
