// Smart-NIC ASH offload: NIC-resident handler execution units.
//
// The paper's core bet — run the application's handler where the message
// arrives — is taken one step further here, to where it landed a
// generation later (sPIN's handler processing units, receive-side
// dispatching on the NIC): the handler leaves the host entirely and runs
// on the device. A NicProcessor sits *in front of* an RxQueueSet:
//
//  * per-RX-queue execution units — each steered queue owns
//    NicConfig::units_per_queue handler execution units (HPUs). A unit is
//    a sim::Cpu allocated via Node::add_nic_unit(): its own busy_until
//    accounting on the shared event queue, its own simulator-wide cpu id
//    for trace attribution. Frames parked on a NIC queue are drained by
//    whichever of its units frees first (a multi-server queue), so one
//    slow handler run does not head-of-line-block its queue.
//
//  * a NIC cost model distinct from the host's — the unit runs the same
//    verified VCODE (all three backends: interp, CodeCache, JIT), so the
//    handler's simulated execution cycles come from the one shared cycle
//    model; the NIC then charges those cycles scaled by its clock ratio,
//    plus a per-message dispatch overhead. What the device does NOT pay
//    is the host's per-message kernel overhead: no interrupt entry, no
//    driver pass, no cache flush, no context install, no budget-timer
//    setup/clear — the unit is hardware-sequenced. That elision plus unit
//    parallelism is the whole offload win.
//
//  * a constrained memory window — the NIC's SRAM is bounded
//    (NicConfig::mem_window_bytes). A handler becomes NIC-resident only
//    if its footprint (sandboxed image + fast-mem scratch + DILP
//    persistent registers) fits in what remains of the window; handlers
//    that do not fit stay host-resident and every frame for them is a
//    counted NotResident punt taking the normal host path.
//
//  * transparent punts — a NIC run that does not commit (voluntary abort,
//    admission denial, involuntary fault) hands the frame back to the
//    host: the sink's nic_punt() charges the host-side handoff on the
//    steered queue's CPU and delivers through the normal path. The
//    handler executed (at most) ONCE, on the device, through the same
//    AshSystem admission/run machinery as the host path — so per-handler
//    AshStats, tenant cycle accounting, and delivered message sets are
//    identical with offload on or off; only where the cycles are charged
//    (NIC units vs host CPUs) differs. The differential replay and
//    punt-property tests pin exactly this.
//
//  * tenant isolation holds on-device — NIC enqueue consults the same
//    RxQuota the host queues use, with the same ordering (overflow is a
//    device-attributed drop checked before the quota, so a full NIC queue
//    never charges the tenant's occupancy account).
//
// Conservation (per NIC queue, at quiescence):
//   offered == nic_executed + punted + dropped,  and
//   punted  == sum(by_punt_reason),  dropped == overflow + quota drops.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/rx_queue.hpp"
#include "sim/cpu.hpp"
#include "sim/node.hpp"

namespace ash::net {

/// The device-side cycle model. Execution cycles still come from the one
/// shared VCODE cycle model (so AshStats are identical host- or
/// NIC-side); this scales them to the unit's clock and adds the per-
/// message device overheads.
struct NicCostModel {
  /// NIC unit clock relative to the host CPU: a charged run costs
  /// ceil(exec_cycles * clock_num / clock_den) unit-cycles. The default
  /// models an embedded core somewhat slower than the host (5/4 = 1.25x
  /// cycles), which the unit parallelism and overhead elision dwarf.
  std::uint32_t clock_num = 5;
  std::uint32_t clock_den = 4;
  /// Per-message dispatch: the unit picks a descriptor off its queue and
  /// sequences the run. Replaces the host's timer-setup + context-install.
  sim::Cycles dispatch = sim::us(0.3);
  /// Issuing one TSend reply directly from the device (descriptor write;
  /// the wire time is the link's, as on the host path).
  sim::Cycles reply_issue = sim::us(0.2);
  /// Handing a non-committed frame back to the host: DMA descriptor plus
  /// doorbell. The host side additionally charges its normal per-frame
  /// receive pass in RxSink::nic_punt.
  sim::Cycles punt_handoff = sim::us(0.5);
};

struct NicConfig {
  /// Handler execution units per RX queue (sPIN-style HPU cluster).
  std::size_t units_per_queue = 4;
  /// Frame descriptors one NIC queue can park (device SRAM slots);
  /// overflow frames are dropped back to the device, counted.
  std::size_t queue_capacity = 256;
  /// The SRAM window NIC-resident handler state must fit into.
  std::uint32_t mem_window_bytes = 48u * 1024;
  NicCostModel cost;
};

/// Why a frame offered to the NIC was punted to the host path (OffloadPunt
/// arg0; keep in sync with the namer in trace/format.cpp).
enum class PuntReason : std::uint8_t {
  NotResident,  // handler does not fit the memory window (steer-time)
  HostService,  // ran but did not commit, or was denied admission
  Fault,        // involuntary abort on the device
};
inline constexpr std::size_t kPuntReasonCount = 3;
const char* to_string(PuntReason r) noexcept;

/// One NIC handler execution unit. The ASH layer charges runs on it the
/// way host paths charge a KernelCpu; `scale` converts host-model
/// execution cycles to this unit's clock.
class NicExecUnit {
 public:
  NicExecUnit(sim::Cpu& cpu, const NicCostModel& cost, std::size_t queue,
              std::size_t unit)
      : cpu_(cpu), cost_(&cost), queue_(queue), unit_(unit) {}

  std::uint16_t cpu_id() const noexcept { return cpu_.cpu_id(); }
  const NicCostModel& cost() const noexcept { return *cost_; }
  std::size_t queue() const noexcept { return queue_; }
  std::size_t unit() const noexcept { return unit_; }

  sim::Cycles scale(sim::Cycles exec_cycles) const noexcept {
    return (exec_cycles * cost_->clock_num + cost_->clock_den - 1) /
           cost_->clock_den;
  }

  /// Occupy this unit for `cycles`; `done` runs at completion. Mirrors
  /// KernelCpu::kernel_work but on the device.
  sim::Cycles work(sim::Cycles cycles, sim::EventFn done = {}) {
    return cpu_.kernel_work(cycles, std::move(done));
  }

  sim::Cycles busy_until() const noexcept { return cpu_.busy_until(); }
  /// Total device cycles ever charged on this unit.
  sim::Cycles charged_total() const noexcept {
    return cpu_.kernel_cycles_total();
  }

 private:
  sim::Cpu& cpu_;
  const NicCostModel* cost_;
  std::size_t queue_;
  std::size_t unit_;
};

/// What one NIC-side invocation did (returned by the installed NicHook,
/// i.e. by AshSystem::invoke_nic).
struct NicExecResult {
  bool ran = false;       // admission passed and the handler executed
  bool consumed = false;  // committed: the message is fully handled
  bool faulted = false;   // involuntary abort (punt attribution)
  std::uint32_t replies = 0;   // TSends issued from the device
  sim::Cycles charged = 0;     // device cycles charged on the unit
};

/// Per-channel hook the ASH layer installs at offload time: run the
/// handler for `frame` on `unit`, charging the unit under the NIC cost
/// model. Defined here because net cannot depend on core (the same
/// precedent as RxQuota).
using NicHook = std::function<NicExecResult(const RxFrame&, NicExecUnit&)>;

class NicProcessor {
 public:
  struct QueueStats {
    std::uint64_t offered = 0;       // frames steered to this NIC queue
    std::uint64_t nic_executed = 0;  // committed entirely on-device
    std::uint64_t punted = 0;        // handed to the host path
    std::array<std::uint64_t, kPuntReasonCount> by_punt_reason{};
    std::uint64_t dropped = 0;       // at NIC enqueue
    std::uint64_t overflow_drops = 0;
    std::uint64_t quota_drops = 0;
    std::uint64_t replies = 0;       // TSends issued from the device
    std::uint64_t nic_cycles = 0;    // device cycles charged on units
  };

  /// Creates host.size() NIC queues, each with cfg.units_per_queue
  /// execution units (allocated from node.add_nic_unit()). Steering and
  /// the tenant quota are shared with `host`: the same policy picks the
  /// NIC queue index, and punted frames complete on the matching host
  /// queue's CPU. `host` must outlive the processor.
  NicProcessor(sim::Node& node, RxQueueSet& host, const NicConfig& cfg = {});

  const NicConfig& config() const noexcept { return cfg_; }
  std::size_t queues() const noexcept { return queues_.size(); }

  // ---- residency (the memory window) ----

  /// Try to make (sink, channel) NIC-resident: reserve `footprint` bytes
  /// of the memory window and install `hook`. Returns false — leaving the
  /// channel host-resident, its frames counted as NotResident punts —
  /// when the footprint does not fit in what remains of the window.
  /// Re-attaching a resident channel releases the old reservation first.
  bool attach(RxSink* sink, int channel, std::uint32_t footprint,
              NicHook hook);

  /// Forget (sink, channel) entirely: release its window reservation and
  /// hook (revocation/detach). Frames already parked on-device complete
  /// as HostService punts; new frames take the host path uncounted.
  void detach(RxSink* sink, int channel);

  bool resident(const RxSink* sink, int channel) const;
  std::uint32_t window_used() const noexcept { return window_used_; }
  std::size_t attached() const noexcept { return residents_.size(); }

  // ---- datapath ----

  /// Steer-time entry, called by the device before the host RxQueueSet:
  /// true means the NIC took the frame (parked for a resident handler, or
  /// dropped — counted — at NIC enqueue); false means the caller must
  /// continue down the host path (never offload-attached, or a counted
  /// NotResident punt).
  bool offer(RxFrame frame);

  const QueueStats& stats(std::size_t q) const { return queues_[q]->stats; }
  QueueStats totals() const;
  /// Frames parked on NIC queue q (conservation holds at quiescence:
  /// offered == nic_executed + punted + dropped once this is 0 and the
  /// event queue has drained).
  std::size_t depth(std::size_t q) const { return queues_[q]->pending.size(); }

  const NicExecUnit& unit(std::size_t q, std::size_t u) const {
    return queues_[q]->units[u]->exec;
  }

  /// Human-readable summary ("ashtool offload"); cycle fields carry the
  /// ` cyc` suffix so golden tests can normalize them.
  std::string format_summary() const;
  /// The same summary as one JSON object (cycle fields keyed `*_cyc`).
  std::string summary_json() const;

 private:
  struct Unit {
    NicExecUnit exec;
    bool busy = false;
    Unit(sim::Cpu& cpu, const NicCostModel& cost, std::size_t q,
         std::size_t u)
        : exec(cpu, cost, q, u) {}
  };
  struct NicQueue {
    std::deque<RxFrame> pending;
    std::vector<std::unique_ptr<Unit>> units;
    QueueStats stats;
  };
  struct Resident {
    RxSink* sink;
    int channel;
    std::uint32_t footprint;
    NicHook hook;
    bool fits;
  };

  Resident* find(const RxSink* sink, int channel);
  void pump(std::size_t qi);
  void dispatch(std::size_t qi, Unit& u, RxFrame f);

  sim::Node& node_;
  RxQueueSet* host_;
  NicConfig cfg_;
  std::vector<std::unique_ptr<NicQueue>> queues_;
  std::vector<Resident> residents_;
  std::uint32_t window_used_ = 0;
};

}  // namespace ash::net
