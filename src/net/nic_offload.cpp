#include "net/nic_offload.hpp"

#include <cinttypes>
#include <cstdio>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {

const char* to_string(PuntReason r) noexcept {
  switch (r) {
    case PuntReason::NotResident: return "not-resident";
    case PuntReason::HostService: return "host-service";
    case PuntReason::Fault: return "fault";
  }
  return "?";
}

NicProcessor::NicProcessor(sim::Node& node, RxQueueSet& host,
                           const NicConfig& cfg)
    : node_(node), host_(&host), cfg_(cfg) {
  if (cfg_.units_per_queue == 0) cfg_.units_per_queue = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  for (std::size_t q = 0; q < host.size(); ++q) {
    auto nq = std::make_unique<NicQueue>();
    for (std::size_t u = 0; u < cfg_.units_per_queue; ++u) {
      nq->units.push_back(std::make_unique<Unit>(node.add_nic_unit(),
                                                 cfg_.cost, q, u));
    }
    queues_.push_back(std::move(nq));
  }
}

NicProcessor::Resident* NicProcessor::find(const RxSink* sink, int channel) {
  for (Resident& r : residents_) {
    if (r.sink == sink && r.channel == channel) return &r;
  }
  return nullptr;
}

bool NicProcessor::attach(RxSink* sink, int channel, std::uint32_t footprint,
                          NicHook hook) {
  if (Resident* prev = find(sink, channel)) {
    // Re-download of an attached channel: give back the old reservation
    // before sizing the new image against the window.
    if (prev->fits) window_used_ -= prev->footprint;
    prev->footprint = footprint;
    prev->fits = footprint <= cfg_.mem_window_bytes - window_used_;
    if (prev->fits) window_used_ += footprint;
    prev->hook = prev->fits ? std::move(hook) : NicHook{};
    return prev->fits;
  }
  const bool fits = footprint <= cfg_.mem_window_bytes - window_used_;
  if (fits) window_used_ += footprint;
  // A no-fit channel is recorded too: its frames must be *counted*
  // NotResident punts, not silently host-path traffic.
  residents_.push_back(Resident{sink, channel, footprint,
                                fits ? std::move(hook) : NicHook{}, fits});
  return fits;
}

void NicProcessor::detach(RxSink* sink, int channel) {
  for (std::size_t i = 0; i < residents_.size(); ++i) {
    Resident& r = residents_[i];
    if (r.sink == sink && r.channel == channel) {
      if (r.fits) window_used_ -= r.footprint;
      residents_.erase(residents_.begin() +
                       static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool NicProcessor::resident(const RxSink* sink, int channel) const {
  for (const Resident& r : residents_) {
    if (r.sink == sink && r.channel == channel) return r.fits;
  }
  return false;
}

bool NicProcessor::offer(RxFrame frame) {
  Resident* r = find(frame.sink, frame.channel);
  // Channels never offloaded are not the NIC's business at all — plain
  // host traffic, uncounted here.
  if (r == nullptr) return false;

  const std::size_t qi = host_->config().steering.pick(
      frame.channel, frame.owner, queues_.size());
  NicQueue& q = *queues_[qi];
  ++q.stats.offered;

  if (!r->fits) {
    // Static punt, decided at steer time: the handler is host-resident,
    // so the host path runs it normally (return false). Attributed to
    // the node CPU — no execution unit was ever involved.
    ++q.stats.punted;
    ++q.stats.by_punt_reason[static_cast<std::size_t>(
        PuntReason::NotResident)];
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::OffloadPunt, node_.cpu_id(), node_.now(),
          static_cast<std::int32_t>(qi),
          static_cast<std::uint32_t>(PuntReason::NotResident),
          static_cast<std::uint32_t>(frame.channel)));
    }
    return false;
  }

  // NIC enqueue mirrors RxQueue::enqueue exactly: overflow is a device
  // drop checked before the quota, so a full NIC queue never charges the
  // tenant's occupancy account.
  RxQuota* quota = host_->config().quota;
  const bool overflow = q.pending.size() >= cfg_.queue_capacity;
  if (overflow || (quota != nullptr && !quota->try_admit(frame.owner))) {
    const RxDropReason why =
        overflow ? RxDropReason::Overflow : RxDropReason::TenantQuota;
    ++q.stats.dropped;
    if (why == RxDropReason::Overflow) {
      ++q.stats.overflow_drops;
    } else {
      ++q.stats.quota_drops;
    }
    if (quota != nullptr) quota->on_drop(frame.owner, why);
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::RxDrop, q.units[0]->exec.cpu_id(), node_.now(),
          static_cast<std::int32_t>(qi),
          frame.owner != nullptr ? frame.owner->pid() : 0,
          static_cast<std::uint32_t>(why), 0,
          static_cast<std::uint64_t>(
              frame.channel < 0 ? 0 : frame.channel)));
    }
    if (frame.sink != nullptr) frame.sink->rx_drop(frame);
    return true;
  }

  frame.enqueued_at = node_.now();
  q.pending.push_back(frame);
  pump(qi);
  return true;
}

void NicProcessor::pump(std::size_t qi) {
  NicQueue& q = *queues_[qi];
  for (auto& up : q.units) {
    if (q.pending.empty()) return;
    Unit& u = *up;
    if (u.busy) continue;
    u.busy = true;
    RxFrame f = q.pending.front();
    q.pending.pop_front();
    // Unwind off the device's deliver stack before running the handler
    // (the hook may TSend, which re-enters the wire). Same-time events
    // run FIFO, so per-channel order is preserved.
    node_.queue().schedule_at(node_.now(),
                              [this, qi, &u, f] { dispatch(qi, u, f); });
  }
}

void NicProcessor::dispatch(std::size_t qi, Unit& u, RxFrame f) {
  NicQueue& q = *queues_[qi];
  // The frame leaves the NIC queue: release the occupancy charged at
  // offer time (host-side bookkeeping, charges nothing).
  if (RxQuota* quota = host_->config().quota) quota->on_dispatched(f.owner);

  Resident* r = find(f.sink, f.channel);
  bool consumed = false;
  PuntReason why = PuntReason::HostService;
  sim::Cycles charged = 0;
  if (r == nullptr || !r->hook) {
    // Detached (revocation) while parked on-device: the handler is gone;
    // hand the frame back without running anything.
    charged = cfg_.cost.punt_handoff;
    u.exec.work(charged);
  } else {
    const NicExecResult res = r->hook(f, u.exec);
    consumed = res.consumed;
    if (!consumed) why = res.faulted ? PuntReason::Fault
                                     : PuntReason::HostService;
    charged = res.charged;
    q.stats.replies += res.replies;
  }
  q.stats.nic_cycles += charged;

  if (consumed) {
    ++q.stats.nic_executed;
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::NicExec, u.exec.cpu_id(), node_.now(),
          static_cast<std::int32_t>(qi),
          static_cast<std::uint32_t>(f.channel),
          static_cast<std::uint32_t>(u.exec.unit()), charged));
    }
    f.sink->nic_consumed(f);
  } else {
    ++q.stats.punted;
    ++q.stats.by_punt_reason[static_cast<std::size_t>(why)];
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::OffloadPunt, u.exec.cpu_id(), node_.now(),
          static_cast<std::int32_t>(qi),
          static_cast<std::uint32_t>(why),
          static_cast<std::uint32_t>(f.channel)));
    }
    // The handoff completes when the unit's charge drains; the sink then
    // charges the host-side receive pass on the steered queue's CPU and
    // delivers through the normal (fallback) path. The handler is NOT
    // run again — it already executed at most once, on the device.
    const sim::KernelCpu host_cpu = host_->queue(qi).cpu();
    u.exec.work(0, [f, host_cpu] { f.sink->nic_punt(f, host_cpu); });
  }

  // Free the unit when its backlog drains, then pull the next frame.
  u.exec.work(0, [this, qi, &u] {
    u.busy = false;
    pump(qi);
  });
}

NicProcessor::QueueStats NicProcessor::totals() const {
  QueueStats t;
  for (const auto& q : queues_) {
    const QueueStats& s = q->stats;
    t.offered += s.offered;
    t.nic_executed += s.nic_executed;
    t.punted += s.punted;
    for (std::size_t i = 0; i < t.by_punt_reason.size(); ++i) {
      t.by_punt_reason[i] += s.by_punt_reason[i];
    }
    t.dropped += s.dropped;
    t.overflow_drops += s.overflow_drops;
    t.quota_drops += s.quota_drops;
    t.replies += s.replies;
    t.nic_cycles += s.nic_cycles;
  }
  return t;
}

namespace {
void append_stats_line(std::string& out, const char* label,
                       const NicProcessor::QueueStats& s) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "  %-6s offered=%" PRIu64 " exec=%" PRIu64 " punt=%" PRIu64
      " (not-resident=%" PRIu64 " host-service=%" PRIu64 " fault=%" PRIu64
      ") drop=%" PRIu64 " replies=%" PRIu64 " device=%" PRIu64 " cyc\n",
      label, s.offered, s.nic_executed, s.punted, s.by_punt_reason[0],
      s.by_punt_reason[1], s.by_punt_reason[2], s.dropped, s.replies,
      s.nic_cycles);
  out += buf;
}

void append_stats_json(std::string& out, const NicProcessor::QueueStats& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "{\"offered\":%" PRIu64 ",\"nic_executed\":%" PRIu64
      ",\"punted\":%" PRIu64 ",\"by_punt_reason\":{\"not_resident\":%" PRIu64
      ",\"host_service\":%" PRIu64 ",\"fault\":%" PRIu64
      "},\"dropped\":%" PRIu64 ",\"overflow_drops\":%" PRIu64
      ",\"quota_drops\":%" PRIu64 ",\"replies\":%" PRIu64
      ",\"nic_cyc\":%" PRIu64 "}",
      s.offered, s.nic_executed, s.punted, s.by_punt_reason[0],
      s.by_punt_reason[1], s.by_punt_reason[2], s.dropped, s.overflow_drops,
      s.quota_drops, s.replies, s.nic_cycles);
  out += buf;
}
}  // namespace

std::string NicProcessor::format_summary() const {
  std::string out;
  char buf[256];
  std::size_t fitting = 0;
  for (const Resident& r : residents_) fitting += r.fits ? 1 : 0;
  std::snprintf(buf, sizeof buf,
                "nic offload: %zu queue(s) x %zu unit(s), window %u/%u B, "
                "%zu attached (%zu resident)\n",
                queues_.size(), cfg_.units_per_queue, window_used_,
                cfg_.mem_window_bytes, residents_.size(), fitting);
  out += buf;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "q%u:",
                  static_cast<unsigned>(i));
    append_stats_line(out, label, queues_[i]->stats);
  }
  if (queues_.size() > 1) append_stats_line(out, "total:", totals());
  return out;
}

std::string NicProcessor::summary_json() const {
  std::string out;
  char buf[256];
  std::size_t fitting = 0;
  for (const Resident& r : residents_) fitting += r.fits ? 1 : 0;
  std::snprintf(buf, sizeof buf,
                "{\"queues\":%zu,\"units_per_queue\":%zu,"
                "\"window_bytes\":%u,\"window_used\":%u,"
                "\"attached\":%zu,\"resident\":%zu,\"totals\":",
                queues_.size(), cfg_.units_per_queue, cfg_.mem_window_bytes,
                window_used_, residents_.size(), fitting);
  out += buf;
  append_stats_json(out, totals());
  out += ",\"per_queue\":[";
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i > 0) out += ',';
    append_stats_json(out, queues_[i]->stats);
  }
  out += "]}";
  return out;
}

}  // namespace ash::net
