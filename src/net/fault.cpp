#include "net/fault.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ash::net {

namespace {
/// Fixed draw-stream ids, one per fault class.
enum : std::uint64_t {
  kDrawDrop = 1,
  kDrawDup,
  kDrawReorder,
  kDrawCorrupt,
  kDrawTruncate,
  kDrawJitter,
};
}  // namespace

FaultInjector::Decision FaultInjector::inject(
    std::vector<std::uint8_t>& frame) {
  Decision d;
  if (!cfg_.enabled()) return d;

  // Every fault class gets its own RNG stream, derived from (seed, frame
  // index, class id). Decisions for one class are therefore independent
  // of which other classes are enabled and of how many draws they burn —
  // raising corrupt_prob never changes *which* frames get dropped, which
  // keeps loss-sweep runs comparable across fault mixes.
  const std::uint64_t frame_index = counters_.frames++;
  const auto draw = [&](std::uint64_t cls) {
    return util::Rng(cfg_.seed ^ (frame_index * 0x9e3779b97f4a7c15ull) ^
                     (cls << 56));
  };

  if (cfg_.drop_prob > 0 && draw(kDrawDrop).uniform() < cfg_.drop_prob) {
    ++counters_.drops;
    d.drop = true;
    return d;
  }
  if (cfg_.truncate_prob > 0 && frame.size() > 1) {
    util::Rng r = draw(kDrawTruncate);
    if (r.uniform() < cfg_.truncate_prob) {
      ++counters_.truncates;
      frame.resize(1 + r.below(frame.size() - 1));
    }
  }
  if (cfg_.corrupt_prob > 0 && !frame.empty()) {
    util::Rng r = draw(kDrawCorrupt);
    if (r.uniform() < cfg_.corrupt_prob) {
      ++counters_.corrupts;
      const std::uint64_t n =
          1 + r.below(std::max<std::uint32_t>(1, cfg_.max_corrupt_bytes));
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::size_t at = r.below(frame.size());
        // XOR with a nonzero byte so the frame always actually changes.
        frame[at] ^= static_cast<std::uint8_t>(1 + r.below(255));
      }
    }
  }
  if (cfg_.reorder_prob > 0 &&
      draw(kDrawReorder).uniform() < cfg_.reorder_prob) {
    ++counters_.reorders;
    d.extra_delay += cfg_.reorder_delay;
  }
  if (cfg_.jitter_prob > 0 && cfg_.max_jitter > 0) {
    util::Rng r = draw(kDrawJitter);
    if (r.uniform() < cfg_.jitter_prob) {
      ++counters_.jitters;
      d.extra_delay += r.below(cfg_.max_jitter + 1);
    }
  }
  if (cfg_.dup_prob > 0 && draw(kDrawDup).uniform() < cfg_.dup_prob) {
    ++counters_.dups;
    d.duplicate = true;
  }
  return d;
}

}  // namespace ash::net
