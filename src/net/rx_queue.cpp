#include "net/rx_queue.hpp"

#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {

const char* to_string(RxDropReason r) noexcept {
  switch (r) {
    case RxDropReason::Overflow: return "overflow";
    case RxDropReason::TenantQuota: return "tenant-quota";
  }
  return "?";
}

const char* to_string(FireReason r) noexcept {
  switch (r) {
    case FireReason::Immediate: return "immediate";
    case FireReason::Full: return "full";
    case FireReason::Timer: return "timer";
    case FireReason::Poll: return "poll";
  }
  return "?";
}

std::size_t SteeringPolicy::pick(int channel, const sim::Process* owner,
                                 std::size_t queues) const {
  if (queues <= 1) return 0;
  if (const auto it = pins.find(channel); it != pins.end()) {
    return it->second % queues;
  }
  switch (mode) {
    case SteerMode::Pinned:
      return 0;  // unpinned channels share queue 0
    case SteerMode::OwnerAffinity:
      if (owner != nullptr) {
        return static_cast<std::size_t>(owner->pid()) % queues;
      }
      [[fallthrough]];
    case SteerMode::ChannelHash:
      break;
  }
  // The demux id is the hardware's flow label; modulo over it is the
  // RSS indirection table with an identity hash.
  return static_cast<std::size_t>(channel < 0 ? 0 : channel) % queues;
}

int SteeringPolicy::flow_channel(std::uint32_t local_ip,
                                 std::uint32_t remote_ip,
                                 std::uint16_t local_port,
                                 std::uint16_t remote_port) noexcept {
  // FNV-1a over the 4-tuple, folded to 31 bits so the label is a valid
  // channel id (channels are non-negative ints everywhere else).
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint32_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(local_ip, 4);
  mix(remote_ip, 4);
  mix(local_port, 2);
  mix(remote_port, 2);
  const auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return static_cast<int>(folded & 0x7fffffffu);
}

RxQueue::RxQueue(sim::KernelCpu cpu, std::size_t index,
                 const CoalesceConfig& co, std::size_t capacity,
                 RxQuota* quota)
    : cpu_(cpu), index_(index), co_(co), capacity_(capacity), quota_(quota) {
  if (co_.max_frames == 0) co_.max_frames = 1;
  if (capacity_ == 0) capacity_ = 1;
}

void RxQueue::enqueue(RxFrame frame) {
  sim::Node& node = cpu_.node();
  ++enqueued_;  // counts offered frames, so drops stay in the balance
  // Overflow is checked first so a full queue never charges the tenant's
  // occupancy account (try_admit charges only when it admits).
  const bool overflow = pending_.size() >= capacity_;
  if (overflow || (quota_ != nullptr && !quota_->try_admit(frame.owner))) {
    const RxDropReason why =
        overflow ? RxDropReason::Overflow : RxDropReason::TenantQuota;
    ++dropped_;
    if (why == RxDropReason::Overflow) {
      ++overflow_drops_;
    } else {
      ++quota_drops_;
    }
    if (quota_ != nullptr) quota_->on_drop(frame.owner, why);
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::RxDrop, cpu_.cpu_id(), node.now(),
          static_cast<std::int32_t>(index_),
          frame.owner != nullptr ? frame.owner->pid() : 0,
          static_cast<std::uint32_t>(why), 0,
          static_cast<std::uint64_t>(
              frame.channel < 0 ? 0 : frame.channel)));
    }
    if (frame.sink != nullptr) frame.sink->rx_drop(frame);
    return;
  }
  frame.enqueued_at = node.now();
  pending_.push_back(frame);
  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::RxEnqueue, cpu_.cpu_id(), node.now(),
        static_cast<std::int32_t>(index_),
        static_cast<std::uint32_t>(frame.channel),
        static_cast<std::uint32_t>(pending_.size())));
  }

  if (!co_.enabled) {
    // Coalescing off: one fire per frame, charging exactly the inline
    // path's interrupt entry + driver work.
    fire(FireReason::Immediate);
    return;
  }
  while (pending_.size() >= co_.max_frames) {
    fire(poll_mode_ ? FireReason::Poll : FireReason::Full);
  }
  if (!pending_.empty() && !timer_armed_) {
    arm_timer(pending_.front().enqueued_at + co_.max_delay);
  }
}

void RxQueue::arm_timer(sim::Cycles deadline) {
  timer_armed_ = true;
  const std::uint64_t gen = ++timer_gen_;
  cpu_.node().queue().schedule_at(deadline, [this, gen] {
    if (gen != timer_gen_ || !timer_armed_) return;
    timer_armed_ = false;
    if (!pending_.empty()) fire(FireReason::Timer);
  });
}

void RxQueue::fire(FireReason reason) {
  // Any armed timer covered frames now being taken; invalidate it. If
  // frames remain after the batch, the enqueue path re-arms for the new
  // front.
  timer_armed_ = false;
  ++timer_gen_;

  std::vector<RxFrame> batch;
  const std::size_t take =
      pending_.size() < co_.max_frames ? pending_.size() : co_.max_frames;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(pending_.front());
    pending_.pop_front();
  }
  if (batch.empty()) return;

  // NAPI-style mode switch: full batches mean backlog — stay on the CPU
  // and pick up the next batch with a cheap poll pass. A timer-fired
  // (or immediate) batch means the load dropped — back to interrupts.
  if (co_.adaptive) {
    poll_mode_ = reason == FireReason::Full || reason == FireReason::Poll;
  }

  sim::Node& node = cpu_.node();
  const sim::Cycles entry = reason == FireReason::Poll
                                ? node.cost().rxq_poll_pass
                                : node.cost().interrupt_entry;
  sim::Cycles total = entry;
  for (const RxFrame& f : batch) total += f.driver_cycles;

  ++batches_;
  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::CoalesceFire, cpu_.cpu_id(), node.now(),
        static_cast<std::int32_t>(index_),
        static_cast<std::uint32_t>(batch.size()),
        static_cast<std::uint32_t>(reason), total));
  }
  cpu_.kernel_work(total, [this, batch = std::move(batch)]() mutable {
    deliver_batch(std::move(batch));
  });
}

void RxQueue::deliver_batch(std::vector<RxFrame> batch) {
  // The frames leave the queue here: record their sojourn and release the
  // per-tenant occupancy charged at enqueue (both host-side observers).
  const sim::Cycles now = cpu_.node().now();
  for (const RxFrame& f : batch) {
    sojourn_.observe(now - f.enqueued_at);
    if (quota_ != nullptr) quota_->on_dispatched(f.owner);
  }
  // Group consecutive same-(sink, channel) runs so each sink sees a
  // maximal batch for one demux point (what invoke_batch amortizes).
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].sink == batch[i].sink &&
           batch[j].channel == batch[i].channel) {
      ++j;
    }
    if (batch[i].sink != nullptr) {
      batch[i].sink->rx_batch(
          std::span<const RxFrame>(batch.data() + i, j - i), cpu_);
    }
    i = j;
  }
  dispatched_ += batch.size();
}

RxQueueSet::RxQueueSet(sim::Node& node, const Config& cfg) : cfg_(cfg) {
  if (cfg_.queues == 0) cfg_.queues = 1;
  for (std::size_t i = 0; i < cfg_.queues; ++i) {
    const sim::KernelCpu cpu =
        i == 0 ? sim::KernelCpu(node) : sim::KernelCpu(node, &node.add_rx_cpu());
    queues_.push_back(std::make_unique<RxQueue>(cpu, i, cfg_.coalesce,
                                                cfg_.capacity, cfg_.quota));
  }
}

RxQueue& RxQueueSet::steer(int channel, const sim::Process* owner) {
  return *queues_[cfg_.steering.pick(channel, owner, queues_.size())];
}

}  // namespace ash::net
