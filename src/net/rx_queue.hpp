// Multi-queue receive scaling: per-CPU RX queues, steering, coalescing.
//
// The paper runs every ASH synchronously from the driver — one interrupt
// crossing per message, all on the one CPU. That is the serial bottleneck
// the receive-scaling subsystem removes, following the modern recipe:
//
//  * steering — the NIC already demultiplexes (AN2 VC index, Ethernet
//    DPF match), so the demux *result* picks a receive queue via a
//    pluggable SteeringPolicy (RSS-style channel hash, owner-affinity,
//    or explicit pins). Steering happens on the board, so it charges no
//    CPU cycles — exactly like the AN2's hardware VC demux.
//
//  * per-CPU queues — each RxQueue runs its kernel work (driver pass +
//    batched ASH dispatch) on its own sim::KernelCpu. Queue 0 uses the
//    node's main CPU, so a 1-queue configuration keeps the paper's
//    single-CPU contention semantics; queues 1..N-1 use auxiliary rx
//    CPUs (Node::add_rx_cpu).
//
//  * coalescing — with CoalesceConfig::enabled, arrivals accumulate and
//    the queue charges ONE interrupt entry per fired batch instead of
//    one per frame. A batch fires when max_frames are pending or when
//    the oldest frame has waited max_delay (a timer armed per first
//    pending frame); with `adaptive` set the queue switches NAPI-style
//    into polling mode under load, where a batch pickup costs
//    CostModel::rxq_poll_pass instead of a full interrupt entry.
//
// With coalescing off, every enqueue fires immediately as a batch of
// one charging interrupt_entry + the frame's driver work — cycle-for-
// cycle the inline path's charge, which is what the single-queue
// equivalence tests pin.
//
// Invariants (tests/net_rxqueue_test.cpp):
//   enqueued == dispatched + pending + dropped, always;
//   no batch exceeds max_frames;
//   every frame's batch fires within max_delay of its enqueue.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"
#include "trace/metrics.hpp"

namespace ash::net {

class RxSink;

/// One steered frame parked in an RxQueue. The device fills everything at
/// steer time; `driver_cycles` is the per-frame driver/demux work the
/// batch fire charges (excluding the per-batch interrupt entry).
struct RxFrame {
  RxSink* sink = nullptr;
  int channel = -1;              // AN2 VC or Ethernet endpoint id
  std::uint32_t addr = 0;        // delivered message location
  std::uint32_t len = 0;
  std::uint32_t buf_addr = 0;    // original rx buffer (recycled on drop)
  std::uint32_t buf_len = 0;
  sim::Process* owner = nullptr;
  sim::Cycles driver_cycles = 0;
  sim::Cycles enqueued_at = 0;
};

/// Device-side consumer of a fired batch. Both NIC models implement this;
/// the queue groups consecutive same-(sink, channel) frames before
/// calling rx_batch so handlers see maximal same-channel runs.
class RxSink {
 public:
  virtual ~RxSink() = default;
  /// Deliver a run of frames (same sink and channel) in kernel context on
  /// `cpu`. Called from the batch's kernel_work completion; any further
  /// work (handler execution, copies, wakeups) is charged on `cpu` by the
  /// sink itself.
  virtual void rx_batch(std::span<const RxFrame> frames,
                        const sim::KernelCpu& cpu) = 0;
  /// Reclaim a frame the queue dropped before dispatch (overflow).
  virtual void rx_drop(const RxFrame& frame) = 0;

  // ---- smart-NIC offload (net::NicProcessor) ----
  //
  // Default no-ops so sinks that never offload (tests' FakeSinks) need
  // not care. A device that hands frames to a NicProcessor overrides
  // both.

  /// The NIC committed `frame` entirely on-device: recycle its receive
  /// buffer. Charges nothing — the device owns buffer bookkeeping.
  virtual void nic_consumed(const RxFrame& frame) { (void)frame; }
  /// The NIC punted `frame`: complete it on the host path, charging the
  /// host-side receive pass on `cpu` (the steered queue's CPU). The
  /// handler must NOT run again — it already executed (at most) once on
  /// the device; this is fallback-ring delivery only.
  virtual void nic_punt(const RxFrame& frame, const sim::KernelCpu& cpu) {
    (void)frame;
    (void)cpu;
  }
};

/// Why an RxQueue dropped a frame before dispatch (RxDrop arg1; keep in
/// sync with the namer in trace/format.cpp and QueueMetrics).
enum class RxDropReason : std::uint8_t {
  Overflow,     // the queue itself was full
  TenantQuota,  // the owning tenant exceeded its occupancy quota
};
inline constexpr std::size_t kRxDropReasonCount = 2;
const char* to_string(RxDropReason r) noexcept;

/// Per-tenant RX-queue occupancy accounting, consulted at enqueue time.
/// Implemented by core::TenantScheduler (net cannot depend on core, so the
/// interface lives here). All three calls are host-side bookkeeping: they
/// charge no simulated cycles.
///
/// Contract: try_admit() charges one unit of occupancy to `owner` when it
/// returns true; on_dispatched() releases it when the frame leaves the
/// queue. A dropped frame was never charged — enqueue short-circuits on
/// overflow before consulting the quota — so on_drop() only attributes the
/// loss to the offender, it never releases.
class RxQuota {
 public:
  virtual ~RxQuota() = default;
  /// May frame-owner `owner` park one more frame? true charges occupancy.
  virtual bool try_admit(const sim::Process* owner) = 0;
  /// A previously admitted frame left the queue (batch delivery).
  virtual void on_dispatched(const sim::Process* owner) = 0;
  /// A frame owned by `owner` was dropped at enqueue for `reason`.
  virtual void on_drop(const sim::Process* owner, RxDropReason reason) = 0;
};

enum class SteerMode : std::uint8_t {
  ChannelHash,    // RSS-style: demux id picks the queue (default)
  OwnerAffinity,  // owning process pid picks the queue
  Pinned,         // explicit channel->queue pins; unpinned go to queue 0
};

struct SteeringPolicy {
  SteerMode mode = SteerMode::ChannelHash;
  /// Explicit channel->queue pins, consulted first in every mode.
  std::unordered_map<int, std::size_t> pins;

  std::size_t pick(int channel, const sim::Process* owner,
                   std::size_t queues) const;

  /// RSS-style flow label for a TCP/UDP 4-tuple (FNV-1a, folded to a
  /// non-negative int). Both the receive path and a connection table can
  /// hash with this, so a flow's frames steer to the queue that owns the
  /// flow's table shard.
  static int flow_channel(std::uint32_t local_ip, std::uint32_t remote_ip,
                          std::uint16_t local_port,
                          std::uint16_t remote_port) noexcept;
};

struct CoalesceConfig {
  /// Off (default): one fire — one interrupt charge — per frame, the
  /// paper's per-message path.
  bool enabled = false;
  std::uint32_t max_frames = 8;
  sim::Cycles max_delay = sim::us(50.0);
  /// NAPI-style: after a full batch the queue stays in polling mode
  /// (cheap rxq_poll_pass per batch) until a timer-drained batch shows
  /// the load has dropped.
  bool adaptive = false;
};

/// Why a batch fired (CoalesceFire arg1; keep in sync with the namer in
/// trace/format.cpp).
enum class FireReason : std::uint8_t { Immediate, Full, Timer, Poll };
inline constexpr std::size_t kFireReasonCount = 4;
const char* to_string(FireReason r) noexcept;

class RxQueue {
 public:
  RxQueue(sim::KernelCpu cpu, std::size_t index, const CoalesceConfig& co,
          std::size_t capacity, RxQuota* quota = nullptr);

  void enqueue(RxFrame frame);

  std::size_t index() const noexcept { return index_; }
  const sim::KernelCpu& cpu() const noexcept { return cpu_; }
  bool polling() const noexcept { return poll_mode_; }
  std::size_t depth() const noexcept { return pending_.size(); }

  // Conservation counters: enqueued == dispatched + depth + dropped,
  // and dropped == overflow_drops + quota_drops.
  std::uint64_t enqueued() const noexcept { return enqueued_; }
  std::uint64_t dispatched() const noexcept { return dispatched_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t overflow_drops() const noexcept { return overflow_drops_; }
  std::uint64_t quota_drops() const noexcept { return quota_drops_; }
  std::uint64_t batches() const noexcept { return batches_; }

  /// Enqueue-to-delivery delay (cycles) of every dispatched frame — the
  /// queueing component of tail latency. Host-side observer: recording it
  /// charges nothing.
  const trace::Histogram& sojourn() const noexcept { return sojourn_; }

 private:
  void fire(FireReason reason);
  void arm_timer(sim::Cycles deadline);
  void deliver_batch(std::vector<RxFrame> batch);

  sim::KernelCpu cpu_;
  std::size_t index_;
  CoalesceConfig co_;
  std::size_t capacity_;
  RxQuota* quota_ = nullptr;
  std::deque<RxFrame> pending_;
  bool timer_armed_ = false;
  std::uint64_t timer_gen_ = 0;
  bool poll_mode_ = false;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t overflow_drops_ = 0;
  std::uint64_t quota_drops_ = 0;
  std::uint64_t batches_ = 0;
  trace::Histogram sojourn_;
};

/// The set of receive queues a device steers into. Queue 0 runs on the
/// node's main CPU; queues 1..N-1 each get an auxiliary rx CPU.
class RxQueueSet {
 public:
  struct Config {
    std::size_t queues = 1;
    SteeringPolicy steering;
    CoalesceConfig coalesce;
    /// Per-queue pending-frame cap; overflow frames are dropped back to
    /// the device (counted in RxQueue::dropped, attributed per owner via
    /// `quota` and the RxDrop trace event).
    std::size_t capacity = 256;
    /// Optional per-tenant occupancy accounting, consulted on every
    /// enqueue (core::TenantScheduler implements this).
    RxQuota* quota = nullptr;
  };

  RxQueueSet(sim::Node& node, const Config& cfg);

  std::size_t size() const noexcept { return queues_.size(); }
  RxQueue& queue(std::size_t i) noexcept { return *queues_[i]; }
  const Config& config() const noexcept { return cfg_; }

  /// The queue the policy steers (channel, owner) to.
  RxQueue& steer(int channel, const sim::Process* owner);

 private:
  Config cfg_;
  std::vector<std::unique_ptr<RxQueue>> queues_;
};

}  // namespace ash::net
