#include "net/an2_switch.hpp"

#include <stdexcept>

namespace ash::net {

int An2Switch::attach(An2Device& dev) {
  dev.attach_switch(*this);
  return static_cast<int>(ports_.size() - 1);
}

void An2Switch::add_circuit(int in_port, int in_vc, int out_port,
                            int out_vc) {
  if (in_port < 0 || static_cast<std::size_t>(in_port) >= ports_.size() ||
      out_port < 0 || static_cast<std::size_t>(out_port) >= ports_.size()) {
    throw std::out_of_range("An2Switch: bad port");
  }
  circuits_[{in_port, in_vc}] = {out_port, out_vc};
}

void An2Switch::forward(int in_port, int dst_vc,
                        std::vector<std::uint8_t> bytes) {
  const auto it = circuits_.find({in_port, dst_vc});
  if (it == circuits_.end()) {
    ++unrouted_;
    return;
  }
  const auto [out_port, out_vc] = it->second;
  An2Device* out = ports_[static_cast<std::size_t>(out_port)];
  sim_.queue().schedule_in(config_.hop_latency,
                           [out, out_vc = out_vc, bytes =
                                std::move(bytes)]() mutable {
                             out->deliver(out_vc, std::move(bytes));
                           });
}

}  // namespace ash::net
