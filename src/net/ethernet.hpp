// The 10 Mb/s Ethernet interface (Section IV-A).
//
// Modelled after the DECstation's LANCE as the paper characterizes it:
//  * the device DMAs frames into a small pool of kernel receive buffers —
//    and stripes them: "our Ethernet DMA engine stripes an N-byte
//    contiguous packet into a 2N-byte buffer, alternating 16 bytes of data
//    and 16 bytes of padding" (Section III-C);
//  * buffers are scarce, so "a message must not stay in them very long. In
//    this case, at least one copy is always necessary" (Section V-A1) —
//    the kernel (or an ASH) must copy the frame out promptly or new frames
//    are dropped;
//  * demultiplexing runs DPF over the frame in the interrupt handler; the
//    winning endpoint's receive path (default copy-out, or its ASH hook)
//    then runs in kernel context.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dpf/dpf.hpp"
#include "net/an2.hpp"  // RxDesc
#include "net/fault.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"

namespace ash::net {

struct EthernetConfig {
  double bandwidth_mbits_per_sec = 10.0;
  /// Preamble + interframe gap, charged per frame on the wire.
  std::uint32_t framing_bytes = 20;
  std::uint32_t min_frame_bytes = 64;
  std::uint32_t max_frame_bytes = 1518;
  /// One-way latency through the (thin) wire + board.
  sim::Cycles one_way_latency = sim::us(10.0);
  /// Number of kernel receive buffers (the scarce on-board/ring pool).
  std::size_t rx_buffers = 8;
  /// Interrupt-handler driver work per frame, beyond DPF and the copy
  /// (the LANCE is a slow device to program over the TURBOchannel).
  sim::Cycles rx_driver_work = sim::us(12.0);
  sim::Cycles tx_kernel_work = sim::us(20.0);
  /// Use the compiled DPF engine (true) or the interpreted baseline.
  bool compiled_dpf = true;
  /// Injected faults for protocol testing (defaults: a perfect link).
  /// Same surface as An2Config::faults — one injector per link direction.
  FaultConfig faults;
};

class EthernetDevice : public RxSink {
 public:
  /// Kernel receive buffers live in the node's kernel area (segment 0).
  /// Each holds one striped frame (2 x max_frame_bytes).
  EthernetDevice(sim::Node& node, const EthernetConfig& config = {});

  void connect(EthernetDevice& peer);

  sim::Node& node() noexcept { return node_; }
  const EthernetConfig& config() const noexcept { return config_; }

  // ---- endpoints ----

  /// A frame, staged in a kernel buffer, offered to a kernel hook. `addr`
  /// points at the STRIPED kernel buffer (use memops::copy_destripe or a
  /// striping-aware DILP loop to move it). The hook must finish with the
  /// data copied out; the buffer is recycled when it returns.
  struct RxEvent {
    int endpoint;
    RxDesc striped;        // addr of striped kernel buffer, len = frame len
    sim::Process* owner;
  };
  using KernelHook = std::function<bool(const RxEvent&)>;

  /// Batched form for the multi-queue receive path: all events share one
  /// endpoint; consumed[i] set per frame means the hook copied it out and
  /// the kernel buffer can be recycled (unset frames take the default
  /// copy-out path). Runs on the queue's CPU and charges there.
  using KernelBatchHook = std::function<void(
      std::span<const RxEvent>, const sim::KernelCpu&, bool* consumed)>;

  /// Attach an endpoint: frames matching `filter` (DPF) belong to `owner`.
  /// Returns the endpoint id.
  int attach(sim::Process& owner, dpf::Filter filter);

  /// Supply an app-memory buffer the kernel default path copies frames
  /// into (destriped).
  void supply_buffer(int endpoint, std::uint32_t addr, std::uint32_t len);

  /// Poll the notification ring: pop the next copied-out arrival, if any.
  /// Free — the caller charges poll-iteration cycles itself, with the
  /// same check-then-charge contract as An2Device::poll: poll_iteration
  /// only after an empty poll, receive-processing overhead instead of
  /// (never in addition to) a poll charge on the iteration that finds a
  /// frame. Pinned cycle-exactly by tests/net_poll_charge_test.cpp.
  std::optional<RxDesc> poll(int endpoint);
  sim::WaitChannel& arrival_channel(int endpoint);
  void set_interrupt_mode(int endpoint, bool on);
  /// Install/remove the kernel receive hook. Passing a null hook clears
  /// it (detach/revocation); frames then take the default copy-out path.
  void set_kernel_hook(int endpoint, KernelHook hook);
  bool has_kernel_hook(int endpoint) const {
    return static_cast<bool>(ep_at(endpoint).hook);
  }

  /// Install/remove the batched kernel hook (multi-queue path); takes
  /// priority over the per-frame hook for steered batches.
  void set_kernel_batch_hook(int endpoint, KernelBatchHook hook);

  /// Steer matched frames through a multi-queue receive set; nullptr
  /// (default) restores the inline path. Unmatched frames are always
  /// counted and dropped inline (there is no endpoint to steer by).
  void set_rx_queues(RxQueueSet* queues) noexcept { rxq_ = queues; }
  RxQueueSet* rx_queues() const noexcept { return rxq_; }

  /// Put a smart-NIC handler processor in front of the queue set (same
  /// contract as An2Device::set_nic): matched frames for NIC-resident
  /// endpoints are offered to it at steer time.
  void set_nic(NicProcessor* nic) noexcept { nic_ = nic; }
  NicProcessor* nic() const noexcept { return nic_; }

  // RxSink: batch delivery from an RxQueue (kernel context, queue CPU).
  void rx_batch(std::span<const RxFrame> frames,
                const sim::KernelCpu& cpu) override;
  void rx_drop(const RxFrame& frame) override;
  void nic_consumed(const RxFrame& frame) override;
  void nic_punt(const RxFrame& frame, const sim::KernelCpu& cpu) override;
  void return_buffer(int endpoint, std::uint32_t addr, std::uint32_t len);

  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t unmatched() const noexcept { return unmatched_; }

  /// Per-fault-class event counts for this device's transmit direction.
  const FaultCounters& fault_counters() const noexcept {
    return faults_.counters();
  }
  /// Swap the fault schedule mid-run (loss sweeps, link-heal tests).
  void set_faults(const FaultConfig& faults) { faults_.set_config(faults); }

  /// Kernel receive buffers currently held by in-flight receive paths.
  /// Zero once all deliveries have drained — the fuzz harness's
  /// kernel-buffer leak check.
  std::size_t kernel_bufs_in_use() const noexcept {
    std::size_t n = 0;
    for (const KernelBuf& kb : kernel_bufs_) n += kb.in_use ? 1 : 0;
    return n;
  }

  // ---- transmit ----

  bool send_from(std::uint32_t addr, std::uint32_t len);
  bool send(std::span<const std::uint8_t> bytes);
  sim::Cycles tx_wire_cycles(std::uint32_t len) const;

 private:
  struct Endpoint {
    sim::Process* owner = nullptr;
    std::deque<RxDesc> free_bufs;
    std::deque<RxDesc> notify_ring;
    sim::WaitChannel arrival;
    KernelHook hook;
    KernelBatchHook batch_hook;
    bool interrupt_mode = false;
  };

  struct KernelBuf {
    std::uint32_t addr;
    bool in_use = false;
  };

  Endpoint& ep_at(int id);
  const Endpoint& ep_at(int id) const;
  void deliver(std::vector<std::uint8_t> bytes);
  void release_kernel_buf(std::uint32_t addr);

  sim::Node& node_;
  EthernetConfig config_;
  EthernetDevice* peer_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::vector<KernelBuf> kernel_bufs_;
  RxQueueSet* rxq_ = nullptr;
  NicProcessor* nic_ = nullptr;
  std::unique_ptr<dpf::Engine> demux_;
  sim::Cycles tx_free_at_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t unmatched_ = 0;
  FaultInjector faults_;
};

}  // namespace ash::net
