// The AN2 ATM network interface (Section IV-A).
//
// Digital's AN2 is modelled the way the paper uses it:
//  * processes bind to a virtual circuit and supply pinned receive buffers
//    from their own memory; the device DMAs arriving payloads directly
//    into those buffers ("can DMA messages into any location in physical
//    memory" — the zero-copy path);
//  * kernel and user share a per-VC notification ring: a polling process
//    discovers arrivals by reading the ring, with no kernel involvement;
//  * alternatively a VC can run in interrupt mode (blocked owner is woken
//    by driver work) or have a kernel receive hook installed — the hook is
//    how the ASH system attaches ("ASHs are invoked directly from the AN2
//    device driver, just after it performs a software cache flush of the
//    message location");
//  * link timing: fixed one-way board/switch latency plus serialization at
//    the payload rate plus a fixed per-packet DMA/cell-framing overhead —
//    calibrated so a 4-byte hardware round trip costs the paper's 96 us
//    and a 4 KB train tops out near 16.1 MB/s (Fig. 3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "net/fault.hpp"
#include "net/rx_queue.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"

namespace ash::net {

class An2Switch;
class NicProcessor;

/// Where a received message landed in the owner's memory.
struct RxDesc {
  std::uint32_t addr = 0;
  std::uint32_t len = 0;
};

struct An2Config {
  /// Maximum payload rate ("about 16.8 Mbytes/s per link").
  double bandwidth_mbytes_per_sec = 16.8;
  /// Fixed one-way hardware latency (boards + switch + DMA). Together
  /// with per_packet_overhead this gives a tiny message a one-way
  /// hardware cost of ~48 us — the paper's 96 us hardware RTT.
  sim::Cycles one_way_latency = sim::us(37.8);
  /// Per-packet fixed transmit overhead (DMA setup, AAL5 framing) — this
  /// is what keeps a 4 KB train at 16.1 rather than 16.8 MB/s (Fig. 3).
  sim::Cycles per_packet_overhead = sim::us(10.0);
  /// Driver work per received packet when the kernel is involved
  /// (interrupt entry handled separately via CostModel).
  sim::Cycles rx_driver_work = sim::us(1.0);
  /// Software cache flush of the message location after DMA.
  sim::Cycles rx_cache_flush = sim::us(0.5);
  /// Kernel-side transmit work (descriptor + board register writes).
  sim::Cycles tx_kernel_work = sim::us(4.0);
  /// Injected faults for protocol testing (defaults: a perfect link).
  /// Applied on this device's transmit side, so each link direction has
  /// its own deterministic fault schedule.
  FaultConfig faults;
};

class An2Device : public RxSink {
 public:
  An2Device(sim::Node& node, const An2Config& config = {});

  /// Connect both directions to a peer device (point-to-point). May be
  /// called once per device pair; exclusive with attach_switch().
  void connect(An2Device& peer);

  /// Attach this device to a switch instead of a point-to-point peer;
  /// sends are then routed by the switch's circuit table.
  void attach_switch(An2Switch& sw);

  sim::Node& node() noexcept { return node_; }
  const An2Config& config() const noexcept { return config_; }

  // ---- virtual circuits ----

  /// Event delivered to a kernel receive hook (the ASH attachment point).
  struct RxEvent {
    int vc;
    RxDesc desc;
    sim::Process* owner;
  };
  /// Runs in kernel context right after the driver's cache flush. Return
  /// true if the message was consumed; false falls back to the normal
  /// notification path.
  using KernelHook = std::function<bool(const RxEvent&)>;

  /// Batched form, used by the multi-queue receive path: all events share
  /// one VC; the hook sets consumed[i] per message (unset entries fall
  /// back to the notification path). Runs on the queue's CPU and charges
  /// its own execution there.
  using KernelBatchHook = std::function<void(
      std::span<const RxEvent>, const sim::KernelCpu&, bool* consumed)>;

  /// Bind a VC owned by `owner`. Returns the VC id.
  int bind_vc(sim::Process& owner);

  /// Supply a pinned receive buffer (within the owner's memory).
  void supply_buffer(int vc, std::uint32_t addr, std::uint32_t len);

  /// Poll the notification ring: pop the next arrival, if any. Free — the
  /// caller charges poll-iteration cycles itself, and the contract is
  /// check-then-charge: charge poll_iteration only AFTER an empty poll,
  /// and charge the receive-processing overhead (an2_user_recv_overhead)
  /// INSTEAD of — never in addition to — a poll_iteration on the
  /// iteration that finds a frame. A frame arriving mid-iteration is
  /// discovered by the next check at no extra poll charge; the cycle-
  /// exact expectation is pinned by tests/net_poll_charge_test.cpp.
  std::optional<RxDesc> poll(int vc);

  /// Channel notified on arrivals in interrupt mode (token semantics).
  sim::WaitChannel& arrival_channel(int vc);

  /// Interrupt mode: arrivals perform kernel work and wake the owner.
  /// Off (default): pure polling, no kernel involvement per packet.
  void set_interrupt_mode(int vc, bool on);

  /// Install/remove the kernel receive hook for a VC. Passing a null
  /// hook clears it (detach/revocation); arrivals then take the normal
  /// notification path with no kernel involvement.
  void set_kernel_hook(int vc, KernelHook hook);
  bool has_kernel_hook(int vc) const {
    return static_cast<bool>(vc_at(vc).hook);
  }

  /// Install/remove the batched kernel hook (multi-queue path). When a
  /// queue set is attached and a batch hook is present it takes priority
  /// over the per-frame hook for steered batches; null clears it.
  void set_kernel_batch_hook(int vc, KernelBatchHook hook);

  /// Steer arrivals through a multi-queue receive set instead of the
  /// inline per-frame path; nullptr (default) restores the inline path.
  /// The set must outlive the device's traffic.
  void set_rx_queues(RxQueueSet* queues) noexcept { rxq_ = queues; }
  RxQueueSet* rx_queues() const noexcept { return rxq_; }

  /// Put a smart-NIC handler processor in front of the queue set: frames
  /// for NIC-resident VCs are offered to it at steer time (before the
  /// host RxQueueSet). Requires set_rx_queues; nullptr restores the pure
  /// host path. The processor must outlive the device's traffic.
  void set_nic(NicProcessor* nic) noexcept { nic_ = nic; }
  NicProcessor* nic() const noexcept { return nic_; }

  // RxSink: batch delivery from an RxQueue (kernel context, queue CPU).
  void rx_batch(std::span<const RxFrame> frames,
                const sim::KernelCpu& cpu) override;
  void rx_drop(const RxFrame& frame) override;
  void nic_consumed(const RxFrame& frame) override;
  void nic_punt(const RxFrame& frame, const sim::KernelCpu& cpu) override;

  /// Return a consumed buffer to the free ring (its full original length).
  void return_buffer(int vc, std::uint32_t addr, std::uint32_t len);

  std::size_t free_buffers(int vc) const;
  std::uint64_t drops(int vc) const;

  /// Per-fault-class event counts for this device's transmit direction.
  const FaultCounters& fault_counters() const noexcept {
    return faults_.counters();
  }
  /// Swap the fault schedule mid-run (loss sweeps, link-heal tests).
  void set_faults(const FaultConfig& faults) { faults_.set_config(faults); }

  // ---- transmit ----

  /// Send `len` bytes at `addr` in this node's memory to the peer's VC
  /// `dst_vc`. CPU cost is the caller's business (tx_kernel_work is
  /// exposed for that); this accounts wire time only. Returns false if
  /// not connected or the range is bad.
  bool send_from(int dst_vc, std::uint32_t addr, std::uint32_t len);

  /// Send a byte string (kernel-originated control traffic, tests).
  bool send(int dst_vc, std::span<const std::uint8_t> bytes);

  /// Serialization + fixed per-packet cost for `len` bytes (for benches).
  sim::Cycles tx_wire_cycles(std::uint32_t len) const;

 private:
  struct Vc {
    sim::Process* owner = nullptr;
    std::deque<RxDesc> free_bufs;
    std::deque<RxDesc> notify_ring;
    sim::WaitChannel arrival;
    KernelHook hook;
    KernelBatchHook batch_hook;
    bool interrupt_mode = false;
    std::uint64_t drops = 0;
  };

  friend class An2Switch;

  Vc& vc_at(int vc);
  const Vc& vc_at(int vc) const;
  void deliver(int vc, std::vector<std::uint8_t> bytes);

  sim::Node& node_;
  An2Config config_;
  An2Device* peer_ = nullptr;
  An2Switch* switch_ = nullptr;
  int switch_port_ = -1;
  std::vector<Vc> vcs_;
  RxQueueSet* rxq_ = nullptr;
  NicProcessor* nic_ = nullptr;
  sim::Cycles tx_free_at_ = 0;  // link serialization pipeline
  FaultInjector faults_;
};

}  // namespace ash::net
