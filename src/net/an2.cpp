#include "net/an2.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "net/an2_switch.hpp"
#include "net/nic_offload.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {

An2Device::An2Device(sim::Node& node, const An2Config& config)
    : node_(node), config_(config), faults_(config.faults) {}

void An2Device::connect(An2Device& peer) {
  if (peer_ != nullptr || peer.peer_ != nullptr || switch_ != nullptr ||
      peer.switch_ != nullptr) {
    throw std::logic_error("An2Device: already connected");
  }
  peer_ = &peer;
  peer.peer_ = this;
}

void An2Device::attach_switch(An2Switch& sw) {
  if (peer_ != nullptr || switch_ != nullptr) {
    throw std::logic_error("An2Device: already connected");
  }
  switch_ = &sw;
  switch_port_ = static_cast<int>(sw.ports_.size());
  sw.ports_.push_back(this);
}

int An2Device::bind_vc(sim::Process& owner) {
  vcs_.emplace_back();
  vcs_.back().owner = &owner;
  return static_cast<int>(vcs_.size() - 1);
}

An2Device::Vc& An2Device::vc_at(int vc) {
  if (vc < 0 || static_cast<std::size_t>(vc) >= vcs_.size()) {
    throw std::out_of_range("An2Device: bad vc");
  }
  return vcs_[static_cast<std::size_t>(vc)];
}

const An2Device::Vc& An2Device::vc_at(int vc) const {
  return const_cast<An2Device*>(this)->vc_at(vc);
}

void An2Device::supply_buffer(int vc, std::uint32_t addr, std::uint32_t len) {
  Vc& v = vc_at(vc);
  if (node_.mem(addr, len) == nullptr) {
    throw std::out_of_range("An2Device: buffer outside node memory");
  }
  v.free_bufs.push_back({addr, len});
}

std::optional<RxDesc> An2Device::poll(int vc) {
  Vc& v = vc_at(vc);
  if (v.notify_ring.empty()) return std::nullopt;
  const RxDesc d = v.notify_ring.front();
  v.notify_ring.pop_front();
  return d;
}

sim::WaitChannel& An2Device::arrival_channel(int vc) {
  return vc_at(vc).arrival;
}

void An2Device::set_interrupt_mode(int vc, bool on) {
  vc_at(vc).interrupt_mode = on;
}

void An2Device::set_kernel_hook(int vc, KernelHook hook) {
  vc_at(vc).hook = std::move(hook);
}

void An2Device::set_kernel_batch_hook(int vc, KernelBatchHook hook) {
  vc_at(vc).batch_hook = std::move(hook);
}

void An2Device::return_buffer(int vc, std::uint32_t addr, std::uint32_t len) {
  supply_buffer(vc, addr, len);
}

std::size_t An2Device::free_buffers(int vc) const {
  return vc_at(vc).free_bufs.size();
}

std::uint64_t An2Device::drops(int vc) const { return vc_at(vc).drops; }

sim::Cycles An2Device::tx_wire_cycles(std::uint32_t len) const {
  const double cycles_per_byte =
      sim::kCpuMhz / config_.bandwidth_mbytes_per_sec;
  return config_.per_packet_overhead +
         static_cast<sim::Cycles>(cycles_per_byte * len);
}

bool An2Device::send_from(int dst_vc, std::uint32_t addr, std::uint32_t len) {
  const std::uint8_t* p = node_.mem(addr, len);
  if (p == nullptr) return false;
  return send(dst_vc, {p, len});
}

bool An2Device::send(int dst_vc, std::span<const std::uint8_t> bytes) {
  if (peer_ == nullptr && switch_ == nullptr) return false;

  // Link serialization pipelines behind earlier packets.
  const sim::Cycles now = node_.now();
  const sim::Cycles start = now > tx_free_at_ ? now : tx_free_at_;
  tx_free_at_ = start + tx_wire_cycles(static_cast<std::uint32_t>(bytes.size()));
  const sim::Cycles arrive = tx_free_at_ + config_.one_way_latency;

  std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
  const FaultInjector::Decision fault = faults_.inject(copy);
  if (fault.drop) return true;  // vanished on the wire

  // One delivery closure serves the switched and point-to-point paths, so
  // every fault class (including duplication) behaves identically on both.
  const auto dispatch = [this, dst_vc](sim::Cycles at,
                                       std::vector<std::uint8_t> frame) {
    if (switch_ != nullptr) {
      An2Switch* sw = switch_;
      const int port = switch_port_;
      node_.queue().schedule_at(at, [sw, port, dst_vc,
                                     frame = std::move(frame)]() mutable {
        sw->forward(port, dst_vc, std::move(frame));
      });
    } else {
      An2Device* peer = peer_;
      node_.queue().schedule_at(at, [peer, dst_vc,
                                     frame = std::move(frame)]() mutable {
        peer->deliver(dst_vc, std::move(frame));
      });
    }
  };

  if (fault.duplicate) {
    dispatch(arrive + fault.extra_delay + faults_.config().dup_delay, copy);
  }
  dispatch(arrive + fault.extra_delay, std::move(copy));
  return true;
}

void An2Device::deliver(int vc_id, std::vector<std::uint8_t> bytes) {
  if (vc_id < 0 || static_cast<std::size_t>(vc_id) >= vcs_.size()) return;
  Vc& vc = vcs_[static_cast<std::size_t>(vc_id)];

  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::FrameArrival, node_.cpu_id(), node_.now(), vc_id,
        static_cast<std::uint32_t>(bytes.size()),
        static_cast<std::uint32_t>(trace::NicKind::An2)));
    // On the AN2, the VC identifier IS the demux decision (hardware
    // steering, no classifier walk): zero nodes visited, fixed cost.
    trace::global().emit(trace::make_event(
        trace::EventType::DemuxDecision, node_.cpu_id(), node_.now(), vc_id,
        0, static_cast<std::uint32_t>(trace::NicKind::An2),
        node_.cost().demux_an2));
  }

  if (vc.free_bufs.empty()) {
    ++vc.drops;
    return;
  }
  RxDesc buf = vc.free_bufs.front();
  if (bytes.size() > buf.len) {
    // Message larger than the supplied buffer: the real board would scatter
    // across buffers; we model single-buffer VCs and drop oversize frames.
    ++vc.drops;
    return;
  }
  vc.free_bufs.pop_front();

  // DMA: payload lands in the owner's pinned memory; the cached copies of
  // those lines are now stale. Zero-length messages are legal on the VC
  // (an empty AAL5 payload) and must not touch memory at all.
  if (!bytes.empty()) {
    std::uint8_t* dst =
        node_.mem(buf.addr, static_cast<std::uint32_t>(bytes.size()));
    std::memcpy(dst, bytes.data(), bytes.size());
    node_.dcache().invalidate_range(buf.addr,
                                    static_cast<std::uint32_t>(bytes.size()));
  }
  const RxDesc desc{buf.addr, static_cast<std::uint32_t>(bytes.size())};

  if (rxq_ != nullptr) {
    // Multi-queue path: the board's VC demux result steers the frame to a
    // receive queue (free, hardware steering); all kernel work — the
    // per-frame driver/demux/flush pass and hook or notification delivery
    // — happens when the queue's batch fires, on the queue's CPU.
    RxFrame f;
    f.sink = this;
    f.channel = vc_id;
    f.addr = desc.addr;
    f.len = desc.len;
    f.buf_addr = buf.addr;
    f.buf_len = buf.len;
    f.owner = vc.owner;
    f.driver_cycles = config_.rx_driver_work + node_.cost().demux_an2 +
                      config_.rx_cache_flush;
    // Smart-NIC offload: frames for NIC-resident VCs never reach a host
    // queue — the processor runs the handler on a device execution unit
    // (or counts a punt/drop). false means "host path, as usual".
    if (nic_ != nullptr && nic_->offer(f)) return;
    rxq_->steer(vc_id, vc.owner).enqueue(f);
    return;
  }

  if (vc.hook) {
    // Kernel receive hook (the ASH path): interrupt entry + driver work +
    // cache flush, then the hook runs in kernel context. The hook itself
    // charges its own execution (node.kernel_work) as needed. When the
    // handler consumes the message, the kernel recycles the receive buffer
    // immediately (the handler has copied out what it wanted) — otherwise
    // the VC would starve after rx_buffers consumed messages.
    const sim::Cycles driver = node_.cost().interrupt_entry +
                               config_.rx_driver_work +
                               node_.cost().demux_an2 + config_.rx_cache_flush;
    node_.kernel_work(driver, [this, vc_id, desc, buf] {
      Vc& v = vcs_[static_cast<std::size_t>(vc_id)];
      const RxEvent ev{vc_id, desc, v.owner};
      if (v.hook && v.hook(ev)) {
        v.free_bufs.push_back(buf);  // consumed: recycle
        return;
      }
      // ASH-attached VC falling back to the normal delivery path (handler
      // denied, aborted without consuming, or detached mid-flight).
      if (trace::enabled()) {
        trace::global().emit(trace::make_event(
            trace::EventType::UpcallFallback, node_.cpu_id(), node_.now(),
            vc_id, static_cast<std::uint32_t>(trace::NicKind::An2)));
      }
      v.notify_ring.push_back(desc);
      v.arrival.notify(/*boost=*/true);
    });
    return;
  }

  // Normal path: the board posts the notification ring entry directly
  // (visible to a polling process immediately, no kernel work).
  vc.notify_ring.push_back(desc);
  if (vc.interrupt_mode) {
    const sim::Cycles driver = node_.cost().interrupt_entry +
                               config_.rx_driver_work +
                               node_.cost().demux_an2 + node_.cost().wakeup;
    node_.kernel_work(driver, [this, vc_id] {
      Vc& v = vcs_[static_cast<std::size_t>(vc_id)];
      v.arrival.notify(/*boost=*/true);
    });
  } else {
    // Pure polling: no CPU involvement. Still post a token so coroutines
    // that mix poll-and-wait do not race.
    vc.arrival.notify(/*boost=*/false);
  }
}

void An2Device::rx_batch(std::span<const RxFrame> frames,
                         const sim::KernelCpu& cpu) {
  if (frames.empty()) return;
  // The queue groups by (sink, channel): all frames share one VC. Hooks
  // are re-checked here, at delivery time, because the supervisor may
  // have revoked them while the batch sat in the queue.
  const int vc_id = frames.front().channel;
  Vc& v = vcs_[static_cast<std::size_t>(vc_id)];

  if (v.batch_hook) {
    std::vector<RxEvent> evs;
    evs.reserve(frames.size());
    for (const RxFrame& f : frames) {
      evs.push_back(RxEvent{vc_id, RxDesc{f.addr, f.len}, f.owner});
    }
    std::unique_ptr<bool[]> consumed(new bool[frames.size()]());
    v.batch_hook(evs, cpu, consumed.get());
    bool any_fallback = false;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const RxFrame& f = frames[i];
      if (consumed[i]) {
        v.free_bufs.push_back(RxDesc{f.buf_addr, f.buf_len});
        continue;
      }
      if (trace::enabled()) {
        trace::global().emit(trace::make_event(
            trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
            vc_id, static_cast<std::uint32_t>(trace::NicKind::An2)));
      }
      v.notify_ring.push_back(RxDesc{f.addr, f.len});
      any_fallback = true;
    }
    if (any_fallback) v.arrival.notify(/*boost=*/true);
    return;
  }

  for (const RxFrame& f : frames) {
    const RxDesc desc{f.addr, f.len};
    if (v.hook) {
      // Per-frame hook with no batch form installed: run it per message.
      const RxEvent ev{vc_id, desc, f.owner};
      if (v.hook(ev)) {
        v.free_bufs.push_back(RxDesc{f.buf_addr, f.buf_len});
        continue;
      }
      if (trace::enabled()) {
        trace::global().emit(trace::make_event(
            trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
            vc_id, static_cast<std::uint32_t>(trace::NicKind::An2)));
      }
    }
    v.notify_ring.push_back(desc);
  }
  if (v.interrupt_mode) {
    // One coalesced wakeup per batch (vs one per frame inline).
    cpu.kernel_work(node_.cost().wakeup, [this, vc_id] {
      vcs_[static_cast<std::size_t>(vc_id)].arrival.notify(/*boost=*/true);
    });
  } else {
    v.arrival.notify(/*boost=*/false);
  }
}

void An2Device::rx_drop(const RxFrame& frame) {
  Vc& v = vcs_[static_cast<std::size_t>(frame.channel)];
  v.free_bufs.push_back(RxDesc{frame.buf_addr, frame.buf_len});
  ++v.drops;
}

void An2Device::nic_consumed(const RxFrame& frame) {
  // The handler committed on-device: the board recycles the pinned
  // receive buffer itself, no host cycles.
  Vc& v = vcs_[static_cast<std::size_t>(frame.channel)];
  v.free_bufs.push_back(RxDesc{frame.buf_addr, frame.buf_len});
}

void An2Device::nic_punt(const RxFrame& frame, const sim::KernelCpu& cpu) {
  // The NIC handed the frame back: charge the host's normal per-frame
  // receive pass on the steered queue's CPU, then deliver through the
  // fallback notification path. The handler is NOT re-run — it already
  // executed (at most) once on the device.
  const int vc_id = frame.channel;
  const sim::Cycles host_pass =
      cpu.node().cost().interrupt_entry + frame.driver_cycles;
  cpu.kernel_work(host_pass, [this, vc_id, frame, cpu] {
    Vc& v = vcs_[static_cast<std::size_t>(vc_id)];
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
          vc_id, static_cast<std::uint32_t>(trace::NicKind::An2)));
    }
    v.notify_ring.push_back(RxDesc{frame.addr, frame.len});
    v.arrival.notify(/*boost=*/true);
  });
}

}  // namespace ash::net
