#include "net/ethernet.hpp"

#include <cstring>
#include <stdexcept>

#include "net/nic_offload.hpp"
#include "sim/kernel.hpp"
#include "sim/memops.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ash::net {

namespace {
/// Kernel receive buffers are carved from the node's kernel area
/// (segment 0, below the first process segment), starting here.
constexpr std::uint32_t kKernelBufBase = 0x8000;
}  // namespace

EthernetDevice::EthernetDevice(sim::Node& node, const EthernetConfig& config)
    : node_(node), config_(config), faults_(config.faults) {
  if (config_.compiled_dpf) {
    demux_ = std::make_unique<dpf::CompiledEngine>();
  } else {
    demux_ = std::make_unique<dpf::InterpretedEngine>();
  }
  const std::uint32_t buf_bytes = 2 * config_.max_frame_bytes;
  for (std::size_t i = 0; i < config_.rx_buffers; ++i) {
    const std::uint32_t addr =
        kKernelBufBase + static_cast<std::uint32_t>(i) * buf_bytes;
    if (node_.mem(addr, buf_bytes) == nullptr) {
      throw std::length_error("EthernetDevice: kernel area too small");
    }
    kernel_bufs_.push_back({addr, false});
  }
}

void EthernetDevice::connect(EthernetDevice& peer) {
  if (peer_ != nullptr || peer.peer_ != nullptr) {
    throw std::logic_error("EthernetDevice: already connected");
  }
  peer_ = &peer;
  peer.peer_ = this;
}

int EthernetDevice::attach(sim::Process& owner, dpf::Filter filter) {
  endpoints_.emplace_back();
  endpoints_.back().owner = &owner;
  const int id = static_cast<int>(endpoints_.size() - 1);
  demux_->insert(std::move(filter), id);
  return id;
}

EthernetDevice::Endpoint& EthernetDevice::ep_at(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= endpoints_.size()) {
    throw std::out_of_range("EthernetDevice: bad endpoint");
  }
  return endpoints_[static_cast<std::size_t>(id)];
}

const EthernetDevice::Endpoint& EthernetDevice::ep_at(int id) const {
  return const_cast<EthernetDevice*>(this)->ep_at(id);
}

void EthernetDevice::supply_buffer(int endpoint, std::uint32_t addr,
                                   std::uint32_t len) {
  if (node_.mem(addr, len) == nullptr) {
    throw std::out_of_range("EthernetDevice: buffer outside node memory");
  }
  ep_at(endpoint).free_bufs.push_back({addr, len});
}

std::optional<RxDesc> EthernetDevice::poll(int endpoint) {
  Endpoint& ep = ep_at(endpoint);
  if (ep.notify_ring.empty()) return std::nullopt;
  const RxDesc d = ep.notify_ring.front();
  ep.notify_ring.pop_front();
  return d;
}

sim::WaitChannel& EthernetDevice::arrival_channel(int endpoint) {
  return ep_at(endpoint).arrival;
}

void EthernetDevice::set_interrupt_mode(int endpoint, bool on) {
  ep_at(endpoint).interrupt_mode = on;
}

void EthernetDevice::set_kernel_hook(int endpoint, KernelHook hook) {
  ep_at(endpoint).hook = std::move(hook);
}

void EthernetDevice::set_kernel_batch_hook(int endpoint,
                                           KernelBatchHook hook) {
  ep_at(endpoint).batch_hook = std::move(hook);
}

void EthernetDevice::return_buffer(int endpoint, std::uint32_t addr,
                                   std::uint32_t len) {
  supply_buffer(endpoint, addr, len);
}

sim::Cycles EthernetDevice::tx_wire_cycles(std::uint32_t len) const {
  std::uint32_t wire_len = len + config_.framing_bytes;
  const std::uint32_t min_wire =
      config_.min_frame_bytes + config_.framing_bytes;
  if (wire_len < min_wire) wire_len = min_wire;
  const double cycles_per_byte =
      sim::kCpuMhz * 8.0 / config_.bandwidth_mbits_per_sec;
  return static_cast<sim::Cycles>(cycles_per_byte * wire_len);
}

bool EthernetDevice::send_from(std::uint32_t addr, std::uint32_t len) {
  const std::uint8_t* p = node_.mem(addr, len);
  if (p == nullptr) return false;
  return send({p, len});
}

bool EthernetDevice::send(std::span<const std::uint8_t> bytes) {
  if (peer_ == nullptr || bytes.size() > config_.max_frame_bytes) {
    return false;
  }
  const sim::Cycles now = node_.now();
  const sim::Cycles start = now > tx_free_at_ ? now : tx_free_at_;
  tx_free_at_ =
      start + tx_wire_cycles(static_cast<std::uint32_t>(bytes.size()));
  const sim::Cycles arrive = tx_free_at_ + config_.one_way_latency;

  std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
  const FaultInjector::Decision fault = faults_.inject(copy);
  if (fault.drop) return true;  // vanished on the wire

  EthernetDevice* peer = peer_;
  if (fault.duplicate) {
    std::vector<std::uint8_t> dup = copy;
    node_.queue().schedule_at(
        arrive + fault.extra_delay + faults_.config().dup_delay,
        [peer, dup = std::move(dup)]() mutable { peer->deliver(std::move(dup)); });
  }
  node_.queue().schedule_at(arrive + fault.extra_delay,
                            [peer, copy = std::move(copy)]() mutable {
                              peer->deliver(std::move(copy));
                            });
  return true;
}

void EthernetDevice::release_kernel_buf(std::uint32_t addr) {
  for (KernelBuf& kb : kernel_bufs_) {
    if (kb.addr == addr) {
      kb.in_use = false;
      return;
    }
  }
}

void EthernetDevice::deliver(std::vector<std::uint8_t> bytes) {
  // Grab a kernel receive buffer; the pool is small, and an exhausted pool
  // means the frame is lost — the pressure that makes the prompt copy-out
  // (and ASH-directed placement) matter.
  KernelBuf* kb = nullptr;
  for (KernelBuf& candidate : kernel_bufs_) {
    if (!candidate.in_use) {
      kb = &candidate;
      break;
    }
  }
  if (kb == nullptr) {
    ++drops_;
    return;
  }
  kb->in_use = true;

  // DMA, striped: 16 bytes of data, 16 bytes of padding, repeated.
  const auto len = static_cast<std::uint32_t>(bytes.size());
  std::uint8_t* buf = node_.mem(kb->addr, 2 * len);
  for (std::uint32_t i = 0; i < len; ++i) {
    buf[(i / 16) * 32 + (i % 16)] = bytes[i];
  }
  node_.dcache().invalidate_range(kb->addr, 2 * len);

  // Interrupt handler: DPF demux, then the endpoint's receive path.
  dpf::MatchStats stats;
  const int ep_id = demux_->match(bytes, &stats);

  sim::Cycles demux_cost;
  std::uint32_t visited;
  if (config_.compiled_dpf) {
    visited = stats.nodes_visited;
    demux_cost = stats.nodes_visited * node_.cost().dpf_node_cost;
  } else {
    visited = stats.atoms_evaluated;
    demux_cost = stats.atoms_evaluated * node_.cost().dpf_interp_atom_cost;
  }

  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::FrameArrival, node_.cpu_id(), node_.now(), ep_id,
        len, static_cast<std::uint32_t>(trace::NicKind::Ethernet)));
    trace::global().emit(trace::make_event(
        trace::EventType::DemuxDecision, node_.cpu_id(), node_.now(), ep_id,
        visited, static_cast<std::uint32_t>(trace::NicKind::Ethernet),
        demux_cost));
  }
  if (rxq_ != nullptr && ep_id >= 0) {
    // Multi-queue path: the DPF match result steers the frame; the
    // driver/demux work and the endpoint's receive path are charged when
    // the queue's batch fires, on the queue's CPU. Unmatched frames stay
    // inline below (no endpoint to steer by).
    Endpoint& ep = endpoints_[static_cast<std::size_t>(ep_id)];
    RxFrame f;
    f.sink = this;
    f.channel = ep_id;
    f.addr = kb->addr;  // striped kernel buffer
    f.len = len;
    f.buf_addr = kb->addr;
    f.buf_len = len;
    f.owner = ep.owner;
    f.driver_cycles = config_.rx_driver_work + demux_cost;
    // Smart-NIC offload: frames for NIC-resident endpoints run on a
    // device execution unit; false means "host path, as usual".
    if (nic_ != nullptr && nic_->offer(f)) return;
    rxq_->steer(ep_id, ep.owner).enqueue(f);
    return;
  }

  const sim::Cycles driver =
      node_.cost().interrupt_entry + config_.rx_driver_work + demux_cost;

  const std::uint32_t buf_addr = kb->addr;
  node_.kernel_work(driver, [this, ep_id, buf_addr, len] {
    if (ep_id < 0) {
      ++unmatched_;
      release_kernel_buf(buf_addr);
      return;
    }
    Endpoint& ep = endpoints_[static_cast<std::size_t>(ep_id)];
    const RxDesc striped{buf_addr, len};

    if (ep.hook) {
      // ASH path: the handler directs (and pays for) the one copy itself.
      // A declined hook (voluntary/involuntary abort) falls through to the
      // default copy-out below, which still holds the kernel buffer.
      const RxEvent ev{ep_id, striped, ep.owner};
      if (ep.hook(ev)) {
        release_kernel_buf(buf_addr);
        return;
      }
      // Declined by the handler: this frame takes the default copy-out.
      if (trace::enabled()) {
        trace::global().emit(trace::make_event(
            trace::EventType::UpcallFallback, node_.cpu_id(), node_.now(),
            ep_id, static_cast<std::uint32_t>(trace::NicKind::Ethernet)));
      }
    }

    // Default path: the kernel copies the frame out of the scarce buffer
    // into the endpoint's supplied app buffer right here, in the handler.
    if (ep.free_bufs.empty() || ep.free_bufs.front().len < len) {
      drops_ += 1;
      release_kernel_buf(buf_addr);
      return;
    }
    const RxDesc dst = ep.free_bufs.front();
    ep.free_bufs.pop_front();
    const sim::Cycles copy_cycles =
        sim::memops::copy_destripe(node_, dst.addr, buf_addr, len);
    node_.kernel_work(copy_cycles);
    release_kernel_buf(buf_addr);

    ep.notify_ring.push_back({dst.addr, len});
    if (ep.interrupt_mode) {
      node_.kernel_work(node_.cost().wakeup, [this, ep_id] {
        endpoints_[static_cast<std::size_t>(ep_id)].arrival.notify(true);
      });
    } else {
      ep.arrival.notify(false);
    }
  });
}

void EthernetDevice::rx_batch(std::span<const RxFrame> frames,
                              const sim::KernelCpu& cpu) {
  if (frames.empty()) return;
  const int ep_id = frames.front().channel;
  Endpoint& ep = endpoints_[static_cast<std::size_t>(ep_id)];

  // Default copy-out for one frame the hooks did not consume: the kernel
  // copies the striped buffer into the endpoint's supplied app buffer,
  // charging the copy on the queue's CPU, then recycles the kernel buffer.
  const auto default_copy_out = [this, &ep, &cpu](const RxFrame& f) {
    if (ep.free_bufs.empty() || ep.free_bufs.front().len < f.len) {
      drops_ += 1;
      release_kernel_buf(f.buf_addr);
      return false;
    }
    const RxDesc dst = ep.free_bufs.front();
    ep.free_bufs.pop_front();
    const sim::Cycles copy_cycles =
        sim::memops::copy_destripe(node_, dst.addr, f.buf_addr, f.len);
    cpu.kernel_work(copy_cycles);
    release_kernel_buf(f.buf_addr);
    ep.notify_ring.push_back({dst.addr, f.len});
    return true;
  };

  std::size_t delivered = 0;
  if (ep.batch_hook) {
    std::vector<RxEvent> evs;
    evs.reserve(frames.size());
    for (const RxFrame& f : frames) {
      evs.push_back(RxEvent{ep_id, RxDesc{f.addr, f.len}, f.owner});
    }
    std::unique_ptr<bool[]> consumed(new bool[frames.size()]());
    ep.batch_hook(evs, cpu, consumed.get());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const RxFrame& f = frames[i];
      if (consumed[i]) {
        release_kernel_buf(f.buf_addr);
        continue;
      }
      if (trace::enabled()) {
        trace::global().emit(trace::make_event(
            trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
            ep_id, static_cast<std::uint32_t>(trace::NicKind::Ethernet)));
      }
      if (default_copy_out(f)) ++delivered;
    }
  } else {
    for (const RxFrame& f : frames) {
      if (ep.hook) {
        const RxEvent ev{ep_id, RxDesc{f.addr, f.len}, f.owner};
        if (ep.hook(ev)) {
          release_kernel_buf(f.buf_addr);
          continue;
        }
        if (trace::enabled()) {
          trace::global().emit(trace::make_event(
              trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
              ep_id, static_cast<std::uint32_t>(trace::NicKind::Ethernet)));
        }
      }
      if (default_copy_out(f)) ++delivered;
    }
  }

  if (delivered == 0) return;
  if (ep.interrupt_mode) {
    // One coalesced wakeup per batch (vs one per frame inline).
    cpu.kernel_work(node_.cost().wakeup, [this, ep_id] {
      endpoints_[static_cast<std::size_t>(ep_id)].arrival.notify(true);
    });
  } else {
    ep.arrival.notify(/*boost=*/false);
  }
}

void EthernetDevice::rx_drop(const RxFrame& frame) {
  release_kernel_buf(frame.buf_addr);
  ++drops_;
}

void EthernetDevice::nic_consumed(const RxFrame& frame) {
  // The handler copied the frame out on-device; the scarce kernel buffer
  // is free again without any host involvement.
  release_kernel_buf(frame.buf_addr);
}

void EthernetDevice::nic_punt(const RxFrame& frame,
                              const sim::KernelCpu& cpu) {
  // Hand-back from the device: charge the host's per-frame receive pass
  // on the steered queue's CPU, then take the default copy-out path (the
  // handler is NOT re-run — it already executed at most once on-device).
  const int ep_id = frame.channel;
  const sim::Cycles host_pass =
      cpu.node().cost().interrupt_entry + frame.driver_cycles;
  cpu.kernel_work(host_pass, [this, ep_id, frame, cpu] {
    Endpoint& ep = endpoints_[static_cast<std::size_t>(ep_id)];
    if (trace::enabled()) {
      trace::global().emit(trace::make_event(
          trace::EventType::UpcallFallback, cpu.cpu_id(), node_.now(),
          ep_id, static_cast<std::uint32_t>(trace::NicKind::Ethernet)));
    }
    if (ep.free_bufs.empty() || ep.free_bufs.front().len < frame.len) {
      drops_ += 1;
      release_kernel_buf(frame.buf_addr);
      return;
    }
    const RxDesc dst = ep.free_bufs.front();
    ep.free_bufs.pop_front();
    const sim::Cycles copy_cycles = sim::memops::copy_destripe(
        node_, dst.addr, frame.buf_addr, frame.len);
    cpu.kernel_work(copy_cycles);
    release_kernel_buf(frame.buf_addr);
    ep.notify_ring.push_back({dst.addr, frame.len});
    if (ep.interrupt_mode) {
      cpu.kernel_work(node_.cost().wakeup, [this, ep_id] {
        endpoints_[static_cast<std::size_t>(ep_id)].arrival.notify(true);
      });
    } else {
      ep.arrival.notify(/*boost=*/false);
    }
  });
}

}  // namespace ash::net
