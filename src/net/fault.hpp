// Unified network fault injection for the simulated NICs.
//
// Both device models (An2Device, EthernetDevice) used to carry their own
// ad-hoc loss knobs (`drop_prob` here, `dup_prob` there), which meant the
// two links could never be stressed the same way — and nothing could
// reorder, corrupt, or truncate a frame at all. FaultInjector is the one
// shared implementation: a seeded, deterministic, per-direction mutator
// that sits on each device's transmit side and decides, per frame,
// whether to drop, duplicate, reorder (delay past later traffic),
// corrupt (flip bytes), truncate, or jitter (small extra delay) it.
//
// Determinism: the injector draws from its own xoshiro256** stream, one
// injector per device (= per link direction), so a given (config, seed,
// traffic) triple replays the exact same fault schedule run-to-run. With
// every probability at zero it draws nothing and mutates nothing — the
// fault-free experiments are byte-identical to a build without it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"  // sim::Cycles / sim::us

namespace ash::net {

/// Fault rates and shapes for one link direction. Defaults are a perfect
/// link (all probabilities zero); `seed` only matters once a probability
/// is nonzero.
struct FaultConfig {
  double drop_prob = 0.0;      // frame vanishes on the wire
  double dup_prob = 0.0;       // a second copy arrives dup_delay later
  double reorder_prob = 0.0;   // frame is held back reorder_delay, so
                               // later frames can overtake it
  double corrupt_prob = 0.0;   // 1..max_corrupt_bytes bytes are flipped
  double truncate_prob = 0.0;  // frame is cut short (>= 1 byte kept)
  double jitter_prob = 0.0;    // up to max_jitter of extra latency
  sim::Cycles dup_delay = sim::us(5.0);
  sim::Cycles reorder_delay = sim::us(120.0);
  sim::Cycles max_jitter = sim::us(20.0);
  std::uint32_t max_corrupt_bytes = 4;
  std::uint64_t seed = 1;

  /// True when any fault can ever fire; false = the injector is inert
  /// and the device behaves exactly as if it did not exist.
  bool enabled() const noexcept {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           corrupt_prob > 0 || truncate_prob > 0 || jitter_prob > 0;
  }
};

/// Per-fault-class event counts, for tests and loss-sweep reports.
///
/// Thread model: plain fields, single writer — FaultInjector::decide runs
/// only on the simulation thread, and readers inspect the counters between
/// runs or after the simulator stops (same discipline as core::AshStats
/// and the trace aggregates; only trace::Tracer's emitted/dropped counters
/// are atomic and safe to poll concurrently).
struct FaultCounters {
  std::uint64_t frames = 0;     // frames offered to the injector
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t truncates = 0;
  std::uint64_t jitters = 0;
};

class FaultInjector {
 public:
  /// What the device should do with the (possibly mutated) frame.
  struct Decision {
    bool drop = false;          // do not deliver at all
    bool duplicate = false;     // deliver a second copy dup_delay later
    sim::Cycles extra_delay = 0;  // added to the original's arrival time
  };

  explicit FaultInjector(const FaultConfig& config) : cfg_(config) {}

  const FaultConfig& config() const noexcept { return cfg_; }
  const FaultCounters& counters() const noexcept { return counters_; }

  /// Swap the fault schedule mid-run (loss sweeps, heal-the-link tests).
  void set_config(const FaultConfig& config) { cfg_ = config; }

  /// Judge one frame about to be transmitted. Corruption/truncation are
  /// applied to `frame` in place; drop/duplicate/delay come back as a
  /// Decision for the device to schedule. When no fault class is enabled
  /// this draws no random numbers and returns the identity decision.
  Decision inject(std::vector<std::uint8_t>& frame);

 private:
  FaultConfig cfg_;
  FaultCounters counters_;
};

}  // namespace ash::net
