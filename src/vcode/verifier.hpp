// Download-time structural verification of VCODE programs.
//
// This is the static half of the paper's safety story (Section III-B):
// before a program is sandboxed and installed, the kernel checks that it is
// structurally well formed and that it uses no instruction class the policy
// forbids (floating point, signed-overflow arithmetic, trusted entry points
// it has no right to, pipe I/O outside pipe bodies).
#pragma once

#include <string>
#include <vector>

#include "vcode/program.hpp"

namespace ash::vcode {

/// What a given context allows a program to contain.
struct VerifyPolicy {
  bool allow_fp = false;          // Section III-B1: FP banned in ASHs
  bool allow_signed_trap = false; // signed add/sub may overflow-trap: banned
  bool allow_trusted = true;      // kernel entry points (ASHs: yes)
  bool allow_pipe_io = false;     // Pin*/Pout* only inside pipe bodies
  bool allow_indirect = true;     // Jr
};

struct VerifyIssue {
  std::uint32_t pc;
  std::string message;
};

struct VerifyResult {
  std::vector<VerifyIssue> issues;
  bool ok() const noexcept { return issues.empty(); }
  /// All issues joined for error reporting.
  std::string to_string() const;
};

/// Check `prog` against `policy`. Never modifies the program.
VerifyResult verify(const Program& prog, const VerifyPolicy& policy);

}  // namespace ash::vcode
