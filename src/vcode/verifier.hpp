// Download-time structural verification of VCODE programs.
//
// This is the static half of the paper's safety story (Section III-B):
// before a program is sandboxed and installed, the kernel checks that it is
// structurally well formed and that it uses no instruction class the policy
// forbids (floating point, signed-overflow arithmetic, trusted entry points
// it has no right to, pipe I/O outside pipe bodies).
//
// The optional BoundsPolicy adds the static half of the rule-compiler
// contract (DESIGN.md "Declarative rule compiler"): a forward
// constant-tracking dataflow pass proves that every message load, state
// access, user copy, and send in the program stays inside windows the
// downloader declared. It is designed for compiler output — programs whose
// offsets and lengths are materialized constants relative to the argument
// registers — and rejects anything it cannot track with a typed error,
// never a crash.
#pragma once

#include <string>
#include <vector>

#include "vcode/program.hpp"

namespace ash::vcode {

/// Typed verifier error classes. Structural covers every pre-existing
/// shape/policy check; the Bounds* values are produced only by the
/// BoundsPolicy pass below.
enum class VerifyCode : std::uint8_t {
  Structural,
  MsgLoadUntracked,   // TMsgLoad offset is not a compile-time constant
  MsgLoadOutOfWindow, // TMsgLoad word extends past the message window
  CopyUntracked,      // TUserCopy operand not trackable / non-constant len
  CopyOutOfWindow,    // TUserCopy range outside the state/message window
  SendUntracked,      // TSend operands not trackable
  SendOverCap,        // TSend constant length exceeds the send cap
  SendOutOfWindow,    // TSend range outside the state/message window
  MemUntracked,       // plain load/store base not state-relative
  MemOutOfWindow,     // plain load/store outside the state window
  DilpForbidden,      // TDilp is not admitted under a bounds policy
};

/// Declared windows for the bounds pass. All three are byte counts:
/// message loads must start words inside `msg_window` (relative to
/// logical message offset 0), plain memory accesses and state-side
/// copy/send ranges must fit in `state_window` bytes at the r3 argument,
/// and no constant-length send may exceed `send_cap` bytes. Forwarding
/// the whole message (TSend of exactly r1/r2) is always admitted — the
/// kernel's runtime range check covers it.
struct BoundsPolicy {
  bool enabled = false;
  std::uint32_t msg_window = 0;
  std::uint32_t state_window = 0;
  std::uint32_t send_cap = 0;
};

/// What a given context allows a program to contain.
struct VerifyPolicy {
  bool allow_fp = false;          // Section III-B1: FP banned in ASHs
  bool allow_signed_trap = false; // signed add/sub may overflow-trap: banned
  bool allow_trusted = true;      // kernel entry points (ASHs: yes)
  bool allow_pipe_io = false;     // Pin*/Pout* only inside pipe bodies
  bool allow_indirect = true;     // Jr
  BoundsPolicy bounds{};          // off by default: structural checks only
};

struct VerifyIssue {
  std::uint32_t pc;
  std::string message;
  VerifyCode code = VerifyCode::Structural;
};

struct VerifyResult {
  std::vector<VerifyIssue> issues;
  bool ok() const noexcept { return issues.empty(); }
  /// True when any issue carries `code`.
  bool has(VerifyCode code) const noexcept;
  /// All issues joined for error reporting.
  std::string to_string() const;
};

/// Check `prog` against `policy`. Never modifies the program.
VerifyResult verify(const Program& prog, const VerifyPolicy& policy);

}  // namespace ash::vcode
