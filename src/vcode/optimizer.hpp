// Peephole/cleanup optimizer for VCODE programs.
//
// The dynamic-ILP pipe compiler stitches pipe bodies together mechanically,
// which leaves behind redundant moves, nops, and foldable immediate chains.
// This pass cleans those up — the analogue of the light cleanup VCODE did
// during code emission. Semantics-preserving by construction.
#pragma once

#include "vcode/program.hpp"

namespace ash::vcode {

struct OptStats {
  std::size_t removed = 0;   // instructions deleted
  std::size_t folded = 0;    // immediate chains folded
  std::size_t threaded = 0;  // jump-to-jump chains shortened
};

/// Optimize `prog` in place. Returns statistics.
///
/// If the program contains indirect jumps (Jr/JrChk), instruction indices
/// may be live as data in registers, so instructions are never removed or
/// renumbered — only in-place rewrites (jump threading, pair folding into
/// Nop + fold) are applied followed by no compaction.
OptStats optimize(Program& prog);

}  // namespace ash::vcode
