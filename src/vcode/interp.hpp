// Cycle-charging VCODE interpreter.
//
// Executes a Program against an execution environment (Env) that supplies
// user memory, trusted kernel entry points, pipe streams, and memory-system
// cycle costs. The interpreter is the stand-in for native execution on the
// simulated 40 MHz MIPS: every instruction charges its base cost, and
// memory instructions additionally charge whatever the environment's cache
// model reports.
//
// Execution is always budgeted (ExecLimits), which implements the paper's
// "bounding execution time" (Section III-B3): in timer mode the interpreter
// itself enforces a cycle ceiling (the two-clock-tick abort); in software-
// check mode the sandbox has inserted Budget instructions and the ceiling
// acts only as a backstop.
#pragma once

#include <array>
#include <cstdint>

#include "vcode/program.hpp"

namespace ash::vcode {

enum class Outcome : std::uint8_t {
  Halted,            // Halt executed; result in r1
  VoluntaryAbort,    // Abort executed (the ASH's own abort code ran)
  MemFault,          // environment rejected a load/store
  AlignFault,        // misaligned Lw/Sw/Lh/Sh
  DivideByZero,      // runtime check on Divu/Remu fired
  BudgetExceeded,    // instruction/cycle ceiling or Budget check fired
  BadInstruction,    // malformed instruction reached dynamically
  IndirectJumpFault, // Jr/JrChk to an illegal target
  CallDepthExceeded, // Call nesting beyond kMaxCallDepth (or Ret underflow)
  StreamFault,       // pipe I/O with no/expired stream bound
  TrustedDenied,     // environment denied a trusted entry point
};

/// Convert an outcome to a short human-readable name.
const char* to_string(Outcome o) noexcept;

struct ExecLimits {
  /// Maximum dynamic instructions (backstop; always enforced).
  std::uint64_t max_insns = 1u << 20;
  /// Maximum simulated cycles; 0 = no cycle ceiling. This models the
  /// two-clock-tick timer abort of the prototype.
  std::uint64_t max_cycles = 0;
  /// Initial value for the software budget counter consumed by
  /// sandbox-inserted Budget instructions; ignored if no Budget ops run.
  std::uint64_t software_budget = 1u << 20;
};

struct ExecResult {
  Outcome outcome = Outcome::Halted;
  std::uint64_t insns = 0;    // dynamic instruction count
  std::uint64_t cycles = 0;   // simulated cycles consumed
  std::uint32_t result = 0;   // r1 at exit
  std::uint32_t abort_code = 0;
  std::uint32_t fault_pc = 0; // pc of the faulting/final instruction
  bool ok() const noexcept { return outcome == Outcome::Halted; }
};

/// Execution environment: everything the interpreted code can touch.
/// Defaults deny/fault, so a default Env is fully isolated.
class Env {
 public:
  virtual ~Env() = default;

  /// Called once at the start of each Interpreter::run with a pointer to
  /// the live register file (kNumRegs entries, valid for the duration of
  /// the run). Lets trusted entry points exchange values through agreed
  /// registers — the mechanism behind persistent-register export/import
  /// for DILP invocations from ASHs. Default: ignore.
  virtual void bind_regs(std::uint32_t* regs);

  /// User-memory access. Addresses are user virtual addresses; len is
  /// 1, 2, or 4. Return false to fault the program.
  virtual bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len);
  virtual bool mem_write(std::uint32_t addr, const void* src,
                         std::uint32_t len);

  /// Extra cycles for a memory access (the cache model hook).
  virtual std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                                   bool is_write);

  // Trusted kernel entry points. Return false to deny (involuntary abort).
  // `cycles` is the cost the kernel charges for the call's work.
  virtual bool t_msglen(std::uint32_t* len_out, std::uint64_t* cycles);
  virtual bool t_send(std::uint32_t chan, std::uint32_t addr,
                      std::uint32_t len, std::uint32_t* status,
                      std::uint64_t* cycles);
  virtual bool t_dilp(std::uint32_t id, std::uint32_t src, std::uint32_t dst,
                      std::uint32_t len, std::uint32_t* status,
                      std::uint64_t* cycles);
  virtual bool t_usercopy(std::uint32_t dst, std::uint32_t src,
                          std::uint32_t len, std::uint32_t* status,
                          std::uint64_t* cycles);
  /// Load a 32-bit little-endian word from the message at a *logical*
  /// byte offset (the kernel resolves device striping). Out-of-bounds
  /// offsets set *value to 0 and succeed with the same cost, so handlers
  /// need no extra branch — parse checks bound the offsets anyway.
  virtual bool t_msgload(std::uint32_t offset, std::uint32_t* value,
                         std::uint64_t* cycles);

  // Pipe streams (bound only when running a pipe body standalone).
  virtual bool pipe_in(std::uint32_t width, std::uint32_t* value);
  virtual bool pipe_out(std::uint32_t width, std::uint32_t value);
};

/// Interpreter with an explicit register file, so callers can import and
/// export persistent registers across runs (the paper's pipe accumulator
/// export/import, Section II-B).
class Interpreter {
 public:
  Interpreter(const Program& prog, Env& env) : prog_(&prog), env_(&env) {}

  void set_reg(Reg r, std::uint32_t v) noexcept {
    if (r != kRegZero && r < kNumRegs) regs_[r] = v;
  }
  std::uint32_t reg(Reg r) const noexcept { return regs_[r]; }

  /// Convenience: set r1..r4.
  void set_args(std::uint32_t a0, std::uint32_t a1 = 0, std::uint32_t a2 = 0,
                std::uint32_t a3 = 0) noexcept {
    set_reg(kRegArg0, a0);
    set_reg(kRegArg1, a1);
    set_reg(kRegArg2, a2);
    set_reg(kRegArg3, a3);
  }

  /// Run from instruction 0 until exit or fault.
  ExecResult run(const ExecLimits& limits = {});

 private:
  const Program* prog_;
  Env* env_;
  std::array<std::uint32_t, kNumRegs> regs_{};
};

/// One-shot convenience wrapper.
ExecResult execute(const Program& prog, Env& env, const ExecLimits& limits = {},
                   std::uint32_t a0 = 0, std::uint32_t a1 = 0,
                   std::uint32_t a2 = 0, std::uint32_t a3 = 0);

}  // namespace ash::vcode
