// Cycle-charging VCODE interpreter.
//
// Executes a Program against an execution environment (Env) that supplies
// user memory, trusted kernel entry points, pipe streams, and memory-system
// cycle costs. The interpreter is the stand-in for native execution on the
// simulated 40 MHz MIPS: every instruction charges its base cost, and
// memory instructions additionally charge whatever the environment's cache
// model reports.
//
// Execution is always budgeted (ExecLimits), which implements the paper's
// "bounding execution time" (Section III-B3): in timer mode the interpreter
// itself enforces a cycle ceiling (the two-clock-tick abort); in software-
// check mode the sandbox has inserted Budget instructions and the ceiling
// acts only as a backstop.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "vcode/program.hpp"

namespace ash::vcode {

enum class Outcome : std::uint8_t {
  Halted,            // Halt executed; result in r1
  VoluntaryAbort,    // Abort executed (the ASH's own abort code ran)
  MemFault,          // environment rejected a load/store
  AlignFault,        // misaligned Lw/Sw/Lh/Sh
  DivideByZero,      // runtime check on Divu/Remu fired
  BudgetExceeded,    // instruction/cycle ceiling or Budget check fired
  BadInstruction,    // malformed instruction reached dynamically
  IndirectJumpFault, // Jr/JrChk to an illegal target
  CallDepthExceeded, // Call nesting beyond kMaxCallDepth (or Ret underflow)
  StreamFault,       // pipe I/O with no/expired stream bound
  TrustedDenied,     // environment denied a trusted entry point
};

/// Convert an outcome to a short human-readable name.
const char* to_string(Outcome o) noexcept;

/// Number of distinct Outcome values (for per-outcome counter arrays).
inline constexpr std::size_t kOutcomeCount =
    static_cast<std::size_t>(Outcome::TrustedDenied) + 1;

struct ExecLimits {
  /// Maximum dynamic instructions (backstop; always enforced).
  std::uint64_t max_insns = 1u << 20;
  /// Maximum simulated cycles; 0 = no cycle ceiling. This models the
  /// two-clock-tick timer abort of the prototype.
  std::uint64_t max_cycles = 0;
  /// Initial value for the software budget counter consumed by
  /// sandbox-inserted Budget instructions; ignored if no Budget ops run.
  std::uint64_t software_budget = 1u << 20;
};

struct ExecResult {
  Outcome outcome = Outcome::Halted;
  std::uint64_t insns = 0;    // dynamic instruction count
  std::uint64_t cycles = 0;   // simulated cycles consumed
  std::uint32_t result = 0;   // r1 at exit
  std::uint32_t abort_code = 0;
  std::uint32_t fault_pc = 0; // pc of the faulting/final instruction
  bool ok() const noexcept { return outcome == Outcome::Halted; }
};

/// Execution environment: everything the interpreted code can touch.
/// Defaults deny/fault, so a default Env is fully isolated.
class Env {
 public:
  virtual ~Env() = default;

  /// Called once at the start of each Interpreter::run with a pointer to
  /// the live register file (kNumRegs entries, valid for the duration of
  /// the run). Lets trusted entry points exchange values through agreed
  /// registers — the mechanism behind persistent-register export/import
  /// for DILP invocations from ASHs. Default: ignore.
  virtual void bind_regs(std::uint32_t* regs);

  /// User-memory access. Addresses are user virtual addresses; len is
  /// 1, 2, or 4. Return false to fault the program.
  virtual bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len);
  virtual bool mem_write(std::uint32_t addr, const void* src,
                         std::uint32_t len);

  /// Extra cycles for a memory access (the cache model hook).
  virtual std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                                   bool is_write);

  /// Optional host fast path for plain (unstriped) memory, used by the
  /// download-time translated form. A provider guarantees:
  ///   * a read of [addr, addr+len) succeeds in mem_read iff the range is
  ///     fully inside the owner window or fully inside the msg window;
  ///   * a write succeeds in mem_write iff fully inside the owner window;
  ///   * an accepted access touches host bytes mem[addr - mem_base ...],
  ///     little-endian, exactly as mem_read/mem_write would;
  ///   * windows are already clamped to backing storage.
  /// mem_cycles is still consulted per access, so simulated time and the
  /// cache model are unchanged. Return false (the default) when the access
  /// rules are not expressible as two windows (striped messages, custom
  /// environments); engines then use mem_read/mem_write.
  struct FastMem {
    std::uint8_t* mem = nullptr;   // host pointer for simulated mem_base
    std::uint32_t mem_base = 0;    // simulated address of mem[0]
    std::uint32_t owner_lo = 0, owner_hi = 0;  // readable + writable [lo,hi)
    std::uint32_t msg_lo = 0, msg_hi = 0;      // readable [lo,hi)
    // Optional inlined cycle accounting: a raw view of a direct-mapped
    // write-through/no-allocate cache model with power-of-two geometry
    // (sim::Cache::Raw semantics). When dtags is null — or the provider
    // cannot guarantee mem_cycles is exactly that model for every accepted
    // access — engines charge through mem_cycles instead.
    std::uint32_t* dtags = nullptr;
    std::uint32_t dline_shift = 0;   // log2(line_bytes)
    std::uint32_t dline_mask = 0;    // n_lines - 1
    std::uint64_t dread_miss_penalty = 0;
    std::uint64_t dwrite_cost = 0;
    std::uint64_t* dhits = nullptr;
    std::uint64_t* dmisses = nullptr;
  };
  virtual bool fast_mem(FastMem* out);

  // Trusted kernel entry points. Return false to deny (involuntary abort).
  // `cycles` is the cost the kernel charges for the call's work.
  virtual bool t_msglen(std::uint32_t* len_out, std::uint64_t* cycles);
  virtual bool t_send(std::uint32_t chan, std::uint32_t addr,
                      std::uint32_t len, std::uint32_t* status,
                      std::uint64_t* cycles);
  virtual bool t_dilp(std::uint32_t id, std::uint32_t src, std::uint32_t dst,
                      std::uint32_t len, std::uint32_t* status,
                      std::uint64_t* cycles);
  virtual bool t_usercopy(std::uint32_t dst, std::uint32_t src,
                          std::uint32_t len, std::uint32_t* status,
                          std::uint64_t* cycles);
  /// Load a 32-bit little-endian word from the message at a *logical*
  /// byte offset (the kernel resolves device striping). Out-of-bounds
  /// offsets set *value to 0 and succeed with the same cost, so handlers
  /// need no extra branch — parse checks bound the offsets anyway.
  virtual bool t_msgload(std::uint32_t offset, std::uint32_t* value,
                         std::uint64_t* cycles);

  // Pipe streams (bound only when running a pipe body standalone).
  virtual bool pipe_in(std::uint32_t width, std::uint32_t* value);
  virtual bool pipe_out(std::uint32_t width, std::uint32_t value);
};

/// O(1) indirect-jump target lookup, shared by the interpreter and the
/// download-time code cache. Built once per program from `indirect_map`
/// (sandboxed: pre-sandbox address -> rewritten index) or from
/// `indirect_targets` (unsandboxed: identity mapping). A program with
/// neither has no legal indirect targets, so every JrChk faults.
///
/// Common keys (< kMaxProgramLen) live in a dense flat table; a hostile
/// program may register arbitrary 32-bit keys, which fall back to a small
/// sorted side vector so the dense table stays bounded.
class JumpTable {
 public:
  JumpTable() = default;
  explicit JumpTable(const Program& prog);

  /// Translated target index for pre-translation address `t`, or a
  /// negative value if `t` is not a registered indirect target.
  std::int64_t lookup(std::uint32_t t) const noexcept {
    if (t < dense_.size()) return dense_[t];
    if (sparse_.empty()) return -1;
    return lookup_sparse(t);
  }

 private:
  std::int64_t lookup_sparse(std::uint32_t t) const noexcept;

  std::vector<std::int64_t> dense_;  // index = key; negative = illegal
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sparse_;
};

namespace detail {

/// Non-result execution state (pc, software budget, call stack), exposed so
/// the code cache can hand a partially executed program back to the exact
/// interpreter core mid-run with bit-identical continuation semantics.
/// Call-stack entries are original instruction indices.
struct ResumeState {
  std::uint32_t pc = 0;
  std::uint64_t budget = 0;
  std::uint32_t call_depth = 0;
  std::array<std::uint32_t, kMaxCallDepth> call_stack{};
};

/// The interpreter core loop, resumable from an arbitrary ResumeState with
/// pre-accumulated counters in `res`. Does NOT touch regs[kRegZero] on
/// entry and does NOT call env.bind_regs — callers do both.
ExecResult run_core(const Program& prog, Env& env, std::uint32_t* regs,
                    const ExecLimits& limits, const JumpTable& jt,
                    ResumeState& rs, ExecResult res);

}  // namespace detail

/// Interpreter with an explicit register file, so callers can import and
/// export persistent registers across runs (the paper's pipe accumulator
/// export/import, Section II-B).
class Interpreter {
 public:
  Interpreter(const Program& prog, Env& env)
      : prog_(&prog), env_(&env), jt_(prog) {}

  void set_reg(Reg r, std::uint32_t v) noexcept {
    if (r != kRegZero && r < kNumRegs) regs_[r] = v;
  }
  std::uint32_t reg(Reg r) const noexcept { return regs_[r]; }

  /// Convenience: set r1..r4.
  void set_args(std::uint32_t a0, std::uint32_t a1 = 0, std::uint32_t a2 = 0,
                std::uint32_t a3 = 0) noexcept {
    set_reg(kRegArg0, a0);
    set_reg(kRegArg1, a1);
    set_reg(kRegArg2, a2);
    set_reg(kRegArg3, a3);
  }

  /// Run from instruction 0 until exit or fault.
  ExecResult run(const ExecLimits& limits = {});

 private:
  const Program* prog_;
  Env* env_;
  JumpTable jt_;
  std::array<std::uint32_t, kNumRegs> regs_{};
};

/// One-shot convenience wrapper.
ExecResult execute(const Program& prog, Env& env, const ExecLimits& limits = {},
                   std::uint32_t a0 = 0, std::uint32_t a1 = 0,
                   std::uint32_t a2 = 0, std::uint32_t a3 = 0);

}  // namespace ash::vcode
