#include "vcode/backend.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace ash::vcode {

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::Interp: return "interp";
    case Backend::CodeCache: return "codecache";
    case Backend::Jit: return "jit";
  }
  return "?";
}

bool backend_env_override(Backend* out) {
  const char* v = std::getenv("ASH_BACKEND");
  if (v == nullptr || *v == '\0') return false;
  std::string s(v);
  for (auto& ch : s) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (s == "interp" || s == "interpreter" || s == "off") {
    *out = Backend::Interp;
    return true;
  }
  if (s == "codecache" || s == "cache") {
    *out = Backend::CodeCache;
    return true;
  }
  if (s == "jit") {
    *out = Backend::Jit;
    return true;
  }
  return false;
}

}  // namespace ash::vcode
