#include "vcode/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace ash::vcode {

Reg Builder::reg() {
  // The top three registers (r61..r63) are reserved as sandbox scratch so
  // the SFI pass always has registers available without renaming.
  if (next_reg_ >= kNumRegs - 3) {
    throw std::length_error("vcode::Builder: register file exhausted");
  }
  return next_reg_++;
}

Label Builder::label() {
  label_pos_.push_back(kUnbound);
  return Label{static_cast<std::uint32_t>(label_pos_.size() - 1)};
}

void Builder::bind(Label l) {
  if (l.id >= label_pos_.size()) {
    throw std::logic_error("vcode::Builder: bind of unknown label");
  }
  if (label_pos_[l.id] != kUnbound) {
    throw std::logic_error("vcode::Builder: label bound twice");
  }
  label_pos_[l.id] = here();
}

void Builder::mark_indirect(Label l) {
  if (l.id >= label_pos_.size()) {
    throw std::logic_error("vcode::Builder: mark_indirect of unknown label");
  }
  indirect_labels_.push_back(l.id);
}

void Builder::emit_branch(Op op, Reg a, Reg b, Label t) {
  fixups_.push_back({here(), t.id});
  emit({op, a, b, 0, kUnbound});
}

Program Builder::take() {
  for (const Fixup& f : fixups_) {
    const std::uint32_t pos = label_pos_[f.label];
    if (pos == kUnbound) {
      throw std::logic_error("vcode::Builder: branch to unbound label");
    }
    insns_[f.insn].imm = pos;
  }
  Program prog;
  prog.insns = std::move(insns_);
  for (std::uint32_t id : indirect_labels_) {
    if (label_pos_[id] == kUnbound) {
      throw std::logic_error("vcode::Builder: indirect label unbound");
    }
    prog.indirect_targets.push_back(label_pos_[id]);
  }
  std::sort(prog.indirect_targets.begin(), prog.indirect_targets.end());
  prog.indirect_targets.erase(
      std::unique(prog.indirect_targets.begin(), prog.indirect_targets.end()),
      prog.indirect_targets.end());
  insns_.clear();
  label_pos_.clear();
  indirect_labels_.clear();
  fixups_.clear();
  next_reg_ = kRegArg3 + 1;
  return prog;
}

}  // namespace ash::vcode
