// Ready-made execution environments for tests, tools, and standalone use.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "vcode/interp.hpp"

namespace ash::vcode {

/// Environment backed by a flat byte array: addresses [0, size) are valid
/// user memory, everything else faults. No trusted calls, no pipe streams.
class FlatMemoryEnv : public Env {
 public:
  explicit FlatMemoryEnv(std::size_t size) : mem_(size, 0) {}

  std::span<std::uint8_t> memory() noexcept { return mem_; }

  bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len) override {
    if (!in_bounds(addr, len)) return false;
    std::memcpy(dst, mem_.data() + addr, len);
    return true;
  }

  bool mem_write(std::uint32_t addr, const void* src,
                 std::uint32_t len) override {
    if (!in_bounds(addr, len)) return false;
    std::memcpy(mem_.data() + addr, src, len);
    return true;
  }

  bool fast_mem(FastMem* out) override {
    out->mem = mem_.data();
    out->mem_base = 0;
    out->owner_lo = 0;
    out->owner_hi = static_cast<std::uint32_t>(mem_.size());
    return !mem_.empty();
  }

 private:
  bool in_bounds(std::uint32_t addr, std::uint32_t len) const noexcept {
    return static_cast<std::uint64_t>(addr) + len <= mem_.size();
  }
  std::vector<std::uint8_t> mem_;
};

/// Adds byte-stream pipe I/O on top of FlatMemoryEnv, for running single
/// pipe bodies standalone (e.g. unit-testing the checksum pipe of Fig. 2).
class StreamEnv : public FlatMemoryEnv {
 public:
  explicit StreamEnv(std::size_t mem_size = 0) : FlatMemoryEnv(mem_size) {}

  void bind_input(std::span<const std::uint8_t> in) {
    input_.assign(in.begin(), in.end());
    in_pos_ = 0;
  }
  const std::vector<std::uint8_t>& output() const noexcept { return output_; }

  bool pipe_in(std::uint32_t width, std::uint32_t* value) override {
    if (in_pos_ + width > input_.size()) return false;
    std::uint32_t v = 0;
    std::memcpy(&v, input_.data() + in_pos_, width);
    in_pos_ += width;
    *value = v;
    return true;
  }

  bool pipe_out(std::uint32_t width, std::uint32_t value) override {
    const std::size_t old = output_.size();
    output_.resize(old + width);
    std::memcpy(output_.data() + old, &value, width);
    return true;
  }

  /// Bytes of input not yet consumed.
  std::size_t input_remaining() const noexcept {
    return input_.size() - in_pos_;
  }

 private:
  std::vector<std::uint8_t> input_;
  std::size_t in_pos_ = 0;
  std::vector<std::uint8_t> output_;
};

}  // namespace ash::vcode
