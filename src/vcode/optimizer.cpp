#include "vcode/optimizer.hpp"

#include <algorithm>
#include <vector>

namespace ash::vcode {
namespace {

bool has_indirect(const Program& prog) {
  return std::any_of(prog.insns.begin(), prog.insns.end(), [](const Insn& i) {
    return i.op == Op::Jr || i.op == Op::JrChk;
  });
}

/// Thread Jmp -> Jmp chains and branches targeting an unconditional Jmp.
std::size_t thread_jumps(Program& prog) {
  std::size_t changed = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(prog.insns.size());
  for (Insn& insn : prog.insns) {
    if (!op_info(insn.op).is_branch) continue;
    // Follow chains of unconditional jumps (with a hop limit to be safe
    // against cycles like `L: jmp L`).
    std::uint32_t t = insn.imm;
    int hops = 0;
    while (hops < 8 && t < n && prog.insns[t].op == Op::Jmp &&
           prog.insns[t].imm != t) {
      t = prog.insns[t].imm;
      ++hops;
    }
    if (t != insn.imm) {
      insn.imm = t;
      ++changed;
    }
  }
  return changed;
}

/// Fold `movi rd, a` immediately followed by `addiu rd, rd, b` into a
/// single movi, and rewrite self-moves to Nop. In-place only.
std::size_t fold_pairs(Program& prog) {
  std::size_t folded = 0;
  // Collect every branch target; a fold across a target would change the
  // meaning of jumping to the second instruction of the pair.
  std::vector<bool> is_target(prog.insns.size(), false);
  for (const Insn& insn : prog.insns) {
    if (op_info(insn.op).is_branch && insn.imm < prog.insns.size()) {
      is_target[insn.imm] = true;
    }
  }
  for (std::uint32_t t : prog.indirect_targets) {
    if (t < prog.insns.size()) is_target[t] = true;
  }

  for (std::size_t i = 0; i < prog.insns.size(); ++i) {
    Insn& cur = prog.insns[i];
    if (cur.op == Op::Mov && cur.a == cur.b) {
      cur = Insn{Op::Nop, 0, 0, 0, 0};
      ++folded;
      continue;
    }
    if (i + 1 >= prog.insns.size() || is_target[i + 1]) continue;
    Insn& nxt = prog.insns[i + 1];
    if (cur.op == Op::Movi && nxt.op == Op::Addiu && nxt.a == cur.a &&
        nxt.b == cur.a) {
      cur.imm += nxt.imm;
      nxt = Insn{Op::Nop, 0, 0, 0, 0};
      ++folded;
    }
  }
  return folded;
}

/// Remove Nops and compact, remapping all branch targets and the indirect
/// target table. Only called when no indirect jumps exist.
std::size_t compact(Program& prog) {
  const std::size_t n = prog.insns.size();
  std::vector<std::uint32_t> new_index(n + 1, 0);
  std::uint32_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    new_index[i] = out;
    if (prog.insns[i].op != Op::Nop) ++out;
  }
  new_index[n] = out;
  if (out == n) return 0;

  std::vector<Insn> kept;
  kept.reserve(out);
  for (std::size_t i = 0; i < n; ++i) {
    if (prog.insns[i].op == Op::Nop) continue;
    Insn insn = prog.insns[i];
    if (op_info(insn.op).is_branch) insn.imm = new_index[insn.imm];
    kept.push_back(insn);
  }
  const std::size_t removed = n - kept.size();
  prog.insns = std::move(kept);
  for (std::uint32_t& t : prog.indirect_targets) t = new_index[t];
  return removed;
}

}  // namespace

OptStats optimize(Program& prog) {
  OptStats stats;
  stats.threaded = thread_jumps(prog);
  stats.folded = fold_pairs(prog);
  if (!has_indirect(prog)) {
    stats.removed = compact(prog);
  }
  return stats;
}

}  // namespace ash::vcode
