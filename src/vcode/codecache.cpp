#include "vcode/codecache.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/trace.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "vcode/opcodes.hpp"

namespace ash::vcode {

// Everything the handlers touch during a run. Kept flat (raw pointers, no
// indirection through the CodeCache object) so the dispatch loop stays in
// registers.
struct CodeCache::RunCtx {
  std::uint32_t* regs = nullptr;
  Env* env = nullptr;
  const ExecLimits* limits = nullptr;
  const TInsn* const* head_of = nullptr;
  const JumpTable* jt = nullptr;
  std::uint32_t n = 0;

  // Host fast path for loads/stores (fm.mem nullptr = use the virtual
  // mem_read/mem_write). mem_cycles is charged either way.
  Env::FastMem fm;

  ExecResult res;
  detail::ResumeState rs;  // software budget + call stack (original pcs)

  // Exit channel: a handler returns nullptr after setting either a final
  // outcome or a delegation point.
  std::uint32_t exit_pc = 0;
  Outcome exit_outcome = Outcome::Halted;
  bool delegate = false;
};

namespace {

using TInsn = CodeCache::TInsn;
using RunCtx = CodeCache::RunCtx;
using Handler = CodeCache::Handler;
using Kind = CodeCache::Kind;

float as_float(std::uint32_t bits) noexcept {
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

std::uint32_t as_bits(float f) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

inline const TInsn* fail(RunCtx& c, Outcome o, std::uint32_t at) {
  c.exit_outcome = o;
  c.exit_pc = at;
  return nullptr;
}

/// Hand the exact machine state (counters, budget, call stack, registers)
/// to the interpreter core, resuming at original index `at`. Always
/// bit-identical; used when a hoisted check can no longer prove that the
/// per-instruction prechecks it replaced would all pass.
inline const TInsn* hand_off(RunCtx& c, std::uint32_t at) {
  c.delegate = true;
  c.exit_pc = at;
  return nullptr;
}

/// Guarded register write: r0 stays hardwired to zero. The interpreter
/// writes then resets r0 after each instruction; since no instruction
/// reads its own destination after writing it, the guarded form is
/// equivalent — including inside fused pairs, which re-read operands from
/// the register file.
inline void wr(RunCtx& c, std::uint32_t r, std::uint32_t v) {
  if (r != kRegZero) c.regs[r] = v;
}

inline void step1(const TInsn* t, RunCtx& c) {
  ++c.res.insns;
  c.res.cycles += t->base;
}

inline void step2(const TInsn* t, RunCtx& c) {
  c.res.insns += 2;
  c.res.cycles += t->base;  // base holds the pair's summed cost
}

/// After a dynamic-cost operation (memory access or trusted call), the
/// block header's static cycle bound may be stale: re-check the remaining
/// hoisted amount and delegate if a downstream precheck could fire.
inline const TInsn* post_dyn(const TInsn* t, RunCtx& c) {
  if (c.limits->max_cycles != 0 && t->rest_static != CodeCache::kNoPostCheck &&
      c.res.cycles + t->rest_static >= c.limits->max_cycles) {
    return hand_off(c, t->next_pc);
  }
  return t + 1;
}

/// Enter the block whose original start index is `idx` (< n).
inline const TInsn* jump_to(RunCtx& c, std::uint32_t idx) {
  const TInsn* h = c.head_of[idx];
  if (h == nullptr) return hand_off(c, idx);  // defensive; leaders cover all
  return h;
}

// --- block bookkeeping -----------------------------------------------------

const TInsn* h_head(const TInsn* t, RunCtx& c) {
  // Hoisted prechecks for the whole block: imm = instruction count L,
  // imm2 = static cycle sum of all but the last position. If any
  // per-instruction precheck in the block might fire, fall back to the
  // interpreter core at the block start with untouched counters.
  if (c.res.insns + t->imm - 1 >= c.limits->max_insns ||
      (c.limits->max_cycles != 0 &&
       c.res.cycles + t->imm2 >= c.limits->max_cycles)) {
    return hand_off(c, t->pc);
  }
  return t + 1;
}

const TInsn* h_end(const TInsn* t, RunCtx& c) {
  // Fell off the end of the program (pc == n).
  return fail(c, Outcome::BadInstruction, t->pc);
}

// --- control ---------------------------------------------------------------

const TInsn* h_nop(const TInsn* t, RunCtx& c) {
  step1(t, c);
  return t + 1;
}

const TInsn* h_halt(const TInsn* t, RunCtx& c) {
  step1(t, c);
  return fail(c, Outcome::Halted, t->pc);
}

const TInsn* h_abort(const TInsn* t, RunCtx& c) {
  step1(t, c);
  c.res.abort_code = t->imm;
  return fail(c, Outcome::VoluntaryAbort, t->pc);
}

const TInsn* h_jmp(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (t->target != nullptr) return t->target;
  return fail(c, Outcome::BadInstruction, t->imm);  // target >= n
}

const TInsn* h_jr(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::uint32_t tv = c.regs[t->a];
  if (tv >= c.n) return fail(c, Outcome::IndirectJumpFault, t->pc);
  return jump_to(c, tv);
}

const TInsn* h_jrchk(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::int64_t tr = c.jt->lookup(c.regs[t->a]);
  if (tr < 0) return fail(c, Outcome::IndirectJumpFault, t->pc);
  const auto idx = static_cast<std::uint32_t>(tr);
  if (idx >= c.n) return fail(c, Outcome::BadInstruction, idx);
  return jump_to(c, idx);
}

const TInsn* h_call(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (c.rs.call_depth >= kMaxCallDepth) {
    return fail(c, Outcome::CallDepthExceeded, t->pc);
  }
  c.rs.call_stack[c.rs.call_depth++] = t->pc + 1;
  if (t->target != nullptr) return t->target;
  return fail(c, Outcome::BadInstruction, t->imm);
}

const TInsn* h_ret(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (c.rs.call_depth == 0) {
    return fail(c, Outcome::CallDepthExceeded, t->pc);
  }
  const std::uint32_t rpc = c.rs.call_stack[--c.rs.call_depth];
  if (rpc >= c.n) return fail(c, Outcome::BadInstruction, rpc);
  return jump_to(c, rpc);
}

template <Op B>
inline bool br_taken(std::uint32_t a, std::uint32_t b) {
  if constexpr (B == Op::Beq) return a == b;
  if constexpr (B == Op::Bne) return a != b;
  if constexpr (B == Op::Bltu) return a < b;
  if constexpr (B == Op::Bgeu) return a >= b;
  if constexpr (B == Op::Blt) {
    return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
  }
  if constexpr (B == Op::Bge) {
    return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
  }
}

template <Op B>
const TInsn* h_branch(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (br_taken<B>(c.regs[t->a], c.regs[t->b])) {
    if (t->target != nullptr) return t->target;
    return fail(c, Outcome::BadInstruction, t->imm);
  }
  return t + 1;
}

const TInsn* h_budget(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (c.rs.budget <= t->imm) return fail(c, Outcome::BudgetExceeded, t->pc);
  c.rs.budget -= t->imm;
  return t + 1;
}

// --- moves / arithmetic ----------------------------------------------------

const TInsn* h_movi(const TInsn* t, RunCtx& c) {
  step1(t, c);
  wr(c, t->a, t->imm);
  return t + 1;
}

const TInsn* h_mov(const TInsn* t, RunCtx& c) {
  step1(t, c);
  wr(c, t->a, c.regs[t->b]);
  return t + 1;
}

template <Op OP>
const TInsn* h_alu(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::uint32_t rb = c.regs[t->b];
  const std::uint32_t rc = c.regs[t->c];
  std::uint32_t v = 0;
  if constexpr (OP == Op::Addu || OP == Op::Add) v = rb + rc;
  if constexpr (OP == Op::Subu || OP == Op::Sub) v = rb - rc;
  if constexpr (OP == Op::Mulu) v = rb * rc;
  if constexpr (OP == Op::And) v = rb & rc;
  if constexpr (OP == Op::Or) v = rb | rc;
  if constexpr (OP == Op::Xor) v = rb ^ rc;
  if constexpr (OP == Op::Sll) v = rb << (rc & 31);
  if constexpr (OP == Op::Srl) v = rb >> (rc & 31);
  if constexpr (OP == Op::Sra) {
    v = static_cast<std::uint32_t>(static_cast<std::int32_t>(rb) >> (rc & 31));
  }
  if constexpr (OP == Op::Sltu) v = rb < rc ? 1 : 0;
  if constexpr (OP == Op::Slt) {
    v = static_cast<std::int32_t>(rb) < static_cast<std::int32_t>(rc) ? 1 : 0;
  }
  if constexpr (OP == Op::Fadd) v = as_bits(as_float(rb) + as_float(rc));
  if constexpr (OP == Op::Fmul) v = as_bits(as_float(rb) * as_float(rc));
  wr(c, t->a, v);
  return t + 1;
}

template <Op OP>
const TInsn* h_alui(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::uint32_t rb = c.regs[t->b];
  std::uint32_t v = 0;
  if constexpr (OP == Op::Addiu) v = rb + t->imm;
  if constexpr (OP == Op::Andi) v = rb & t->imm;
  if constexpr (OP == Op::Ori) v = rb | t->imm;
  if constexpr (OP == Op::Xori) v = rb ^ t->imm;
  if constexpr (OP == Op::Slli) v = rb << (t->imm & 31);
  if constexpr (OP == Op::Srli) v = rb >> (t->imm & 31);
  if constexpr (OP == Op::Srai) {
    v = static_cast<std::uint32_t>(static_cast<std::int32_t>(rb) >>
                                   (t->imm & 31));
  }
  wr(c, t->a, v);
  return t + 1;
}

template <Op OP>
const TInsn* h_divrem(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::uint32_t rc = c.regs[t->c];
  if (rc == 0) return fail(c, Outcome::DivideByZero, t->pc);
  const std::uint32_t rb = c.regs[t->b];
  wr(c, t->a, OP == Op::Divu ? rb / rc : rb % rc);
  return t + 1;
}

const TInsn* h_cksum32(const TInsn* t, RunCtx& c) {
  step1(t, c);
  wr(c, t->a, util::cksum32_accumulate(c.regs[t->a], c.regs[t->b]));
  return t + 1;
}

const TInsn* h_bswap32(const TInsn* t, RunCtx& c) {
  step1(t, c);
  wr(c, t->a, util::bswap32(c.regs[t->b]));
  return t + 1;
}

const TInsn* h_bswap16(const TInsn* t, RunCtx& c) {
  step1(t, c);
  wr(c, t->a, util::bswap16(static_cast<std::uint16_t>(c.regs[t->b])));
  return t + 1;
}

// --- memory ----------------------------------------------------------------

constexpr std::uint32_t mem_len(Op m) {
  return (m == Op::Lhu || m == Op::Lh || m == Op::Sh)   ? 2
         : (m == Op::Lbu || m == Op::Lb || m == Op::Sb) ? 1
                                                        : 4;
}
constexpr bool mem_aligned(Op m) { return m != Op::Lwu_u && m != Op::Sw_u; }
constexpr bool mem_store(Op m) {
  return m == Op::Sw || m == Op::Sh || m == Op::Sb || m == Op::Sw_u;
}

/// Shared access tail for plain and fused memory ops: alignment check,
/// environment access, cache-model cycles, post-dynamic budget re-check.
/// Faults report `fpc` (the memory op's own original index).
/// [addr, addr+len) fully inside [lo, hi)? len is a small constant, so the
/// no-overflow form stays branch-cheap.
inline bool in_window(std::uint32_t addr, std::uint32_t len, std::uint32_t lo,
                      std::uint32_t hi) {
  return addr >= lo && addr < hi && hi - addr >= len;
}

/// Inlined copy of the environment's direct-mapped cache model
/// (sim::Cache::access), used when fast_mem hands over the raw state.
/// Must stay bit-identical: read miss = penalty + tag fill; write =
/// write_cost hit or miss, never a fill; hit/miss counters per line.
inline std::uint64_t fm_cycles(const Env::FastMem& fm, std::uint32_t addr,
                               std::uint32_t len, bool is_write) {
  std::uint64_t extra = 0;
  const std::uint32_t first = addr >> fm.dline_shift;
  const std::uint32_t last = (addr + (len - 1)) >> fm.dline_shift;
  for (std::uint32_t line = first; line <= last; ++line) {
    const std::uint32_t idx = line & fm.dline_mask;
    const std::uint32_t tag = line + 1;
    if (fm.dtags[idx] == tag) {
      ++*fm.dhits;
      if (is_write) extra += fm.dwrite_cost;
      continue;
    }
    ++*fm.dmisses;
    if (is_write) {
      extra += fm.dwrite_cost;
      continue;
    }
    extra += fm.dread_miss_penalty;
    fm.dtags[idx] = tag;
  }
  return extra;
}

template <Op M>
inline const TInsn* mem_access(const TInsn* t, RunCtx& c, std::uint32_t addr,
                               std::uint32_t data_reg, std::uint32_t fpc) {
  constexpr std::uint32_t len = mem_len(M);
  if constexpr (mem_aligned(M) && len > 1) {
    if ((addr & (len - 1)) != 0) return fail(c, Outcome::AlignFault, fpc);
  }
  if (c.fm.mem != nullptr) {
    // Direct host access: the environment vouched that these window checks
    // are exactly its mem_read/mem_write acceptance (Env::fast_mem).
    const bool owner = in_window(addr, len, c.fm.owner_lo, c.fm.owner_hi);
    if constexpr (mem_store(M)) {
      if (!owner) return fail(c, Outcome::MemFault, fpc);
      const std::uint32_t v = c.regs[data_reg];
      std::memcpy(c.fm.mem + (addr - c.fm.mem_base), &v, len);
      c.res.cycles += c.fm.dtags != nullptr
                          ? fm_cycles(c.fm, addr, len, /*is_write=*/true)
                          : c.env->mem_cycles(addr, len, /*is_write=*/true);
    } else {
      if (!owner && !in_window(addr, len, c.fm.msg_lo, c.fm.msg_hi)) {
        return fail(c, Outcome::MemFault, fpc);
      }
      std::uint32_t v = 0;
      std::memcpy(&v, c.fm.mem + (addr - c.fm.mem_base), len);
      c.res.cycles += c.fm.dtags != nullptr
                          ? fm_cycles(c.fm, addr, len, /*is_write=*/false)
                          : c.env->mem_cycles(addr, len, /*is_write=*/false);
      if constexpr (M == Op::Lh) {
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
      }
      if constexpr (M == Op::Lb) {
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
      }
      wr(c, data_reg, v);
    }
    return post_dyn(t, c);
  }
  if constexpr (mem_store(M)) {
    const std::uint32_t v = c.regs[data_reg];
    if (!c.env->mem_write(addr, &v, len)) {
      return fail(c, Outcome::MemFault, fpc);
    }
    c.res.cycles += c.env->mem_cycles(addr, len, /*is_write=*/true);
  } else {
    std::uint8_t buf[4] = {};
    if (!c.env->mem_read(addr, buf, len)) {
      return fail(c, Outcome::MemFault, fpc);
    }
    c.res.cycles += c.env->mem_cycles(addr, len, /*is_write=*/false);
    std::uint32_t v = 0;
    std::memcpy(&v, buf, len);  // simulated machine is little-endian
    if constexpr (M == Op::Lh) {
      v = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
    }
    if constexpr (M == Op::Lb) {
      v = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
    }
    wr(c, data_reg, v);
  }
  return post_dyn(t, c);
}

template <Op M>
const TInsn* h_mem(const TInsn* t, RunCtx& c) {
  step1(t, c);
  const std::uint32_t addr = c.regs[t->b] + t->imm;
  return mem_access<M>(t, c, addr, t->a, t->pc);
}

// --- superinstructions -----------------------------------------------------

enum class AluK : std::uint8_t { Andi, Ori, Addiu };

template <AluK K>
inline std::uint32_t alu_imm_val(std::uint32_t rb, std::uint32_t imm) {
  if constexpr (K == AluK::Andi) return rb & imm;
  if constexpr (K == AluK::Ori) return rb | imm;
  if constexpr (K == AluK::Addiu) return rb + imm;
}

/// Fused {Andi|Ori|Addiu} a,b,imm ; {load|store} c,(a,imm2). Covers the
/// SFI sandbox's address-mask sequences and plain addi+load idioms.
template <AluK K, Op M>
const TInsn* h_fused_mem(const TInsn* t, RunCtx& c) {
  step2(t, c);
  wr(c, t->a, alu_imm_val<K>(c.regs[t->b], t->imm));
  const std::uint32_t addr = c.regs[t->a] + t->imm2;  // re-read: r0-exact
  return mem_access<M>(t, c, addr, t->c, t->pc2);
}

/// Fused {Sltu|Slt} a,b,c ; {Beq|Bne} a,r0,imm2.
template <Op CMP, Op BR>
const TInsn* h_fused_cmpbr(const TInsn* t, RunCtx& c) {
  step2(t, c);
  std::uint32_t v;
  if constexpr (CMP == Op::Sltu) {
    v = c.regs[t->b] < c.regs[t->c] ? 1 : 0;
  } else {
    v = static_cast<std::int32_t>(c.regs[t->b]) <
                static_cast<std::int32_t>(c.regs[t->c])
            ? 1
            : 0;
  }
  wr(c, t->a, v);
  const std::uint32_t av = c.regs[t->a];  // re-read: r0-exact
  bool taken;
  if constexpr (BR == Op::Beq) {
    taken = av == 0;  // second operand is r0 (fusion precondition)
  } else {
    taken = av != 0;
  }
  if (taken) {
    if (t->target != nullptr) return t->target;
    return fail(c, Outcome::BadInstruction, t->imm2);
  }
  return t + 1;
}

/// Fused {Andi|Ori|Addiu} a,b,imm ; {Beq|Bne} a,r0,imm2 — the
/// decrement-and-loop back-edge of counted loops (e.g. the DILP fused
/// transfer loop). Both halves are static-cost, so the block header's
/// hoisted prechecks already cover the pair.
template <AluK K, Op BR>
const TInsn* h_fused_alubr(const TInsn* t, RunCtx& c) {
  step2(t, c);
  wr(c, t->a, alu_imm_val<K>(c.regs[t->b], t->imm));
  const std::uint32_t av = c.regs[t->a];  // re-read: r0-exact
  bool taken;
  if constexpr (BR == Op::Beq) {
    taken = av == 0;  // second operand is r0 (fusion precondition)
  } else {
    taken = av != 0;
  }
  if (taken) {
    if (t->target != nullptr) return t->target;
    return fail(c, Outcome::BadInstruction, t->imm2);
  }
  return t + 1;
}

/// Fused {Andi|Ori|Addiu} a,b,imm ; {Andi|Ori|Addiu} c,d,imm2 — e.g. the
/// paired pointer bumps of copy loops. The second half reads its source
/// from the register file after the first half retires, so dependent
/// pairs (d == a) stay exact.
template <AluK K1, AluK K2>
const TInsn* h_fused_alualu(const TInsn* t, RunCtx& c) {
  step2(t, c);
  wr(c, t->a, alu_imm_val<K1>(c.regs[t->b], t->imm));
  wr(c, t->c, alu_imm_val<K2>(c.regs[t->d], t->imm2));
  return t + 1;
}

// --- pipes -----------------------------------------------------------------

template <std::uint32_t W, bool IN>
const TInsn* h_pipe(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if constexpr (IN) {
    std::uint32_t v = 0;
    if (!c.env->pipe_in(W, &v)) return fail(c, Outcome::StreamFault, t->pc);
    wr(c, t->a, v);
  } else {
    if (!c.env->pipe_out(W, c.regs[t->a])) {
      return fail(c, Outcome::StreamFault, t->pc);
    }
  }
  return t + 1;
}

// --- trusted kernel entry points -------------------------------------------

const TInsn* h_tmsglen(const TInsn* t, RunCtx& c) {
  step1(t, c);
  std::uint32_t len = 0;
  std::uint64_t cy = 0;
  if (!c.env->t_msglen(&len, &cy)) {
    return fail(c, Outcome::TrustedDenied, t->pc);
  }
  c.res.cycles += cy;
  wr(c, t->a, len);
  return post_dyn(t, c);
}

const TInsn* h_tsend(const TInsn* t, RunCtx& c) {
  step1(t, c);
  std::uint32_t status = 0;
  std::uint64_t cy = 0;
  if (!c.env->t_send(c.regs[t->a], c.regs[t->b], c.regs[t->c], &status, &cy)) {
    return fail(c, Outcome::TrustedDenied, t->pc);
  }
  c.res.cycles += cy;
  c.regs[kRegArg0] = status;
  return post_dyn(t, c);
}

const TInsn* h_tdilp(const TInsn* t, RunCtx& c) {
  step1(t, c);
  if (t->imm >= kNumRegs) return fail(c, Outcome::BadInstruction, t->pc);
  std::uint32_t status = 0;
  std::uint64_t cy = 0;
  if (!c.env->t_dilp(c.regs[t->a], c.regs[t->b], c.regs[t->c],
                     c.regs[t->imm], &status, &cy)) {
    return fail(c, Outcome::TrustedDenied, t->pc);
  }
  c.res.cycles += cy;
  c.regs[kRegArg0] = status;
  return post_dyn(t, c);
}

const TInsn* h_tusercopy(const TInsn* t, RunCtx& c) {
  step1(t, c);
  std::uint32_t status = 0;
  std::uint64_t cy = 0;
  if (!c.env->t_usercopy(c.regs[t->a], c.regs[t->b], c.regs[t->c], &status,
                         &cy)) {
    return fail(c, Outcome::TrustedDenied, t->pc);
  }
  c.res.cycles += cy;
  c.regs[kRegArg0] = status;
  return post_dyn(t, c);
}

const TInsn* h_tmsgload(const TInsn* t, RunCtx& c) {
  step1(t, c);
  std::uint32_t value = 0;
  std::uint64_t cy = 0;
  if (!c.env->t_msgload(c.regs[t->b] + t->imm, &value, &cy)) {
    return fail(c, Outcome::TrustedDenied, t->pc);
  }
  c.res.cycles += cy;
  wr(c, t->a, value);
  return post_dyn(t, c);
}

const TInsn* h_bad(const TInsn* t, RunCtx& c) {
  step1(t, c);
  return fail(c, Outcome::BadInstruction, t->pc);
}

// --- handler selection -----------------------------------------------------

Handler pick_plain(Op op) {
  switch (op) {
    case Op::Nop: return h_nop;
    case Op::Halt: return h_halt;
    case Op::Abort: return h_abort;
    case Op::Jmp: return h_jmp;
    case Op::Jr: return h_jr;
    case Op::JrChk: return h_jrchk;
    case Op::Call: return h_call;
    case Op::Ret: return h_ret;
    case Op::Beq: return h_branch<Op::Beq>;
    case Op::Bne: return h_branch<Op::Bne>;
    case Op::Bltu: return h_branch<Op::Bltu>;
    case Op::Bgeu: return h_branch<Op::Bgeu>;
    case Op::Blt: return h_branch<Op::Blt>;
    case Op::Bge: return h_branch<Op::Bge>;
    case Op::Budget: return h_budget;
    case Op::Movi: return h_movi;
    case Op::Mov: return h_mov;
    case Op::Addu: return h_alu<Op::Addu>;
    case Op::Add: return h_alu<Op::Add>;
    case Op::Addiu: return h_alui<Op::Addiu>;
    case Op::Subu: return h_alu<Op::Subu>;
    case Op::Sub: return h_alu<Op::Sub>;
    case Op::Mulu: return h_alu<Op::Mulu>;
    case Op::Divu: return h_divrem<Op::Divu>;
    case Op::Remu: return h_divrem<Op::Remu>;
    case Op::And: return h_alu<Op::And>;
    case Op::Andi: return h_alui<Op::Andi>;
    case Op::Or: return h_alu<Op::Or>;
    case Op::Ori: return h_alui<Op::Ori>;
    case Op::Xor: return h_alu<Op::Xor>;
    case Op::Xori: return h_alui<Op::Xori>;
    case Op::Sll: return h_alu<Op::Sll>;
    case Op::Slli: return h_alui<Op::Slli>;
    case Op::Srl: return h_alu<Op::Srl>;
    case Op::Srli: return h_alui<Op::Srli>;
    case Op::Sra: return h_alu<Op::Sra>;
    case Op::Srai: return h_alui<Op::Srai>;
    case Op::Sltu: return h_alu<Op::Sltu>;
    case Op::Slt: return h_alu<Op::Slt>;
    case Op::Fadd: return h_alu<Op::Fadd>;
    case Op::Fmul: return h_alu<Op::Fmul>;
    case Op::Lw: return h_mem<Op::Lw>;
    case Op::Lhu: return h_mem<Op::Lhu>;
    case Op::Lh: return h_mem<Op::Lh>;
    case Op::Lbu: return h_mem<Op::Lbu>;
    case Op::Lb: return h_mem<Op::Lb>;
    case Op::Sw: return h_mem<Op::Sw>;
    case Op::Sh: return h_mem<Op::Sh>;
    case Op::Sb: return h_mem<Op::Sb>;
    case Op::Lwu_u: return h_mem<Op::Lwu_u>;
    case Op::Sw_u: return h_mem<Op::Sw_u>;
    case Op::Cksum32: return h_cksum32;
    case Op::Bswap32: return h_bswap32;
    case Op::Bswap16: return h_bswap16;
    case Op::Pin8: return h_pipe<1, true>;
    case Op::Pin16: return h_pipe<2, true>;
    case Op::Pin32: return h_pipe<4, true>;
    case Op::Pout8: return h_pipe<1, false>;
    case Op::Pout16: return h_pipe<2, false>;
    case Op::Pout32: return h_pipe<4, false>;
    case Op::TMsgLen: return h_tmsglen;
    case Op::TSend: return h_tsend;
    case Op::TDilp: return h_tdilp;
    case Op::TUserCopy: return h_tusercopy;
    case Op::TMsgLoad: return h_tmsgload;
    case Op::kCount: return h_bad;
  }
  return h_bad;
}

template <AluK K>
Handler pick_fused_mem_for(Op mem) {
  switch (mem) {
    case Op::Lw: return h_fused_mem<K, Op::Lw>;
    case Op::Lhu: return h_fused_mem<K, Op::Lhu>;
    case Op::Lh: return h_fused_mem<K, Op::Lh>;
    case Op::Lbu: return h_fused_mem<K, Op::Lbu>;
    case Op::Lb: return h_fused_mem<K, Op::Lb>;
    case Op::Sw: return h_fused_mem<K, Op::Sw>;
    case Op::Sh: return h_fused_mem<K, Op::Sh>;
    case Op::Sb: return h_fused_mem<K, Op::Sb>;
    case Op::Lwu_u: return h_fused_mem<K, Op::Lwu_u>;
    case Op::Sw_u: return h_fused_mem<K, Op::Sw_u>;
    default: return nullptr;
  }
}

Handler pick_fused_mem(Op alu, Op mem) {
  switch (alu) {
    case Op::Andi: return pick_fused_mem_for<AluK::Andi>(mem);
    case Op::Ori: return pick_fused_mem_for<AluK::Ori>(mem);
    case Op::Addiu: return pick_fused_mem_for<AluK::Addiu>(mem);
    default: return nullptr;
  }
}

Handler pick_fused_cmpbr(Op cmp, Op br) {
  if (cmp == Op::Sltu) {
    return br == Op::Beq ? h_fused_cmpbr<Op::Sltu, Op::Beq>
                         : h_fused_cmpbr<Op::Sltu, Op::Bne>;
  }
  return br == Op::Beq ? h_fused_cmpbr<Op::Slt, Op::Beq>
                       : h_fused_cmpbr<Op::Slt, Op::Bne>;
}

Handler pick_fused_alubr(Op alu, Op br) {
  switch (alu) {
    case Op::Andi:
      return br == Op::Beq ? h_fused_alubr<AluK::Andi, Op::Beq>
                           : h_fused_alubr<AluK::Andi, Op::Bne>;
    case Op::Ori:
      return br == Op::Beq ? h_fused_alubr<AluK::Ori, Op::Beq>
                           : h_fused_alubr<AluK::Ori, Op::Bne>;
    case Op::Addiu:
      return br == Op::Beq ? h_fused_alubr<AluK::Addiu, Op::Beq>
                           : h_fused_alubr<AluK::Addiu, Op::Bne>;
    default: return nullptr;
  }
}

template <AluK K1>
Handler pick_fused_alualu_for(Op alu2) {
  switch (alu2) {
    case Op::Andi: return h_fused_alualu<K1, AluK::Andi>;
    case Op::Ori: return h_fused_alualu<K1, AluK::Ori>;
    case Op::Addiu: return h_fused_alualu<K1, AluK::Addiu>;
    default: return nullptr;
  }
}

Handler pick_fused_alualu(Op alu1, Op alu2) {
  switch (alu1) {
    case Op::Andi: return pick_fused_alualu_for<AluK::Andi>(alu2);
    case Op::Ori: return pick_fused_alualu_for<AluK::Ori>(alu2);
    case Op::Addiu: return pick_fused_alualu_for<AluK::Addiu>(alu2);
    default: return nullptr;
  }
}

// --- leader analysis -------------------------------------------------------

/// leader[i] = 1 iff original index i begins a basic block. Every control
/// transfer ends its block (its successor indices are leaders), and every
/// translated indirect-jump target begins one, so any dynamic control
/// transfer always lands on a block head. If the program contains an
/// unchecked Jr — which may target *any* index — every index is a leader
/// and translation degenerates to exact per-instruction prechecks.
std::vector<std::uint8_t> compute_leaders(const Program& prog) {
  const auto n = static_cast<std::uint32_t>(prog.insns.size());
  std::vector<std::uint8_t> leader(static_cast<std::size_t>(n) + 1, 0);
  if (n == 0) return leader;
  leader[0] = 1;
  bool any_jr = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    switch (prog.insns[i].op) {
      case Op::Jmp:
      case Op::Call:
      case Op::Beq:
      case Op::Bne:
      case Op::Bltu:
      case Op::Bgeu:
      case Op::Blt:
      case Op::Bge:
        if (prog.insns[i].imm < n) leader[prog.insns[i].imm] = 1;
        if (i + 1 < n) leader[i + 1] = 1;
        break;
      case Op::Jr:
        any_jr = true;
        [[fallthrough]];
      case Op::JrChk:
      case Op::Ret:
      case Op::Halt:
      case Op::Abort:
        if (i + 1 < n) leader[i + 1] = 1;
        break;
      default:
        break;
    }
  }
  auto mark = [&](std::uint32_t v) {
    if (v < n) leader[v] = 1;
  };
  if (!prog.indirect_map.empty()) {
    for (const auto& [k, v] : prog.indirect_map) mark(v);
  } else {
    for (std::uint32_t tgt : prog.indirect_targets) mark(tgt);
  }
  if (any_jr) std::fill(leader.begin(), leader.begin() + n, 1);
  return leader;
}

std::uint32_t base_cost(Op op) {
  return valid_op(static_cast<std::uint8_t>(op)) ? op_info(op).base_cycles : 0;
}

}  // namespace

std::uint32_t count_basic_blocks(const Program& prog) {
  const auto leader = compute_leaders(prog);
  std::uint32_t count = 0;
  for (std::size_t i = 0; i + 1 < leader.size(); ++i) count += leader[i];
  return count;
}

int code_cache_env_override() {
  const char* v = std::getenv("ASH_USE_CODE_CACHE");
  if (v == nullptr || *v == '\0') return -1;
  std::string s(v);
  for (auto& ch : s) {
    ch = static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch)));
  }
  if (s == "0" || s == "off" || s == "false" || s == "no") return 0;
  return 1;
}

CodeCache::CodeCache(const Program& prog) : prog_(prog), jt_(prog_) {
  build();
}

void CodeCache::build() {
  const auto n = static_cast<std::uint32_t>(prog_.insns.size());
  const auto leader = compute_leaders(prog_);

  struct Fixup {
    std::size_t slot;
    std::uint32_t target;
  };
  std::vector<Fixup> fixups;
  std::vector<std::pair<std::uint32_t, std::size_t>> heads;

  std::vector<std::uint32_t> prefix;  // per-block base-cycle prefix sums
  for (std::uint32_t s = 0; s < n;) {
    std::uint32_t e = s + 1;
    while (e < n && !leader[e]) ++e;
    const std::uint32_t len = e - s;

    // prefix[k] = sum of base cycles of positions s .. s+k-1.
    prefix.assign(static_cast<std::size_t>(len) + 1, 0);
    for (std::uint32_t k = 0; k < len; ++k) {
      prefix[k + 1] = prefix[k] + base_cost(prog_.insns[s + k].op);
    }
    // Remaining hoisted static cycles after original position j: the
    // prechecks this block skips sit before positions j+1 .. e-1, and the
    // last of them sees the static costs of positions j+1 .. e-2.
    auto rest_after = [&](std::uint32_t j) -> std::uint32_t {
      if (j + 1 >= e) return kNoPostCheck;
      return prefix[len - 1] - prefix[j + 1 - s];
    };

    TInsn head{};
    head.fn = h_head;
    head.kind = Kind::Head;
    head.imm = len;
    head.imm2 = prefix[len - 1];  // static cost of all but the last position
    head.pc = s;
    heads.emplace_back(s, code_.size());
    code_.push_back(head);
    ++blocks_;

    std::uint32_t j = s;
    while (j < e) {
      const Insn& f = prog_.insns[j];
      if (j + 1 < e) {
        const Insn& g = prog_.insns[j + 1];
        Handler fh = nullptr;
        Kind kind = Kind::Plain;
        const bool f_alu_imm =
            f.op == Op::Andi || f.op == Op::Ori || f.op == Op::Addiu;
        if (f_alu_imm && valid_op(static_cast<std::uint8_t>(g.op)) &&
            op_info(g.op).is_mem && g.b == f.a) {
          fh = pick_fused_mem(f.op, g.op);
          kind = Kind::FusedAluMem;
        } else if ((f.op == Op::Sltu || f.op == Op::Slt) &&
                   (g.op == Op::Beq || g.op == Op::Bne) && g.a == f.a &&
                   g.b == kRegZero) {
          fh = pick_fused_cmpbr(f.op, g.op);
          kind = Kind::FusedCmpBr;
        } else if (f_alu_imm && (g.op == Op::Beq || g.op == Op::Bne) &&
                   g.a == f.a && g.b == kRegZero) {
          fh = pick_fused_alubr(f.op, g.op);
          kind = Kind::FusedAluBr;
        } else if (f_alu_imm && (g.op == Op::Andi || g.op == Op::Ori ||
                                 g.op == Op::Addiu)) {
          fh = pick_fused_alualu(f.op, g.op);
          kind = Kind::FusedAluAlu;
        }
        if (fh != nullptr) {
          TInsn ti{};
          ti.fn = fh;
          ti.kind = kind;
          ti.a = f.a;
          ti.b = f.b;
          ti.c = kind == Kind::FusedAluMem || kind == Kind::FusedAluAlu
                     ? g.a
                     : f.c;
          ti.d = kind == Kind::FusedAluAlu ? g.b : 0;
          ti.imm = f.imm;
          ti.imm2 = g.imm;
          ti.base = base_cost(f.op) + base_cost(g.op);
          ti.pc = j;
          ti.pc2 = j + 1;
          ti.next_pc = j + 2;
          ti.rest_static = rest_after(j + 1);
          if (kind == Kind::FusedCmpBr || kind == Kind::FusedAluBr) {
            fixups.push_back({code_.size(), g.imm});
          }
          code_.push_back(ti);
          ++fused_;
          j += 2;
          continue;
        }
      }
      TInsn ti{};
      ti.fn = pick_plain(f.op);
      ti.kind = Kind::Plain;
      ti.a = f.a;
      ti.b = f.b;
      ti.c = f.c;
      ti.imm = f.imm;
      ti.base = base_cost(f.op);
      ti.pc = j;
      ti.pc2 = j;
      ti.next_pc = j + 1;
      ti.rest_static = rest_after(j);
      switch (f.op) {
        case Op::Jmp:
        case Op::Call:
        case Op::Beq:
        case Op::Bne:
        case Op::Bltu:
        case Op::Bgeu:
        case Op::Blt:
        case Op::Bge:
          fixups.push_back({code_.size(), f.imm});
          break;
        default:
          break;
      }
      code_.push_back(ti);
      ++j;
    }
    s = e;
  }

  TInsn end{};
  end.fn = h_end;
  end.kind = Kind::End;
  end.pc = n;
  code_.push_back(end);

  head_of_.assign(static_cast<std::size_t>(n) + 1, nullptr);
  for (const auto& [pc, slot] : heads) head_of_[pc] = &code_[slot];
  head_of_[n] = &code_.back();
  for (const auto& fx : fixups) {
    code_[fx.slot].target = fx.target < n ? head_of_[fx.target] : nullptr;
  }
}

ExecResult CodeCache::run(Env& env, std::array<std::uint32_t, kNumRegs>& regs,
                          const ExecLimits& limits) const {
  ++runs_;
  regs[kRegZero] = 0;
  env.bind_regs(regs.data());

  RunCtx c;
  c.regs = regs.data();
  c.env = &env;
  c.limits = &limits;
  c.head_of = head_of_.data();
  c.jt = &jt_;
  c.n = static_cast<std::uint32_t>(prog_.insns.size());
  c.rs.budget = limits.software_budget;
  if (!env.fast_mem(&c.fm)) c.fm.mem = nullptr;

  const TInsn* ti = head_of_[0];
  while (ti != nullptr) ti = ti->fn(ti, c);

  ExecResult res;
  if (c.delegate) {
    c.rs.pc = c.exit_pc;
    res = detail::run_core(prog_, env, regs.data(), limits, jt_, c.rs, c.res);
  } else {
    res = c.res;
    res.outcome = c.exit_outcome;
    res.fault_pc = c.exit_pc;
    res.result = regs[kRegArg0];
  }
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::VcodeExec,
                             trace::Engine::CodeCache,
                             static_cast<std::uint32_t>(res.outcome), 0,
                             res.cycles, res.insns);
  }
  return res;
}

std::string CodeCache::dump() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line,
                "codecache: %zu source insns, %zu blocks, %zu fused pairs, "
                "%zu slots\n",
                prog_.insns.size(), blocks_, fused_, code_.size());
  out += line;
  for (const TInsn& t : code_) {
    switch (t.kind) {
      case Kind::Head:
        std::snprintf(line, sizeof line,
                      "block @%u: len=%u hoisted_static_cycles=%u\n", t.pc,
                      t.imm, t.imm2);
        out += line;
        break;
      case Kind::Plain:
        std::snprintf(line, sizeof line, "  %4u: %s  [cost %u]\n", t.pc,
                      to_string(prog_.insns[t.pc]).c_str(), t.base);
        out += line;
        break;
      case Kind::FusedAluMem:
      case Kind::FusedCmpBr:
      case Kind::FusedAluBr:
      case Kind::FusedAluAlu: {
        const char* fam = "alu+mem";
        if (t.kind == Kind::FusedCmpBr) fam = "cmp+br";
        if (t.kind == Kind::FusedAluBr) fam = "alu+br";
        if (t.kind == Kind::FusedAluAlu) fam = "alu+alu";
        std::snprintf(line, sizeof line,
                      "  %4u: fuse[%s] {%s ; %s}  [cost %u]\n", t.pc, fam,
                      to_string(prog_.insns[t.pc]).c_str(),
                      to_string(prog_.insns[t.pc2]).c_str(), t.base);
        out += line;
        break;
      }
      case Kind::End:
        std::snprintf(line, sizeof line, "  %4u: <end>\n", t.pc);
        out += line;
        break;
    }
  }
  return out;
}

}  // namespace ash::vcode
