// VCODE instruction set.
//
// VCODE is the paper's low-level dynamic code generation language: a
// RISC-like register machine extended with networking primitives
// (Internet-checksum accumulate, byteswaps, unaligned accesses) and with
// pipe input/output pseudo-instructions used by the dynamic-ILP compiler.
//
// In this reproduction, ASHs and pipes are VCODE programs: inspectable,
// rewriteable (the SFI sandbox is a VCODE->VCODE pass), and executed by a
// cycle-charging interpreter that stands in for the 40 MHz MIPS target.
#pragma once

#include <cstdint>

namespace ash::vcode {

enum class Op : std::uint8_t {
  // --- control ---
  Nop = 0,
  Halt,    // successful completion ("commit" exit); result in r1
  Abort,   // voluntary abort; imm = user-defined abort code
  Jmp,     // pc = imm
  Jr,      // pc = reg[a] (indirect; target of sandbox checking)
  JrChk,   // sandbox-inserted: fault unless reg[a] is a registered target
  Call,    // push pc+1, pc = imm
  Ret,     // pc = pop()
  Beq,     // if reg[a] == reg[b] pc = imm
  Bne,     // if reg[a] != reg[b] pc = imm
  Bltu,    // if reg[a] <  reg[b] (unsigned) pc = imm
  Bgeu,    // if reg[a] >= reg[b] (unsigned) pc = imm
  Blt,     // signed <
  Bge,     // signed >=
  Budget,  // sandbox-inserted back-edge check: budget -= imm; fault if <= 0

  // --- moves / arithmetic (unsigned ops never raise exceptions) ---
  Movi,   // reg[a] = imm
  Mov,    // reg[a] = reg[b]
  Addu,   // reg[a] = reg[b] + reg[c]
  Addiu,  // reg[a] = reg[b] + imm
  Subu,   // reg[a] = reg[b] - reg[c]
  Mulu,   // reg[a] = reg[b] * reg[c] (low 32 bits)
  Divu,   // reg[a] = reg[b] / reg[c]; divide-by-zero faults (runtime check)
  Remu,   // reg[a] = reg[b] % reg[c]; divide-by-zero faults
  And,    // reg[a] = reg[b] & reg[c]
  Andi,   // reg[a] = reg[b] & imm
  Or,     // reg[a] = reg[b] | reg[c]
  Ori,    // reg[a] = reg[b] | imm
  Xor,    // reg[a] = reg[b] ^ reg[c]
  Xori,   // reg[a] = reg[b] ^ imm
  Sll,    // reg[a] = reg[b] << (reg[c] & 31)
  Slli,   // reg[a] = reg[b] << (imm & 31)
  Srl,    // reg[a] = reg[b] >> (reg[c] & 31) (logical)
  Srli,   // reg[a] = reg[b] >> (imm & 31)
  Sra,    // arithmetic shift right
  Srai,
  Sltu,   // reg[a] = reg[b] < reg[c] ? 1 : 0 (unsigned)
  Slt,    // signed compare

  // Signed add/sub, which on MIPS raise an overflow exception. The sandbox
  // rejects these (or rewrites them to the unsigned forms) exactly as the
  // paper describes (Section III-B1).
  Add,
  Sub,

  // Floating point: present so that the download-time check has something
  // to reject (Section III-B1 bans FP in ASHs). Registers are reinterpreted
  // as IEEE-754 single bits.
  Fadd,
  Fmul,

  // --- memory (addresses are user virtual addresses) ---
  Lw,   // reg[a] = *(u32*)(reg[b] + imm) (must be 4-aligned)
  Lhu,  // zero-extended 16-bit load (2-aligned)
  Lh,   // sign-extended
  Lbu,  // zero-extended byte load
  Lb,   // sign-extended
  Sw,   // *(u32*)(reg[b] + imm) = reg[a]
  Sh,
  Sb,
  Lwu_u,  // unaligned 32-bit load  (networking extension)
  Sw_u,   // unaligned 32-bit store (networking extension)

  // --- networking extensions ---
  Cksum32,  // reg[a] = ones'-complement accumulate(reg[a], reg[b])
  Bswap32,  // reg[a] = byte-reverse(reg[b])
  Bswap16,  // reg[a] = swap low two bytes of reg[b] (high half zeroed)

  // --- pipe pseudo-instructions (dynamic ILP; Section II-B) ---
  // Inside a pipe body these name the streaming input/output; the pipe
  // compiler eliminates them during fusion. The interpreter also supports
  // them directly when a stream is bound, so single pipes are testable.
  Pin8,    // reg[a] = next 1 input byte (zero-extended)
  Pin16,   // reg[a] = next 2 input bytes
  Pin32,   // reg[a] = next 4 input bytes
  Pout8,   // append low byte of reg[a] to output
  Pout16,
  Pout32,

  // --- trusted kernel entry points (Section III-B2: "specialized trusted
  // function calls, implemented in the kernel", with access checks
  // aggregated at initiation time) ---
  TMsgLen,   // reg[a] = length of the current message
  TSend,     // send(channel=reg[a], addr=reg[b], len=reg[c]); r1 = status
  TDilp,     // run DILP kernel id=reg[a]: src=reg[b], dst=reg[c], len=reg[imm]
  TUserCopy, // bounds-checked copy: dst=reg[a], src=reg[b], len=reg[c]
  TMsgLoad,  // reg[a] = 32-bit message word at logical offset reg[b]+imm
             // (the kernel hides any device striping; Section III-B2's
             // "specialized trusted function calls" for message access)

  kCount,
};

/// Per-opcode static metadata used by the verifier, sandbox, and
/// interpreter.
struct OpInfo {
  const char* name;
  std::uint8_t reads_a : 1;   // operand a is a source register
  std::uint8_t writes_a : 1;  // operand a is a destination register
  std::uint8_t reads_b : 1;
  std::uint8_t reads_c : 1;
  std::uint8_t is_branch : 1;     // imm is an instruction-index target
  std::uint8_t is_mem : 1;        // touches user memory via reg[b]+imm
  std::uint8_t is_fp : 1;         // floating point (banned in sandbox)
  std::uint8_t is_signed_ex : 1;  // may raise signed-overflow exception
  std::uint8_t is_trusted : 1;    // kernel entry point
  std::uint8_t base_cycles;       // execution cost on the simulated machine
};

/// Metadata for `op`; valid for all ops < Op::kCount.
const OpInfo& op_info(Op op) noexcept;

/// True if `v` encodes a valid opcode.
constexpr bool valid_op(std::uint8_t v) noexcept {
  return v < static_cast<std::uint8_t>(Op::kCount);
}

}  // namespace ash::vcode
