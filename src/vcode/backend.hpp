// Execution-backend selection for downloaded VCODE.
//
// Three engines can execute a verified+sandboxed program, all bit-identical
// on every simulated observable (outcome, insns, cycles, result, registers,
// memory, cache-model state):
//
//   Interp    — the cycle-charging reference interpreter;
//   CodeCache — the download-time pre-decoded threaded form (PR 1);
//   Jit       — the superblock lowering with hoisted budget guards and
//               fused DILP loops (src/vcode/jit/).
//
// The backend is chosen per download via AshOptions::backend, and may be
// overridden for a whole process with ASH_BACKEND=interp|codecache|jit
// (taking precedence over the older ASH_USE_CODE_CACHE on/off switch).
#pragma once

#include <cstdint>

namespace ash::vcode {

enum class Backend : std::uint8_t { Interp, CodeCache, Jit };

const char* to_string(Backend b) noexcept;

/// Uniform translation/execution statistics, comparable across backends.
/// The interpreter has no translated form, so its translation fields are
/// zero; `superblocks` counts basic blocks for the code cache and
/// superblocks for the JIT.
struct BackendStats {
  Backend backend = Backend::Interp;
  std::uint64_t runs = 0;           // completed run() invocations
  std::uint64_t translations = 0;   // translated forms built (0 or 1)
  std::uint64_t superblocks = 0;    // blocks / superblocks in the form
  std::uint64_t emitted_bytes = 0;  // bytes of emitted host form
};

/// ASH_BACKEND environment override. Returns true and writes *out when the
/// variable names a known backend ("interp"/"interpreter"/"off",
/// "codecache"/"cache", "jit"); unset, empty, or unknown values leave *out
/// untouched and return false.
bool backend_env_override(Backend* out);

}  // namespace ash::vcode
