// Typed assembler for VCODE programs.
//
// This is the "set of C macros" interface of the paper's VCODE, recast as a
// C++ builder: callers allocate virtual registers, create and bind labels,
// and emit instructions; `take()` patches branch targets and returns the
// finished Program.
#pragma once

#include <cstdint>
#include <vector>

#include "vcode/program.hpp"

namespace ash::vcode {

/// Forward-referenceable branch target.
struct Label {
  std::uint32_t id;
};

class Builder {
 public:
  Builder() = default;

  /// Allocate a fresh virtual register. Registers r1..r4 are the argument/
  /// result registers (kRegArg0..kRegArg3); allocation starts above them.
  /// Throws std::length_error when the register file is exhausted.
  Reg reg();

  /// Create an unbound label.
  Label label();

  /// Bind `l` to the next emitted instruction. A label may be bound once.
  void bind(Label l);

  /// Additionally register `l` as a legal indirect-jump (Jr) target.
  void mark_indirect(Label l);

  /// Index of the next instruction to be emitted.
  std::uint32_t here() const noexcept {
    return static_cast<std::uint32_t>(insns_.size());
  }

  // --- control ---
  void nop() { emit({Op::Nop, 0, 0, 0, 0}); }
  void halt() { emit({Op::Halt, 0, 0, 0, 0}); }
  void abort(std::uint32_t code = 0) { emit({Op::Abort, 0, 0, 0, code}); }
  void jmp(Label t) { emit_branch(Op::Jmp, 0, 0, t); }
  void jr(Reg rs) { emit({Op::Jr, rs, 0, 0, 0}); }
  void call(Label t) { emit_branch(Op::Call, 0, 0, t); }
  void ret() { emit({Op::Ret, 0, 0, 0, 0}); }
  void beq(Reg a, Reg b, Label t) { emit_branch(Op::Beq, a, b, t); }
  void bne(Reg a, Reg b, Label t) { emit_branch(Op::Bne, a, b, t); }
  void bltu(Reg a, Reg b, Label t) { emit_branch(Op::Bltu, a, b, t); }
  void bgeu(Reg a, Reg b, Label t) { emit_branch(Op::Bgeu, a, b, t); }
  void blt(Reg a, Reg b, Label t) { emit_branch(Op::Blt, a, b, t); }
  void bge(Reg a, Reg b, Label t) { emit_branch(Op::Bge, a, b, t); }

  // --- moves / arithmetic ---
  void movi(Reg rd, std::uint32_t imm) { emit({Op::Movi, rd, 0, 0, imm}); }

  /// Load a label's instruction index into a register (for indirect jumps
  /// through Jr; remember to mark_indirect the label so the sandbox's
  /// translated JrChk will admit it).
  void movi_label(Reg rd, Label l) {
    fixups_.push_back({here(), l.id});
    emit({Op::Movi, rd, 0, 0, kUnbound});
  }
  void mov(Reg rd, Reg rs) { emit({Op::Mov, rd, rs, 0, 0}); }
  void addu(Reg rd, Reg rs, Reg rt) { emit({Op::Addu, rd, rs, rt, 0}); }
  void addiu(Reg rd, Reg rs, std::uint32_t imm) {
    emit({Op::Addiu, rd, rs, 0, imm});
  }
  void subu(Reg rd, Reg rs, Reg rt) { emit({Op::Subu, rd, rs, rt, 0}); }
  void mulu(Reg rd, Reg rs, Reg rt) { emit({Op::Mulu, rd, rs, rt, 0}); }
  void divu(Reg rd, Reg rs, Reg rt) { emit({Op::Divu, rd, rs, rt, 0}); }
  void remu(Reg rd, Reg rs, Reg rt) { emit({Op::Remu, rd, rs, rt, 0}); }
  void and_(Reg rd, Reg rs, Reg rt) { emit({Op::And, rd, rs, rt, 0}); }
  void andi(Reg rd, Reg rs, std::uint32_t imm) {
    emit({Op::Andi, rd, rs, 0, imm});
  }
  void or_(Reg rd, Reg rs, Reg rt) { emit({Op::Or, rd, rs, rt, 0}); }
  void ori(Reg rd, Reg rs, std::uint32_t imm) {
    emit({Op::Ori, rd, rs, 0, imm});
  }
  void xor_(Reg rd, Reg rs, Reg rt) { emit({Op::Xor, rd, rs, rt, 0}); }
  void xori(Reg rd, Reg rs, std::uint32_t imm) {
    emit({Op::Xori, rd, rs, 0, imm});
  }
  void sll(Reg rd, Reg rs, Reg rt) { emit({Op::Sll, rd, rs, rt, 0}); }
  void slli(Reg rd, Reg rs, std::uint32_t sh) {
    emit({Op::Slli, rd, rs, 0, sh});
  }
  void srl(Reg rd, Reg rs, Reg rt) { emit({Op::Srl, rd, rs, rt, 0}); }
  void srli(Reg rd, Reg rs, std::uint32_t sh) {
    emit({Op::Srli, rd, rs, 0, sh});
  }
  void sra(Reg rd, Reg rs, Reg rt) { emit({Op::Sra, rd, rs, rt, 0}); }
  void srai(Reg rd, Reg rs, std::uint32_t sh) {
    emit({Op::Srai, rd, rs, 0, sh});
  }
  void sltu(Reg rd, Reg rs, Reg rt) { emit({Op::Sltu, rd, rs, rt, 0}); }
  void slt(Reg rd, Reg rs, Reg rt) { emit({Op::Slt, rd, rs, rt, 0}); }
  void add(Reg rd, Reg rs, Reg rt) { emit({Op::Add, rd, rs, rt, 0}); }
  void sub(Reg rd, Reg rs, Reg rt) { emit({Op::Sub, rd, rs, rt, 0}); }
  void fadd(Reg rd, Reg rs, Reg rt) { emit({Op::Fadd, rd, rs, rt, 0}); }
  void fmul(Reg rd, Reg rs, Reg rt) { emit({Op::Fmul, rd, rs, rt, 0}); }

  // --- memory ---
  void lw(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lw, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void lhu(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lhu, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void lh(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lh, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void lbu(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lbu, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void lb(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lb, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void sw(Reg src, Reg base, std::int32_t off = 0) {
    emit({Op::Sw, src, base, 0, static_cast<std::uint32_t>(off)});
  }
  void sh(Reg src, Reg base, std::int32_t off = 0) {
    emit({Op::Sh, src, base, 0, static_cast<std::uint32_t>(off)});
  }
  void sb(Reg src, Reg base, std::int32_t off = 0) {
    emit({Op::Sb, src, base, 0, static_cast<std::uint32_t>(off)});
  }
  void lw_u(Reg rd, Reg base, std::int32_t off = 0) {
    emit({Op::Lwu_u, rd, base, 0, static_cast<std::uint32_t>(off)});
  }
  void sw_u(Reg src, Reg base, std::int32_t off = 0) {
    emit({Op::Sw_u, src, base, 0, static_cast<std::uint32_t>(off)});
  }

  // --- networking extensions ---
  void cksum32(Reg acc, Reg rs) { emit({Op::Cksum32, acc, rs, 0, 0}); }
  void bswap32(Reg rd, Reg rs) { emit({Op::Bswap32, rd, rs, 0, 0}); }
  void bswap16(Reg rd, Reg rs) { emit({Op::Bswap16, rd, rs, 0, 0}); }

  // --- pipe I/O ---
  void pin8(Reg rd) { emit({Op::Pin8, rd, 0, 0, 0}); }
  void pin16(Reg rd) { emit({Op::Pin16, rd, 0, 0, 0}); }
  void pin32(Reg rd) { emit({Op::Pin32, rd, 0, 0, 0}); }
  void pout8(Reg rs) { emit({Op::Pout8, rs, 0, 0, 0}); }
  void pout16(Reg rs) { emit({Op::Pout16, rs, 0, 0, 0}); }
  void pout32(Reg rs) { emit({Op::Pout32, rs, 0, 0, 0}); }

  // --- trusted kernel entry points ---
  void t_msglen(Reg rd) { emit({Op::TMsgLen, rd, 0, 0, 0}); }
  void t_send(Reg chan, Reg addr, Reg len) {
    emit({Op::TSend, chan, addr, len, 0});
  }
  void t_dilp(Reg id, Reg src, Reg dst, Reg len) {
    emit({Op::TDilp, id, src, dst, len});
  }
  void t_usercopy(Reg dst, Reg src, Reg len) {
    emit({Op::TUserCopy, dst, src, len, 0});
  }
  void t_msgload(Reg rd, Reg roff, std::int32_t off = 0) {
    emit({Op::TMsgLoad, rd, roff, 0, static_cast<std::uint32_t>(off)});
  }

  /// Emit a raw instruction (used by tests to construct malformed code).
  void emit(Insn insn) { insns_.push_back(insn); }

  /// Finish the program: patch all label references. Throws
  /// std::logic_error if any referenced label is unbound.
  Program take();

 private:
  void emit_branch(Op op, Reg a, Reg b, Label t);

  static constexpr std::uint32_t kUnbound = 0xffffffffu;

  std::vector<Insn> insns_;
  std::vector<std::uint32_t> label_pos_;   // id -> insn index or kUnbound
  std::vector<std::uint32_t> indirect_labels_;
  struct Fixup {
    std::uint32_t insn;
    std::uint32_t label;
  };
  std::vector<Fixup> fixups_;
  Reg next_reg_ = kRegArg3 + 1;  // r5
};

}  // namespace ash::vcode
