#include "vcode/jit/jit.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "trace/trace.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"
#include "vcode/opcodes.hpp"

namespace ash::vcode {

// Everything the dispatch loop touches during a run. Flat, like the
// CodeCache's RunCtx, so the hot state stays in host registers.
struct JitBackend::RunCtx {
  std::uint32_t* regs = nullptr;
  Env* env = nullptr;
  const ExecLimits* limits = nullptr;
  const JumpTable* jt = nullptr;
  std::uint32_t n = 0;

  Env::FastMem fm;

  // res.insns / res.cycles hold the exact counters as of the *current
  // superblock entry*, with dynamic (memory/trusted) cycles folded in as
  // they occur; the static per-op charges stay implicit until an exit
  // finalizes them from the op's prefix sums.
  ExecResult res;
  detail::ResumeState rs;  // software budget + call stack (original pcs)

  std::uint32_t exit_pc = 0;
  Outcome exit_outcome = Outcome::Halted;
  bool delegate = false;
};

namespace {

using EInsn = JitBackend::EInsn;
using XOp = JitBackend::XOp;
using RunCtx = JitBackend::RunCtx;
using LoopInfo = JitBackend::LoopInfo;
using BodyOp = JitBackend::BodyOp;

constexpr std::uint32_t kNoTarget = JitBackend::kNoTarget;
constexpr std::uint32_t kNoPost = JitBackend::kNoPost;

float as_float(std::uint32_t bits) noexcept {
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

std::uint32_t as_bits(float f) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

/// [addr, addr+len) fully inside [lo, hi)? Same no-overflow form as the
/// CodeCache; also exact for the multi-word ranges of the fused loop.
inline bool in_window(std::uint32_t addr, std::uint32_t len, std::uint32_t lo,
                      std::uint32_t hi) {
  return addr >= lo && addr < hi && hi - addr >= len;
}

/// Inlined direct-mapped cache model (sim::Cache::access semantics),
/// bit-identical to the CodeCache's copy: read miss = penalty + tag fill;
/// write = write_cost hit or miss, never a fill; counters per line.
inline std::uint64_t fm_cycles(const Env::FastMem& fm, std::uint32_t addr,
                               std::uint32_t len, bool is_write) {
  std::uint64_t extra = 0;
  const std::uint32_t first = addr >> fm.dline_shift;
  const std::uint32_t last = (addr + (len - 1)) >> fm.dline_shift;
  for (std::uint32_t line = first; line <= last; ++line) {
    const std::uint32_t idx = line & fm.dline_mask;
    const std::uint32_t tag = line + 1;
    if (fm.dtags[idx] == tag) {
      ++*fm.dhits;
      if (is_write) extra += fm.dwrite_cost;
      continue;
    }
    ++*fm.dmisses;
    if (is_write) {
      extra += fm.dwrite_cost;
      continue;
    }
    extra += fm.dread_miss_penalty;
    fm.dtags[idx] = tag;
  }
  return extra;
}

inline std::uint64_t mem_dyn(RunCtx& c, std::uint32_t addr, std::uint32_t len,
                             bool is_write) {
  return c.fm.dtags != nullptr ? fm_cycles(c.fm, addr, len, is_write)
                               : c.env->mem_cycles(addr, len, is_write);
}

/// Finalize the exact counters at op `t` and set a final outcome.
/// Returns false so memory/trusted helpers can tail it.
inline bool jfail(const EInsn* t, RunCtx& c, Outcome o, std::uint32_t at) {
  c.res.insns += t->sum_insns;
  c.res.cycles += t->sum_cycles;
  c.exit_outcome = o;
  c.exit_pc = at;
  return false;
}

/// Post-dynamic-cost re-check: the hoisted guard's cycle bound goes stale
/// whenever a dynamic cost lands mid-superblock. `post_bound` carries the
/// static cost through this op plus the remaining guarded positions, so
/// c.res.cycles (entry + dynamic so far) + post_bound bounds every
/// remaining precheck the interpreter would perform before the last op.
inline bool jstale(const EInsn* t, RunCtx& c) {
  if (c.limits->max_cycles != 0 && t->post_bound != kNoPost &&
      c.res.cycles + t->post_bound >= c.limits->max_cycles) {
    c.res.insns += t->sum_insns;
    c.res.cycles += t->sum_cycles;
    c.delegate = true;
    c.exit_pc = t->pc + 1;
    return false;
  }
  return true;
}

constexpr std::uint32_t jmem_len(Op m) {
  if (m == Op::Lhu || m == Op::Lh || m == Op::Sh) return 2;
  if (m == Op::Lbu || m == Op::Lb || m == Op::Sb) return 1;
  return 4;
}
constexpr bool jmem_aligned(Op m) { return m != Op::Lwu_u && m != Op::Sw_u; }
constexpr bool jmem_store(Op m) {
  return m == Op::Sw || m == Op::Sh || m == Op::Sb || m == Op::Sw_u;
}

/// Load/store template: alignment check (unless the lowering folded it),
/// inlined fast-mem window checks with the virtual-Env fallback, cache
/// model charge, post-dynamic re-check. Returns false on any exit.
template <Op M>
inline bool mem_do(const EInsn* t, RunCtx& c) {
  const std::uint32_t addr = c.regs[t->b] + t->imm;
  constexpr std::uint32_t len = jmem_len(M);
  if constexpr (jmem_aligned(M) && len > 1) {
    if ((addr & (len - 1)) != 0) {
      return jfail(t, c, Outcome::AlignFault, t->pc);
    }
  }
  if (c.fm.mem != nullptr) {
    const bool owner = in_window(addr, len, c.fm.owner_lo, c.fm.owner_hi);
    if constexpr (jmem_store(M)) {
      if (!owner) return jfail(t, c, Outcome::MemFault, t->pc);
      const std::uint32_t v = c.regs[t->a];
      std::memcpy(c.fm.mem + (addr - c.fm.mem_base), &v, len);
      c.res.cycles += mem_dyn(c, addr, len, /*is_write=*/true);
    } else {
      if (!owner && !in_window(addr, len, c.fm.msg_lo, c.fm.msg_hi)) {
        return jfail(t, c, Outcome::MemFault, t->pc);
      }
      std::uint32_t v = 0;
      std::memcpy(&v, c.fm.mem + (addr - c.fm.mem_base), len);
      c.res.cycles += mem_dyn(c, addr, len, /*is_write=*/false);
      if constexpr (M == Op::Lh) {
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
      }
      if constexpr (M == Op::Lb) {
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
      }
      c.regs[t->a] = v;
      c.regs[kRegZero] = 0;
    }
    return jstale(t, c);
  }
  if constexpr (jmem_store(M)) {
    const std::uint32_t v = c.regs[t->a];
    if (!c.env->mem_write(addr, &v, len)) {
      return jfail(t, c, Outcome::MemFault, t->pc);
    }
    c.res.cycles += c.env->mem_cycles(addr, len, /*is_write=*/true);
  } else {
    std::uint8_t buf[4] = {};
    if (!c.env->mem_read(addr, buf, len)) {
      return jfail(t, c, Outcome::MemFault, t->pc);
    }
    c.res.cycles += c.env->mem_cycles(addr, len, /*is_write=*/false);
    std::uint32_t v = 0;
    std::memcpy(&v, buf, len);  // simulated machine is little-endian
    if constexpr (M == Op::Lh) {
      v = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
    }
    if constexpr (M == Op::Lb) {
      v = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
    }
    c.regs[t->a] = v;
    c.regs[kRegZero] = 0;
  }
  return jstale(t, c);
}

/// Apply a fused loop's register-pure body in source order on the live
/// register file. The matcher admits only non-faulting ops that never
/// touch the loop-carried src/dst/len registers.
inline void apply_body(const LoopInfo& L, std::uint32_t* regs) {
  for (const BodyOp& f : L.body) {
    std::uint32_t v;
    switch (f.op) {
      case Op::Nop: continue;
      case Op::Movi: v = f.imm; break;
      case Op::Mov: v = regs[f.b]; break;
      case Op::Addu:
      case Op::Add: v = regs[f.b] + regs[f.c]; break;
      case Op::Addiu: v = regs[f.b] + f.imm; break;
      case Op::Subu:
      case Op::Sub: v = regs[f.b] - regs[f.c]; break;
      case Op::Mulu: v = regs[f.b] * regs[f.c]; break;
      case Op::And: v = regs[f.b] & regs[f.c]; break;
      case Op::Andi: v = regs[f.b] & f.imm; break;
      case Op::Or: v = regs[f.b] | regs[f.c]; break;
      case Op::Ori: v = regs[f.b] | f.imm; break;
      case Op::Xor: v = regs[f.b] ^ regs[f.c]; break;
      case Op::Xori: v = regs[f.b] ^ f.imm; break;
      case Op::Sll: v = regs[f.b] << (regs[f.c] & 31); break;
      case Op::Slli: v = regs[f.b] << (f.imm & 31); break;
      case Op::Srl: v = regs[f.b] >> (regs[f.c] & 31); break;
      case Op::Srli: v = regs[f.b] >> (f.imm & 31); break;
      case Op::Sra:
        v = static_cast<std::uint32_t>(static_cast<std::int32_t>(regs[f.b]) >>
                                       (regs[f.c] & 31));
        break;
      case Op::Srai:
        v = static_cast<std::uint32_t>(static_cast<std::int32_t>(regs[f.b]) >>
                                       (f.imm & 31));
        break;
      case Op::Sltu: v = regs[f.b] < regs[f.c] ? 1 : 0; break;
      case Op::Slt:
        v = static_cast<std::int32_t>(regs[f.b]) <
                    static_cast<std::int32_t>(regs[f.c])
                ? 1
                : 0;
        break;
      case Op::Fadd: v = as_bits(as_float(regs[f.b]) + as_float(regs[f.c])); break;
      case Op::Fmul: v = as_bits(as_float(regs[f.b]) * as_float(regs[f.c])); break;
      case Op::Cksum32:
        v = util::cksum32_accumulate(regs[f.a], regs[f.b]);
        break;
      case Op::Bswap32: v = util::bswap32(regs[f.b]); break;
      case Op::Bswap16:
        v = util::bswap16(static_cast<std::uint16_t>(regs[f.b]));
        break;
      default: continue;  // unreachable: the matcher filtered the body
    }
    regs[f.a] = v;
    regs[kRegZero] = 0;
  }
}

/// The computed-goto dispatch loop. The label table below must mirror
/// XOp's declaration order exactly.
void exec(const EInsn* code, const std::uint32_t* entry_of,
          const LoopInfo* loops, RunCtx& c) {
  static const void* const kLabel[] = {
      &&x_Guard, &&x_EndFall, &&x_End, &&x_Bad,
      &&x_Halt, &&x_Abort, &&x_Jmp, &&x_Jr, &&x_JrChk, &&x_Call, &&x_Ret,
      &&x_Beq, &&x_Bne, &&x_Bltu, &&x_Bgeu, &&x_Blt, &&x_Bge,
      &&x_Budget,
      &&x_Nop,
      &&x_Movi, &&x_Mov,
      &&x_Addu, &&x_Addiu, &&x_Subu, &&x_Mulu, &&x_Divu, &&x_Remu,
      &&x_And, &&x_Andi, &&x_Or, &&x_Ori, &&x_Xor, &&x_Xori,
      &&x_Sll, &&x_Slli, &&x_Srl, &&x_Srli, &&x_Sra, &&x_Srai,
      &&x_Sltu, &&x_Slt, &&x_Fadd, &&x_Fmul,
      &&x_Lw, &&x_Lhu, &&x_Lh, &&x_Lbu, &&x_Lb, &&x_LwU,
      &&x_Sw, &&x_Sh, &&x_Sb, &&x_SwU,
      &&x_AlignFault,
      &&x_Cksum32, &&x_Bswap32, &&x_Bswap16,
      &&x_Pin, &&x_Pout,
      &&x_TMsgLen, &&x_TSend, &&x_TDilp, &&x_TUserCopy, &&x_TMsgLoad,
      &&x_FusedLoop,
  };
  static_assert(sizeof(kLabel) / sizeof(kLabel[0]) ==
                static_cast<std::size_t>(XOp::kCount));

  std::uint32_t* const regs = c.regs;
  const std::uint64_t max_insns = c.limits->max_insns;
  const std::uint64_t max_cycles = c.limits->max_cycles;
  const EInsn* t = code + entry_of[0];

#define DISPATCH() goto* kLabel[static_cast<std::size_t>(t->op)]
#define NEXT()     \
  do {             \
    ++t;           \
    DISPATCH();    \
  } while (0)
#define JUMP(idx)        \
  do {                   \
    t = code + (idx);    \
    DISPATCH();          \
  } while (0)
#define FINALIZE()                  \
  do {                              \
    c.res.insns += t->sum_insns;    \
    c.res.cycles += t->sum_cycles;  \
  } while (0)
#define EXIT(o, at)          \
  do {                       \
    c.exit_outcome = (o);    \
    c.exit_pc = (at);        \
    return;                  \
  } while (0)
#define FAULT(o)             \
  do {                       \
    FINALIZE();              \
    EXIT(o, t->pc);          \
  } while (0)
#define HANDOFF(at)          \
  do {                       \
    c.delegate = true;       \
    c.exit_pc = (at);        \
    return;                  \
  } while (0)
/* Enter a superblock whose original index is not statically known
   (indirect jumps, returns). Leaders cover every legal value; hand off
   defensively otherwise. */
#define ENTER(idx)                            \
  do {                                        \
    const std::uint32_t ei_ = entry_of[idx];  \
    if (ei_ == kNoTarget) HANDOFF(idx);       \
    JUMP(ei_);                                \
  } while (0)
#define BRANCH(cond)                                       \
  do {                                                     \
    if (cond) {                                            \
      FINALIZE();                                          \
      if (t->target == kNoTarget) {                        \
        EXIT(Outcome::BadInstruction, t->imm);             \
      }                                                    \
      JUMP(t->target);                                     \
    }                                                      \
    NEXT();                                                \
  } while (0)
#define ALU(expr)             \
  do {                        \
    regs[t->a] = (expr);      \
    regs[kRegZero] = 0;       \
    NEXT();                   \
  } while (0)
#define MEM(M)                        \
  do {                                \
    if (!mem_do<M>(t, c)) return;     \
    NEXT();                          \
  } while (0)

  DISPATCH();

x_Guard:
  // One hoisted precheck per superblock: imm = instruction count of the
  // full fall-through path, sum_cycles = its static cost minus the last
  // op. A trip means a ceiling *may* fire inside; counters are already
  // exact here, so hand the state to the interpreter core.
  if (c.res.insns + t->imm - 1 >= max_insns ||
      (max_cycles != 0 && c.res.cycles + t->sum_cycles >= max_cycles)) {
    HANDOFF(t->pc);
  }
  NEXT();

x_EndFall:
  FINALIZE();
  JUMP(t->target);

x_End:
  EXIT(Outcome::BadInstruction, t->pc);

x_Bad:
  FAULT(Outcome::BadInstruction);

x_Halt:
  FAULT(Outcome::Halted);

x_Abort:
  c.res.abort_code = t->imm;
  FAULT(Outcome::VoluntaryAbort);

x_Jmp:
  FINALIZE();
  if (t->target == kNoTarget) EXIT(Outcome::BadInstruction, t->imm);
  JUMP(t->target);

x_Jr: {
  FINALIZE();
  const std::uint32_t tv = regs[t->a];
  if (tv >= c.n) EXIT(Outcome::IndirectJumpFault, t->pc);
  ENTER(tv);
}

x_JrChk: {
  FINALIZE();
  const std::int64_t tr = c.jt->lookup(regs[t->a]);
  if (tr < 0) EXIT(Outcome::IndirectJumpFault, t->pc);
  const std::uint32_t idx = static_cast<std::uint32_t>(tr);
  if (idx >= c.n) EXIT(Outcome::BadInstruction, idx);
  ENTER(idx);
}

x_Call:
  FINALIZE();
  if (c.rs.call_depth >= kMaxCallDepth) {
    EXIT(Outcome::CallDepthExceeded, t->pc);
  }
  c.rs.call_stack[c.rs.call_depth++] = t->pc + 1;
  if (t->target == kNoTarget) EXIT(Outcome::BadInstruction, t->imm);
  JUMP(t->target);

x_Ret: {
  FINALIZE();
  if (c.rs.call_depth == 0) EXIT(Outcome::CallDepthExceeded, t->pc);
  const std::uint32_t rpc = c.rs.call_stack[--c.rs.call_depth];
  if (rpc >= c.n) EXIT(Outcome::BadInstruction, rpc);
  ENTER(rpc);
}

x_Beq: BRANCH(regs[t->a] == regs[t->b]);
x_Bne: BRANCH(regs[t->a] != regs[t->b]);
x_Bltu: BRANCH(regs[t->a] < regs[t->b]);
x_Bgeu: BRANCH(regs[t->a] >= regs[t->b]);
x_Blt:
  BRANCH(static_cast<std::int32_t>(regs[t->a]) <
         static_cast<std::int32_t>(regs[t->b]));
x_Bge:
  BRANCH(static_cast<std::int32_t>(regs[t->a]) >=
         static_cast<std::int32_t>(regs[t->b]));

x_Budget:
  if (c.rs.budget <= t->imm) FAULT(Outcome::BudgetExceeded);
  c.rs.budget -= t->imm;
  NEXT();

x_Nop:
  NEXT();

x_Movi: ALU(t->imm);
x_Mov: ALU(regs[t->b]);
x_Addu: ALU(regs[t->b] + regs[t->c]);
x_Addiu: ALU(regs[t->b] + t->imm);
x_Subu: ALU(regs[t->b] - regs[t->c]);
x_Mulu: ALU(regs[t->b] * regs[t->c]);
x_Divu: {
  const std::uint32_t d = regs[t->c];
  if (d == 0) FAULT(Outcome::DivideByZero);
  ALU(regs[t->b] / d);
}
x_Remu: {
  const std::uint32_t d = regs[t->c];
  if (d == 0) FAULT(Outcome::DivideByZero);
  ALU(regs[t->b] % d);
}
x_And: ALU(regs[t->b] & regs[t->c]);
x_Andi: ALU(regs[t->b] & t->imm);
x_Or: ALU(regs[t->b] | regs[t->c]);
x_Ori: ALU(regs[t->b] | t->imm);
x_Xor: ALU(regs[t->b] ^ regs[t->c]);
x_Xori: ALU(regs[t->b] ^ t->imm);
x_Sll: ALU(regs[t->b] << (regs[t->c] & 31));
x_Slli: ALU(regs[t->b] << (t->imm & 31));
x_Srl: ALU(regs[t->b] >> (regs[t->c] & 31));
x_Srli: ALU(regs[t->b] >> (t->imm & 31));
x_Sra:
  ALU(static_cast<std::uint32_t>(static_cast<std::int32_t>(regs[t->b]) >>
                                 (regs[t->c] & 31)));
x_Srai:
  ALU(static_cast<std::uint32_t>(static_cast<std::int32_t>(regs[t->b]) >>
                                 (t->imm & 31)));
x_Sltu: ALU(regs[t->b] < regs[t->c] ? 1 : 0);
x_Slt:
  ALU(static_cast<std::int32_t>(regs[t->b]) <
              static_cast<std::int32_t>(regs[t->c])
          ? 1
          : 0);
x_Fadd: ALU(as_bits(as_float(regs[t->b]) + as_float(regs[t->c])));
x_Fmul: ALU(as_bits(as_float(regs[t->b]) * as_float(regs[t->c])));

x_Lw: MEM(Op::Lw);
x_Lhu: MEM(Op::Lhu);
x_Lh: MEM(Op::Lh);
x_Lbu: MEM(Op::Lbu);
x_Lb: MEM(Op::Lb);
x_LwU: MEM(Op::Lwu_u);
x_Sw: MEM(Op::Sw);
x_Sh: MEM(Op::Sh);
x_Sb: MEM(Op::Sb);
x_SwU: MEM(Op::Sw_u);

x_AlignFault:
  FAULT(Outcome::AlignFault);

x_Cksum32: ALU(util::cksum32_accumulate(regs[t->a], regs[t->b]));
x_Bswap32: ALU(util::bswap32(regs[t->b]));
x_Bswap16: ALU(util::bswap16(static_cast<std::uint16_t>(regs[t->b])));

x_Pin: {
  std::uint32_t v = 0;
  if (!c.env->pipe_in(t->c, &v)) FAULT(Outcome::StreamFault);
  ALU(v);
}
x_Pout:
  if (!c.env->pipe_out(t->c, regs[t->a])) FAULT(Outcome::StreamFault);
  NEXT();

x_TMsgLen: {
  std::uint32_t len = 0;
  std::uint64_t cyc = 0;
  if (!c.env->t_msglen(&len, &cyc)) FAULT(Outcome::TrustedDenied);
  c.res.cycles += cyc;
  regs[t->a] = len;
  regs[kRegZero] = 0;
  if (!jstale(t, c)) return;
  NEXT();
}
x_TSend: {
  std::uint32_t status = 0;
  std::uint64_t cyc = 0;
  if (!c.env->t_send(regs[t->a], regs[t->b], regs[t->c], &status, &cyc)) {
    FAULT(Outcome::TrustedDenied);
  }
  c.res.cycles += cyc;
  regs[kRegArg0] = status;
  if (!jstale(t, c)) return;
  NEXT();
}
x_TDilp: {
  // imm < kNumRegs is guaranteed by the lowering (else XOp::Bad).
  std::uint32_t status = 0;
  std::uint64_t cyc = 0;
  if (!c.env->t_dilp(regs[t->a], regs[t->b], regs[t->c], regs[t->imm],
                     &status, &cyc)) {
    FAULT(Outcome::TrustedDenied);
  }
  c.res.cycles += cyc;
  regs[kRegArg0] = status;
  if (!jstale(t, c)) return;
  NEXT();
}
x_TUserCopy: {
  std::uint32_t status = 0;
  std::uint64_t cyc = 0;
  if (!c.env->t_usercopy(regs[t->a], regs[t->b], regs[t->c], &status, &cyc)) {
    FAULT(Outcome::TrustedDenied);
  }
  c.res.cycles += cyc;
  regs[kRegArg0] = status;
  if (!jstale(t, c)) return;
  NEXT();
}
x_TMsgLoad: {
  std::uint32_t value = 0;
  std::uint64_t cyc = 0;
  if (!c.env->t_msgload(regs[t->b] + t->imm, &value, &cyc)) {
    FAULT(Outcome::TrustedDenied);
  }
  c.res.cycles += cyc;
  regs[t->a] = value;
  regs[kRegZero] = 0;
  if (!jstale(t, c)) return;
  NEXT();
}

x_FusedLoop: {
  // Native single-pass transfer. Preconditions: no cycle ceiling (the
  // DILP engine's regime — only the instruction backstop applies), host
  // fast memory, a nonzero word-multiple length, and the whole source
  // and destination ranges inside the fast-mem windows. Anything else
  // falls through to the generic superblock (the next slot), including
  // the re-entry of each generically executed iteration.
  if (max_cycles != 0 || c.fm.mem == nullptr) NEXT();
  const LoopInfo& L = loops[t->imm];
  const std::uint32_t lenb = regs[L.r_len];
  if (lenb == 0 || (lenb & 3) != 0) NEXT();
  std::uint32_t src = regs[L.r_src];
  std::uint32_t dst = regs[L.r_dst];
  if (!in_window(src, lenb, c.fm.owner_lo, c.fm.owner_hi) &&
      !in_window(src, lenb, c.fm.msg_lo, c.fm.msg_hi)) {
    NEXT();
  }
  if (!in_window(dst, lenb, c.fm.owner_lo, c.fm.owner_hi)) NEXT();
  // Iterations provably clear of the instruction backstop: running k full
  // iterations needs entry_insns + k*len <= max_insns.
  const std::uint64_t avail =
      max_insns > c.res.insns ? max_insns - c.res.insns : 0;
  const std::uint64_t k_max = avail / L.len;
  if (k_max == 0) NEXT();
  const std::uint64_t iters = lenb / 4u;
  const std::uint64_t k = iters < k_max ? iters : k_max;
  std::uint64_t dyn = 0;
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uint32_t w;
    std::memcpy(&w, c.fm.mem + (src - c.fm.mem_base), 4);
    dyn += mem_dyn(c, src, 4, /*is_write=*/false);
    regs[L.load_reg] = w;
    regs[kRegZero] = 0;
    apply_body(L, regs);
    const std::uint32_t v = regs[L.store_reg];
    std::memcpy(c.fm.mem + (dst - c.fm.mem_base), &v, 4);
    dyn += mem_dyn(c, dst, 4, /*is_write=*/true);
    src += 4;
    dst += 4;
  }
  regs[L.r_src] = src;
  regs[L.r_dst] = dst;
  regs[L.r_len] = lenb - static_cast<std::uint32_t>(k * 4);
  c.res.insns += k * L.len;
  c.res.cycles += k * L.cyc_iter + dyn;
  if (k == iters) JUMP(L.fall_target);  // last Bne falls through
  HANDOFF(L.start_pc);  // backstop may fire: counters exact at loop head
}

#undef DISPATCH
#undef NEXT
#undef JUMP
#undef FINALIZE
#undef EXIT
#undef FAULT
#undef HANDOFF
#undef ENTER
#undef BRANCH
#undef ALU
#undef MEM
}

std::uint32_t jbase_cost(Op op) {
  return valid_op(static_cast<std::uint8_t>(op)) ? op_info(op).base_cycles : 0;
}

/// leader[i] = 1 iff original index i begins a superblock. Identical to
/// the CodeCache's basic-block leaders except that the fall-through
/// successor of a *conditional* branch is not a leader — the superblock
/// continues through it. Unconditional transfers still end the region,
/// and every branch/jump/call target, call return site, and translated
/// indirect target begins one. An unchecked Jr degenerates to
/// every-index-is-a-leader, exactly like the CodeCache.
std::vector<std::uint8_t> superblock_leaders(const Program& prog) {
  const auto n = static_cast<std::uint32_t>(prog.insns.size());
  std::vector<std::uint8_t> leader(static_cast<std::size_t>(n) + 1, 0);
  if (n == 0) return leader;
  leader[0] = 1;
  bool any_jr = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    switch (prog.insns[i].op) {
      case Op::Jmp:
      case Op::Call:
        if (prog.insns[i].imm < n) leader[prog.insns[i].imm] = 1;
        if (i + 1 < n) leader[i + 1] = 1;
        break;
      case Op::Beq:
      case Op::Bne:
      case Op::Bltu:
      case Op::Bgeu:
      case Op::Blt:
      case Op::Bge:
        if (prog.insns[i].imm < n) leader[prog.insns[i].imm] = 1;
        break;
      case Op::Jr:
        any_jr = true;
        [[fallthrough]];
      case Op::JrChk:
      case Op::Ret:
      case Op::Halt:
      case Op::Abort:
        if (i + 1 < n) leader[i + 1] = 1;
        break;
      default:
        break;
    }
  }
  auto mark = [&](std::uint32_t v) {
    if (v < n) leader[v] = 1;
  };
  if (!prog.indirect_map.empty()) {
    for (const auto& [k, v] : prog.indirect_map) mark(v);
  } else {
    for (std::uint32_t tgt : prog.indirect_targets) mark(tgt);
  }
  if (any_jr) std::fill(leader.begin(), leader.begin() + n, 1);
  return leader;
}

/// Ops a fused-loop body may contain: register-pure and non-faulting.
bool body_op_ok(Op op) {
  switch (op) {
    case Op::Nop:
    case Op::Movi:
    case Op::Mov:
    case Op::Addu:
    case Op::Add:
    case Op::Addiu:
    case Op::Subu:
    case Op::Sub:
    case Op::Mulu:
    case Op::And:
    case Op::Andi:
    case Op::Or:
    case Op::Ori:
    case Op::Xor:
    case Op::Xori:
    case Op::Sll:
    case Op::Slli:
    case Op::Srl:
    case Op::Srli:
    case Op::Sra:
    case Op::Srai:
    case Op::Sltu:
    case Op::Slt:
    case Op::Fadd:
    case Op::Fmul:
    case Op::Cksum32:
    case Op::Bswap32:
    case Op::Bswap16:
      return true;
    default:
      return false;
  }
}

/// Recognize the dilp::Compiler word-loop skeleton in superblock [s, e).
/// Layout (see dilp/compiler.cpp): Lwu_u load,(src)+0 ; body... ;
/// Sw_u store,(dst)+0 ; Addiu src,+4 ; Addiu dst,+4 ; Addiu len,-4 ;
/// Bne len,r0 -> s. The body must never read or write src/dst/len (the
/// native pass keeps them in locals), and loads/stores must not use them
/// as data registers either.
bool match_fused_loop(const Program& prog, std::uint32_t s, std::uint32_t e,
                      LoopInfo* out) {
  if (e - s < 6) return false;
  const auto& ins = prog.insns;
  const Insn& bne = ins[e - 1];
  if (bne.op != Op::Bne || bne.b != kRegZero || bne.imm != s) return false;
  const Insn& dec = ins[e - 2];
  if (dec.op != Op::Addiu || dec.a != bne.a || dec.b != bne.a ||
      dec.imm != static_cast<std::uint32_t>(-4)) {
    return false;
  }
  const Insn& ld = ins[s];
  const Insn& st = ins[e - 5];
  const Insn& bsrc = ins[e - 4];
  const Insn& bdst = ins[e - 3];
  if (ld.op != Op::Lwu_u || ld.imm != 0) return false;
  if (st.op != Op::Sw_u || st.imm != 0) return false;
  const std::uint8_t r_src = ld.b;
  const std::uint8_t r_dst = st.b;
  const std::uint8_t r_len = dec.a;
  if (bsrc.op != Op::Addiu || bsrc.a != r_src || bsrc.b != r_src ||
      bsrc.imm != 4) {
    return false;
  }
  if (bdst.op != Op::Addiu || bdst.a != r_dst || bdst.b != r_dst ||
      bdst.imm != 4) {
    return false;
  }
  if (r_src == kRegZero || r_dst == kRegZero || r_len == kRegZero) {
    return false;
  }
  if (r_src == r_dst || r_src == r_len || r_dst == r_len) return false;
  auto pinned = [&](std::uint8_t r) {
    return r == r_src || r == r_dst || r == r_len;
  };
  if (pinned(ld.a) || pinned(st.a)) return false;
  std::vector<BodyOp> body;
  for (std::uint32_t j = s + 1; j + 5 < e; ++j) {
    const Insn& f = ins[j];
    if (!body_op_ok(f.op)) return false;
    const OpInfo& info = op_info(f.op);
    if ((info.writes_a || info.reads_a) && pinned(f.a)) return false;
    if (info.reads_b && pinned(f.b)) return false;
    if (info.reads_c && pinned(f.c)) return false;
    body.push_back({f.op, f.a, f.b, f.c, f.imm});
  }
  out->start_pc = s;
  out->len = e - s;
  out->r_src = r_src;
  out->r_dst = r_dst;
  out->r_len = r_len;
  out->load_reg = ld.a;
  out->store_reg = st.a;
  out->body = std::move(body);
  return true;
}

/// Per-superblock constant tracking for the guard folding: bit r of
/// `known` means regs[r] has the compile-time value val[r] on every path
/// reaching the current position (superblocks are single-entry and
/// straight-line, so fall-through dataflow is exact). Trusted calls and
/// pipe I/O may exchange values through the bound register file, so they
/// invalidate everything; r0 is always known zero.
struct ConstState {
  std::uint64_t known = 1;  // bit 0: r0 == 0
  std::array<std::uint32_t, kNumRegs> val{};

  bool knows(std::uint8_t r) const { return (known >> r) & 1u; }
  void reset() { known = 1; }
  void set(std::uint8_t r, std::uint32_t v) {
    if (r == kRegZero) return;
    known |= 1ull << r;
    val[r] = v;
  }
  void kill(std::uint8_t r) {
    if (r == kRegZero) return;
    known &= ~(1ull << r);
  }

  void update(const Insn& f) {
    if (!valid_op(static_cast<std::uint8_t>(f.op))) return;
    const OpInfo& info = op_info(f.op);
    if (info.is_trusted || f.op == Op::Pin8 || f.op == Op::Pin16 ||
        f.op == Op::Pin32 || f.op == Op::Pout8 || f.op == Op::Pout16 ||
        f.op == Op::Pout32) {
      reset();
      return;
    }
    switch (f.op) {
      case Op::Movi: set(f.a, f.imm); return;
      case Op::Mov:
        knows(f.b) ? set(f.a, val[f.b]) : kill(f.a);
        return;
      case Op::Addiu:
        knows(f.b) ? set(f.a, val[f.b] + f.imm) : kill(f.a);
        return;
      case Op::Andi:
        knows(f.b) ? set(f.a, val[f.b] & f.imm) : kill(f.a);
        return;
      case Op::Ori:
        knows(f.b) ? set(f.a, val[f.b] | f.imm) : kill(f.a);
        return;
      case Op::Xori:
        knows(f.b) ? set(f.a, val[f.b] ^ f.imm) : kill(f.a);
        return;
      case Op::Slli:
        knows(f.b) ? set(f.a, val[f.b] << (f.imm & 31)) : kill(f.a);
        return;
      case Op::Srli:
        knows(f.b) ? set(f.a, val[f.b] >> (f.imm & 31)) : kill(f.a);
        return;
      default:
        break;
    }
    if (info.writes_a) kill(f.a);
  }
};

/// Statically evaluated branch condition; only called with both operands
/// known.
bool branch_taken(Op op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Op::Beq: return a == b;
    case Op::Bne: return a != b;
    case Op::Bltu: return a < b;
    case Op::Bgeu: return a >= b;
    case Op::Blt:
      return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
    case Op::Bge:
      return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
    default: return false;
  }
}

}  // namespace

JitBackend::JitBackend(const Program& prog) : prog_(prog), jt_(prog_) {
  build();
}

void JitBackend::build() {
  const auto n = static_cast<std::uint32_t>(prog_.insns.size());
  const auto leader = superblock_leaders(prog_);

  struct Fixup {
    std::size_t slot;
    std::uint32_t target;
    bool allow_end;  // EndFall may resolve to the synthetic pc==n slot
  };
  std::vector<Fixup> fixups;
  struct LoopFix {
    std::size_t loop;
    std::uint32_t target;
  };
  std::vector<LoopFix> loop_fixups;

  entry_of_.assign(static_cast<std::size_t>(n) + 1, kNoTarget);

  std::vector<std::uint32_t> prefix;
  ConstState cs;
  for (std::uint32_t s = 0; s < n;) {
    std::uint32_t e = s + 1;
    while (e < n && !leader[e]) ++e;
    const std::uint32_t len = e - s;

    // prefix[k] = static cycles of positions s .. s+k-1.
    prefix.assign(static_cast<std::size_t>(len) + 1, 0);
    for (std::uint32_t k = 0; k < len; ++k) {
      prefix[k + 1] = prefix[k] + jbase_cost(prog_.insns[s + k].op);
    }
    const std::uint32_t guard_cycles = prefix[len - 1];

    SbMeta meta;
    meta.start = s;
    meta.len = len;
    meta.first = static_cast<std::uint32_t>(code_.size());

    LoopInfo loop;
    if (match_fused_loop(prog_, s, e, &loop)) {
      loop.cyc_iter = prefix[len];
      meta.loop = static_cast<std::int32_t>(loops_.size());
      EInsn fl;
      fl.op = XOp::FusedLoop;
      fl.imm = static_cast<std::uint32_t>(loops_.size());
      fl.pc = s;
      code_.push_back(fl);
      loop_fixups.push_back({loops_.size(), e});
      loops_.push_back(std::move(loop));
    }
    entry_of_[s] = meta.first;

    EInsn guard;
    guard.op = XOp::Guard;
    guard.imm = len;
    guard.sum_cycles = guard_cycles;
    guard.pc = s;
    code_.push_back(guard);

    cs.reset();
    for (std::uint32_t j = s; j < e; ++j) {
      const Insn& f = prog_.insns[j];
      const std::uint32_t k = j - s;
      EInsn ti;
      ti.a = f.a;
      ti.b = f.b;
      ti.c = f.c;
      ti.imm = f.imm;
      ti.pc = j;
      ti.target = kNoTarget;
      ti.sum_insns = k + 1;
      ti.sum_cycles = prefix[k + 1];
      ti.post_bound = k + 1 < len ? guard_cycles : kNoPost;

      switch (f.op) {
        case Op::Nop: ti.op = XOp::Nop; break;
        case Op::Halt: ti.op = XOp::Halt; break;
        case Op::Abort: ti.op = XOp::Abort; break;
        case Op::Jmp:
          ti.op = XOp::Jmp;
          fixups.push_back({code_.size(), f.imm, false});
          break;
        case Op::Jr: ti.op = XOp::Jr; break;
        case Op::JrChk: ti.op = XOp::JrChk; break;
        case Op::Call:
          ti.op = XOp::Call;
          fixups.push_back({code_.size(), f.imm, false});
          break;
        case Op::Ret: ti.op = XOp::Ret; break;
        case Op::Beq:
        case Op::Bne:
        case Op::Bltu:
        case Op::Bgeu:
        case Op::Blt:
        case Op::Bge:
          if (cs.knows(f.a) && cs.knows(f.b)) {
            // Constant-folded branch guard (the DPF-atom mask+compare
            // shape): the outcome is known at lowering time. Costs and
            // fault semantics are unchanged — an always-taken branch
            // becomes a direct jump, a never-taken one a fall-through.
            ++folded_;
            if (branch_taken(f.op, cs.val[f.a], cs.val[f.b])) {
              ti.op = XOp::Jmp;
              fixups.push_back({code_.size(), f.imm, false});
            } else {
              ti.op = XOp::Nop;
            }
          } else {
            switch (f.op) {
              case Op::Beq: ti.op = XOp::Beq; break;
              case Op::Bne: ti.op = XOp::Bne; break;
              case Op::Bltu: ti.op = XOp::Bltu; break;
              case Op::Bgeu: ti.op = XOp::Bgeu; break;
              case Op::Blt: ti.op = XOp::Blt; break;
              default: ti.op = XOp::Bge; break;
            }
            fixups.push_back({code_.size(), f.imm, false});
          }
          break;
        case Op::Budget: ti.op = XOp::Budget; break;
        case Op::Movi: ti.op = XOp::Movi; break;
        case Op::Mov: ti.op = XOp::Mov; break;
        case Op::Addu:
        case Op::Add: ti.op = XOp::Addu; break;
        case Op::Addiu: ti.op = XOp::Addiu; break;
        case Op::Subu:
        case Op::Sub: ti.op = XOp::Subu; break;
        case Op::Mulu: ti.op = XOp::Mulu; break;
        case Op::Divu: ti.op = XOp::Divu; break;
        case Op::Remu: ti.op = XOp::Remu; break;
        case Op::And: ti.op = XOp::And; break;
        case Op::Andi: ti.op = XOp::Andi; break;
        case Op::Or: ti.op = XOp::Or; break;
        case Op::Ori: ti.op = XOp::Ori; break;
        case Op::Xor: ti.op = XOp::Xor; break;
        case Op::Xori: ti.op = XOp::Xori; break;
        case Op::Sll: ti.op = XOp::Sll; break;
        case Op::Slli: ti.op = XOp::Slli; break;
        case Op::Srl: ti.op = XOp::Srl; break;
        case Op::Srli: ti.op = XOp::Srli; break;
        case Op::Sra: ti.op = XOp::Sra; break;
        case Op::Srai: ti.op = XOp::Srai; break;
        case Op::Sltu: ti.op = XOp::Sltu; break;
        case Op::Slt: ti.op = XOp::Slt; break;
        case Op::Fadd: ti.op = XOp::Fadd; break;
        case Op::Fmul: ti.op = XOp::Fmul; break;
        case Op::Lw:
          // Constant-folded alignment guard: a provably aligned word
          // access lowers to the unaligned-form template (identical
          // semantics once aligned); a provably misaligned one lowers to
          // a pre-faulted slot that still charges exactly.
          if (cs.knows(f.b)) {
            ++folded_;
            ti.op = ((cs.val[f.b] + f.imm) & 3u) != 0 ? XOp::AlignFault
                                                      : XOp::LwU;
          } else {
            ti.op = XOp::Lw;
          }
          break;
        case Op::Sw:
          if (cs.knows(f.b)) {
            ++folded_;
            ti.op = ((cs.val[f.b] + f.imm) & 3u) != 0 ? XOp::AlignFault
                                                      : XOp::SwU;
          } else {
            ti.op = XOp::Sw;
          }
          break;
        case Op::Lhu:
        case Op::Lh:
        case Op::Sh:
          if (cs.knows(f.b) && ((cs.val[f.b] + f.imm) & 1u) != 0) {
            ++folded_;
            ti.op = XOp::AlignFault;
          } else {
            ti.op = f.op == Op::Lhu ? XOp::Lhu
                    : f.op == Op::Lh ? XOp::Lh
                                     : XOp::Sh;
          }
          break;
        case Op::Lbu: ti.op = XOp::Lbu; break;
        case Op::Lb: ti.op = XOp::Lb; break;
        case Op::Lwu_u: ti.op = XOp::LwU; break;
        case Op::Sw_u: ti.op = XOp::SwU; break;
        case Op::Sb: ti.op = XOp::Sb; break;
        case Op::Cksum32: ti.op = XOp::Cksum32; break;
        case Op::Bswap32: ti.op = XOp::Bswap32; break;
        case Op::Bswap16: ti.op = XOp::Bswap16; break;
        case Op::Pin8:
        case Op::Pin16:
        case Op::Pin32:
          ti.op = XOp::Pin;
          ti.c = f.op == Op::Pin8 ? 1 : f.op == Op::Pin16 ? 2 : 4;
          break;
        case Op::Pout8:
        case Op::Pout16:
        case Op::Pout32:
          ti.op = XOp::Pout;
          ti.c = f.op == Op::Pout8 ? 1 : f.op == Op::Pout16 ? 2 : 4;
          break;
        case Op::TMsgLen: ti.op = XOp::TMsgLen; break;
        case Op::TSend: ti.op = XOp::TSend; break;
        case Op::TDilp:
          ti.op = f.imm >= kNumRegs ? XOp::Bad : XOp::TDilp;
          break;
        case Op::TUserCopy: ti.op = XOp::TUserCopy; break;
        case Op::TMsgLoad: ti.op = XOp::TMsgLoad; break;
        case Op::kCount: ti.op = XOp::Bad; break;
      }
      code_.push_back(ti);
      cs.update(f);
    }

    // Unconditional transfers are always the last op of their superblock
    // (their successors are leaders); everything else falls through.
    const Op last = prog_.insns[e - 1].op;
    const bool falls = last != Op::Halt && last != Op::Abort &&
                       last != Op::Jmp && last != Op::Jr &&
                       last != Op::JrChk && last != Op::Call &&
                       last != Op::Ret;
    if (falls) {
      EInsn ef;
      ef.op = XOp::EndFall;
      ef.pc = e;
      ef.sum_insns = len;
      ef.sum_cycles = prefix[len];
      fixups.push_back({code_.size(), e, true});
      code_.push_back(ef);
    }
    meta.count = static_cast<std::uint32_t>(code_.size()) - meta.first;
    sbs_.push_back(meta);
    s = e;
  }

  EInsn end;
  end.op = XOp::End;
  end.pc = n;
  entry_of_[n] = static_cast<std::uint32_t>(code_.size());
  code_.push_back(end);

  for (const auto& fx : fixups) {
    const bool in_range = fx.target < n || (fx.allow_end && fx.target == n);
    code_[fx.slot].target = in_range ? entry_of_[fx.target] : kNoTarget;
  }
  for (const auto& fx : loop_fixups) {
    loops_[fx.loop].fall_target = entry_of_[fx.target];
  }
}

std::size_t JitBackend::emitted_bytes() const noexcept {
  std::size_t bytes = code_.size() * sizeof(EInsn);
  for (const LoopInfo& l : loops_) bytes += l.body.size() * sizeof(BodyOp);
  return bytes;
}

ExecResult JitBackend::run(Env& env, std::array<std::uint32_t, kNumRegs>& regs,
                           const ExecLimits& limits) const {
  ++runs_;
  regs[kRegZero] = 0;
  env.bind_regs(regs.data());

  RunCtx c;
  c.regs = regs.data();
  c.env = &env;
  c.limits = &limits;
  c.jt = &jt_;
  c.n = static_cast<std::uint32_t>(prog_.insns.size());
  c.rs.budget = limits.software_budget;
  if (!env.fast_mem(&c.fm)) c.fm.mem = nullptr;

  exec(code_.data(), entry_of_.data(), loops_.data(), c);

  ExecResult res;
  if (c.delegate) {
    c.rs.pc = c.exit_pc;
    res = detail::run_core(prog_, env, regs.data(), limits, jt_, c.rs, c.res);
  } else {
    res = c.res;
    res.outcome = c.exit_outcome;
    res.fault_pc = c.exit_pc;
    res.result = regs[kRegArg0];
  }
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::VcodeExec, trace::Engine::Jit,
                             static_cast<std::uint32_t>(res.outcome), 0,
                             res.cycles, res.insns);
  }
  return res;
}

std::string JitBackend::dump() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line,
                "jit: %zu source insns, %zu superblocks, %zu fused loops, "
                "%zu folded guards, %zu slots\n",
                prog_.insns.size(), sbs_.size(), loops_.size(), folded_,
                code_.size());
  out += line;
  const auto n = static_cast<std::uint32_t>(prog_.insns.size());
  for (const SbMeta& sb : sbs_) {
    // Successor list straight from the source region: every in-region
    // branch contributes an edge, plus the terminator's continuation.
    std::string succs;
    const std::uint32_t e = sb.start + sb.len;
    auto add = [&succs](const std::string& s) {
      if (!succs.empty()) succs += " ";
      succs += s;
    };
    for (std::uint32_t j = sb.start; j < e; ++j) {
      const Insn& f = prog_.insns[j];
      if (!valid_op(static_cast<std::uint8_t>(f.op))) continue;
      const bool branch =
          f.op == Op::Beq || f.op == Op::Bne || f.op == Op::Bltu ||
          f.op == Op::Bgeu || f.op == Op::Blt || f.op == Op::Bge ||
          f.op == Op::Jmp || f.op == Op::Call;
      if (!branch) continue;
      if (f.imm < n) {
        std::snprintf(line, sizeof line, "@%u", f.imm);
      } else {
        std::snprintf(line, sizeof line, "@%u(bad)", f.imm);
      }
      add(line);
    }
    const Op last = prog_.insns[e - 1].op;
    if (last == Op::Halt) {
      add("halt");
    } else if (last == Op::Abort) {
      add("abort");
    } else if (last == Op::Jr || last == Op::JrChk) {
      add("indirect");
    } else if (last == Op::Ret) {
      add("ret");
    } else if (last != Op::Jmp && last != Op::Call) {
      std::snprintf(line, sizeof line, "@%u", e);
      add(line);
    }
    std::snprintf(line, sizeof line, "superblock @%u: len=%u succs=[%s]\n",
                  sb.start, sb.len, succs.c_str());
    out += line;

    for (std::uint32_t ci = sb.first; ci < sb.first + sb.count; ++ci) {
      const EInsn& t = code_[ci];
      switch (t.op) {
        case XOp::FusedLoop: {
          const LoopInfo& l = loops_[t.imm];
          std::snprintf(line, sizeof line,
                        "  fused-loop: %u insns/word, body %zu op(s), "
                        "src=r%u dst=r%u len=r%u\n",
                        l.len, l.body.size(), l.r_src, l.r_dst, l.r_len);
          out += line;
          break;
        }
        case XOp::Guard:
          std::snprintf(line, sizeof line,
                        "  guard: insns=%u static_cycles<=%u\n", t.imm,
                        t.sum_cycles);
          out += line;
          break;
        case XOp::EndFall:
          std::snprintf(line, sizeof line, "  fall-through -> @%u\n", t.pc);
          out += line;
          break;
        default: {
          const Insn& f = prog_.insns[t.pc];
          const char* folded = "";
          if (t.op == XOp::AlignFault) {
            folded = "  [folded: align-fault]";
          } else if (t.op == XOp::LwU && f.op == Op::Lw) {
            folded = "  [folded: aligned]";
          } else if (t.op == XOp::SwU && f.op == Op::Sw) {
            folded = "  [folded: aligned]";
          } else if (t.op == XOp::Jmp && f.op != Op::Jmp) {
            folded = "  [folded: taken]";
          } else if (t.op == XOp::Nop && f.op != Op::Nop) {
            folded = "  [folded: not-taken]";
          }
          std::snprintf(line, sizeof line, "  %4u: %s  [+%u insn, +%u cyc]%s\n",
                        t.pc, to_string(f).c_str(), t.sum_insns, t.sum_cycles,
                        folded);
          out += line;
          break;
        }
      }
    }
  }
  out += "<end>\n";
  return out;
}

}  // namespace ash::vcode
