// Superblock JIT backend: download-time lowering of verified VCODE into a
// template-threaded host form.
//
// Where the CodeCache (src/vcode/codecache.cpp) pre-decodes one slot per
// source instruction and hoists budget prechecks to basic-block heads, the
// JIT lowers each program into *superblocks* — single-entry straight-line
// regions that continue through the fall-through side of conditional
// branches and end only at unconditional control transfers or at the next
// leader. The emitted form is executed by a computed-goto dispatch loop
// with:
//
//   - one hoisted budget guard per superblock (instruction count and
//     static-cycle bound of the longest fall-through path), with the exact
//     counters materialized lazily on exit via per-op prefix sums;
//   - `Env::fast_mem` window checks inlined into the load/store templates
//     (same two-window contract as the CodeCache);
//   - constant-folded guards: alignment checks on accesses whose base
//     register is provably constant within the superblock are resolved at
//     lowering time (folded to the unaligned-form template, or to a
//     pre-faulted slot), and branches with both operands provably constant
//     are folded to jumps/fall-throughs — this covers the sandbox's DPF
//     atom mask+compare sequences;
//   - fused DILP pipe chains: a superblock matching the dilp::Compiler
//     word-loop skeleton (load, register-pure pipe bodies, store, pointer
//     bumps, back-edge) is additionally lowered to a native single-pass
//     loop over the message that preserves the exact per-word cache-model
//     charging and budget semantics.
//
// Equivalence guarantee: identical to the CodeCache's — every simulated
// observable (outcome, insns, cycles, result, abort_code, fault_pc, final
// registers, final memory, cache-model state) is bit-identical to
// vcode::Interpreter on every program and limit combination. Whenever a
// hoisted guard detects that a ceiling *may* fire inside a superblock, the
// engine finalizes the exact machine state and hands off to
// detail::run_core. The three-way differential harness
// (tests/vcode_codecache_test.cpp) enforces this.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vcode/backend.hpp"
#include "vcode/interp.hpp"
#include "vcode/program.hpp"

namespace ash::vcode {

class JitBackend {
 public:
  /// Lower `prog` (copied; the backend is self-contained).
  explicit JitBackend(const Program& prog);

  // Emitted code holds indices into its own storage.
  JitBackend(const JitBackend&) = delete;
  JitBackend& operator=(const JitBackend&) = delete;

  const Program& program() const noexcept { return prog_; }
  const JumpTable& jump_table() const noexcept { return jt_; }
  std::size_t superblock_count() const noexcept { return sbs_.size(); }
  std::size_t fused_loop_count() const noexcept { return loops_.size(); }
  /// Guards resolved at lowering time: provably aligned/misaligned
  /// accesses and provably taken/untaken branches.
  std::size_t folded_guard_count() const noexcept { return folded_; }
  std::uint64_t run_count() const noexcept { return runs_; }
  std::size_t emitted_bytes() const noexcept;

  BackendStats stats() const noexcept {
    return {Backend::Jit, runs_, 1, sbs_.size(), emitted_bytes()};
  }

  /// Execute against `env` with the caller's register file (imported on
  /// entry, exported on exit). Bit-identical to Interpreter::run on the
  /// same inputs; same contract as CodeCache::run.
  ExecResult run(Env& env, std::array<std::uint32_t, kNumRegs>& regs,
                 const ExecLimits& limits = {}) const;

  /// Human-readable superblock CFG + emitted-form listing for
  /// `ashtool dump-translated`.
  std::string dump() const;

  /// Emitted micro-op. The dispatch loop indexes a label table by this,
  /// so the executor and the lowering must agree on the order.
  enum class XOp : std::uint8_t {
    Guard,    // superblock entry: hoisted insns/cycles precheck
    EndFall,  // finalize counters, continue into the next superblock
    End,      // synthetic pc==n slot (fall off the end -> BadInstruction)
    Bad,      // charge, then BadInstruction at pc (invalid source op)
    Halt, Abort, Jmp, Jr, JrChk, Call, Ret,
    Beq, Bne, Bltu, Bgeu, Blt, Bge,
    Budget,
    Nop,
    Movi, Mov,
    Addu, Addiu, Subu, Mulu, Divu, Remu,
    And, Andi, Or, Ori, Xor, Xori,
    Sll, Slli, Srl, Srli, Sra, Srai,
    Sltu, Slt, Fadd, Fmul,
    Lw, Lhu, Lh, Lbu, Lb, LwU, Sw, Sh, Sb, SwU,
    AlignFault,  // constant-folded guard proved the access misaligned
    Cksum32, Bswap32, Bswap16,
    Pin, Pout,   // pipe I/O; width in c
    TMsgLen, TSend, TDilp, TUserCopy, TMsgLoad,
    FusedLoop,   // native single-pass DILP pipe-chain loop; imm = loop id
    kCount,
  };

  static constexpr std::uint32_t kNoTarget = 0xffffffffu;
  static constexpr std::uint32_t kNoPost = 0xffffffffu;

  /// One emitted slot. The per-op prefix sums let the dispatch loop keep
  /// the exact interpreter counters implicit until a superblock exit:
  /// at any op, exact insns/cycles = counters-at-superblock-entry +
  /// sum_insns/sum_cycles (+ dynamic cycles, folded in as they occur).
  struct EInsn {
    XOp op = XOp::Bad;
    std::uint8_t a = 0, b = 0, c = 0;
    std::uint32_t imm = 0;
    std::uint32_t pc = 0;      // original index (superblock start for Guard)
    std::uint32_t target = 0;  // emitted index of the jump destination
    std::uint32_t sum_insns = 0;   // insns retired through this op
    std::uint32_t sum_cycles = 0;  // static cycles charged through this op
    // sum_cycles + static cost of the remaining guarded positions;
    // consulted after dynamic-cost ops only (kNoPost = no re-check).
    std::uint32_t post_bound = 0;
  };

  /// A register-pure op between the load and the store of a fused loop.
  struct BodyOp {
    Op op = Op::Nop;
    std::uint8_t a = 0, b = 0, c = 0;
    std::uint32_t imm = 0;
  };

  /// A recognized dilp::Compiler word loop, executable as one native pass:
  ///   Lwu_u load_reg,(r_src)+0 ; <body> ; Sw_u store_reg,(r_dst)+0 ;
  ///   Addiu r_src,+4 ; Addiu r_dst,+4 ; Addiu r_len,-4 ;
  ///   Bne r_len,r0 -> start_pc
  /// The native pass runs only when no cycle ceiling is armed (the DILP
  /// engine's regime) and the whole transfer is inside the fast-mem
  /// windows, so no exit can occur mid-iteration; everything else takes
  /// the generic superblock path of the same region.
  struct LoopInfo {
    std::uint32_t start_pc = 0;      // loop head (superblock start)
    std::uint32_t len = 0;           // source insns per iteration
    std::uint32_t cyc_iter = 0;      // static cycles per iteration
    std::uint8_t r_src = 0, r_dst = 0, r_len = 0;
    std::uint8_t load_reg = 0, store_reg = 0;
    std::uint32_t fall_target = 0;   // emitted index of the exit guard
    std::vector<BodyOp> body;
  };

  struct RunCtx;

 private:
  struct SbMeta {
    std::uint32_t start = 0;   // original index of the first instruction
    std::uint32_t len = 0;     // source instructions covered
    std::uint32_t first = 0;   // first emitted slot (the Guard/FusedLoop)
    std::uint32_t count = 0;   // emitted slots
    std::int32_t loop = -1;    // index into loops_, or -1
  };

  void build();

  Program prog_;
  JumpTable jt_;
  std::vector<EInsn> code_;
  std::vector<std::uint32_t> entry_of_;  // leader pc -> emitted index
  std::vector<LoopInfo> loops_;
  std::vector<SbMeta> sbs_;
  std::size_t folded_ = 0;
  mutable std::uint64_t runs_ = 0;
};

}  // namespace ash::vcode
