#include "vcode/interp.hpp"

#include <algorithm>
#include <cstring>

#include "trace/trace.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::vcode {

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Halted: return "halted";
    case Outcome::VoluntaryAbort: return "voluntary-abort";
    case Outcome::MemFault: return "mem-fault";
    case Outcome::AlignFault: return "align-fault";
    case Outcome::DivideByZero: return "divide-by-zero";
    case Outcome::BudgetExceeded: return "budget-exceeded";
    case Outcome::BadInstruction: return "bad-instruction";
    case Outcome::IndirectJumpFault: return "indirect-jump-fault";
    case Outcome::CallDepthExceeded: return "call-depth-exceeded";
    case Outcome::StreamFault: return "stream-fault";
    case Outcome::TrustedDenied: return "trusted-denied";
  }
  return "unknown";
}

void Env::bind_regs(std::uint32_t*) {}
bool Env::mem_read(std::uint32_t, void*, std::uint32_t) { return false; }
bool Env::mem_write(std::uint32_t, const void*, std::uint32_t) {
  return false;
}
std::uint64_t Env::mem_cycles(std::uint32_t, std::uint32_t, bool) {
  return 0;
}
bool Env::fast_mem(FastMem*) { return false; }
bool Env::t_msglen(std::uint32_t*, std::uint64_t*) { return false; }
bool Env::t_send(std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t*,
                 std::uint64_t*) {
  return false;
}
bool Env::t_dilp(std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t,
                 std::uint32_t*, std::uint64_t*) {
  return false;
}
bool Env::t_usercopy(std::uint32_t, std::uint32_t, std::uint32_t,
                     std::uint32_t*, std::uint64_t*) {
  return false;
}
bool Env::t_msgload(std::uint32_t, std::uint32_t*, std::uint64_t*) {
  return false;
}
bool Env::pipe_in(std::uint32_t, std::uint32_t*) { return false; }
bool Env::pipe_out(std::uint32_t, std::uint32_t) { return false; }

namespace {

float as_float(std::uint32_t bits) noexcept {
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

std::uint32_t as_bits(float f) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

}  // namespace

JumpTable::JumpTable(const Program& prog) {
  // Gather (key, translated-target) pairs: a sandboxed program translates
  // pre-sandbox addresses through indirect_map; an unsandboxed one admits
  // exactly its registered targets unchanged.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  if (!prog.indirect_map.empty()) {
    entries = prog.indirect_map;
  } else {
    entries.reserve(prog.indirect_targets.size());
    for (std::uint32_t t : prog.indirect_targets) entries.emplace_back(t, t);
  }
  if (entries.empty()) return;

  std::uint32_t max_dense_key = 0;
  for (const auto& [k, v] : entries) {
    if (k < kMaxProgramLen && k > max_dense_key) max_dense_key = k;
  }
  dense_.assign(static_cast<std::size_t>(max_dense_key) + 1, -1);
  for (const auto& [k, v] : entries) {
    if (k < dense_.size()) {
      dense_[k] = static_cast<std::int64_t>(v);
    } else {
      sparse_.emplace_back(k, v);
    }
  }
  std::sort(sparse_.begin(), sparse_.end());
}

std::int64_t JumpTable::lookup_sparse(std::uint32_t t) const noexcept {
  const auto it = std::lower_bound(
      sparse_.begin(), sparse_.end(), t,
      [](const auto& e, std::uint32_t v) { return e.first < v; });
  if (it == sparse_.end() || it->first != t) return -1;
  return static_cast<std::int64_t>(it->second);
}

namespace detail {

ExecResult run_core(const Program& prog, Env& env, std::uint32_t* regs,
                    const ExecLimits& limits, const JumpTable& jt,
                    ResumeState& rs, ExecResult res) {
  const auto& insns = prog.insns;
  const std::uint32_t n = static_cast<std::uint32_t>(insns.size());
  Env* const env_ = &env;

  std::uint32_t pc = rs.pc;
  std::uint64_t budget = rs.budget;
  auto& call_stack = rs.call_stack;
  std::uint32_t call_depth = rs.call_depth;

  auto finish = [&](Outcome o, std::uint32_t at) {
    res.outcome = o;
    res.fault_pc = at;
    res.result = regs[kRegArg0];
    return res;
  };

  for (;;) {
    if (pc >= n) return finish(Outcome::BadInstruction, pc);
    if (res.insns >= limits.max_insns ||
        (limits.max_cycles != 0 && res.cycles >= limits.max_cycles)) {
      return finish(Outcome::BudgetExceeded, pc);
    }
    const Insn& insn = insns[pc];
    const OpInfo& info = op_info(insn.op);
    ++res.insns;
    res.cycles += info.base_cycles;

    std::uint32_t next = pc + 1;
    switch (insn.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        return finish(Outcome::Halted, pc);
      case Op::Abort:
        res.abort_code = insn.imm;
        return finish(Outcome::VoluntaryAbort, pc);
      case Op::Jmp:
        next = insn.imm;
        break;
      case Op::Jr: {
        const std::uint32_t t = regs[insn.a];
        if (t >= n) return finish(Outcome::IndirectJumpFault, pc);
        next = t;
        break;
      }
      case Op::JrChk: {
        // O(1) translation through the shared jump table (covers both the
        // sandboxed indirect_map and the unsandboxed indirect_targets).
        const std::int64_t t = jt.lookup(regs[insn.a]);
        if (t < 0) return finish(Outcome::IndirectJumpFault, pc);
        next = static_cast<std::uint32_t>(t);
        break;
      }
      case Op::Call:
        if (call_depth >= kMaxCallDepth) {
          return finish(Outcome::CallDepthExceeded, pc);
        }
        call_stack[call_depth++] = pc + 1;
        next = insn.imm;
        break;
      case Op::Ret:
        if (call_depth == 0) {
          return finish(Outcome::CallDepthExceeded, pc);
        }
        next = call_stack[--call_depth];
        break;
      case Op::Beq:
        if (regs[insn.a] == regs[insn.b]) next = insn.imm;
        break;
      case Op::Bne:
        if (regs[insn.a] != regs[insn.b]) next = insn.imm;
        break;
      case Op::Bltu:
        if (regs[insn.a] < regs[insn.b]) next = insn.imm;
        break;
      case Op::Bgeu:
        if (regs[insn.a] >= regs[insn.b]) next = insn.imm;
        break;
      case Op::Blt:
        if (static_cast<std::int32_t>(regs[insn.a]) <
            static_cast<std::int32_t>(regs[insn.b])) {
          next = insn.imm;
        }
        break;
      case Op::Bge:
        if (static_cast<std::int32_t>(regs[insn.a]) >=
            static_cast<std::int32_t>(regs[insn.b])) {
          next = insn.imm;
        }
        break;
      case Op::Budget:
        if (budget <= insn.imm) return finish(Outcome::BudgetExceeded, pc);
        budget -= insn.imm;
        break;

      case Op::Movi:
        regs[insn.a] = insn.imm;
        break;
      case Op::Mov:
        regs[insn.a] = regs[insn.b];
        break;
      case Op::Addu:
      case Op::Add:  // identical semantics here; overflow trap is a policy
                     // matter handled at verification/sandbox time
        regs[insn.a] = regs[insn.b] + regs[insn.c];
        break;
      case Op::Addiu:
        regs[insn.a] = regs[insn.b] + insn.imm;
        break;
      case Op::Subu:
      case Op::Sub:
        regs[insn.a] = regs[insn.b] - regs[insn.c];
        break;
      case Op::Mulu:
        regs[insn.a] = regs[insn.b] * regs[insn.c];
        break;
      case Op::Divu:
        if (regs[insn.c] == 0) return finish(Outcome::DivideByZero, pc);
        regs[insn.a] = regs[insn.b] / regs[insn.c];
        break;
      case Op::Remu:
        if (regs[insn.c] == 0) return finish(Outcome::DivideByZero, pc);
        regs[insn.a] = regs[insn.b] % regs[insn.c];
        break;
      case Op::And:
        regs[insn.a] = regs[insn.b] & regs[insn.c];
        break;
      case Op::Andi:
        regs[insn.a] = regs[insn.b] & insn.imm;
        break;
      case Op::Or:
        regs[insn.a] = regs[insn.b] | regs[insn.c];
        break;
      case Op::Ori:
        regs[insn.a] = regs[insn.b] | insn.imm;
        break;
      case Op::Xor:
        regs[insn.a] = regs[insn.b] ^ regs[insn.c];
        break;
      case Op::Xori:
        regs[insn.a] = regs[insn.b] ^ insn.imm;
        break;
      case Op::Sll:
        regs[insn.a] = regs[insn.b] << (regs[insn.c] & 31);
        break;
      case Op::Slli:
        regs[insn.a] = regs[insn.b] << (insn.imm & 31);
        break;
      case Op::Srl:
        regs[insn.a] = regs[insn.b] >> (regs[insn.c] & 31);
        break;
      case Op::Srli:
        regs[insn.a] = regs[insn.b] >> (insn.imm & 31);
        break;
      case Op::Sra:
        regs[insn.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs[insn.b]) >> (regs[insn.c] & 31));
        break;
      case Op::Srai:
        regs[insn.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs[insn.b]) >> (insn.imm & 31));
        break;
      case Op::Sltu:
        regs[insn.a] = regs[insn.b] < regs[insn.c] ? 1 : 0;
        break;
      case Op::Slt:
        regs[insn.a] = static_cast<std::int32_t>(regs[insn.b]) <
                               static_cast<std::int32_t>(regs[insn.c])
                           ? 1
                           : 0;
        break;
      case Op::Fadd:
        regs[insn.a] = as_bits(as_float(regs[insn.b]) + as_float(regs[insn.c]));
        break;
      case Op::Fmul:
        regs[insn.a] = as_bits(as_float(regs[insn.b]) * as_float(regs[insn.c]));
        break;

      case Op::Lw:
      case Op::Lhu:
      case Op::Lh:
      case Op::Lbu:
      case Op::Lb:
      case Op::Lwu_u: {
        const std::uint32_t addr = regs[insn.b] + insn.imm;
        std::uint32_t len = 4;
        if (insn.op == Op::Lhu || insn.op == Op::Lh) len = 2;
        if (insn.op == Op::Lbu || insn.op == Op::Lb) len = 1;
        if (insn.op != Op::Lwu_u && (addr & (len - 1)) != 0) {
          return finish(Outcome::AlignFault, pc);
        }
        std::uint8_t buf[4] = {};
        if (!env_->mem_read(addr, buf, len)) {
          return finish(Outcome::MemFault, pc);
        }
        res.cycles += env_->mem_cycles(addr, len, /*is_write=*/false);
        std::uint32_t v = 0;
        std::memcpy(&v, buf, len);  // simulated machine is little-endian
        if (insn.op == Op::Lh) {
          v = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
        } else if (insn.op == Op::Lb) {
          v = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
        }
        regs[insn.a] = v;
        break;
      }
      case Op::Sw:
      case Op::Sh:
      case Op::Sb:
      case Op::Sw_u: {
        const std::uint32_t addr = regs[insn.b] + insn.imm;
        std::uint32_t len = 4;
        if (insn.op == Op::Sh) len = 2;
        if (insn.op == Op::Sb) len = 1;
        if (insn.op != Op::Sw_u && (addr & (len - 1)) != 0) {
          return finish(Outcome::AlignFault, pc);
        }
        const std::uint32_t v = regs[insn.a];
        if (!env_->mem_write(addr, &v, len)) {
          return finish(Outcome::MemFault, pc);
        }
        res.cycles += env_->mem_cycles(addr, len, /*is_write=*/true);
        break;
      }

      case Op::Cksum32:
        regs[insn.a] = util::cksum32_accumulate(regs[insn.a], regs[insn.b]);
        break;
      case Op::Bswap32:
        regs[insn.a] = util::bswap32(regs[insn.b]);
        break;
      case Op::Bswap16:
        regs[insn.a] = util::bswap16(static_cast<std::uint16_t>(regs[insn.b]));
        break;

      case Op::Pin8:
      case Op::Pin16:
      case Op::Pin32: {
        const std::uint32_t width =
            insn.op == Op::Pin8 ? 1 : insn.op == Op::Pin16 ? 2 : 4;
        std::uint32_t v = 0;
        if (!env_->pipe_in(width, &v)) return finish(Outcome::StreamFault, pc);
        regs[insn.a] = v;
        break;
      }
      case Op::Pout8:
      case Op::Pout16:
      case Op::Pout32: {
        const std::uint32_t width =
            insn.op == Op::Pout8 ? 1 : insn.op == Op::Pout16 ? 2 : 4;
        if (!env_->pipe_out(width, regs[insn.a])) {
          return finish(Outcome::StreamFault, pc);
        }
        break;
      }

      case Op::TMsgLen: {
        std::uint32_t len = 0;
        std::uint64_t cycles = 0;
        if (!env_->t_msglen(&len, &cycles)) {
          return finish(Outcome::TrustedDenied, pc);
        }
        res.cycles += cycles;
        regs[insn.a] = len;
        break;
      }
      case Op::TSend: {
        std::uint32_t status = 0;
        std::uint64_t cycles = 0;
        if (!env_->t_send(regs[insn.a], regs[insn.b], regs[insn.c], &status,
                          &cycles)) {
          return finish(Outcome::TrustedDenied, pc);
        }
        res.cycles += cycles;
        regs[kRegArg0] = status;
        break;
      }
      case Op::TDilp: {
        if (insn.imm >= kNumRegs) return finish(Outcome::BadInstruction, pc);
        std::uint32_t status = 0;
        std::uint64_t cycles = 0;
        if (!env_->t_dilp(regs[insn.a], regs[insn.b], regs[insn.c],
                          regs[insn.imm], &status, &cycles)) {
          return finish(Outcome::TrustedDenied, pc);
        }
        res.cycles += cycles;
        regs[kRegArg0] = status;
        break;
      }
      case Op::TUserCopy: {
        std::uint32_t status = 0;
        std::uint64_t cycles = 0;
        if (!env_->t_usercopy(regs[insn.a], regs[insn.b], regs[insn.c],
                              &status, &cycles)) {
          return finish(Outcome::TrustedDenied, pc);
        }
        res.cycles += cycles;
        regs[kRegArg0] = status;
        break;
      }

      case Op::TMsgLoad: {
        std::uint32_t value = 0;
        std::uint64_t cycles = 0;
        if (!env_->t_msgload(regs[insn.b] + insn.imm, &value, &cycles)) {
          return finish(Outcome::TrustedDenied, pc);
        }
        res.cycles += cycles;
        regs[insn.a] = value;
        break;
      }

      case Op::kCount:
        return finish(Outcome::BadInstruction, pc);
    }
    regs[kRegZero] = 0;  // r0 is hardwired
    pc = next;
  }
}

}  // namespace detail

ExecResult Interpreter::run(const ExecLimits& limits) {
  regs_[kRegZero] = 0;
  env_->bind_regs(regs_.data());
  detail::ResumeState rs;
  rs.budget = limits.software_budget;
  ExecResult res = detail::run_core(*prog_, *env_, regs_.data(), limits,
                                    jt_, rs, ExecResult{});
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::VcodeExec,
                             trace::Engine::Interp,
                             static_cast<std::uint32_t>(res.outcome), 0,
                             res.cycles, res.insns);
  }
  return res;
}

ExecResult execute(const Program& prog, Env& env, const ExecLimits& limits,
                   std::uint32_t a0, std::uint32_t a1, std::uint32_t a2,
                   std::uint32_t a3) {
  Interpreter interp(prog, env);
  interp.set_args(a0, a1, a2, a3);
  return interp.run(limits);
}

}  // namespace ash::vcode
