#include "vcode/verifier.hpp"

#include <cstdio>

namespace ash::vcode {
namespace {

void issue(VerifyResult& r, std::uint32_t pc, std::string msg) {
  r.issues.push_back({pc, std::move(msg)});
}

}  // namespace

std::string VerifyResult::to_string() const {
  std::string out;
  char head[32];
  for (const VerifyIssue& i : issues) {
    int n = std::snprintf(head, sizeof head, "@%u: ", i.pc);
    out.append(head, static_cast<std::size_t>(n));
    out += i.message;
    out.push_back('\n');
  }
  return out;
}

VerifyResult verify(const Program& prog, const VerifyPolicy& policy) {
  VerifyResult result;
  const std::uint32_t n = static_cast<std::uint32_t>(prog.insns.size());

  if (prog.insns.empty()) {
    issue(result, 0, "empty program");
    return result;
  }
  if (prog.insns.size() > kMaxProgramLen) {
    issue(result, 0, "program exceeds maximum length");
    return result;
  }

  for (std::uint32_t t : prog.indirect_targets) {
    if (t >= n) issue(result, t, "indirect target out of bounds");
  }
  for (const auto& [from, to] : prog.indirect_map) {
    (void)from;
    if (to >= n) issue(result, to, "indirect-map target out of bounds");
  }

  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const Insn& insn = prog.insns[pc];
    if (!valid_op(static_cast<std::uint8_t>(insn.op))) {
      issue(result, pc, "invalid opcode");
      continue;
    }
    const OpInfo& info = op_info(insn.op);

    if ((info.reads_a || info.writes_a) && insn.a >= kNumRegs) {
      issue(result, pc, "register a out of range");
    }
    if (info.reads_b && insn.b >= kNumRegs) {
      issue(result, pc, "register b out of range");
    }
    if (info.reads_c && insn.c >= kNumRegs) {
      issue(result, pc, "register c out of range");
    }
    if (info.is_branch && insn.imm >= n) {
      issue(result, pc, "branch target out of bounds");
    }
    if (insn.op == Op::TDilp && insn.imm >= kNumRegs) {
      issue(result, pc, "TDilp length register out of range");
    }

    if (info.is_fp && !policy.allow_fp) {
      issue(result, pc, "floating-point instruction forbidden");
    }
    if (info.is_signed_ex && !policy.allow_signed_trap) {
      issue(result, pc, "signed overflow-trapping arithmetic forbidden");
    }
    if (info.is_trusted && !policy.allow_trusted) {
      issue(result, pc, "trusted kernel call forbidden in this context");
    }
    switch (insn.op) {
      case Op::Pin8:
      case Op::Pin16:
      case Op::Pin32:
      case Op::Pout8:
      case Op::Pout16:
      case Op::Pout32:
        if (!policy.allow_pipe_io) {
          issue(result, pc, "pipe I/O outside a pipe body");
        }
        break;
      case Op::Jr:
        if (!policy.allow_indirect) {
          issue(result, pc, "indirect jump forbidden");
        }
        break;
      default:
        break;
    }
  }

  // Control must not be able to fall off the end: the last instruction has
  // to be a terminator or an unconditional transfer.
  const Insn& last = prog.insns.back();
  switch (last.op) {
    case Op::Halt:
    case Op::Abort:
    case Op::Jmp:
    case Op::Jr:
    case Op::JrChk:
    case Op::Ret:
      break;
    default:
      issue(result, n - 1, "control can fall off the end of the program");
  }

  return result;
}

}  // namespace ash::vcode
