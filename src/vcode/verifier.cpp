#include "vcode/verifier.hpp"

#include <cstdio>
#include <deque>

namespace ash::vcode {
namespace {

void issue(VerifyResult& r, std::uint32_t pc, std::string msg,
           VerifyCode code = VerifyCode::Structural) {
  r.issues.push_back({pc, std::move(msg), code});
}

// ---------------------------------------------------------------- bounds
//
// Forward dataflow over abstract register values. The lattice per
// register is flat: Top (unknown), a compile-time constant, or an offset
// from one of the invocation arguments (message base r1, message length
// r2, state/user argument r3, arrival channel r4). The entry state knows
// the argument registers and that everything else starts zeroed; meet of
// two different values is Top. Compiled rule programs keep every offset
// and length a materialized constant, so the pass stays exact on them —
// anything else earns a typed *Untracked rejection.

struct AbsVal {
  enum class K : std::uint8_t { Top, Const, MsgBase, MsgLen, Arg, Chan };
  K k = K::Top;
  std::uint32_t off = 0;  // Const value / MsgBase/Arg byte offset

  bool operator==(const AbsVal& o) const noexcept {
    return k == o.k && (off == o.off || k == K::Top || k == K::MsgLen ||
                        k == K::Chan);
  }
};

constexpr AbsVal top() { return {AbsVal::K::Top, 0}; }
constexpr AbsVal cst(std::uint32_t v) { return {AbsVal::K::Const, v}; }

struct RegState {
  AbsVal r[kNumRegs];
};

bool meet_into(RegState& dst, const RegState& src) {
  bool changed = false;
  for (std::uint32_t i = 0; i < kNumRegs; ++i) {
    if (dst.r[i] == src.r[i]) continue;
    if (dst.r[i].k != AbsVal::K::Top) {
      dst.r[i] = top();
      changed = true;
    }
  }
  return changed;
}

AbsVal add_imm(const AbsVal& v, std::uint32_t imm) {
  switch (v.k) {
    case AbsVal::K::Const:
    case AbsVal::K::MsgBase:
    case AbsVal::K::Arg:
      return {v.k, v.off + imm};
    default:
      return top();
  }
}

AbsVal add_vals(const AbsVal& a, const AbsVal& b) {
  if (a.k == AbsVal::K::Const) return add_imm(b, a.off);
  if (b.k == AbsVal::K::Const) return add_imm(a, b.off);
  return top();
}

AbsVal sub_vals(const AbsVal& a, const AbsVal& b) {
  if (b.k != AbsVal::K::Const) return top();
  switch (a.k) {
    case AbsVal::K::Const:
    case AbsVal::K::MsgBase:
    case AbsVal::K::Arg:
      return {a.k, a.off - b.off};
    default:
      return top();
  }
}

/// Bytes a plain memory op touches.
std::uint32_t mem_access_size(Op op) {
  switch (op) {
    case Op::Lw:
    case Op::Sw:
    case Op::Lwu_u:
    case Op::Sw_u:
      return 4;
    case Op::Lhu:
    case Op::Lh:
    case Op::Sh:
      return 2;
    default:
      return 1;
  }
}

/// The transfer function: abstract effect of one instruction on `st`.
void transfer(const Insn& insn, RegState& st) {
  const OpInfo& info = op_info(insn.op);
  const auto v = [&st](Reg r) -> AbsVal {
    return r == 0 ? cst(0) : st.r[r];
  };
  const auto w = [&st](Reg r, AbsVal val) {
    if (r != 0) st.r[r] = val;  // r0 stays hardwired zero
  };

  switch (insn.op) {
    case Op::Movi:
      w(insn.a, cst(insn.imm));
      return;
    case Op::Mov:
      w(insn.a, v(insn.b));
      return;
    case Op::Addiu:
      w(insn.a, add_imm(v(insn.b), insn.imm));
      return;
    case Op::Addu:
      w(insn.a, add_vals(v(insn.b), v(insn.c)));
      return;
    case Op::Subu:
      w(insn.a, sub_vals(v(insn.b), v(insn.c)));
      return;
    case Op::TMsgLen:
      w(insn.a, {AbsVal::K::MsgLen, 0});
      return;
    case Op::TSend:
    case Op::TDilp:
    case Op::TUserCopy:
      // These trusted calls report their status in r1.
      w(kRegArg0, top());
      return;
    default:
      if (info.writes_a) w(insn.a, top());
      return;
  }
}

void check_bounds(const Program& prog, const BoundsPolicy& bounds,
                  VerifyResult& result) {
  const std::uint32_t n = static_cast<std::uint32_t>(prog.insns.size());

  // Entry state: argument registers bound, everything else zeroed.
  RegState entry;
  for (std::uint32_t i = 0; i < kNumRegs; ++i) entry.r[i] = cst(0);
  entry.r[kRegArg0] = {AbsVal::K::MsgBase, 0};
  entry.r[kRegArg1] = {AbsVal::K::MsgLen, 0};
  entry.r[kRegArg2] = {AbsVal::K::Arg, 0};
  entry.r[kRegArg3] = {AbsVal::K::Chan, 0};

  // Conservative return-site set: Ret may resume after any Call.
  std::vector<std::uint32_t> ret_sites;
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    if (prog.insns[pc].op == Op::Call && pc + 1 < n) {
      ret_sites.push_back(pc + 1);
    }
  }

  std::vector<RegState> in(n);
  std::vector<std::uint8_t> reached(n, 0);
  std::deque<std::uint32_t> work;
  in[0] = entry;
  reached[0] = 1;
  work.push_back(0);

  const auto propagate = [&](std::uint32_t to, const RegState& st) {
    if (to >= n) return;  // structural pass reports the bad target
    if (!reached[to]) {
      reached[to] = 1;
      in[to] = st;
      work.push_back(to);
    } else if (meet_into(in[to], st)) {
      work.push_back(to);
    }
  };

  while (!work.empty()) {
    const std::uint32_t pc = work.front();
    work.pop_front();
    const Insn& insn = prog.insns[pc];
    RegState out = in[pc];
    transfer(insn, out);

    switch (insn.op) {
      case Op::Halt:
      case Op::Abort:
        break;
      case Op::Jmp:
        propagate(insn.imm, out);
        break;
      case Op::Call:
        propagate(insn.imm, out);
        break;
      case Op::Ret:
        for (std::uint32_t site : ret_sites) propagate(site, out);
        break;
      case Op::Jr:
      case Op::JrChk:
        for (std::uint32_t t : prog.indirect_targets) propagate(t, out);
        for (const auto& [from, to] : prog.indirect_map) {
          (void)from;
          propagate(to, out);
        }
        break;
      default:
        if (op_info(insn.op).is_branch) propagate(insn.imm, out);
        propagate(pc + 1, out);
        break;
    }
  }

  // With the fixpoint in hand, check every reachable access site.
  char buf[160];
  const auto fail = [&](std::uint32_t pc, VerifyCode code, const char* fmt,
                        auto... args) {
    const int k = std::snprintf(buf, sizeof buf, fmt, args...);
    issue(result, pc, std::string(buf, static_cast<std::size_t>(k > 0 ? k : 0)),
          code);
  };

  for (std::uint32_t pc = 0; pc < n; ++pc) {
    if (!reached[pc]) continue;
    const Insn& insn = prog.insns[pc];
    RegState st = in[pc];
    const auto v = [&st](Reg r) -> AbsVal {
      return r == 0 ? cst(0) : st.r[r];
    };

    switch (insn.op) {
      case Op::TMsgLoad: {
        const AbsVal off = add_imm(v(insn.b), insn.imm);
        if (off.k != AbsVal::K::Const) {
          fail(pc, VerifyCode::MsgLoadUntracked,
               "bounds: message-load offset is not a tracked constant");
        } else if (static_cast<std::uint64_t>(off.off) + 4 >
                   bounds.msg_window) {
          fail(pc, VerifyCode::MsgLoadOutOfWindow,
               "bounds: message load at offset %u exceeds the declared "
               "%u-byte message window",
               off.off, bounds.msg_window);
        }
        break;
      }
      case Op::TUserCopy: {
        const AbsVal dst = v(insn.a), src = v(insn.b), len = v(insn.c);
        if (len.k != AbsVal::K::Const) {
          fail(pc, VerifyCode::CopyUntracked,
               "bounds: copy length is not a tracked constant");
          break;
        }
        const std::uint64_t nbytes = len.off;
        if (dst.k != AbsVal::K::Arg) {
          fail(pc, VerifyCode::CopyUntracked,
               "bounds: copy destination is not state-relative");
        } else if (dst.off + nbytes > bounds.state_window) {
          fail(pc, VerifyCode::CopyOutOfWindow,
               "bounds: copy writes state bytes %u..%llu outside the "
               "%u-byte state window",
               dst.off, static_cast<unsigned long long>(dst.off + nbytes),
               bounds.state_window);
        }
        if (src.k == AbsVal::K::MsgBase) {
          if (src.off + nbytes > bounds.msg_window) {
            fail(pc, VerifyCode::CopyOutOfWindow,
                 "bounds: copy reads message bytes %u..%llu outside the "
                 "%u-byte message window",
                 src.off, static_cast<unsigned long long>(src.off + nbytes),
                 bounds.msg_window);
          }
        } else if (src.k == AbsVal::K::Arg) {
          if (src.off + nbytes > bounds.state_window) {
            fail(pc, VerifyCode::CopyOutOfWindow,
                 "bounds: copy reads state bytes %u..%llu outside the "
                 "%u-byte state window",
                 src.off, static_cast<unsigned long long>(src.off + nbytes),
                 bounds.state_window);
          }
        } else {
          fail(pc, VerifyCode::CopyUntracked,
               "bounds: copy source is neither message- nor state-relative");
        }
        break;
      }
      case Op::TSend: {
        const AbsVal addr = v(insn.b), len = v(insn.c);
        // Forwarding the whole message (addr = r1, len = r2) is always
        // admitted; the kernel's runtime range check covers it.
        if (addr.k == AbsVal::K::MsgBase && addr.off == 0 &&
            len.k == AbsVal::K::MsgLen) {
          break;
        }
        if (len.k != AbsVal::K::Const) {
          fail(pc, VerifyCode::SendUntracked,
               "bounds: send length is neither the message length nor a "
               "tracked constant");
          break;
        }
        if (len.off > bounds.send_cap) {
          fail(pc, VerifyCode::SendOverCap,
               "bounds: send of %u bytes exceeds the %u-byte send cap",
               len.off, bounds.send_cap);
        }
        const std::uint64_t nbytes = len.off;
        if (addr.k == AbsVal::K::Arg) {
          if (addr.off + nbytes > bounds.state_window) {
            fail(pc, VerifyCode::SendOutOfWindow,
                 "bounds: send of state bytes %u..%llu outside the "
                 "%u-byte state window",
                 addr.off,
                 static_cast<unsigned long long>(addr.off + nbytes),
                 bounds.state_window);
          }
        } else if (addr.k == AbsVal::K::MsgBase) {
          if (addr.off + nbytes > bounds.msg_window) {
            fail(pc, VerifyCode::SendOutOfWindow,
                 "bounds: send of message bytes %u..%llu outside the "
                 "%u-byte message window",
                 addr.off,
                 static_cast<unsigned long long>(addr.off + nbytes),
                 bounds.msg_window);
          }
        } else {
          fail(pc, VerifyCode::SendUntracked,
               "bounds: send address is neither message- nor "
               "state-relative");
        }
        break;
      }
      case Op::TDilp:
        fail(pc, VerifyCode::DilpForbidden,
             "bounds: TDilp is not admitted under a bounds policy");
        break;
      default: {
        if (!op_info(insn.op).is_mem) break;
        const AbsVal base = add_imm(v(insn.b), insn.imm);
        const std::uint32_t size = mem_access_size(insn.op);
        if (base.k != AbsVal::K::Arg) {
          fail(pc, VerifyCode::MemUntracked,
               "bounds: %s base is not state-relative",
               op_info(insn.op).name);
        } else if (static_cast<std::uint64_t>(base.off) + size >
                   bounds.state_window) {
          fail(pc, VerifyCode::MemOutOfWindow,
               "bounds: %s of state bytes %u..%llu outside the %u-byte "
               "state window",
               op_info(insn.op).name, base.off,
               static_cast<unsigned long long>(base.off + size),
               bounds.state_window);
        }
        break;
      }
    }
  }
}

}  // namespace

bool VerifyResult::has(VerifyCode code) const noexcept {
  for (const VerifyIssue& i : issues) {
    if (i.code == code) return true;
  }
  return false;
}

std::string VerifyResult::to_string() const {
  std::string out;
  char head[32];
  for (const VerifyIssue& i : issues) {
    int n = std::snprintf(head, sizeof head, "@%u: ", i.pc);
    out.append(head, static_cast<std::size_t>(n));
    out += i.message;
    out.push_back('\n');
  }
  return out;
}

VerifyResult verify(const Program& prog, const VerifyPolicy& policy) {
  VerifyResult result;
  const std::uint32_t n = static_cast<std::uint32_t>(prog.insns.size());

  if (prog.insns.empty()) {
    issue(result, 0, "empty program");
    return result;
  }
  if (prog.insns.size() > kMaxProgramLen) {
    issue(result, 0, "program exceeds maximum length");
    return result;
  }

  for (std::uint32_t t : prog.indirect_targets) {
    if (t >= n) issue(result, t, "indirect target out of bounds");
  }
  for (const auto& [from, to] : prog.indirect_map) {
    (void)from;
    if (to >= n) issue(result, to, "indirect-map target out of bounds");
  }

  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const Insn& insn = prog.insns[pc];
    if (!valid_op(static_cast<std::uint8_t>(insn.op))) {
      issue(result, pc, "invalid opcode");
      continue;
    }
    const OpInfo& info = op_info(insn.op);

    if ((info.reads_a || info.writes_a) && insn.a >= kNumRegs) {
      issue(result, pc, "register a out of range");
    }
    if (info.reads_b && insn.b >= kNumRegs) {
      issue(result, pc, "register b out of range");
    }
    if (info.reads_c && insn.c >= kNumRegs) {
      issue(result, pc, "register c out of range");
    }
    if (info.is_branch && insn.imm >= n) {
      issue(result, pc, "branch target out of bounds");
    }
    if (insn.op == Op::TDilp && insn.imm >= kNumRegs) {
      issue(result, pc, "TDilp length register out of range");
    }

    if (info.is_fp && !policy.allow_fp) {
      issue(result, pc, "floating-point instruction forbidden");
    }
    if (info.is_signed_ex && !policy.allow_signed_trap) {
      issue(result, pc, "signed overflow-trapping arithmetic forbidden");
    }
    if (info.is_trusted && !policy.allow_trusted) {
      issue(result, pc, "trusted kernel call forbidden in this context");
    }
    switch (insn.op) {
      case Op::Pin8:
      case Op::Pin16:
      case Op::Pin32:
      case Op::Pout8:
      case Op::Pout16:
      case Op::Pout32:
        if (!policy.allow_pipe_io) {
          issue(result, pc, "pipe I/O outside a pipe body");
        }
        break;
      case Op::Jr:
        if (!policy.allow_indirect) {
          issue(result, pc, "indirect jump forbidden");
        }
        break;
      default:
        break;
    }
  }

  // Control must not be able to fall off the end: the last instruction has
  // to be a terminator or an unconditional transfer.
  const Insn& last = prog.insns.back();
  switch (last.op) {
    case Op::Halt:
    case Op::Abort:
    case Op::Jmp:
    case Op::Jr:
    case Op::JrChk:
    case Op::Ret:
      break;
    default:
      issue(result, n - 1, "control can fall off the end of the program");
  }

  // The bounds pass needs a structurally sound program (in-range branch
  // targets, valid opcodes) to walk; run it only once that holds.
  if (policy.bounds.enabled && result.ok()) {
    check_bounds(prog, policy.bounds, result);
  }

  return result;
}

}  // namespace ash::vcode
