// Download-time VCODE translation: pre-decoded threaded execution engine.
//
// The paper's download pipeline is verify -> sandbox -> install; this adds a
// *translate* stage between sandbox and install. A CodeCache compiles a
// verified Program once into a dense pre-decoded form:
//
//   - every instruction is resolved to a handler function pointer (threaded
//     dispatch — no per-step opcode switch or op_info() lookup),
//   - its base cycle cost is baked into the decoded slot,
//   - common adjacent pairs are fused into superinstructions (the SFI
//     sandbox's mask+load / mask+store sequences, cmp+branch, addi+load),
//   - the per-instruction budget prechecks are hoisted to basic-block
//     boundaries (each block header carries its instruction count and
//     static cycle sum), and
//   - indirect jumps go through the shared O(1) JumpTable.
//
// Equivalence guarantee: simulated results — outcome, cycles, insns,
// result, abort_code, fault_pc, and the final register file — are
// bit-identical to vcode::Interpreter on every program and every limit
// combination. Whenever a hoisted check detects that a budget ceiling
// *may* fire inside a block (or a dynamic memory/trusted-call cost makes
// the hoisted bound stale), the engine hands the exact machine state to
// detail::run_core, which finishes the run with the interpreter's own
// per-instruction semantics. Translation only changes host wall-clock
// cost, never simulated behavior; a differential property test enforces
// this (tests/vcode_codecache_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vcode/backend.hpp"
#include "vcode/interp.hpp"
#include "vcode/program.hpp"

namespace ash::vcode {

/// Number of basic blocks the translator would form for `prog` (shared
/// leader analysis; used by the sandbox report for download-time stats).
std::uint32_t count_basic_blocks(const Program& prog);

/// ASH_USE_CODE_CACHE environment override: -1 = unset, 0 = forced off,
/// 1 = forced on. ("0", "off", "false", "no" turn it off.)
int code_cache_env_override();

class CodeCache {
 public:
  /// Translate `prog` (copied; the cache is self-contained).
  explicit CodeCache(const Program& prog);

  // Translated code holds pointers into its own storage.
  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  const Program& program() const noexcept { return prog_; }
  const JumpTable& jump_table() const noexcept { return jt_; }
  std::size_t block_count() const noexcept { return blocks_; }
  std::size_t fused_count() const noexcept { return fused_; }
  /// Times run() has executed this translated form. Batched dispatch
  /// keeps one cache hot across a whole batch; the counter lets tests
  /// and ashtool confirm the same translation served every message.
  std::uint64_t run_count() const noexcept { return runs_; }

  /// Uniform cross-backend statistics (see vcode/backend.hpp).
  BackendStats stats() const noexcept {
    return {Backend::CodeCache, runs_, 1, blocks_,
            code_.size() * sizeof(TInsn)};
  }

  /// Execute against `env` with the caller's register file (imported on
  /// entry, exported on exit — same contract as Interpreter's explicit
  /// register file). Bit-identical to Interpreter::run on the same inputs.
  ExecResult run(Env& env, std::array<std::uint32_t, kNumRegs>& regs,
                 const ExecLimits& limits = {}) const;

  /// Human-readable listing of the translated form (blocks, fusions,
  /// hoisted budget sums) for `ashtool dump-translated`.
  std::string dump() const;

  struct RunCtx;
  struct TInsn;
  using Handler = const TInsn* (*)(const TInsn*, RunCtx&);

  /// How a translated slot was formed (kept for dump()).
  enum class Kind : std::uint8_t {
    Head,        // basic-block header carrying hoisted budget sums
    Plain,       // one source instruction
    FusedAluMem, // Andi/Ori/Addiu + load/store superinstruction
    FusedCmpBr,  // Sltu/Slt + Beq/Bne superinstruction
    FusedAluBr,  // Andi/Ori/Addiu + Beq/Bne-against-r0 superinstruction
    FusedAluAlu, // Andi/Ori/Addiu + Andi/Ori/Addiu superinstruction
    End,         // synthetic pc==n slot (falls off the end -> BadInstruction)
  };

  /// One pre-decoded slot. For fused pairs: a/b/imm come from the first
  /// source instruction, c/d/imm2 from the second; `base` is the summed
  /// base cycle cost; pc/pc2 are the original indices for exact fault
  /// reporting.
  struct TInsn {
    Handler fn = nullptr;
    std::uint8_t a = 0, b = 0, c = 0, d = 0;
    Kind kind = Kind::Plain;
    std::uint32_t base = 0;
    std::uint32_t imm = 0;
    std::uint32_t imm2 = 0;
    const TInsn* target = nullptr;  // resolved branch/jump destination head
    std::uint32_t pc = 0;           // original index (block start for Head)
    std::uint32_t pc2 = 0;          // original index of fused second half
    std::uint32_t next_pc = 0;      // original fall-through index
    // Sum of base cycles of the remaining block positions that still have a
    // (hoisted) cycle precheck after this slot; kNoPostCheck when this slot
    // ends the block. Consulted after dynamic-cost ops only.
    std::uint32_t rest_static = 0;
  };

  static constexpr std::uint32_t kNoPostCheck = 0xffffffffu;

 private:
  void build();

  Program prog_;
  JumpTable jt_;
  std::vector<TInsn> code_;
  // Original leader index -> its Head slot (size n+1; [n] = End slot;
  // nullptr for non-leaders).
  std::vector<const TInsn*> head_of_;
  std::size_t blocks_ = 0;
  std::size_t fused_ = 0;
  mutable std::uint64_t runs_ = 0;  // run() is logically const
};

}  // namespace ash::vcode
