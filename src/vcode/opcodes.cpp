#include "vcode/opcodes.hpp"

#include <array>

namespace ash::vcode {
namespace {

// Column order: name, reads_a, writes_a, reads_b, reads_c,
//               is_branch, is_mem, is_fp, is_signed_ex, is_trusted, cycles.
//
// Cycle costs model the 40 MHz MIPS R3400 of the DECstation 5000/240:
// single-cycle ALU ops, 2-cycle multiply issue, ~35-cycle divide; the
// byteswaps model the MIPS shift/mask sequences (no swap instruction).
// Memory
// instruction costs here are the *base* pipeline cost; cache behaviour is
// added by the execution environment.
constexpr std::array<OpInfo, static_cast<std::size_t>(Op::kCount)> kTable = {{
    /* Nop     */ {"nop", 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Halt    */ {"halt", 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Abort   */ {"abort", 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Jmp     */ {"jmp", 0, 0, 0, 0, 1, 0, 0, 0, 0, 1},
    /* Jr      */ {"jr", 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* JrChk   */ {"jrchk", 1, 0, 0, 0, 0, 0, 0, 0, 0, 2},
    /* Call    */ {"call", 0, 0, 0, 0, 1, 0, 0, 0, 0, 1},
    /* Ret     */ {"ret", 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Beq     */ {"beq", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Bne     */ {"bne", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Bltu    */ {"bltu", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Bgeu    */ {"bgeu", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Blt     */ {"blt", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Bge     */ {"bge", 1, 0, 1, 0, 1, 0, 0, 0, 0, 1},
    /* Budget  */ {"budget", 0, 0, 0, 0, 0, 0, 0, 0, 0, 2},
    /* Movi    */ {"movi", 0, 1, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Mov     */ {"mov", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Addu    */ {"addu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Addiu   */ {"addiu", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Subu    */ {"subu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Mulu    */ {"mulu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 2},
    /* Divu    */ {"divu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 35},
    /* Remu    */ {"remu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 35},
    /* And     */ {"and", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Andi    */ {"andi", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Or      */ {"or", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Ori     */ {"ori", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Xor     */ {"xor", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Xori    */ {"xori", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Sll     */ {"sll", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Slli    */ {"slli", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Srl     */ {"srl", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Srli    */ {"srli", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Sra     */ {"sra", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Srai    */ {"srai", 0, 1, 1, 0, 0, 0, 0, 0, 0, 1},
    /* Sltu    */ {"sltu", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Slt     */ {"slt", 0, 1, 1, 1, 0, 0, 0, 0, 0, 1},
    /* Add     */ {"add", 0, 1, 1, 1, 0, 0, 0, 1, 0, 1},
    /* Sub     */ {"sub", 0, 1, 1, 1, 0, 0, 0, 1, 0, 1},
    /* Fadd    */ {"fadd", 0, 1, 1, 1, 0, 0, 1, 0, 0, 2},
    /* Fmul    */ {"fmul", 0, 1, 1, 1, 0, 0, 1, 0, 0, 4},
    /* Lw      */ {"lw", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Lhu     */ {"lhu", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Lh      */ {"lh", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Lbu     */ {"lbu", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Lb      */ {"lb", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Sw      */ {"sw", 1, 0, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Sh      */ {"sh", 1, 0, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Sb      */ {"sb", 1, 0, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Lwu_u   */ {"lw.u", 0, 1, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Sw_u    */ {"sw.u", 1, 0, 1, 0, 0, 1, 0, 0, 0, 1},
    /* Cksum32 */ {"cksum32", 1, 1, 1, 0, 0, 0, 0, 0, 0, 2},
    /* Bswap32 */ {"bswap32", 0, 1, 1, 0, 0, 0, 0, 0, 0, 6},
    /* Bswap16 */ {"bswap16", 0, 1, 1, 0, 0, 0, 0, 0, 0, 3},
    /* Pin8    */ {"pin8", 0, 1, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Pin16   */ {"pin16", 0, 1, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Pin32   */ {"pin32", 0, 1, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Pout8   */ {"pout8", 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Pout16  */ {"pout16", 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* Pout32  */ {"pout32", 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
    /* TMsgLen */ {"t.msglen", 0, 1, 0, 0, 0, 0, 0, 0, 1, 2},
    /* TSend   */ {"t.send", 1, 0, 1, 1, 0, 0, 0, 0, 1, 2},
    /* TDilp   */ {"t.dilp", 1, 0, 1, 1, 0, 0, 0, 0, 1, 2},
    /* TUserCopy*/ {"t.usercopy", 1, 0, 1, 1, 0, 0, 0, 0, 1, 2},
    /* TMsgLoad */ {"t.msgload", 0, 1, 1, 0, 0, 0, 0, 0, 1, 2},
}};

}  // namespace

const OpInfo& op_info(Op op) noexcept {
  return kTable[static_cast<std::size_t>(op)];
}

}  // namespace ash::vcode
