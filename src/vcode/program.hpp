// VCODE programs: the unit of code that applications hand to the ASH
// system. A Program is plain data — it can be serialized ("handed to the
// kernel"), inspected by the verifier, rewritten by the sandbox, and
// executed by the interpreter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "vcode/opcodes.hpp"

namespace ash::vcode {

/// Register index into the 64-entry VCODE register file.
using Reg = std::uint8_t;

/// One fixed-width instruction. `a`, `b`, `c` are register operands (their
/// roles depend on the opcode; see opcodes.hpp); `imm` is a 32-bit
/// immediate, branch target (instruction index), or — for TDilp only — a
/// register index naming the length operand.
struct Insn {
  Op op = Op::Nop;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::uint32_t imm = 0;

  friend bool operator==(const Insn&, const Insn&) = default;
};

/// Hard limits of the VCODE machine.
inline constexpr std::uint8_t kNumRegs = 64;   // r0 is hardwired to zero
inline constexpr std::uint8_t kRegZero = 0;
inline constexpr std::uint8_t kRegArg0 = 1;    // first argument / result
inline constexpr std::uint8_t kRegArg1 = 2;
inline constexpr std::uint8_t kRegArg2 = 3;
inline constexpr std::uint8_t kRegArg3 = 4;
inline constexpr std::size_t kMaxProgramLen = 1 << 20;
inline constexpr std::size_t kMaxCallDepth = 64;

/// A complete VCODE routine.
struct Program {
  std::vector<Insn> insns;

  /// Instruction indices that are legal targets of indirect jumps (Jr).
  /// The builder records every bound label here; the sandbox restricts
  /// rewritten indirect jumps to this set (Section III-B2: "if they are to
  /// code named by the pre-sandboxed address then they are translated").
  std::vector<std::uint32_t> indirect_targets;

  /// Indirect-jump translation map installed by the sandbox rewriter:
  /// pairs of (pre-sandbox index, post-rewrite index), sorted by first.
  /// When non-empty, JrChk treats register values as *pre-sandbox*
  /// addresses and translates them — exactly the paper's "if they are to
  /// code named by the pre-sandboxed address then they are translated and
  /// allowed to proceed". When empty, JrChk checks indirect_targets.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> indirect_map;

  /// True once the SFI pass has processed this program.
  bool sandboxed = false;

  std::size_t size() const noexcept { return insns.size(); }

  /// Serialize to the byte format "downloaded into the kernel".
  std::vector<std::uint8_t> serialize() const;

  /// Parse a serialized program. Returns nullopt on malformed input
  /// (truncation, bad magic, impossible counts, invalid opcode bytes).
  static std::optional<Program> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const Program&, const Program&) = default;
};

/// Human-readable listing of a program (for tests and debugging).
std::string disassemble(const Program& prog);

/// One-line rendering of a single instruction.
std::string to_string(const Insn& insn);

}  // namespace ash::vcode
