#include "vcode/program.hpp"

#include <cstdio>

#include "util/byteorder.hpp"

namespace ash::vcode {
namespace {

constexpr std::uint32_t kMagic = 0x41534856;  // "ASHV"
constexpr std::uint32_t kVersion = 2;

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint32_t>(in[off]) |
         static_cast<std::uint32_t>(in[off + 1]) << 8 |
         static_cast<std::uint32_t>(in[off + 2]) << 16 |
         static_cast<std::uint32_t>(in[off + 3]) << 24;
}

}  // namespace

std::vector<std::uint8_t> Program::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + insns.size() * 8 + indirect_targets.size() * 4 +
              indirect_map.size() * 8);
  put32(out, kMagic);
  put32(out, kVersion);
  put32(out, static_cast<std::uint32_t>(insns.size()));
  put32(out, static_cast<std::uint32_t>(indirect_targets.size()));
  put32(out, static_cast<std::uint32_t>(indirect_map.size()));
  put32(out, sandboxed ? 1u : 0u);
  for (const Insn& i : insns) {
    out.push_back(static_cast<std::uint8_t>(i.op));
    out.push_back(i.a);
    out.push_back(i.b);
    out.push_back(i.c);
    put32(out, i.imm);
  }
  for (std::uint32_t t : indirect_targets) put32(out, t);
  for (const auto& [from, to] : indirect_map) {
    put32(out, from);
    put32(out, to);
  }
  return out;
}

std::optional<Program> Program::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 24) return std::nullopt;
  if (get32(bytes, 0) != kMagic || get32(bytes, 4) != kVersion) {
    return std::nullopt;
  }
  const std::uint32_t n_insns = get32(bytes, 8);
  const std::uint32_t n_targets = get32(bytes, 12);
  const std::uint32_t n_map = get32(bytes, 16);
  const std::uint32_t flags = get32(bytes, 20);
  if (n_insns > kMaxProgramLen || n_targets > kMaxProgramLen ||
      n_map > kMaxProgramLen || flags > 1) {
    return std::nullopt;
  }
  const std::size_t need = 24 + static_cast<std::size_t>(n_insns) * 8 +
                           static_cast<std::size_t>(n_targets) * 4 +
                           static_cast<std::size_t>(n_map) * 8;
  if (bytes.size() != need) return std::nullopt;

  Program prog;
  prog.sandboxed = flags != 0;
  prog.insns.reserve(n_insns);
  std::size_t off = 24;
  for (std::uint32_t i = 0; i < n_insns; ++i, off += 8) {
    if (!valid_op(bytes[off])) return std::nullopt;
    Insn insn;
    insn.op = static_cast<Op>(bytes[off]);
    insn.a = bytes[off + 1];
    insn.b = bytes[off + 2];
    insn.c = bytes[off + 3];
    insn.imm = get32(bytes, off + 4);
    prog.insns.push_back(insn);
  }
  prog.indirect_targets.reserve(n_targets);
  for (std::uint32_t i = 0; i < n_targets; ++i, off += 4) {
    prog.indirect_targets.push_back(get32(bytes, off));
  }
  prog.indirect_map.reserve(n_map);
  for (std::uint32_t i = 0; i < n_map; ++i, off += 8) {
    prog.indirect_map.emplace_back(get32(bytes, off), get32(bytes, off + 4));
  }
  return prog;
}

std::string to_string(const Insn& insn) {
  const OpInfo& info = op_info(insn.op);
  char buf[96];
  int n = 0;
  if (info.is_branch) {
    if (info.reads_a) {
      n = std::snprintf(buf, sizeof buf, "%-8s r%u, r%u, @%u", info.name,
                        insn.a, insn.b, insn.imm);
    } else {
      n = std::snprintf(buf, sizeof buf, "%-8s @%u", info.name, insn.imm);
    }
  } else if (info.is_mem) {
    if (info.writes_a) {
      n = std::snprintf(buf, sizeof buf, "%-8s r%u, [r%u%+d]", info.name,
                        insn.a, insn.b, static_cast<std::int32_t>(insn.imm));
    } else {
      n = std::snprintf(buf, sizeof buf, "%-8s [r%u%+d], r%u", info.name,
                        insn.b, static_cast<std::int32_t>(insn.imm), insn.a);
    }
  } else if (insn.op == Op::TDilp) {
    n = std::snprintf(buf, sizeof buf, "%-8s id=r%u, src=r%u, dst=r%u, len=r%u",
                      info.name, insn.a, insn.b, insn.c, insn.imm);
  } else {
    n = std::snprintf(buf, sizeof buf, "%-8s r%u, r%u, r%u, imm=%d", info.name,
                      insn.a, insn.b, insn.c,
                      static_cast<std::int32_t>(insn.imm));
  }
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string disassemble(const Program& prog) {
  std::string out;
  char head[32];
  for (std::size_t pc = 0; pc < prog.insns.size(); ++pc) {
    int n = std::snprintf(head, sizeof head, "%4zu: ", pc);
    out.append(head, static_cast<std::size_t>(n));
    out += to_string(prog.insns[pc]);
    out.push_back('\n');
  }
  return out;
}

}  // namespace ash::vcode
