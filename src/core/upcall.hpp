// Fast asynchronous upcalls — the mechanism the paper builds as the
// comparison point for ASHs (Section V).
//
// An upcall runs application code at *user level* in response to a
// message, via an address-space switch rather than a full context switch
// (after Liedtke). It needs no sandboxing — the handler runs with user
// privileges — but pays the kernel/user boundary and the batching
// machinery the paper describes: "the upcall mechanism was designed to
// batch messages together to avoid multiple (potentially expensive)
// kernel crossings".
//
// Handlers are native callables. They receive a context with the message
// location and a deferred `send` primitive, do their work with charged
// memops (returning the cycles they consumed), and report whether the
// message was consumed. Sends queued through the context are released
// when the handler's simulated runtime has elapsed — the same accounting
// discipline as ASH replies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "sim/node.hpp"

namespace ash::core {

class UpcallManager {
 public:
  explicit UpcallManager(sim::Node& node) : node_(node) {}

  struct Ctx {
    std::uint32_t msg_addr = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t stripe_chunk = 0;
    int channel = 0;
    /// Queue a reply; delivered when the handler's runtime has elapsed.
    std::function<void(int chan, std::span<const std::uint8_t>)> send;
  };

  struct Result {
    sim::Cycles cycles = 0;  // CPU the handler consumed (from memops etc.)
    bool consumed = true;
  };

  using Handler = std::function<Result(const Ctx&)>;

  void attach_an2(net::An2Device& dev, int vc, Handler handler);
  void attach_eth(net::EthernetDevice& dev, int endpoint, Handler handler);

  std::uint64_t invocations() const noexcept { return invocations_; }

 private:
  struct PendingSend {
    int channel;
    std::vector<std::uint8_t> bytes;
  };

  bool run(Handler& handler, const Ctx& base,
           const std::function<bool(int, std::span<const std::uint8_t>)>&
               send_fn);

  sim::Node& node_;
  std::vector<std::unique_ptr<Handler>> handlers_;
  std::uint64_t invocations_ = 0;
};

}  // namespace ash::core
