// The ASH system — the paper's primary contribution.
//
// Application-specific safe message handlers are user-written VCODE
// routines, downloaded into the (simulated) kernel, verified and — unless
// the application is kernel-trusted — SFI-sandboxed, then attached to a
// demultiplexing point (an AN2 virtual circuit or an Ethernet/DPF
// endpoint). When a message for that point arrives, the handler runs in
// kernel context, in the address-space of its owning process, before any
// scheduling decision:
//
//   * it can direct message placement (dynamic message vectoring), via
//     sandboxed stores, TUserCopy, or a DILP integrated transfer;
//   * it can reply immediately (message initiation) via TSend — sends are
//     collected during execution and released when the handler's simulated
//     runtime has elapsed, so reply latency is accounted faithfully;
//   * it can perform bounded general computation (control initiation).
//
// Exit protocol (Section II-A): Halt = commit — the message is consumed.
// Abort = voluntary abort — the handler's own fix-up code ran and the
// message falls back to the normal delivery path. Any fault or budget
// exhaustion is an involuntary abort: the kernel kills the handler and
// falls back, and the owning application may be left inconsistent (its
// problem, not the kernel's — exactly the paper's contract).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dilp/engine.hpp"
#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "sandbox/sfi.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"
#include "vcode/codecache.hpp"
#include "vcode/program.hpp"

namespace ash::core {

/// Registers through which DILP persistent values are exchanged between an
/// ASH and a TDilp invocation: persistent k of the invoked ilp is seeded
/// from r(kDilpPersistentBase + k) and written back there afterwards.
inline constexpr vcode::Reg kDilpPersistentBase = 48;
inline constexpr vcode::Reg kDilpPersistentMax = 8;

struct AshOptions {
  /// False = kernel-trusted "unsafe ASH" (Tables V/VI's comparison): the
  /// program is verified but not rewritten.
  bool sandboxed = true;
  /// Pre-bind the owner's address translations at download time (the
  /// Section III-A note: "the physical address a virtual address maps to
  /// can be pre-bound into the ASH when it is imported into the kernel").
  /// Invocation then skips installing the context identifier/page-table
  /// pointer. Requires the owner's pages to stay pinned (they are, here).
  bool prebound_translation = false;
  /// Bound runtime with sandbox-inserted Budget checks instead of the
  /// hardware timer (Section III-B3's software alternative).
  bool software_budget_checks = false;
  sandbox::Mode mode = sandbox::Mode::Mips;
  bool general_epilogue = true;
  /// Translate the (verified, sandboxed) program into the pre-decoded
  /// threaded form at download time and execute through it. Simulated
  /// results are bit-identical either way — this is a host wall-clock
  /// knob, exposed for ablation. Overridable per-process with the
  /// ASH_USE_CODE_CACHE environment variable (0/off forces the
  /// interpreter, anything else forces the cache).
  bool use_code_cache = true;
};

struct AshStats {
  std::uint64_t invocations = 0;
  std::uint64_t commits = 0;
  std::uint64_t voluntary_aborts = 0;
  std::uint64_t involuntary_aborts = 0;
  std::uint64_t livelock_deferrals = 0;
  std::uint64_t cycles = 0;  // handler execution cycles (excl. dispatch)
  std::uint64_t insns = 0;   // dynamic instruction count
};

/// Everything the kernel knows about one message being offered to an ASH.
struct MsgContext {
  std::uint32_t addr = 0;        // where the message currently lives
  std::uint32_t len = 0;         // logical message length in bytes
  std::uint32_t stripe_chunk = 0;  // nonzero: message is device-striped
  int channel = 0;               // reply channel (VC / endpoint id)
  std::uint32_t user_arg = 0;    // application argument bound at attach
};

class AshSystem {
 public:
  explicit AshSystem(sim::Node& node);

  sim::Node& node() noexcept { return node_; }

  /// The node's DILP engine; compile pipe lists here and invoke them from
  /// handlers with TDilp.
  dilp::Engine& dilp() noexcept { return dilp_; }

  /// Download a handler for `owner`: verify, (optionally) sandbox, and
  /// install. Returns the ASH id, or -1 with `error` set. `report`, when
  /// non-null, receives the sandboxer's added-instruction accounting
  /// (Section V-D's numbers).
  int download(sim::Process& owner, const vcode::Program& prog,
               const AshOptions& opts, std::string* error,
               sandbox::Report* report = nullptr);

  /// Attach a downloaded ASH to an AN2 virtual circuit. Replies via TSend
  /// go out on this device.
  void attach_an2(net::An2Device& dev, int vc, int ash_id,
                  std::uint32_t user_arg = 0);

  /// Attach to an Ethernet/DPF endpoint. The message offered to the
  /// handler is the striped kernel buffer; TDilp with a striped-layout ilp
  /// or TUserCopy (which destripes) moves it out.
  void attach_eth(net::EthernetDevice& dev, int endpoint, int ash_id,
                  std::uint32_t user_arg = 0);

  /// Receive-livelock guard (Section VI-4): at most `quota` handler runs
  /// per owning process per `window` cycles; beyond that, messages fall
  /// back to the normal path ("refuse to execute any more for processes
  /// receiving more than their share"). quota = 0 disables the guard.
  void set_livelock_quota(std::uint32_t quota, sim::Cycles window);

  const AshStats& stats(int ash_id) const;
  const vcode::Program& program(int ash_id) const;
  const sim::Process& owner(int ash_id) const;

  /// The translated form built at download time, or nullptr when the
  /// handler was installed with the code cache disabled.
  const vcode::CodeCache* code_cache(int ash_id) const;

  /// Delivers one collected TSend at handler completion: (channel, bytes).
  using SendFn = std::function<bool(int, std::span<const std::uint8_t>)>;

  /// Invoke handler `ash_id` on a message, in kernel context. Returns true
  /// if the handler consumed the message (commit). Exposed for tests and
  /// for custom demux points; devices call it through the attach hooks.
  bool invoke(int ash_id, const MsgContext& msg, SendFn send_fn,
              sim::Cycles tx_cost);

 private:
  struct Installed {
    sim::Process* owner;
    vcode::Program prog;
    AshOptions opts;
    AshStats stats;
    // Pre-decoded threaded form, built once at install (the translate
    // stage); invocation never re-decodes. Null when ablated off.
    std::unique_ptr<vcode::CodeCache> cache;
    // livelock window state
    sim::Cycles window_start = 0;
    std::uint32_t window_count = 0;
  };

  Installed& at(int ash_id);
  const Installed& at(int ash_id) const;

  sim::Node& node_;
  dilp::Engine dilp_;
  std::vector<std::unique_ptr<Installed>> installed_;
  std::uint32_t livelock_quota_ = 0;  // 0 = disabled
  sim::Cycles livelock_window_ = 0;
};

}  // namespace ash::core
