// The ASH system — the paper's primary contribution.
//
// Application-specific safe message handlers are user-written VCODE
// routines, downloaded into the (simulated) kernel, verified and — unless
// the application is kernel-trusted — SFI-sandboxed, then attached to a
// demultiplexing point (an AN2 virtual circuit or an Ethernet/DPF
// endpoint). When a message for that point arrives, the handler runs in
// kernel context, in the address-space of its owning process, before any
// scheduling decision:
//
//   * it can direct message placement (dynamic message vectoring), via
//     sandboxed stores, TUserCopy, or a DILP integrated transfer;
//   * it can reply immediately (message initiation) via TSend — sends are
//     collected during execution and released when the handler's simulated
//     runtime has elapsed, so reply latency is accounted faithfully;
//   * it can perform bounded general computation (control initiation).
//
// Exit protocol (Section II-A): Halt = commit — the message is consumed.
// Abort = voluntary abort — the handler's own fix-up code ran and the
// message falls back to the normal delivery path. Any fault or budget
// exhaustion is an involuntary abort: the kernel kills the handler and
// falls back, and the owning application may be left inconsistent (its
// problem, not the kernel's — exactly the paper's contract).
//
// The supervisor (supervisor.hpp) extends that contract from one
// invocation to the handler's lifetime: repeated involuntary aborts
// quarantine and eventually revoke a handler, so a persistently faulting
// download cannot monopolize kernel time message after message.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/supervisor.hpp"
#include "dilp/engine.hpp"
#include "net/an2.hpp"
#include "net/ethernet.hpp"
#include "net/nic_offload.hpp"
#include "sandbox/sfi.hpp"
#include "sim/cpu.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"
#include "vcode/backend.hpp"
#include "vcode/codecache.hpp"
#include "vcode/jit/jit.hpp"
#include "vcode/program.hpp"

namespace ash::trace {
enum class DenyReason : std::uint8_t;
}  // namespace ash::trace

namespace ash::ashc {
struct RuleSet;
}  // namespace ash::ashc

namespace ash::core {

class TenantScheduler;

/// Registers through which DILP persistent values are exchanged between an
/// ASH and a TDilp invocation: persistent k of the invoked ilp is seeded
/// from r(kDilpPersistentBase + k) and written back there afterwards.
inline constexpr vcode::Reg kDilpPersistentBase = 48;
inline constexpr vcode::Reg kDilpPersistentMax = 8;

/// Device-resident state an offloaded handler needs beyond its sandboxed
/// image: the fast-mem scratch area plus the DILP persistent register
/// file. Together with the image bytes this is the handler's NIC memory
/// window footprint (AshSystem::nic_footprint).
inline constexpr std::uint32_t kNicHandlerStateBytes =
    256 + kDilpPersistentMax * sizeof(std::uint32_t);

struct AshOptions {
  /// False = kernel-trusted "unsafe ASH" (Tables V/VI's comparison): the
  /// program is verified but not rewritten.
  bool sandboxed = true;
  /// Pre-bind the owner's address translations at download time (the
  /// Section III-A note: "the physical address a virtual address maps to
  /// can be pre-bound into the ASH when it is imported into the kernel").
  /// Invocation then skips installing the context identifier/page-table
  /// pointer. Requires the owner's pages to stay pinned (they are, here).
  bool prebound_translation = false;
  /// Bound runtime with sandbox-inserted Budget checks instead of the
  /// hardware timer (Section III-B3's software alternative).
  bool software_budget_checks = false;
  sandbox::Mode mode = sandbox::Mode::Mips;
  bool general_epilogue = true;
  /// Translate the (verified, sandboxed) program into the pre-decoded
  /// threaded form at download time and execute through it. Simulated
  /// results are bit-identical either way — this is a host wall-clock
  /// knob, exposed for ablation. Overridable per-process with the
  /// ASH_USE_CODE_CACHE environment variable (0/off forces the
  /// interpreter, anything else forces the cache). Kept for ablation
  /// compatibility: `backend` below is the full three-way selector.
  bool use_code_cache = true;
  /// Execution backend for this handler: the reference interpreter, the
  /// pre-decoded threaded form, or the superblock JIT (vcode/jit/).
  /// Simulated results are bit-identical across all three. Resolution
  /// order at download: this field, then use_code_cache=false demotes
  /// CodeCache to Interp, then ASH_USE_CODE_CACHE, then ASH_BACKEND
  /// (strongest).
  vcode::Backend backend = vcode::Backend::CodeCache;
};

/// Forensic record of a handler's most recent involuntary abort — what an
/// operator needs to answer "why is this handler quarantined?".
struct AshFaultRecord {
  bool valid = false;
  vcode::Outcome outcome = vcode::Outcome::Halted;
  std::uint32_t pc = 0;        // faulting instruction index
  std::uint64_t insns = 0;     // dynamic instructions before the fault
  std::uint64_t cycles = 0;    // cycles burned by the faulting run
  sim::Cycles at = 0;          // simulated time of the fault
};

/// Per-handler kernel counters.
///
/// Thread model: plain (non-atomic) fields with a single writer — the
/// thread driving this node's simulator, which is the only thread that
/// runs AshSystem::invoke. Readers are either that same thread (ashtool,
/// tests) or run after the simulation has stopped, so no read can tear.
/// Concurrent cross-thread polling belongs on trace::Tracer's atomic
/// emitted/dropped counters instead (see src/trace/trace.hpp; the CI tsan
/// job enforces the split).
struct AshStats {
  std::uint64_t invocations = 0;
  std::uint64_t commits = 0;
  std::uint64_t voluntary_aborts = 0;
  std::uint64_t involuntary_aborts = 0;
  std::uint64_t livelock_deferrals = 0;
  std::uint64_t cycles = 0;  // handler execution cycles (excl. dispatch)
  std::uint64_t insns = 0;   // dynamic instruction count
  /// Abort taxonomy: every run's vcode::Outcome, counted individually
  /// (index = static_cast<size_t>(outcome)). involuntary_aborts above is
  /// the sum of the involuntary entries; this breaks it down.
  std::array<std::uint64_t, vcode::kOutcomeCount> by_outcome{};
  /// Messages bypassed to the normal delivery path by the supervisor.
  std::uint64_t quarantine_skips = 0;  // while Quarantined
  std::uint64_t revoked_skips = 0;     // offered to a Revoked handler
  /// Messages deferred by the tenant scheduler's cycle quota (the owner's
  /// weighted-fair account was exhausted).
  std::uint64_t tenant_deferrals = 0;
  AshFaultRecord last_fault;
};

/// Everything the kernel knows about one message being offered to an ASH.
struct MsgContext {
  std::uint32_t addr = 0;        // where the message currently lives
  std::uint32_t len = 0;         // logical message length in bytes
  std::uint32_t stripe_chunk = 0;  // nonzero: message is device-striped
  int channel = 0;               // reply channel (VC / endpoint id)
  std::uint32_t user_arg = 0;    // application argument bound at attach
};

class AshEnv;

class AshSystem {
 public:
  explicit AshSystem(sim::Node& node);

  sim::Node& node() noexcept { return node_; }

  /// The node's DILP engine; compile pipe lists here and invoke them from
  /// handlers with TDilp.
  dilp::Engine& dilp() noexcept { return dilp_; }

  /// Download a handler for `owner`: verify, (optionally) sandbox, and
  /// install. Returns the ASH id, or -1 with `error` set. `report`, when
  /// non-null, receives the sandboxer's added-instruction accounting
  /// (Section V-D's numbers).
  int download(sim::Process& owner, const vcode::Program& prog,
               const AshOptions& opts, std::string* error,
               sandbox::Report* report = nullptr);

  /// Download a declarative rule set (src/ashc): compile it to VCODE,
  /// verify the result under the rule set's bounds policy (message
  /// window, state window, send cap — ashc::verify_policy), write the
  /// initial state image at `state_addr` in the owner's segment
  /// (4-aligned, Limits::state_bytes long), then install through the
  /// normal download path. Attach with user_arg = state_addr so the
  /// handler's r3 points at its state blob. Returns the ASH id, or -1
  /// with `error` set at whichever stage rejected the rules.
  int download_rules(sim::Process& owner, const ashc::RuleSet& rules,
                     std::uint32_t state_addr, const AshOptions& opts,
                     std::string* error);

  /// Attach a downloaded ASH to an AN2 virtual circuit. Replies via TSend
  /// go out on this device.
  void attach_an2(net::An2Device& dev, int vc, int ash_id,
                  std::uint32_t user_arg = 0);

  /// Attach to an Ethernet/DPF endpoint. The message offered to the
  /// handler is the striped kernel buffer; TDilp with a striped-layout ilp
  /// or TUserCopy (which destripes) moves it out.
  void attach_eth(net::EthernetDevice& dev, int endpoint, int ash_id,
                  std::uint32_t user_arg = 0);

  // ---- smart-NIC offload (net/nic_offload.hpp) ----

  /// The handler's NIC memory-window footprint: sandboxed image bytes
  /// plus fast-mem scratch and DILP persistent registers.
  std::uint32_t nic_footprint(int ash_id) const;

  /// Attach like attach_an2, *and* make the handler NIC-resident on the
  /// device's NicProcessor (dev.set_nic must have been called). Returns
  /// true when the handler fit the NIC memory window — its frames then
  /// execute on device units; false leaves it host-resident (frames are
  /// counted NotResident punts through the normal host hooks installed
  /// here either way, so behaviour is identical minus where cycles land).
  bool offload_an2(net::An2Device& dev, int vc, int ash_id,
                   std::uint32_t user_arg = 0);
  bool offload_eth(net::EthernetDevice& dev, int endpoint, int ash_id,
                   std::uint32_t user_arg = 0);

  /// Receive-livelock guard (Section VI-4): at most `quota` handler runs
  /// per owning process per `window` cycles; beyond that, messages fall
  /// back to the normal path ("refuse to execute any more for processes
  /// receiving more than their share"). The window is accounted per
  /// OWNING PROCESS, so a process cannot multiply its share by installing
  /// more handlers. quota = 0 disables the guard.
  void set_livelock_quota(std::uint32_t quota, sim::Cycles window);

  // ---- multi-tenant isolation (core/tenant.hpp) ----

  /// Wire the tenant scheduler in (nullptr detaches; default). With a
  /// scheduler installed, downloads pass per-tenant buffer/handler
  /// admission, every invocation passes the weighted-fair cycle check,
  /// executed cycles are charged to the owner's account, and
  /// revoke_owner feeds the scheduler so queued work drains.
  void set_tenants(TenantScheduler* tenants) noexcept {
    tenants_ = tenants;
  }
  TenantScheduler* tenants() const noexcept { return tenants_; }

  // ---- supervisor: fault containment, quarantine, revocation ----

  /// Install the containment policy. Disabled by default; with
  /// `cfg.enabled` false the invocation path is untouched.
  void set_supervisor(const SupervisorConfig& cfg);
  const SupervisorConfig& supervisor_config() const noexcept {
    return supervisor_.config();
  }

  /// Containment state of a handler (Healthy unless the supervisor or an
  /// explicit revoke moved it).
  Health health(int ash_id) const;
  const Supervisor::HandlerState& supervisor_state(int ash_id) const;

  /// Detach whatever handler is hooked to this demux point: the device
  /// hook is cleared and the attachment forgotten. Returns false when no
  /// ASH of this system was attached there. Must not be called from
  /// inside the handler's own invocation (revocation, which can fire
  /// there, defers its hook-clearing instead).
  bool detach_an2(net::An2Device& dev, int vc);
  bool detach_eth(net::EthernetDevice& dev, int endpoint);

  /// Permanently revoke a handler: marks it Revoked and clears its device
  /// hooks (deferred through the event queue, so revocation is safe from
  /// inside the handler's own invocation). The id stays valid for stats.
  void revoke(int ash_id);

  /// Revoke every handler owned by `owner`; returns how many were newly
  /// revoked. Fired automatically when the owner's aggregate fault count
  /// crosses SupervisorConfig::owner_fault_limit.
  std::size_t revoke_owner(const sim::Process& owner);

  /// Aggregate involuntary aborts across all handlers this process owns
  /// (counted whether or not the supervisor is enabled).
  std::uint64_t owner_faults(const sim::Process& owner) const;

  /// Messages offered with a stale/invalid ash id: counted and fed back
  /// to the normal delivery path instead of unwinding through the driver.
  std::uint64_t bad_id_fallbacks() const noexcept {
    return bad_id_fallbacks_;
  }

  std::size_t handler_count() const noexcept { return installed_.size(); }

  /// Human-readable status table (per-handler health, abort taxonomy,
  /// last-fault forensics) — what `ashtool status` prints.
  std::string format_status() const;

  const AshStats& stats(int ash_id) const;
  const vcode::Program& program(int ash_id) const;
  const sim::Process& owner(int ash_id) const;

  /// The translated form built at download time, or nullptr when the
  /// handler was installed with a different backend.
  const vcode::CodeCache* code_cache(int ash_id) const;

  /// The superblock JIT form, or nullptr when the handler was installed
  /// with a different backend.
  const vcode::JitBackend* jit_backend(int ash_id) const;

  /// The backend a handler was resolved to at download time.
  vcode::Backend backend(int ash_id) const;

  /// Uniform execution statistics for the handler's backend (the
  /// interpreter synthesizes runs from the invocation count).
  vcode::BackendStats backend_stats(int ash_id) const;

  /// Delivers one collected TSend at handler completion: (channel, bytes).
  using SendFn = std::function<bool(int, std::span<const std::uint8_t>)>;

  /// Invoke handler `ash_id` on a message, in kernel context. Returns true
  /// if the handler consumed the message (commit). Exposed for tests and
  /// for custom demux points; devices call it through the attach hooks.
  bool invoke(int ash_id, const MsgContext& msg, SendFn send_fn,
              sim::Cycles tx_cost);

  /// Batched invocation for the multi-queue receive path: all messages
  /// share one handler and one demux point. The first dispatched message
  /// pays the full sandbox-entry cost (budget-timer setup + context
  /// install); messages 2..N pay only CostModel::ash_batch_rearm — the
  /// owner's context is already installed and the budget timer is merely
  /// re-armed — and the timer is cleared once per batch.
  ///
  /// Containment is per message: admission (revocation, quarantine,
  /// livelock quota) runs for every message, and a fault on message k
  /// aborts only that run — the supervisor is notified and the remaining
  /// messages still execute (or are denied by the policy it just
  /// triggered). `consumed[i]`, when non-null, is set true for each
  /// committed message; unset messages fall back to the normal path.
  ///
  /// Cycles are charged on `cpu` (the receive queue's CPU), and collected
  /// TSends from all committed messages are released together when the
  /// batch's charged runtime has elapsed.
  void invoke_batch(int ash_id, std::span<const MsgContext> msgs,
                    SendFn send_fn, sim::Cycles tx_cost,
                    const sim::KernelCpu& cpu, bool* consumed);

  /// Run handler `ash_id` on a NIC execution unit (the NicHook body —
  /// exposed for tests). Admission, execution, stats, tenant charging,
  /// and the supervisor all go through the same machinery as the host
  /// paths; only the cycle charge lands on `unit`, under its cost model.
  net::NicExecResult invoke_nic(int ash_id, const MsgContext& msg,
                                SendFn send_fn, sim::Cycles tx_cost,
                                net::NicExecUnit& unit);

 private:
  /// One device hook this handler is attached through (for detach and
  /// revocation-time hook clearing). Exactly one device pointer is set.
  struct Attachment {
    net::An2Device* an2 = nullptr;
    net::EthernetDevice* eth = nullptr;
    int channel = 0;  // VC or endpoint id
  };

  struct Installed {
    sim::Process* owner;
    vcode::Program prog;
    AshOptions opts;
    AshStats stats;
    // Translated forms, built once at install (the translate stage);
    // invocation never re-decodes. At most one is non-null, per the
    // resolved AshOptions::backend.
    std::unique_ptr<vcode::CodeCache> cache;
    std::unique_ptr<vcode::JitBackend> jit;
    Supervisor::HandlerState health;
    std::vector<Attachment> attachments;
  };

  /// Livelock window, accounted per owning process (keyed by pid).
  struct LivelockWindow {
    sim::Cycles start = 0;
    std::uint32_t count = 0;
  };

  Installed& at(int ash_id);
  const Installed& at(int ash_id) const;
  /// Non-throwing lookup: nullptr for an invalid id (the receive path
  /// must never unwind through the driver).
  Installed* find(int ash_id) noexcept;

  /// Admission shared by invoke and invoke_batch: bad id, revocation,
  /// quarantine, the tenant cycle quota, and the livelock quota. nullptr
  /// means the message falls back to the normal delivery path (already
  /// counted and traced, with `cpu_id` as the denying CPU); `why`, when
  /// non-null, receives the denial reason so the batch path can
  /// short-circuit a revoked handler's remaining frames.
  Installed* admit(int ash_id, std::uint16_t cpu_id,
                   trace::DenyReason* why = nullptr);

  /// One handler run, shared by invoke and invoke_batch. `dispatch` and
  /// `clear` are the caller's entry/exit charges for THIS message (the
  /// batch path passes the marginal re-arm cost for messages 2..N and
  /// folds the single timer clear in at the end), so `total` is the
  /// marginal share this message adds to the CPU charge. Updates stats,
  /// the fault record, and the supervisor; emits AshDispatch/AshOutcome.
  struct RunResult {
    vcode::Outcome outcome = vcode::Outcome::Halted;
    bool consumed = false;
    sim::Cycles total = 0;      // dispatch + exec cycles + clear
    std::uint64_t insns = 0;
  };
  RunResult run_one(int ash_id, Installed& ash, const MsgContext& msg,
                    AshEnv& env, std::uint16_t cpu_id, sim::Cycles dispatch,
                    sim::Cycles clear);
  /// Clear all device hooks now (caller must not be inside one of them).
  void clear_attachments(Installed& ash);
  /// Mark revoked and schedule the hook-clearing after the current event
  /// (safe from inside the handler's own invocation).
  void revoke_installed(int ash_id, Installed& ash);

  sim::Node& node_;
  dilp::Engine dilp_;
  std::vector<std::unique_ptr<Installed>> installed_;
  std::uint32_t livelock_quota_ = 0;  // 0 = disabled
  sim::Cycles livelock_window_ = 0;
  std::unordered_map<std::uint32_t, LivelockWindow> livelock_by_owner_;
  Supervisor supervisor_;
  TenantScheduler* tenants_ = nullptr;
  std::unordered_map<std::uint32_t, std::uint64_t> faults_by_owner_;
  std::uint64_t bad_id_fallbacks_ = 0;
};

}  // namespace ash::core
