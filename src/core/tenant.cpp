#include "core/tenant.hpp"

#include <cinttypes>
#include <cstdio>

namespace ash::core {

const char* to_string(TenantDeny d) noexcept {
  switch (d) {
    case TenantDeny::CycleQuota: return "cycle-quota";
    case TenantDeny::RxQuota: return "rx-quota";
    case TenantDeny::BufferQuota: return "buffer-quota";
    case TenantDeny::DownloadQuota: return "download-quota";
    case TenantDeny::Revoked: return "revoked";
  }
  return "?";
}

TenantScheduler::TenantScheduler(sim::Node& node,
                                 const TenantSchedulerConfig& cfg)
    : node_(node), cfg_(cfg) {
  if (cfg_.replenish_period == 0) cfg_.replenish_period = 1;
  if (cfg_.default_weight == 0) cfg_.default_weight = 1;
  if (cfg_.burst_rounds == 0) cfg_.burst_rounds = 1;
}

TenantAccount& TenantScheduler::account(const sim::Process& owner) {
  auto [it, inserted] = accounts_.try_emplace(owner.pid());
  TenantAccount& acct = it->second;
  if (inserted) {
    acct.pid = owner.pid();
    acct.name = owner.name();
    acct.weight = cfg_.default_weight;
    // A new account starts with one full round banked so a tenant's very
    // first message is never denied by an empty ledger.
    acct.deficit = static_cast<std::int64_t>(cfg_.quantum_per_weight) *
                   acct.weight;
    acct.last_replenish = node_.now();
  }
  return acct;
}

const TenantAccount* TenantScheduler::find_account(
    std::uint32_t pid) const noexcept {
  const auto it = accounts_.find(pid);
  return it == accounts_.end() ? nullptr : &it->second;
}

void TenantScheduler::set_tenant(const sim::Process& owner,
                                 const TenantConfig& cfg) {
  TenantAccount& acct = account(owner);
  const std::uint32_t w = cfg.weight == 0 ? 1 : cfg.weight;
  // Re-seed a never-charged first-round bank so "register, then weight"
  // and "weight at registration" are equivalent. Once the account has
  // spent or banked anything beyond the seed, the weight only changes
  // future earnings.
  const std::int64_t seed =
      static_cast<std::int64_t>(cfg_.quantum_per_weight) * acct.weight;
  if (acct.runs == 0 && acct.cycles_charged == 0 && acct.deficit == seed) {
    acct.deficit = static_cast<std::int64_t>(cfg_.quantum_per_weight) * w;
  }
  acct.weight = w;
}

void TenantScheduler::replenish(TenantAccount& acct) {
  const sim::Cycles now = node_.now();
  if (now < acct.last_replenish) return;
  const std::uint64_t rounds =
      (now - acct.last_replenish) / cfg_.replenish_period;
  if (rounds == 0) return;
  acct.last_replenish += rounds * cfg_.replenish_period;
  // Credit at most burst_rounds worth — the bank cap — which also keeps
  // the arithmetic far from overflow for long-idle tenants.
  const std::uint64_t credit_rounds =
      rounds < cfg_.burst_rounds ? rounds : cfg_.burst_rounds;
  const std::int64_t earned =
      static_cast<std::int64_t>(credit_rounds) *
      static_cast<std::int64_t>(cfg_.quantum_per_weight) * acct.weight;
  const std::int64_t cap = static_cast<std::int64_t>(cfg_.burst_rounds) *
                           static_cast<std::int64_t>(cfg_.quantum_per_weight) *
                           acct.weight;
  acct.deficit += earned;
  if (acct.deficit > cap) acct.deficit = cap;
}

bool TenantScheduler::admit_cycles(const sim::Process& owner) {
  TenantAccount& acct = account(owner);
  if (acct.revoked) {
    ++acct.denials[static_cast<std::size_t>(TenantDeny::Revoked)];
    return false;
  }
  replenish(acct);
  if (acct.deficit <= 0) {
    ++acct.denials[static_cast<std::size_t>(TenantDeny::CycleQuota)];
    return false;
  }
  return true;
}

void TenantScheduler::charge(const sim::Process& owner,
                             std::uint64_t cycles) {
  TenantAccount& acct = account(owner);
  ++acct.runs;
  acct.cycles_charged += cycles;
  acct.deficit -= static_cast<std::int64_t>(cycles);
}

bool TenantScheduler::admit_download(const sim::Process& owner,
                                     std::uint64_t image_bytes,
                                     TenantDeny* why) {
  TenantAccount& acct = account(owner);
  TenantDeny deny;
  if (acct.revoked) {
    deny = TenantDeny::Revoked;
  } else if (cfg_.max_handlers != 0 && acct.handlers >= cfg_.max_handlers) {
    deny = TenantDeny::DownloadQuota;
  } else if (cfg_.buffer_bytes_cap != 0 &&
             acct.buffer_bytes + image_bytes > cfg_.buffer_bytes_cap) {
    deny = TenantDeny::BufferQuota;
  } else {
    ++acct.handlers;
    acct.buffer_bytes += image_bytes;
    return true;
  }
  ++acct.denials[static_cast<std::size_t>(deny)];
  if (why != nullptr) *why = deny;
  return false;
}

void TenantScheduler::on_owner_revoked(const sim::Process& owner) {
  TenantAccount& acct = account(owner);
  acct.revoked = true;
  // The refund: a revoked tenant's outstanding debt (an overdrawn
  // deficit) is written off so the ledger closes; it can also never
  // spend a banked surplus again.
  acct.deficit = 0;
}

void TenantScheduler::note_drained(const sim::Process& owner,
                                   std::uint64_t frames) {
  account(owner).drained_frames += frames;
}

bool TenantScheduler::try_admit(const sim::Process* owner) {
  if (owner == nullptr) return true;  // unowned frames are the device's
  TenantAccount& acct = account(*owner);
  if (acct.revoked) {
    ++acct.denials[static_cast<std::size_t>(TenantDeny::Revoked)];
    return false;
  }
  if (cfg_.rx_quota_frames != 0 && acct.rx_pending >= cfg_.rx_quota_frames) {
    ++acct.denials[static_cast<std::size_t>(TenantDeny::RxQuota)];
    return false;
  }
  ++acct.rx_pending;
  ++acct.rx_enqueued;
  return true;
}

void TenantScheduler::on_dispatched(const sim::Process* owner) {
  if (owner == nullptr) return;
  TenantAccount& acct = account(*owner);
  if (acct.rx_pending > 0) --acct.rx_pending;
}

void TenantScheduler::on_drop(const sim::Process* owner,
                              net::RxDropReason reason) {
  if (owner == nullptr) return;
  TenantAccount& acct = account(*owner);
  if (reason == net::RxDropReason::Overflow) {
    ++acct.rx_overflow_drops;
  } else {
    ++acct.rx_quota_drops;
  }
}

std::string TenantScheduler::format_table() const {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof line,
                "tenants: %zu (quantum=%" PRIu64
                " cyc/weight per %" PRIu64 " cyc round, burst=%u rounds)\n",
                accounts_.size(), cfg_.quantum_per_weight,
                static_cast<std::uint64_t>(cfg_.replenish_period),
                cfg_.burst_rounds);
  out += line;
  std::snprintf(line, sizeof line,
                "%5s  %-12s %2s %-8s %8s %12s %9s %8s %8s %8s %8s\n", "pid",
                "tenant", "w", "state", "runs", "charged", "deny", "rx-in",
                "rx-drop", "drained", "handlers");
  out += line;
  for (const auto& [pid, a] : accounts_) {
    std::uint64_t denials = 0;
    for (const std::uint64_t d : a.denials) denials += d;
    std::snprintf(line, sizeof line,
                  "%5u  %-12s %2u %-8s %8" PRIu64 " %8" PRIu64
                  " cyc %9" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                  " %8u\n",
                  pid, a.name.c_str(), a.weight,
                  a.revoked ? "revoked" : "active", a.runs, a.cycles_charged,
                  denials, a.rx_enqueued,
                  a.rx_quota_drops + a.rx_overflow_drops, a.drained_frames,
                  a.handlers);
    out += line;
    if (denials != 0) {
      std::snprintf(line, sizeof line,
                    "       denials: cycle-quota=%" PRIu64 " rx-quota=%" PRIu64
                    " buffer-quota=%" PRIu64 " download-quota=%" PRIu64
                    " revoked=%" PRIu64 "\n",
                    a.denials[0], a.denials[1], a.denials[2], a.denials[3],
                    a.denials[4]);
      out += line;
    }
  }
  return out;
}

std::string TenantScheduler::tenants_json() const {
  std::string out = "{\"tenants\":[";
  char buf[512];
  bool first = true;
  for (const auto& [pid, a] : accounts_) {
    std::snprintf(
        buf, sizeof buf,
        "%s{\"pid\":%u,\"name\":\"%s\",\"weight\":%u,\"revoked\":%s"
        ",\"runs\":%" PRIu64 ",\"charged_cyc\":%" PRIu64
        ",\"deficit_cyc\":%" PRId64 ",\"rx_enqueued\":%" PRIu64
        ",\"rx_quota_drops\":%" PRIu64 ",\"rx_overflow_drops\":%" PRIu64
        ",\"drained\":%" PRIu64 ",\"handlers\":%u,\"buffer_bytes\":%" PRIu64
        ",\"denials\":{\"cycle_quota\":%" PRIu64 ",\"rx_quota\":%" PRIu64
        ",\"buffer_quota\":%" PRIu64 ",\"download_quota\":%" PRIu64
        ",\"revoked\":%" PRIu64 "}}",
        first ? "" : ",", pid, a.name.c_str(), a.weight,
        a.revoked ? "true" : "false", a.runs, a.cycles_charged, a.deficit,
        a.rx_enqueued, a.rx_quota_drops, a.rx_overflow_drops,
        a.drained_frames, a.handlers, a.buffer_bytes, a.denials[0],
        a.denials[1], a.denials[2], a.denials[3], a.denials[4]);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace ash::core
