// The ASH supervisor — kernel-side fault containment for downloaded
// handlers.
//
// The paper's safety contract stops at the single invocation: an
// involuntary abort kills the handler and the owning application may be
// left inconsistent ("its problem, not the kernel's"). That protects the
// kernel's *correctness*, not its *time*: a handler that faults on every
// message burns the full ash_max_runtime budget in interrupt context,
// per message, forever. The supervisor closes that hole with a
// per-handler health state machine:
//
//   Healthy ──(fault_threshold involuntary aborts within fault_window)──►
//   Quarantined ──(backoff elapses; next message is a probe)──►
//   Probation ──(probation_successes clean runs)──► Healthy
//        └──(any fault)──► Quarantined (backoff doubled, capped)
//   ...and after max_quarantines round trips ──► Revoked (permanent).
//
// While Quarantined or Revoked, the handler's messages take the normal
// delivery path at near-zero kernel cost: admission is a state check in
// the demux path, no timer setup, no context install, no handler run.
// Revocation additionally clears the handler's device hooks, so not even
// the admission check remains on the hot path.
//
// The Supervisor itself is a pure policy engine over a HandlerState it
// does not own — AshSystem keeps one HandlerState per installed handler
// and consults the policy around each invocation. Keeping the policy free
// of kernel dependencies makes the state machine unit-testable with a
// bare cycle counter.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace ash::core {

/// Containment state of one installed handler.
enum class Health : std::uint8_t {
  Healthy,      // full service
  Probation,    // readmitted from quarantine; being watched
  Quarantined,  // messages bypass the handler until backoff elapses
  Revoked,      // permanently detached (kernel or policy decision)
};

/// Short human-readable name ("Healthy", "Quarantined", ...).
const char* to_string(Health h) noexcept;

struct SupervisorConfig {
  /// Master switch. Disabled (the default), the supervisor never touches
  /// the invocation path and all existing behaviour is bit-identical.
  bool enabled = false;
  /// Involuntary aborts within `fault_window` cycles before the handler
  /// is quarantined.
  std::uint32_t fault_threshold = 3;
  sim::Cycles fault_window = sim::us(100000.0);
  /// First quarantine length; doubles on every failed re-admission, up
  /// to `quarantine_cap` (exponential backoff).
  sim::Cycles quarantine_base = sim::us(50000.0);
  sim::Cycles quarantine_cap = sim::us(1600000.0);
  /// Clean runs (commit or voluntary abort) on probation before the
  /// handler is Healthy again and its backoff resets.
  std::uint32_t probation_successes = 3;
  /// Quarantine round trips before permanent revocation; 0 = never.
  std::uint32_t max_quarantines = 4;
  /// Total involuntary aborts across all of one process's handlers
  /// before every handler it owns is revoked; 0 = disabled.
  std::uint64_t owner_fault_limit = 0;
};

class Supervisor {
 public:
  /// Per-handler containment state. Owned by the caller (AshSystem keeps
  /// one per installed handler); the policy only reads and writes it.
  struct HandlerState {
    Health health = Health::Healthy;
    std::uint32_t faults_in_window = 0;
    sim::Cycles window_start = 0;
    sim::Cycles quarantine_until = 0;
    sim::Cycles quarantine_len = 0;  // current backoff length (0 = unset)
    std::uint32_t quarantine_trips = 0;
    std::uint32_t probation_streak = 0;
  };

  void set_config(const SupervisorConfig& cfg) { cfg_ = cfg; }
  const SupervisorConfig& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled; }

  enum class Admission : std::uint8_t {
    Run,       // deliver to the handler as usual
    Denied,    // quarantined/revoked: take the normal delivery path
  };

  /// Decide whether a message arriving at `now` may run handler `h`.
  /// A quarantined handler whose backoff has elapsed is readmitted on
  /// probation (the message that triggered the check is the first probe).
  Admission admit(HandlerState& h, sim::Cycles now) const;

  enum class Action : std::uint8_t {
    None,        // no transition
    Quarantine,  // handler just entered quarantine
    Revoke,      // handler exhausted its round trips: revoke permanently
  };

  /// Report a completed run; `fault` means involuntary abort. Returns the
  /// transition the caller must enact (revocation clears device hooks,
  /// which only AshSystem can do).
  Action note_result(HandlerState& h, bool fault, sim::Cycles now) const;

  /// Force a handler into the Revoked state (kernel/operator decision).
  static void force_revoke(HandlerState& h) noexcept {
    h.health = Health::Revoked;
  }

 private:
  Action enter_quarantine(HandlerState& h, sim::Cycles now) const;

  SupervisorConfig cfg_;
};

}  // namespace ash::core
