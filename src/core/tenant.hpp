// Multi-tenant isolation: weighted-fair handler scheduling, per-tenant
// quotas, and admission control for thousands of nontrusting processes on
// one node.
//
// The paper's fig. 4 shows ASH throughput holding as untrusting processes
// share a node — but nothing there stops one hostile tenant from starving
// the rest of handler cycles, RX-queue slots, or kernel buffers. This
// layer sits between dispatch (AshSystem::invoke / invoke_batch and
// RxQueue::enqueue) and the tenants, giving each OWNING PROCESS a virtual
// resource account:
//
//  * handler cycles — deficit round-robin over per-tenant cycle accounts.
//    Every `replenish_period` each account earns `quantum_per_weight x
//    weight` cycles (replenished lazily, on first contact after the round,
//    so an idle 1000-tenant population costs nothing). Admission requires
//    a positive deficit; the run's actual cycles are then debited, so one
//    overdraw per replenish is possible but bounded by the hardware
//    budget timer (CostModel::ash_max_runtime). An idle tenant banks at
//    most `burst_rounds` rounds of earnings (bounded burstiness).
//
//  * RX-queue occupancy — the scheduler implements net::RxQuota: a tenant
//    may park at most `rx_quota_frames` frames across the receive queues;
//    beyond that its frames are dropped AT ENQUEUE and charged to the
//    offending tenant (RxDropReason::TenantQuota), not to the device or
//    to its queue-sharing victims.
//
//  * kernel buffer pool — downloads charge the handler image's kernel
//    footprint against `buffer_bytes_cap`, and `max_handlers` caps the
//    install count; both reject gracefully with a typed TenantDeny before
//    any translation work happens.
//
// Supervisor integration: when per-owner fault aggregation revokes an
// owner (AshSystem::revoke_owner), the scheduler is told — the account is
// marked revoked, its outstanding deficit debt is written off (the
// refund: a revoked tenant cannot owe cycles it can never repay), and
// frames already coalesced for it are drained with counted denials
// (note_drained) instead of re-running admission per frame.
//
// Everything here is host-side bookkeeping on the single simulation
// thread: admission checks charge no simulated cycles (like the
// supervisor's quarantine check, they model a few kernel instructions in
// a path that already pays a demux), and the accounts follow the same
// single-writer discipline as AshStats.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "net/rx_queue.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"

namespace ash::core {

/// Typed admission denial — the taxonomy `ashtool tenants` and the bench
/// report (mapped onto trace::DenyReason for AshDenied events).
enum class TenantDeny : std::uint8_t {
  CycleQuota,     // DRR cycle account exhausted (deficit <= 0)
  RxQuota,        // RX-queue occupancy cap hit at enqueue
  BufferQuota,    // kernel buffer-pool share exhausted at download
  DownloadQuota,  // handler-count cap hit at download
  Revoked,        // the owner is revoked; its work is drained
};
inline constexpr std::size_t kTenantDenyCount = 5;
const char* to_string(TenantDeny d) noexcept;

/// Per-tenant policy (today just the DRR weight; registered via
/// set_tenant / set_weight, defaulting to TenantSchedulerConfig).
struct TenantConfig {
  std::uint32_t weight = 1;
};

struct TenantSchedulerConfig {
  /// DRR round length. Lazy: an account is brought current on first
  /// contact after any number of elapsed rounds.
  sim::Cycles replenish_period = sim::us(1000.0);
  /// Cycles earned per weight unit per round. quantum_per_weight /
  /// replenish_period is the guaranteed CPU fraction per weight unit.
  std::uint64_t quantum_per_weight = 4000;
  /// Deficit cap in rounds: an idle tenant banks at most
  /// burst_rounds x quantum_per_weight x weight cycles.
  std::uint32_t burst_rounds = 4;
  std::uint32_t default_weight = 1;
  /// Per-tenant cap on frames parked in RX queues; 0 = unlimited.
  std::uint32_t rx_quota_frames = 64;
  /// Per-tenant kernel buffer-pool share in bytes (handler images); 0 =
  /// unlimited.
  std::uint64_t buffer_bytes_cap = 0;
  /// Per-tenant cap on installed handlers; 0 = unlimited.
  std::uint32_t max_handlers = 0;
};

/// One tenant's resource account, keyed by owning-process pid. Plain
/// fields, single writer (the simulation thread) — same discipline as
/// AshStats.
struct TenantAccount {
  std::uint32_t pid = 0;
  std::string name;
  std::uint32_t weight = 1;
  bool revoked = false;

  // DRR cycle account. deficit may go negative by at most one handler
  // runtime (the admitted run that overdrew it).
  std::int64_t deficit = 0;
  sim::Cycles last_replenish = 0;

  // Cycle conservation ledger: cycles_charged == the sum of
  // AshStats::cycles over every handler this tenant owns, always
  // (tests/core_tenant_test.cpp pins it across fault/revoke churn).
  std::uint64_t runs = 0;
  std::uint64_t cycles_charged = 0;

  std::array<std::uint64_t, kTenantDenyCount> denials{};

  // RX-queue occupancy (net::RxQuota side).
  std::uint32_t rx_pending = 0;     // frames currently parked in queues
  std::uint64_t rx_enqueued = 0;    // frames ever admitted
  std::uint64_t rx_quota_drops = 0;     // dropped: this tenant over quota
  std::uint64_t rx_overflow_drops = 0;  // dropped: the queue itself full

  // Kernel buffer pool / install accounting.
  std::uint64_t buffer_bytes = 0;
  std::uint32_t handlers = 0;

  // Frames drained (with counted denials) after revocation instead of
  // re-running admission per frame.
  std::uint64_t drained_frames = 0;
};

/// The tenant scheduler. One per AshSystem (wired with set_tenants) and
/// per RxQueueSet (wired as RxQueueSet::Config::quota).
class TenantScheduler : public net::RxQuota {
 public:
  explicit TenantScheduler(sim::Node& node,
                           const TenantSchedulerConfig& cfg = {});

  const TenantSchedulerConfig& config() const noexcept { return cfg_; }

  /// Register / re-weight a tenant (auto-registered with default_weight
  /// on first contact otherwise).
  void set_tenant(const sim::Process& owner, const TenantConfig& cfg);
  void set_weight(const sim::Process& owner, std::uint32_t weight) {
    set_tenant(owner, TenantConfig{weight});
  }

  // ---- handler-cycle scheduling (AshSystem admission path) ----

  /// May `owner` run a handler now? Replenishes the account lazily, then
  /// requires a positive deficit. Counts the denial when not.
  bool admit_cycles(const sim::Process& owner);
  /// Debit an executed run's cycles (called from the single charge site
  /// in AshSystem::run_one, so the conservation ledger stays exact).
  void charge(const sim::Process& owner, std::uint64_t cycles);

  // ---- download admission (buffer pool + handler count) ----

  /// May `owner` install a handler whose kernel image is `image_bytes`?
  /// Charges the account when yes; sets `why` and counts when no.
  bool admit_download(const sim::Process& owner, std::uint64_t image_bytes,
                      TenantDeny* why);

  // ---- supervisor feed ----

  /// The owner was revoked (AshSystem::revoke_owner): mark the account,
  /// write off its deficit debt, and deny it from here on.
  void on_owner_revoked(const sim::Process& owner);
  /// `frames` coalesced frames for a revoked owner were drained with
  /// counted denials instead of re-admitted one by one.
  void note_drained(const sim::Process& owner, std::uint64_t frames);

  // ---- net::RxQuota (RX-queue occupancy) ----

  bool try_admit(const sim::Process* owner) override;
  void on_dispatched(const sim::Process* owner) override;
  void on_drop(const sim::Process* owner, net::RxDropReason reason) override;

  // ---- readers ----

  std::size_t tenant_count() const noexcept { return accounts_.size(); }
  /// nullptr when the pid has never touched the scheduler.
  const TenantAccount* find_account(std::uint32_t pid) const noexcept;
  const std::map<std::uint32_t, TenantAccount>& accounts() const noexcept {
    return accounts_;
  }
  std::uint64_t cycles_charged(std::uint32_t pid) const noexcept {
    const TenantAccount* a = find_account(pid);
    return a == nullptr ? 0 : a->cycles_charged;
  }

  /// Human-readable per-tenant table — what `ashtool tenants` prints.
  std::string format_table() const;
  std::string tenants_json() const;

 private:
  TenantAccount& account(const sim::Process& owner);
  /// Bring the DRR account current: credit elapsed rounds, cap the bank.
  void replenish(TenantAccount& acct);

  sim::Node& node_;
  TenantSchedulerConfig cfg_;
  // Ordered by pid so reports and iteration are deterministic.
  std::map<std::uint32_t, TenantAccount> accounts_;
};

}  // namespace ash::core
