// The execution environment the kernel provides to a running ASH.
//
// Implements the paper's protection contract (Section III-B2):
//  * plain loads/stores reach the owning process's address space (the
//    sandbox has already confined them there; this environment enforces
//    the same bounds as defense in depth) — plus read-only access to the
//    in-flight message;
//  * memory costs flow through the node's cache model;
//  * the trusted kernel entry points (TMsgLen/TSend/TDilp/TUserCopy) are
//    the "specialized trusted function calls, implemented in the kernel"
//    whose access checks are aggregated at initiation time;
//  * sends are *collected*, not executed — the invocation engine releases
//    them when the handler's simulated runtime has elapsed, so message
//    initiation cannot beat the clock.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dilp/engine.hpp"
#include "sim/node.hpp"
#include "sim/process.hpp"
#include "vcode/interp.hpp"

namespace ash::core {

class AshEnv final : public vcode::Env {
 public:
  struct Config {
    sim::Node* node = nullptr;
    sim::MemSegment owner_seg;
    std::uint32_t msg_addr = 0;
    std::uint32_t msg_len = 0;       // logical bytes
    std::uint32_t stripe_chunk = 0;  // nonzero: message buffer is striped
    dilp::Engine* engine = nullptr;
    sim::Cycles tx_cost = 0;         // kernel work per TSend
  };

  explicit AshEnv(const Config& config) : cfg_(config) {}

  struct SendReq {
    int channel;
    std::vector<std::uint8_t> bytes;  // snapshot taken at TSend time
  };
  const std::vector<SendReq>& sends() const noexcept { return sends_; }

  // vcode::Env:
  void bind_regs(std::uint32_t* regs) override { regs_ = regs; }
  bool mem_read(std::uint32_t addr, void* dst, std::uint32_t len) override;
  bool mem_write(std::uint32_t addr, const void* src,
                 std::uint32_t len) override;
  std::uint64_t mem_cycles(std::uint32_t addr, std::uint32_t len,
                           bool is_write) override;
  bool fast_mem(vcode::Env::FastMem* out) override;
  bool t_msglen(std::uint32_t* len_out, std::uint64_t* cycles) override;
  bool t_send(std::uint32_t chan, std::uint32_t addr, std::uint32_t len,
              std::uint32_t* status, std::uint64_t* cycles) override;
  bool t_dilp(std::uint32_t id, std::uint32_t src, std::uint32_t dst,
              std::uint32_t len, std::uint32_t* status,
              std::uint64_t* cycles) override;
  bool t_usercopy(std::uint32_t dst, std::uint32_t src, std::uint32_t len,
                  std::uint32_t* status, std::uint64_t* cycles) override;
  bool t_msgload(std::uint32_t offset, std::uint32_t* value,
                 std::uint64_t* cycles) override;

 private:
  // The message is presented to the handler as a CONTIGUOUS logical array
  // at [msg_addr, msg_addr + msg_len), regardless of how the device laid
  // it out physically: striping is resolved here, per byte, so trusted
  // calls and (where legal) direct loads see the same logical bytes on
  // every NIC — the per-interface differences stay in the kernel
  // (Section III-C).
  bool in_owner(std::uint32_t addr, std::uint32_t len) const noexcept;
  bool in_msg(std::uint32_t addr, std::uint32_t len) const noexcept;
  bool readable(std::uint32_t addr, std::uint32_t len) const noexcept {
    return in_owner(addr, len) || in_msg(addr, len);
  }
  /// Physical node address of logical message byte `off`.
  std::uint32_t msg_phys(std::uint32_t off) const noexcept {
    if (cfg_.stripe_chunk == 0) return cfg_.msg_addr + off;
    const std::uint32_t c = cfg_.stripe_chunk;
    return cfg_.msg_addr + (off / c) * 2 * c + (off % c);
  }

  Config cfg_;
  std::uint32_t* regs_ = nullptr;
  std::vector<SendReq> sends_;
};

}  // namespace ash::core
