#include "core/upcall.hpp"

namespace ash::core {

bool UpcallManager::run(
    Handler& handler, const Ctx& base,
    const std::function<bool(int, std::span<const std::uint8_t>)>& send_fn) {
  ++invocations_;

  auto pending = std::make_shared<std::vector<PendingSend>>();
  Ctx ctx = base;
  ctx.send = [pending](int chan, std::span<const std::uint8_t> bytes) {
    pending->push_back({chan, {bytes.begin(), bytes.end()}});
  };

  const Result r = handler(ctx);

  const sim::CostModel& cost = node_.cost();
  // Address-space switch + user-level entry/exit, handler runtime, and the
  // batching machinery's overhead.
  const sim::Cycles total =
      cost.upcall_dispatch + r.cycles + cost.upcall_batching;
  node_.kernel_work(total, [send_fn, pending] {
    for (const PendingSend& s : *pending) send_fn(s.channel, s.bytes);
  });
  return r.consumed;
}

void UpcallManager::attach_an2(net::An2Device& dev, int vc, Handler handler) {
  handlers_.push_back(std::make_unique<Handler>(std::move(handler)));
  Handler* h = handlers_.back().get();
  net::An2Device* device = &dev;
  dev.set_kernel_hook(vc, [this, h, device](const net::An2Device::RxEvent& ev) {
    Ctx ctx;
    ctx.msg_addr = ev.desc.addr;
    ctx.msg_len = ev.desc.len;
    ctx.channel = ev.vc;
    return run(*h, ctx,
               [device](int chan, std::span<const std::uint8_t> bytes) {
                 return device->send(chan, bytes);
               });
  });
}

void UpcallManager::attach_eth(net::EthernetDevice& dev, int endpoint,
                               Handler handler) {
  handlers_.push_back(std::make_unique<Handler>(std::move(handler)));
  Handler* h = handlers_.back().get();
  net::EthernetDevice* device = &dev;
  dev.set_kernel_hook(
      endpoint, [this, h, device](const net::EthernetDevice::RxEvent& ev) {
        Ctx ctx;
        ctx.msg_addr = ev.striped.addr;
        ctx.msg_len = ev.striped.len;
        ctx.stripe_chunk = 16;
        ctx.channel = ev.endpoint;
        return run(*h, ctx,
                   [device](int, std::span<const std::uint8_t> bytes) {
                     return device->send(bytes);
                   });
      });
}

}  // namespace ash::core
