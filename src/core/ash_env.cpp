#include "core/ash_env.hpp"

#include <bit>
#include <cstring>

#include "core/ash.hpp"
#include "sim/memops.hpp"
#include "trace/trace.hpp"

namespace ash::core {

bool AshEnv::in_owner(std::uint32_t addr, std::uint32_t len) const noexcept {
  const auto& seg = cfg_.owner_seg;
  return addr >= seg.base &&
         static_cast<std::uint64_t>(addr) + len <=
             static_cast<std::uint64_t>(seg.base) + seg.size;
}

bool AshEnv::in_msg(std::uint32_t addr, std::uint32_t len) const noexcept {
  return addr >= cfg_.msg_addr &&
         static_cast<std::uint64_t>(addr) + len <=
             static_cast<std::uint64_t>(cfg_.msg_addr) + cfg_.msg_len;
}

bool AshEnv::mem_read(std::uint32_t addr, void* dst, std::uint32_t len) {
  if (in_msg(addr, len) && cfg_.stripe_chunk != 0) {
    // Logical view of a striped message: destripe per byte.
    auto* out = static_cast<std::uint8_t*>(dst);
    for (std::uint32_t i = 0; i < len; ++i) {
      const std::uint8_t* p = cfg_.node->mem(msg_phys(addr - cfg_.msg_addr + i), 1);
      if (p == nullptr) return false;
      out[i] = *p;
    }
    return true;
  }
  if (!readable(addr, len)) return false;
  const std::uint8_t* p = cfg_.node->mem(addr, len);
  if (p == nullptr) return false;
  std::memcpy(dst, p, len);
  return true;
}

bool AshEnv::mem_write(std::uint32_t addr, const void* src,
                       std::uint32_t len) {
  if (!in_owner(addr, len)) return false;  // messages are read-only
  std::uint8_t* p = cfg_.node->mem(addr, len);
  if (p == nullptr) return false;
  std::memcpy(p, src, len);
  return true;
}

bool AshEnv::fast_mem(vcode::Env::FastMem* out) {
  // Striped messages need per-byte address translation in mem_read; only
  // the plain layout is expressible as flat windows.
  if (cfg_.stripe_chunk != 0) return false;
  const std::uint64_t mem_size = cfg_.node->memory_size();
  const auto clamp = [mem_size](std::uint64_t v) {
    return static_cast<std::uint32_t>(v < mem_size ? v : mem_size);
  };
  // Clamping to backing storage folds Node::mem's nullptr rejection into
  // the window check, so acceptance matches mem_read/mem_write exactly.
  out->mem = cfg_.node->mem(0, 0);
  out->mem_base = 0;
  out->owner_lo = clamp(cfg_.owner_seg.base);
  out->owner_hi = clamp(static_cast<std::uint64_t>(cfg_.owner_seg.base) +
                        cfg_.owner_seg.size);
  out->msg_lo = clamp(cfg_.msg_addr);
  out->msg_hi =
      clamp(static_cast<std::uint64_t>(cfg_.msg_addr) + cfg_.msg_len);
  // With a plain (unstriped) layout, mem_cycles is exactly one
  // dcache().access() per access, so the engine may inline the model.
  // Offered only for power-of-two geometry (shift/mask indexing).
  const sim::Cache::Raw raw = cfg_.node->dcache().raw();
  const auto pow2 = [](std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (pow2(raw.line_bytes) && pow2(raw.n_lines)) {
    out->dtags = raw.tags;
    out->dline_shift = static_cast<std::uint32_t>(std::countr_zero(raw.line_bytes));
    out->dline_mask = raw.n_lines - 1;
    out->dread_miss_penalty = raw.read_miss_penalty;
    out->dwrite_cost = raw.write_cost;
    out->dhits = raw.hits;
    out->dmisses = raw.misses;
  }
  return out->mem != nullptr;
}

std::uint64_t AshEnv::mem_cycles(std::uint32_t addr, std::uint32_t len,
                                 bool is_write) {
  if (!is_write && cfg_.stripe_chunk != 0 && in_msg(addr, len)) {
    // Charge the cache at the physical (striped) location.
    return cfg_.node->dcache().access(msg_phys(addr - cfg_.msg_addr), len,
                                      false);
  }
  return cfg_.node->dcache().access(addr, len, is_write);
}

bool AshEnv::t_msglen(std::uint32_t* len_out, std::uint64_t* cycles) {
  *len_out = cfg_.msg_len;
  *cycles = 2;
  return true;
}

bool AshEnv::t_send(std::uint32_t chan, std::uint32_t addr, std::uint32_t len,
                    std::uint32_t* status, std::uint64_t* cycles) {
  *cycles = cfg_.tx_cost;
  if (!readable(addr, len)) {
    *status = 1;  // bad range: the call fails, the handler decides
    return true;
  }
  const std::uint8_t* p = cfg_.node->mem(addr, len);
  if (p == nullptr) {
    *status = 1;
    return true;
  }
  // Snapshot now (the handler may overwrite the buffer afterwards); the
  // wire transmission is released at handler completion.
  sends_.push_back(SendReq{static_cast<int>(chan),
                           std::vector<std::uint8_t>(p, p + len)});
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::TSendInitiated,
                             trace::Engine::None, len, chan, *cycles, 0);
  }
  *status = 0;
  return true;
}

bool AshEnv::t_dilp(std::uint32_t id, std::uint32_t src, std::uint32_t dst,
                    std::uint32_t len, std::uint32_t* status,
                    std::uint64_t* cycles) {
  *cycles = 2;
  if (cfg_.engine == nullptr) return false;
  const dilp::CompiledIlp* ilp =
      cfg_.engine->get(static_cast<int>(id));
  if (ilp == nullptr || (len & 3u) != 0) {
    *status = 1;
    return true;
  }
  // Access checks aggregated here, once, for the whole transfer. The
  // fused loop reads the message through this environment, which presents
  // it logically (striping resolved in mem_read/mem_cycles).
  if (!readable(src, len) || !in_owner(dst, len)) {
    *status = 1;
    return true;
  }

  // Persistent exchange through the agreed registers (r48...).
  std::vector<std::uint32_t> seeds;
  const std::size_t n_persist = ilp->persistents.size();
  if (n_persist > kDilpPersistentMax) {
    *status = 1;
    return true;
  }
  std::uint32_t* outer_regs = regs_;
  if (outer_regs != nullptr) {
    for (std::size_t k = 0; k < n_persist; ++k) {
      seeds.push_back(outer_regs[kDilpPersistentBase + k]);
    }
  } else {
    seeds.assign(n_persist, 0);
  }

  std::vector<std::uint32_t> finals;
  const auto run = cfg_.engine->run(static_cast<int>(id), *this, src, dst,
                                    len, seeds, &finals);
  regs_ = outer_regs;  // the nested run rebound the register pointer
  if (!run.ok()) {
    *status = 1;
    *cycles += run.exec.cycles;
    return true;
  }
  if (outer_regs != nullptr) {
    for (std::size_t k = 0; k < n_persist; ++k) {
      outer_regs[kDilpPersistentBase + k] = finals[k];
    }
  }
  *cycles += run.exec.cycles;
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::DilpRun, trace::Engine::None,
                             len, id, run.exec.cycles, run.exec.insns);
  }
  *status = 0;
  return true;
}

bool AshEnv::t_usercopy(std::uint32_t dst, std::uint32_t src,
                        std::uint32_t len, std::uint32_t* status,
                        std::uint64_t* cycles) {
  *cycles = 2;
  if (!in_owner(dst, len)) {
    *status = 1;
    return true;
  }
  // Copying out of a striped message buffer destripes (the kernel knows
  // the device's DMA layout; the handler addresses logical bytes).
  if (cfg_.stripe_chunk != 0 && in_msg(src, len)) {
    const std::uint32_t logical = src - cfg_.msg_addr;
    if (logical % cfg_.stripe_chunk == 0) {
      *cycles += sim::memops::copy_destripe(
          *cfg_.node, dst, msg_phys(logical), len, cfg_.stripe_chunk);
    } else {
      // Unaligned logical start: per-word destriping copy.
      sim::Node& node = *cfg_.node;
      for (std::uint32_t i = 0; i < len; ++i) {
        *node.mem(dst + i, 1) = *node.mem(msg_phys(logical + i), 1);
      }
      *cycles += static_cast<std::uint64_t>(
          (node.cost().copy_loop_insns_per_word + 2) *
          ((len + 3) / 4));
      *cycles += node.dcache().access(msg_phys(logical), len * 2, false);
      *cycles += node.dcache().access(dst, len, true);
    }
    if (trace::enabled()) {
      trace::global().emit_ctx(trace::EventType::TUserCopy,
                               trace::Engine::None, len, 0, *cycles, 0);
    }
    *status = 0;
    return true;
  }
  if (!readable(src, len)) {
    *status = 1;
    return true;
  }
  *cycles += sim::memops::copy(*cfg_.node, dst, src, len);
  if (trace::enabled()) {
    trace::global().emit_ctx(trace::EventType::TUserCopy,
                             trace::Engine::None, len, 0, *cycles, 0);
  }
  *status = 0;
  return true;
}

bool AshEnv::t_msgload(std::uint32_t offset, std::uint32_t* value,
                       std::uint64_t* cycles) {
  *cycles = 1;
  *value = 0;
  if (static_cast<std::uint64_t>(offset) + 4 > cfg_.msg_len) {
    return true;  // out of bounds reads as zero (documented contract)
  }
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    const std::uint8_t* p =
        cfg_.node->mem(msg_phys(offset + static_cast<std::uint32_t>(i)), 1);
    if (p == nullptr) return false;
    bytes[i] = *p;
  }
  std::memcpy(value, bytes, 4);
  *cycles += cfg_.node->dcache().access(msg_phys(offset), 4, false);
  return true;
}

}  // namespace ash::core
