#include "core/supervisor.hpp"

namespace ash::core {

const char* to_string(Health h) noexcept {
  switch (h) {
    case Health::Healthy: return "Healthy";
    case Health::Probation: return "Probation";
    case Health::Quarantined: return "Quarantined";
    case Health::Revoked: return "Revoked";
  }
  return "?";
}

Supervisor::Admission Supervisor::admit(HandlerState& h,
                                        sim::Cycles now) const {
  switch (h.health) {
    case Health::Revoked:
      return Admission::Denied;
    case Health::Quarantined:
      if (now < h.quarantine_until) return Admission::Denied;
      // Backoff elapsed: readmit on probation. This message is the first
      // probe; note_result decides whether the handler stays out.
      h.health = Health::Probation;
      h.probation_streak = 0;
      return Admission::Run;
    case Health::Healthy:
    case Health::Probation:
      return Admission::Run;
  }
  return Admission::Run;
}

Supervisor::Action Supervisor::enter_quarantine(HandlerState& h,
                                                sim::Cycles now) const {
  ++h.quarantine_trips;
  if (cfg_.max_quarantines != 0 &&
      h.quarantine_trips >= cfg_.max_quarantines) {
    h.health = Health::Revoked;
    return Action::Revoke;
  }
  if (h.quarantine_len == 0) {
    h.quarantine_len = cfg_.quarantine_base;
  } else {
    h.quarantine_len = h.quarantine_len * 2 < cfg_.quarantine_cap
                           ? h.quarantine_len * 2
                           : cfg_.quarantine_cap;
  }
  h.health = Health::Quarantined;
  h.quarantine_until = now + h.quarantine_len;
  h.faults_in_window = 0;
  return Action::Quarantine;
}

Supervisor::Action Supervisor::note_result(HandlerState& h, bool fault,
                                           sim::Cycles now) const {
  if (h.health == Health::Revoked) return Action::None;

  if (!fault) {
    if (h.health == Health::Probation &&
        ++h.probation_streak >= cfg_.probation_successes) {
      // Full recovery: backoff resets, the fault window starts clean.
      h.health = Health::Healthy;
      h.quarantine_len = 0;
      h.faults_in_window = 0;
      h.probation_streak = 0;
    }
    return Action::None;
  }

  // A probe that faults goes straight back with a doubled backoff.
  if (h.health == Health::Probation) return enter_quarantine(h, now);

  // Sliding fault window (same shape as the livelock guard's window).
  if (now - h.window_start >= cfg_.fault_window) {
    h.window_start = now;
    h.faults_in_window = 0;
  }
  if (++h.faults_in_window >= cfg_.fault_threshold) {
    return enter_quarantine(h, now);
  }
  return Action::None;
}

}  // namespace ash::core
