#include "core/ash.hpp"

#include <array>
#include <stdexcept>

#include "core/ash_env.hpp"
#include "vcode/verifier.hpp"

namespace ash::core {

AshSystem::AshSystem(sim::Node& node) : node_(node) {}

AshSystem::Installed& AshSystem::at(int ash_id) {
  if (ash_id < 0 || static_cast<std::size_t>(ash_id) >= installed_.size()) {
    throw std::out_of_range("AshSystem: bad ash id");
  }
  return *installed_[static_cast<std::size_t>(ash_id)];
}

const AshSystem::Installed& AshSystem::at(int ash_id) const {
  return const_cast<AshSystem*>(this)->at(ash_id);
}

int AshSystem::download(sim::Process& owner, const vcode::Program& prog,
                        const AshOptions& opts, std::string* error,
                        sandbox::Report* report) {
  auto entry = std::make_unique<Installed>();
  entry->owner = &owner;
  entry->opts = opts;

  if (opts.sandboxed) {
    sandbox::Options sb;
    sb.segment = {owner.segment().base, owner.segment().size};
    sb.mode = opts.mode;
    sb.software_budget_checks = opts.software_budget_checks;
    sb.general_epilogue = opts.general_epilogue;
    auto result = sandbox::sandbox(prog, sb, error);
    if (!result.has_value()) return -1;
    if (report != nullptr) *report = result->report;
    entry->prog = std::move(result->program);
  } else {
    // Kernel-trusted handler: verified, not rewritten.
    vcode::VerifyPolicy policy;
    policy.allow_fp = false;
    policy.allow_signed_trap = false;
    policy.allow_trusted = true;
    policy.allow_pipe_io = false;
    const auto verdict = vcode::verify(prog, policy);
    if (!verdict.ok()) {
      if (error) *error = "verification failed:\n" + verdict.to_string();
      return -1;
    }
    if (report != nullptr) {
      *report = sandbox::Report{};
      report->original_insns = report->final_insns =
          static_cast<std::uint32_t>(prog.insns.size());
    }
    entry->prog = prog;
  }

  // Translate stage: build the pre-decoded threaded form once, at install.
  const int env_override = vcode::code_cache_env_override();
  entry->opts.use_code_cache =
      env_override >= 0 ? env_override != 0 : opts.use_code_cache;
  if (entry->opts.use_code_cache) {
    entry->cache = std::make_unique<vcode::CodeCache>(entry->prog);
  }

  installed_.push_back(std::move(entry));
  return static_cast<int>(installed_.size() - 1);
}

void AshSystem::set_livelock_quota(std::uint32_t quota, sim::Cycles window) {
  livelock_quota_ = quota;
  livelock_window_ = window;
}

const AshStats& AshSystem::stats(int ash_id) const { return at(ash_id).stats; }

const vcode::Program& AshSystem::program(int ash_id) const {
  return at(ash_id).prog;
}

const sim::Process& AshSystem::owner(int ash_id) const {
  return *at(ash_id).owner;
}

const vcode::CodeCache* AshSystem::code_cache(int ash_id) const {
  return at(ash_id).cache.get();
}

bool AshSystem::invoke(int ash_id, const MsgContext& msg, SendFn send_fn,
                       sim::Cycles tx_cost) {
  Installed& ash = at(ash_id);
  AshStats& stats = ash.stats;

  // Receive-livelock guard (Section VI-4).
  if (livelock_quota_ != 0) {
    const sim::Cycles now = node_.now();
    if (now - ash.window_start >= livelock_window_) {
      ash.window_start = now;
      ash.window_count = 0;
    }
    if (ash.window_count >= livelock_quota_) {
      ++stats.livelock_deferrals;
      return false;  // over quota: normal delivery path
    }
    ++ash.window_count;
  }

  ++stats.invocations;

  AshEnv::Config env_cfg;
  env_cfg.node = &node_;
  env_cfg.owner_seg = ash.owner->segment();
  env_cfg.msg_addr = msg.addr;
  env_cfg.msg_len = msg.len;
  env_cfg.stripe_chunk = msg.stripe_chunk;
  env_cfg.engine = &dilp_;
  env_cfg.tx_cost = tx_cost;
  AshEnv env(env_cfg);

  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  if (ash.opts.software_budget_checks) {
    limits.software_budget = node_.cost().ash_max_runtime;
  } else {
    // Hardware timer mode: two clock ticks, then involuntary abort.
    limits.max_cycles = node_.cost().ash_max_runtime;
  }

  // Calling convention: r1 = message address, r2 = length, r3 = the
  // application argument bound at attach, r4 = reply channel.
  vcode::ExecResult exec;
  if (ash.cache != nullptr) {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = msg.addr;
    regs[vcode::kRegArg1] = msg.len;
    regs[vcode::kRegArg2] = msg.user_arg;
    regs[vcode::kRegArg3] = static_cast<std::uint32_t>(msg.channel);
    exec = ash.cache->run(env, regs, limits);
  } else {
    vcode::Interpreter interp(ash.prog, env);
    interp.set_args(msg.addr, msg.len, msg.user_arg,
                    static_cast<std::uint32_t>(msg.channel));
    exec = interp.run(limits);
  }
  stats.cycles += exec.cycles;
  stats.insns += exec.insns;

  const sim::CostModel& cost = node_.cost();
  const sim::Cycles dispatch =
      cost.ash_timer_setup +
      (ash.opts.prebound_translation ? 0 : cost.ash_context_install);
  const sim::Cycles total = dispatch + exec.cycles + cost.ash_timer_clear;

  bool consumed = false;
  switch (exec.outcome) {
    case vcode::Outcome::Halted:
      ++stats.commits;
      consumed = true;
      break;
    case vcode::Outcome::VoluntaryAbort:
      ++stats.voluntary_aborts;
      break;
    default:
      ++stats.involuntary_aborts;
      break;
  }

  // Occupy the CPU for the handler's runtime; release collected sends when
  // it "finishes" so replies cannot precede the work that produced them.
  // Sends were snapshotted at TSend time, so later handler stores to the
  // same buffer cannot corrupt an in-flight reply.
  if (exec.outcome == vcode::Outcome::Halted && !env.sends().empty()) {
    auto sends = env.sends();
    node_.kernel_work(total,
                      [send_fn = std::move(send_fn), sends = std::move(sends)] {
                        for (const auto& req : sends) {
                          send_fn(req.channel, req.bytes);
                        }
                      });
  } else {
    node_.kernel_work(total);
  }

  return consumed;
}

void AshSystem::attach_an2(net::An2Device& dev, int vc, int ash_id,
                           std::uint32_t user_arg) {
  at(ash_id);  // validate
  net::An2Device* device = &dev;
  dev.set_kernel_hook(vc, [this, device, ash_id, user_arg](
                              const net::An2Device::RxEvent& ev) {
    MsgContext msg;
    msg.addr = ev.desc.addr;
    msg.len = ev.desc.len;
    msg.stripe_chunk = 0;
    msg.channel = ev.vc;
    msg.user_arg = user_arg;
    return invoke(ash_id, msg,
                  [device](int chan, std::span<const std::uint8_t> bytes) {
                    return device->send(chan, bytes);
                  },
                  device->config().tx_kernel_work);
  });
}

void AshSystem::attach_eth(net::EthernetDevice& dev, int endpoint, int ash_id,
                           std::uint32_t user_arg) {
  at(ash_id);  // validate
  net::EthernetDevice* device = &dev;
  dev.set_kernel_hook(endpoint, [this, device, ash_id, user_arg](
                                    const net::EthernetDevice::RxEvent& ev) {
    MsgContext msg;
    msg.addr = ev.striped.addr;
    msg.len = ev.striped.len;
    msg.stripe_chunk = 16;
    msg.channel = ev.endpoint;
    msg.user_arg = user_arg;
    return invoke(ash_id, msg,
                  [device](int, std::span<const std::uint8_t> bytes) {
                    return device->send(bytes);
                  },
                  device->config().tx_kernel_work);
  });
}

}  // namespace ash::core
