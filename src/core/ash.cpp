#include "core/ash.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "ashc/compile.hpp"
#include "ashc/rule.hpp"
#include "core/ash_env.hpp"
#include "core/tenant.hpp"
#include "trace/trace.hpp"
#include "vcode/verifier.hpp"

namespace ash::core {

namespace {

/// Denial events share one shape; the admission guards differ only in
/// reason. `cpu_id` is the denying CPU — the node's main CPU on the
/// inline path, the receive queue's CPU on the batched path.
void trace_denied(sim::Node& node, std::uint16_t cpu_id, int ash_id,
                  trace::DenyReason reason) {
  trace::global().emit(trace::make_event(
      trace::EventType::AshDenied, cpu_id, node.now(), ash_id,
      static_cast<std::uint32_t>(reason)));
}

}  // namespace

AshSystem::AshSystem(sim::Node& node) : node_(node) {}

AshSystem::Installed& AshSystem::at(int ash_id) {
  if (ash_id < 0 || static_cast<std::size_t>(ash_id) >= installed_.size()) {
    throw std::out_of_range("AshSystem: bad ash id");
  }
  return *installed_[static_cast<std::size_t>(ash_id)];
}

const AshSystem::Installed& AshSystem::at(int ash_id) const {
  return const_cast<AshSystem*>(this)->at(ash_id);
}

AshSystem::Installed* AshSystem::find(int ash_id) noexcept {
  if (ash_id < 0 || static_cast<std::size_t>(ash_id) >= installed_.size()) {
    return nullptr;
  }
  return installed_[static_cast<std::size_t>(ash_id)].get();
}

int AshSystem::download(sim::Process& owner, const vcode::Program& prog,
                        const AshOptions& opts, std::string* error,
                        sandbox::Report* report) {
  auto entry = std::make_unique<Installed>();
  entry->owner = &owner;
  entry->opts = opts;

  if (opts.sandboxed) {
    sandbox::Options sb;
    sb.segment = {owner.segment().base, owner.segment().size};
    sb.mode = opts.mode;
    sb.software_budget_checks = opts.software_budget_checks;
    sb.general_epilogue = opts.general_epilogue;
    auto result = sandbox::sandbox(prog, sb, error);
    if (!result.has_value()) return -1;
    if (report != nullptr) *report = result->report;
    entry->prog = std::move(result->program);
  } else {
    // Kernel-trusted handler: verified, not rewritten.
    vcode::VerifyPolicy policy;
    policy.allow_fp = false;
    policy.allow_signed_trap = false;
    policy.allow_trusted = true;
    policy.allow_pipe_io = false;
    const auto verdict = vcode::verify(prog, policy);
    if (!verdict.ok()) {
      if (error) *error = "verification failed:\n" + verdict.to_string();
      return -1;
    }
    if (report != nullptr) {
      *report = sandbox::Report{};
      report->original_insns = report->final_insns =
          static_cast<std::uint32_t>(prog.insns.size());
    }
    entry->prog = prog;
  }

  // Tenant admission: the (sandboxed) image's kernel footprint counts
  // against the owner's buffer-pool share, and max_handlers caps the
  // install count. Rejected before any translation work happens.
  if (tenants_ != nullptr) {
    const std::uint64_t image_bytes =
        entry->prog.insns.size() * sizeof(entry->prog.insns[0]);
    TenantDeny deny = TenantDeny::BufferQuota;
    if (!tenants_->admit_download(owner, image_bytes, &deny)) {
      if (error != nullptr) {
        *error = std::string("tenant admission denied: ") + to_string(deny);
      }
      if (trace::enabled()) {
        trace_denied(node_, node_.cpu_id(), -1,
                     deny == TenantDeny::DownloadQuota
                         ? trace::DenyReason::DownloadQuota
                         : deny == TenantDeny::Revoked
                               ? trace::DenyReason::Revoked
                               : trace::DenyReason::BufferQuota);
      }
      return -1;
    }
  }

  // Translate stage: resolve the backend, then build the translated form
  // once, at install. Resolution order: AshOptions::backend, then the
  // legacy use_code_cache=false knob (demotes CodeCache to Interp), then
  // ASH_USE_CODE_CACHE, then ASH_BACKEND (strongest).
  vcode::Backend be = opts.backend;
  if (!opts.use_code_cache && be == vcode::Backend::CodeCache) {
    be = vcode::Backend::Interp;
  }
  const int env_override = vcode::code_cache_env_override();
  if (env_override >= 0) {
    be = env_override != 0 ? vcode::Backend::CodeCache
                           : vcode::Backend::Interp;
  }
  vcode::backend_env_override(&be);
  entry->opts.backend = be;
  entry->opts.use_code_cache = be == vcode::Backend::CodeCache;
  if (be == vcode::Backend::CodeCache) {
    entry->cache = std::make_unique<vcode::CodeCache>(entry->prog);
  } else if (be == vcode::Backend::Jit) {
    entry->jit = std::make_unique<vcode::JitBackend>(entry->prog);
  }

  installed_.push_back(std::move(entry));
  return static_cast<int>(installed_.size() - 1);
}

int AshSystem::download_rules(sim::Process& owner,
                              const ashc::RuleSet& rules,
                              std::uint32_t state_addr,
                              const AshOptions& opts, std::string* error) {
  ashc::Compiled compiled = ashc::compile(rules);
  if (!compiled.ok) {
    if (error != nullptr) *error = "rule compile failed: " + compiled.error;
    return -1;
  }
  // The bounds pass is the rule layer's whole safety argument: a compiled
  // program must PROVE every access stays in its declared windows before
  // the ordinary download (structural verify + sandbox) even sees it.
  const auto verdict =
      vcode::verify(compiled.program, ashc::verify_policy(rules));
  if (!verdict.ok()) {
    if (error != nullptr) {
      *error = "rule bounds verification failed:\n" + verdict.to_string();
    }
    return -1;
  }

  const sim::MemSegment& seg = owner.segment();
  const std::uint32_t state_bytes = rules.limits.state_bytes;
  if (state_addr % 4 != 0 || state_addr < seg.base ||
      static_cast<std::uint64_t>(state_addr) + state_bytes >
          static_cast<std::uint64_t>(seg.base) + seg.size) {
    if (error != nullptr) {
      *error = "rule state address outside the owner's segment";
    }
    return -1;
  }
  const std::vector<std::uint8_t> image = ashc::init_state(rules);
  std::uint8_t* dst = node_.mem(state_addr, state_bytes);
  if (dst == nullptr) {
    if (error != nullptr) *error = "rule state address unmapped";
    return -1;
  }
  std::memcpy(dst, image.data(), image.size());

  return download(owner, compiled.program, opts, error);
}

void AshSystem::set_livelock_quota(std::uint32_t quota, sim::Cycles window) {
  livelock_quota_ = quota;
  livelock_window_ = window;
}

void AshSystem::set_supervisor(const SupervisorConfig& cfg) {
  supervisor_.set_config(cfg);
}

Health AshSystem::health(int ash_id) const {
  return at(ash_id).health.health;
}

const Supervisor::HandlerState& AshSystem::supervisor_state(
    int ash_id) const {
  return at(ash_id).health;
}

void AshSystem::clear_attachments(Installed& ash) {
  for (const Attachment& att : ash.attachments) {
    if (att.an2 != nullptr) {
      att.an2->set_kernel_hook(att.channel, nullptr);
      att.an2->set_kernel_batch_hook(att.channel, nullptr);
      if (att.an2->nic() != nullptr) {
        att.an2->nic()->detach(att.an2, att.channel);
      }
    }
    if (att.eth != nullptr) {
      att.eth->set_kernel_hook(att.channel, nullptr);
      att.eth->set_kernel_batch_hook(att.channel, nullptr);
      if (att.eth->nic() != nullptr) {
        att.eth->nic()->detach(att.eth, att.channel);
      }
    }
  }
  ash.attachments.clear();
}

void AshSystem::revoke_installed(int ash_id, Installed& ash) {
  Supervisor::force_revoke(ash.health);
  if (ash.attachments.empty()) return;
  // Revocation can fire from inside the handler's own device hook (a
  // fault crossing the policy threshold mid-invocation). Clearing the
  // hook there would destroy the closure currently executing, so defer
  // it one event: the queue runs the clear after the driver path unwinds.
  node_.queue().schedule_at(node_.now(), [this, ash_id] {
    if (Installed* ash_p = find(ash_id)) clear_attachments(*ash_p);
  });
}

void AshSystem::revoke(int ash_id) { revoke_installed(ash_id, at(ash_id)); }

std::size_t AshSystem::revoke_owner(const sim::Process& owner) {
  std::size_t revoked = 0;
  for (std::size_t i = 0; i < installed_.size(); ++i) {
    Installed& ash = *installed_[i];
    if (ash.owner->pid() != owner.pid()) continue;
    if (ash.health.health == Health::Revoked) continue;
    revoke_installed(static_cast<int>(i), ash);
    ++revoked;
  }
  // Feed the tenant scheduler: the account is closed and its deficit debt
  // written off; frames already coalesced for this owner will be drained
  // by invoke_batch with counted denials.
  if (tenants_ != nullptr) tenants_->on_owner_revoked(owner);
  return revoked;
}

std::uint64_t AshSystem::owner_faults(const sim::Process& owner) const {
  const auto it = faults_by_owner_.find(owner.pid());
  return it == faults_by_owner_.end() ? 0 : it->second;
}

bool AshSystem::detach_an2(net::An2Device& dev, int vc) {
  bool found = false;
  for (const auto& entry : installed_) {
    auto& atts = entry->attachments;
    for (std::size_t i = 0; i < atts.size();) {
      if (atts[i].an2 == &dev && atts[i].channel == vc) {
        atts.erase(atts.begin() + static_cast<std::ptrdiff_t>(i));
        found = true;
      } else {
        ++i;
      }
    }
  }
  if (found) {
    dev.set_kernel_hook(vc, nullptr);
    dev.set_kernel_batch_hook(vc, nullptr);
    if (dev.nic() != nullptr) dev.nic()->detach(&dev, vc);
  }
  return found;
}

bool AshSystem::detach_eth(net::EthernetDevice& dev, int endpoint) {
  bool found = false;
  for (const auto& entry : installed_) {
    auto& atts = entry->attachments;
    for (std::size_t i = 0; i < atts.size();) {
      if (atts[i].eth == &dev && atts[i].channel == endpoint) {
        atts.erase(atts.begin() + static_cast<std::ptrdiff_t>(i));
        found = true;
      } else {
        ++i;
      }
    }
  }
  if (found) {
    dev.set_kernel_hook(endpoint, nullptr);
    dev.set_kernel_batch_hook(endpoint, nullptr);
    if (dev.nic() != nullptr) dev.nic()->detach(&dev, endpoint);
  }
  return found;
}

const AshStats& AshSystem::stats(int ash_id) const { return at(ash_id).stats; }

const vcode::Program& AshSystem::program(int ash_id) const {
  return at(ash_id).prog;
}

const sim::Process& AshSystem::owner(int ash_id) const {
  return *at(ash_id).owner;
}

const vcode::CodeCache* AshSystem::code_cache(int ash_id) const {
  return at(ash_id).cache.get();
}

const vcode::JitBackend* AshSystem::jit_backend(int ash_id) const {
  return at(ash_id).jit.get();
}

vcode::Backend AshSystem::backend(int ash_id) const {
  return at(ash_id).opts.backend;
}

vcode::BackendStats AshSystem::backend_stats(int ash_id) const {
  const Installed& ash = at(ash_id);
  if (ash.jit != nullptr) return ash.jit->stats();
  if (ash.cache != nullptr) return ash.cache->stats();
  return {vcode::Backend::Interp, ash.stats.invocations, 0, 0, 0};
}

AshSystem::Installed* AshSystem::admit(int ash_id, std::uint16_t cpu_id,
                                       trace::DenyReason* why) {
  // A stale or invalid id (reachable from a kernel hook once handlers can
  // be detached/revoked, or from a buggy custom demux point) must not
  // unwind through the device driver: count it and fall back.
  Installed* ash_p = find(ash_id);
  if (ash_p == nullptr) {
    ++bad_id_fallbacks_;
    if (trace::enabled()) {
      trace_denied(node_, cpu_id, ash_id, trace::DenyReason::BadId);
    }
    if (why != nullptr) *why = trace::DenyReason::BadId;
    return nullptr;
  }
  Installed& ash = *ash_p;
  AshStats& stats = ash.stats;

  // Revocation is a mechanism, not policy: an explicitly revoked handler
  // is denied even when the supervisor policy is disabled. (Normally its
  // device hooks are already cleared; this covers direct invoke callers
  // and the window before the deferred hook-clear runs.)
  if (ash.health.health == Health::Revoked) {
    ++stats.revoked_skips;
    if (trace::enabled()) {
      trace_denied(node_, cpu_id, ash_id, trace::DenyReason::Revoked);
    }
    if (why != nullptr) *why = trace::DenyReason::Revoked;
    return nullptr;
  }

  // Supervisor admission: a quarantined handler's messages take the
  // normal delivery path at near-zero kernel cost — no timer setup, no
  // context install, no handler run. The check itself is a handful of
  // host instructions in the demux path.
  if (supervisor_.enabled() &&
      supervisor_.admit(ash.health, node_.now()) ==
          Supervisor::Admission::Denied) {
    ++stats.quarantine_skips;
    if (trace::enabled()) {
      trace_denied(node_, cpu_id, ash_id, trace::DenyReason::Quarantined);
    }
    if (why != nullptr) *why = trace::DenyReason::Quarantined;
    return nullptr;
  }

  // Weighted-fair cycle scheduling: the owner's DRR account must be in
  // credit. Like quarantine, a deferral costs near-zero kernel time —
  // the message takes the normal delivery path and the tenant's backlog
  // becomes its own problem, not its neighbors'.
  if (tenants_ != nullptr && !tenants_->admit_cycles(*ash.owner)) {
    ++stats.tenant_deferrals;
    if (trace::enabled()) {
      trace_denied(node_, cpu_id, ash_id, trace::DenyReason::CycleQuota);
    }
    if (why != nullptr) *why = trace::DenyReason::CycleQuota;
    return nullptr;
  }

  // Receive-livelock guard (Section VI-4). The window belongs to the
  // OWNING PROCESS: quota is "per process per window", so N handlers on
  // one owner share one window rather than multiplying the share N-fold.
  if (livelock_quota_ != 0) {
    const sim::Cycles now = node_.now();
    LivelockWindow& win = livelock_by_owner_[ash.owner->pid()];
    if (now - win.start >= livelock_window_) {
      win.start = now;
      win.count = 0;
    }
    if (win.count >= livelock_quota_) {
      ++stats.livelock_deferrals;
      if (trace::enabled()) {
        trace_denied(node_, cpu_id, ash_id, trace::DenyReason::LivelockQuota);
      }
      if (why != nullptr) *why = trace::DenyReason::LivelockQuota;
      return nullptr;  // over quota: normal delivery path
    }
    ++win.count;
  }

  return ash_p;
}

AshSystem::RunResult AshSystem::run_one(int ash_id, Installed& ash,
                                        const MsgContext& msg, AshEnv& env,
                                        std::uint16_t cpu_id,
                                        sim::Cycles dispatch,
                                        sim::Cycles clear) {
  AshStats& stats = ash.stats;
  ++stats.invocations;

  // Tracing is a pure observer: it never charges simulated cycles, so all
  // bench outputs stay byte-identical with it on. The thread-local context
  // attributes engine-internal events (VcodeExec, TSend, DILP) to this
  // cpu / time / handler; restored when the invocation unwinds.
  std::optional<trace::ScopedContext> tctx;
  if (trace::enabled()) {
    tctx.emplace(cpu_id, node_.now(), ash_id);
    trace::global().emit(trace::make_event(
        trace::EventType::AshDispatch, cpu_id, node_.now(), ash_id,
        msg.len, static_cast<std::uint32_t>(msg.channel)));
  }

  vcode::ExecLimits limits;
  limits.max_insns = 1u << 20;
  if (ash.opts.software_budget_checks) {
    limits.software_budget = node_.cost().ash_max_runtime;
  } else {
    // Hardware timer mode: two clock ticks, then involuntary abort.
    limits.max_cycles = node_.cost().ash_max_runtime;
  }

  // Calling convention: r1 = message address, r2 = length, r3 = the
  // application argument bound at attach, r4 = reply channel.
  vcode::ExecResult exec;
  if (ash.jit != nullptr || ash.cache != nullptr) {
    std::array<std::uint32_t, vcode::kNumRegs> regs{};
    regs[vcode::kRegArg0] = msg.addr;
    regs[vcode::kRegArg1] = msg.len;
    regs[vcode::kRegArg2] = msg.user_arg;
    regs[vcode::kRegArg3] = static_cast<std::uint32_t>(msg.channel);
    exec = ash.jit != nullptr ? ash.jit->run(env, regs, limits)
                              : ash.cache->run(env, regs, limits);
  } else {
    vcode::Interpreter interp(ash.prog, env);
    interp.set_args(msg.addr, msg.len, msg.user_arg,
                    static_cast<std::uint32_t>(msg.channel));
    exec = interp.run(limits);
  }
  stats.cycles += exec.cycles;
  stats.insns += exec.insns;
  // The ONE tenant charge site: every executed cycle lands both in this
  // handler's stats and in its owner's account, so per-tenant
  // cycles_charged == sum of owned AshStats::cycles, always (the
  // conservation property test pins this across fault/revoke churn).
  if (tenants_ != nullptr) tenants_->charge(*ash.owner, exec.cycles);

  RunResult result;
  result.outcome = exec.outcome;
  result.total = dispatch + exec.cycles + clear;
  result.insns = exec.insns;

  stats.by_outcome[static_cast<std::size_t>(exec.outcome)] += 1;
  bool fault = false;
  switch (exec.outcome) {
    case vcode::Outcome::Halted:
      ++stats.commits;
      result.consumed = true;
      break;
    case vcode::Outcome::VoluntaryAbort:
      ++stats.voluntary_aborts;
      break;
    default:
      ++stats.involuntary_aborts;
      fault = true;
      stats.last_fault = AshFaultRecord{true,       exec.outcome,
                                        exec.fault_pc, exec.insns,
                                        exec.cycles,   node_.now()};
      ++faults_by_owner_[ash.owner->pid()];
      break;
  }

  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::AshOutcome, cpu_id, node_.now(), ash_id,
        static_cast<std::uint32_t>(exec.outcome), result.consumed ? 1 : 0,
        result.total, exec.insns));
  }

  if (supervisor_.enabled()) {
    const auto action =
        supervisor_.note_result(ash.health, fault, node_.now());
    if (trace::enabled() && action != Supervisor::Action::None) {
      trace::global().emit(trace::make_event(
          trace::EventType::SupervisorAction, cpu_id, node_.now(),
          ash_id,
          static_cast<std::uint32_t>(action == Supervisor::Action::Revoke
                                         ? trace::SupAction::Revoke
                                         : trace::SupAction::Quarantine)));
    }
    if (action == Supervisor::Action::Revoke) {
      revoke_installed(ash_id, ash);
    }
    const std::uint64_t owner_limit =
        supervisor_.config().owner_fault_limit;
    if (fault && owner_limit != 0 &&
        faults_by_owner_[ash.owner->pid()] >= owner_limit) {
      revoke_owner(*ash.owner);
    }
  }

  return result;
}

bool AshSystem::invoke(int ash_id, const MsgContext& msg, SendFn send_fn,
                       sim::Cycles tx_cost) {
  Installed* ash_p = admit(ash_id, node_.cpu_id());
  if (ash_p == nullptr) return false;
  Installed& ash = *ash_p;

  AshEnv::Config env_cfg;
  env_cfg.node = &node_;
  env_cfg.owner_seg = ash.owner->segment();
  env_cfg.msg_addr = msg.addr;
  env_cfg.msg_len = msg.len;
  env_cfg.stripe_chunk = msg.stripe_chunk;
  env_cfg.engine = &dilp_;
  env_cfg.tx_cost = tx_cost;
  AshEnv env(env_cfg);

  const sim::CostModel& cost = node_.cost();
  const sim::Cycles dispatch =
      cost.ash_timer_setup +
      (ash.opts.prebound_translation ? 0 : cost.ash_context_install);
  const RunResult run = run_one(ash_id, ash, msg, env, node_.cpu_id(),
                                dispatch, cost.ash_timer_clear);

  // Occupy the CPU for the handler's runtime; release collected sends when
  // it "finishes" so replies cannot precede the work that produced them.
  // Sends were snapshotted at TSend time, so later handler stores to the
  // same buffer cannot corrupt an in-flight reply.
  if (run.outcome == vcode::Outcome::Halted && !env.sends().empty()) {
    auto sends = env.sends();
    node_.kernel_work(run.total,
                      [send_fn = std::move(send_fn), sends = std::move(sends)] {
                        for (const auto& req : sends) {
                          send_fn(req.channel, req.bytes);
                        }
                      });
  } else {
    node_.kernel_work(run.total);
  }

  return run.consumed;
}

void AshSystem::invoke_batch(int ash_id, std::span<const MsgContext> msgs,
                             SendFn send_fn, sim::Cycles tx_cost,
                             const sim::KernelCpu& cpu, bool* consumed) {
  const std::uint16_t cpu_id = cpu.cpu_id();
  const sim::CostModel& cost = node_.cost();

  sim::Cycles batch_total = 0;
  std::uint64_t batch_insns = 0;
  std::uint32_t executed = 0;
  std::vector<AshEnv::SendReq> sends;

  for (std::size_t i = 0; i < msgs.size(); ++i) {
    // Per-message admission: a fault on message k can quarantine or
    // revoke the handler mid-batch, and the messages after it must see
    // that decision — the batch amortizes entry cost, not policy.
    trace::DenyReason why{};
    Installed* ash_p = admit(ash_id, cpu_id, &why);
    if (ash_p == nullptr) {
      // Revocation is terminal: no later message in this batch can be
      // admitted, so drain the remaining coalesced frames with counted
      // denials instead of re-running the admission path per frame.
      if (why == trace::DenyReason::Revoked) {
        Installed* rev = find(ash_id);
        if (rev != nullptr) {
          const std::uint64_t drained = msgs.size() - (i + 1);
          for (std::size_t j = i + 1; j < msgs.size(); ++j) {
            ++rev->stats.revoked_skips;
            if (trace::enabled()) {
              trace_denied(node_, cpu_id, ash_id,
                           trace::DenyReason::Revoked);
            }
          }
          if (tenants_ != nullptr && drained != 0) {
            tenants_->note_drained(*rev->owner, drained);
          }
        }
        break;
      }
      continue;
    }
    Installed& ash = *ash_p;

    AshEnv::Config env_cfg;
    env_cfg.node = &node_;
    env_cfg.owner_seg = ash.owner->segment();
    env_cfg.msg_addr = msgs[i].addr;
    env_cfg.msg_len = msgs[i].len;
    env_cfg.stripe_chunk = msgs[i].stripe_chunk;
    env_cfg.engine = &dilp_;
    env_cfg.tx_cost = tx_cost;
    AshEnv env(env_cfg);

    // First executed message pays the full entry; the rest only re-arm
    // the budget timer. The single timer clear is added after the loop.
    const sim::Cycles dispatch =
        executed == 0
            ? cost.ash_timer_setup +
                  (ash.opts.prebound_translation ? 0
                                                 : cost.ash_context_install)
            : cost.ash_batch_rearm;
    const RunResult run =
        run_one(ash_id, ash, msgs[i], env, cpu_id, dispatch, 0);
    ++executed;
    batch_total += run.total;
    batch_insns += run.insns;

    if (run.consumed) {
      if (consumed != nullptr) consumed[i] = true;
      sends.insert(sends.end(), env.sends().begin(), env.sends().end());
    }
  }

  if (executed > 0) batch_total += cost.ash_timer_clear;

  if (trace::enabled()) {
    trace::global().emit(trace::make_event(
        trace::EventType::BatchDispatch, cpu_id, node_.now(), ash_id,
        static_cast<std::uint32_t>(msgs.size()), executed, batch_total,
        batch_insns));
  }

  // One CPU charge for the whole batch; all collected sends release when
  // the batch's runtime has elapsed, preserving the reply-ordering
  // contract of the single-message path.
  if (!sends.empty()) {
    cpu.kernel_work(batch_total,
                    [send_fn = std::move(send_fn), sends = std::move(sends)] {
                      for (const auto& req : sends) {
                        send_fn(req.channel, req.bytes);
                      }
                    });
  } else if (batch_total != 0) {
    cpu.kernel_work(batch_total);
  }
}

void AshSystem::attach_an2(net::An2Device& dev, int vc, int ash_id,
                           std::uint32_t user_arg) {
  at(ash_id).attachments.push_back({&dev, nullptr, vc});
  net::An2Device* device = &dev;
  dev.set_kernel_hook(vc, [this, device, ash_id, user_arg](
                              const net::An2Device::RxEvent& ev) {
    MsgContext msg;
    msg.addr = ev.desc.addr;
    msg.len = ev.desc.len;
    msg.stripe_chunk = 0;
    msg.channel = ev.vc;
    msg.user_arg = user_arg;
    return invoke(ash_id, msg,
                  [device](int chan, std::span<const std::uint8_t> bytes) {
                    return device->send(chan, bytes);
                  },
                  device->config().tx_kernel_work);
  });
  // Batched form for the multi-queue receive path; same message shape,
  // entry cost amortized across the batch by invoke_batch.
  dev.set_kernel_batch_hook(
      vc, [this, device, ash_id, user_arg](
              std::span<const net::An2Device::RxEvent> evs,
              const sim::KernelCpu& cpu, bool* consumed) {
        std::vector<MsgContext> msgs(evs.size());
        for (std::size_t i = 0; i < evs.size(); ++i) {
          msgs[i].addr = evs[i].desc.addr;
          msgs[i].len = evs[i].desc.len;
          msgs[i].stripe_chunk = 0;
          msgs[i].channel = evs[i].vc;
          msgs[i].user_arg = user_arg;
        }
        invoke_batch(ash_id, msgs,
                     [device](int chan, std::span<const std::uint8_t> bytes) {
                       return device->send(chan, bytes);
                     },
                     device->config().tx_kernel_work, cpu, consumed);
      });
}

void AshSystem::attach_eth(net::EthernetDevice& dev, int endpoint, int ash_id,
                           std::uint32_t user_arg) {
  at(ash_id).attachments.push_back({nullptr, &dev, endpoint});
  net::EthernetDevice* device = &dev;
  dev.set_kernel_hook(endpoint, [this, device, ash_id, user_arg](
                                    const net::EthernetDevice::RxEvent& ev) {
    MsgContext msg;
    msg.addr = ev.striped.addr;
    msg.len = ev.striped.len;
    msg.stripe_chunk = 16;
    msg.channel = ev.endpoint;
    msg.user_arg = user_arg;
    return invoke(ash_id, msg,
                  [device](int, std::span<const std::uint8_t> bytes) {
                    return device->send(bytes);
                  },
                  device->config().tx_kernel_work);
  });
  dev.set_kernel_batch_hook(
      endpoint, [this, device, ash_id, user_arg](
                    std::span<const net::EthernetDevice::RxEvent> evs,
                    const sim::KernelCpu& cpu, bool* consumed) {
        std::vector<MsgContext> msgs(evs.size());
        for (std::size_t i = 0; i < evs.size(); ++i) {
          msgs[i].addr = evs[i].striped.addr;
          msgs[i].len = evs[i].striped.len;
          msgs[i].stripe_chunk = 16;
          msgs[i].channel = evs[i].endpoint;
          msgs[i].user_arg = user_arg;
        }
        invoke_batch(ash_id, msgs,
                     [device](int, std::span<const std::uint8_t> bytes) {
                       return device->send(bytes);
                     },
                     device->config().tx_kernel_work, cpu, consumed);
      });
}

std::uint32_t AshSystem::nic_footprint(int ash_id) const {
  const Installed& ash = at(ash_id);
  return static_cast<std::uint32_t>(ash.prog.insns.size() *
                                    sizeof(ash.prog.insns[0])) +
         kNicHandlerStateBytes;
}

net::NicExecResult AshSystem::invoke_nic(int ash_id, const MsgContext& msg,
                                         SendFn send_fn, sim::Cycles tx_cost,
                                         net::NicExecUnit& unit) {
  net::NicExecResult res;
  Installed* ash_p = admit(ash_id, unit.cpu_id());
  if (ash_p == nullptr) {
    // Admission denied on-device (revoked/quarantined/tenant/livelock).
    // Deny counters and trace are identical to a host-path denial; the
    // frame goes back to the host as a punt, charged only the handoff.
    res.charged = unit.cost().punt_handoff;
    unit.work(res.charged);
    return res;
  }
  Installed& ash = *ash_p;

  // Same env and tx_cost as the host paths, so execution — and therefore
  // AshStats, outcome taxonomy, and replies — is identical wherever the
  // handler runs. Only the cycle *charge* differs: it lands on the NIC
  // unit under its own clock ratio and dispatch cost.
  AshEnv::Config env_cfg;
  env_cfg.node = &node_;
  env_cfg.owner_seg = ash.owner->segment();
  env_cfg.msg_addr = msg.addr;
  env_cfg.msg_len = msg.len;
  env_cfg.stripe_chunk = msg.stripe_chunk;
  env_cfg.engine = &dilp_;
  env_cfg.tx_cost = tx_cost;
  AshEnv env(env_cfg);

  // No host timer setup/clear on the device; the unit's dispatch overhead
  // replaces them, added below under the device cost model.
  const RunResult run = run_one(ash_id, ash, msg, env, unit.cpu_id(), 0, 0);
  res.ran = true;
  res.consumed = run.consumed;
  res.faulted = run.outcome != vcode::Outcome::Halted &&
                run.outcome != vcode::Outcome::VoluntaryAbort;
  res.charged = unit.cost().dispatch + unit.scale(run.total);

  if (run.consumed && !env.sends().empty()) {
    // Replies initiate from the device (TSend with no host transition);
    // the same release-after-runtime contract as invoke() applies.
    auto sends = env.sends();
    res.replies = static_cast<std::uint32_t>(sends.size());
    res.charged += static_cast<sim::Cycles>(res.replies) *
                   unit.cost().reply_issue;
    unit.work(res.charged,
              [send_fn = std::move(send_fn), sends = std::move(sends)] {
                for (const auto& req : sends) {
                  send_fn(req.channel, req.bytes);
                }
              });
  } else {
    // Ran-but-not-consumed (voluntary abort, fault, or plain "not mine")
    // hands the frame back to the host: charge the punt handoff too.
    if (!run.consumed) res.charged += unit.cost().punt_handoff;
    unit.work(res.charged);
  }
  return res;
}

bool AshSystem::offload_an2(net::An2Device& dev, int vc, int ash_id,
                            std::uint32_t user_arg) {
  // Host hooks first: not-resident punts and post-detach frames must run
  // the handler on the normal host path, so behaviour is identical minus
  // where the cycles land.
  attach_an2(dev, vc, ash_id, user_arg);
  if (dev.nic() == nullptr) return false;
  net::An2Device* device = &dev;
  return dev.nic()->attach(
      &dev, vc, nic_footprint(ash_id),
      [this, device, ash_id, user_arg](const net::RxFrame& f,
                                       net::NicExecUnit& unit) {
        MsgContext msg;
        msg.addr = f.addr;
        msg.len = f.len;
        msg.stripe_chunk = 0;
        msg.channel = f.channel;
        msg.user_arg = user_arg;
        return invoke_nic(
            ash_id, msg,
            [device](int chan, std::span<const std::uint8_t> bytes) {
              return device->send(chan, bytes);
            },
            device->config().tx_kernel_work, unit);
      });
}

bool AshSystem::offload_eth(net::EthernetDevice& dev, int endpoint,
                            int ash_id, std::uint32_t user_arg) {
  attach_eth(dev, endpoint, ash_id, user_arg);
  if (dev.nic() == nullptr) return false;
  net::EthernetDevice* device = &dev;
  return dev.nic()->attach(
      &dev, endpoint, nic_footprint(ash_id),
      [this, device, ash_id, user_arg](const net::RxFrame& f,
                                       net::NicExecUnit& unit) {
        MsgContext msg;
        msg.addr = f.addr;
        msg.len = f.len;
        msg.stripe_chunk = 16;
        msg.channel = f.channel;
        msg.user_arg = user_arg;
        return invoke_nic(
            ash_id, msg,
            [device](int, std::span<const std::uint8_t> bytes) {
              return device->send(bytes);
            },
            device->config().tx_kernel_work, unit);
      });
}

std::string AshSystem::format_status() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%3s  %-12s %-11s %8s %8s %7s %7s %7s\n",
                "ash", "owner", "state", "inv", "commit", "vabort", "iabort",
                "skips");
  out += line;
  for (std::size_t i = 0; i < installed_.size(); ++i) {
    const Installed& ash = *installed_[i];
    const AshStats& s = ash.stats;
    std::snprintf(line, sizeof line,
                  "%3zu  %-12s %-11s %8llu %8llu %7llu %7llu %7llu\n", i,
                  ash.owner->name().c_str(), to_string(ash.health.health),
                  static_cast<unsigned long long>(s.invocations),
                  static_cast<unsigned long long>(s.commits),
                  static_cast<unsigned long long>(s.voluntary_aborts),
                  static_cast<unsigned long long>(s.involuntary_aborts),
                  static_cast<unsigned long long>(s.quarantine_skips +
                                                  s.revoked_skips));
    out += line;
    const vcode::BackendStats bs = backend_stats(static_cast<int>(i));
    std::snprintf(line, sizeof line,
                  "       backend: %s runs=%llu translations=%llu "
                  "superblocks=%llu emitted=%lluB\n",
                  vcode::to_string(bs.backend),
                  static_cast<unsigned long long>(bs.runs),
                  static_cast<unsigned long long>(bs.translations),
                  static_cast<unsigned long long>(bs.superblocks),
                  static_cast<unsigned long long>(bs.emitted_bytes));
    out += line;
    // Abort taxonomy: only outcomes actually seen, to keep the table tight.
    bool any = false;
    for (std::size_t o = 0; o < vcode::kOutcomeCount; ++o) {
      const auto outcome = static_cast<vcode::Outcome>(o);
      if (outcome == vcode::Outcome::Halted ||
          outcome == vcode::Outcome::VoluntaryAbort || s.by_outcome[o] == 0) {
        continue;
      }
      std::snprintf(line, sizeof line, "%s%s=%llu", any ? " " : "       faults: ",
                    vcode::to_string(outcome),
                    static_cast<unsigned long long>(s.by_outcome[o]));
      out += line;
      any = true;
    }
    if (any) out += "\n";
    if (s.last_fault.valid) {
      std::snprintf(line, sizeof line,
                    "       last fault: %s at pc=%u after %llu insns / "
                    "%llu cycles, t=%llu cyc\n",
                    vcode::to_string(s.last_fault.outcome), s.last_fault.pc,
                    static_cast<unsigned long long>(s.last_fault.insns),
                    static_cast<unsigned long long>(s.last_fault.cycles),
                    static_cast<unsigned long long>(s.last_fault.at));
      out += line;
    }
    if (ash.health.quarantine_trips > 0) {
      std::snprintf(
          line, sizeof line,
          "       quarantine: %u trip(s), backoff %llu cyc, until t=%llu\n",
          ash.health.quarantine_trips,
          static_cast<unsigned long long>(ash.health.quarantine_len),
          static_cast<unsigned long long>(ash.health.quarantine_until));
      out += line;
    }
    if (s.tenant_deferrals != 0) {
      std::snprintf(line, sizeof line,
                    "       tenant: cycle-quota deferrals=%llu\n",
                    static_cast<unsigned long long>(s.tenant_deferrals));
      out += line;
    }
  }
  if (bad_id_fallbacks_ != 0) {
    std::snprintf(line, sizeof line, "bad-id fallbacks: %llu\n",
                  static_cast<unsigned long long>(bad_id_fallbacks_));
    out += line;
  }
  return out;
}

}  // namespace ash::core
