#include "proto/tcp.hpp"

#include <algorithm>
#include <cstring>

#include "sim/node.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

namespace {
constexpr std::uint32_t kSegHdrLen =
    static_cast<std::uint32_t>(kIpHeaderLen + kTcpHeaderLen);
}

TcpConnection::TcpConnection(Link& link, const TcpConfig& config)
    : link_(link), cfg_(config) {
  sim::Node& node = link.self().node();
  const std::uint32_t shm_base = link.carve(TcbShm::size_bytes());
  const std::uint32_t stage_cap = 2 * cfg_.window;
  const std::uint32_t stage_base = link.carve(stage_cap);
  const std::uint32_t ack_scratch = link.carve(tcb::kAckBufLen);

  shm_ = TcbShm(node, shm_base);
  for (std::uint32_t w = 0; w < tcb::kWords; ++w) shm_.set(w, 0);
  shm_.set(tcb::kStageBase, stage_base);
  shm_.set(tcb::kStageCap, stage_cap);
  shm_.set(tcb::kLocalPort, cfg_.local_port);
  shm_.set(tcb::kRemotePort, cfg_.remote_port);
  shm_.set(tcb::kLocalIp, cfg_.local_ip.value);
  shm_.set(tcb::kRemoteIp, cfg_.remote_ip.value);
  shm_.set(tcb::kAckScratch, ack_scratch);
  shm_.set(tcb::kChecksumOn, cfg_.checksum ? 1 : 0);
  shm_.set(tcb::kSndWnd, cfg_.window);

  snd_nxt_ = cfg_.iss;
  shm_.set(tcb::kSndNxt, snd_nxt_);
  set_snd_una(cfg_.iss);
  set_state(TcpState::Closed);
  last_advertised_wnd_ = cfg_.window;

  rtt_ = RttEstimator(cfg_.rto, std::min(cfg_.min_rto, cfg_.rto),
                      cfg_.max_rto);
  rto_cur_ = cfg_.rto;
  cc_.reset(cfg_.mss, cfg_.window);
  shm_.set(tcb::kSndCwnd, cc_.cwnd());

  // Pre-build the pure-ACK template a downloaded fast-path handler patches
  // and transmits (Section V-B): constant IP header (checksummed) and TCP
  // ports/flags; the handler fills seq/ack/window and the TCP checksum.
  {
    std::uint8_t* t = node.mem(ack_scratch, tcb::kAckBufLen);
    std::memset(t, 0, tcb::kAckBufLen);
    IpHeader aip;
    aip.protocol = kIpProtoTcp;
    aip.src = cfg_.local_ip;
    aip.dst = cfg_.remote_ip;
    aip.total_len = tcb::kAckPacketLen;
    aip.ident = 0;
    encode_ip({t, kIpHeaderLen}, aip);
    TcpHeader ath;
    ath.src_port = cfg_.local_port;
    ath.dst_port = cfg_.remote_port;
    ath.flags.ack = true;
    ath.window = static_cast<std::uint16_t>(cfg_.window);
    encode_tcp({t + kIpHeaderLen, kTcpHeaderLen}, ath);
    // Little-endian-word pseudo-header partial for the handler's checksum
    // arithmetic (it sums packet bytes as little-endian words).
    const std::uint32_t pseudo = util::cksum32_accumulate(
        util::cksum32_accumulate(util::bswap32(cfg_.local_ip.value),
                                 util::bswap32(cfg_.remote_ip.value)),
        0x0600u | (static_cast<std::uint32_t>(util::bswap16(20)) << 16));
    shm_.set(tcb::kAckPseudoSum, pseudo);
  }
}

void TcpConnection::set_state(TcpState s) {
  state_ = s;
  shm_.set(tcb::kState, static_cast<std::uint32_t>(s));
}

std::uint32_t TcpConnection::advertised_window() const {
  const std::uint32_t used = shm_.get(tcb::kStageUsed);
  return used >= cfg_.window ? 0 : cfg_.window - used;
}

void TcpConnection::cancel_timer(sim::TimerWheel::Id& id) {
  if (id != 0) {
    wheel_.cancel(id);
    id = 0;
  }
}

void TcpConnection::arm_retx_timer() {
  cancel_timer(retx_timer_);
  if (retx_.empty()) return;
  retx_timer_ =
      wheel_.arm(link_.self().node().now() + rto_cur_, kTimerRetx);
}

sim::Sub<bool> TcpConnection::send_segment(
    TcpFlags flags, std::span<const std::uint8_t> payload, bool queue_retx) {
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);

  const std::uint32_t seq = snd_nxt_;
  sim::Cycles cycles = plen > 0 || flags.syn || flags.fin
                           ? node.cost().tcp_send_overhead
                           : node.cost().tcp_ack_overhead;

  if (plen > 0) {
    std::memcpy(p + kSegHdrLen, payload.data(), plen);
    // Staging-copy cost (app buffer -> packet): loop + cache traffic.
    for (std::uint32_t off = 0; off < plen; off += 4) {
      cycles += node.cost().copy_loop_insns_per_word;
      cycles += node.dcache().access(pkt + kSegHdrLen + off,
                                     std::min(4u, plen - off), true);
    }
  }

  TcpHeader tcp;
  tcp.src_port = cfg_.local_port;
  tcp.dst_port = cfg_.remote_port;
  tcp.seq = seq;
  tcp.ack = flags.ack ? rcv_nxt() : 0;
  tcp.flags = flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(advertised_window(), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  last_advertised_wnd_ = advertised_window();

  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    cycles += node.cost().udp_cksum_setup;
    cycles += sim::memops::cksum(node, pkt + kIpHeaderLen,
                                 kTcpHeaderLen + plen, &dummy);
    tcp.checksum = transport_checksum(
        cfg_.local_ip, cfg_.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }

  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = cfg_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = next_ident_++;
  encode_ip({p, kIpHeaderLen}, ip);

  const std::uint32_t consumed = plen + ((flags.syn || flags.fin) ? 1 : 0);
  snd_nxt_ = seq + consumed;
  shm_.set(tcb::kSndNxt, snd_nxt_);

  if (queue_retx && consumed > 0) {
    retx_.push_back(RetxSegment{
        seq, std::vector<std::uint8_t>(payload.begin(), payload.end()),
        flags, 0});
    if (retx_timer_ == 0) arm_retx_timer();
    // Time one segment per flight window (RFC 6298 / Karn): the sample
    // ends when this segment's last byte is acknowledged.
    if (!rtt_pending_) {
      rtt_pending_ = true;
      rtt_seq_ = seq + consumed;
      rtt_sent_at_ = node.now();
    }
  }
  if (plen == 0 && !flags.syn && !flags.fin) ++stats_.acks_sent;

  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, total);
  co_return sent;
}

sim::Sub<bool> TcpConnection::send_ack() {
  TcpFlags flags;
  flags.ack = true;
  const bool sent = co_await send_segment(flags, {}, /*queue_retx=*/false);
  co_return sent;
}

sim::Sub<void> TcpConnection::send_rst(std::uint32_t seq, std::uint32_t ack,
                                       bool with_ack) {
  sim::Node& node = link_.self().node();
  const std::uint32_t pkt = link_.tx_alloc_ip(kSegHdrLen);
  std::uint8_t* p = node.mem(pkt, kSegHdrLen);

  TcpHeader tcp;
  tcp.src_port = cfg_.local_port;
  tcp.dst_port = cfg_.remote_port;
  tcp.seq = seq;
  tcp.ack = with_ack ? ack : 0;
  tcp.flags.rst = true;
  tcp.flags.ack = with_ack;
  tcp.window = 0;
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (cfg_.checksum) {
    tcp.checksum =
        transport_checksum(cfg_.local_ip, cfg_.remote_ip, kIpProtoTcp,
                           {p + kIpHeaderLen, kTcpHeaderLen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = cfg_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(kSegHdrLen);
  ip.ident = next_ident_++;
  encode_ip({p, kIpHeaderLen}, ip);

  ++stats_.rsts_sent;
  co_await link_.self().compute(node.cost().tcp_ack_overhead);
  co_await link_.send_ip(pkt, kSegHdrLen);
}

void TcpConnection::abort_connection() {
  ++stats_.aborts;
  retx_.clear();
  ooo_.clear();
  dup_acks_ = 0;
  rtt_pending_ = false;
  persist_fire_ = false;
  cancel_timer(retx_timer_);
  cancel_timer(persist_timer_);
  cancel_timer(timewait_timer_);
  // Readers must not block waiting for data that can no longer arrive.
  peer_fin_seen_ = true;
  listening_ = false;
  set_state(TcpState::Closed);
}

void TcpConnection::process_rst(const TcpHeader& tcp) {
  bool acceptable = false;
  switch (state_) {
    case TcpState::Closed:
      return;  // nothing to reset
    case TcpState::SynSent:
      // RFC 793: in SYN_SENT a RST is valid only if it acks our SYN.
      acceptable = tcp.flags.ack && tcp.ack == snd_nxt_;
      break;
    case TcpState::TimeWait:
      // RFC 1337: ignore RSTs in TIME_WAIT (TIME-WAIT assassination).
      ++stats_.rsts_ignored;
      return;
    default: {
      // RFC 5961-style: the RST's sequence must fall in the receive
      // window (always at least one sequence number wide).
      const std::uint32_t wnd = std::max(advertised_window(), 1u);
      acceptable =
          seq_le(rcv_nxt(), tcp.seq) && seq_lt(tcp.seq, rcv_nxt() + wnd);
      break;
    }
  }
  if (acceptable) {
    ++stats_.rsts_received;
    abort_connection();
  } else {
    ++stats_.rsts_ignored;
  }
}

void TcpConnection::reap_acked(std::uint32_t ack) {
  bool popped = false;
  while (!retx_.empty()) {
    const RetxSegment& seg = retx_.front();
    const std::uint32_t consumed =
        static_cast<std::uint32_t>(seg.payload.size()) +
        ((seg.flags.syn || seg.flags.fin) ? 1 : 0);
    if (seq_le(seg.seq + consumed, ack)) {
      retx_.pop_front();
      popped = true;
    } else {
      break;
    }
  }
  if (popped || retx_.empty()) arm_retx_timer();
}

sim::Sub<bool> TcpConnection::resend_front(bool count_retry) {
  if (retx_.empty()) co_return true;
  RetxSegment& seg = retx_.front();
  if (count_retry && ++seg.retries > cfg_.max_retries) {
    // Retry budget exhausted: the peer is unreachable. A bare `false`
    // here used to strand a half-open TCB (state Established, segments
    // still queued, shared TCB claiming liveness); tear it all down.
    abort_connection();
    co_return false;
  }
  ++stats_.retransmits;
  rtt_pending_ = false;  // Karn: never time a retransmitted flight

  // Rebuild the segment with its original sequence number.
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(seg.payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);
  if (plen > 0) std::memcpy(p + kSegHdrLen, seg.payload.data(), plen);

  TcpHeader tcp;
  tcp.src_port = cfg_.local_port;
  tcp.dst_port = cfg_.remote_port;
  tcp.seq = seg.seq;
  tcp.ack = seg.flags.ack ? rcv_nxt() : 0;
  tcp.flags = seg.flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(advertised_window(), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (cfg_.checksum) {
    tcp.checksum = transport_checksum(
        cfg_.local_ip, cfg_.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = cfg_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = next_ident_++;
  encode_ip({p, kIpHeaderLen}, ip);

  co_await link_.self().compute(link_.self().node().cost().tcp_send_overhead);
  co_await link_.send_ip(pkt, total);
  co_return true;
}

sim::Sub<bool> TcpConnection::service_timers() {
  sim::Node& node = link_.self().node();
  std::vector<sim::TimerWheel::Expired> fired;
  wheel_.advance(node.now(), fired);
  for (const auto& t : fired) {
    switch (t.cookie) {
      case kTimerRetx: {
        retx_timer_ = 0;
        if (retx_.empty()) break;
        ++stats_.rto_timeouts;
        cc_.on_timeout(snd_nxt_ - snd_una());
        shm_.set(tcb::kSndCwnd, cc_.cwnd());
        rto_cur_ = std::min(rto_cur_ * 2, cfg_.max_rto);  // backoff
        dup_acks_ = 0;
        const bool alive = co_await resend_front(/*count_retry=*/true);
        if (!alive) co_return false;
        arm_retx_timer();
        break;
      }
      case kTimerPersist:
        persist_timer_ = 0;
        persist_fire_ = true;  // the writer sends the probe byte
        break;
      case kTimerTimeWait:
        timewait_timer_ = 0;
        if (state_ == TcpState::TimeWait) {
          retx_.clear();
          set_state(TcpState::Closed);
        }
        break;
      default:
        break;
    }
  }
  co_return true;
}

sim::Sub<bool> TcpConnection::wait_step(sim::Cycles horizon) {
  sim::Node& node = link_.self().node();
  sim::Cycles timeout = horizon;
  const auto nd = wheel_.next_deadline();
  if (nd) {
    const sim::Cycles now = node.now();
    timeout = *nd > now ? std::min(horizon, *nd - now) : 0;
  }
  bool got = false;
  if (timeout > 0) {
    auto d = co_await link_.recv_for(timeout);
    if (d) {
      co_await process_packet(*d);
      got = true;
    }
  }
  const bool alive = co_await service_timers();
  co_return got && alive;
}

void TcpConnection::enter_time_wait() {
  cancel_timer(retx_timer_);
  cancel_timer(persist_timer_);
  cancel_timer(timewait_timer_);
  set_state(TcpState::TimeWait);
  timewait_timer_ =
      wheel_.arm(link_.self().node().now() + cfg_.time_wait, kTimerTimeWait);
}

void TcpConnection::maybe_finish_close() {
  if (snd_una() != snd_nxt_) return;  // our FIN not yet acknowledged
  if (state_ == TcpState::FinSent && peer_fin_seen_) {
    enter_time_wait();
  } else if (state_ == TcpState::LastAck) {
    cancel_timer(retx_timer_);
    set_state(TcpState::Closed);
  }
}

void TcpConnection::stage_append(const std::uint8_t* data, std::uint32_t len,
                                 sim::Cycles* cycles) {
  sim::Node& node = link_.self().node();
  const std::uint32_t base = shm_.get(tcb::kStageBase);
  const std::uint32_t cap = shm_.get(tcb::kStageCap);
  std::uint32_t wr = shm_.get(tcb::kStageWr);
  std::uint32_t used = shm_.get(tcb::kStageUsed);
  if (used == 0) {
    wr = 0;
    shm_.set(tcb::kStageRd, 0);
  }

  // `data` points into sim memory (the rx buffer); compute its sim address
  // from the node's base pointer so the copy is charged properly.
  const std::uint32_t src_addr =
      static_cast<std::uint32_t>(data - node.mem(0, 1));

  std::uint32_t first = std::min(len, cap - wr);
  if (cfg_.in_place) {
    // Zero-copy mode: bytes move for simulation fidelity, free of charge.
    std::memcpy(node.mem(base + wr, first), node.mem(src_addr, first), first);
    if (first < len) {
      std::memcpy(node.mem(base, len - first),
                  node.mem(src_addr + first, len - first), len - first);
    }
  } else {
    *cycles += sim::memops::copy(node, base + wr, src_addr, first);
    if (first < len) {
      *cycles += sim::memops::copy(node, base, src_addr + first, len - first);
    }
  }
  wr = (wr + len) % cap;
  used += len;
  shm_.set(tcb::kStageWr, wr);
  shm_.set(tcb::kStageUsed, used);
}

void TcpConnection::drain_ooo(sim::Cycles* cycles) {
  sim::Node& node = link_.self().node();
  for (;;) {
    const std::uint32_t used = shm_.get(tcb::kStageUsed);
    const std::uint32_t cap = shm_.get(tcb::kStageCap);
    if (used >= cap) return;
    const bool have = ooo_.contiguous_at(rcv_nxt());
    if (!have) return;
    std::vector<std::uint8_t> run = ooo_.pop_contiguous(rcv_nxt(), cap - used);
    if (run.empty()) return;
    // The bytes live in host memory (they were copied out of a released
    // rx buffer); stage them via a scratch copy in the rx area of sim
    // memory is unnecessary — append directly and charge the same copy
    // cost the in-order path pays.
    const std::uint32_t base = shm_.get(tcb::kStageBase);
    std::uint32_t wr = shm_.get(tcb::kStageWr);
    std::uint32_t u = used;
    if (u == 0) {
      wr = 0;
      shm_.set(tcb::kStageRd, 0);
    }
    const std::uint32_t len = static_cast<std::uint32_t>(run.size());
    const std::uint32_t first = std::min(len, cap - wr);
    std::memcpy(node.mem(base + wr, first), run.data(), first);
    if (first < len) {
      std::memcpy(node.mem(base, len - first), run.data() + first,
                  len - first);
    }
    if (!cfg_.in_place) {
      for (std::uint32_t off = 0; off < len; off += 4) {
        *cycles += node.cost().copy_loop_insns_per_word;
        *cycles += node.dcache().access(base + ((wr + off) % cap),
                                        std::min(4u, len - off), true);
      }
    }
    shm_.set(tcb::kStageWr, (wr + len) % cap);
    shm_.set(tcb::kStageUsed, u + len);
    set_rcv_nxt(rcv_nxt() + len);
    stats_.ooo_reassembled += len;
  }
}

sim::Sub<void> TcpConnection::process_packet(const net::RxDesc& d) {
  sim::Node& node = link_.self().node();
  const std::uint32_t ip_off = link_.rx_ip_offset();
  if (d.len < ip_off) {
    link_.release(d);
    co_return;
  }
  const std::uint8_t* p = node.mem(d.addr + ip_off, d.len - ip_off);
  ++stats_.segments_in;

  const auto ip = decode_ip({p, d.len - ip_off});
  if (!ip || ip->protocol != kIpProtoTcp || ip->dst != cfg_.local_ip) {
    link_.release(d);
    co_return;
  }
  const std::uint32_t seg_len = ip->total_len - kIpHeaderLen;
  const auto tcp = decode_tcp({p + kIpHeaderLen, seg_len});
  if (!tcp || tcp->dst_port != cfg_.local_port ||
      (state_ != TcpState::Closed && tcp->src_port != cfg_.remote_port)) {
    link_.release(d);
    co_return;
  }
  const std::uint32_t plen =
      seg_len - static_cast<std::uint32_t>(kTcpHeaderLen);

  // Header prediction (RFC 1185-style fast path): established, plain
  // ACK(+data), exactly the next expected sequence number.
  const bool predicted =
      state_ == TcpState::Established && tcp->flags.ack && !tcp->flags.syn &&
      !tcp->flags.fin && !tcp->flags.rst && tcp->seq == rcv_nxt();
  if (predicted) {
    ++stats_.fastpath_hits;
  } else {
    ++stats_.slowpath;
  }
  co_await link_.self().compute(predicted
                                    ? node.cost().tcp_fastpath_overhead
                                    : node.cost().tcp_slowpath_overhead);

  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    const sim::Cycles ck =
        node.cost().udp_cksum_setup +
        sim::memops::cksum(node, d.addr + ip_off + kIpHeaderLen, seg_len,
                           &dummy);
    co_await link_.self().compute(ck);
    std::uint32_t acc = pseudo_header_sum(
        ip->src, ip->dst, kIpProtoTcp, static_cast<std::uint16_t>(seg_len));
    acc = util::cksum_partial({p + kIpHeaderLen, seg_len}, acc);
    if (util::fold16(acc) != 0xffff) {
      ++stats_.cksum_failures;
      link_.release(d);
      co_return;
    }
  }

  shm_.set(tcb::kLibBusy, 1);

  // --- RST ---
  if (tcp->flags.rst) {
    process_rst(*tcp);
    shm_.set(tcb::kLibBusy, 0);
    link_.release(d);
    co_return;
  }

  bool ack_needed = false;

  // --- ACK processing ---
  if (tcp->flags.ack && state_ != TcpState::Closed) {
    const std::uint32_t una_before = snd_una();
    if (seq_lt(una_before, tcp->ack) && seq_le(tcp->ack, snd_nxt_)) {
      // New data acknowledged.
      set_snd_una(tcp->ack);
      reap_acked(tcp->ack);
      const std::uint32_t acked = tcp->ack - una_before;
      cc_.on_ack(acked);
      shm_.set(tcb::kSndCwnd, cc_.cwnd());
      dup_acks_ = 0;
      if (rtt_pending_ && seq_le(rtt_seq_, tcp->ack)) {
        rtt_.sample(node.now() - rtt_sent_at_);
        rtt_pending_ = false;
      }
      rto_cur_ = rtt_.rto();  // fresh ACK resets any backoff
    } else if (tcp->ack == una_before && plen == 0 && !tcp->flags.syn &&
               !tcp->flags.fin && seq_lt(una_before, snd_nxt_) &&
               state_ == TcpState::Established) {
      // Duplicate ACK with data outstanding: three trigger a fast
      // retransmit of the presumed-lost front segment (RFC 5681).
      if (++dup_acks_ == 3) {
        dup_acks_ = 0;
        cc_.on_fast_retransmit(snd_nxt_ - una_before);
        shm_.set(tcb::kSndCwnd, cc_.cwnd());
        ++stats_.fast_retransmits;
        shm_.set(tcb::kLibBusy, 0);
        link_.release(d);
        if (seq_le(tcp->ack, snd_nxt_)) shm_.set(tcb::kSndWnd, tcp->window);
        co_await resend_front(/*count_retry=*/false);
        arm_retx_timer();
        co_return;
      }
    }
    if (seq_le(tcp->ack, snd_nxt_)) {
      shm_.set(tcb::kSndWnd, tcp->window);
      if (tcp->window > 0) cancel_timer(persist_timer_);
    }
  }

  // --- state transitions ---
  switch (state_) {
    case TcpState::Closed:
      if (listening_ && tcp->flags.syn && !tcp->flags.ack) {
        set_rcv_nxt(tcp->seq + 1);
        set_state(TcpState::SynRcvd);
        TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        shm_.set(tcb::kLibBusy, 0);
        link_.release(d);
        co_await send_segment(synack, {}, /*queue_retx=*/true);
        co_return;
      }
      if (cfg_.rst_when_closed && !listening_) {
        // No connection state for this segment: answer with RST so the
        // peer tears down instead of retrying into a void (RFC 793).
        const std::uint32_t rseq = tcp->flags.ack ? tcp->ack : 0;
        const std::uint32_t rack =
            tcp->seq + plen + ((tcp->flags.syn || tcp->flags.fin) ? 1 : 0);
        shm_.set(tcb::kLibBusy, 0);
        link_.release(d);
        co_await send_rst(rseq, rack, /*with_ack=*/!tcp->flags.ack);
        co_return;
      }
      break;
    case TcpState::SynSent:
      if (tcp->flags.syn && tcp->flags.ack && tcp->ack == cfg_.iss + 1) {
        set_rcv_nxt(tcp->seq + 1);
        set_state(TcpState::Established);
        ack_needed = true;
      }
      break;
    case TcpState::TimeWait:
      // 2MSL quarantine: re-ACK a retransmitted FIN (the peer's last ACK
      // was lost) and restart the clock; anything out of window is
      // counted and challenged with a bare ACK.
      if (tcp->flags.fin && seq_lt(tcp->seq, rcv_nxt())) {
        ++stats_.dup_segments;
        cancel_timer(timewait_timer_);
        timewait_timer_ =
            wheel_.arm(node.now() + cfg_.time_wait, kTimerTimeWait);
        ack_needed = true;
      } else if (!seq_le(rcv_nxt(), tcp->seq) ||
                 !seq_lt(tcp->seq, rcv_nxt() + std::max(advertised_window(),
                                                        1u))) {
        ++stats_.timewait_drops;
        ack_needed = true;  // challenge ACK re-asserts our view
      }
      break;
    case TcpState::SynRcvd:
      if (tcp->flags.ack && tcp->ack == snd_nxt_) {
        set_state(TcpState::Established);
      }
      [[fallthrough]];
    case TcpState::Established:
    case TcpState::CloseWait:
    case TcpState::LastAck:
    case TcpState::FinSent: {
      // --- data ---
      if (plen > 0 && state_ != TcpState::SynRcvd) {
        const std::uint32_t used = shm_.get(tcb::kStageUsed);
        const std::uint32_t cap = shm_.get(tcb::kStageCap);
        sim::Cycles cycles = 0;
        if (tcp->seq == rcv_nxt() && used + plen <= cap) {
          stage_append(p + kSegHdrLen, plen, &cycles);
          set_rcv_nxt(rcv_nxt() + plen);
          if (cfg_.reassemble) drain_ooo(&cycles);
        } else if (seq_le(tcp->seq + plen, rcv_nxt())) {
          ++stats_.dup_segments;  // retransmission of delivered data
        } else if (tcp->seq == rcv_nxt()) {
          ++stats_.stage_full_drops;  // in order, but nowhere to put it
        } else if (!cfg_.reassemble) {
          ++stats_.ooo_dropped;  // baseline receiver: reorder = drop
        } else {
          const auto r = ooo_.insert(tcp->seq, {p + kSegHdrLen, plen},
                                     rcv_nxt(), cfg_.window, ooo_limit());
          if (r.buffered > 0) {
            ++stats_.ooo_buffered;
          } else if (r.duplicate) {
            ++stats_.dup_segments;
          } else {
            ++stats_.ooo_dropped;  // out of window or store full
          }
        }
        co_await link_.self().compute(cycles);
        ack_needed = true;
      }
      // --- FIN ---
      if (tcp->flags.fin) {
        if (tcp->seq + plen == rcv_nxt()) {
          set_rcv_nxt(rcv_nxt() + 1);
          peer_fin_seen_ = true;
          if (state_ == TcpState::Established) set_state(TcpState::CloseWait);
          ack_needed = true;
        } else if (seq_lt(tcp->seq + plen, rcv_nxt())) {
          ++stats_.dup_segments;  // retransmitted FIN: re-ACK
          ack_needed = true;
        }
        // A FIN beyond rcv_nxt waits for the gap to fill; the peer
        // retransmits it.
      }
      break;
    }
  }

  maybe_finish_close();
  shm_.set(tcb::kLibBusy, 0);
  link_.release(d);
  if (ack_needed) co_await send_ack();
}

sim::Sub<bool> TcpConnection::connect() {
  listening_ = false;
  set_state(TcpState::SynSent);
  TcpFlags syn;
  syn.syn = true;
  co_await send_segment(syn, {}, /*queue_retx=*/true);
  while (state_ != TcpState::Established) {
    if (state_ == TcpState::Closed) co_return false;  // RST or exhaustion
    co_await wait_step(rto_cur_);
  }
  co_return true;
}

sim::Sub<bool> TcpConnection::accept() {
  listening_ = true;
  while (state_ != TcpState::Established) {
    if (state_ == TcpState::Closed && !listening_) co_return false;
    co_await wait_step(rto_cur_);
  }
  listening_ = false;
  co_return true;
}

sim::Sub<bool> TcpConnection::write_from(std::uint32_t app_addr,
                                         std::uint32_t len) {
  sim::Node& node = link_.self().node();
  const std::uint32_t end_seq = snd_nxt_ + len;
  std::uint32_t sent = 0;

  while (seq_lt(snd_una(), end_seq)) {
    if (state_ == TcpState::Closed) co_return false;

    // Fill min(peer window, congestion window).
    while (sent < len) {
      const std::uint32_t inflight = snd_nxt_ - snd_una();
      const std::uint32_t wnd =
          std::min({snd_wnd(), cfg_.window, cc_.cwnd()});
      if (inflight >= wnd) break;
      const std::uint32_t chunk =
          std::min({cfg_.mss, len - sent, wnd - inflight});
      if (chunk == 0) break;
      const std::uint8_t* src = node.mem(app_addr + sent, chunk);
      TcpFlags flags;
      flags.ack = true;
      flags.psh = sent + chunk == len;
      const bool sent_ok =
          co_await send_segment(flags, {src, chunk}, /*queue_retx=*/true);
      if (!sent_ok) co_return false;
      sent += chunk;
    }

    // Zero-window persist: the peer closed its window with nothing of
    // ours in flight — without a probe, a lost window-update ACK would
    // deadlock both sides forever. The probe byte rides the normal
    // retransmission machinery, so follow-up probes back off with it.
    if (sent < len && snd_nxt_ == snd_una() && snd_wnd() == 0) {
      if (persist_fire_) {
        persist_fire_ = false;
        ++stats_.persist_probes;
        const std::uint8_t* src = node.mem(app_addr + sent, 1);
        TcpFlags flags;
        flags.ack = true;
        co_await send_segment(flags, {src, 1}, /*queue_retx=*/true);
        sent += 1;
        continue;
      }
      if (persist_timer_ == 0) {
        persist_timer_ = wheel_.arm(node.now() + rto_cur_, kTimerPersist);
      }
    }

    // Wait for ACK progress.
    if (handler_attached_) {
      const std::uint32_t before = snd_una();
      const sim::Cycles deadline = node.now() + rto_cur_;
      while (snd_una() == before) {
        if (auto d = link_.try_recv()) {
          co_await process_packet(*d);  // handler fallback path
          break;
        }
        if (node.now() >= deadline) break;
        co_await link_.self().compute(node.cost().poll_iteration);
      }
      const std::uint32_t after = snd_una();
      if (after == before) {
        // A segment may have landed between the last poll and the
        // deadline check; process it instead of discarding the dequeued
        // descriptor (which would lose the segment and leak its buffer).
        if (auto d = link_.try_recv()) {
          co_await process_packet(*d);
        } else {
          const bool alive = co_await service_timers();
          if (!alive) co_return false;
          if (wheel_.size() == 0 && !retx_.empty()) arm_retx_timer();
        }
      } else if (seq_lt(before, after)) {
        // The downloaded handler consumed the ACKs: reconcile the
        // retransmit queue and grow the congestion window here.
        reap_acked(after);
        cc_.on_ack(after - before);
        shm_.set(tcb::kSndCwnd, cc_.cwnd());
        dup_acks_ = 0;
        rtt_pending_ = false;  // the sample's ACK was consumed unseen
        rto_cur_ = rtt_.rto();
      }
    } else {
      co_await wait_step(rto_cur_);
    }
  }
  co_return true;
}

sim::Sub<std::uint32_t> TcpConnection::read_into(std::uint32_t app_addr,
                                                 std::uint32_t max_len) {
  sim::Node& node = link_.self().node();
  for (;;) {
    const std::uint32_t used = shm_.get(tcb::kStageUsed);
    if (used > 0) {
      const std::uint32_t base = shm_.get(tcb::kStageBase);
      const std::uint32_t cap = shm_.get(tcb::kStageCap);
      std::uint32_t rd = shm_.get(tcb::kStageRd);
      const std::uint32_t n = std::min(used, max_len);
      const std::uint32_t first = std::min(n, cap - rd);
      sim::Cycles cycles = sim::memops::copy(node, app_addr, base + rd, first);
      if (first < n) {
        cycles +=
            sim::memops::copy(node, app_addr + first, base, n - first);
      }
      rd = (rd + n) % cap;
      shm_.set(tcb::kStageRd, rd);
      shm_.set(tcb::kStageUsed, used - n);
      if (used - n == 0) {
        shm_.set(tcb::kStageRd, 0);
        shm_.set(tcb::kStageWr, 0);
      }
      if (handler_attached_) {
        cycles += node.cost().tcp_handler_read_overhead *
                  ((n + cfg_.mss - 1) / cfg_.mss);
      }
      co_await link_.self().compute(cycles);
      // Window update if consumption re-opened it: a full MSS of fresh
      // space, or ANY space after advertising zero (a sub-MSS reader
      // must still un-wedge a persisting peer).
      const std::uint32_t adv = advertised_window();
      if (adv >= last_advertised_wnd_ + cfg_.mss ||
          (last_advertised_wnd_ == 0 && adv > 0)) {
        ++stats_.window_updates;
        co_await send_ack();
      }
      co_return n;
    }
    if (peer_fin_seen_) co_return 0;
    if (state_ == TcpState::Closed) co_return 0;

    if (handler_attached_) {
      if (auto d = link_.try_recv()) {
        co_await process_packet(*d);
      } else {
        const bool alive = co_await service_timers();
        if (!alive) co_return 0;
        co_await link_.self().compute(node.cost().poll_iteration);
      }
    } else {
      co_await wait_step(rto_cur_);
    }
  }
}

sim::Sub<std::uint32_t> TcpConnection::read_discard(std::uint32_t max_len) {
  sim::Node& node = link_.self().node();
  for (;;) {
    const std::uint32_t used = shm_.get(tcb::kStageUsed);
    if (used > 0) {
      const std::uint32_t cap = shm_.get(tcb::kStageCap);
      std::uint32_t rd = shm_.get(tcb::kStageRd);
      const std::uint32_t n = std::min(used, max_len);
      rd = (rd + n) % cap;
      shm_.set(tcb::kStageRd, rd);
      shm_.set(tcb::kStageUsed, used - n);
      if (used - n == 0) {
        shm_.set(tcb::kStageRd, 0);
        shm_.set(tcb::kStageWr, 0);
      }
      if (handler_attached_) {
        co_await link_.self().compute(node.cost().tcp_handler_read_overhead *
                                      ((n + cfg_.mss - 1) / cfg_.mss));
      }
      const std::uint32_t adv = advertised_window();
      if (adv >= last_advertised_wnd_ + cfg_.mss ||
          (last_advertised_wnd_ == 0 && adv > 0)) {
        ++stats_.window_updates;
        co_await send_ack();
      }
      co_return n;
    }
    if (peer_fin_seen_) co_return 0;
    if (state_ == TcpState::Closed) co_return 0;

    if (handler_attached_) {
      if (auto d = link_.try_recv()) {
        co_await process_packet(*d);
      } else {
        const bool alive = co_await service_timers();
        if (!alive) co_return 0;
        co_await link_.self().compute(node.cost().poll_iteration);
      }
    } else {
      co_await wait_step(rto_cur_);
    }
  }
}

sim::Sub<void> TcpConnection::close() {
  if (state_ == TcpState::SynSent) {
    // Nothing of ours is established; just delete the half-open TCB.
    abort_connection();
    co_return;
  }
  if (state_ == TcpState::Established || state_ == TcpState::SynRcvd) {
    TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    co_await send_segment(fin, {}, /*queue_retx=*/true);
    set_state(TcpState::FinSent);
  } else if (state_ == TcpState::CloseWait) {
    TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    co_await send_segment(fin, {}, /*queue_retx=*/true);
    set_state(TcpState::LastAck);
  }
  maybe_finish_close();

  int idle_rounds = 0;
  while (state_ != TcpState::Closed) {
    if (state_ == TcpState::TimeWait) {
      // Only the 2MSL clock (or a retransmitted FIN) matters now.
      co_await wait_step(cfg_.time_wait);
      continue;
    }
    const bool got = co_await wait_step(rto_cur_);
    maybe_finish_close();
    if (got) {
      idle_rounds = 0;
    } else if (++idle_rounds > cfg_.max_retries &&
               state_ != TcpState::Closed) {
      // FIN_WAIT_2-style give-up: our FIN is acked but the peer never
      // sends its own. Drop what's left rather than wait forever.
      retx_.clear();
      cancel_timer(retx_timer_);
      cancel_timer(persist_timer_);
      cancel_timer(timewait_timer_);
      set_state(TcpState::Closed);
    }
  }
}

}  // namespace ash::proto
