#include "proto/tcp.hpp"

#include <algorithm>
#include <cstring>

#include "sim/node.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

namespace {
constexpr std::uint32_t kSegHdrLen =
    static_cast<std::uint32_t>(kIpHeaderLen + kTcpHeaderLen);
}

TcpConnection::TcpConnection(Link& link, const TcpConfig& config)
    : link_(link), cfg_(config) {
  sim::Node& node = link.self().node();
  const std::uint32_t shm_base = link.carve(TcbShm::size_bytes());
  const std::uint32_t stage_cap = 2 * cfg_.window;
  const std::uint32_t stage_base = link.carve(stage_cap);
  const std::uint32_t ack_scratch = link.carve(tcb::kAckBufLen);

  shm_ = TcbShm(node, shm_base);
  for (std::uint32_t w = 0; w < tcb::kWords; ++w) shm_.set(w, 0);
  shm_.set(tcb::kStageBase, stage_base);
  shm_.set(tcb::kStageCap, stage_cap);
  shm_.set(tcb::kLocalPort, cfg_.local_port);
  shm_.set(tcb::kRemotePort, cfg_.remote_port);
  shm_.set(tcb::kLocalIp, cfg_.local_ip.value);
  shm_.set(tcb::kRemoteIp, cfg_.remote_ip.value);
  shm_.set(tcb::kAckScratch, ack_scratch);
  shm_.set(tcb::kChecksumOn, cfg_.checksum ? 1 : 0);
  shm_.set(tcb::kSndWnd, cfg_.window);

  snd_nxt_ = cfg_.iss;
  shm_.set(tcb::kSndNxt, snd_nxt_);
  set_snd_una(cfg_.iss);
  set_state(TcpState::Closed);
  last_advertised_wnd_ = cfg_.window;

  // Pre-build the pure-ACK template a downloaded fast-path handler patches
  // and transmits (Section V-B): constant IP header (checksummed) and TCP
  // ports/flags; the handler fills seq/ack/window and the TCP checksum.
  {
    std::uint8_t* t = node.mem(ack_scratch, tcb::kAckBufLen);
    std::memset(t, 0, tcb::kAckBufLen);
    IpHeader aip;
    aip.protocol = kIpProtoTcp;
    aip.src = cfg_.local_ip;
    aip.dst = cfg_.remote_ip;
    aip.total_len = tcb::kAckPacketLen;
    aip.ident = 0;
    encode_ip({t, kIpHeaderLen}, aip);
    TcpHeader ath;
    ath.src_port = cfg_.local_port;
    ath.dst_port = cfg_.remote_port;
    ath.flags.ack = true;
    ath.window = static_cast<std::uint16_t>(cfg_.window);
    encode_tcp({t + kIpHeaderLen, kTcpHeaderLen}, ath);
    // Little-endian-word pseudo-header partial for the handler's checksum
    // arithmetic (it sums packet bytes as little-endian words).
    const std::uint32_t pseudo = util::cksum32_accumulate(
        util::cksum32_accumulate(util::bswap32(cfg_.local_ip.value),
                                 util::bswap32(cfg_.remote_ip.value)),
        0x0600u | (static_cast<std::uint32_t>(util::bswap16(20)) << 16));
    shm_.set(tcb::kAckPseudoSum, pseudo);
  }
}

void TcpConnection::set_state(TcpState s) {
  state_ = s;
  shm_.set(tcb::kState, static_cast<std::uint32_t>(s));
}

std::uint32_t TcpConnection::advertised_window() const {
  const std::uint32_t used = shm_.get(tcb::kStageUsed);
  return used >= cfg_.window ? 0 : cfg_.window - used;
}

sim::Sub<bool> TcpConnection::send_segment(
    TcpFlags flags, std::span<const std::uint8_t> payload, bool queue_retx) {
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);

  const std::uint32_t seq = snd_nxt_;
  sim::Cycles cycles = plen > 0 || flags.syn || flags.fin
                           ? node.cost().tcp_send_overhead
                           : node.cost().tcp_ack_overhead;

  if (plen > 0) {
    std::memcpy(p + kSegHdrLen, payload.data(), plen);
    // Staging-copy cost (app buffer -> packet): loop + cache traffic.
    for (std::uint32_t off = 0; off < plen; off += 4) {
      cycles += node.cost().copy_loop_insns_per_word;
      cycles += node.dcache().access(pkt + kSegHdrLen + off,
                                     std::min(4u, plen - off), true);
    }
  }

  TcpHeader tcp;
  tcp.src_port = cfg_.local_port;
  tcp.dst_port = cfg_.remote_port;
  tcp.seq = seq;
  tcp.ack = flags.ack ? rcv_nxt() : 0;
  tcp.flags = flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(advertised_window(), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  last_advertised_wnd_ = advertised_window();

  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    cycles += node.cost().udp_cksum_setup;
    cycles += sim::memops::cksum(node, pkt + kIpHeaderLen,
                                 kTcpHeaderLen + plen, &dummy);
    tcp.checksum = transport_checksum(
        cfg_.local_ip, cfg_.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }

  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = cfg_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = next_ident_++;
  encode_ip({p, kIpHeaderLen}, ip);

  snd_nxt_ = seq + plen + ((flags.syn || flags.fin) ? 1 : 0);
  shm_.set(tcb::kSndNxt, snd_nxt_);

  if (queue_retx && (plen > 0 || flags.syn || flags.fin)) {
    retx_.push_back(RetxSegment{
        seq, std::vector<std::uint8_t>(payload.begin(), payload.end()),
        flags, 0});
  }
  if (plen == 0 && !flags.syn && !flags.fin) ++stats_.acks_sent;

  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, total);
  co_return sent;
}

sim::Sub<bool> TcpConnection::send_ack() {
  TcpFlags flags;
  flags.ack = true;
  const bool sent = co_await send_segment(flags, {}, /*queue_retx=*/false);
  co_return sent;
}

void TcpConnection::abort_connection() {
  ++stats_.aborts;
  retx_.clear();
  // Readers must not block waiting for data that can no longer arrive.
  peer_fin_seen_ = true;
  listening_ = false;
  set_state(TcpState::Closed);
}

sim::Sub<bool> TcpConnection::retransmit() {
  if (retx_.empty()) co_return true;
  RetxSegment& seg = retx_.front();
  if (++seg.retries > cfg_.max_retries) {
    // Retry budget exhausted: the peer is unreachable. A bare `false`
    // here used to strand a half-open TCB (state Established, segments
    // still queued, shared TCB claiming liveness); tear it all down.
    abort_connection();
    co_return false;
  }
  ++stats_.retransmits;

  // Rebuild the segment with its original sequence number.
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(seg.payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);
  if (plen > 0) std::memcpy(p + kSegHdrLen, seg.payload.data(), plen);

  TcpHeader tcp;
  tcp.src_port = cfg_.local_port;
  tcp.dst_port = cfg_.remote_port;
  tcp.seq = seg.seq;
  tcp.ack = seg.flags.ack ? rcv_nxt() : 0;
  tcp.flags = seg.flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(advertised_window(), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (cfg_.checksum) {
    tcp.checksum = transport_checksum(
        cfg_.local_ip, cfg_.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = cfg_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = next_ident_++;
  encode_ip({p, kIpHeaderLen}, ip);

  co_await link_.self().compute(link_.self().node().cost().tcp_send_overhead);
  co_await link_.send_ip(pkt, total);
  co_return true;
}

void TcpConnection::stage_append(const std::uint8_t* data, std::uint32_t len,
                                 sim::Cycles* cycles) {
  sim::Node& node = link_.self().node();
  const std::uint32_t base = shm_.get(tcb::kStageBase);
  const std::uint32_t cap = shm_.get(tcb::kStageCap);
  std::uint32_t wr = shm_.get(tcb::kStageWr);
  std::uint32_t used = shm_.get(tcb::kStageUsed);
  if (used == 0) {
    wr = 0;
    shm_.set(tcb::kStageRd, 0);
  }

  // `data` points into sim memory (the rx buffer); compute its sim address
  // from the node's base pointer so the copy is charged properly.
  const std::uint32_t src_addr =
      static_cast<std::uint32_t>(data - node.mem(0, 1));

  std::uint32_t first = std::min(len, cap - wr);
  if (cfg_.in_place) {
    // Zero-copy mode: bytes move for simulation fidelity, free of charge.
    std::memcpy(node.mem(base + wr, first), node.mem(src_addr, first), first);
    if (first < len) {
      std::memcpy(node.mem(base, len - first),
                  node.mem(src_addr + first, len - first), len - first);
    }
  } else {
    *cycles += sim::memops::copy(node, base + wr, src_addr, first);
    if (first < len) {
      *cycles += sim::memops::copy(node, base, src_addr + first, len - first);
    }
  }
  wr = (wr + len) % cap;
  used += len;
  shm_.set(tcb::kStageWr, wr);
  shm_.set(tcb::kStageUsed, used);
}

sim::Sub<void> TcpConnection::process_packet(const net::RxDesc& d) {
  sim::Node& node = link_.self().node();
  const std::uint32_t ip_off = link_.rx_ip_offset();
  if (d.len < ip_off) {
    link_.release(d);
    co_return;
  }
  const std::uint8_t* p = node.mem(d.addr + ip_off, d.len - ip_off);
  ++stats_.segments_in;

  const auto ip = decode_ip({p, d.len - ip_off});
  if (!ip || ip->protocol != kIpProtoTcp || ip->dst != cfg_.local_ip) {
    link_.release(d);
    co_return;
  }
  const std::uint32_t seg_len = ip->total_len - kIpHeaderLen;
  const auto tcp = decode_tcp({p + kIpHeaderLen, seg_len});
  if (!tcp || tcp->dst_port != cfg_.local_port ||
      (state_ != TcpState::Closed && tcp->src_port != cfg_.remote_port)) {
    link_.release(d);
    co_return;
  }
  const std::uint32_t plen =
      seg_len - static_cast<std::uint32_t>(kTcpHeaderLen);

  // Header prediction (RFC 1185-style fast path): established, plain
  // ACK(+data), exactly the next expected sequence number.
  const bool predicted =
      state_ == TcpState::Established && tcp->flags.ack && !tcp->flags.syn &&
      !tcp->flags.fin && !tcp->flags.rst && tcp->seq == rcv_nxt();
  if (predicted) {
    ++stats_.fastpath_hits;
  } else {
    ++stats_.slowpath;
  }
  co_await link_.self().compute(predicted
                                    ? node.cost().tcp_fastpath_overhead
                                    : node.cost().tcp_slowpath_overhead);

  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    const sim::Cycles ck =
        node.cost().udp_cksum_setup +
        sim::memops::cksum(node, d.addr + ip_off + kIpHeaderLen, seg_len,
                           &dummy);
    co_await link_.self().compute(ck);
    std::uint32_t acc = pseudo_header_sum(
        ip->src, ip->dst, kIpProtoTcp, static_cast<std::uint16_t>(seg_len));
    acc = util::cksum_partial({p + kIpHeaderLen, seg_len}, acc);
    if (util::fold16(acc) != 0xffff) {
      ++stats_.cksum_failures;
      link_.release(d);
      co_return;
    }
  }

  shm_.set(tcb::kLibBusy, 1);
  bool ack_needed = false;

  // --- ACK processing ---
  if (tcp->flags.ack && state_ != TcpState::Closed) {
    if (seq_lt(snd_una(), tcp->ack) && seq_le(tcp->ack, snd_nxt_)) {
      set_snd_una(tcp->ack);
      while (!retx_.empty()) {
        const RetxSegment& seg = retx_.front();
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(seg.payload.size()) +
            ((seg.flags.syn || seg.flags.fin) ? 1 : 0);
        if (seq_le(seg.seq + consumed, tcp->ack)) {
          retx_.pop_front();
        } else {
          break;
        }
      }
    }
    if (seq_le(tcp->ack, snd_nxt_)) {
      shm_.set(tcb::kSndWnd, tcp->window);
    }
  }

  // --- state transitions ---
  switch (state_) {
    case TcpState::Closed:
      if (listening_ && tcp->flags.syn && !tcp->flags.ack) {
        set_rcv_nxt(tcp->seq + 1);
        set_state(TcpState::SynRcvd);
        TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        shm_.set(tcb::kLibBusy, 0);
        link_.release(d);
        co_await send_segment(synack, {}, /*queue_retx=*/true);
        co_return;
      }
      break;
    case TcpState::SynSent:
      if (tcp->flags.syn && tcp->flags.ack && tcp->ack == cfg_.iss + 1) {
        set_rcv_nxt(tcp->seq + 1);
        set_state(TcpState::Established);
        ack_needed = true;
      }
      break;
    case TcpState::SynRcvd:
      if (tcp->flags.ack && tcp->ack == snd_nxt_) {
        set_state(TcpState::Established);
      }
      [[fallthrough]];
    case TcpState::Established:
    case TcpState::CloseWait:
    case TcpState::FinSent: {
      // --- data ---
      if (plen > 0 && state_ != TcpState::SynRcvd) {
        const std::uint32_t used = shm_.get(tcb::kStageUsed);
        const std::uint32_t cap = shm_.get(tcb::kStageCap);
        if (tcp->seq == rcv_nxt() && used + plen <= cap) {
          sim::Cycles cycles = 0;
          stage_append(p + kSegHdrLen, plen, &cycles);
          set_rcv_nxt(rcv_nxt() + plen);
          co_await link_.self().compute(cycles);
        } else {
          ++stats_.ooo_dropped;  // duplicate or out of order: re-ACK only
        }
        ack_needed = true;
      }
      // --- FIN ---
      if (tcp->flags.fin && tcp->seq + plen == rcv_nxt()) {
        set_rcv_nxt(rcv_nxt() + 1);
        peer_fin_seen_ = true;
        if (state_ == TcpState::Established) set_state(TcpState::CloseWait);
        ack_needed = true;
      }
      break;
    }
  }

  shm_.set(tcb::kLibBusy, 0);
  link_.release(d);
  if (ack_needed) co_await send_ack();
}

sim::Sub<bool> TcpConnection::pump(sim::Cycles timeout) {
  auto d = co_await link_.recv_for(timeout);
  if (!d) co_return false;
  co_await process_packet(*d);
  co_return true;
}

sim::Sub<bool> TcpConnection::connect() {
  listening_ = false;
  set_state(TcpState::SynSent);
  TcpFlags syn;
  syn.syn = true;
  co_await send_segment(syn, {}, /*queue_retx=*/true);
  while (state_ != TcpState::Established) {
    const bool got = co_await pump(cfg_.rto);
    if (!got) {
      const bool alive = co_await retransmit();
      if (!alive) co_return false;
    }
  }
  co_return true;
}

sim::Sub<bool> TcpConnection::accept() {
  listening_ = true;
  while (state_ != TcpState::Established) {
    const bool got = co_await pump(cfg_.rto);
    if (!got && state_ == TcpState::SynRcvd) {
      const bool alive = co_await retransmit();
      if (!alive) co_return false;
    }
  }
  listening_ = false;
  co_return true;
}

sim::Sub<bool> TcpConnection::write_from(std::uint32_t app_addr,
                                         std::uint32_t len) {
  sim::Node& node = link_.self().node();
  const std::uint32_t end_seq = snd_nxt_ + len;
  std::uint32_t sent = 0;

  while (seq_lt(snd_una(), end_seq)) {
    // Fill the window.
    while (sent < len) {
      const std::uint32_t inflight = snd_nxt_ - snd_una();
      const std::uint32_t wnd = std::min(snd_wnd(), cfg_.window);
      if (inflight >= wnd) break;
      const std::uint32_t chunk =
          std::min({cfg_.mss, len - sent, wnd - inflight});
      if (chunk == 0) break;
      const std::uint8_t* src = node.mem(app_addr + sent, chunk);
      TcpFlags flags;
      flags.ack = true;
      flags.psh = sent + chunk == len;
      const bool sent_ok =
          co_await send_segment(flags, {src, chunk}, /*queue_retx=*/true);
      if (!sent_ok) co_return false;
      sent += chunk;
    }

    // Wait for ACK progress.
    if (handler_attached_) {
      const std::uint32_t before = snd_una();
      const sim::Cycles deadline = node.now() + cfg_.rto;
      while (snd_una() == before) {
        if (auto d = link_.try_recv()) {
          co_await process_packet(*d);  // handler fallback path
          break;
        }
        if (node.now() >= deadline) break;
        co_await link_.self().compute(node.cost().poll_iteration);
      }
      if (snd_una() == before) {
        // A segment may have landed between the last poll and the
        // deadline check; process it instead of discarding the dequeued
        // descriptor (which would lose the segment and leak its buffer).
        if (auto d = link_.try_recv()) {
          co_await process_packet(*d);
        } else {
          const bool alive = co_await retransmit();
          if (!alive) co_return false;
        }
      }
    } else {
      const bool got = co_await pump(cfg_.rto);
      if (!got) {
        const bool alive = co_await retransmit();
        if (!alive) co_return false;
      }
    }
  }
  co_return true;
}

sim::Sub<std::uint32_t> TcpConnection::read_into(std::uint32_t app_addr,
                                                 std::uint32_t max_len) {
  sim::Node& node = link_.self().node();
  for (;;) {
    const std::uint32_t used = shm_.get(tcb::kStageUsed);
    if (used > 0) {
      const std::uint32_t base = shm_.get(tcb::kStageBase);
      const std::uint32_t cap = shm_.get(tcb::kStageCap);
      std::uint32_t rd = shm_.get(tcb::kStageRd);
      const std::uint32_t n = std::min(used, max_len);
      const std::uint32_t first = std::min(n, cap - rd);
      sim::Cycles cycles = sim::memops::copy(node, app_addr, base + rd, first);
      if (first < n) {
        cycles +=
            sim::memops::copy(node, app_addr + first, base, n - first);
      }
      rd = (rd + n) % cap;
      shm_.set(tcb::kStageRd, rd);
      shm_.set(tcb::kStageUsed, used - n);
      if (used - n == 0) {
        shm_.set(tcb::kStageRd, 0);
        shm_.set(tcb::kStageWr, 0);
      }
      if (handler_attached_) {
        cycles += node.cost().tcp_handler_read_overhead *
                  ((n + cfg_.mss - 1) / cfg_.mss);
      }
      co_await link_.self().compute(cycles);
      // Window update if consumption re-opened it substantially.
      if (advertised_window() >= last_advertised_wnd_ + cfg_.mss) {
        co_await send_ack();
      }
      co_return n;
    }
    if (peer_fin_seen_) co_return 0;

    if (handler_attached_) {
      if (auto d = link_.try_recv()) {
        co_await process_packet(*d);
      } else {
        co_await link_.self().compute(node.cost().poll_iteration);
      }
    } else {
      const bool got = co_await pump(cfg_.rto);
      if (!got && !retx_.empty()) {
        const bool alive = co_await retransmit();
        if (!alive) co_return 0;
      }
    }
  }
}

sim::Sub<std::uint32_t> TcpConnection::read_discard(std::uint32_t max_len) {
  sim::Node& node = link_.self().node();
  for (;;) {
    const std::uint32_t used = shm_.get(tcb::kStageUsed);
    if (used > 0) {
      const std::uint32_t cap = shm_.get(tcb::kStageCap);
      std::uint32_t rd = shm_.get(tcb::kStageRd);
      const std::uint32_t n = std::min(used, max_len);
      rd = (rd + n) % cap;
      shm_.set(tcb::kStageRd, rd);
      shm_.set(tcb::kStageUsed, used - n);
      if (used - n == 0) {
        shm_.set(tcb::kStageRd, 0);
        shm_.set(tcb::kStageWr, 0);
      }
      if (handler_attached_) {
        co_await link_.self().compute(node.cost().tcp_handler_read_overhead *
                                      ((n + cfg_.mss - 1) / cfg_.mss));
      }
      if (advertised_window() >= last_advertised_wnd_ + cfg_.mss) {
        co_await send_ack();
      }
      co_return n;
    }
    if (peer_fin_seen_) co_return 0;

    if (handler_attached_) {
      if (auto d = link_.try_recv()) {
        co_await process_packet(*d);
      } else {
        co_await link_.self().compute(node.cost().poll_iteration);
      }
    } else {
      const bool got = co_await pump(cfg_.rto);
      if (!got && !retx_.empty()) {
        const bool alive = co_await retransmit();
        if (!alive) co_return 0;
      }
    }
  }
}

sim::Sub<void> TcpConnection::close() {
  if (state_ == TcpState::Established || state_ == TcpState::CloseWait ||
      state_ == TcpState::SynRcvd) {
    TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    co_await send_segment(fin, {}, /*queue_retx=*/true);
    set_state(TcpState::FinSent);
  }
  int rounds = 0;
  while ((seq_lt(snd_una(), snd_nxt_) || !peer_fin_seen_) &&
         rounds < cfg_.max_retries) {
    const bool got = co_await pump(cfg_.rto);
    if (!got) {
      ++rounds;
      const bool alive = co_await retransmit();
      if (!alive) co_return;  // aborted — already fully torn down
    }
  }
  retx_.clear();  // give up on anything the peer never acknowledged
  set_state(TcpState::Closed);
}

}  // namespace ash::proto
