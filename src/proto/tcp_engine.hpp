// Event-driven multi-connection TCP: one process, one link, many flows.
//
// TcpConnection (tcp.hpp) is the paper's shape — one process per
// connection, a blocking read/write API, and a shared TCB so a downloaded
// handler can run the fast path. That shape cannot scale to a c10k
// workload inside the simulator: every process owns a fixed 1 MB segment
// and a node holds 16 MB, so ten thousand blocking connections are
// impossible by construction. TcpEngine is the classic answer — an
// event loop multiplexing every connection over a single link binding:
//
//  * a connection table sharded by the same flow hash the multi-queue
//    receive path steers on (net::SteeringPolicy::flow_channel), so an
//    RX queue's segments land in a shard owned by that queue's CPU;
//  * a TcpListener with a SYN backlog that spawns per-connection TCBs on
//    inbound SYNs, instead of the library's one-pre-created-TCB accept();
//  * per-flow payload buffers in host memory (the sim charges the copy
//    cycles, the bytes never occupy the 1 MB segment), which is what
//    makes ten thousand concurrent TCBs fit;
//  * one shared timer wheel for every flow's retransmission / persist /
//    TIME_WAIT timers, cookie-keyed by (conn id << 2 | kind);
//  * segments for which no flow state exists answered with a RST, like
//    a real host (the library's connections predate their peer's first
//    segment, so it could afford silence — a listener cannot).
//
// Protocol behaviour (RFC 6298 adaptive RTO with backoff, RFC 5681
// congestion window + dup-ACK fast retransmit, RST validation,
// TIME_WAIT, out-of-order reassembly, zero-window persist probes)
// reuses the exact primitives TcpConnection does (tcp_control.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/rx_queue.hpp"
#include "proto/headers.hpp"
#include "proto/link.hpp"
#include "proto/tcp.hpp"
#include "proto/tcp_control.hpp"
#include "sim/timer_wheel.hpp"

namespace ash::proto {

/// Identity of one flow from the engine's point of view. The local IP is
/// engine-wide, so it is not part of the key.
struct FlowKey {
  Ipv4Addr remote_ip;
  std::uint16_t remote_port = 0;
  std::uint16_t local_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// The flow label the receive path and the connection table share: both
/// sides hash the 4-tuple the same way, so SteeringPolicy::pick sends a
/// flow's segments to the RX queue that owns the flow's table shard.
inline int flow_channel(Ipv4Addr local_ip, const FlowKey& key) {
  return net::SteeringPolicy::flow_channel(local_ip.value,
                                           key.remote_ip.value,
                                           key.local_port, key.remote_port);
}

class TcpEngine {
 public:
  using ConnId = std::uint32_t;

  struct Config {
    Ipv4Addr local_ip;
    std::uint32_t mss = 1456;
    std::uint32_t window = 8192;
    bool checksum = true;
    sim::Cycles rto = sim::us(100000.0);
    sim::Cycles min_rto = sim::us(25000.0);
    sim::Cycles max_rto = sim::us(2000000.0);
    sim::Cycles time_wait = sim::us(10000.0);
    /// Half-closed give-up: our FIN is acknowledged but the peer never
    /// sends its own (FIN_WAIT_2 in RFC terms).
    sim::Cycles fin_wait = sim::us(1000000.0);
    int max_retries = 8;
    bool reassemble = true;
    std::uint32_t ooo_limit = 0;     // bytes; 0 = 2 * window
    /// Host-side receive buffer cap per connection; doubles as the
    /// advertised window bound.
    std::uint32_t rcv_limit = 16384;
    std::uint32_t iss = 1;           // per-flow ISS derives from this
    /// Answer segments addressed to no flow and no listener with a RST.
    bool rst_unknown = true;
    /// Connection-table shards; align with the RX queue count so each
    /// queue's flows hash into its own shard.
    std::size_t shards = 4;
    net::SteeringPolicy steering{};
    sim::Cycles wheel_granularity = sim::us(1000.0);
    std::size_t wheel_buckets = 256;
    /// Max frames drained per step before timers/output run again.
    std::uint32_t rx_batch = 64;
  };

  /// Per-connection upcalls. All fire from within step(); they may call
  /// back into the data-plane API (write/read/close) freely.
  struct Callbacks {
    std::function<void(ConnId)> on_established;
    /// New bytes are readable, or EOF arrived (readable()==0 + eof()).
    std::function<void(ConnId)> on_readable;
    /// The TCB is gone (orderly close, RST, or retry exhaustion); the id
    /// is invalid after this returns.
    std::function<void(ConnId)> on_closed;
  };

  struct ListenConfig {
    Callbacks callbacks;
    /// Connections allowed in SYN_RCVD at once; SYNs beyond it dropped.
    std::uint32_t backlog = 128;
  };

  /// Passive-open endpoint: spawns a TCB per acceptable inbound SYN.
  struct TcpListener {
    std::uint16_t port = 0;
    ListenConfig cfg;
    std::uint32_t pending = 0;        // TCBs currently in SYN_RCVD
    std::uint64_t accepted = 0;       // reached ESTABLISHED
    std::uint64_t backlog_drops = 0;  // SYNs dropped at full backlog
  };

  struct Stats {
    std::uint64_t segments_in = 0;
    std::uint64_t segments_out = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t rto_timeouts = 0;
    std::uint64_t dup_segments = 0;
    std::uint64_t ooo_buffered = 0;
    std::uint64_t ooo_reassembled = 0;
    std::uint64_t ooo_dropped = 0;
    std::uint64_t rsts_received = 0;
    std::uint64_t rsts_ignored = 0;
    std::uint64_t rsts_sent = 0;
    std::uint64_t persist_probes = 0;
    std::uint64_t window_updates = 0;
    std::uint64_t cksum_failures = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conns_opened = 0;    // active opens issued
    std::uint64_t conns_accepted = 0;  // passive opens established
    std::uint64_t conns_closed = 0;    // TCBs destroyed (any cause)
    std::uint64_t syn_backlog_drops = 0;
    std::uint64_t unknown_flow_rsts = 0;
    std::uint64_t rcv_overflow_drops = 0;  // in-order but rcvbuf full
    std::uint64_t timewait_drops = 0;
  };

  TcpEngine(Link& link, const Config& config);
  ~TcpEngine();
  TcpEngine(const TcpEngine&) = delete;
  TcpEngine& operator=(const TcpEngine&) = delete;

  Link& link() noexcept { return link_; }
  const Config& config() const noexcept { return cfg_; }
  const Stats& stats() const noexcept { return stats_; }

  // ---- control plane ----

  /// Start listening on `port`. One listener per port.
  TcpListener& listen(std::uint16_t port, ListenConfig cfg);

  /// Active open: queues a SYN (sent by the next step()) and returns the
  /// new connection's id immediately. 0 on failure (port collision).
  ConnId connect(Ipv4Addr remote_ip, std::uint16_t remote_port,
                 std::uint16_t local_port, Callbacks callbacks);

  /// Graceful close: FIN once the send buffer drains.
  void close(ConnId id);
  /// Abortive close: RST now, TCB destroyed this step.
  void abort(ConnId id);

  // ---- data plane (host-side byte streams) ----

  /// Append bytes to the connection's send buffer; transmitted as window
  /// allows. False if the id is unknown or past its sending states.
  bool write(ConnId id, std::span<const std::uint8_t> data);

  /// Copy up to `max_len` received bytes out (host memory). Reopening
  /// the receive window may queue a window-update ACK.
  std::size_t read(ConnId id, std::uint8_t* out, std::size_t max_len);

  std::size_t readable(ConnId id) const;
  /// True once the peer's FIN is processed and the buffer is drained.
  bool at_eof(ConnId id) const;
  std::optional<TcpState> state(ConnId id) const;
  std::size_t unsent(ConnId id) const;

  // ---- event loop ----

  /// One iteration: flush pending output, wait up to `max_wait` for a
  /// frame (bounded by the next timer deadline), drain a batch, service
  /// timers, flush again. Returns true if any frame was processed.
  sim::Sub<bool> step(sim::Cycles max_wait);

  /// Run step() until `done` is set or `deadline` (absolute sim time,
  /// 0 = no deadline) passes.
  sim::Sub<void> run(const bool& done, sim::Cycles deadline = 0,
                     sim::Cycles idle_wait = sim::us(500.0));

  // ---- introspection ----

  std::size_t open_connections() const noexcept { return by_id_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(ConnId id) const;
  std::vector<std::size_t> shard_sizes() const;

 private:
  struct RetxSegment {
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> payload;
    TcpFlags flags;
    int retries = 0;
  };

  enum TimerKind : std::uint64_t {
    kTimerRetx = 0,
    kTimerPersist = 1,
    kTimerTimeWait = 2,  // also the FIN_WAIT_2 give-up
  };

  struct Tcb {
    ConnId id = 0;
    FlowKey key;
    std::size_t shard = 0;
    TcpState state = TcpState::Closed;
    TcpListener* listener = nullptr;  // set on passive opens until est.
    Callbacks cbs;

    std::uint32_t snd_nxt = 0;
    std::uint32_t snd_una = 0;
    std::uint32_t rcv_nxt = 0;
    std::uint32_t peer_wnd = 0;
    std::uint32_t last_adv_wnd = 0;
    std::uint16_t next_ident = 1;

    std::deque<std::uint8_t> sndbuf;  // queued, not yet segmented
    std::deque<std::uint8_t> rcvbuf;  // in-order, not yet read
    std::deque<RetxSegment> retx;
    OooBuffer ooo;

    RttEstimator rtt;
    CongestionWindow cc;
    sim::Cycles rto_cur = 0;
    std::uint32_t dup_acks = 0;
    bool rtt_pending = false;
    std::uint32_t rtt_seq = 0;
    sim::Cycles rtt_sent_at = 0;

    sim::TimerWheel::Id retx_timer = 0;
    sim::TimerWheel::Id persist_timer = 0;
    sim::TimerWheel::Id timewait_timer = 0;

    bool syn_queued = false;      // active open: SYN not yet sent
    bool synack_queued = false;   // passive open: SYN/ACK not yet sent
    bool fin_pending = false;     // close() called; FIN after sndbuf
    bool fin_sent = false;
    bool peer_fin = false;
    bool readable_eof_signaled = false;
    std::uint32_t acks_owed = 0;  // distinct pure ACKs to emit
    bool retx_fired = false;      // RTO expired; resend + count retry
    bool fast_retx_pending = false;
    bool persist_fire = false;
    bool dirty = false;           // queued on the flush list
    bool dead = false;            // queued for destruction
  };

  struct FlowHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return static_cast<std::size_t>(net::SteeringPolicy::flow_channel(
          0, k.remote_ip.value, k.local_port, k.remote_port));
    }
  };

  Tcb* find(ConnId id) noexcept;
  const Tcb* find(ConnId id) const noexcept;
  Tcb* lookup(const FlowKey& key) noexcept;
  Tcb& create_tcb(const FlowKey& key, Callbacks cbs);
  void destroy_tcb(Tcb& t);      // deferred: marks dead, reaped per step
  void reap_dead();
  void mark_dirty(Tcb& t);

  std::uint64_t cookie(const Tcb& t, TimerKind kind) const {
    return (static_cast<std::uint64_t>(t.id) << 2) | kind;
  }
  void cancel_timer(sim::TimerWheel::Id& id);
  void arm_retx_timer(Tcb& t);

  std::uint32_t adv_window(const Tcb& t) const;
  std::uint32_t ooo_limit() const {
    return cfg_.ooo_limit ? cfg_.ooo_limit : 2 * cfg_.window;
  }

  /// Parse + dispatch one frame. Pure state mutation: all transmission
  /// is deferred to the flush pass (segments batch per step).
  void process_frame(const net::RxDesc& d, sim::Cycles* cycles);
  void process_segment(Tcb& t, const TcpHeader& tcp,
                       std::span<const std::uint8_t> payload,
                       sim::Cycles* cycles);
  void process_rst(Tcb& t, const TcpHeader& tcp);
  void process_ack(Tcb& t, const TcpHeader& tcp, std::uint32_t plen);
  void process_data(Tcb& t, const TcpHeader& tcp,
                    std::span<const std::uint8_t> payload,
                    sim::Cycles* cycles);
  void handle_syn(const FlowKey& key, const TcpHeader& tcp);
  void enter_established(Tcb& t);
  void enter_time_wait(Tcb& t);
  void maybe_finish_close(Tcb& t);
  void abort_flow(Tcb& t, bool rst_peer);
  void signal_readable(Tcb& t);

  void service_timers();
  sim::Sub<void> flush();
  sim::Sub<void> pump_tcb(Tcb& t);
  sim::Sub<bool> send_flow(Tcb& t, TcpFlags flags,
                           std::span<const std::uint8_t> payload,
                           bool queue_retx);
  sim::Sub<bool> resend_front(Tcb& t);

  /// RST owed to a segment that matched no flow (and no listener).
  struct RawRst {
    FlowKey key;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    bool with_ack = false;
  };
  sim::Sub<void> send_raw_rst(const RawRst& r);

  Link& link_;
  Config cfg_;
  Stats stats_;

  std::vector<std::unordered_map<FlowKey, std::unique_ptr<Tcb>, FlowHash>>
      shards_;
  std::unordered_map<ConnId, Tcb*> by_id_;
  std::unordered_map<std::uint16_t, TcpListener> listeners_;
  ConnId next_id_ = 1;

  sim::TimerWheel wheel_;
  std::vector<ConnId> dirty_;
  std::vector<ConnId> dead_;
  std::vector<RawRst> raw_rsts_;  // unknown-flow RSTs, sent during flush
};

}  // namespace ash::proto
