// Dynamic protocol composition (Section II-C).
//
// "Whereas dynamic ILP provides modularity in terms of pipes ..., dynamic
// protocol composition provides modularity in terms of entire protocols
// (only one IP routine has to be written, and can be composed with UDP or
// TCP)." The full system is TM-552; this is the modest runtime-composition
// core: protocol layers are self-contained header codecs that a stack
// assembles at runtime in any order, with all headers built into one
// staging buffer (single traversal) on send and peeled outermost-first on
// receive.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/link.hpp"

namespace ash::proto {

/// One protocol layer fragment.
struct LayerSpec {
  std::string name;
  std::uint32_t header_len = 0;

  /// Fill this layer's header; `payload_len` counts everything inside it
  /// (inner headers + application data).
  std::function<void(std::span<std::uint8_t> header,
                     std::uint32_t payload_len)>
      encode;

  /// Validate/consume this layer's header on receive; return false to
  /// drop the packet. May keep per-connection state (sequence numbers...).
  std::function<bool(std::span<const std::uint8_t> header,
                     std::uint32_t payload_len)>
      decode;

  /// Per-packet processing cost of this layer.
  sim::Cycles cost = sim::us(2.0);
};

/// A runtime-composed stack over a link. Layer 0 is outermost (closest to
/// the wire).
class ProtocolStack {
 public:
  explicit ProtocolStack(Link& link) : link_(link) {}

  /// Append a layer *inside* the existing ones; returns its index.
  int push_inner(LayerSpec spec);

  std::uint32_t total_header_len() const noexcept;

  /// Send application data at `app_addr`: one staging copy, then each
  /// layer's header built innermost-out.
  sim::Sub<bool> send_from(std::uint32_t app_addr, std::uint32_t len);

  struct Received {
    std::uint32_t payload_addr = 0;
    std::uint32_t payload_len = 0;
    net::RxDesc desc;  // release via stack.release()
  };

  /// Receive one packet that every layer accepts (drops keep waiting);
  /// nullopt on timeout.
  sim::Sub<std::optional<Received>> recv(sim::Cycles timeout);

  void release(const Received& r) { link_.release(r.desc); }

  std::uint64_t drops() const noexcept { return drops_; }

 private:
  Link& link_;
  std::vector<LayerSpec> layers_;
  std::uint64_t drops_ = 0;
};

// --- a small library of composable layers for tests and examples ---

/// Sequenced delivery: stamps a 4-byte sequence number; receiver accepts
/// only the next expected value (drops duplicates/reordering).
LayerSpec make_seq_layer();

/// Integrity: 2-byte Internet checksum over the inner bytes.
LayerSpec make_cksum_layer();

/// Port multiplexing: 2-byte destination port; receiver accepts its own.
LayerSpec make_port_layer(std::uint16_t tx_port, std::uint16_t rx_port);

}  // namespace ash::proto
