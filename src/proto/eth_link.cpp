#include "proto/eth_link.hpp"

#include <stdexcept>

#include "proto/headers.hpp"
#include "sim/node.hpp"

namespace ash::proto {

EthLink::EthLink(sim::Process& self, net::EthernetDevice& dev,
                 const Config& config)
    : self_(self), dev_(dev), cfg_(config) {
  const sim::MemSegment& seg = self.segment();
  const std::uint32_t rx_bytes = cfg_.rx_buffers * cfg_.buf_size;
  tx_size_ = 64 * 1024;
  if (rx_bytes + tx_size_ > seg.size / 2) {
    throw std::length_error("EthLink: buffer pool exceeds segment half");
  }
  pool_base_ = seg.base + seg.size / 2;

  dpf::Filter filter;
  filter.atoms.push_back(dpf::atom_be16(12, kEtherTypeIp));
  for (const auto& atom : cfg_.extra_atoms) filter.atoms.push_back(atom);
  endpoint_ = dev.attach(self, std::move(filter));

  for (std::uint32_t i = 0; i < cfg_.rx_buffers; ++i) {
    dev.supply_buffer(endpoint_, pool_base_ + i * cfg_.buf_size,
                      cfg_.buf_size);
  }
  tx_base_ = pool_base_ + rx_bytes;
  carve_next_ = tx_base_ + tx_size_;
  dev.set_interrupt_mode(endpoint_, cfg_.mode == RecvMode::Interrupt);
}

sim::Sub<net::RxDesc> EthLink::recv() {
  for (;;) {
    if (auto d = dev_.poll(endpoint_)) {
      co_await self_.compute(self_.node().cost().an2_user_recv_overhead);
      co_return *d;
    }
    if (cfg_.mode == RecvMode::Polling) {
      co_await self_.compute(self_.node().cost().poll_iteration);
    } else {
      co_await dev_.arrival_channel(endpoint_).wait(self_);
    }
  }
}

sim::Sub<std::optional<net::RxDesc>> EthLink::recv_for(sim::Cycles timeout) {
  const sim::Cycles deadline = self_.node().now() + timeout;
  for (;;) {
    if (auto d = dev_.poll(endpoint_)) {
      co_await self_.compute(self_.node().cost().an2_user_recv_overhead);
      co_return d;
    }
    if (self_.node().now() >= deadline) co_return std::nullopt;
    if (cfg_.mode == RecvMode::Polling) {
      co_await self_.compute(self_.node().cost().poll_iteration);
    } else {
      const sim::Cycles left = deadline - self_.node().now();
      const bool got_token =
          co_await dev_.arrival_channel(endpoint_).wait_for(self_, left);
      if (!got_token) co_return std::nullopt;
    }
  }
}

void EthLink::release(const net::RxDesc& d) {
  const std::uint32_t slot = (d.addr - pool_base_) / cfg_.buf_size;
  dev_.return_buffer(endpoint_, pool_base_ + slot * cfg_.buf_size,
                     cfg_.buf_size);
}

std::uint32_t EthLink::tx_alloc_ip(std::uint32_t len) {
  const std::uint32_t total =
      static_cast<std::uint32_t>(kEthHeaderLen) + len;
  if (total > tx_size_) throw std::length_error("EthLink: tx_alloc too large");
  if (tx_next_ + total > tx_size_) tx_next_ = 0;
  const std::uint32_t frame = tx_base_ + tx_next_;
  tx_next_ += (total + 3) & ~3u;
  return frame + static_cast<std::uint32_t>(kEthHeaderLen);
}

sim::Sub<bool> EthLink::send_ip(std::uint32_t ip_addr, std::uint32_t ip_len) {
  const std::uint32_t frame =
      ip_addr - static_cast<std::uint32_t>(kEthHeaderLen);
  std::uint8_t* f = self_.node().mem(
      frame, static_cast<std::uint32_t>(kEthHeaderLen) + ip_len);
  if (f == nullptr) co_return false;
  EthHeader h;
  h.dst = cfg_.peer_mac;
  h.src = cfg_.local_mac;
  h.ethertype = kEtherTypeIp;
  encode_eth({f, kEthHeaderLen}, h);
  co_await self_.syscall(dev_.config().tx_kernel_work +
                         self_.node().cost().an2_user_send_overhead);
  co_return dev_.send_from(frame,
                           static_cast<std::uint32_t>(kEthHeaderLen) + ip_len);
}

std::uint32_t EthLink::carve(std::uint32_t len) {
  const std::uint32_t addr = (carve_next_ + 15) & ~15u;
  const sim::MemSegment& seg = self_.segment();
  if (static_cast<std::uint64_t>(addr) + len > seg.base + seg.size) {
    throw std::length_error("EthLink: carve exhausted the segment");
  }
  carve_next_ = addr + len;
  return addr;
}

}  // namespace ash::proto
