// Common wire-level types for the user-level protocol library.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ash::proto {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  static MacAddr broadcast() {
    return {{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}};
  }
  bool is_broadcast() const {
    for (auto b : bytes) {
      if (b != 0xff) return false;
    }
    return true;
  }
  friend bool operator==(const MacAddr&, const MacAddr&) = default;
};

struct Ipv4Addr {
  std::uint32_t value = 0;  // host byte order

  static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
    return {static_cast<std::uint32_t>(a) << 24 |
            static_cast<std::uint32_t>(b) << 16 |
            static_cast<std::uint32_t>(c) << 8 | d};
  }
  std::string to_string() const;
  friend bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;
};

// EtherTypes.
inline constexpr std::uint16_t kEtherTypeIp = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeRarp = 0x8035;

// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kTcpHeaderLen = 20;

}  // namespace ash::proto
