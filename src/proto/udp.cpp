#include "proto/udp.hpp"

#include <algorithm>
#include <cstring>

#include "sim/node.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

namespace {
constexpr std::uint32_t kHdrLen =
    static_cast<std::uint32_t>(kIpHeaderLen + kUdpHeaderLen);
}

std::uint32_t UdpSocket::finish_packet(std::uint32_t pkt_addr,
                                       std::uint16_t len) {
  sim::Node& node = link_.self().node();
  const std::uint32_t total = kHdrLen + len;
  std::uint8_t* pkt = node.mem(pkt_addr, total);

  IpHeader ip;
  ip.protocol = kIpProtoUdp;
  ip.src = opt_.local_ip;
  ip.dst = opt_.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = next_ident_++;
  encode_ip({pkt, kIpHeaderLen}, ip);

  UdpHeader udp;
  udp.src_port = opt_.local_port;
  udp.dst_port = opt_.remote_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderLen + len);
  udp.checksum = 0;
  encode_udp({pkt + kIpHeaderLen, kUdpHeaderLen}, udp);

  if (opt_.checksum) {
    udp.checksum = transport_checksum(
        opt_.local_ip, opt_.remote_ip, kIpProtoUdp,
        {pkt + kIpHeaderLen, static_cast<std::size_t>(udp.length)});
    encode_udp({pkt + kIpHeaderLen, kUdpHeaderLen}, udp);
  }
  return total;
}

sim::Sub<bool> UdpSocket::send_from(std::uint32_t app_addr,
                                    std::uint16_t len) {
  sim::Node& node = link_.self().node();
  const std::uint32_t pkt = link_.tx_alloc_ip(kHdrLen + len);

  // Stage the payload behind the headers (the library's one send-side
  // copy), then optionally checksum it — separate passes, like the base
  // library in the paper.
  sim::Cycles cycles =
      sim::memops::copy(node, pkt + kHdrLen, app_addr, len);
  if (opt_.checksum) {
    std::uint32_t dummy_acc = 0;
    cycles += node.cost().udp_cksum_setup;
    cycles += sim::memops::cksum(node, pkt + kHdrLen, len, &dummy_acc);
  }
  cycles += node.cost().udp_send_overhead;  // header build + buffer mgmt
  (void)finish_packet(pkt, len);
  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, kHdrLen + len);
  co_return sent;
}

sim::Sub<bool> UdpSocket::send(std::span<const std::uint8_t> payload) {
  sim::Node& node = link_.self().node();
  const auto len = static_cast<std::uint16_t>(payload.size());
  const std::uint32_t pkt = link_.tx_alloc_ip(kHdrLen + len);
  std::memcpy(node.mem(pkt + kHdrLen, len), payload.data(), payload.size());
  sim::Cycles cycles = node.cost().udp_send_overhead;
  if (opt_.checksum) {
    std::uint32_t dummy_acc = 0;
    cycles += node.cost().udp_cksum_setup;
    cycles += sim::memops::cksum(node, pkt + kHdrLen, len, &dummy_acc);
  }
  (void)finish_packet(pkt, len);
  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, kHdrLen + len);
  co_return sent;
}

std::optional<UdpSocket::Datagram> UdpSocket::parse(const net::RxDesc& d) {
  sim::Node& node = link_.self().node();
  const std::uint32_t off = link_.rx_ip_offset();
  if (d.len < off) return std::nullopt;
  const std::uint8_t* p = node.mem(d.addr + off, d.len - off);
  if (p == nullptr) return std::nullopt;
  const auto ip = decode_ip({p, d.len - off});
  if (!ip || ip->protocol != kIpProtoUdp || ip->dst != opt_.local_ip) {
    return std::nullopt;
  }
  const std::size_t seg_len = ip->total_len - kIpHeaderLen;
  const auto udp = decode_udp({p + kIpHeaderLen, seg_len});
  if (!udp || udp->dst_port != opt_.local_port) return std::nullopt;

  Datagram out;
  out.payload_addr =
      d.addr + off + static_cast<std::uint32_t>(kIpHeaderLen + kUdpHeaderLen);
  out.payload_len = static_cast<std::uint16_t>(udp->length - kUdpHeaderLen);
  out.src_port = udp->src_port;
  out.desc = d;
  return out;
}

sim::Sub<UdpSocket::Datagram> UdpSocket::recv_in_place() {
  sim::Node& node = link_.self().node();
  for (;;) {
    const net::RxDesc d = co_await link_.recv();
    co_await link_.self().compute(node.cost().udp_recv_overhead);
    auto dg = parse(d);
    if (!dg) {
      link_.release(d);
      continue;
    }
    if (opt_.checksum) {
      // Verify over the UDP segment (header + payload), a separate pass.
      // With the transmitted checksum field in place, the ones'-complement
      // sum over pseudo-header + segment folds to 0xffff when intact.
      std::uint32_t dummy = 0;
      const std::uint32_t seg = d.addr + link_.rx_ip_offset() + kIpHeaderLen;
      const std::uint32_t seg_len = kUdpHeaderLen + dg->payload_len;
      const sim::Cycles ck_cycles =
          node.cost().udp_cksum_setup +
          sim::memops::cksum(node, seg, seg_len, &dummy);
      co_await link_.self().compute(ck_cycles);
      const std::uint8_t* p = node.mem(seg, seg_len);
      const std::uint16_t got = util::load_be16(p + 6);
      if (got != 0) {  // 0 = sender did not checksum (RFC 768)
        std::uint32_t acc = pseudo_header_sum(
            opt_.remote_ip, opt_.local_ip, kIpProtoUdp,
            static_cast<std::uint16_t>(seg_len));
        acc = util::cksum_partial({p, seg_len}, acc);
        if (util::fold16(acc) != 0xffff) {
          ++cksum_fail_;
          link_.release(d);
          continue;
        }
      }
    }
    co_return *dg;
  }
}

sim::Sub<UdpSocket::Datagram> UdpSocket::recv_copy(std::uint32_t app_addr,
                                                   std::uint16_t max_len) {
  sim::Node& node = link_.self().node();
  Datagram dg = co_await recv_in_place();
  const std::uint16_t n = std::min(dg.payload_len, max_len);
  const sim::Cycles cycles =
      sim::memops::copy(node, app_addr, dg.payload_addr, n);
  co_await link_.self().compute(cycles);
  release(dg);
  dg.payload_addr = app_addr;
  dg.payload_len = n;
  co_return dg;
}

}  // namespace ash::proto
