// Abstract link binding: what the UDP/TCP libraries need from a network
// interface. Two implementations exist, mirroring the testbed: An2Link
// (virtual-circuit ATM; IP datagrams ride directly in AN2 frames) and
// EthLink (Ethernet framing + DPF demux; Section IV's second device).
#pragma once

#include <cstdint>
#include <optional>

#include "net/an2.hpp"  // RxDesc
#include "sim/process.hpp"

namespace ash::proto {

enum class RecvMode : std::uint8_t {
  Polling,    // busy-poll the notification ring (no kernel involvement)
  Interrupt,  // block; driver wakes the process on arrival
};

class Link {
 public:
  virtual ~Link() = default;

  virtual sim::Process& self() = 0;

  /// Wait for the next frame (per the link's receive mode).
  virtual sim::Sub<net::RxDesc> recv() = 0;
  /// recv with a deadline; nullopt on timeout.
  virtual sim::Sub<std::optional<net::RxDesc>> recv_for(
      sim::Cycles timeout) = 0;
  /// Non-blocking check (caller charges poll cost).
  virtual std::optional<net::RxDesc> try_recv() = 0;
  /// Return a consumed receive buffer.
  virtual void release(const net::RxDesc& d) = 0;

  /// Byte offset of the IP header within a received frame.
  virtual std::uint32_t rx_ip_offset() const = 0;

  /// Reserve transmit staging for an IP packet of `len` bytes; returns the
  /// address where the IP header should be built (link framing, if any,
  /// lives before it).
  virtual std::uint32_t tx_alloc_ip(std::uint32_t len) = 0;

  /// Transmit the IP packet previously staged at `ip_addr` (adds link
  /// framing and charges the send system call).
  virtual sim::Sub<bool> send_ip(std::uint32_t ip_addr,
                                 std::uint32_t ip_len) = 0;

  /// Bump-allocate long-lived scratch memory in the owner's segment.
  virtual std::uint32_t carve(std::uint32_t len) = 0;

  /// Largest IP packet this link can carry.
  virtual std::uint32_t ip_mtu() const = 0;
};

}  // namespace ash::proto
