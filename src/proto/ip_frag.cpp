#include "proto/ip_frag.hpp"

#include <algorithm>
#include <cstring>

#include "sim/memops.hpp"
#include "sim/node.hpp"

namespace ash::proto {

sim::Sub<bool> ip_send_fragmented(Link& link, Ipv4Addr src, Ipv4Addr dst,
                                  std::uint8_t protocol,
                                  std::uint32_t payload_addr,
                                  std::uint32_t payload_len,
                                  std::uint16_t ident) {
  sim::Node& node = link.self().node();
  const std::uint32_t mtu_payload =
      (link.ip_mtu() - static_cast<std::uint32_t>(kIpHeaderLen)) & ~7u;

  std::uint32_t off = 0;
  do {
    const std::uint32_t chunk = std::min(mtu_payload, payload_len - off);
    const bool more = off + chunk < payload_len;
    const std::uint32_t total =
        static_cast<std::uint32_t>(kIpHeaderLen) + chunk;

    const std::uint32_t pkt = link.tx_alloc_ip(total);
    const sim::Cycles copy_cycles = sim::memops::copy(
        node, pkt + static_cast<std::uint32_t>(kIpHeaderLen),
        payload_addr + off, chunk);
    IpHeader h;
    h.protocol = protocol;
    h.src = src;
    h.dst = dst;
    h.total_len = static_cast<std::uint16_t>(total);
    h.ident = ident;
    h.more_fragments = more;
    h.frag_offset = static_cast<std::uint16_t>(off / 8);
    encode_ip({node.mem(pkt, kIpHeaderLen), kIpHeaderLen}, h);

    co_await link.self().compute(copy_cycles +
                                 node.cost().udp_send_overhead / 2);
    const bool sent = co_await link.send_ip(pkt, total);
    if (!sent) co_return false;
    off += chunk;
  } while (off < payload_len);
  co_return true;
}

namespace {
/// Largest reassembled datagram payload (total_len is 16 bits, and offsets
/// reach 0x1fff * 8; everything beyond can only be hostile).
constexpr std::uint32_t kMaxDatagramBytes = 64 * 1024;
}  // namespace

void IpReassembler::erase_partial(std::uint64_t key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  buffered_ -= it->second.bytes.size();
  pending_.erase(it);
}

bool IpReassembler::make_room(std::size_t need, std::uint64_t keep_key,
                              bool admitting_new) {
  if (limits_.max_buffered_bytes != 0 && need > limits_.max_buffered_bytes) {
    return false;
  }
  const std::size_t count_cap =
      limits_.max_datagrams == 0
          ? 0
          : limits_.max_datagrams - (admitting_new ? 1 : 0);
  while ((limits_.max_buffered_bytes != 0 &&
          buffered_ + need > limits_.max_buffered_bytes) ||
         (limits_.max_datagrams != 0 && pending_.size() > count_cap)) {
    // Evict the oldest partial (other than the one being grown).
    const Partial* oldest = nullptr;
    std::uint64_t oldest_key = 0;
    for (const auto& [k, p] : pending_) {
      if (k == keep_key) continue;
      if (oldest == nullptr || p.born < oldest->born) {
        oldest = &p;
        oldest_key = k;
      }
    }
    if (oldest == nullptr) return false;
    ++stats_.evicted;
    erase_partial(oldest_key);
  }
  return true;
}

std::optional<IpReassembler::Datagram> IpReassembler::feed(
    std::span<const std::uint8_t> datagram) {
  ++feeds_;
  if (limits_.max_age_feeds != 0) {
    // The reassembly timer, driven by traffic: partials left behind by
    // lost fragments age out instead of accumulating forever.
    expire(limits_.max_age_feeds);
  }
  const auto h = decode_ip(datagram);
  if (!h.has_value()) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const std::uint32_t payload_len =
      h->total_len - static_cast<std::uint32_t>(kIpHeaderLen);
  const std::uint8_t* payload = datagram.data() + kIpHeaderLen;

  if (!h->more_fragments && h->frag_offset == 0) {
    Datagram out;
    out.src = h->src;
    out.dst = h->dst;
    out.protocol = h->protocol;
    out.payload.assign(payload, payload + payload_len);
    return out;
  }

  // RFC 791: all fragments but the last carry 8-byte-multiple payloads.
  if (h->more_fragments && (payload_len & 7u) != 0) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const std::uint32_t byte_off = static_cast<std::uint32_t>(h->frag_offset) * 8;
  const std::uint64_t end = static_cast<std::uint64_t>(byte_off) + payload_len;
  if (payload_len == 0 || end > kMaxDatagramBytes) {
    ++stats_.malformed;
    return std::nullopt;
  }

  const std::uint64_t key =
      (static_cast<std::uint64_t>(h->src.value) << 16) | h->ident;
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (!make_room(static_cast<std::size_t>(end), key,
                   /*admitting_new=*/true)) {
      ++stats_.evicted;  // no room for this datagram at all
      return std::nullopt;
    }
    it = pending_.emplace(key, Partial{}).first;
    Partial& fresh = it->second;
    fresh.src = h->src;
    fresh.dst = h->dst;
    fresh.protocol = h->protocol;
    fresh.born = feeds_;
  }
  Partial& part = it->second;

  // A final fragment pins the datagram length; later fragments claiming
  // bytes beyond it (or a second, disagreeing final) are hostile.
  if (part.total_len != 0) {
    if (end > part.total_len ||
        (!h->more_fragments && end != part.total_len)) {
      ++stats_.malformed;
      return std::nullopt;
    }
  }
  if (!h->more_fragments) part.total_len = static_cast<std::uint32_t>(end);

  // Grow storage on demand (8-byte-block granularity, bounded above).
  if (end > part.bytes.size()) {
    const std::size_t new_size = static_cast<std::size_t>((end + 7) & ~7ull);
    if (!make_room(new_size - part.bytes.size(), key,
                   /*admitting_new=*/false)) {
      erase_partial(key);
      ++stats_.evicted;
      return std::nullopt;
    }
    buffered_ += new_size - part.bytes.size();
    part.bytes.resize(new_size);
    part.have.resize(new_size / 8, false);
  }

  // First copy wins, per 8-byte block: a duplicated or maliciously
  // overlapping fragment can never rewrite accepted bytes.
  bool overlapped = false;
  for (std::uint32_t b = byte_off / 8;
       b < (byte_off + payload_len + 7) / 8; ++b) {
    if (part.have[b]) {
      overlapped = true;
      continue;
    }
    const std::uint32_t block_off = b * 8 - byte_off;
    const std::uint32_t n =
        std::min<std::uint32_t>(8, payload_len - block_off);
    std::memcpy(part.bytes.data() + b * 8, payload + block_off, n);
    part.have[b] = true;
  }
  if (overlapped) ++stats_.overlaps;

  if (part.total_len != 0) {
    bool complete = true;
    for (std::uint32_t b = 0; b < (part.total_len + 7) / 8 && complete; ++b) {
      complete = part.have[b];
    }
    if (complete) {
      Datagram out;
      out.src = part.src;
      out.dst = part.dst;
      out.protocol = part.protocol;
      out.payload.assign(part.bytes.begin(),
                         part.bytes.begin() + part.total_len);
      erase_partial(key);
      return out;
    }
  }
  return std::nullopt;
}

void IpReassembler::expire(std::uint32_t max_age_feeds) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (feeds_ - it->second.born > max_age_feeds) {
      buffered_ -= it->second.bytes.size();
      ++stats_.expired;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ash::proto
