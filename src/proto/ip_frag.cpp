#include "proto/ip_frag.hpp"

#include <algorithm>
#include <cstring>

#include "sim/memops.hpp"
#include "sim/node.hpp"

namespace ash::proto {

sim::Sub<bool> ip_send_fragmented(Link& link, Ipv4Addr src, Ipv4Addr dst,
                                  std::uint8_t protocol,
                                  std::uint32_t payload_addr,
                                  std::uint32_t payload_len,
                                  std::uint16_t ident) {
  sim::Node& node = link.self().node();
  const std::uint32_t mtu_payload =
      (link.ip_mtu() - static_cast<std::uint32_t>(kIpHeaderLen)) & ~7u;

  std::uint32_t off = 0;
  do {
    const std::uint32_t chunk = std::min(mtu_payload, payload_len - off);
    const bool more = off + chunk < payload_len;
    const std::uint32_t total =
        static_cast<std::uint32_t>(kIpHeaderLen) + chunk;

    const std::uint32_t pkt = link.tx_alloc_ip(total);
    const sim::Cycles copy_cycles = sim::memops::copy(
        node, pkt + static_cast<std::uint32_t>(kIpHeaderLen),
        payload_addr + off, chunk);
    IpHeader h;
    h.protocol = protocol;
    h.src = src;
    h.dst = dst;
    h.total_len = static_cast<std::uint16_t>(total);
    h.ident = ident;
    h.more_fragments = more;
    h.frag_offset = static_cast<std::uint16_t>(off / 8);
    encode_ip({node.mem(pkt, kIpHeaderLen), kIpHeaderLen}, h);

    co_await link.self().compute(copy_cycles +
                                 node.cost().udp_send_overhead / 2);
    const bool sent = co_await link.send_ip(pkt, total);
    if (!sent) co_return false;
    off += chunk;
  } while (off < payload_len);
  co_return true;
}

std::optional<IpReassembler::Datagram> IpReassembler::feed(
    std::span<const std::uint8_t> datagram) {
  ++feeds_;
  const auto h = decode_ip(datagram);
  if (!h.has_value()) return std::nullopt;
  const std::uint32_t payload_len =
      h->total_len - static_cast<std::uint32_t>(kIpHeaderLen);
  const std::uint8_t* payload = datagram.data() + kIpHeaderLen;

  if (!h->more_fragments && h->frag_offset == 0) {
    Datagram out;
    out.src = h->src;
    out.dst = h->dst;
    out.protocol = h->protocol;
    out.payload.assign(payload, payload + payload_len);
    return out;
  }

  // RFC 791: all fragments but the last carry 8-byte-multiple payloads.
  if (h->more_fragments && (payload_len & 7u) != 0) return std::nullopt;

  const std::uint64_t key =
      (static_cast<std::uint64_t>(h->src.value) << 16) | h->ident;
  Partial& part = pending_[key];
  if (part.bytes.empty()) {
    part.bytes.resize(64 * 1024);
    part.have.assign(64 * 1024 / 8, false);
    part.src = h->src;
    part.dst = h->dst;
    part.protocol = h->protocol;
    part.born = feeds_;
  }

  const std::uint32_t byte_off = static_cast<std::uint32_t>(h->frag_offset) * 8;
  if (static_cast<std::uint64_t>(byte_off) + payload_len > part.bytes.size()) {
    pending_.erase(key);  // hostile or corrupt; drop the whole datagram
    return std::nullopt;
  }
  std::memcpy(part.bytes.data() + byte_off, payload, payload_len);
  for (std::uint32_t b = byte_off / 8;
       b < (byte_off + payload_len + 7) / 8; ++b) {
    if (!part.have[b]) {
      part.have[b] = true;
      part.received += 8;
    }
  }
  if (!h->more_fragments) part.total_len = byte_off + payload_len;

  if (part.total_len != 0) {
    bool complete = true;
    for (std::uint32_t b = 0; b < (part.total_len + 7) / 8 && complete; ++b) {
      complete = part.have[b];
    }
    if (complete) {
      Datagram out;
      out.src = part.src;
      out.dst = part.dst;
      out.protocol = part.protocol;
      out.payload.assign(part.bytes.begin(),
                         part.bytes.begin() + part.total_len);
      pending_.erase(key);
      return out;
    }
  }
  return std::nullopt;
}

void IpReassembler::expire(std::uint32_t max_age_feeds) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (feeds_ - it->second.born > max_age_feeds) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ash::proto
