// Connection-control primitives shared by the blocking TcpConnection
// library and the event-driven TcpEngine: RFC 6298 RTT estimation,
// RFC 5681-shaped congestion accounting, and an out-of-order segment
// store for reassembly. Header-only, sim-agnostic except for Cycles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <span>
#include <vector>

#include "proto/headers.hpp"
#include "sim/event_queue.hpp"

namespace ash::proto {

/// RFC 6298 retransmission-timeout estimator: SRTT/RTTVAR with the
/// standard 1/8 and 1/4 gains, RTO = SRTT + 4*RTTVAR clamped to
/// [min_rto, max_rto]. Backoff is the caller's job (it owns the armed
/// timer); Karn's rule is enforced by the caller only feeding samples
/// from segments that were never retransmitted.
class RttEstimator {
 public:
  RttEstimator() = default;
  RttEstimator(sim::Cycles initial_rto, sim::Cycles min_rto,
               sim::Cycles max_rto)
      : initial_(initial_rto), min_(min_rto), max_(max_rto) {}

  void sample(sim::Cycles rtt) {
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
    } else {
      const sim::Cycles err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
      rttvar_ = rttvar_ - rttvar_ / 4 + err / 4;
      srtt_ = srtt_ - srtt_ / 8 + rtt / 8;
    }
  }

  sim::Cycles rto() const {
    if (!has_sample_) return clamp(initial_);
    return clamp(srtt_ + 4 * rttvar_);
  }

  bool has_sample() const noexcept { return has_sample_; }
  sim::Cycles srtt() const noexcept { return srtt_; }
  sim::Cycles rttvar() const noexcept { return rttvar_; }

 private:
  sim::Cycles clamp(sim::Cycles v) const {
    if (v < min_) return min_;
    if (v > max_) return max_;
    return v;
  }

  sim::Cycles initial_ = sim::us(100000.0);
  sim::Cycles min_ = sim::us(1000.0);
  sim::Cycles max_ = sim::us(4000000.0);
  sim::Cycles srtt_ = 0;
  sim::Cycles rttvar_ = 0;
  bool has_sample_ = false;
};

/// Minimal RFC 5681 congestion window: slow start below ssthresh (one
/// MSS per new-data ACK), congestion avoidance above it (one MSS per
/// window), multiplicative decrease on loss. The effective send window
/// is min(cwnd, peer window) — applied by the caller.
class CongestionWindow {
 public:
  CongestionWindow() = default;
  CongestionWindow(std::uint32_t mss, std::uint32_t limit) {
    reset(mss, limit);
  }

  void reset(std::uint32_t mss, std::uint32_t limit) {
    mss_ = mss == 0 ? 1 : mss;
    limit_ = limit == 0 ? mss_ : limit;
    // The configured window doubles as the initial window: on a clean
    // link the sender fills it exactly as the pre-congestion-control
    // stack did (the handler benches calibrate against that tiling).
    // Slow start engages after the first loss event, when cwnd has
    // collapsed below ssthresh.
    cwnd_ = limit_;
    ssthresh_ = limit_;
    accum_ = 0;
  }

  std::uint32_t cwnd() const noexcept { return cwnd_; }
  std::uint32_t ssthresh() const noexcept { return ssthresh_; }

  /// `acked` bytes of new data were acknowledged.
  void on_ack(std::uint32_t acked) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(acked, mss_);  // slow start
    } else {
      accum_ += std::min(acked, mss_);  // congestion avoidance
      if (accum_ >= cwnd_) {
        accum_ = 0;
        cwnd_ += mss_;
      }
    }
    if (cwnd_ > limit_) cwnd_ = limit_;
  }

  /// Triple duplicate ACK: halve into fast retransmit.
  void on_fast_retransmit(std::uint32_t flight) {
    ssthresh_ = std::max(flight / 2, 2 * mss_);
    cwnd_ = ssthresh_;
    accum_ = 0;
  }

  /// Retransmission timeout: collapse to one segment, restart slow start.
  void on_timeout(std::uint32_t flight) {
    ssthresh_ = std::max(flight / 2, 2 * mss_);
    cwnd_ = mss_;
    accum_ = 0;
  }

 private:
  std::uint32_t mss_ = 1;
  std::uint32_t limit_ = 1;
  std::uint32_t cwnd_ = 1;
  std::uint32_t ssthresh_ = 1;
  std::uint32_t accum_ = 0;
};

/// Out-of-order segment store: buffers data above rcv_nxt for later
/// reassembly instead of dropping it. Keys are absolute sequence
/// numbers; all live entries sit within one receive window of rcv_nxt,
/// so the wraparound-aware comparator is a consistent ordering.
class OooBuffer {
 public:
  struct InsertOutcome {
    std::uint32_t buffered = 0;  // fresh bytes accepted into the store
    bool duplicate = false;      // fully below rcv_nxt or already buffered
    bool dropped = false;        // out of window or store full
  };

  /// Offer `data` at `seq` given the receiver state. Overlap with
  /// delivered data (below rcv_nxt) and with buffered segments is
  /// trimmed; anything beyond rcv_nxt + window or past `byte_limit`
  /// is refused.
  InsertOutcome insert(std::uint32_t seq, std::span<const std::uint8_t> data,
                       std::uint32_t rcv_nxt, std::uint32_t window,
                       std::size_t byte_limit) {
    InsertOutcome out;
    std::uint32_t len = static_cast<std::uint32_t>(data.size());
    if (len == 0) {
      out.duplicate = true;
      return out;
    }
    // Trim the head already delivered.
    if (seq_lt(seq, rcv_nxt)) {
      const std::uint32_t cut = rcv_nxt - seq;
      if (cut >= len) {
        out.duplicate = true;
        return out;
      }
      seq = rcv_nxt;
      data = data.subspan(cut);
      len -= cut;
    }
    // Refuse anything past the advertised window edge.
    const std::uint32_t edge = rcv_nxt + window;
    if (seq_le(edge, seq)) {
      out.dropped = true;
      return out;
    }
    if (seq_lt(edge, seq + len)) {
      len = edge - seq;
      data = data.first(len);
    }
    // Clip against the buffered neighbours. Retransmissions in this
    // stack resend identical segments, so partial overlaps reduce to
    // prefix/suffix trims against the immediate neighbours.
    auto next = segs_.lower_bound(seq);
    if (next != segs_.begin()) {
      auto prev = std::prev(next);
      const std::uint32_t prev_end =
          prev->first + static_cast<std::uint32_t>(prev->second.size());
      if (seq_lt(seq, prev_end)) {
        const std::uint32_t cut = prev_end - seq;
        if (cut >= len) {
          out.duplicate = true;
          return out;
        }
        seq = prev_end;
        data = data.subspan(cut);
        len -= cut;
        next = segs_.lower_bound(seq);
      }
    }
    if (next != segs_.end() && seq_lt(next->first, seq + len)) {
      if (seq_le(next->first, seq)) {
        out.duplicate = true;  // an existing segment covers our start
        return out;
      }
      len = next->first - seq;
      data = data.first(len);
    }
    if (bytes_ + len > byte_limit) {
      out.dropped = true;
      return out;
    }
    segs_.emplace(seq, std::vector<std::uint8_t>(data.begin(), data.end()));
    bytes_ += len;
    out.buffered = len;
    return out;
  }

  bool contiguous_at(std::uint32_t rcv_nxt) const {
    purge_stale(rcv_nxt);
    auto it = segs_.begin();
    return it != segs_.end() && seq_le(it->first, rcv_nxt);
  }

  /// Move up to `max_len` bytes contiguous at rcv_nxt out of the store.
  std::vector<std::uint8_t> pop_contiguous(std::uint32_t rcv_nxt,
                                           std::uint32_t max_len) {
    purge_stale(rcv_nxt);
    std::vector<std::uint8_t> out;
    std::uint32_t at = rcv_nxt;
    while (out.size() < max_len) {
      auto it = segs_.begin();
      if (it == segs_.end() || !seq_le(it->first, at)) break;
      std::vector<std::uint8_t> seg = std::move(it->second);
      const std::uint32_t seg_seq = it->first;
      segs_.erase(it);
      bytes_ -= seg.size();
      std::uint32_t off = at - seg_seq;  // overlap with already-taken bytes
      if (off >= seg.size()) continue;
      const std::uint32_t avail = static_cast<std::uint32_t>(seg.size()) - off;
      const std::uint32_t take = std::min<std::uint32_t>(
          avail, max_len - static_cast<std::uint32_t>(out.size()));
      out.insert(out.end(), seg.begin() + off, seg.begin() + off + take);
      at += take;
      if (take < avail) {
        // Re-key the remainder and stop: the caller ran out of room.
        bytes_ += avail - take;
        segs_.emplace(at, std::vector<std::uint8_t>(
                              seg.begin() + off + take, seg.end()));
        break;
      }
    }
    return out;
  }

  std::size_t bytes() const noexcept { return bytes_; }
  std::size_t segments() const noexcept { return segs_.size(); }
  void clear() {
    segs_.clear();
    bytes_ = 0;
  }

 private:
  struct SeqLess {
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return seq_lt(a, b);
    }
  };

  void purge_stale(std::uint32_t rcv_nxt) const {
    // Drop segments that fell entirely below rcv_nxt (delivered by the
    // in-order path while they sat here).
    auto& segs = const_cast<std::map<std::uint32_t, std::vector<std::uint8_t>,
                                     SeqLess>&>(segs_);
    auto& bytes = const_cast<std::size_t&>(bytes_);
    while (!segs.empty()) {
      auto it = segs.begin();
      const std::uint32_t end =
          it->first + static_cast<std::uint32_t>(it->second.size());
      if (!seq_le(end, rcv_nxt)) break;
      bytes -= it->second.size();
      segs.erase(it);
    }
  }

  std::map<std::uint32_t, std::vector<std::uint8_t>, SeqLess> segs_;
  std::size_t bytes_ = 0;
};

}  // namespace ash::proto
