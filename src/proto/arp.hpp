// ARP / RARP as a user-level library over the Ethernet device (part of
// the paper's protocol inventory: "ARP/RARP, IP, UDP, TCP, HTTP, and NFS
// as user-level libraries").
//
// The service owns one DPF endpoint matching the ARP and RARP ethertypes.
// It answers requests for its own bindings, learns peer bindings from any
// ARP traffic it sees, and resolves addresses on demand (broadcast
// request + bounded wait). RARP reverse-resolution is served from a
// static table the owner seeds (the usual boot-server arrangement).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ethernet.hpp"
#include "proto/headers.hpp"
#include "proto/wire.hpp"
#include "sim/process.hpp"

namespace ash::proto {

class ArpService {
 public:
  struct Config {
    MacAddr local_mac;
    Ipv4Addr local_ip;
    std::uint32_t rx_buffers = 8;
  };

  ArpService(sim::Process& self, net::EthernetDevice& dev,
             const Config& config);

  /// Look up `ip`, broadcasting an ARP request and processing replies
  /// until resolved or `timeout` elapses. Cached entries return
  /// immediately. nullopt = unresolved.
  sim::Sub<std::optional<MacAddr>> resolve(Ipv4Addr ip, sim::Cycles timeout);

  /// RARP: ask who `mac` is; nullopt on timeout.
  sim::Sub<std::optional<Ipv4Addr>> rarp_resolve(MacAddr mac,
                                                 sim::Cycles timeout);

  /// Serve incoming ARP/RARP traffic for `duration` (a responder loop for
  /// server-style processes; resolve() also serves while it waits).
  sim::Sub<void> serve(sim::Cycles duration);

  /// Seed a static binding (also the RARP answer table).
  void add_static(Ipv4Addr ip, MacAddr mac);

  /// Cached binding, if any (no traffic).
  std::optional<MacAddr> lookup(Ipv4Addr ip) const;

  std::uint64_t requests_answered() const noexcept { return answered_; }

 private:
  /// Handle one received frame: learn, and reply to requests addressed to
  /// us. Returns the packet if it was a reply/advertisement (callers
  /// waiting in resolve use it), else nullopt.
  sim::Sub<std::optional<ArpPacket>> process_one(sim::Cycles timeout);

  sim::Sub<void> send_packet(const ArpPacket& pkt, std::uint16_t ethertype,
                             MacAddr dst);

  sim::Process& self_;
  net::EthernetDevice& dev_;
  Config cfg_;
  int endpoint_;
  std::uint32_t pool_base_;
  std::uint32_t tx_base_;
  std::unordered_map<std::uint32_t, MacAddr> cache_;  // ip -> mac
  std::uint64_t answered_ = 0;
};

}  // namespace ash::proto
