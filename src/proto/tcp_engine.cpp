#include "proto/tcp_engine.hpp"

#include <algorithm>
#include <cstring>

#include "sim/memops.hpp"
#include "sim/node.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

namespace {
constexpr std::uint32_t kSegHdrLen =
    static_cast<std::uint32_t>(kIpHeaderLen + kTcpHeaderLen);
// Cap the pure-ACK debt per flow: beyond this the extra dup-ACKs carry
// no more information (fast retransmit triggers at three).
constexpr std::uint32_t kMaxAcksOwed = 4;
}  // namespace

TcpEngine::TcpEngine(Link& link, const Config& config)
    : link_(link),
      cfg_(config),
      wheel_(config.wheel_granularity, config.wheel_buckets) {
  shards_.resize(std::max<std::size_t>(1, cfg_.shards));
}

TcpEngine::~TcpEngine() = default;

// --------------------------------------------------------------- lookup

TcpEngine::Tcb* TcpEngine::find(ConnId id) noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second->dead) return nullptr;
  return it->second;
}

const TcpEngine::Tcb* TcpEngine::find(ConnId id) const noexcept {
  const auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second->dead) return nullptr;
  return it->second;
}

TcpEngine::Tcb* TcpEngine::lookup(const FlowKey& key) noexcept {
  const std::size_t shard = cfg_.steering.pick(
      flow_channel(cfg_.local_ip, key), nullptr, shards_.size());
  auto& map = shards_[shard];
  const auto it = map.find(key);
  return it == map.end() ? nullptr : it->second.get();
}

TcpEngine::Tcb& TcpEngine::create_tcb(const FlowKey& key, Callbacks cbs) {
  const std::size_t shard = cfg_.steering.pick(
      flow_channel(cfg_.local_ip, key), nullptr, shards_.size());
  auto tcb = std::make_unique<Tcb>();
  Tcb& t = *tcb;
  t.id = next_id_++;
  t.key = key;
  t.shard = shard;
  t.cbs = std::move(cbs);
  // Distinct ISS per flow keeps sequence spaces from aliasing in traces.
  const std::uint32_t iss = cfg_.iss + t.id * 0x01000000u;
  t.snd_nxt = iss;
  t.snd_una = iss;
  t.peer_wnd = cfg_.window;
  t.last_adv_wnd = cfg_.rcv_limit;
  t.rtt = RttEstimator(cfg_.rto, std::min(cfg_.min_rto, cfg_.rto),
                       cfg_.max_rto);
  t.rto_cur = cfg_.rto;
  t.cc.reset(cfg_.mss, cfg_.window);
  shards_[shard].emplace(key, std::move(tcb));
  by_id_.emplace(t.id, &t);
  return t;
}

void TcpEngine::destroy_tcb(Tcb& t) {
  if (t.dead) return;
  t.dead = true;
  cancel_timer(t.retx_timer);
  cancel_timer(t.persist_timer);
  cancel_timer(t.timewait_timer);
  if (t.listener != nullptr && t.state == TcpState::SynRcvd) {
    --t.listener->pending;
  }
  t.state = TcpState::Closed;
  t.retx.clear();
  t.sndbuf.clear();
  t.ooo.clear();
  dead_.push_back(t.id);
}

void TcpEngine::reap_dead() {
  while (!dead_.empty()) {
    std::vector<ConnId> batch;
    batch.swap(dead_);
    for (const ConnId id : batch) {
      const auto it = by_id_.find(id);
      if (it == by_id_.end()) continue;
      Tcb* t = it->second;
      // The upcall sees the id one last time; the TCB is unreachable
      // through the public API already (find() skips dead flows).
      if (t->cbs.on_closed) t->cbs.on_closed(id);
      ++stats_.conns_closed;
      by_id_.erase(it);
      shards_[t->shard].erase(t->key);  // frees *t
    }
  }
}

void TcpEngine::mark_dirty(Tcb& t) {
  if (t.dirty || t.dead) return;
  t.dirty = true;
  dirty_.push_back(t.id);
}

// --------------------------------------------------------------- timers

void TcpEngine::cancel_timer(sim::TimerWheel::Id& id) {
  if (id != 0) {
    wheel_.cancel(id);
    id = 0;
  }
}

void TcpEngine::arm_retx_timer(Tcb& t) {
  cancel_timer(t.retx_timer);
  if (t.retx.empty()) return;
  t.retx_timer = wheel_.arm(link_.self().node().now() + t.rto_cur,
                            cookie(t, kTimerRetx));
}

void TcpEngine::service_timers() {
  std::vector<sim::TimerWheel::Expired> fired;
  wheel_.advance(link_.self().node().now(), fired);
  for (const auto& e : fired) {
    const auto id = static_cast<ConnId>(e.cookie >> 2);
    const auto kind = static_cast<TimerKind>(e.cookie & 3);
    const auto it = by_id_.find(id);
    if (it == by_id_.end() || it->second->dead) continue;
    Tcb& t = *it->second;
    switch (kind) {
      case kTimerRetx:
        t.retx_timer = 0;
        if (t.retx.empty()) break;
        ++stats_.rto_timeouts;
        t.cc.on_timeout(t.snd_nxt - t.snd_una);
        t.rto_cur = std::min(t.rto_cur * 2, cfg_.max_rto);
        t.dup_acks = 0;
        t.retx_fired = true;
        mark_dirty(t);
        break;
      case kTimerPersist:
        t.persist_timer = 0;
        t.persist_fire = true;
        mark_dirty(t);
        break;
      case kTimerTimeWait:
        // 2MSL expiry, or the FIN_WAIT_2 give-up for a peer that never
        // sent its FIN. Either way the flow is done.
        t.timewait_timer = 0;
        destroy_tcb(t);
        break;
    }
  }
}

// -------------------------------------------------------- control plane

TcpEngine::TcpListener& TcpEngine::listen(std::uint16_t port,
                                          ListenConfig cfg) {
  TcpListener& l = listeners_[port];
  l.port = port;
  l.cfg = std::move(cfg);
  return l;
}

TcpEngine::ConnId TcpEngine::connect(Ipv4Addr remote_ip,
                                     std::uint16_t remote_port,
                                     std::uint16_t local_port,
                                     Callbacks callbacks) {
  const FlowKey key{remote_ip, remote_port, local_port};
  if (lookup(key) != nullptr) return 0;  // 4-tuple already in use
  Tcb& t = create_tcb(key, std::move(callbacks));
  t.state = TcpState::SynSent;
  t.syn_queued = true;
  ++stats_.conns_opened;
  mark_dirty(t);
  return t.id;
}

void TcpEngine::close(ConnId id) {
  Tcb* t = find(id);
  if (t == nullptr) return;
  switch (t->state) {
    case TcpState::SynSent:
    case TcpState::SynRcvd:
      destroy_tcb(*t);  // nothing established to tear down politely
      break;
    case TcpState::Established:
    case TcpState::CloseWait:
      t->fin_pending = true;
      mark_dirty(*t);
      break;
    default:
      break;  // already closing or closed
  }
}

void TcpEngine::abort(ConnId id) {
  Tcb* t = find(id);
  if (t == nullptr) return;
  abort_flow(*t, /*rst_peer=*/true);
}

void TcpEngine::abort_flow(Tcb& t, bool rst_peer) {
  ++stats_.aborts;
  if (rst_peer && t.state != TcpState::Closed) {
    raw_rsts_.push_back(RawRst{t.key, t.snd_nxt, t.rcv_nxt, true});
  }
  destroy_tcb(t);
}

// ----------------------------------------------------------- data plane

bool TcpEngine::write(ConnId id, std::span<const std::uint8_t> data) {
  Tcb* t = find(id);
  if (t == nullptr || t->fin_pending || t->fin_sent) return false;
  switch (t->state) {
    case TcpState::SynSent:
    case TcpState::SynRcvd:
    case TcpState::Established:
    case TcpState::CloseWait:
      break;
    default:
      return false;
  }
  t->sndbuf.insert(t->sndbuf.end(), data.begin(), data.end());
  if (t->state == TcpState::Established ||
      t->state == TcpState::CloseWait) {
    mark_dirty(*t);
  }
  return true;
}

std::size_t TcpEngine::read(ConnId id, std::uint8_t* out,
                            std::size_t max_len) {
  Tcb* t = find(id);
  if (t == nullptr) return 0;
  const std::size_t n = std::min(max_len, t->rcvbuf.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = t->rcvbuf.front();
    t->rcvbuf.pop_front();
  }
  // Receiver-side deadlock fix shared with TcpConnection: reopening the
  // window in sub-MSS steps must still tell a persist-probing sender.
  const std::uint32_t adv = adv_window(*t);
  if (n > 0 && (adv >= t->last_adv_wnd + cfg_.mss ||
                (t->last_adv_wnd == 0 && adv > 0))) {
    ++stats_.window_updates;
    if (t->acks_owed == 0) t->acks_owed = 1;
    mark_dirty(*t);
  }
  return n;
}

std::size_t TcpEngine::readable(ConnId id) const {
  const Tcb* t = find(id);
  return t == nullptr ? 0 : t->rcvbuf.size();
}

bool TcpEngine::at_eof(ConnId id) const {
  const Tcb* t = find(id);
  if (t == nullptr) return true;
  return t->peer_fin && t->rcvbuf.empty();
}

std::optional<TcpState> TcpEngine::state(ConnId id) const {
  const Tcb* t = find(id);
  if (t == nullptr) return std::nullopt;
  return t->state;
}

std::size_t TcpEngine::unsent(ConnId id) const {
  const Tcb* t = find(id);
  return t == nullptr ? 0 : t->sndbuf.size();
}

std::size_t TcpEngine::shard_of(ConnId id) const {
  const Tcb* t = find(id);
  return t == nullptr ? 0 : t->shard;
}

std::vector<std::size_t> TcpEngine::shard_sizes() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s.size());
  return out;
}

std::uint32_t TcpEngine::adv_window(const Tcb& t) const {
  const auto used = static_cast<std::uint32_t>(t.rcvbuf.size());
  return used >= cfg_.rcv_limit ? 0 : cfg_.rcv_limit - used;
}

// -------------------------------------------------------------- receive

void TcpEngine::signal_readable(Tcb& t) {
  if (!t.cbs.on_readable) return;
  if (t.rcvbuf.empty() && t.peer_fin) {
    if (t.readable_eof_signaled) return;
    t.readable_eof_signaled = true;
  }
  t.cbs.on_readable(t.id);
}

void TcpEngine::process_frame(const net::RxDesc& d, sim::Cycles* cycles) {
  sim::Node& node = link_.self().node();
  const std::uint32_t ip_off = link_.rx_ip_offset();
  if (d.len < ip_off) return;
  const std::uint8_t* p = node.mem(d.addr + ip_off, d.len - ip_off);
  ++stats_.segments_in;

  const auto ip = decode_ip({p, d.len - ip_off});
  if (!ip || ip->protocol != kIpProtoTcp || ip->dst != cfg_.local_ip) {
    return;
  }
  const std::uint32_t seg_len = ip->total_len - kIpHeaderLen;
  const auto tcp = decode_tcp({p + kIpHeaderLen, seg_len});
  if (!tcp) return;
  const std::uint32_t plen =
      seg_len - static_cast<std::uint32_t>(kTcpHeaderLen);

  *cycles += node.cost().tcp_slowpath_overhead;
  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    *cycles += node.cost().udp_cksum_setup;
    *cycles += sim::memops::cksum(node, d.addr + ip_off + kIpHeaderLen,
                                  seg_len, &dummy);
    std::uint32_t acc = pseudo_header_sum(
        ip->src, ip->dst, kIpProtoTcp, static_cast<std::uint16_t>(seg_len));
    acc = util::cksum_partial({p + kIpHeaderLen, seg_len}, acc);
    if (util::fold16(acc) != 0xffff) {
      ++stats_.cksum_failures;
      return;
    }
  }

  const FlowKey key{ip->src, tcp->src_port, tcp->dst_port};
  Tcb* t = lookup(key);
  if (t != nullptr && !t->dead) {
    process_segment(*t, *tcp, {p + kIpHeaderLen + kTcpHeaderLen, plen},
                    cycles);
    return;
  }

  // No flow state. A fresh SYN may match a listener; anything else is
  // answered with a RST (RFC 793 CLOSED rules), never with one for an
  // inbound RST (no RST storms).
  if (tcp->flags.syn && !tcp->flags.ack) {
    handle_syn(key, *tcp);
    return;
  }
  if (tcp->flags.rst || !cfg_.rst_unknown) return;
  ++stats_.unknown_flow_rsts;
  RawRst r;
  r.key = key;
  if (tcp->flags.ack) {
    r.seq = tcp->ack;
    r.with_ack = false;
  } else {
    r.seq = 0;
    r.ack = tcp->seq + plen + (tcp->flags.syn ? 1 : 0) +
            (tcp->flags.fin ? 1 : 0);
    r.with_ack = true;
  }
  raw_rsts_.push_back(r);
}

void TcpEngine::handle_syn(const FlowKey& key, const TcpHeader& tcp) {
  const auto lit = listeners_.find(key.local_port);
  if (lit == listeners_.end()) {
    if (cfg_.rst_unknown) {
      ++stats_.unknown_flow_rsts;
      raw_rsts_.push_back(RawRst{key, 0, tcp.seq + 1, true});
    }
    return;
  }
  TcpListener& l = lit->second;
  if (l.pending >= l.cfg.backlog) {
    // Full backlog: drop silently — the client's SYN retransmit is the
    // retry path, exactly like a kernel with a full SYN queue.
    ++l.backlog_drops;
    ++stats_.syn_backlog_drops;
    return;
  }
  Tcb& t = create_tcb(key, l.cfg.callbacks);
  t.listener = &l;
  ++l.pending;
  t.state = TcpState::SynRcvd;
  t.rcv_nxt = tcp.seq + 1;
  t.peer_wnd = tcp.window;
  t.synack_queued = true;
  mark_dirty(t);
}

void TcpEngine::process_rst(Tcb& t, const TcpHeader& tcp) {
  bool acceptable = false;
  switch (t.state) {
    case TcpState::Closed:
      return;
    case TcpState::SynSent:
      acceptable = tcp.flags.ack && tcp.ack == t.snd_nxt;
      break;
    case TcpState::TimeWait:
      ++stats_.rsts_ignored;  // RFC 1337
      return;
    default: {
      const std::uint32_t wnd = std::max(adv_window(t), 1u);
      acceptable =
          seq_le(t.rcv_nxt, tcp.seq) && seq_lt(tcp.seq, t.rcv_nxt + wnd);
      break;
    }
  }
  if (acceptable) {
    ++stats_.rsts_received;
    abort_flow(t, /*rst_peer=*/false);
  } else {
    ++stats_.rsts_ignored;
  }
}

void TcpEngine::process_ack(Tcb& t, const TcpHeader& tcp,
                            std::uint32_t plen) {
  sim::Node& node = link_.self().node();
  const std::uint32_t una_before = t.snd_una;
  if (seq_lt(una_before, tcp.ack) && seq_le(tcp.ack, t.snd_nxt)) {
    t.snd_una = tcp.ack;
    bool popped = false;
    while (!t.retx.empty()) {
      const RetxSegment& seg = t.retx.front();
      const std::uint32_t consumed =
          static_cast<std::uint32_t>(seg.payload.size()) +
          ((seg.flags.syn || seg.flags.fin) ? 1 : 0);
      if (seq_le(seg.seq + consumed, tcp.ack)) {
        t.retx.pop_front();
        popped = true;
      } else {
        break;
      }
    }
    if (popped || t.retx.empty()) arm_retx_timer(t);
    t.cc.on_ack(tcp.ack - una_before);
    t.dup_acks = 0;
    if (t.rtt_pending && seq_le(t.rtt_seq, tcp.ack)) {
      t.rtt.sample(node.now() - t.rtt_sent_at);
      t.rtt_pending = false;
    }
    t.rto_cur = t.rtt.rto();  // fresh ACK resets any backoff
    if (!t.sndbuf.empty() || t.fin_pending) mark_dirty(t);
  } else if (tcp.ack == una_before && plen == 0 && !tcp.flags.syn &&
             !tcp.flags.fin && seq_lt(una_before, t.snd_nxt) &&
             t.state == TcpState::Established) {
    if (++t.dup_acks == 3) {
      t.dup_acks = 0;
      t.cc.on_fast_retransmit(t.snd_nxt - una_before);
      ++stats_.fast_retransmits;
      t.fast_retx_pending = true;
      mark_dirty(t);
    }
  }
  if (seq_le(tcp.ack, t.snd_nxt)) {
    t.peer_wnd = tcp.window;
    if (t.peer_wnd > 0) {
      cancel_timer(t.persist_timer);
      t.persist_fire = false;
      if (!t.sndbuf.empty() || t.fin_pending) mark_dirty(t);
    }
  }
}

void TcpEngine::process_data(Tcb& t, const TcpHeader& tcp,
                             std::span<const std::uint8_t> payload,
                             sim::Cycles* cycles) {
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t space = adv_window(t);
  const auto owe_ack = [this, &t] {
    if (t.acks_owed < kMaxAcksOwed) ++t.acks_owed;
    mark_dirty(t);
  };

  if (tcp.seq == t.rcv_nxt) {
    if (plen <= space) {
      t.rcvbuf.insert(t.rcvbuf.end(), payload.begin(), payload.end());
      t.rcv_nxt += plen;
      // Network-buffer-to-socket-buffer copy, charged per word like the
      // library's staging append.
      for (std::uint32_t off = 0; off < plen; off += 4) {
        *cycles += node.cost().copy_loop_insns_per_word;
      }
      // Anything now contiguous in the OOO store rides along.
      if (cfg_.reassemble) {
        const bool more = t.ooo.contiguous_at(t.rcv_nxt);
        if (more) {
          std::vector<std::uint8_t> run =
              t.ooo.pop_contiguous(t.rcv_nxt, adv_window(t));
          t.rcvbuf.insert(t.rcvbuf.end(), run.begin(), run.end());
          t.rcv_nxt += static_cast<std::uint32_t>(run.size());
          stats_.ooo_reassembled += run.size();
          for (std::uint32_t off = 0; off < run.size(); off += 4) {
            *cycles += node.cost().copy_loop_insns_per_word;
          }
        }
      }
      if (t.acks_owed == 0) t.acks_owed = 1;
      mark_dirty(t);
      signal_readable(t);
    } else {
      ++stats_.rcv_overflow_drops;
      owe_ack();
    }
    return;
  }
  if (seq_le(tcp.seq + plen, t.rcv_nxt)) {
    ++stats_.dup_segments;
    owe_ack();
    return;
  }
  if (!cfg_.reassemble) {
    // The pre-refactor receiver: anything not exactly in order is
    // dropped and the sender must resend from rcv_nxt.
    ++stats_.ooo_dropped;
    owe_ack();
    return;
  }
  const auto outcome =
      t.ooo.insert(tcp.seq, payload, t.rcv_nxt, space, ooo_limit());
  if (outcome.buffered > 0) {
    ++stats_.ooo_buffered;
  } else if (outcome.duplicate) {
    ++stats_.dup_segments;
  } else {
    ++stats_.ooo_dropped;
  }
  owe_ack();  // distinct dup-ACK: feeds the peer's fast retransmit
}

void TcpEngine::enter_established(Tcb& t) {
  t.state = TcpState::Established;
  if (t.listener != nullptr) {
    --t.listener->pending;
    ++t.listener->accepted;
    ++stats_.conns_accepted;
    t.listener = nullptr;
  }
  if (!t.sndbuf.empty() || t.fin_pending) mark_dirty(t);
  if (t.cbs.on_established) t.cbs.on_established(t.id);
}

void TcpEngine::enter_time_wait(Tcb& t) {
  cancel_timer(t.retx_timer);
  cancel_timer(t.persist_timer);
  cancel_timer(t.timewait_timer);
  t.state = TcpState::TimeWait;
  t.timewait_timer = wheel_.arm(
      link_.self().node().now() + cfg_.time_wait, cookie(t, kTimerTimeWait));
}

void TcpEngine::maybe_finish_close(Tcb& t) {
  if (!t.fin_sent || t.snd_una != t.snd_nxt) return;
  if (t.state == TcpState::FinSent) {
    if (t.peer_fin) {
      enter_time_wait(t);
    } else if (t.timewait_timer == 0) {
      // FIN_WAIT_2: our side is done; give the peer a bounded window to
      // send its FIN before the flow is reclaimed.
      t.timewait_timer =
          wheel_.arm(link_.self().node().now() + cfg_.fin_wait,
                     cookie(t, kTimerTimeWait));
    }
  } else if (t.state == TcpState::LastAck) {
    destroy_tcb(t);
  }
}

void TcpEngine::process_segment(Tcb& t, const TcpHeader& tcp,
                                std::span<const std::uint8_t> payload,
                                sim::Cycles* cycles) {
  const auto plen = static_cast<std::uint32_t>(payload.size());

  if (tcp.flags.rst) {
    process_rst(t, tcp);
    return;
  }

  switch (t.state) {
    case TcpState::SynSent: {
      if (tcp.flags.syn && tcp.flags.ack && tcp.ack == t.snd_nxt) {
        t.rcv_nxt = tcp.seq + 1;
        process_ack(t, tcp, plen);
        if (t.acks_owed == 0) t.acks_owed = 1;  // complete the handshake
        enter_established(t);
        mark_dirty(t);
      }
      // A bare SYN would be a simultaneous open; the engine's peers are
      // engines and libraries that never do that. Ignore.
      return;
    }
    case TcpState::SynRcvd: {
      if (tcp.flags.syn) {
        // Retransmitted SYN: our SYN/ACK was lost; resend it.
        ++stats_.dup_segments;
        if (!t.retx.empty()) {
          t.fast_retx_pending = true;
          mark_dirty(t);
        } else {
          t.synack_queued = true;
          mark_dirty(t);
        }
        return;
      }
      if (!tcp.flags.ack) return;
      process_ack(t, tcp, plen);
      if (t.snd_una != t.snd_nxt) return;  // not our SYN/ACK's ack
      enter_established(t);
      break;  // the completing ACK may carry data and/or FIN
    }
    case TcpState::TimeWait: {
      // Only a retransmitted FIN is interesting: re-ACK it and restart
      // 2MSL (the peer never saw our last ACK). Anything else draws a
      // challenge ACK.
      if (tcp.flags.fin) {
        ++stats_.dup_segments;
        cancel_timer(t.timewait_timer);
        t.timewait_timer =
            wheel_.arm(link_.self().node().now() + cfg_.time_wait,
                       cookie(t, kTimerTimeWait));
      } else {
        ++stats_.timewait_drops;
      }
      if (t.acks_owed < kMaxAcksOwed) ++t.acks_owed;
      mark_dirty(t);
      return;
    }
    default:
      if (tcp.flags.ack) process_ack(t, tcp, plen);
      break;
  }

  if (t.dead) return;  // the ACK processing may have torn the flow down

  if (plen > 0) {
    switch (t.state) {
      case TcpState::Established:
      case TcpState::FinSent:
        process_data(t, tcp, payload, cycles);
        break;
      default:
        // Data after the peer's FIN is a protocol violation; re-ACK.
        ++stats_.dup_segments;
        if (t.acks_owed < kMaxAcksOwed) ++t.acks_owed;
        mark_dirty(t);
        break;
    }
  }

  if (tcp.flags.fin) {
    const std::uint32_t fin_seq = tcp.seq + plen;
    if (!t.peer_fin && fin_seq == t.rcv_nxt) {
      t.peer_fin = true;
      t.rcv_nxt += 1;
      if (t.acks_owed < kMaxAcksOwed) ++t.acks_owed;
      if (t.state == TcpState::Established ||
          t.state == TcpState::SynRcvd) {
        t.state = TcpState::CloseWait;
      }
      mark_dirty(t);
      signal_readable(t);  // EOF becomes visible
    } else if (seq_lt(fin_seq, t.rcv_nxt)) {
      // Old FIN (our ACK was lost): re-ACK it.
      ++stats_.dup_segments;
      if (t.acks_owed < kMaxAcksOwed) ++t.acks_owed;
      mark_dirty(t);
    }
    // A FIN beyond a sequence gap waits for reassembly to close it.
  }

  maybe_finish_close(t);
}

// ------------------------------------------------------------- transmit

sim::Sub<bool> TcpEngine::send_flow(Tcb& t, TcpFlags flags,
                                    std::span<const std::uint8_t> payload,
                                    bool queue_retx) {
  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);

  const std::uint32_t seq = t.snd_nxt;
  sim::Cycles cycles = plen > 0 || flags.syn || flags.fin
                           ? node.cost().tcp_send_overhead
                           : node.cost().tcp_ack_overhead;
  if (plen > 0) {
    std::memcpy(p + kSegHdrLen, payload.data(), plen);
    for (std::uint32_t off = 0; off < plen; off += 4) {
      cycles += node.cost().copy_loop_insns_per_word;
      cycles += node.dcache().access(pkt + kSegHdrLen + off,
                                     std::min(4u, plen - off), true);
    }
  }

  TcpHeader tcp;
  tcp.src_port = t.key.local_port;
  tcp.dst_port = t.key.remote_port;
  tcp.seq = seq;
  tcp.ack = flags.ack ? t.rcv_nxt : 0;
  tcp.flags = flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(adv_window(t), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  t.last_adv_wnd = adv_window(t);

  if (cfg_.checksum) {
    std::uint32_t dummy = 0;
    cycles += node.cost().udp_cksum_setup;
    cycles += sim::memops::cksum(node, pkt + kIpHeaderLen,
                                 kTcpHeaderLen + plen, &dummy);
    tcp.checksum = transport_checksum(
        cfg_.local_ip, t.key.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }

  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = t.key.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = t.next_ident++;
  encode_ip({p, kIpHeaderLen}, ip);

  const std::uint32_t consumed = plen + ((flags.syn || flags.fin) ? 1 : 0);
  t.snd_nxt = seq + consumed;

  if (queue_retx && consumed > 0) {
    t.retx.push_back(RetxSegment{
        seq, std::vector<std::uint8_t>(payload.begin(), payload.end()),
        flags, 0});
    if (t.retx_timer == 0) arm_retx_timer(t);
    if (!t.rtt_pending) {
      t.rtt_pending = true;
      t.rtt_seq = seq + consumed;
      t.rtt_sent_at = node.now();
    }
  }
  ++stats_.segments_out;
  if (plen == 0 && !flags.syn && !flags.fin) ++stats_.acks_sent;

  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, total);
  co_return sent;
}

sim::Sub<bool> TcpEngine::resend_front(Tcb& t) {
  if (t.retx.empty()) co_return true;
  RetxSegment& seg = t.retx.front();
  const bool count_retry = t.retx_fired;
  if (count_retry && ++seg.retries > cfg_.max_retries) {
    abort_flow(t, /*rst_peer=*/false);
    co_return false;
  }
  ++stats_.retransmits;
  t.rtt_pending = false;  // Karn: never time a retransmitted flight

  sim::Node& node = link_.self().node();
  const auto plen = static_cast<std::uint32_t>(seg.payload.size());
  const std::uint32_t total = kSegHdrLen + plen;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);
  std::uint8_t* p = node.mem(pkt, total);
  if (plen > 0) std::memcpy(p + kSegHdrLen, seg.payload.data(), plen);

  TcpHeader tcp;
  tcp.src_port = t.key.local_port;
  tcp.dst_port = t.key.remote_port;
  tcp.seq = seg.seq;
  tcp.ack = seg.flags.ack ? t.rcv_nxt : 0;
  tcp.flags = seg.flags;
  tcp.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(adv_window(t), 0xffff));
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (cfg_.checksum) {
    tcp.checksum = transport_checksum(
        cfg_.local_ip, t.key.remote_ip, kIpProtoTcp,
        {p + kIpHeaderLen, kTcpHeaderLen + plen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = t.key.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(total);
  ip.ident = t.next_ident++;
  encode_ip({p, kIpHeaderLen}, ip);

  ++stats_.segments_out;
  co_await link_.self().compute(node.cost().tcp_send_overhead);
  co_await link_.send_ip(pkt, total);
  co_return true;
}

sim::Sub<void> TcpEngine::send_raw_rst(const RawRst& r) {
  sim::Node& node = link_.self().node();
  const std::uint32_t pkt = link_.tx_alloc_ip(kSegHdrLen);
  std::uint8_t* p = node.mem(pkt, kSegHdrLen);

  TcpHeader tcp;
  tcp.src_port = r.key.local_port;
  tcp.dst_port = r.key.remote_port;
  tcp.seq = r.seq;
  tcp.ack = r.with_ack ? r.ack : 0;
  tcp.flags.rst = true;
  tcp.flags.ack = r.with_ack;
  tcp.window = 0;
  tcp.checksum = 0;
  encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  if (cfg_.checksum) {
    tcp.checksum =
        transport_checksum(cfg_.local_ip, r.key.remote_ip, kIpProtoTcp,
                           {p + kIpHeaderLen, kTcpHeaderLen});
    encode_tcp({p + kIpHeaderLen, kTcpHeaderLen}, tcp);
  }
  IpHeader ip;
  ip.protocol = kIpProtoTcp;
  ip.src = cfg_.local_ip;
  ip.dst = r.key.remote_ip;
  ip.total_len = static_cast<std::uint16_t>(kSegHdrLen);
  ip.ident = 0;
  encode_ip({p, kIpHeaderLen}, ip);

  ++stats_.rsts_sent;
  ++stats_.segments_out;
  co_await link_.self().compute(node.cost().tcp_ack_overhead);
  co_await link_.send_ip(pkt, kSegHdrLen);
}

sim::Sub<void> TcpEngine::pump_tcb(Tcb& t) {
  if (t.dead) co_return;

  // Handshake segments.
  if (t.syn_queued) {
    t.syn_queued = false;
    TcpFlags f;
    f.syn = true;
    const bool sent = co_await send_flow(t, f, {}, /*queue_retx=*/true);
    (void)sent;
  }
  if (t.synack_queued && !t.dead) {
    t.synack_queued = false;
    TcpFlags f;
    f.syn = true;
    f.ack = true;
    const bool sent = co_await send_flow(t, f, {}, /*queue_retx=*/true);
    (void)sent;
  }

  // Loss recovery: fast retransmit (no retry charge) or RTO resend
  // (charges the retry budget; may tear the flow down).
  if ((t.fast_retx_pending || t.retx_fired) && !t.dead) {
    const bool alive = co_await resend_front(t);
    t.fast_retx_pending = false;
    t.retx_fired = false;
    if (!alive) co_return;
    arm_retx_timer(t);
  }

  // Data, segmented at the MSS under min(peer window, cwnd).
  bool sent_data = false;
  while (!t.dead && !t.sndbuf.empty() &&
         (t.state == TcpState::Established ||
          t.state == TcpState::CloseWait)) {
    const std::uint32_t in_flight = t.snd_nxt - t.snd_una;
    const std::uint32_t wnd = std::min(t.peer_wnd, t.cc.cwnd());
    if (wnd <= in_flight) break;
    const std::uint32_t n = std::min<std::uint32_t>(
        {wnd - in_flight, cfg_.mss,
         static_cast<std::uint32_t>(t.sndbuf.size())});
    if (n == 0) break;
    std::vector<std::uint8_t> seg(t.sndbuf.begin(),
                                  t.sndbuf.begin() + n);
    t.sndbuf.erase(t.sndbuf.begin(), t.sndbuf.begin() + n);
    TcpFlags f;
    f.ack = true;
    f.psh = t.sndbuf.empty();
    const bool sent = co_await send_flow(t, f, seg, /*queue_retx=*/true);
    (void)sent;
    sent_data = true;
  }
  if (sent_data) t.acks_owed = 0;  // data segments carried the ACK

  // Zero-window persist: without it, a window that reopens via a lost
  // ACK deadlocks both sides (satellite fix shared with the library).
  if (!t.dead && !t.sndbuf.empty() && t.peer_wnd == 0 &&
      t.snd_nxt == t.snd_una) {
    if (t.persist_fire) {
      t.persist_fire = false;
      ++stats_.persist_probes;
      std::uint8_t probe = t.sndbuf.front();
      t.sndbuf.pop_front();
      TcpFlags f;
      f.ack = true;
      // The probe byte rides the normal retransmission machinery, so
      // backoff and retry exhaustion come for free.
      const bool sent =
          co_await send_flow(t, f, {&probe, 1}, /*queue_retx=*/true);
      (void)sent;
    } else if (t.persist_timer == 0) {
      t.persist_timer = wheel_.arm(
          link_.self().node().now() + t.rto_cur, cookie(t, kTimerPersist));
    }
  }

  // FIN once the send buffer has drained.
  if (!t.dead && t.fin_pending && !t.fin_sent && t.sndbuf.empty() &&
      (t.state == TcpState::Established ||
       t.state == TcpState::CloseWait)) {
    t.state = t.state == TcpState::Established ? TcpState::FinSent
                                               : TcpState::LastAck;
    t.fin_sent = true;
    TcpFlags f;
    f.fin = true;
    f.ack = true;
    const bool sent = co_await send_flow(t, f, {}, /*queue_retx=*/true);
    (void)sent;
    t.acks_owed = 0;
  }

  // Pure ACKs: each owed ACK goes out separately (out-of-order arrivals
  // owe distinct duplicates — they feed the peer's fast retransmit).
  while (!t.dead && t.acks_owed > 0) {
    --t.acks_owed;
    TcpFlags f;
    f.ack = true;
    const bool sent = co_await send_flow(t, f, {}, /*queue_retx=*/false);
    (void)sent;
  }
}

sim::Sub<void> TcpEngine::flush() {
  while (!dirty_.empty() || !raw_rsts_.empty()) {
    std::vector<RawRst> rsts;
    rsts.swap(raw_rsts_);
    for (const RawRst& r : rsts) {
      co_await send_raw_rst(r);
    }
    std::vector<ConnId> work;
    work.swap(dirty_);
    for (const ConnId id : work) {
      const auto it = by_id_.find(id);
      if (it == by_id_.end()) continue;
      Tcb& t = *it->second;
      t.dirty = false;
      if (t.dead) continue;
      co_await pump_tcb(t);
    }
  }
}

// ------------------------------------------------------------ event loop

sim::Sub<bool> TcpEngine::step(sim::Cycles max_wait) {
  sim::Node& node = link_.self().node();
  co_await flush();
  reap_dead();

  sim::Cycles timeout = max_wait;
  const auto nd = wheel_.next_deadline();
  if (nd) {
    const sim::Cycles now = node.now();
    timeout = *nd > now ? std::min(max_wait, *nd - now) : 0;
  }

  bool got = false;
  sim::Cycles cycles = 0;
  if (timeout > 0) {
    auto d = co_await link_.recv_for(timeout);
    if (d) {
      process_frame(*d, &cycles);
      link_.release(*d);
      got = true;
      // Drain the burst that arrived behind the first frame, bounded so
      // timers and transmissions interleave under sustained load.
      for (std::uint32_t i = 1; i < cfg_.rx_batch; ++i) {
        auto m = link_.try_recv();
        if (!m) break;
        cycles += node.cost().poll_iteration;
        process_frame(*m, &cycles);
        link_.release(*m);
      }
    }
  }
  if (cycles > 0) {
    co_await link_.self().compute(cycles);
  }

  service_timers();
  co_await flush();
  reap_dead();
  co_return got;
}

sim::Sub<void> TcpEngine::run(const bool& done, sim::Cycles deadline,
                              sim::Cycles idle_wait) {
  sim::Node& node = link_.self().node();
  while (!done) {
    if (deadline != 0 && node.now() >= deadline) break;
    sim::Cycles wait = idle_wait;
    if (deadline != 0) {
      wait = std::min(wait, deadline - node.now());
    }
    const bool got = co_await step(wait);
    (void)got;
  }
  co_await flush();
  reap_dead();
}

}  // namespace ash::proto
