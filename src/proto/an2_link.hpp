// Per-process transport binding for the AN2 device.
//
// Owns the process's virtual circuit: a pool of pinned receive buffers
// carved from the process segment, a transmit staging ring, and the
// receive discipline (polling, as in most of the paper's experiments, or
// interrupt-driven wakeup). All CPU costs — poll iterations, send
// syscalls, buffer management — are charged here, so protocol layers
// above just move bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/an2.hpp"
#include "proto/link.hpp"
#include "sim/memops.hpp"
#include "sim/process.hpp"

namespace ash::proto {

class An2Link final : public Link {
 public:
  struct Config {
    std::uint32_t rx_buffers = 16;
    std::uint32_t buf_size = 4096;
    RecvMode mode = RecvMode::Polling;
    int remote_vc = 0;  // peer VC to address transmissions to
  };

  /// Binds a VC on `dev` for `self` and carves rx buffers + a tx staging
  /// ring out of the upper half of the process segment.
  An2Link(sim::Process& self, net::An2Device& dev, const Config& config);

  sim::Process& self() noexcept override { return self_; }
  net::An2Device& device() noexcept { return dev_; }
  int vc() const noexcept { return vc_; }
  const Config& config() const noexcept { return cfg_; }

  void set_mode(RecvMode mode);

  // ---- receive ----

  /// Wait for the next message (polling or blocking per mode). Returns the
  /// descriptor of where the message landed (in this process's memory).
  /// The caller must release() it when done.
  sim::Sub<net::RxDesc> recv() override;

  /// Like recv() with a deadline; nullopt on timeout.
  sim::Sub<std::optional<net::RxDesc>> recv_for(
      sim::Cycles timeout) override;

  /// Non-blocking notification-ring check (free; callers charge their own
  /// poll-iteration cost).
  std::optional<net::RxDesc> try_recv() override { return dev_.poll(vc_); }

  /// Return the buffer underlying `d` to the device free ring. Cheap
  /// (shared-ring write; no syscall on this exokernel interface).
  void release(const net::RxDesc& d) override;

  // Link framing: AN2 carries bare IP packets on the VC.
  std::uint32_t rx_ip_offset() const override { return 0; }
  std::uint32_t tx_alloc_ip(std::uint32_t len) override {
    return tx_alloc(len);
  }
  sim::Sub<bool> send_ip(std::uint32_t ip_addr,
                         std::uint32_t ip_len) override {
    return send(ip_addr, ip_len);
  }
  std::uint32_t ip_mtu() const override { return cfg_.buf_size; }

  // ---- transmit ----

  /// Reserve `len` bytes of transmit staging in process memory. Rotates
  /// through a ring; contents survive until ~rx_buffers more allocations.
  std::uint32_t tx_alloc(std::uint32_t len);

  /// Send [addr, addr+len) to the peer VC: one send system call plus the
  /// driver's transmit work.
  sim::Sub<bool> send(std::uint32_t addr, std::uint32_t len);

  /// Convenience: stage `bytes` (charged copy) and send.
  sim::Sub<bool> send_bytes(std::span<const std::uint8_t> bytes);

  /// Bump-allocate `len` bytes of long-lived scratch memory from the
  /// region after the tx ring (TCP staging rings, shared TCB blocks...).
  /// Throws std::length_error when the segment is exhausted.
  std::uint32_t carve(std::uint32_t len) override;

 private:
  sim::Process& self_;
  net::An2Device& dev_;
  Config cfg_;
  int vc_;
  std::uint32_t tx_base_;
  std::uint32_t tx_size_;
  std::uint32_t tx_next_ = 0;
  std::uint32_t carve_next_;  // scratch bump allocator
};

}  // namespace ash::proto
