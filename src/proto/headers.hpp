// Wire-format encode/decode for Ethernet, ARP, IPv4, UDP, and TCP headers.
//
// All encoders write network byte order into caller-supplied buffers and
// all decoders validate lengths (and, where applicable, checksums), so the
// protocol layers above never touch raw offsets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "proto/wire.hpp"

namespace ash::proto {

// ---------------------------------------------------------------- Ethernet

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;
};

void encode_eth(std::span<std::uint8_t> out, const EthHeader& h);
std::optional<EthHeader> decode_eth(std::span<const std::uint8_t> frame);

// ---------------------------------------------------------------- ARP

struct ArpPacket {
  std::uint16_t opcode = 0;  // 1 request, 2 reply, 3 rarp-request, 4 reply
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;
};

inline constexpr std::size_t kArpPacketLen = 28;
inline constexpr std::uint16_t kArpOpRequest = 1;
inline constexpr std::uint16_t kArpOpReply = 2;
inline constexpr std::uint16_t kRarpOpRequest = 3;
inline constexpr std::uint16_t kRarpOpReply = 4;

void encode_arp(std::span<std::uint8_t> out, const ArpPacket& p);
std::optional<ArpPacket> decode_arp(std::span<const std::uint8_t> data);

// ---------------------------------------------------------------- IPv4

struct IpHeader {
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t total_len = 0;   // header + payload
  std::uint16_t ident = 0;
  bool more_fragments = false;
  std::uint16_t frag_offset = 0;  // in 8-byte units
};

/// Encode a 20-byte IPv4 header (computes the header checksum).
void encode_ip(std::span<std::uint8_t> out, const IpHeader& h);

/// Decode and validate (version, header length, header checksum,
/// total_len <= datagram length).
std::optional<IpHeader> decode_ip(std::span<const std::uint8_t> datagram);

// ---------------------------------------------------------------- UDP

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // header + payload
  std::uint16_t checksum = 0;  // 0 = not computed
};

void encode_udp(std::span<std::uint8_t> out, const UdpHeader& h);
std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> segment);

/// UDP/TCP pseudo-header partial sum (RFC 768 / RFC 793): src, dst,
/// protocol, and transport length, as an unfolded accumulator to be
/// combined with the segment sum.
std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol,
                                std::uint16_t transport_len);

/// Compute the transport checksum field value for a UDP/TCP segment whose
/// checksum field is currently zero.
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

// ---------------------------------------------------------------- TCP

struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
};

void encode_tcp(std::span<std::uint8_t> out, const TcpHeader& h);
std::optional<TcpHeader> decode_tcp(std::span<const std::uint8_t> segment);

/// Sequence-number arithmetic (wraparound-safe).
constexpr std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return seq_diff(a, b) < 0;
}
constexpr bool seq_le(std::uint32_t a, std::uint32_t b) noexcept {
  return seq_diff(a, b) <= 0;
}

}  // namespace ash::proto
