// User-level TCP — a library implementation of RFC 793 structured like
// the paper's (Section IV-D): connection establishment and teardown, a
// sliding window (8 KB in the experiments), configurable MSS, and a
// header-prediction fast path. Where the paper's stack stopped at a
// coarse fixed retransmission timeout and dropped every out-of-order
// segment, this one is production-shaped: RFC 6298 adaptive RTO with
// exponential backoff, duplicate-ACK fast retransmit, a minimal RFC 5681
// congestion window, zero-window persist probes, inbound RST handling,
// TIME_WAIT, and out-of-order reassembly (tcp_control.hpp) — all driven
// by a per-connection timer wheel (sim/timer_wheel.hpp) instead of the
// old fixed `pump(rto)` rounds.
//
// write() is synchronous: it returns once every byte has been
// acknowledged — the paper calls this out as the source of TCP's extra
// ping-pong latency over UDP, and we inherit the behaviour deliberately.
//
// The receive fast path reads and writes the shared TCB block (tcb_shm.hpp)
// so the exact same state can instead be maintained by a downloaded
// ASH/upcall handler; when one is attached, the library's read path simply
// watches the shared staging ring and only runs protocol code for packets
// the handler declined (aborted on).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "proto/an2_link.hpp"
#include "proto/link.hpp"
#include "proto/headers.hpp"
#include "proto/tcb_shm.hpp"
#include "proto/tcp_control.hpp"
#include "sim/timer_wheel.hpp"

namespace ash::proto {

// Values 0–5 are shared with the VCODE fast-path handler via tcb::kState;
// new states append only.
enum class TcpState : std::uint32_t {
  Closed = 0,
  SynSent,
  SynRcvd,
  Established,
  FinSent,    // we sent FIN, awaiting its ACK (and possibly peer FIN)
  CloseWait,  // peer sent FIN; we still may send
  TimeWait,   // both FINs done, we closed actively: hold 2MSL
  LastAck,    // passive close: our FIN sent after peer's, awaiting its ACK
};

struct TcpConfig {
  Ipv4Addr local_ip;
  Ipv4Addr remote_ip;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  std::uint32_t mss = 3072;      // AN2 default; 1500 Ethernet; 536 WAN
  std::uint32_t window = 8192;   // fixed, as in the experiments
  bool checksum = true;
  /// "In place" receive (Table II): the application uses data where the
  /// network put it, so the library's network-buffer-to-read-buffer copy
  /// is never paid. (The bytes still move for simulation correctness;
  /// they just cost nothing — the zero-copy path.)
  bool in_place = false;
  sim::Cycles rto = sim::us(100000.0);  // initial RTO before any RTT sample
  /// RTO floor (RFC 6298 G): must exceed the serialization time of a full
  /// window on the slowest modeled link or ACKs race the timer. Clamped
  /// to `rto` at construction so configs that ask for faster recovery
  /// (tests, benches) get it.
  sim::Cycles min_rto = sim::us(25000.0);
  sim::Cycles max_rto = sim::us(2000000.0);
  /// TIME_WAIT hold (2MSL). Sim-scaled: wire MSL here is microseconds,
  /// not minutes; long enough to absorb a retransmitted FIN.
  sim::Cycles time_wait = sim::us(10000.0);
  int max_retries = 8;
  std::uint32_t iss = 1000;      // initial send sequence (deterministic)
  /// Buffer out-of-order segments for reassembly. Off = the pre-refactor
  /// drop-everything receiver (kept as the soak baseline).
  bool reassemble = true;
  /// Byte cap on the out-of-order store (0 = 2 * window).
  std::uint32_t ooo_limit = 0;
  /// Answer segments that arrive while Closed (and not listening) with a
  /// RST, like a real host. Off by default: library connections are
  /// created before their peer speaks, and a SYN racing construction
  /// must get silence (and a retransmit), not a reset.
  bool rst_when_closed = false;
};

class TcpConnection {
 public:
  TcpConnection(Link& link, const TcpConfig& config);

  Link& link() noexcept { return link_; }
  TcpState state() const noexcept { return state_; }
  const TcpConfig& config() const noexcept { return cfg_; }
  TcbShm& shm() noexcept { return shm_; }

  /// Active open: SYN -> SYN/ACK -> ACK. False on timeout/failure.
  sim::Sub<bool> connect();

  /// Passive open: await SYN, reply SYN/ACK, await ACK.
  sim::Sub<bool> accept();

  /// Send `len` bytes from application memory, segmented at the MSS,
  /// honoring min(peer window, congestion window); returns once all
  /// bytes are ACKed.
  sim::Sub<bool> write_from(std::uint32_t app_addr, std::uint32_t len);

  /// Read up to `max_len` bytes into application memory; blocks until at
  /// least one byte (or connection teardown — then returns 0).
  sim::Sub<std::uint32_t> read_into(std::uint32_t app_addr,
                                    std::uint32_t max_len);

  /// Consume up to `max_len` buffered bytes without copying them anywhere
  /// (the experiments' "throw away the application data" receiver, and
  /// the natural read for in-place consumers).
  sim::Sub<std::uint32_t> read_discard(std::uint32_t max_len);

  /// Orderly close: full RFC 793 teardown — active close passes through
  /// FIN_WAIT/TIME_WAIT, passive close through LAST_ACK.
  sim::Sub<void> close();

  /// When a kernel handler (ASH/upcall) maintains the shared TCB, the
  /// library must not consume packets greedily: read_into watches the
  /// staging ring and polls the notify ring only for handler fallbacks.
  void set_handler_attached(bool on) noexcept { handler_attached_ = on; }

  struct Stats {
    std::uint64_t segments_in = 0;
    std::uint64_t fastpath_hits = 0;
    std::uint64_t slowpath = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t cksum_failures = 0;
    std::uint64_t acks_sent = 0;
    /// Genuinely unbufferable arrivals: out of window, or the OOO store
    /// was full (with reassembly off: every non-in-order segment).
    std::uint64_t ooo_dropped = 0;
    std::uint64_t aborts = 0;  // torn down on retry exhaustion or RST
    // Split from the old ooo_dropped catch-all: retransmission noise
    // (already-delivered data) vs. genuine reordering.
    std::uint64_t dup_segments = 0;    // entirely below rcv_nxt
    std::uint64_t ooo_buffered = 0;    // segments parked for reassembly
    std::uint64_t ooo_reassembled = 0; // bytes later drained in order
    std::uint64_t rsts_received = 0;   // acceptable RSTs (tore us down)
    std::uint64_t rsts_ignored = 0;    // RSTs failing seq validation
    std::uint64_t rsts_sent = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t rto_timeouts = 0;
    std::uint64_t persist_probes = 0;  // zero-window probes sent
    std::uint64_t window_updates = 0;  // reopen ACKs from the read path
    std::uint64_t stage_full_drops = 0;  // in-order but staging ring full
    std::uint64_t timewait_drops = 0;  // out-of-window segs in TIME_WAIT
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Segments awaiting acknowledgement (empty after teardown — a torn
  /// down connection keeps nothing to retransmit).
  std::size_t retx_depth() const noexcept { return retx_.size(); }

  /// Current retransmission timeout (adaptive; backs off exponentially).
  sim::Cycles current_rto() const noexcept { return rto_cur_; }
  std::uint32_t cwnd() const noexcept { return cc_.cwnd(); }

 private:
  struct RetxSegment {
    std::uint32_t seq;
    std::vector<std::uint8_t> payload;
    TcpFlags flags;
    int retries = 0;
  };

  enum TimerKind : std::uint64_t {
    kTimerRetx = 1,
    kTimerPersist = 2,
    kTimerTimeWait = 3,
  };

  // ---- shared-TCB convenience ----
  std::uint32_t rcv_nxt() const { return shm_.get(tcb::kRcvNxt); }
  void set_rcv_nxt(std::uint32_t v) { shm_.set(tcb::kRcvNxt, v); }
  std::uint32_t snd_una() const { return shm_.get(tcb::kSndUna); }
  void set_snd_una(std::uint32_t v) { shm_.set(tcb::kSndUna, v); }
  std::uint32_t snd_wnd() const { return shm_.get(tcb::kSndWnd); }
  void set_state(TcpState s);

  std::uint32_t advertised_window() const;
  std::uint32_t ooo_limit() const {
    return cfg_.ooo_limit ? cfg_.ooo_limit : 2 * cfg_.window;
  }

  /// Transmit one segment (flags + optional payload from app memory or a
  /// retransmit buffer). Appends to the retransmit queue when it carries
  /// data or SYN/FIN.
  sim::Sub<bool> send_segment(TcpFlags flags,
                              std::span<const std::uint8_t> payload,
                              bool queue_retx);

  sim::Sub<bool> send_ack();

  /// Raw RST (optionally carrying an ACK) at an explicit sequence —
  /// answers segments for which no connection state exists.
  sim::Sub<void> send_rst(std::uint32_t seq, std::uint32_t ack,
                          bool with_ack);

  /// Process one raw packet from the link (any state). Updates shared and
  /// private state, sends ACKs as needed.
  sim::Sub<void> process_packet(const net::RxDesc& d);

  /// Inbound RST: RFC 5961-style sequence validation, then teardown.
  void process_rst(const TcpHeader& tcp);

  /// Wait for a packet or the next timer deadline (whichever is sooner,
  /// capped at `horizon`), then service expired timers. Returns true if
  /// a packet was processed and the connection is still alive.
  sim::Sub<bool> wait_step(sim::Cycles horizon);

  /// Fire expired wheel timers: retransmission (with backoff), persist
  /// probes, TIME_WAIT expiry. False when a retransmission exhausted the
  /// retry budget (the connection is then fully torn down).
  sim::Sub<bool> service_timers();

  /// Retransmit the oldest unacked segment. `count_retry` burns retry
  /// budget (RTO path); fast retransmit passes false. False when retries
  /// are exhausted — the connection is then fully torn down (state
  /// Closed, retransmit queue cleared, shared TCB in agreement).
  sim::Sub<bool> resend_front(bool count_retry);

  /// Retry budget exhausted or RST: tear the connection down instead of
  /// leaving a half-open TCB.
  void abort_connection();

  /// Pop retransmit segments fully covered by `ack` (also reconciles
  /// handler-driven kSndUna advances) and re-arm the retx timer.
  void reap_acked(std::uint32_t ack);

  void arm_retx_timer();
  void cancel_timer(sim::TimerWheel::Id& id);
  void enter_time_wait();
  /// FIN_WAIT -> TIME_WAIT / LAST_ACK -> CLOSED once our FIN is acked.
  void maybe_finish_close();

  void stage_append(const std::uint8_t* data, std::uint32_t len,
                    sim::Cycles* cycles);
  /// Drain bytes now contiguous at rcv_nxt from the OOO store into the
  /// staging ring.
  void drain_ooo(sim::Cycles* cycles);

  Link& link_;
  TcpConfig cfg_;
  TcbShm shm_;
  TcpState state_ = TcpState::Closed;

  std::uint32_t snd_nxt_ = 0;
  std::uint32_t last_advertised_wnd_ = 0;
  bool peer_fin_seen_ = false;
  bool handler_attached_ = false;
  bool listening_ = false;

  std::deque<RetxSegment> retx_;
  std::uint16_t next_ident_ = 1;

  // Adaptive retransmission (RFC 6298) + congestion control (RFC 5681).
  RttEstimator rtt_;
  CongestionWindow cc_;
  sim::Cycles rto_cur_ = 0;
  std::uint32_t dup_acks_ = 0;
  bool rtt_pending_ = false;     // a timed segment is in flight
  std::uint32_t rtt_seq_ = 0;    // ack covering this ends the sample
  sim::Cycles rtt_sent_at_ = 0;

  // Out-of-order reassembly.
  OooBuffer ooo_;

  // Timer wheel: retransmission, persist, TIME_WAIT.
  sim::TimerWheel wheel_;
  sim::TimerWheel::Id retx_timer_ = 0;
  sim::TimerWheel::Id persist_timer_ = 0;
  sim::TimerWheel::Id timewait_timer_ = 0;
  bool persist_fire_ = false;    // persist timer expired; writer must probe

  Stats stats_;
};

}  // namespace ash::proto
