// User-level TCP — a library implementation of RFC 793's core, structured
// like the paper's (Section IV-D): connection establishment and teardown,
// a fixed-size sliding window (8 KB in the experiments), configurable MSS,
// header-prediction fast path, coarse retransmission timeout — and, like
// the paper's, deliberately NOT a full modern TCP (no fast retransmit,
// fast recovery, congestion control, or clever buffering).
//
// write() is synchronous: it returns once every byte has been
// acknowledged — the paper calls this out as the source of TCP's extra
// ping-pong latency over UDP, and we inherit the behaviour deliberately.
//
// The receive fast path reads and writes the shared TCB block (tcb_shm.hpp)
// so the exact same state can instead be maintained by a downloaded
// ASH/upcall handler; when one is attached, the library's read path simply
// watches the shared staging ring and only runs protocol code for packets
// the handler declined (aborted on).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "proto/an2_link.hpp"
#include "proto/link.hpp"
#include "proto/headers.hpp"
#include "proto/tcb_shm.hpp"

namespace ash::proto {

enum class TcpState : std::uint32_t {
  Closed = 0,
  SynSent,
  SynRcvd,
  Established,
  FinSent,    // we sent FIN, awaiting its ACK (and possibly peer FIN)
  CloseWait,  // peer sent FIN; we still may send
};

struct TcpConfig {
  Ipv4Addr local_ip;
  Ipv4Addr remote_ip;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  std::uint32_t mss = 3072;      // AN2 default; 1500 Ethernet; 536 WAN
  std::uint32_t window = 8192;   // fixed, as in the experiments
  bool checksum = true;
  /// "In place" receive (Table II): the application uses data where the
  /// network put it, so the library's network-buffer-to-read-buffer copy
  /// is never paid. (The bytes still move for simulation correctness;
  /// they just cost nothing — the zero-copy path.)
  bool in_place = false;
  sim::Cycles rto = sim::us(100000.0);  // retransmission timeout (100 ms)
  int max_retries = 8;
  std::uint32_t iss = 1000;      // initial send sequence (deterministic)
};

class TcpConnection;
sim::Sub<bool> tcp_probe();
sim::Sub<bool> tcp_probe2(TcpConnection& c);

class TcpConnection {
 public:
  TcpConnection(Link& link, const TcpConfig& config);

  Link& link() noexcept { return link_; }
  TcpState state() const noexcept { return state_; }
  const TcpConfig& config() const noexcept { return cfg_; }
  TcbShm& shm() noexcept { return shm_; }

  sim::Sub<bool> probe_member();

  /// Active open: SYN -> SYN/ACK -> ACK. False on timeout/failure.
  sim::Sub<bool> connect();

  /// Passive open: await SYN, reply SYN/ACK, await ACK.
  sim::Sub<bool> accept();

  /// Send `len` bytes from application memory, segmented at the MSS,
  /// honoring the peer window; returns once all bytes are ACKed.
  sim::Sub<bool> write_from(std::uint32_t app_addr, std::uint32_t len);

  /// Read up to `max_len` bytes into application memory; blocks until at
  /// least one byte (or connection teardown — then returns 0).
  sim::Sub<std::uint32_t> read_into(std::uint32_t app_addr,
                                    std::uint32_t max_len);

  /// Consume up to `max_len` buffered bytes without copying them anywhere
  /// (the experiments' "throw away the application data" receiver, and
  /// the natural read for in-place consumers).
  sim::Sub<std::uint32_t> read_discard(std::uint32_t max_len);

  /// Orderly close: FIN handshake (simplified half of RFC 793 teardown).
  sim::Sub<void> close();

  /// When a kernel handler (ASH/upcall) maintains the shared TCB, the
  /// library must not consume packets greedily: read_into watches the
  /// staging ring and polls the notify ring only for handler fallbacks.
  void set_handler_attached(bool on) noexcept { handler_attached_ = on; }

  struct Stats {
    std::uint64_t segments_in = 0;
    std::uint64_t fastpath_hits = 0;
    std::uint64_t slowpath = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t cksum_failures = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t ooo_dropped = 0;
    std::uint64_t aborts = 0;  // torn down on retry exhaustion
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Segments awaiting acknowledgement (empty after teardown — a torn
  /// down connection keeps nothing to retransmit).
  std::size_t retx_depth() const noexcept { return retx_.size(); }

 private:
  struct RetxSegment {
    std::uint32_t seq;
    std::vector<std::uint8_t> payload;
    TcpFlags flags;
    int retries = 0;
  };

  // ---- shared-TCB convenience ----
  std::uint32_t rcv_nxt() const { return shm_.get(tcb::kRcvNxt); }
  void set_rcv_nxt(std::uint32_t v) { shm_.set(tcb::kRcvNxt, v); }
  std::uint32_t snd_una() const { return shm_.get(tcb::kSndUna); }
  void set_snd_una(std::uint32_t v) { shm_.set(tcb::kSndUna, v); }
  std::uint32_t snd_wnd() const { return shm_.get(tcb::kSndWnd); }
  void set_state(TcpState s);

  std::uint32_t advertised_window() const;

  /// Transmit one segment (flags + optional payload from app memory or a
  /// retransmit buffer). Appends to the retransmit queue when it carries
  /// data or SYN/FIN.
  sim::Sub<bool> send_segment(TcpFlags flags,
                              std::span<const std::uint8_t> payload,
                              bool queue_retx);

  sim::Sub<bool> send_ack();

  /// Process one raw packet from the link (any state). Updates shared and
  /// private state, sends ACKs as needed.
  sim::Sub<void> process_packet(const net::RxDesc& d);

  /// Wait for a packet (or handler progress) and process it. Returns
  /// false on rto expiry with nothing processed.
  sim::Sub<bool> pump(sim::Cycles timeout);

  /// Retransmit the oldest unacked segment. False when retries are
  /// exhausted — the connection is then fully torn down (state Closed,
  /// retransmit queue cleared, shared TCB in agreement); callers only
  /// propagate the failure.
  sim::Sub<bool> retransmit();

  /// Retry budget exhausted (or RST-equivalent local abort): tear the
  /// connection down instead of leaving a half-open TCB.
  void abort_connection();

  void stage_append(const std::uint8_t* data, std::uint32_t len,
                    sim::Cycles* cycles);

  Link& link_;
  TcpConfig cfg_;
  TcbShm shm_;
  TcpState state_ = TcpState::Closed;

  std::uint32_t snd_nxt_ = 0;
  std::uint32_t last_advertised_wnd_ = 0;
  bool peer_fin_seen_ = false;
  bool handler_attached_ = false;
  bool listening_ = false;

  std::deque<RetxSegment> retx_;
  std::uint16_t next_ident_ = 1;
  Stats stats_;
};

}  // namespace ash::proto
