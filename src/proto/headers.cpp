#include "proto/headers.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

using util::load_be16;
using util::load_be32;
using util::store_be16;
using util::store_be32;

std::string Ipv4Addr::to_string() const {
  char buf[20];
  const int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                              (value >> 24) & 0xff, (value >> 16) & 0xff,
                              (value >> 8) & 0xff, value & 0xff);
  return std::string(buf, static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------- Ethernet

void encode_eth(std::span<std::uint8_t> out, const EthHeader& h) {
  assert(out.size() >= kEthHeaderLen);
  std::memcpy(out.data(), h.dst.bytes.data(), 6);
  std::memcpy(out.data() + 6, h.src.bytes.data(), 6);
  store_be16(out.data() + 12, h.ethertype);
}

std::optional<EthHeader> decode_eth(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHeaderLen) return std::nullopt;
  EthHeader h;
  std::memcpy(h.dst.bytes.data(), frame.data(), 6);
  std::memcpy(h.src.bytes.data(), frame.data() + 6, 6);
  h.ethertype = load_be16(frame.data() + 12);
  return h;
}

// ---------------------------------------------------------------- ARP

void encode_arp(std::span<std::uint8_t> out, const ArpPacket& p) {
  assert(out.size() >= kArpPacketLen);
  store_be16(out.data() + 0, 1);       // htype: Ethernet
  store_be16(out.data() + 2, kEtherTypeIp);
  out[4] = 6;                          // hlen
  out[5] = 4;                          // plen
  store_be16(out.data() + 6, p.opcode);
  std::memcpy(out.data() + 8, p.sender_mac.bytes.data(), 6);
  store_be32(out.data() + 14, p.sender_ip.value);
  std::memcpy(out.data() + 18, p.target_mac.bytes.data(), 6);
  store_be32(out.data() + 24, p.target_ip.value);
}

std::optional<ArpPacket> decode_arp(std::span<const std::uint8_t> data) {
  if (data.size() < kArpPacketLen) return std::nullopt;
  if (load_be16(data.data()) != 1 || load_be16(data.data() + 2) != kEtherTypeIp ||
      data[4] != 6 || data[5] != 4) {
    return std::nullopt;
  }
  ArpPacket p;
  p.opcode = load_be16(data.data() + 6);
  std::memcpy(p.sender_mac.bytes.data(), data.data() + 8, 6);
  p.sender_ip.value = load_be32(data.data() + 14);
  std::memcpy(p.target_mac.bytes.data(), data.data() + 18, 6);
  p.target_ip.value = load_be32(data.data() + 24);
  return p;
}

// ---------------------------------------------------------------- IPv4

void encode_ip(std::span<std::uint8_t> out, const IpHeader& h) {
  assert(out.size() >= kIpHeaderLen);
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = 0;     // TOS
  store_be16(out.data() + 2, h.total_len);
  store_be16(out.data() + 4, h.ident);
  std::uint16_t frag = h.frag_offset & 0x1fff;
  if (h.more_fragments) frag |= 0x2000;
  store_be16(out.data() + 6, frag);
  out[8] = h.ttl;
  out[9] = h.protocol;
  store_be16(out.data() + 10, 0);  // checksum placeholder
  store_be32(out.data() + 12, h.src.value);
  store_be32(out.data() + 16, h.dst.value);
  const std::uint16_t ck =
      util::internet_checksum({out.data(), kIpHeaderLen});
  store_be16(out.data() + 10, ck);
}

std::optional<IpHeader> decode_ip(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kIpHeaderLen) return std::nullopt;
  if (datagram[0] != 0x45) return std::nullopt;  // no options supported
  if (!util::checksum_ok({datagram.data(), kIpHeaderLen})) {
    return std::nullopt;
  }
  IpHeader h;
  h.total_len = load_be16(datagram.data() + 2);
  if (h.total_len < kIpHeaderLen || h.total_len > datagram.size()) {
    return std::nullopt;
  }
  h.ident = load_be16(datagram.data() + 4);
  const std::uint16_t frag = load_be16(datagram.data() + 6);
  h.more_fragments = (frag & 0x2000) != 0;
  h.frag_offset = frag & 0x1fff;
  h.ttl = datagram[8];
  h.protocol = datagram[9];
  h.src.value = load_be32(datagram.data() + 12);
  h.dst.value = load_be32(datagram.data() + 16);
  return h;
}

// ---------------------------------------------------------------- UDP

void encode_udp(std::span<std::uint8_t> out, const UdpHeader& h) {
  assert(out.size() >= kUdpHeaderLen);
  store_be16(out.data() + 0, h.src_port);
  store_be16(out.data() + 2, h.dst_port);
  store_be16(out.data() + 4, h.length);
  store_be16(out.data() + 6, h.checksum);
}

std::optional<UdpHeader> decode_udp(std::span<const std::uint8_t> segment) {
  if (segment.size() < kUdpHeaderLen) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(segment.data() + 0);
  h.dst_port = load_be16(segment.data() + 2);
  h.length = load_be16(segment.data() + 4);
  h.checksum = load_be16(segment.data() + 6);
  if (h.length < kUdpHeaderLen || h.length > segment.size()) {
    return std::nullopt;
  }
  return h;
}

std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol,
                                std::uint16_t transport_len) {
  std::uint32_t acc = 0;
  acc = util::cksum32_accumulate(acc, (src.value >> 16) << 16 |
                                          (src.value & 0xffffu));
  acc = util::cksum32_accumulate(acc, dst.value);
  acc = util::cksum32_accumulate(
      acc, (static_cast<std::uint32_t>(protocol) << 16) | transport_len);
  return acc;
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  std::uint32_t acc = pseudo_header_sum(
      src, dst, protocol, static_cast<std::uint16_t>(segment.size()));
  acc = util::cksum_partial(segment, acc);
  const std::uint16_t ck = static_cast<std::uint16_t>(~util::fold16(acc));
  return ck == 0 ? 0xffff : ck;  // 0 is reserved for "no checksum" (UDP)
}

// ---------------------------------------------------------------- TCP

void encode_tcp(std::span<std::uint8_t> out, const TcpHeader& h) {
  assert(out.size() >= kTcpHeaderLen);
  store_be16(out.data() + 0, h.src_port);
  store_be16(out.data() + 2, h.dst_port);
  store_be32(out.data() + 4, h.seq);
  store_be32(out.data() + 8, h.ack);
  out[12] = 5 << 4;  // data offset: 5 words, no options
  std::uint8_t flags = 0;
  if (h.flags.fin) flags |= 0x01;
  if (h.flags.syn) flags |= 0x02;
  if (h.flags.rst) flags |= 0x04;
  if (h.flags.psh) flags |= 0x08;
  if (h.flags.ack) flags |= 0x10;
  out[13] = flags;
  store_be16(out.data() + 14, h.window);
  store_be16(out.data() + 16, h.checksum);
  store_be16(out.data() + 18, 0);  // urgent pointer
}

std::optional<TcpHeader> decode_tcp(std::span<const std::uint8_t> segment) {
  if (segment.size() < kTcpHeaderLen) return std::nullopt;
  if ((segment[12] >> 4) != 5) return std::nullopt;  // options unsupported
  TcpHeader h;
  h.src_port = load_be16(segment.data() + 0);
  h.dst_port = load_be16(segment.data() + 2);
  h.seq = load_be32(segment.data() + 4);
  h.ack = load_be32(segment.data() + 8);
  const std::uint8_t flags = segment[13];
  h.flags.fin = flags & 0x01;
  h.flags.syn = flags & 0x02;
  h.flags.rst = flags & 0x04;
  h.flags.psh = flags & 0x08;
  h.flags.ack = flags & 0x10;
  h.window = load_be16(segment.data() + 14);
  h.checksum = load_be16(segment.data() + 16);
  return h;
}

}  // namespace ash::proto
