// User-level UDP (RFC 768) over the AN2 link.
//
// A straightforward library implementation, structured like the paper's
// (Section IV-D): the application links the library; send allocates a
// packet in the process's transmit staging area, fills IP and UDP headers,
// optionally computes the Internet checksum, and issues one send system
// call. Receive demultiplexes "using only the virtual circuit index" (the
// VC is the connection), validates headers, optionally verifies the
// checksum, and either hands the application a pointer into the receive
// buffer ("in place" — the zero-copy variant of Table II) or copies the
// payload into an application buffer.
//
// Matching the paper's measurement note, the copy and the checksum here
// are deliberately NOT integrated ("unlike their numbers, our checksum and
// memory copy are not integrated for this measurement") — integration is
// what the ASH/DILP fast path adds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "proto/an2_link.hpp"
#include "proto/link.hpp"
#include "proto/headers.hpp"

namespace ash::proto {

class UdpSocket {
 public:
  struct Options {
    Ipv4Addr local_ip;
    Ipv4Addr remote_ip;
    std::uint16_t local_port = 0;
    std::uint16_t remote_port = 0;
    bool checksum = true;  // end-to-end Internet checksum
  };

  UdpSocket(Link& link, const Options& options)
      : link_(link), opt_(options) {}

  Link& link() noexcept { return link_; }

  /// Datagram as received. `payload_addr` points into this process's
  /// memory; `desc` must be released via release() (in-place consumers
  /// release after using the data; copying consumers release immediately
  /// on return from recv()).
  struct Datagram {
    std::uint32_t payload_addr = 0;
    std::uint16_t payload_len = 0;
    std::uint16_t src_port = 0;
    net::RxDesc desc;
  };

  /// Send `payload` from application memory at `app_addr`. Builds the
  /// packet in transmit staging (one copy, charged), fills headers,
  /// computes the checksum if enabled, sends.
  sim::Sub<bool> send_from(std::uint32_t app_addr, std::uint16_t len);

  /// Send literal bytes (convenience for small control messages).
  sim::Sub<bool> send(std::span<const std::uint8_t> payload);

  /// Receive one datagram "in place": zero copies; the application uses
  /// the payload where it landed and must release() it afterwards.
  /// Malformed or checksum-failing packets are dropped and the wait
  /// continues.
  sim::Sub<Datagram> recv_in_place();

  /// Receive and copy the payload to `app_addr` (the traditional
  /// read-interface variant: one additional copy, charged; checksum — if
  /// enabled — is a separate pass, also charged).
  sim::Sub<Datagram> recv_copy(std::uint32_t app_addr,
                               std::uint16_t max_len);

  void release(const Datagram& d) { link_.release(d.desc); }

  std::uint64_t checksum_failures() const noexcept { return cksum_fail_; }

 private:
  /// Validate headers/checksum of a raw message; nullopt = drop.
  std::optional<Datagram> parse(const net::RxDesc& d);

  /// Build a full IP/UDP packet around payload already staged at
  /// `payload_addr` inside packet buffer `pkt_addr`. Returns total length.
  std::uint32_t finish_packet(std::uint32_t pkt_addr, std::uint16_t len);

  Link& link_;
  Options opt_;
  std::uint16_t next_ident_ = 1;
  std::uint64_t cksum_fail_ = 0;
};

}  // namespace ash::proto
