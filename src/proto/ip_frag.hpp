// IPv4 fragmentation and reassembly.
//
// The paper's experiments choose MSSes that avoid fragmentation; the
// library still implements it (it is part of a complete user-level IP),
// and the tests exercise out-of-order and lossy arrivals.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/headers.hpp"
#include "proto/link.hpp"

namespace ash::proto {

/// Send `payload_len` bytes at `payload_addr` (in the owner's memory) as
/// an IPv4 datagram, fragmenting at the link's IP MTU when necessary.
/// Fragment payload sizes are multiples of 8 as RFC 791 requires.
/// Returns false if any fragment failed to transmit.
sim::Sub<bool> ip_send_fragmented(Link& link, Ipv4Addr src, Ipv4Addr dst,
                                  std::uint8_t protocol,
                                  std::uint32_t payload_addr,
                                  std::uint32_t payload_len,
                                  std::uint16_t ident);

/// Reassembles fragmented datagrams. Feed every received IP datagram
/// (starting at its IP header); complete payloads pop out.
class IpReassembler {
 public:
  struct Datagram {
    Ipv4Addr src;
    Ipv4Addr dst;
    std::uint8_t protocol = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Process one datagram. Unfragmented datagrams return immediately;
  /// fragments are buffered until their datagram completes. nullopt =
  /// nothing completed yet (or the datagram was malformed).
  std::optional<Datagram> feed(std::span<const std::uint8_t> datagram);

  /// Number of partially reassembled datagrams currently buffered.
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Drop partial datagrams older than `max_age_feeds` feed() calls (the
  /// library's stand-in for the reassembly timer).
  void expire(std::uint32_t max_age_feeds);

 private:
  struct Partial {
    std::vector<std::uint8_t> bytes;
    std::vector<bool> have;        // per 8-byte block
    std::uint32_t total_len = 0;   // 0 until the last fragment arrives
    std::uint32_t received = 0;    // bytes received
    std::uint8_t protocol = 0;
    Ipv4Addr src, dst;
    std::uint64_t born = 0;
  };

  std::uint64_t feeds_ = 0;
  std::unordered_map<std::uint64_t, Partial> pending_;  // key: src^ident
};

}  // namespace ash::proto
