// IPv4 fragmentation and reassembly.
//
// The paper's experiments choose MSSes that avoid fragmentation; the
// library still implements it (it is part of a complete user-level IP),
// and the tests exercise out-of-order and lossy arrivals.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/headers.hpp"
#include "proto/link.hpp"

namespace ash::proto {

/// Send `payload_len` bytes at `payload_addr` (in the owner's memory) as
/// an IPv4 datagram, fragmenting at the link's IP MTU when necessary.
/// Fragment payload sizes are multiples of 8 as RFC 791 requires.
/// Returns false if any fragment failed to transmit.
sim::Sub<bool> ip_send_fragmented(Link& link, Ipv4Addr src, Ipv4Addr dst,
                                  std::uint8_t protocol,
                                  std::uint32_t payload_addr,
                                  std::uint32_t payload_len,
                                  std::uint16_t ident);

/// Reassembles fragmented datagrams. Feed every received IP datagram
/// (starting at its IP header); complete payloads pop out.
///
/// State is bounded against lossy and hostile fragment streams: partial
/// datagrams age out automatically after `Limits::max_age_feeds` feed()
/// calls (the library's stand-in for the reassembly timer — no separate
/// timer call needed on the live receive path), at most
/// `Limits::max_datagrams` partials are held, and their buffered bytes
/// never exceed `Limits::max_buffered_bytes` (oldest-first eviction).
/// Overlapping fragments cannot rewrite already-accepted bytes: the first
/// copy of each 8-byte block wins.
class IpReassembler {
 public:
  struct Limits {
    /// Concurrent partially reassembled datagrams (0 = unlimited).
    std::size_t max_datagrams = 64;
    /// Total bytes buffered across all partials (0 = unlimited).
    std::size_t max_buffered_bytes = 512 * 1024;
    /// Auto-expire partials older than this many feed() calls
    /// (0 = never; expire() can still be called manually).
    std::uint32_t max_age_feeds = 256;
  };

  struct Stats {
    std::uint64_t expired = 0;    // partials aged out
    std::uint64_t evicted = 0;    // partials pushed out by the bounds
    std::uint64_t malformed = 0;  // fragments rejected outright
    std::uint64_t overlaps = 0;   // fragments overlapping accepted blocks
  };

  struct Datagram {
    Ipv4Addr src;
    Ipv4Addr dst;
    std::uint8_t protocol = 0;
    std::vector<std::uint8_t> payload;
  };

  IpReassembler() = default;
  explicit IpReassembler(const Limits& limits) : limits_(limits) {}

  /// Process one datagram. Unfragmented datagrams return immediately;
  /// fragments are buffered until their datagram completes. nullopt =
  /// nothing completed yet (or the datagram was malformed).
  std::optional<Datagram> feed(std::span<const std::uint8_t> datagram);

  /// Number of partially reassembled datagrams currently buffered.
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Bytes currently buffered across all partial datagrams.
  std::size_t buffered_bytes() const noexcept { return buffered_; }

  const Stats& stats() const noexcept { return stats_; }

  /// Drop partial datagrams older than `max_age_feeds` feed() calls.
  /// feed() applies Limits::max_age_feeds automatically; this remains for
  /// callers with their own timer discipline.
  void expire(std::uint32_t max_age_feeds);

 private:
  struct Partial {
    std::vector<std::uint8_t> bytes;  // grows with the highest offset seen
    std::vector<bool> have;           // per 8-byte block
    std::uint32_t total_len = 0;      // 0 until the last fragment arrives
    std::uint8_t protocol = 0;
    Ipv4Addr src, dst;
    std::uint64_t born = 0;
  };

  /// Evict oldest partials until `need` more buffered bytes fit the
  /// limits (and, when `admitting_new`, a fresh partial may be added).
  /// False if impossible.
  bool make_room(std::size_t need, std::uint64_t keep_key,
                 bool admitting_new);
  void erase_partial(std::uint64_t key);

  Limits limits_;
  Stats stats_;
  std::uint64_t feeds_ = 0;
  std::size_t buffered_ = 0;
  std::unordered_map<std::uint64_t, Partial> pending_;  // key: src^ident
};

}  // namespace ash::proto
