// Minimal HTTP/1.0 over the user-level TCP library (part of the paper's
// protocol inventory). GET only; one request per connection; enough for
// the web-server-style workloads the paper's discussion mentions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "proto/tcp.hpp"

namespace ash::proto {

struct HttpResponse {
  int status = 0;
  std::string reason;
  std::vector<std::uint8_t> body;
};

/// Client: send `GET <path> HTTP/1.0` on an *established* connection and
/// read the response until the peer closes. nullopt on protocol errors.
sim::Sub<std::optional<HttpResponse>> http_get(TcpConnection& conn,
                                               const std::string& path);

/// Server: on an *established* connection, read one request, invoke
/// `handler(path)` (nullopt => 404), send the response, and close.
/// Returns the request path, or nullopt if the request was malformed.
using HttpHandler =
    std::function<std::optional<std::vector<std::uint8_t>>(
        const std::string& path)>;
sim::Sub<std::optional<std::string>> http_serve_one(TcpConnection& conn,
                                                    const HttpHandler& handler);

}  // namespace ash::proto
