// Minimal HTTP/1.0 over the user-level TCP library (part of the paper's
// protocol inventory). GET only; one request per connection; enough for
// the web-server-style workloads the paper's discussion mentions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "proto/tcp.hpp"

namespace ash::proto {

struct HttpResponse {
  int status = 0;
  std::string reason;
  std::vector<std::uint8_t> body;
};

/// Client: send `GET <path> HTTP/1.0` on an *established* connection and
/// read the response until the peer closes. nullopt on protocol errors.
sim::Sub<std::optional<HttpResponse>> http_get(TcpConnection& conn,
                                               const std::string& path);

/// Server: on an *established* connection, read one request, invoke
/// `handler(path)` (nullopt => 404), send the response, and close.
/// Returns the request path, or nullopt if the request was malformed.
using HttpHandler =
    std::function<std::optional<std::vector<std::uint8_t>>(
        const std::string& path)>;
sim::Sub<std::optional<std::string>> http_serve_one(TcpConnection& conn,
                                                    const HttpHandler& handler);

// ---- wire-format helpers -------------------------------------------------
// Shared by the blocking calls above and event-driven servers (TcpEngine):
// the exact request/response bytes, split from the transport so both paths
// speak an identical protocol.

/// The one-line HTTP/1.0 GET request, terminated by the blank line.
std::string http_format_get(const std::string& path);

/// True once `raw` holds a complete request head (the blank line arrived).
bool http_request_complete(std::string_view raw);

/// Extract the GET path from a (complete) request; nullopt when malformed
/// or not a GET.
std::optional<std::string> http_parse_request(std::string_view raw);

/// Response bytes for a handler result: 200 + Content-Length + body when
/// `content` has a value, 404 when it does not, 400 when `path` was
/// unparseable (pass nullopt for `path`).
std::string http_format_response(
    const std::optional<std::string>& path,
    const std::optional<std::vector<std::uint8_t>>& content);

/// Parse a complete HTTP/1.0 response (read-to-close framing).
std::optional<HttpResponse> http_parse_response(const std::string& raw);

}  // namespace ash::proto
