#include "proto/http.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/node.hpp"

namespace ash::proto {
namespace {

/// Scratch area in the owner's segment for wire bytes (HTTP strings must
/// live in simulated memory to ride through TCP).
std::uint32_t scratch(TcpConnection& conn, std::uint32_t len) {
  return conn.link().carve(len);
}

/// Read from the connection until `needle` appears or the peer closes;
/// returns everything read.
sim::Sub<std::string> read_until(TcpConnection& conn, const char* needle) {
  sim::Node& node = conn.link().self().node();
  const std::uint32_t buf = scratch(conn, 2048);
  std::string acc;
  while (acc.find(needle) == std::string::npos && acc.size() < 64 * 1024) {
    const std::uint32_t n = co_await conn.read_into(buf, 2048);
    if (n == 0) break;
    const std::uint8_t* p = node.mem(buf, n);
    acc.append(reinterpret_cast<const char*>(p), n);
  }
  co_return acc;
}

sim::Sub<bool> write_all(TcpConnection& conn, std::string_view text) {
  sim::Node& node = conn.link().self().node();
  const auto len = static_cast<std::uint32_t>(text.size());
  const std::uint32_t buf = scratch(conn, len);
  std::memcpy(node.mem(buf, len), text.data(), len);
  const bool ok = co_await conn.write_from(buf, len);
  co_return ok;
}

}  // namespace

std::string http_format_get(const std::string& path) {
  return "GET " + path + " HTTP/1.0\r\n\r\n";
}

bool http_request_complete(std::string_view raw) {
  return raw.find("\r\n\r\n") != std::string_view::npos;
}

std::optional<std::string> http_parse_request(std::string_view raw) {
  char method[8] = {};
  char path[1024] = {};
  const std::string head(raw.substr(0, std::min<std::size_t>(raw.size(),
                                                             1100)));
  if (std::sscanf(head.c_str(), "%7s %1023s", method, path) == 2 &&
      std::strcmp(method, "GET") == 0) {
    return std::string(path);
  }
  return std::nullopt;
}

std::string http_format_response(
    const std::optional<std::string>& path,
    const std::optional<std::vector<std::uint8_t>>& content) {
  if (!path.has_value()) return "HTTP/1.0 400 Bad Request\r\n\r\n";
  if (!content.has_value()) return "HTTP/1.0 404 Not Found\r\n\r\n";
  char hdr[128];
  std::snprintf(hdr, sizeof hdr,
                "HTTP/1.0 200 OK\r\nContent-Length: %zu\r\n\r\n",
                content->size());
  std::string wire = hdr;
  wire.append(content->begin(), content->end());
  return wire;
}

std::optional<HttpResponse> http_parse_response(const std::string& raw) {
  HttpResponse resp;
  const int matched = std::sscanf(raw.c_str(), "HTTP/1.0 %d", &resp.status);
  if (matched != 1) return std::nullopt;
  const std::size_t line_end = raw.find("\r\n");
  const std::size_t reason_at = raw.find(' ', raw.find(' ') + 1);
  if (line_end != std::string::npos && reason_at != std::string::npos &&
      reason_at < line_end) {
    resp.reason = raw.substr(reason_at + 1, line_end - reason_at - 1);
  }
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at != std::string::npos) {
    resp.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_at + 4),
                     raw.end());
  }
  return resp;
}

sim::Sub<std::optional<HttpResponse>> http_get(TcpConnection& conn,
                                               const std::string& path) {
  const std::string request = http_format_get(path);
  const bool sent = co_await write_all(conn, request);
  if (!sent) co_return std::nullopt;

  // Read to connection close (HTTP/1.0 framing).
  sim::Node& node = conn.link().self().node();
  const std::uint32_t buf = scratch(conn, 4096);
  std::string raw;
  for (;;) {
    const std::uint32_t n = co_await conn.read_into(buf, 4096);
    if (n == 0) break;
    const std::uint8_t* p = node.mem(buf, n);
    raw.append(reinterpret_cast<const char*>(p), n);
  }

  co_await conn.close();  // complete the FIN handshake from our side
  co_return http_parse_response(raw);
}

sim::Sub<std::optional<std::string>> http_serve_one(
    TcpConnection& conn, const HttpHandler& handler) {
  const std::string raw = co_await read_until(conn, "\r\n\r\n");
  const std::optional<std::string> result = http_parse_request(raw);

  std::optional<std::vector<std::uint8_t>> content;
  if (result.has_value()) content = handler(*result);
  const std::string wire = http_format_response(result, content);

  const bool sent = co_await write_all(conn, wire);
  (void)sent;
  co_await conn.close();
  co_return result;
}

}  // namespace ash::proto
