#include "proto/arp.hpp"

#include <cstring>

#include "sim/node.hpp"

namespace ash::proto {

ArpService::ArpService(sim::Process& self, net::EthernetDevice& dev,
                       const Config& config)
    : self_(self), dev_(dev), cfg_(config) {
  // Claim ARP and RARP frames: one filter per ethertype would need two
  // endpoints; a single masked atom covers both (0x0806 and 0x8035 share
  // no convenient mask, so install two filters on one... DPF owners are
  // per-filter, so attach the endpoint with the ARP ethertype and a
  // second filter for RARP mapping to the same endpoint id is not
  // supported — instead we match any frame whose ethertype is ARP, and
  // RARP traffic uses the same ARP ethertype packets with RARP opcodes,
  // which is what our encode side emits.)
  dpf::Filter f;
  f.atoms = {dpf::atom_be16(12, kEtherTypeArp)};
  endpoint_ = dev.attach(self, std::move(f));

  const sim::MemSegment& seg = self.segment();
  // Small dedicated pools near the top of the segment (below other links'
  // regions callers typically carve from the middle).
  pool_base_ = seg.base + seg.size - (cfg_.rx_buffers + 2) * 2048;
  for (std::uint32_t i = 0; i < cfg_.rx_buffers; ++i) {
    dev.supply_buffer(endpoint_, pool_base_ + i * 2048, 2048);
  }
  tx_base_ = pool_base_ + cfg_.rx_buffers * 2048;
  add_static(cfg_.local_ip, cfg_.local_mac);
}

void ArpService::add_static(Ipv4Addr ip, MacAddr mac) {
  cache_[ip.value] = mac;
}

std::optional<MacAddr> ArpService::lookup(Ipv4Addr ip) const {
  const auto it = cache_.find(ip.value);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

sim::Sub<void> ArpService::send_packet(const ArpPacket& pkt,
                                       std::uint16_t ethertype, MacAddr dst) {
  sim::Node& node = self_.node();
  const std::uint32_t frame = tx_base_;
  std::uint8_t* f = node.mem(frame, kEthHeaderLen + kArpPacketLen);
  EthHeader eh;
  eh.dst = dst;
  eh.src = cfg_.local_mac;
  eh.ethertype = ethertype;
  encode_eth({f, kEthHeaderLen}, eh);
  encode_arp({f + kEthHeaderLen, kArpPacketLen}, pkt);
  co_await self_.syscall(dev_.config().tx_kernel_work);
  dev_.send_from(frame, static_cast<std::uint32_t>(kEthHeaderLen) +
                            static_cast<std::uint32_t>(kArpPacketLen));
}

sim::Sub<std::optional<ArpPacket>> ArpService::process_one(
    sim::Cycles timeout) {
  sim::Node& node = self_.node();
  const sim::Cycles deadline = node.now() + timeout;
  for (;;) {
    const auto d = dev_.poll(endpoint_);
    if (!d.has_value()) {
      if (node.now() >= deadline) co_return std::nullopt;
      co_await self_.compute(node.cost().poll_iteration);
      continue;
    }
    const std::uint8_t* p = node.mem(d->addr, d->len);
    std::optional<ArpPacket> pkt;
    if (p != nullptr && d->len >= kEthHeaderLen + kArpPacketLen) {
      pkt = decode_arp({p + kEthHeaderLen, d->len - kEthHeaderLen});
    }
    dev_.return_buffer(endpoint_, pool_base_ +
                                      ((d->addr - pool_base_) / 2048) * 2048,
                       2048);
    if (!pkt.has_value()) continue;
    co_await self_.compute(sim::us(3.0));  // parse + table update

    // Learn the sender's binding from any ARP traffic.
    if (pkt->sender_ip.value != 0) {
      cache_[pkt->sender_ip.value] = pkt->sender_mac;
    }

    // Answer requests addressed to one of our bindings.
    if (pkt->opcode == kArpOpRequest) {
      const auto it = cache_.find(pkt->target_ip.value);
      if (it != cache_.end() && pkt->target_ip == cfg_.local_ip) {
        ArpPacket reply;
        reply.opcode = kArpOpReply;
        reply.sender_mac = it->second;
        reply.sender_ip = pkt->target_ip;
        reply.target_mac = pkt->sender_mac;
        reply.target_ip = pkt->sender_ip;
        ++answered_;
        co_await send_packet(reply, kEtherTypeArp, pkt->sender_mac);
      }
    } else if (pkt->opcode == kRarpOpRequest) {
      // Reverse lookup: who has this MAC?
      for (const auto& [ip, mac] : cache_) {
        if (mac == pkt->target_mac) {
          ArpPacket reply;
          reply.opcode = kRarpOpReply;
          reply.sender_mac = cfg_.local_mac;
          reply.sender_ip = cfg_.local_ip;
          reply.target_mac = pkt->target_mac;
          reply.target_ip = Ipv4Addr{ip};
          ++answered_;
          co_await send_packet(reply, kEtherTypeArp, pkt->sender_mac);
          break;
        }
      }
    }
    co_return pkt;
  }
}

sim::Sub<std::optional<MacAddr>> ArpService::resolve(Ipv4Addr ip,
                                                     sim::Cycles timeout) {
  if (auto hit = lookup(ip)) co_return hit;
  const sim::Cycles deadline = self_.node().now() + timeout;

  ArpPacket req;
  req.opcode = kArpOpRequest;
  req.sender_mac = cfg_.local_mac;
  req.sender_ip = cfg_.local_ip;
  req.target_mac = MacAddr{};
  req.target_ip = ip;
  co_await send_packet(req, kEtherTypeArp, MacAddr::broadcast());

  while (self_.node().now() < deadline) {
    const sim::Cycles left = deadline - self_.node().now();
    (void)co_await process_one(left);
    if (auto hit = lookup(ip)) co_return hit;
  }
  co_return std::nullopt;
}

sim::Sub<std::optional<Ipv4Addr>> ArpService::rarp_resolve(
    MacAddr mac, sim::Cycles timeout) {
  const sim::Cycles deadline = self_.node().now() + timeout;
  ArpPacket req;
  req.opcode = kRarpOpRequest;
  req.sender_mac = cfg_.local_mac;
  req.sender_ip = cfg_.local_ip;
  req.target_mac = mac;
  req.target_ip = Ipv4Addr{};
  // RARP opcodes ride in ARP-ethertype frames here so one DPF endpoint
  // serves both protocols (see the constructor comment).
  co_await send_packet(req, kEtherTypeArp, MacAddr::broadcast());

  while (self_.node().now() < deadline) {
    const sim::Cycles left = deadline - self_.node().now();
    const auto pkt = co_await process_one(left);
    if (pkt.has_value() && pkt->opcode == kRarpOpReply &&
        pkt->target_mac == mac) {
      co_return pkt->target_ip;
    }
  }
  co_return std::nullopt;
}

sim::Sub<void> ArpService::serve(sim::Cycles duration) {
  const sim::Cycles deadline = self_.node().now() + duration;
  while (self_.node().now() < deadline) {
    (void)co_await process_one(deadline - self_.node().now());
  }
}

}  // namespace ash::proto
