#include "proto/an2_link.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sim/node.hpp"

namespace ash::proto {

An2Link::An2Link(sim::Process& self, net::An2Device& dev,
                 const Config& config)
    : self_(self), dev_(dev), cfg_(config) {
  const sim::MemSegment& seg = self.segment();
  const std::uint32_t rx_bytes = cfg_.rx_buffers * cfg_.buf_size;
  tx_size_ = 64 * 1024;
  if (rx_bytes + tx_size_ > seg.size / 2) {
    throw std::length_error("An2Link: buffer pool exceeds segment half");
  }
  // Upper half of the segment: rx pool, then tx staging ring.
  const std::uint32_t pool_base = seg.base + seg.size / 2;
  vc_ = dev.bind_vc(self);
  for (std::uint32_t i = 0; i < cfg_.rx_buffers; ++i) {
    dev.supply_buffer(vc_, pool_base + i * cfg_.buf_size, cfg_.buf_size);
  }
  tx_base_ = pool_base + rx_bytes;
  carve_next_ = tx_base_ + tx_size_;
  dev.set_interrupt_mode(vc_, cfg_.mode == RecvMode::Interrupt);
}

std::uint32_t An2Link::carve(std::uint32_t len) {
  const std::uint32_t addr = (carve_next_ + 15) & ~15u;  // line-aligned
  const sim::MemSegment& seg = self_.segment();
  if (static_cast<std::uint64_t>(addr) + len > seg.base + seg.size) {
    throw std::length_error("An2Link: carve exhausted the segment");
  }
  carve_next_ = addr + len;
  return addr;
}

void An2Link::set_mode(RecvMode mode) {
  cfg_.mode = mode;
  dev_.set_interrupt_mode(vc_, mode == RecvMode::Interrupt);
}

sim::Sub<net::RxDesc> An2Link::recv() {
  for (;;) {
    if (auto d = dev_.poll(vc_)) {
      co_await self_.compute(self_.node().cost().an2_user_recv_overhead);
      co_return *d;
    }
    if (cfg_.mode == RecvMode::Polling) {
      co_await self_.compute(self_.node().cost().poll_iteration);
    } else {
      co_await dev_.arrival_channel(vc_).wait(self_);
    }
  }
}

sim::Sub<std::optional<net::RxDesc>> An2Link::recv_for(sim::Cycles timeout) {
  const sim::Cycles deadline = self_.node().now() + timeout;
  for (;;) {
    if (auto d = dev_.poll(vc_)) {
      co_await self_.compute(self_.node().cost().an2_user_recv_overhead);
      co_return d;
    }
    if (self_.node().now() >= deadline) co_return std::nullopt;
    if (cfg_.mode == RecvMode::Polling) {
      co_await self_.compute(self_.node().cost().poll_iteration);
    } else {
      const sim::Cycles left = deadline - self_.node().now();
      const bool got_token =
          co_await dev_.arrival_channel(vc_).wait_for(self_, left);
      if (!got_token) co_return std::nullopt;
    }
  }
}

void An2Link::release(const net::RxDesc& d) {
  // The descriptor's buffer is returned at its pool-slot size.
  const std::uint32_t slot =
      (d.addr - (self_.segment().base + self_.segment().size / 2)) /
      cfg_.buf_size;
  const std::uint32_t base = self_.segment().base + self_.segment().size / 2 +
                             slot * cfg_.buf_size;
  dev_.return_buffer(vc_, base, cfg_.buf_size);
}

std::uint32_t An2Link::tx_alloc(std::uint32_t len) {
  if (len > tx_size_) throw std::length_error("An2Link: tx_alloc too large");
  if (tx_next_ + len > tx_size_) tx_next_ = 0;
  const std::uint32_t addr = tx_base_ + tx_next_;
  tx_next_ += (len + 3) & ~3u;
  return addr;
}

sim::Sub<bool> An2Link::send(std::uint32_t addr, std::uint32_t len) {
  co_await self_.syscall(dev_.config().tx_kernel_work +
                         self_.node().cost().an2_user_send_overhead);
  co_return dev_.send_from(cfg_.remote_vc, addr, len);
}

sim::Sub<bool> An2Link::send_bytes(std::span<const std::uint8_t> bytes) {
  const auto len = static_cast<std::uint32_t>(bytes.size());
  const std::uint32_t addr = tx_alloc(len);
  std::uint8_t* p = self_.node().mem(addr, len);
  std::memcpy(p, bytes.data(), bytes.size());
  // Charge the staging stores (one copy loop's store half).
  sim::Cycles cycles = 0;
  sim::Node& node = self_.node();
  for (std::uint32_t off = 0; off < len; off += 4) {
    cycles += node.cost().copy_loop_insns_per_word;
    cycles += node.dcache().access(addr + off, std::min(4u, len - off), true);
  }
  co_await self_.compute(cycles);
  const bool sent = co_await send(addr, len);
  co_return sent;
}

}  // namespace ash::proto
