// Shared Transmission Control Block layout.
//
// The hot fields of a TCP connection live in the owning process's memory
// at a fixed layout, so the common-case receive path can run either in the
// user-level library or in a downloaded handler (ASH/upcall) — the paper's
// fast-path arrangement: "Our TCP implementation lowers the cost of data
// transfer by placing the common-case fast path in a handler which can be
// run either as an ASH or an upcall" (Section V-B).
//
// The VCODE fast-path handler (src/ashlib/tcp_fastpath) addresses these
// fields as 32-bit words at TcbShm::base + 4 * <index>; the library reads
// and writes them through the accessors below. The `lib_busy` word is the
// mutual-exclusion flag between library and handler ("the user-level TCP
// library is not currently using that Transmission Control Block").
#pragma once

#include <cstdint>

#include "sim/node.hpp"
#include "util/byteorder.hpp"

namespace ash::proto {

namespace tcb {
// Word indices within the shared block.
inline constexpr std::uint32_t kLibBusy = 0;    // 1 while the library runs
inline constexpr std::uint32_t kState = 1;      // TcpState as u32
inline constexpr std::uint32_t kRcvNxt = 2;
inline constexpr std::uint32_t kSndUna = 3;     // highest ACK seen
inline constexpr std::uint32_t kSndWnd = 4;     // peer advertised window
inline constexpr std::uint32_t kStageBase = 5;  // receive staging ring
inline constexpr std::uint32_t kStageCap = 6;
inline constexpr std::uint32_t kStageWr = 7;    // write offset
inline constexpr std::uint32_t kStageUsed = 8;  // bytes buffered
inline constexpr std::uint32_t kStageRd = 9;    // read offset
inline constexpr std::uint32_t kLocalPort = 10;
inline constexpr std::uint32_t kRemotePort = 11;
inline constexpr std::uint32_t kLocalIp = 12;
inline constexpr std::uint32_t kRemoteIp = 13;
inline constexpr std::uint32_t kSndNxt = 14;    // seq for handler-built ACKs
inline constexpr std::uint32_t kAshCommits = 15;
inline constexpr std::uint32_t kAshFallbacks = 16;
inline constexpr std::uint32_t kAckScratch = 17;  // address of ack build area
inline constexpr std::uint32_t kChecksumOn = 18;  // 1 = verify checksums
/// Precomputed pseudo-header partial sum (little-endian-word form) for
/// handler-built pure ACKs (src=local, dst=remote, proto=TCP, len=20).
inline constexpr std::uint32_t kAckPseudoSum = 19;
/// Bytes of link framing preceding the IP header in the ACK template
/// (0 on the AN2; 14 when the fast path runs over Ethernet).
inline constexpr std::uint32_t kAckFrameOff = 20;
/// Congestion window (bytes), mirrored by the library so downloaded
/// handlers (and ashtool) can observe sender pacing. Appended past the
/// original layout: handlers address words by name, never by kWords.
inline constexpr std::uint32_t kSndCwnd = 21;
inline constexpr std::uint32_t kWords = 22;

inline constexpr std::uint32_t kAckPacketLen = 40;  // IP + TCP header
/// Template buffer size: leaves room for link framing before the packet.
inline constexpr std::uint32_t kAckBufLen = 56;
}  // namespace tcb

/// Typed accessor over the shared block.
class TcbShm {
 public:
  TcbShm() = default;
  TcbShm(sim::Node& node, std::uint32_t base) : node_(&node), base_(base) {}

  std::uint32_t base() const noexcept { return base_; }
  static constexpr std::uint32_t size_bytes() noexcept {
    return 4 * tcb::kWords;
  }

  std::uint32_t get(std::uint32_t word) const {
    return util::load_u32(node_->mem(base_ + 4 * word, 4));
  }
  void set(std::uint32_t word, std::uint32_t v) {
    util::store_u32(node_->mem(base_ + 4 * word, 4), v);
  }

 private:
  sim::Node* node_ = nullptr;
  std::uint32_t base_ = 0;
};

}  // namespace ash::proto
