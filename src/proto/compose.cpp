#include "proto/compose.hpp"

#include <cstring>
#include <memory>

#include "sim/memops.hpp"
#include "sim/node.hpp"
#include "util/byteorder.hpp"
#include "util/checksum.hpp"

namespace ash::proto {

int ProtocolStack::push_inner(LayerSpec spec) {
  layers_.push_back(std::move(spec));
  return static_cast<int>(layers_.size() - 1);
}

std::uint32_t ProtocolStack::total_header_len() const noexcept {
  std::uint32_t total = 0;
  for (const LayerSpec& l : layers_) total += l.header_len;
  return total;
}

sim::Sub<bool> ProtocolStack::send_from(std::uint32_t app_addr,
                                        std::uint32_t len) {
  sim::Node& node = link_.self().node();
  const std::uint32_t headers = total_header_len();
  const std::uint32_t total = headers + len;
  const std::uint32_t pkt = link_.tx_alloc_ip(total);

  // One staging copy of the data, then headers innermost-out so each
  // layer sees its final payload length.
  sim::Cycles cycles =
      sim::memops::copy(node, pkt + headers, app_addr, len);
  std::uint32_t off = headers;
  std::uint32_t inner_len = len;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    off -= it->header_len;
    it->encode({node.mem(pkt + off, it->header_len), it->header_len},
               inner_len);
    cycles += it->cost;
    inner_len += it->header_len;
  }
  co_await link_.self().compute(cycles);
  const bool sent = co_await link_.send_ip(pkt, total);
  co_return sent;
}

sim::Sub<std::optional<ProtocolStack::Received>> ProtocolStack::recv(
    sim::Cycles timeout) {
  sim::Node& node = link_.self().node();
  const sim::Cycles deadline = node.now() + timeout;
  for (;;) {
    if (node.now() >= deadline) co_return std::nullopt;
    const auto d = co_await link_.recv_for(deadline - node.now());
    if (!d.has_value()) co_return std::nullopt;

    const std::uint32_t base = d->addr + link_.rx_ip_offset();
    const std::uint32_t avail = d->len - link_.rx_ip_offset();
    std::uint32_t off = 0;
    bool ok = avail >= total_header_len();
    sim::Cycles cycles = 0;
    for (const LayerSpec& l : layers_) {
      if (!ok) break;
      cycles += l.cost;
      const std::uint32_t inner = avail - off - l.header_len;
      ok = l.decode({node.mem(base + off, l.header_len), l.header_len},
                    inner);
      off += l.header_len;
    }
    co_await link_.self().compute(cycles);
    if (!ok) {
      ++drops_;
      link_.release(*d);
      continue;
    }
    Received r;
    r.payload_addr = base + off;
    r.payload_len = avail - off;
    r.desc = *d;
    co_return r;
  }
}

LayerSpec make_seq_layer() {
  // Shared counters live behind shared_ptrs so the spec is copyable.
  auto tx = std::make_shared<std::uint32_t>(0);
  auto rx = std::make_shared<std::uint32_t>(0);
  LayerSpec l;
  l.name = "seq";
  l.header_len = 4;
  l.encode = [tx](std::span<std::uint8_t> h, std::uint32_t) {
    util::store_be32(h.data(), (*tx)++);
  };
  l.decode = [rx](std::span<const std::uint8_t> h, std::uint32_t) {
    const std::uint32_t seq = util::load_be32(h.data());
    if (seq != *rx) return false;
    ++*rx;
    return true;
  };
  return l;
}

LayerSpec make_cksum_layer() {
  LayerSpec l;
  l.name = "cksum";
  l.header_len = 2;
  l.cost = sim::us(4.0);
  l.encode = [](std::span<std::uint8_t> h, std::uint32_t payload_len) {
    // Checksum over the inner bytes, which directly follow the header.
    const std::uint16_t ck = util::internet_checksum(
        {h.data() + h.size(), payload_len});
    util::store_be16(h.data(), ck);
  };
  l.decode = [](std::span<const std::uint8_t> h, std::uint32_t payload_len) {
    const std::uint16_t want = util::internet_checksum(
        {h.data() + h.size(), payload_len});
    return util::load_be16(h.data()) == want;
  };
  return l;
}

LayerSpec make_port_layer(std::uint16_t tx_port, std::uint16_t rx_port) {
  LayerSpec l;
  l.name = "port";
  l.header_len = 2;
  l.encode = [tx_port](std::span<std::uint8_t> h, std::uint32_t) {
    util::store_be16(h.data(), tx_port);
  };
  l.decode = [rx_port](std::span<const std::uint8_t> h, std::uint32_t) {
    return util::load_be16(h.data()) == rx_port;
  };
  return l;
}

}  // namespace ash::proto
