// Ethernet transport binding: IP over 10 Mb/s Ethernet with DPF demux.
//
// The endpoint's DPF filter claims IPv4 frames for this process (callers
// can narrow it, e.g. by transport port, when several endpoints share the
// device). The kernel's default receive path has already destriped the
// frame into one of our supplied buffers by the time recv() returns, so
// rx_ip_offset() is simply the Ethernet header. ARP resolution is the
// ArpService's job; this link takes a static peer MAC (the experiments
// run host-to-host).
#pragma once

#include <cstdint>
#include <optional>

#include "dpf/dpf.hpp"
#include "net/ethernet.hpp"
#include "proto/link.hpp"
#include "proto/wire.hpp"
#include "sim/process.hpp"

namespace ash::proto {

class EthLink final : public Link {
 public:
  struct Config {
    Config() = default;
    Config(const MacAddr& local, const MacAddr& peer)
        : local_mac(local), peer_mac(peer) {}

    MacAddr local_mac;
    MacAddr peer_mac;
    std::uint32_t rx_buffers = 16;
    std::uint32_t buf_size = 1536;
    RecvMode mode = RecvMode::Polling;
    /// Additional DPF atoms beyond the IPv4 ethertype match (e.g. a
    /// destination-port discriminator).
    std::vector<dpf::Atom> extra_atoms;
  };

  EthLink(sim::Process& self, net::EthernetDevice& dev, const Config& config);

  sim::Process& self() noexcept override { return self_; }
  net::EthernetDevice& device() noexcept { return dev_; }
  int endpoint() const noexcept { return endpoint_; }

  sim::Sub<net::RxDesc> recv() override;
  sim::Sub<std::optional<net::RxDesc>> recv_for(sim::Cycles timeout) override;
  std::optional<net::RxDesc> try_recv() override {
    return dev_.poll(endpoint_);
  }
  void release(const net::RxDesc& d) override;

  std::uint32_t rx_ip_offset() const override {
    return static_cast<std::uint32_t>(kEthHeaderLen);
  }
  std::uint32_t tx_alloc_ip(std::uint32_t len) override;
  sim::Sub<bool> send_ip(std::uint32_t ip_addr, std::uint32_t ip_len) override;
  std::uint32_t carve(std::uint32_t len) override;
  std::uint32_t ip_mtu() const override {
    return dev_.config().max_frame_bytes -
           static_cast<std::uint32_t>(kEthHeaderLen);
  }

 private:
  sim::Process& self_;
  net::EthernetDevice& dev_;
  Config cfg_;
  int endpoint_;
  std::uint32_t pool_base_;
  std::uint32_t tx_base_;
  std::uint32_t tx_size_;
  std::uint32_t tx_next_ = 0;
  std::uint32_t carve_next_;
};

}  // namespace ash::proto
