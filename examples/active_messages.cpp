// Active messages as safe kernel handlers (Section V-C).
//
// The classic active-message model runs a handler named by the message at
// the receiver, in the interrupt path — historically with no protection.
// ASHs extend that to a multiprogrammed, protected environment: the
// dispatcher below jumps through a sandboxed, translated jump table
// (Section III-B2's checked indirect jumps) to one of four handler bodies.
//
// Build & run:  ./build/examples/active_messages
#include <cstdio>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"

using namespace ash;
using sim::Process;
using sim::Task;
using sim::us;

int main() {
  sim::Simulator simulator;
  sim::Node& sender = simulator.add_node("sender");
  sim::Node& receiver = simulator.add_node("receiver");
  net::An2Device nic_s(sender), nic_r(receiver);
  nic_s.connect(nic_r);
  core::AshSystem ash_system(receiver);

  constexpr std::uint32_t kHandlers = 4;
  std::uint32_t cell_addr = 0;
  int ash_id = -1;

  receiver.kernel().spawn("receiver", [&](Process& self) -> Task {
    const int vc = nic_r.bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      nic_r.supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    cell_addr = self.segment().base + 0x2000;

    const vcode::Program dispatcher =
        ashlib::make_active_message_dispatcher(kHandlers);
    std::string error;
    ash_id = ash_system.download(self, dispatcher, {}, &error);
    if (ash_id < 0) {
      std::printf("download failed: %s\n", error.c_str());
      co_return;
    }
    const auto& prog = ash_system.program(ash_id);
    std::printf("dispatcher installed: %zu instructions, %zu translated "
                "indirect-jump targets\n",
                prog.insns.size(), prog.indirect_map.size());
    ash_system.attach_an2(nic_r, vc, ash_id, cell_addr);
    co_await self.sleep_for(us(1e6));
  });

  sender.kernel().spawn("sender", [&](Process& self) -> Task {
    proto::An2Link link(self, nic_s, {});
    co_await self.sleep_for(us(500.0));
    // Invoke handler i: each handler adds (i+1) to the receiver's cell.
    // Handler index 7 is out of range: the dispatcher aborts and the
    // message falls back to the (sleeping) application.
    const std::uint32_t sequence[] = {0, 1, 2, 3, 2, 7};
    std::uint32_t expect = 0;
    for (const std::uint32_t h : sequence) {
      std::uint8_t msg[8];
      util::store_u32(msg, h);
      util::store_u32(msg + 4, 0xabad1deau);
      const bool sent = co_await link.send_bytes(msg);
      if (!sent) co_return;
      if (h < kHandlers) {
        expect += h + 1;
        const net::RxDesc reply = co_await link.recv();  // AM-style ack
        link.release(reply);
        std::printf("invoked handler %u -> receiver cell should be %u\n", h,
                    expect);
      } else {
        std::printf("invoked handler %u -> out of range, expect fallback\n",
                    h);
        co_await self.sleep_for(us(500.0));
      }
    }
  });

  simulator.run(us(2e6));

  const std::uint32_t cell = util::load_u32(receiver.mem(cell_addr, 4));
  const auto& stats = ash_system.stats(ash_id);
  std::printf("\nreceiver cell: %u (expected 13)\n", cell);
  std::printf("dispatcher: %llu dispatched, %llu rejected\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.voluntary_aborts));
  return cell == 13 && stats.voluntary_aborts == 1 ? 0 : 1;
}
