// Quickstart: the whole ASH pipeline in one small program.
//
//  1. Build a simulated two-node testbed (AN2-connected).
//  2. Write a handler in VCODE: it increments an application counter and
//     echoes the message back (message vectoring + control initiation +
//     message initiation, all in kernel context).
//  3. Download it (verify + SFI sandbox + install) and attach it to the
//     receiving process's virtual circuit.
//  4. Ping it from the other node and watch the round trips complete
//     while the owning application sleeps the whole time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"
#include "vcode/program.hpp"

using namespace ash;
using sim::Process;
using sim::Task;
using sim::us;

int main() {
  // --- testbed: two 40 MHz machines on an AN2 switch ---
  sim::Simulator simulator;
  sim::Node& alice = simulator.add_node("alice");
  sim::Node& bob = simulator.add_node("bob");
  net::An2Device nic_a(alice), nic_b(bob);
  nic_a.connect(nic_b);
  core::AshSystem ash_system(bob);

  int ash_id = -1;
  std::uint32_t counter_addr = 0;

  // --- bob: download the handler, then go to sleep ---
  bob.kernel().spawn("bob", [&](Process& self) -> Task {
    // Bind a virtual circuit and pin receive buffers from our own memory.
    const int vc = nic_b.bind_vc(self);
    for (int i = 0; i < 8; ++i) {
      nic_b.supply_buffer(
          vc, self.segment().base + 64u * static_cast<std::uint32_t>(i), 64);
    }
    counter_addr = self.segment().base + 0x1000;

    // The handler: a VCODE routine from the handler library. You can also
    // write your own with vcode::Builder — see src/ashlib/handlers.cpp.
    const vcode::Program handler = ashlib::make_remote_increment();
    std::printf("handler: %zu instructions before sandboxing\n",
                handler.insns.size());

    // Download: verify, sandbox (SFI), install.
    std::string error;
    sandbox::Report report;
    ash_id = ash_system.download(self, handler, core::AshOptions{}, &error,
                                 &report);
    if (ash_id < 0) {
      std::printf("download failed: %s\n", error.c_str());
      co_return;
    }
    std::printf("sandboxed: %u -> %u instructions (+%u: %u memory checks, "
                "%u epilogue)\n",
                report.original_insns, report.final_insns, report.added(),
                report.mem_check_insns, report.epilogue_insns);

    // Attach to the VC; r3 of every invocation will hold counter_addr.
    ash_system.attach_an2(nic_b, vc, ash_id, counter_addr);

    // The application now sleeps. Every arriving message is handled
    // entirely in kernel context by the downloaded code.
    co_await self.sleep_for(us(1e6));
  });

  // --- alice: ping bob and time the round trips ---
  simulator.queue().schedule_at(us(100.0), [] {});  // (clock anchor)
  alice.kernel().spawn("alice", [&](Process& self) -> Task {
    proto::An2Link link(self, nic_a, {});
    co_await self.sleep_for(us(500.0));
    const std::uint8_t ping[4] = {42, 0, 0, 0};
    for (int i = 0; i < 5; ++i) {
      const sim::Cycles t0 = self.node().now();
      const bool sent = co_await link.send_bytes(ping);
      if (!sent) co_return;
      const net::RxDesc reply = co_await link.recv();
      const sim::Cycles t1 = self.node().now();
      std::printf("ping %d: %.1f us round trip (reply %u bytes)\n", i,
                  sim::to_us(t1 - t0), reply.len);
      link.release(reply);
    }
  });

  simulator.run(us(2e6));

  const std::uint32_t count = util::load_u32(bob.mem(counter_addr, 4));
  const auto& stats = ash_system.stats(ash_id);
  std::printf("\nbob's counter: %u (incremented by the ASH while bob "
              "slept)\n",
              count);
  std::printf("handler stats: %llu invocations, %llu commits, "
              "%llu aborts, %.1f instructions/run\n",
              static_cast<unsigned long long>(stats.invocations),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.voluntary_aborts +
                                              stats.involuntary_aborts),
              stats.invocations
                  ? static_cast<double>(stats.insns) / stats.invocations
                  : 0.0);
  return count == 5 ? 0 : 1;
}
