// Distributed shared-memory lock service built on control-initiation ASHs
// — the CRL-style use the paper's conclusion describes.
//
// The lock home node downloads a handler that grants/releases locks at
// message arrival, in kernel context, without ever scheduling the home
// process. Two client nodes contend for the same lock; the trace shows
// grants, busy rejections, and handoff, with the home application asleep
// throughout.
//
// Build & run:  ./build/examples/dsm_lock
#include <cstdio>
#include <vector>

#include "ashlib/handlers.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"

using namespace ash;
using sim::Process;
using sim::Task;
using sim::us;

namespace {

constexpr std::uint32_t kOpAcquire = 1;
constexpr std::uint32_t kOpRelease = 2;
constexpr std::uint32_t kNumLocks = 8;

/// One lock-protocol exchange: send [op, lock, who], await the reply,
/// return the status word (1 granted, 0 busy, 2 released).
sim::Sub<std::uint32_t> lock_rpc(proto::An2Link& link, std::uint32_t op,
                                 std::uint32_t lock, std::uint32_t who) {
  std::uint8_t msg[12];
  util::store_u32(msg + 0, op);
  util::store_u32(msg + 4, lock);
  util::store_u32(msg + 8, who);
  const bool sent = co_await link.send_bytes(msg);
  if (!sent) co_return ~0u;
  const net::RxDesc reply = co_await link.recv();
  const std::uint32_t status =
      util::load_u32(link.self().node().mem(reply.addr, 4));
  link.release(reply);
  co_return status;
}

sim::Sub<void> client_main(Process& self, proto::An2Link& link, int who,
                           int* held_total) {
  for (int round = 0; round < 3; ++round) {
    // Spin on acquire until granted (with polite backoff).
    for (;;) {
      const std::uint32_t st = co_await lock_rpc(link, kOpAcquire, 3,
                                                 static_cast<std::uint32_t>(who));
      if (st == 1) break;
      std::printf("[%7.1f us] node %d: lock 3 busy, retrying\n",
                  sim::to_us(self.node().now()), who);
      co_await self.sleep_for(us(150.0));
    }
    std::printf("[%7.1f us] node %d: ACQUIRED lock 3 (round %d)\n",
                sim::to_us(self.node().now()), who, round);
    ++*held_total;
    co_await self.sleep_for(us(400.0));  // critical section
    const std::uint32_t st = co_await lock_rpc(link, kOpRelease, 3,
                                               static_cast<std::uint32_t>(who));
    std::printf("[%7.1f us] node %d: released (status %u)\n",
                sim::to_us(self.node().now()), who, st);
  }
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Node& home = simulator.add_node("home");
  sim::Node& n1 = simulator.add_node("n1");
  sim::Node& n2 = simulator.add_node("n2");

  // Star topology: the home node has one AN2 device per client.
  net::An2Device home_to_1(home), home_to_2(home);
  net::An2Device c1(n1), c2(n2);
  home_to_1.connect(c1);
  home_to_2.connect(c2);
  core::AshSystem ash_system(home);

  home.kernel().spawn("home", [&](Process& self) -> Task {
    // Lock table + reply scratch live in the home process's memory.
    const std::uint32_t locks = self.segment().base + 0x1000;
    std::string error;
    const int id = ash_system.download(
        self, ashlib::make_dsm_lock_handler(kNumLocks), {}, &error);
    if (id < 0) {
      std::printf("download failed: %s\n", error.c_str());
      co_return;
    }
    // The same handler serves both devices (one VC each).
    for (net::An2Device* dev : {&home_to_1, &home_to_2}) {
      const int vc = dev->bind_vc(self);
      for (int i = 0; i < 8; ++i) {
        dev->supply_buffer(vc,
                           self.segment().base +
                               64u * static_cast<std::uint32_t>(
                                         i + (dev == &home_to_2 ? 8 : 0)),
                           64);
      }
      ash_system.attach_an2(*dev, vc, id, locks);
    }
    std::printf("home: DSM lock service installed (%u locks); sleeping\n",
                kNumLocks);
    co_await self.sleep_for(us(1e6));
    const auto& st = ash_system.stats(id);
    std::printf("home handler stats: %llu requests handled in kernel "
                "context, %llu declined\n",
                static_cast<unsigned long long>(st.commits),
                static_cast<unsigned long long>(st.voluntary_aborts));
  });

  int held = 0;
  n1.kernel().spawn("client1", [&](Process& self) -> Task {
    proto::An2Link link(self, c1, {});
    co_await self.sleep_for(us(500.0));
    co_await client_main(self, link, 1, &held);
  });
  n2.kernel().spawn("client2", [&](Process& self) -> Task {
    proto::An2Link link(self, c2, {});
    co_await self.sleep_for(us(520.0));
    co_await client_main(self, link, 2, &held);
  });

  simulator.run(us(1e6));
  std::printf("\ntotal successful acquisitions: %d (expected 6)\n", held);
  return held == 6 ? 0 : 1;
}
