// TCP with the common-case receive path downloaded as an ASH — the
// paper's flagship end-to-end result (Section V-B / Table VI).
//
// Transfers the same bulk payload twice between two nodes: once with the
// plain user-level TCP library, once with the fast-path handler installed
// on the receiver (header prediction, DILP checksum+copy, and the ACK all
// run in kernel context at message arrival). Prints both throughputs and
// the handler's hit statistics.
//
// Build & run:  ./build/examples/tcp_fastpath
#include <algorithm>
#include <cstdio>

#include "ashlib/tcp_fastpath.hpp"
#include "proto/an2_link.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace ash;
using proto::An2Link;
using proto::Ipv4Addr;
using proto::TcpConfig;
using proto::TcpConnection;
using sim::Process;
using sim::Task;
using sim::us;

namespace {

constexpr std::uint32_t kTotal = 2u << 20;  // 2 MB

TcpConfig cfg_for(bool client) {
  TcpConfig c;
  c.local_ip = client ? Ipv4Addr::of(10, 0, 0, 1) : Ipv4Addr::of(10, 0, 0, 2);
  c.remote_ip = client ? Ipv4Addr::of(10, 0, 0, 2) : Ipv4Addr::of(10, 0, 0, 1);
  c.local_port = client ? 4000 : 5000;
  c.remote_port = client ? 5000 : 4000;
  c.iss = client ? 100 : 900;
  return c;
}

struct Result {
  double mbps = 0;
  std::uint32_t ash_commits = 0;
  std::uint32_t ash_fallbacks = 0;
  bool data_ok = false;
};

Result run(bool with_ash) {
  sim::Simulator simulator;
  sim::Node& a = simulator.add_node("sender");
  sim::Node& b = simulator.add_node("receiver");
  net::An2Device nic_a(a), nic_b(b);
  nic_a.connect(nic_b);
  core::AshSystem ash_system(b);

  Result res;
  sim::Cycles t0 = 0, t1 = 0;

  b.kernel().spawn("receiver", [&](Process& self) -> Task {
    An2Link::Config lc;
    lc.rx_buffers = 32;
    An2Link link(self, nic_b, lc);
    TcpConnection conn(link, cfg_for(false));
    if (with_ash) {
      std::string error;
      const auto fp = ashlib::install_tcp_fastpath(
          ash_system, nic_b, link.vc(), conn, core::AshOptions{}, &error);
      if (!fp.has_value()) {
        std::printf("fast path install failed: %s\n", error.c_str());
        co_return;
      }
      std::printf("  fast path installed: %u-instruction handler "
                  "(sandboxed from %u)\n",
                  fp->report.final_insns, fp->report.original_insns);
    }
    const bool accepted = co_await conn.accept();
    if (!accepted) co_return;
    const std::uint32_t buf = self.segment().base;
    std::uint32_t got = 0;
    while (got < kTotal) {
      const std::uint32_t n =
          co_await conn.read_into(buf + (got % 65536), kTotal - got);
      if (n == 0) break;
      got += n;
    }
    t1 = self.node().now();
    res.data_ok = got == kTotal;
    res.ash_commits = conn.shm().get(proto::tcb::kAshCommits);
    res.ash_fallbacks = conn.shm().get(proto::tcb::kAshFallbacks);
  });

  a.kernel().spawn("sender", [&](Process& self) -> Task {
    An2Link link(self, nic_a, {});
    TcpConnection conn(link, cfg_for(true));
    co_await self.sleep_for(us(500.0));
    const bool connected = co_await conn.connect();
    if (!connected) co_return;
    const std::uint32_t buf = self.segment().base;
    util::Rng rng(1);
    std::uint8_t* p = a.mem(buf, 8192);
    for (int i = 0; i < 8192; ++i) {
      p[i] = static_cast<std::uint8_t>(rng.next());
    }
    t0 = self.node().now();
    for (std::uint32_t off = 0; off < kTotal; off += 8192) {
      const bool sent =
          co_await conn.write_from(buf, std::min(8192u, kTotal - off));
      if (!sent) co_return;
    }
  });

  simulator.run(us(6e7));
  const double seconds = sim::to_us(t1 - t0) / 1e6;
  res.mbps = static_cast<double>(kTotal) / seconds / 1e6;
  return res;
}

}  // namespace

int main() {
  std::printf("transferring %.1f MB over simulated AN2 TCP (MSS 3072, "
              "8 KB window, checksums on)...\n\n",
              kTotal / 1e6);

  std::printf("[1/2] plain user-level library:\n");
  const Result plain = run(false);
  std::printf("  throughput: %.2f MB/s (transfer %s)\n\n", plain.mbps,
              plain.data_ok ? "intact" : "CORRUPT");

  std::printf("[2/2] with the receive fast path as a sandboxed ASH:\n");
  const Result fast = run(true);
  std::printf("  throughput: %.2f MB/s (transfer %s)\n", fast.mbps,
              fast.data_ok ? "intact" : "CORRUPT");
  std::printf("  handler consumed %u segments in kernel context; %u fell "
              "back to the library\n",
              fast.ash_commits, fast.ash_fallbacks);

  std::printf("\nspeedup from the ASH fast path: %.2fx\n",
              fast.mbps / plain.mbps);
  return plain.data_ok && fast.data_ok && fast.mbps > plain.mbps ? 0 : 1;
}
