// Rule firewall: a kernel-side packet filter declared as rules, not code.
//
//  1. Build a simulated two-node testbed (AN2-connected).
//  2. Declare a default-deny firewall as an ashc::RuleSet: allow TCP:80,
//     TCP:443 and UDP:5000-5100 through to normal delivery; count and
//     silently consume everything else (runts on their own counter).
//  3. download_rules() compiles the rules to VCODE, proves every access
//     stays inside the declared frame/state/send windows (the verifier's
//     bounds-dataflow pass), seeds the state image, and installs the
//     handler like any hand-written ASH.
//  4. Blast a traffic mix at the sleeping owner and read the verdicts:
//     allowed frames land in the receive queue, dropped frames only move
//     the kernel-state counters.
//
// Build & run:  ./build/examples/rule_firewall
#include <cstdio>
#include <cstring>
#include <vector>

#include "ashc/rule.hpp"
#include "core/ash.hpp"
#include "net/an2.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "util/byteorder.hpp"

using namespace ash;
using sim::Process;
using sim::Task;
using sim::us;

namespace {

// The firewall, declared. Header layout is IPv4-ish: protocol byte at
// offset 23, big-endian destination port at offset 36.
ashc::RuleSet firewall() {
  ashc::RuleSet rs;
  rs.name = "edge-firewall";
  rs.default_verdict = ashc::Verdict::Deliver;
  rs.rules = {
      {"tcp-http",
       ashc::p_and({ashc::p_atom(ashc::m_eq(23, 1, 6)),
                    ashc::p_or({ashc::p_atom(ashc::m_eq(36, 2, 80)),
                                ashc::p_atom(ashc::m_eq(36, 2, 443))})}),
       {},
       ashc::Verdict::Deliver},
      {"udp-media",
       ashc::p_and({ashc::p_atom(ashc::m_eq(23, 1, 17)),
                    ashc::p_atom(ashc::m_range(36, 2, 5000, 5100))}),
       {},
       ashc::Verdict::Deliver},
      {"drop-runt",
       ashc::p_atom(ashc::m_len_lt(20)),
       {ashc::a_count(0)},
       ashc::Verdict::Accept},
      {"drop-rest",
       ashc::p_and({}),  // empty And matches everything
       {ashc::a_count(4)},
       ashc::Verdict::Accept},
  };
  return rs;
}

std::vector<std::uint8_t> frame(std::uint8_t proto, std::uint16_t port) {
  std::vector<std::uint8_t> f(64, 0);
  f[23] = proto;
  util::store_be16(f.data() + 36, port);
  return f;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Node& alice = simulator.add_node("alice");
  sim::Node& bob = simulator.add_node("bob");
  net::An2Device nic_a(alice), nic_b(bob);
  nic_a.connect(nic_b);
  core::AshSystem ash_system(bob);

  int ash_id = -1;
  int vc_b = -1;
  std::uint32_t state_addr = 0;
  std::uint32_t delivered = 0;

  // --- bob: declare + download the firewall, then go to sleep ---
  bob.kernel().spawn("bob", [&](Process& self) -> Task {
    vc_b = nic_b.bind_vc(self);
    for (int i = 0; i < 16; ++i) {
      nic_b.supply_buffer(
          vc_b, self.segment().base + 64u * static_cast<std::uint32_t>(i),
          64);
    }
    state_addr = self.segment().base + 0x1000;

    const ashc::RuleSet rs = firewall();
    std::printf("%s", ashc::format(rs).c_str());

    std::string error;
    ash_id = ash_system.download_rules(self, rs, state_addr,
                                       core::AshOptions{}, &error);
    if (ash_id < 0) {
      std::printf("download_rules failed: %s\n", error.c_str());
      co_return;
    }
    ash_system.attach_an2(nic_b, vc_b, ash_id, state_addr);
    std::printf("\nfirewall installed; bob sleeps\n\n");

    // Sleep through the traffic, then count what was actually delivered.
    co_await self.sleep_for(us(5000.0));
    while (nic_b.poll(vc_b)) ++delivered;
  });

  // --- alice: a traffic mix, 2 frames per flavor ---
  alice.kernel().spawn("alice", [&](Process& self) -> Task {
    const int vc_a = nic_a.bind_vc(self);
    co_await self.sleep_for(us(500.0));
    const std::vector<std::vector<std::uint8_t>> mix = {
        frame(6, 80),                       // TCP:80      -> deliver
        frame(6, 443),                      // TCP:443     -> deliver
        frame(17, 5050),                    // UDP:5050    -> deliver
        frame(6, 22),                       // TCP:22      -> drop-rest
        frame(17, 9999),                    // UDP:9999    -> drop-rest
        std::vector<std::uint8_t>(8, 0xee),  // 8-byte runt -> drop-runt
    };
    for (int round = 0; round < 2; ++round) {
      for (const auto& f : mix) {
        nic_a.send(vc_a, f);
        co_await self.sleep_for(us(50.0));
      }
    }
  });

  simulator.run(us(20000.0));

  const std::uint32_t runts = util::load_u32(bob.mem(state_addr, 4));
  const std::uint32_t policy = util::load_u32(bob.mem(state_addr + 4, 4));
  const auto& stats = ash_system.stats(ash_id);
  std::printf("verdicts: %u delivered, %u policy drops, %u runt drops "
              "(12 frames offered)\n",
              delivered, policy, runts);
  std::printf("handler stats: %llu invocations, %llu commits (drops), "
              "%llu deliver fallbacks\n",
              static_cast<unsigned long long>(stats.invocations),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.voluntary_aborts));
  return (delivered == 6 && policy == 4 && runts == 2) ? 0 : 1;
}
